// Package workload is the benchmark driver the generated datasets exist
// for: it executes the cyber-security query mix the paper prescribes —
// "queries on nodes, edges, paths, and sub-graphs" plus the analytical
// passes an IDS pipeline runs (PageRank, connected components) — against a
// property graph, and reports per-class latency and throughput. Running the
// same workload over datasets from different generators (or different
// sizes) is precisely the benchmark use the paper targets.
package workload

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"csb/internal/graph"
	"csb/internal/graphalgo"
	"csb/internal/pagerank"
	"csb/internal/query"
)

// Spec defines how many operations of each query class to run. The zero
// value runs nothing; DefaultSpec gives a balanced mix.
type Spec struct {
	// NodeLookups are vertex-centric queries: degree lookups with a
	// top-k-talkers report every 100 lookups.
	NodeLookups int
	// EdgeScans are attribute-filtered full edge scans (by protocol, TCP
	// state, destination port class, and byte volume).
	EdgeScans int
	// PathQueries are 2-hop neighborhood expansions alternated with
	// shortest-path probes between random vertex pairs.
	PathQueries int
	// SubgraphOps alternate fan-pattern searches (the scan detector's
	// shape) with induced-subgraph extraction of 1-hop neighborhoods.
	SubgraphOps int
	// Analytics runs full-graph passes: PageRank and weakly connected
	// components, Analytics times each.
	Analytics int
	// Seed drives the deterministic query-parameter generation.
	Seed uint64
}

// DefaultSpec returns the balanced benchmark mix.
func DefaultSpec(seed uint64) Spec {
	return Spec{
		NodeLookups: 10000,
		EdgeScans:   20,
		PathQueries: 200,
		SubgraphOps: 50,
		Analytics:   2,
		Seed:        seed,
	}
}

// ClassResult reports one query class.
type ClassResult struct {
	Class   string
	Ops     int
	Seconds float64
	// OpsPerSecond is Ops/Seconds.
	OpsPerSecond float64
	// Checksum accumulates query outputs so results are comparable across
	// runs and the work cannot be optimized away.
	Checksum uint64
}

// Result is a full workload run.
type Result struct {
	Classes      []ClassResult
	TotalSeconds float64
	IndexSeconds float64 // time to build the query engine (CSR indexing)
}

// Run executes the workload over g. Parameters (vertices probed, ports
// filtered) derive deterministically from spec.Seed.
func Run(g *graph.Graph, spec Spec) (*Result, error) {
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return nil, errors.New("workload: empty graph")
	}
	res := &Result{}
	start := time.Now()
	eng := query.NewEngine(g)
	res.IndexSeconds = time.Since(start).Seconds()

	rng := rand.New(rand.NewPCG(spec.Seed, 0x301c))
	n := g.NumVertices()

	record := func(class string, ops int, fn func() uint64) {
		if ops <= 0 {
			return
		}
		t0 := time.Now()
		sum := fn()
		el := time.Since(t0).Seconds()
		res.Classes = append(res.Classes, ClassResult{
			Class: class, Ops: ops, Seconds: el,
			OpsPerSecond: float64(ops) / el, Checksum: sum,
		})
	}

	record("node-lookups", spec.NodeLookups, func() uint64 {
		var sum uint64
		for i := 0; i < spec.NodeLookups; i++ {
			v := graph.VertexID(rng.Int64N(n))
			in, out := eng.Degree(v)
			sum += uint64(in)<<1 + uint64(out)
			if i%100 == 99 {
				top := eng.TopKByDegree(10)
				sum += uint64(top[0].Degree)
			}
		}
		return sum
	})

	record("edge-scans", spec.EdgeScans, func() uint64 {
		preds := []func(*graph.Edge) bool{
			func(e *graph.Edge) bool { return e.Props.Protocol == graph.ProtoTCP },
			func(e *graph.Edge) bool { return e.Props.State == graph.StateS0 },
			func(e *graph.Edge) bool { return e.Props.DstPort < 1024 },
			func(e *graph.Edge) bool { return e.Props.OutBytes+e.Props.InBytes > 100000 },
		}
		var sum uint64
		for i := 0; i < spec.EdgeScans; i++ {
			sum += uint64(eng.CountEdges(preds[i%len(preds)]))
		}
		return sum
	})

	record("path-queries", spec.PathQueries, func() uint64 {
		var sum uint64
		for i := 0; i < spec.PathQueries; i++ {
			if i%2 == 0 {
				hop := eng.KHop(graph.VertexID(rng.Int64N(n)), 2)
				sum += uint64(len(hop))
			} else {
				d := eng.ShortestPathHops(graph.VertexID(rng.Int64N(n)), graph.VertexID(rng.Int64N(n)))
				sum += uint64(d + 2) // -1 (unreachable) still contributes
			}
		}
		return sum
	})

	record("subgraph-ops", spec.SubgraphOps, func() uint64 {
		var sum uint64
		for i := 0; i < spec.SubgraphOps; i++ {
			if i%2 == 0 {
				fans := eng.FanOut(int64(10 + rng.IntN(50)))
				sum += uint64(len(fans))
			} else {
				v := graph.VertexID(rng.Int64N(n))
				hood := append(eng.KHop(v, 1), v)
				sub := eng.Subgraph(hood)
				sum += uint64(sub.NumEdges())
			}
		}
		return sum
	})

	record("analytics", spec.Analytics, func() uint64 {
		var sum uint64
		for i := 0; i < spec.Analytics; i++ {
			pr, err := pagerank.Compute(g, pagerank.Options{MaxIter: 30})
			if err == nil {
				sum += uint64(pr.Iterations)
			}
			cc := graphalgo.WeakComponents(g)
			sum += uint64(cc.Count)
		}
		return sum
	})

	res.TotalSeconds = time.Since(start).Seconds()
	sort.Slice(res.Classes, func(i, j int) bool { return res.Classes[i].Class < res.Classes[j].Class })
	return res, nil
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	out := fmt.Sprintf("index: %.3fs, total: %.3fs\n", r.IndexSeconds, r.TotalSeconds)
	for _, c := range r.Classes {
		out += fmt.Sprintf("%-14s ops=%-6d %8.3fs  %12.0f ops/s  checksum=%d\n",
			c.Class, c.Ops, c.Seconds, c.OpsPerSecond, c.Checksum)
	}
	return out
}
