package workload

import (
	"strings"
	"testing"

	"csb/internal/core"
	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

func workloadGraph(t testing.TB) *graph.Graph {
	t.Helper()
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(50, 800, 41))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := core.Analyze(netflow.BuildGraph(netflow.Assemble(pkts, 0)))
	if err != nil {
		t.Fatal(err)
	}
	g, err := (&core.PGPBA{Fraction: 0.5, Seed: 41}).Generate(seed, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunEmptyGraph(t *testing.T) {
	if _, err := Run(graph.New(0), DefaultSpec(1)); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Run(graph.New(5), DefaultSpec(1)); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

func TestRunAllClasses(t *testing.T) {
	g := workloadGraph(t)
	spec := Spec{NodeLookups: 500, EdgeScans: 4, PathQueries: 20, SubgraphOps: 6, Analytics: 1, Seed: 7}
	res, err := Run(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 5 {
		t.Fatalf("classes = %d, want 5", len(res.Classes))
	}
	want := map[string]int{
		"analytics": 1, "edge-scans": 4, "node-lookups": 500,
		"path-queries": 20, "subgraph-ops": 6,
	}
	for _, c := range res.Classes {
		if want[c.Class] != c.Ops {
			t.Errorf("%s ops = %d, want %d", c.Class, c.Ops, want[c.Class])
		}
		if c.Seconds <= 0 || c.OpsPerSecond <= 0 {
			t.Errorf("%s timing degenerate: %+v", c.Class, c)
		}
		if c.Checksum == 0 {
			t.Errorf("%s checksum zero (work elided?)", c.Class)
		}
	}
	if res.TotalSeconds <= 0 || res.IndexSeconds < 0 {
		t.Fatalf("totals: %+v", res)
	}
}

func TestRunSkipsZeroClasses(t *testing.T) {
	g := workloadGraph(t)
	res, err := Run(g, Spec{NodeLookups: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 1 || res.Classes[0].Class != "node-lookups" {
		t.Fatalf("classes = %+v", res.Classes)
	}
}

func TestRunDeterministicChecksums(t *testing.T) {
	g := workloadGraph(t)
	spec := Spec{NodeLookups: 200, EdgeScans: 4, PathQueries: 10, SubgraphOps: 4, Seed: 9}
	a, err := Run(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Classes {
		if a.Classes[i].Checksum != b.Classes[i].Checksum {
			t.Fatalf("%s checksum differs between runs", a.Classes[i].Class)
		}
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec(3)
	if s.NodeLookups == 0 || s.EdgeScans == 0 || s.PathQueries == 0 || s.SubgraphOps == 0 || s.Analytics == 0 {
		t.Fatalf("default spec has empty classes: %+v", s)
	}
	if s.Seed != 3 {
		t.Fatalf("seed = %d", s.Seed)
	}
}

func TestResultString(t *testing.T) {
	g := workloadGraph(t)
	res, err := Run(g, Spec{NodeLookups: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "node-lookups") || !strings.Contains(s, "ops/s") {
		t.Fatalf("String = %q", s)
	}
}
