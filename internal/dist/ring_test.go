package dist

import "testing"

func TestRingEmpty(t *testing.T) {
	var r ring
	if _, ok := r.lookup(123); ok {
		t.Fatal("empty ring returned a worker")
	}
}

func TestRingSingleWorkerOwnsEverything(t *testing.T) {
	var r ring
	r.add(7)
	for i := 0; i < 1000; i++ {
		id, ok := r.lookup(routeKey(1, i, 0))
		if !ok || id != 7 {
			t.Fatalf("key %d -> (%d, %v)", i, id, ok)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	var r ring
	ids := []uint64{1, 2, 3, 4}
	for _, id := range ids {
		r.add(id)
	}
	counts := map[uint64]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		id, ok := r.lookup(routeKey(3, i, 0))
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		counts[id]++
	}
	for _, id := range ids {
		// With 64 vnodes per worker, each of 4 workers should land well
		// within [10%, 45%] of the keys.
		if c := counts[id]; c < n/10 || c > n*45/100 {
			t.Fatalf("worker %d owns %d/%d keys: %v", id, c, n, counts)
		}
	}
}

func TestRingRemoveMovesOnlyOrphanedKeys(t *testing.T) {
	var r ring
	r.add(1)
	r.add(2)
	r.add(3)
	before := map[int]uint64{}
	for i := 0; i < 1000; i++ {
		id, _ := r.lookup(routeKey(9, i, 0))
		before[i] = id
	}
	r.remove(2)
	moved := 0
	for i := 0; i < 1000; i++ {
		id, ok := r.lookup(routeKey(9, i, 0))
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if id == 2 {
			t.Fatal("removed worker still owns keys")
		}
		if before[i] != 2 && id != before[i] {
			moved++
		}
	}
	// Consistent hashing: keys not owned by the removed worker stay put.
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving workers", moved)
	}
}

func TestRouteKeyAttemptChangesRouting(t *testing.T) {
	// Folding the attempt into the key must re-route most retries: over many
	// tasks on a 4-worker ring, attempt 1 should land elsewhere than attempt
	// 0 for a substantial fraction.
	var r ring
	for id := uint64(1); id <= 4; id++ {
		r.add(id)
	}
	differs := 0
	const n = 1000
	for i := 0; i < n; i++ {
		a0, _ := r.lookup(routeKey(5, i, 0))
		a1, _ := r.lookup(routeKey(5, i, 1))
		if a0 != a1 {
			differs++
		}
	}
	if differs < n/2 {
		t.Fatalf("only %d/%d retries re-routed", differs, n)
	}
}
