package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"csb/internal/cluster"
	"csb/internal/journal"
)

// JournalTaskDone is the journal record kind of one checkpointed task
// result: key = content hash of (kind, payload), payload = result bytes.
// serve's journal compaction retains these records while jobs are
// incomplete and drops them once every journaled job is terminal.
const JournalTaskDone = "task.done"

// CheckpointedCoordinator wraps a Coordinator so every completed remote task
// result is checkpointed into a write-ahead journal, keyed by the content
// hash of its (kind, payload). A coordinator restarted mid-build replays
// those records and answers the repeated dispatches from the checkpoint
// instead of re-running them — the sharded build resumes where it died.
//
// Correctness rests on the dist invariant that task results are pure
// functions of their payload bytes (internal/dist/task): a checkpoint hit is
// byte-identical to a re-execution, so retried, speculative and post-restart
// attempts all converge on the same committed bytes. The embedded
// Coordinator keeps serving the rest of the DistPool surface (topology,
// replication, counters) unchanged.
type CheckpointedCoordinator struct {
	*Coordinator
	jl *journal.Journal

	mu   sync.Mutex
	done map[string][]byte // checkpoint key -> result bytes

	hits atomic.Int64
}

// Checkpointed wraps co with journal-backed task checkpoints, loading every
// replayed task.done record as an already-answered task. The journal is
// shared with serve's job lifecycle records; each layer ignores the other's
// kinds.
func Checkpointed(co *Coordinator, jl *journal.Journal) *CheckpointedCoordinator {
	c := &CheckpointedCoordinator{Coordinator: co, jl: jl, done: make(map[string][]byte)}
	for _, rec := range jl.Records() {
		if rec.Kind == JournalTaskDone {
			c.done[rec.Key] = rec.Payload
		}
	}
	return c
}

// checkpointKey content-addresses one task dispatch. The attempt number is
// deliberately absent: every attempt of the same work shares the key, so a
// retry after restart hits the checkpoint of the attempt that completed.
func checkpointKey(kind string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// CheckpointHits returns how many dispatches were answered from the journal
// instead of being re-executed.
func (c *CheckpointedCoordinator) CheckpointHits() int64 { return c.hits.Load() }

// CheckpointedTasks returns how many distinct task results are held.
func (c *CheckpointedCoordinator) CheckpointedTasks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// ExecRemote implements cluster.TaskExecutor: a dispatch whose (kind,
// payload) hash is already checkpointed returns the recorded result without
// touching a worker; anything else goes through the inner coordinator and is
// journaled on success. Declines (no live worker) and failures are not
// checkpointed — they re-enter the engine's local-fallback/retry paths
// exactly as without checkpointing.
func (c *CheckpointedCoordinator) ExecRemote(ctx context.Context, stage cluster.StageInfo, att cluster.AttemptInfo, kind string, payload func() []byte) ([]byte, error) {
	body := payload()
	key := checkpointKey(kind, body)
	c.mu.Lock()
	if res, ok := c.done[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return append([]byte(nil), res...), nil
	}
	c.mu.Unlock()
	res, err := c.Coordinator.ExecRemote(ctx, stage, att, kind, func() []byte { return body })
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.done[key]; !ok {
		c.done[key] = append([]byte(nil), res...)
		// Fsync'd before the result is returned: once the engine commits
		// this attempt, a restart is guaranteed to find the checkpoint.
		c.jl.Append(journal.Record{Kind: JournalTaskDone, Key: key, Payload: res})
	}
	c.mu.Unlock()
	return res, nil
}
