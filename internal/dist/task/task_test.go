package task

import (
	"errors"
	"testing"
)

func TestRegisterAndRun(t *testing.T) {
	Register("tasktest.rev", func(p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		for i, b := range p {
			out[len(p)-1-i] = b
		}
		return out, nil
	})
	got, err := Run("tasktest.rev", []byte("abc"))
	if err != nil || string(got) != "cba" {
		t.Fatalf("Run = %q, %v", got, err)
	}
	kinds := Kinds()
	found := false
	for _, k := range kinds {
		if k == "tasktest.rev" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() = %v, missing tasktest.rev", kinds)
	}
}

func TestRunUnknownKind(t *testing.T) {
	if _, err := Run("tasktest.nope", nil); err == nil {
		t.Fatal("unknown kind ran")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("tasktest.dup", func(p []byte) ([]byte, error) { return p, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("tasktest.dup", func(p []byte) ([]byte, error) { return p, nil })
}

func TestTaskErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	Register("tasktest.fail", func(p []byte) ([]byte, error) { return nil, sentinel })
	if _, err := Run("tasktest.fail", nil); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}
