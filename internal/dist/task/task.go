// Package task is the remote-computation registry of the distributed
// runtime: a kind string maps to a pure function from payload bytes to
// result bytes. Packages that own a remotable computation (kronecker's
// ball-drop stage, the artifact row encoders) register their kinds from
// init, so any process that links them — coordinator or worker — can
// execute them. The registry is a leaf package with no dependencies, which
// is what lets internal/cluster, internal/serve and internal/dist all reach
// it without import cycles.
//
// Determinism contract: a registered function must be a pure function of
// its payload — same bytes in, same bytes out, on any host. The engine's
// byte-identity guarantee (in-process == 1 worker == N workers) reduces to
// exactly this property plus deterministic payload construction.
package task

import (
	"fmt"
	"sort"
	"sync"
)

// Func executes one remote task kind: payload bytes in, result bytes out.
type Func func(payload []byte) ([]byte, error)

var (
	mu    sync.RWMutex
	kinds = make(map[string]Func)
)

// Register installs fn as the executor for kind. It panics on duplicate
// registration — two packages claiming one kind is a programming error that
// must fail at init, not silently shadow at dispatch time.
func Register(kind string, fn Func) {
	if kind == "" || fn == nil {
		panic("task: Register requires a kind and a function")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := kinds[kind]; dup {
		panic("task: duplicate registration of kind " + kind)
	}
	kinds[kind] = fn
}

// Run executes one task of the named kind.
func Run(kind string, payload []byte) ([]byte, error) {
	mu.RLock()
	fn := kinds[kind]
	mu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("task: unknown kind %q", kind)
	}
	return fn(payload)
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
