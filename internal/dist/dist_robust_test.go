// Robustness tests for the distributed runtime: graceful drain, circuit
// breakers, journal-checkpointed coordinator restarts, and the chaosnet
// determinism matrix — fixed-seed wire faults under which golden digests
// must hold.
package dist_test

import (
	"context"
	"crypto/sha256"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"csb/internal/chaosnet"
	"csb/internal/cluster"
	"csb/internal/dist"
	"csb/internal/dist/task"
	"csb/internal/journal"
	"csb/internal/serve"
)

func init() {
	// disttest.fail: always errors, to trip circuit breakers on demand.
	task.Register("disttest.fail", func(payload []byte) ([]byte, error) {
		return nil, errors.New("induced task failure")
	})
}

// execOnce drives one direct ExecRemote dispatch.
func execOnce(ex cluster.TaskExecutor, kind string, attempt int) ([]byte, error) {
	return ex.ExecRemote(context.Background(),
		cluster.StageInfo{Op: "test", Seq: 1},
		cluster.AttemptInfo{Task: 0, Attempt: attempt},
		kind, func() []byte { return []byte("payload") })
}

func TestWorkerGracefulDrain(t *testing.T) {
	golden := buildDigest(t, nil, "tsv")
	p := startPool(t, 2)

	p.workers[0].Drain()
	// Drain ends the session and Run returns nil (no reconnect loop).
	select {
	case <-p.runDone[0]:
	case <-time.After(10 * time.Second):
		t.Fatal("drained worker's Run did not return")
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.co.LiveWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("drained worker still registered; %d live", p.co.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, drained := p.co.BreakerStats(); drained != 1 {
		t.Fatalf("drains announced = %d, want 1", drained)
	}
	// The survivor carries the build; bytes unchanged.
	if got := buildDigest(t, p.co, "tsv"); got != golden {
		t.Fatalf("digest after drain %x != in-process %x", got, golden)
	}
	// Draining twice is a no-op.
	p.workers[0].Drain()
}

func TestBreakerEvictsFlappingWorkerThenProbation(t *testing.T) {
	p := startPoolCfg(t, 1, dist.Config{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 2 * time.Second,
		TaskTimeout:      10 * time.Second,
		BreakerTrips:     3,
		BreakerCooldown:  200 * time.Millisecond,
	}, nil)

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := execOnce(p.co, "disttest.fail", i); err == nil ||
			errors.Is(err, cluster.ErrNoRemote) {
			t.Fatalf("failure %d: err = %v, want a real task error", i, err)
		}
	}
	opened, _, _ := p.co.BreakerStats()
	if opened != 1 {
		t.Fatalf("breakers opened = %d, want 1", opened)
	}
	// Open breaker: the worker is unrouted, dispatch declines to local.
	if _, err := execOnce(p.co, "disttest.slow", 0); !errors.Is(err, cluster.ErrNoRemote) {
		t.Fatalf("dispatch with open breaker: err = %v, want ErrNoRemote", err)
	}
	ws := p.co.Workers()
	if len(ws) == 0 || ws[0].Breaker != "open" {
		t.Fatalf("worker breaker state = %+v, want open", ws)
	}
	// The worker stays connected the whole time — breakers unroute, they
	// don't disconnect.
	if p.co.LiveWorkers() != 1 {
		t.Fatalf("flapping worker disconnected; %d live", p.co.LiveWorkers())
	}

	// After the cooldown the next pick re-admits on probation; a success
	// closes the breaker fully.
	time.Sleep(300 * time.Millisecond)
	if res, err := execOnce(p.co, "disttest.slow", 1); err != nil || string(res) != "payload" {
		t.Fatalf("probation dispatch = (%q, %v), want payload echo", res, err)
	}
	if _, readmitted, _ := p.co.BreakerStats(); readmitted != 1 {
		t.Fatalf("readmissions = %d, want 1", readmitted)
	}
	if ws := p.co.Workers(); ws[0].Breaker != "closed" || ws[0].BreakerTrips != 0 {
		t.Fatalf("post-probation state = %+v, want closed/0", ws[0])
	}

	// A probation failure re-opens immediately (trips restart at K-1).
	for i := 0; i < 3; i++ {
		execOnce(p.co, "disttest.fail", 10+i)
	}
	time.Sleep(300 * time.Millisecond)
	execOnce(p.co, "disttest.fail", 20) // probation re-admit, then fail
	if opened, _, _ := p.co.BreakerStats(); opened != 3 {
		t.Fatalf("breakers opened = %d, want 3 (initial, re-open, probation re-open)", opened)
	}
}

// TestCoordinatorRestartResumesFromCheckpoints is the coordinator half of
// the crash-resume acceptance criterion: a 2-worker sharded build whose
// coordinator dies mid-stage is restarted on the same journal and must (a)
// skip the checkpointed tasks and (b) produce byte-identical output.
func TestCoordinatorRestartResumesFromCheckpoints(t *testing.T) {
	golden := buildDigest(t, nil, "tsv")
	dir := t.TempDir()

	// Run 1: full build through a checkpointing coordinator.
	wal1 := filepath.Join(dir, "run1.wal")
	jl1, err := journal.Open(wal1)
	if err != nil {
		t.Fatal(err)
	}
	p1 := startPool(t, 2)
	cp1 := dist.Checkpointed(p1.co, jl1)
	if got := buildDigest(t, cp1, "tsv"); got != golden {
		t.Fatalf("checkpointed digest %x != in-process %x", got, golden)
	}
	total := cp1.CheckpointedTasks()
	if total < 2 {
		t.Fatalf("only %d tasks checkpointed; build too small for a resume test", total)
	}
	jl1.Close()

	// Simulate dying mid-stage: a journal holding only the first half of the
	// checkpoints — exactly what a torn run leaves behind.
	reopened, err := journal.Open(wal1)
	if err != nil {
		t.Fatal(err)
	}
	recs := reopened.Records()
	reopened.Close()
	wal2 := filepath.Join(dir, "run2.wal")
	jl2, err := journal.Open(wal2)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, rec := range recs {
		if rec.Kind != dist.JournalTaskDone {
			continue
		}
		if kept >= total/2 {
			break
		}
		if err := jl2.Append(rec); err != nil {
			t.Fatal(err)
		}
		kept++
	}
	jl2.Close()

	// "Restart": a brand-new coordinator and workers over the torn journal.
	jl3, err := journal.Open(filepath.Join(dir, "run2.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.Close()
	p2 := startPool(t, 2)
	cp2 := dist.Checkpointed(p2.co, jl3)
	if got := buildDigest(t, cp2, "tsv"); got != golden {
		t.Fatalf("resumed digest %x != in-process %x", got, golden)
	}
	if hits := cp2.CheckpointHits(); hits != int64(kept) {
		t.Fatalf("checkpoint hits = %d, want %d (the surviving records)", hits, kept)
	}
	if _, _, _, dispatched, _ := p2.co.Counts(); dispatched != int64(total-kept) {
		t.Fatalf("restarted run dispatched %d tasks, want %d (total %d - checkpointed %d)",
			dispatched, total-kept, total, kept)
	}

	// Third run over the now-complete journal: zero dispatches, all hits.
	jl4, err := journal.Open(wal1)
	if err != nil {
		t.Fatal(err)
	}
	defer jl4.Close()
	p3 := startPool(t, 2)
	cp3 := dist.Checkpointed(p3.co, jl4)
	if got := buildDigest(t, cp3, "tsv"); got != golden {
		t.Fatalf("fully-checkpointed digest %x != in-process %x", got, golden)
	}
	if _, _, _, dispatched, _ := p3.co.Counts(); dispatched != 0 {
		t.Fatalf("fully-checkpointed run still dispatched %d tasks", dispatched)
	}
}

// startChaosPool is startPoolCfg with a chaosnet fault injector under every
// CSBD1 connection: the coordinator listener wraps accepted conns, workers
// wrap their dialed conns.
func startChaosPool(t *testing.T, n int, faults *chaosnet.Faults) *pool {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return startPoolCfg(t, n, dist.Config{
		Listener:         faults.Listen(ln),
		HeartbeatTimeout: 2 * time.Second,
		TaskTimeout:      5 * time.Second,
	}, func(i int, wc *dist.WorkerConfig) {
		wc.WrapConn = faults.Wrap
	})
}

// chaosDigest runs the fixed-seed build with a deeper retry budget (wire
// faults burn attempts) and returns its digest.
func chaosDigest(t *testing.T, ex cluster.TaskExecutor) [32]byte {
	t.Helper()
	spec := serve.Spec{Generator: serve.GenPGSK, Edges: 4000, Seed: 7, Format: "tsv"}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Nodes: 2, CoresPerNode: 4, Executor: ex,
		MaxTaskRetries: 8, RetryBackoff: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := serve.BuildArtifact(context.Background(), spec, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(data)
}

// TestChaosNetDeterminismMatrix: every wire fault class, at a fixed seed,
// over a 2-worker build — committed bytes must match the in-process run.
// Corruption never passes silently: the CSBD1 CRC turns it into
// ErrCorruptRPC, the connection drops, and the attempt re-enters the retry
// budget (or local fallback).
func TestChaosNetDeterminismMatrix(t *testing.T) {
	golden := chaosDigest(t, nil)
	cases := []struct {
		name string
		cfg  chaosnet.Config
	}{
		{"latency-jitter-drip", chaosnet.Config{Seed: 7, Latency: 200 * time.Microsecond, Jitter: time.Millisecond, Drip: 512}},
		{"bandwidth-cap", chaosnet.Config{Seed: 7, BandwidthBPS: 8 << 20, Drip: 2048}},
		{"corruption", chaosnet.Config{Seed: 7, CorruptRate: 0.01, GraceOps: 8}},
		{"resets", chaosnet.Config{Seed: 7, ResetRate: 0.01, GraceOps: 8}},
		{"partitions", chaosnet.Config{Seed: 7, PartitionRate: 0.005, GraceOps: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := chaosnet.MustNew(tc.cfg)
			p := startChaosPool(t, 2, faults)
			if got := chaosDigest(t, p.co); got != golden {
				t.Fatalf("digest under %s chaos %x != clean %x", tc.name, got, golden)
			}
			st := faults.Stats()
			t.Logf("%s: injected %+v", tc.name, st)
			if tc.cfg.CorruptRate > 0 && st.Corrupted == 0 {
				t.Error("corruption case injected no corruption")
			}
			if tc.cfg.ResetRate > 0 && st.Resets == 0 {
				t.Error("reset case injected no resets")
			}
			if tc.cfg.PartitionRate > 0 && st.Partitions == 0 {
				t.Error("partition case injected no partitions")
			}
		})
	}
}
