package rows

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"csb/internal/dist/task"
	"csb/internal/graph"
	"csb/internal/netflow"
)

// testEdges builds a deterministic mix of TCP and UDP edges with varied
// properties.
func testEdges(n int) []graph.Edge {
	rng := rand.New(rand.NewPCG(1, 2))
	edges := make([]graph.Edge, n)
	for i := range edges {
		proto := graph.ProtoTCP
		state := graph.TCPState(rng.IntN(4))
		if i%3 == 0 {
			proto = graph.ProtoUDP
			state = graph.StateNone
		}
		edges[i] = graph.Edge{
			Src: graph.VertexID(rng.Int64N(1000)),
			Dst: graph.VertexID(rng.Int64N(1000)),
			Props: graph.EdgeProps{
				Protocol: proto,
				State:    state,
				SrcPort:  uint16(rng.IntN(65536)),
				DstPort:  uint16(rng.IntN(65536)),
				Duration: rng.Int64N(100000),
				OutBytes: rng.Int64N(1 << 30),
				InBytes:  rng.Int64N(1 << 30),
				OutPkts:  rng.Int64N(1 << 20),
				InPkts:   rng.Int64N(1 << 20),
			},
		}
	}
	return edges
}

func TestEdgeRecordRoundTrip(t *testing.T) {
	edges := testEdges(50)
	got, err := DecodeEdges(EncodeEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(edges))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got[i], edges[i])
		}
	}
	if _, err := DecodeEdges([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged edge payload accepted")
	}
}

func TestTSVRowsMatchSequentialWriter(t *testing.T) {
	edges := testEdges(80)
	g := graph.New(1000)
	if err := g.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := g.WriteEdgeList(&want); err != nil {
		t.Fatal(err)
	}
	got := append([]byte(graph.EdgeListHeader), TSVRows(edges)...)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("distributed tsv differs from sequential writer\ngot:  %q\nwant: %q",
			firstDiff(got, want.Bytes()), "")
	}
}

func TestCSVRowsMatchSequentialWriter(t *testing.T) {
	edges := testEdges(80)
	g := graph.New(1000)
	if err := g.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	flows := netflow.FlowsFromGraph(g)
	var want bytes.Buffer
	if err := netflow.WriteCSV(&want, flows); err != nil {
		t.Fatal(err)
	}
	got := append([]byte(netflow.CSVHeaderLine), CSVRows(flows)...)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("distributed csv differs from sequential writer at %q", firstDiff(got, want.Bytes()))
	}
}

func TestFlowRecordRoundTrip(t *testing.T) {
	g := graph.New(1000)
	if err := g.AddEdges(testEdges(40)); err != nil {
		t.Fatal(err)
	}
	flows := netflow.FlowsFromGraph(g)
	got, err := DecodeFlows(EncodeFlows(flows))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("decoded %d flows, want %d", len(got), len(flows))
	}
	for i := range flows {
		if got[i] != flows[i] {
			t.Fatalf("flow %d = %+v, want %+v", i, got[i], flows[i])
		}
	}
}

// TestKindsRunThroughRegistry drives each registered kind end to end the way
// a worker would: payload bytes in, row bytes out.
func TestKindsRunThroughRegistry(t *testing.T) {
	edges := testEdges(30)
	out, err := task.Run(TSVKind, EncodeEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, TSVRows(edges)) {
		t.Fatal("registry tsv differs from direct TSVRows")
	}
	out, err = task.Run(NDJSONKind, EncodeEdges(edges))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NDJSONRows(edges)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, direct) {
		t.Fatal("registry ndjson differs from direct NDJSONRows")
	}
	if _, err := task.Run(TSVKind, []byte{1}); err == nil {
		t.Fatal("ragged payload ran")
	}
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 20
			if lo < 0 {
				lo = 0
			}
			hi := i + 20
			if hi > n {
				hi = n
			}
			return string(a[lo:hi])
		}
	}
	return ""
}
