// Package rows makes artifact row encoding remotable: a partition of binary
// edge (or flow) records becomes a payload any worker can format into the
// exact text rows the sequential writers produce. Each kind wraps the same
// single-row formatter the local writer uses (graph.AppendEdgeListRow,
// netflow.AppendCSVRow, the NDJSON marshal), so a chunk encoded on a worker
// is byte-for-byte the chunk the coordinator would have written — the
// distributed artifact is the ordered concatenation of header plus chunks.
package rows

import (
	"encoding/json"
	"fmt"

	"csb/internal/dist/task"
	"csb/internal/graph"
	"csb/internal/netflow"
)

// Registered remote kinds: payload records in, text rows out.
const (
	TSVKind    = "rows.tsv"    // graph edge records -> tab-separated rows
	NDJSONKind = "rows.ndjson" // graph edge records -> NDJSON objects
	CSVKind    = "rows.csv"    // netflow flow records -> CSV rows
)

func init() {
	task.Register(TSVKind, runTSV)
	task.Register(NDJSONKind, runNDJSON)
	task.Register(CSVKind, runCSV)
}

// EncodeEdges renders a partition of edges as a row-encode payload.
func EncodeEdges(edges []graph.Edge) []byte {
	out := make([]byte, 0, len(edges)*graph.EdgeRecordLen)
	for i := range edges {
		out = AppendEdgeRecord(out, &edges[i])
	}
	return out
}

// AppendEdgeRecord appends one edge's payload record to dst.
func AppendEdgeRecord(dst []byte, e *graph.Edge) []byte {
	return graph.AppendEdgeRecord(dst, e)
}

// DecodeEdges parses a row-encode payload back into edges.
func DecodeEdges(payload []byte) ([]graph.Edge, error) {
	if len(payload)%graph.EdgeRecordLen != 0 {
		return nil, fmt.Errorf("rows: edge payload length %d not a multiple of %d", len(payload), graph.EdgeRecordLen)
	}
	edges := make([]graph.Edge, len(payload)/graph.EdgeRecordLen)
	for i := range edges {
		edges[i] = graph.DecodeEdgeRecord(payload[i*graph.EdgeRecordLen:])
	}
	return edges, nil
}

// EncodeFlows renders a partition of flows as a row-encode payload.
func EncodeFlows(flows []netflow.Flow) []byte {
	out := make([]byte, 0, len(flows)*netflow.FlowRecordLen)
	for i := range flows {
		out = netflow.AppendFlowRecord(out, &flows[i])
	}
	return out
}

// DecodeFlows parses a row-encode payload back into flows.
func DecodeFlows(payload []byte) ([]netflow.Flow, error) {
	if len(payload)%netflow.FlowRecordLen != 0 {
		return nil, fmt.Errorf("rows: flow payload length %d not a multiple of %d", len(payload), netflow.FlowRecordLen)
	}
	flows := make([]netflow.Flow, len(payload)/netflow.FlowRecordLen)
	for i := range flows {
		f, err := netflow.DecodeFlowRecord(payload[i*netflow.FlowRecordLen:])
		if err != nil {
			return nil, err
		}
		flows[i] = f
	}
	return flows, nil
}

// TSVRows formats edges as edge-list rows (no header) — the local closure
// and the remote kind share it.
func TSVRows(edges []graph.Edge) []byte {
	out := make([]byte, 0, len(edges)*48)
	for i := range edges {
		out = graph.AppendEdgeListRow(out, &edges[i])
	}
	return out
}

func runTSV(payload []byte) ([]byte, error) {
	edges, err := DecodeEdges(payload)
	if err != nil {
		return nil, err
	}
	return TSVRows(edges), nil
}

// ndjsonEdge is the NDJSON projection of one flow edge; field names mirror
// the TSV edge-list header.
type ndjsonEdge struct {
	Src        int64  `json:"src"`
	Dst        int64  `json:"dst"`
	Proto      string `json:"proto"`
	SrcPort    uint16 `json:"src_port"`
	DstPort    uint16 `json:"dst_port"`
	DurationMS int64  `json:"duration_ms"`
	OutBytes   int64  `json:"out_bytes"`
	InBytes    int64  `json:"in_bytes"`
	OutPkts    int64  `json:"out_pkts"`
	InPkts     int64  `json:"in_pkts"`
	State      string `json:"state"`
}

// appendNDJSONRow appends one edge's NDJSON line to dst. json.Marshal plus
// '\n' is exactly what json.Encoder.Encode emits, so these bytes match the
// sequential NDJSON writer. Both NDJSONRows and NDJSONBatch funnel through
// this single formatter.
func appendNDJSONRow(dst []byte, e *graph.Edge) ([]byte, error) {
	rec := ndjsonEdge{
		Src: int64(e.Src), Dst: int64(e.Dst),
		Proto:   e.Props.Protocol.String(),
		SrcPort: e.Props.SrcPort, DstPort: e.Props.DstPort,
		DurationMS: e.Props.Duration,
		OutBytes:   e.Props.OutBytes, InBytes: e.Props.InBytes,
		OutPkts: e.Props.OutPkts, InPkts: e.Props.InPkts,
		State: e.Props.State.String(),
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	dst = append(dst, line...)
	return append(dst, '\n'), nil
}

// NDJSONRows formats edges as newline-delimited JSON objects.
func NDJSONRows(edges []graph.Edge) ([]byte, error) {
	var out []byte
	var err error
	for i := range edges {
		if out, err = appendNDJSONRow(out, &edges[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NDJSONBatch formats a columnar edge batch as NDJSON, streaming straight
// over the columns without materializing a row slice.
func NDJSONBatch(b *graph.EdgeBatch) ([]byte, error) {
	var out []byte
	var err error
	for i, n := 0, b.Len(); i < n; i++ {
		e := b.Edge(i)
		if out, err = appendNDJSONRow(out, &e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runNDJSON(payload []byte) ([]byte, error) {
	edges, err := DecodeEdges(payload)
	if err != nil {
		return nil, err
	}
	return NDJSONRows(edges)
}

// CSVRows formats flows as CSV rows (no header).
func CSVRows(flows []netflow.Flow) []byte {
	out := make([]byte, 0, len(flows)*64)
	for i := range flows {
		out = netflow.AppendCSVRow(out, &flows[i])
	}
	return out
}

func runCSV(payload []byte) ([]byte, error) {
	flows, err := DecodeFlows(payload)
	if err != nil {
		return nil, err
	}
	return CSVRows(flows), nil
}
