package dist

import (
	"errors"
	"net"
	"testing"
	"time"

	"csb/internal/chaosnet"
)

// TestReconnectJitterDivergesAcrossWorkers: the reconnect backoff fraction
// must differ between workers at the same attempt, or a fleet thunders back
// in lockstep after a coordinator restart (the bug this fixes keyed the
// jitter on the attempt counter alone).
func TestReconnectJitterDivergesAcrossWorkers(t *testing.T) {
	same := 0
	const attempts = 64
	for a := uint64(0); a < attempts; a++ {
		f1 := reconnectJitter("w1", a)
		f2 := reconnectJitter("w2", a)
		if f1 < 0.5 || f1 >= 1.5 || f2 < 0.5 || f2 >= 1.5 {
			t.Fatalf("attempt %d: fractions %v, %v outside [0.5, 1.5)", a, f1, f2)
		}
		if f1 == f2 {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("two workers computed identical jitter on %d/%d attempts", same, attempts)
	}
	// Deterministic per (name, attempt): restart-stable schedules.
	if reconnectJitter("w1", 3) != reconnectJitter("w1", 3) {
		t.Fatal("jitter is not deterministic")
	}
	// And the schedule varies across attempts for one worker.
	if reconnectJitter("w1", 0) == reconnectJitter("w1", 1) {
		t.Fatal("jitter does not vary across attempts")
	}
}

// TestWireCorruptionSurfacesTypedError: a chaos-corrupted CSBD1 frame must
// fail the CRC and surface ErrCorruptRPC — never silently deliver mangled
// payload bytes. This is the typed error that re-enters the dispatch retry
// budget in the coordinator.
func TestWireCorruptionSurfacesTypedError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer server.Close()

	// Corrupt every write on the client side; the server-side reader must
	// reject each frame with the typed error, not hand back bad bytes.
	faults := chaosnet.MustNew(chaosnet.Config{Seed: 11, CorruptRate: 1})
	sender := newWireConn(faults.Wrap(raw), 2*time.Second, 2*time.Second)
	defer sender.Close()
	receiver := newWireConn(server, 2*time.Second, 2*time.Second)

	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := sender.writeFrame(frameTask, 1, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.readFrame(); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("read of corrupted frame: err = %v, want ErrCorruptRPC", err)
	}
}
