package dist

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// pipePair returns two framed ends of an in-memory connection.
func pipePair() (*wireConn, *wireConn) {
	a, b := net.Pipe()
	return newWireConn(a, time.Second, time.Second), newWireConn(b, time.Second, time.Second)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{0xab, 0xcd}, 1000)
	go func() { a.writeFrame(frameTask, 42, payload) }()
	f, err := b.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != frameTask || f.req != 42 || !bytes.Equal(f.payload, payload) {
		t.Fatalf("frame = type %d req %d (%d bytes)", f.typ, f.req, len(f.payload))
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go func() { a.writeFrame(frameHeartbeat, 0, nil) }()
	f, err := b.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != frameHeartbeat || f.req != 0 || len(f.payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFrameCorruptChecksum(t *testing.T) {
	ac, bc := net.Pipe()
	b := newWireConn(bc, time.Second, time.Second)
	defer ac.Close()
	defer b.Close()
	go func() {
		// Hand-build a frame with a wrong CRC.
		raw := []byte{
			frameTask,
			0, 0, 0, 0, 0, 0, 0, 7, // req
			0, 0, 0, 2, // len
			0x10, 0x20, // payload
			0xde, 0xad, 0xbe, 0xef, // bogus crc
		}
		ac.Write(raw)
	}()
	if _, err := b.readFrame(); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("err = %v, want ErrCorruptRPC", err)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	ac, bc := net.Pipe()
	b := newWireConn(bc, time.Second, time.Second)
	defer ac.Close()
	defer b.Close()
	go func() {
		raw := []byte{frameTask, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}
		ac.Write(raw)
	}()
	if _, err := b.readFrame(); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("err = %v, want ErrCorruptRPC", err)
	}
	a := newWireConn(ac, time.Second, time.Second)
	if err := a.writeFrame(frameTask, 1, make([]byte, maxFramePayload+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestFrameReadDeadline(t *testing.T) {
	ac, bc := net.Pipe()
	defer ac.Close()
	b := newWireConn(bc, 30*time.Millisecond, time.Second)
	defer b.Close()
	start := time.Now()
	if _, err := b.readFrame(); err == nil {
		t.Fatal("read from a silent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("read blocked %v despite deadline", elapsed)
	}
}

func TestHelloCodec(t *testing.T) {
	p, err := encodeHello("w1")
	if err != nil {
		t.Fatal(err)
	}
	name, err := decodeHello(p)
	if err != nil || name != "w1" {
		t.Fatalf("decode = %q, %v", name, err)
	}
	if _, err := decodeHello([]byte("XXXXX\x02w1")); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := decodeHello(p[:3]); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("short hello: %v", err)
	}
}

func TestTaskCodec(t *testing.T) {
	p, err := encodeTask("kron.drop", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	kind, body, err := decodeTask(p)
	if err != nil || kind != "kron.drop" || !bytes.Equal(body, []byte{1, 2, 3}) {
		t.Fatalf("decode = %q %v %v", kind, body, err)
	}
	if _, err := encodeTask("", nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, _, err := decodeTask([]byte{200, 'x'}); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("truncated kind: %v", err)
	}
}

func TestReplicaCodec(t *testing.T) {
	p, err := encodeReplica("abc123", []byte("artifact bytes"))
	if err != nil {
		t.Fatal(err)
	}
	id, data, err := decodeReplica(p)
	if err != nil || id != "abc123" || string(data) != "artifact bytes" {
		t.Fatalf("decode = %q %q %v", id, data, err)
	}
	if _, _, err := decodeReplica([]byte{0}); !errors.Is(err, ErrCorruptRPC) {
		t.Fatalf("zero-length id: %v", err)
	}
}
