package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csb/internal/cluster"
)

// Coordinator defaults applied by NewCoordinator to zero-valued Config
// fields.
const (
	// DefaultHeartbeatInterval is how often a worker heartbeats.
	DefaultHeartbeatInterval = 500 * time.Millisecond
	// DefaultHeartbeatTimeout is the liveness deadline: a worker whose
	// connection stays silent this long is declared lost and its in-flight
	// tasks fail into the engine's retry path.
	DefaultHeartbeatTimeout = 3 * time.Second
	// DefaultTaskTimeout bounds one remote task dispatch end to end.
	DefaultTaskTimeout = 2 * time.Minute
	// DefaultWriteTimeout bounds one frame write.
	DefaultWriteTimeout = 10 * time.Second
	// DefaultBreakerTrips is how many consecutive task failures open a
	// worker's circuit breaker (unrouted until the cooldown passes).
	DefaultBreakerTrips = 5
	// DefaultBreakerCooldown is how long an open breaker keeps a worker out
	// of the ring before probation re-admits it.
	DefaultBreakerCooldown = 10 * time.Second
	// maxTombstones bounds the lost-worker history kept for /workers.
	maxTombstones = 32
)

// Config parameterizes a Coordinator.
type Config struct {
	// Addr is the TCP listen address for worker registration (e.g.
	// "127.0.0.1:9444"; ":0" picks a free port, see Coordinator.Addr).
	Addr string
	// HeartbeatTimeout is the worker liveness deadline (0 means
	// DefaultHeartbeatTimeout). It doubles as the per-read deadline of the
	// worker connection — a healthy worker heartbeats well inside it.
	HeartbeatTimeout time.Duration
	// TaskTimeout bounds one remote task dispatch (0 means
	// DefaultTaskTimeout).
	TaskTimeout time.Duration
	// WriteTimeout bounds one frame write (0 means DefaultWriteTimeout).
	WriteTimeout time.Duration
	// Listener, when non-nil, is used instead of listening on Addr — the
	// seam tests and the -chaos-net flag use to interpose a chaosnet fault
	// proxy under the CSBD1 wire layer. The coordinator takes ownership.
	Listener net.Listener
	// BreakerTrips is how many consecutive task failures evict a flapping
	// worker from the routing ring (0 means DefaultBreakerTrips; negative
	// disables the circuit breaker).
	BreakerTrips int
	// BreakerCooldown is how long an open breaker holds before the worker
	// is re-admitted on probation (0 means DefaultBreakerCooldown). One
	// more failure on probation re-opens it; one success closes it fully.
	BreakerCooldown time.Duration
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// WorkerInfo is one worker's registration snapshot, served by the /workers
// endpoint and folded into /metrics.
type WorkerInfo struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	Addr string `json:"addr"`
	Live bool   `json:"live"`
	// HeartbeatAgeMS is the time since the last heartbeat, in milliseconds
	// (live workers only).
	HeartbeatAgeMS int64 `json:"heartbeat_age_ms"`
	TasksDone      int64 `json:"tasks_done"`
	TasksFailed    int64 `json:"tasks_failed"`
	ReplicasHeld   int64 `json:"replicas_held"`
	// Breaker is the worker's routing health: "closed" (routable), "open"
	// (evicted after BreakerTrips consecutive failures), "probation"
	// (re-admitted after cooldown, one failure from re-opening), or
	// "draining" (graceful shutdown announced; unrouted).
	Breaker string `json:"breaker"`
	// BreakerTrips is the current consecutive-failure count.
	BreakerTrips int `json:"breaker_trips"`
}

// rpcReply is one matched response frame.
type rpcReply struct {
	typ     byte
	payload []byte
}

// workerConn is the coordinator-side state of one registered worker.
type workerConn struct {
	id   uint64
	name string
	addr string
	wc   *wireConn

	lastBeat    atomic.Int64 // unix nanos of the last heartbeat (or hello)
	tasksDone   atomic.Int64
	tasksFailed atomic.Int64
	replicas    atomic.Int64 // replicas acknowledged stored

	pmu     sync.Mutex
	pending map[uint64]chan rpcReply
	gone    bool

	// Circuit-breaker and drain state, guarded by the coordinator's mutex
	// (it moves with ring membership, which the same mutex guards).
	trips     int       // consecutive task failures
	open      bool      // breaker open: out of the ring until openUntil
	probation bool      // re-admitted; one failure from re-opening
	openUntil time.Time // cooldown expiry while open
	draining  bool      // graceful drain announced; out of the ring for good
}

// registerPending allocates the reply channel for a request id. It fails
// once the worker is dropped, so no dispatch can race a dead connection.
func (w *workerConn) registerPending(req uint64) (chan rpcReply, error) {
	w.pmu.Lock()
	defer w.pmu.Unlock()
	if w.gone {
		return nil, fmt.Errorf("dist: worker %s is gone", w.name)
	}
	ch := make(chan rpcReply, 1)
	w.pending[req] = ch
	return ch, nil
}

// unregisterPending abandons a request (timeout, cancellation).
func (w *workerConn) unregisterPending(req uint64) {
	w.pmu.Lock()
	delete(w.pending, req)
	w.pmu.Unlock()
}

// deliver hands a response frame to its waiter, if any.
func (w *workerConn) deliver(f frame) {
	w.pmu.Lock()
	ch := w.pending[f.req]
	delete(w.pending, f.req)
	w.pmu.Unlock()
	if ch != nil {
		ch <- rpcReply{typ: f.typ, payload: f.payload}
	}
}

// Coordinator registers workers, dispatches remotable engine tasks to them,
// and replicates artifacts. It implements cluster.TaskExecutor; wire it into
// an engine via cluster.Config.Executor. Create with NewCoordinator, stop
// with Close.
type Coordinator struct {
	cfg Config
	ln  net.Listener
	wg  sync.WaitGroup

	mu      sync.Mutex
	workers map[uint64]*workerConn
	hashes  ring
	tombs   []WorkerInfo // most recent lost workers, newest last
	closed  bool

	nextWorker atomic.Uint64
	nextReq    atomic.Uint64

	registeredTotal atomic.Int64
	lostTotal       atomic.Int64
	dispatched      atomic.Int64
	declined        atomic.Int64 // ExecRemote calls declined (no live worker)

	breakerOpened   atomic.Int64 // breakers tripped open
	breakerReadmit  atomic.Int64 // probation re-admissions after cooldown
	drainsAnnounced atomic.Int64 // workers that drained gracefully
}

// NewCoordinator starts listening on cfg.Addr and accepting worker
// registrations.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if cfg.TaskTimeout == 0 {
		cfg.TaskTimeout = DefaultTaskTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.BreakerTrips == 0 {
		cfg.BreakerTrips = DefaultBreakerTrips
	} else if cfg.BreakerTrips < 0 {
		cfg.BreakerTrips = 0 // disabled
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("dist: coordinator listen: %w", err)
		}
	}
	co := &Coordinator{cfg: cfg, ln: ln, workers: make(map[uint64]*workerConn)}
	co.wg.Add(1)
	go co.acceptLoop()
	return co, nil
}

// Addr returns the coordinator's bound listen address (useful with ":0").
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close stops accepting registrations and drops every worker.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	workers := make([]*workerConn, 0, len(co.workers))
	for _, w := range co.workers {
		workers = append(workers, w)
	}
	co.mu.Unlock()
	co.ln.Close()
	for _, w := range workers {
		co.drop(w, errors.New("coordinator shutting down"))
	}
	co.wg.Wait()
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// acceptLoop admits worker connections until the listener closes.
func (co *Coordinator) acceptLoop() {
	defer co.wg.Done()
	for {
		conn, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.wg.Add(1)
		go func() {
			defer co.wg.Done()
			co.handleConn(conn)
		}()
	}
}

// handleConn runs one worker connection: handshake, registration, then the
// read loop. The per-read deadline is the heartbeat timeout, so a silent or
// partitioned worker is detected without a separate liveness timer.
func (co *Coordinator) handleConn(conn net.Conn) {
	wc := newWireConn(conn, co.cfg.HeartbeatTimeout, co.cfg.WriteTimeout)
	hello, err := wc.readFrame()
	if err != nil || hello.typ != frameHello {
		co.logf("dist: rejecting connection from %s: bad hello (%v)", conn.RemoteAddr(), err)
		wc.Close()
		return
	}
	name, err := decodeHello(hello.payload)
	if err != nil {
		co.logf("dist: rejecting connection from %s: %v", conn.RemoteAddr(), err)
		wc.Close()
		return
	}
	id := co.nextWorker.Add(1)
	w := &workerConn{
		id: id, name: name, addr: conn.RemoteAddr().String(),
		wc: wc, pending: make(map[uint64]chan rpcReply),
	}
	w.lastBeat.Store(time.Now().UnixNano())
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], id)
	if err := wc.writeFrame(frameHelloOK, hello.req, idb[:]); err != nil {
		wc.Close()
		return
	}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		wc.Close()
		return
	}
	co.workers[id] = w
	co.hashes.add(id)
	co.mu.Unlock()
	co.registeredTotal.Add(1)
	co.logf("dist: worker %q registered from %s (id %d)", name, w.addr, id)

	for {
		f, err := wc.readFrame()
		if err != nil {
			co.drop(w, err)
			return
		}
		switch f.typ {
		case frameHeartbeat:
			w.lastBeat.Store(time.Now().UnixNano())
			// Echo the heartbeat: the ack is what refreshes the worker's
			// own read deadline.
			if err := wc.writeFrame(frameHeartbeat, f.req, nil); err != nil {
				co.drop(w, err)
				return
			}
		case frameResult, frameError, frameReplicateOK, frameReplicaData:
			w.deliver(f)
		case frameDrain:
			co.beginDrain(w)
		default:
			co.drop(w, corruptf("unexpected frame type %d from worker", f.typ))
			return
		}
	}
}

// drop removes a worker: out of the ring, pending RPCs failed (their waiters
// see a closed channel and surface a worker-lost error into the engine's
// retry path), connection closed, tombstone recorded.
func (co *Coordinator) drop(w *workerConn, cause error) {
	co.mu.Lock()
	if _, ok := co.workers[w.id]; !ok {
		co.mu.Unlock()
		return // already dropped
	}
	delete(co.workers, w.id)
	co.hashes.remove(w.id)
	info := w.info(false)
	co.tombs = append(co.tombs, info)
	if len(co.tombs) > maxTombstones {
		co.tombs = co.tombs[len(co.tombs)-maxTombstones:]
	}
	co.mu.Unlock()
	co.lostTotal.Add(1)
	w.pmu.Lock()
	w.gone = true
	for req, ch := range w.pending {
		close(ch)
		delete(w.pending, req)
	}
	w.pmu.Unlock()
	w.wc.Close()
	co.logf("dist: worker %q lost: %v", w.name, cause)
}

// info snapshots one worker's stats. Callers hold the coordinator mutex
// (which guards the breaker/drain fields).
func (w *workerConn) info(live bool) WorkerInfo {
	inf := WorkerInfo{
		ID: w.id, Name: w.name, Addr: w.addr, Live: live,
		TasksDone:    w.tasksDone.Load(),
		TasksFailed:  w.tasksFailed.Load(),
		ReplicasHeld: w.replicas.Load(),
		BreakerTrips: w.trips,
	}
	switch {
	case w.draining:
		inf.Breaker = "draining"
	case w.open:
		inf.Breaker = "open"
	case w.probation:
		inf.Breaker = "probation"
	default:
		inf.Breaker = "closed"
	}
	if live {
		inf.HeartbeatAgeMS = time.Since(time.Unix(0, w.lastBeat.Load())).Milliseconds()
	}
	return inf
}

// beginDrain handles a worker's drain announcement: out of the routing ring
// immediately, but the session stays up so in-flight task results (and
// replica reads) still deliver. The worker closes the connection once its
// in-flight work is done, which lands in drop as a normal disconnect.
func (co *Coordinator) beginDrain(w *workerConn) {
	co.mu.Lock()
	first := !w.draining
	if first {
		w.draining = true
		co.hashes.remove(w.id)
	}
	co.mu.Unlock()
	if first {
		co.drainsAnnounced.Add(1)
		co.logf("dist: worker %q draining (unrouted, session open for in-flight results)", w.name)
	}
}

// noteFailure records one task failure against a worker's breaker; at
// BreakerTrips consecutive failures the breaker opens: the worker leaves the
// routing ring for BreakerCooldown, after which pick re-admits it on
// probation. Heartbeats keep flowing — a flapping worker is unrouted, not
// disconnected.
func (co *Coordinator) noteFailure(w *workerConn) {
	if co.cfg.BreakerTrips <= 0 {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if w.draining || w.open {
		return
	}
	w.trips++
	if w.trips >= co.cfg.BreakerTrips {
		w.open = true
		w.probation = false
		w.openUntil = time.Now().Add(co.cfg.BreakerCooldown)
		co.hashes.remove(w.id)
		co.breakerOpened.Add(1)
		co.logf("dist: worker %q breaker open after %d consecutive failures (cooldown %v)",
			w.name, w.trips, co.cfg.BreakerCooldown)
	}
}

// noteSuccess closes a worker's breaker bookkeeping after a completed task:
// probation ends and the consecutive-failure count resets.
func (co *Coordinator) noteSuccess(w *workerConn) {
	if co.cfg.BreakerTrips <= 0 {
		return
	}
	co.mu.Lock()
	if w.trips != 0 || w.probation {
		w.trips = 0
		w.probation = false
	}
	co.mu.Unlock()
}

// BreakerStats returns the circuit-breaker and drain counters: breakers
// tripped open, probation re-admissions, and graceful drains announced.
func (co *Coordinator) BreakerStats() (opened, readmitted, drained int64) {
	return co.breakerOpened.Load(), co.breakerReadmit.Load(), co.drainsAnnounced.Load()
}

// Workers returns the live workers followed by the recent lost ones,
// ordered by registration.
func (co *Coordinator) Workers() []WorkerInfo {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerInfo, 0, len(co.workers)+len(co.tombs))
	for _, w := range co.workers {
		out = append(out, w.info(true))
	}
	sortWorkers(out)
	return append(out, co.tombs...)
}

// sortWorkers orders by id ascending (registration order).
func sortWorkers(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// LiveWorkers returns the number of currently registered live workers.
func (co *Coordinator) LiveWorkers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.workers)
}

// Counts returns the cumulative registered, currently live, and cumulative
// lost worker counts, plus remote dispatch counters.
func (co *Coordinator) Counts() (registered, live, lost, dispatched, declined int64) {
	co.mu.Lock()
	live = int64(len(co.workers))
	co.mu.Unlock()
	return co.registeredTotal.Load(), live, co.lostTotal.Load(),
		co.dispatched.Load(), co.declined.Load()
}

// pick routes a ring key to a live worker. It doubles as the breaker's
// probation clock: any open breaker whose cooldown has passed is re-admitted
// here, with the trip count left one short of the threshold so a single
// probation failure re-opens it while a success closes it fully.
func (co *Coordinator) pick(key uint64) *workerConn {
	co.mu.Lock()
	defer co.mu.Unlock()
	now := time.Now()
	for _, w := range co.workers {
		if w.open && !w.draining && now.After(w.openUntil) {
			w.open = false
			w.probation = true
			w.trips = co.cfg.BreakerTrips - 1
			co.hashes.add(w.id)
			co.breakerReadmit.Add(1)
			co.logf("dist: worker %q re-admitted on probation", w.name)
		}
	}
	id, ok := co.hashes.lookup(key)
	if !ok {
		return nil
	}
	return co.workers[id]
}

// ExecRemote implements cluster.TaskExecutor: it routes one task attempt to
// a worker by consistent hashing on (stage, task, attempt) and returns the
// worker's result bytes. No live worker declines with cluster.ErrNoRemote
// (the attempt runs locally); a worker failing or dying mid-task returns a
// real error, which consumes one engine retry — the next attempt hashes to a
// different ring point and re-disperses over the survivors.
func (co *Coordinator) ExecRemote(ctx context.Context, stage cluster.StageInfo, att cluster.AttemptInfo, kind string, payload func() []byte) ([]byte, error) {
	w := co.pick(routeKey(stage.Seq, att.Task, att.Attempt))
	if w == nil {
		co.declined.Add(1)
		return nil, cluster.ErrNoRemote
	}
	req := co.nextReq.Add(1)
	ch, err := w.registerPending(req)
	if err != nil {
		// The worker died between pick and dispatch; nothing was sent, so
		// fall back to local execution instead of burning a retry.
		co.declined.Add(1)
		return nil, cluster.ErrNoRemote
	}
	body, err := encodeTask(kind, payload())
	if err != nil {
		w.unregisterPending(req)
		return nil, err
	}
	if err := w.wc.writeFrame(frameTask, req, body); err != nil {
		w.unregisterPending(req)
		co.drop(w, err)
		return nil, fmt.Errorf("dist: dispatching %s task %d to worker %q: %w", kind, att.Task, w.name, err)
	}
	co.dispatched.Add(1)
	timer := time.NewTimer(co.cfg.TaskTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		w.unregisterPending(req)
		return nil, ctx.Err()
	case <-timer.C:
		w.unregisterPending(req)
		co.noteFailure(w)
		return nil, fmt.Errorf("dist: %s task %d timed out after %v on worker %q",
			kind, att.Task, co.cfg.TaskTimeout, w.name)
	case rep, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("dist: worker %q lost while running %s task %d", w.name, kind, att.Task)
		}
		switch rep.typ {
		case frameResult:
			w.tasksDone.Add(1)
			co.noteSuccess(w)
			return rep.payload, nil
		case frameError:
			w.tasksFailed.Add(1)
			co.noteFailure(w)
			return nil, fmt.Errorf("dist: worker %q failed %s task %d: %s", w.name, kind, att.Task, rep.payload)
		default:
			return nil, corruptf("unexpected reply type %d for task request", rep.typ)
		}
	}
}

// Replicate pushes an artifact to every live worker and returns how many
// acknowledged storing it. Replication is best-effort fan-out: a worker that
// died mid-push is simply skipped (it re-registers empty).
func (co *Coordinator) Replicate(ctx context.Context, id string, data []byte) int {
	body, err := encodeReplica(id, data)
	if err != nil {
		return 0
	}
	co.mu.Lock()
	workers := make([]*workerConn, 0, len(co.workers))
	for _, w := range co.workers {
		workers = append(workers, w)
	}
	co.mu.Unlock()
	stored := 0
	for _, w := range workers {
		if co.rpc(ctx, w, frameReplicate, body) != nil {
			continue
		}
		w.replicas.Add(1)
		stored++
	}
	return stored
}

// FetchReplica retrieves a replicated artifact from any live worker,
// trying them in registration order.
func (co *Coordinator) FetchReplica(ctx context.Context, id string) ([]byte, error) {
	body, err := encodeReplica(id, nil)
	if err != nil {
		return nil, err
	}
	co.mu.Lock()
	workers := make([]*workerConn, 0, len(co.workers))
	for _, w := range co.workers {
		workers = append(workers, w)
	}
	co.mu.Unlock()
	var lastErr error = fmt.Errorf("dist: no live worker holds artifact %s", id)
	for _, w := range workers {
		data, err := co.rpcData(ctx, w, frameReplicaGet, body)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// rpc runs one fire-and-ack request against a worker.
func (co *Coordinator) rpc(ctx context.Context, w *workerConn, typ byte, body []byte) error {
	_, err := co.rpcData(ctx, w, typ, body)
	return err
}

// rpcData runs one request/response exchange against a worker.
func (co *Coordinator) rpcData(ctx context.Context, w *workerConn, typ byte, body []byte) ([]byte, error) {
	req := co.nextReq.Add(1)
	ch, err := w.registerPending(req)
	if err != nil {
		return nil, err
	}
	if err := w.wc.writeFrame(typ, req, body); err != nil {
		w.unregisterPending(req)
		co.drop(w, err)
		return nil, err
	}
	timer := time.NewTimer(co.cfg.TaskTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		w.unregisterPending(req)
		return nil, ctx.Err()
	case <-timer.C:
		w.unregisterPending(req)
		return nil, fmt.Errorf("dist: rpc to worker %q timed out", w.name)
	case rep, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("dist: worker %q lost mid-rpc", w.name)
		}
		if rep.typ == frameError {
			return nil, fmt.Errorf("dist: worker %q: %s", w.name, rep.payload)
		}
		return rep.payload, nil
	}
}
