package dist

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csb/internal/dist/task"
)

// Worker defaults applied by RunWorker to zero-valued WorkerConfig fields.
const (
	// DefaultDialTimeout bounds one connection attempt to the coordinator.
	DefaultDialTimeout = 5 * time.Second
	// DefaultReconnectBase is the first reconnect backoff; it doubles per
	// consecutive failure up to DefaultReconnectMax, with jitter.
	DefaultReconnectBase = 200 * time.Millisecond
	// DefaultReconnectMax caps the reconnect backoff.
	DefaultReconnectMax = 5 * time.Second
	// DefaultReplicaBudget bounds the worker's replica store.
	DefaultReplicaBudget = 256 << 20
)

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's listen address to join.
	Coordinator string
	// Name identifies the worker in /workers and log lines (defaults to
	// "worker").
	Name string
	// HeartbeatInterval is how often to heartbeat (0 means
	// DefaultHeartbeatInterval). The read deadline is derived from it, so
	// missing coordinator acks also tears the session down.
	HeartbeatInterval time.Duration
	// DialTimeout bounds one connection attempt (0 means DefaultDialTimeout).
	DialTimeout time.Duration
	// ReconnectMax caps the jittered exponential reconnect backoff
	// (0 means DefaultReconnectMax).
	ReconnectMax time.Duration
	// ReplicaBudget bounds the bytes of replicated artifacts kept (0 means
	// DefaultReplicaBudget); the oldest replicas evict first.
	ReplicaBudget int64
	// WrapConn, when non-nil, wraps the dialed coordinator connection —
	// the seam tests and the -chaos-net flag use to interpose a
	// chaosnet fault proxy under the CSBD1 wire layer.
	WrapConn func(net.Conn) net.Conn
	// Logf, when non-nil, receives session lifecycle messages.
	Logf func(format string, args ...any)
}

// Worker is the csbd worker runtime: it joins a coordinator, executes
// dispatched task kinds (everything registered in internal/dist/task), and
// stores replicated artifacts. Run drives the connect/serve/reconnect loop
// until the context ends.
type Worker struct {
	cfg WorkerConfig

	// Replica store: id -> bytes, with insertion order for byte-budget
	// eviction (oldest first).
	rmu     sync.Mutex
	reps    map[string][]byte
	order   []string
	rbytes  int64
	rstored atomic.Int64

	tasksRun    atomic.Int64
	tasksFailed atomic.Int64
	sessions    atomic.Int64 // completed connection sessions (reconnect count)

	// Graceful drain: Drain announces intent to the coordinator, finishes
	// in-flight tasks, then Run returns.
	drainOnce sync.Once
	drainCh   chan struct{}
	draining  atomic.Bool
	inflight  atomic.Int64
}

// NewWorker validates cfg and returns a Worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator address")
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.ReconnectMax == 0 {
		cfg.ReconnectMax = DefaultReconnectMax
	}
	if cfg.ReplicaBudget == 0 {
		cfg.ReplicaBudget = DefaultReplicaBudget
	}
	return &Worker{cfg: cfg, reps: make(map[string][]byte), drainCh: make(chan struct{})}, nil
}

// Drain flips the worker into graceful shutdown: it tells the coordinator to
// stop routing new tasks here (frameDrain), lets in-flight tasks finish and
// deliver their results, then closes the session and makes Run return nil.
// This is the SIGTERM path of csbd -role worker; safe to call more than once
// and from any goroutine.
func (w *Worker) Drain() {
	w.drainOnce.Do(func() {
		w.draining.Store(true)
		close(w.drainCh)
	})
}

// Draining reports whether Drain has been called.
func (w *Worker) Draining() bool { return w.draining.Load() }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// TasksRun returns how many dispatched tasks this worker has executed.
func (w *Worker) TasksRun() int64 { return w.tasksRun.Load() }

// ReplicasStored returns how many replicate pushes this worker accepted.
func (w *Worker) ReplicasStored() int64 { return w.rstored.Load() }

// Run joins the coordinator and serves tasks until ctx ends, reconnecting
// with jittered exponential backoff after connection loss. It returns nil
// once ctx is done.
func (w *Worker) Run(ctx context.Context) error {
	backoff := DefaultReconnectBase
	for attempt := uint64(0); ; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		err := w.session(ctx, attempt)
		if ctx.Err() != nil || w.draining.Load() {
			return nil
		}
		w.logf("dist: worker %q session ended: %v (reconnecting in ~%v)", w.cfg.Name, err, backoff)
		frac := reconnectJitter(w.cfg.Name, attempt)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(time.Duration(float64(backoff) * frac)):
		}
		if backoff *= 2; backoff > w.cfg.ReconnectMax {
			backoff = w.cfg.ReconnectMax
		}
	}
}

// reconnectJitter maps (worker name, attempt) deterministically into
// [0.5, 1.5), the backoff fraction for one reconnect attempt. The name is
// folded into the mix64 key so a fleet of workers reconnecting after a
// coordinator restart spreads out instead of thundering back in lockstep —
// keying on the attempt counter alone made every worker compute the
// identical schedule.
func reconnectJitter(name string, attempt uint64) float64 {
	h := uint64(0x7265636f6e6e) // "reconn"
	for _, b := range []byte(name) {
		h = mix64(h ^ uint64(b))
	}
	return 0.5 + float64(mix64(h^attempt)>>11)/(1<<53)
}

// session runs one connection lifetime: dial, handshake, serve frames.
func (w *Worker) session(ctx context.Context, attempt uint64) error {
	d := net.Dialer{Timeout: w.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", w.cfg.Coordinator)
	if err != nil {
		return err
	}
	if w.cfg.WrapConn != nil {
		conn = w.cfg.WrapConn(conn)
	}
	// The read deadline is 3 heartbeat intervals plus the coordinator's own
	// grace: heartbeat acks flow back every interval, so a healthy session
	// always has traffic well inside it.
	wc := newWireConn(conn, 3*w.cfg.HeartbeatInterval+time.Second, DefaultWriteTimeout)
	defer wc.Close()
	hello, err := encodeHello(w.cfg.Name)
	if err != nil {
		return err
	}
	if err := wc.writeFrame(frameHello, 0, hello); err != nil {
		return err
	}
	ok, err := wc.readFrame()
	if err != nil {
		return err
	}
	if ok.typ != frameHelloOK || len(ok.payload) != 8 {
		return corruptf("bad hello reply (type %d, %d bytes)", ok.typ, len(ok.payload))
	}
	id := binary.BigEndian.Uint64(ok.payload)
	w.sessions.Add(1)
	w.logf("dist: worker %q joined %s as id %d", w.cfg.Name, w.cfg.Coordinator, id)

	// Heartbeat sender; its failure also tears the session down via the
	// read deadline (no ack traffic).
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		tick := time.NewTicker(w.cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if err := wc.writeFrame(frameHeartbeat, 0, nil); err != nil {
					return
				}
			}
		}
	}()
	// Close the connection when ctx ends so the blocking read returns.
	go func() {
		<-hbCtx.Done()
		wc.Close()
	}()
	// Graceful drain: announce it to the coordinator (which unroutes this
	// worker but keeps the session for in-flight results), wait out the
	// in-flight tasks, then close so the read loop below returns. A task
	// that races the drain frame still runs to completion — the inflight
	// counter covers it.
	go func() {
		select {
		case <-hbCtx.Done():
			return
		case <-w.drainCh:
		}
		w.logf("dist: worker %q draining", w.cfg.Name)
		wc.writeFrame(frameDrain, 0, nil)
		for w.inflight.Load() > 0 {
			select {
			case <-hbCtx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		wc.Close()
	}()

	var tasks sync.WaitGroup
	defer tasks.Wait()
	for {
		f, err := wc.readFrame()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameHeartbeat: // ack; the read deadline was just refreshed
		case frameTask:
			tasks.Add(1)
			w.inflight.Add(1)
			go func(f frame) {
				defer tasks.Done()
				defer w.inflight.Add(-1)
				w.runTask(wc, f)
			}(f)
		case frameReplicate:
			w.storeReplica(wc, f)
		case frameReplicaGet:
			w.serveReplica(wc, f)
		default:
			return corruptf("unexpected frame type %d from coordinator", f.typ)
		}
	}
}

// runTask executes one dispatched task and replies with its result bytes.
func (w *Worker) runTask(wc *wireConn, f frame) {
	kind, payload, err := decodeTask(f.payload)
	var result []byte
	if err == nil {
		result, err = task.Run(kind, payload)
	}
	if err != nil {
		w.tasksFailed.Add(1)
		wc.writeFrame(frameError, f.req, []byte(err.Error()))
		return
	}
	w.tasksRun.Add(1)
	if err := wc.writeFrame(frameResult, f.req, result); err != nil {
		// Connection is going down; the read loop will notice and
		// reconnect. The coordinator re-dispatches through the retry path.
		w.logf("dist: worker %q failed to send %s result: %v", w.cfg.Name, kind, err)
	}
}

// storeReplica installs one replicated artifact under the byte budget.
func (w *Worker) storeReplica(wc *wireConn, f frame) {
	id, data, err := decodeReplica(f.payload)
	if err != nil {
		wc.writeFrame(frameError, f.req, []byte(err.Error()))
		return
	}
	if int64(len(data)) > w.cfg.ReplicaBudget {
		wc.writeFrame(frameError, f.req, []byte("replica exceeds worker budget"))
		return
	}
	w.rmu.Lock()
	if old, ok := w.reps[id]; ok {
		w.rbytes -= int64(len(old))
	} else {
		w.order = append(w.order, id)
	}
	w.reps[id] = data
	w.rbytes += int64(len(data))
	for w.rbytes > w.cfg.ReplicaBudget && len(w.order) > 0 {
		oldest := w.order[0]
		w.order = w.order[1:]
		if oldest == id {
			// Never evict the replica just stored; re-queue it as newest.
			w.order = append(w.order, oldest)
			continue
		}
		w.rbytes -= int64(len(w.reps[oldest]))
		delete(w.reps, oldest)
	}
	w.rmu.Unlock()
	w.rstored.Add(1)
	wc.writeFrame(frameReplicateOK, f.req, nil)
}

// serveReplica answers a replica read.
func (w *Worker) serveReplica(wc *wireConn, f frame) {
	id, _, err := decodeReplica(f.payload)
	if err != nil {
		wc.writeFrame(frameError, f.req, []byte(err.Error()))
		return
	}
	w.rmu.Lock()
	data, ok := w.reps[id]
	w.rmu.Unlock()
	if !ok {
		wc.writeFrame(frameError, f.req, []byte("replica not held: "+id))
		return
	}
	wc.writeFrame(frameReplicaData, f.req, data)
}
