// Package dist is the distributed execution subsystem of csb: a coordinator
// that registers worker processes over a framed TCP RPC protocol, routes
// remotable engine stage tasks to them by consistent hashing on
// (stage, task, attempt), replicates finished artifacts so any worker can
// serve reads, and detects worker loss with heartbeat deadlines — surfacing
// it as task errors that the engine's existing retry/backoff budget turns
// into re-dispatches on the surviving workers (or local fallback).
//
// Determinism: the coordinator only ever ships task payloads whose results
// are pure functions of their bytes (internal/dist/task), and the engine's
// at-most-once commit slots (internal/cluster/fault.go) arbitrate between
// remote, retried and speculative attempts exactly as they do locally. Where
// a task runs — in process, on 1 worker, on N workers, or re-dispatched
// after a mid-stage worker kill — never changes the committed bytes.
//
// The wire format (CSBD1) follows the CSBS1 conventions of internal/replay:
// versioned magic, length-framed big-endian records, per-frame CRC32 (IEEE),
// typed corruption errors, and no pre-allocation from untrusted counts.
//
//	handshake: the worker opens the connection with a hello frame whose
//	payload begins "CSBD1"; the coordinator answers helloOK with the
//	assigned worker id.
//
//	frame:
//	  [0]     type
//	  [1:9]   request id, uint64 BE (0 on one-way frames; a response echoes
//	          the request's id)
//	  [9:13]  payload length, uint32 BE
//	  [13:..] payload
//	  [..+4]  CRC32 (IEEE) of the payload, uint32 BE
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// Wire-format constants.
const (
	// MagicRPC opens every CSBD1 hello payload.
	MagicRPC = "CSBD1"
	// frameHeaderLen is type + request id + payload length.
	frameHeaderLen = 1 + 8 + 4
	// maxFramePayload bounds one frame; larger tasks must chunk. 64 MiB
	// comfortably holds the largest row-encode partition csbd admits.
	maxFramePayload = 64 << 20
)

// Frame types.
const (
	frameHello       = 1  // worker -> coordinator: magic + name
	frameHelloOK     = 2  // coordinator -> worker: assigned worker id
	frameHeartbeat   = 3  // worker -> coordinator, echoed back as the ack
	frameTask        = 4  // coordinator -> worker: kind + payload
	frameResult      = 5  // worker -> coordinator: task result bytes
	frameError       = 6  // either direction: error string for a request id
	frameReplicate   = 7  // coordinator -> worker: artifact id + bytes
	frameReplicateOK = 8  // worker -> coordinator: replica stored
	frameReplicaGet  = 9  // coordinator -> worker: artifact id
	frameReplicaData = 10 // worker -> coordinator: artifact bytes
	frameDrain       = 11 // worker -> coordinator: draining, stop routing to me
)

// ErrCorruptRPC tags every decode failure caused by malformed CSBD1 bytes:
// bad magic, oversized frames, checksum mismatches. Callers distinguish
// corruption from plain connection loss (io.EOF and friends) with errors.Is.
var ErrCorruptRPC = errors.New("corrupt rpc stream")

// corruptf builds an ErrCorruptRPC-tagged error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("dist: "+format+": %w", append(args, ErrCorruptRPC)...)
}

// frame is one decoded CSBD1 frame.
type frame struct {
	typ     byte
	req     uint64
	payload []byte
}

// wireConn wraps one TCP connection with CSBD1 framing: a write mutex so
// concurrent senders interleave whole frames, and deadline-bounded reads so
// a silent peer can never hang the read loop forever.
type wireConn struct {
	c  net.Conn
	mu sync.Mutex // serializes writeFrame

	// readTimeout bounds every readFrame; heartbeats flow in both
	// directions, so a healthy peer always produces traffic within it.
	readTimeout time.Duration
	// writeTimeout bounds every writeFrame.
	writeTimeout time.Duration
}

func newWireConn(c net.Conn, readTimeout, writeTimeout time.Duration) *wireConn {
	return &wireConn{c: c, readTimeout: readTimeout, writeTimeout: writeTimeout}
}

// writeFrame sends one frame atomically with respect to other writers.
func (w *wireConn) writeFrame(typ byte, req uint64, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("dist: frame payload %d exceeds %d bytes", len(payload), maxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = typ
	binary.BigEndian.PutUint64(hdr[1:9], req)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writeTimeout > 0 {
		if err := w.c.SetWriteDeadline(time.Now().Add(w.writeTimeout)); err != nil {
			return err
		}
	}
	// One contiguous write per section; the kernel coalesces, and a partial
	// write surfaces as an error rather than a torn frame.
	if _, err := w.c.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.c.Write(payload); err != nil {
			return err
		}
	}
	_, err := w.c.Write(sum[:])
	return err
}

// readFrame reads and verifies one frame, bounded by the read timeout.
func (w *wireConn) readFrame() (frame, error) {
	if w.readTimeout > 0 {
		if err := w.c.SetReadDeadline(time.Now().Add(w.readTimeout)); err != nil {
			return frame{}, err
		}
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(w.c, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > maxFramePayload {
		return frame{}, corruptf("frame payload %d exceeds %d bytes", n, maxFramePayload)
	}
	f := frame{typ: hdr[0], req: binary.BigEndian.Uint64(hdr[1:9])}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(w.c, f.payload); err != nil {
			return frame{}, err
		}
	}
	var sum [4]byte
	if _, err := io.ReadFull(w.c, sum[:]); err != nil {
		return frame{}, err
	}
	if got, want := binary.BigEndian.Uint32(sum[:]), crc32.ChecksumIEEE(f.payload); got != want {
		return frame{}, corruptf("frame checksum %08x, want %08x", got, want)
	}
	return f, nil
}

func (w *wireConn) Close() error { return w.c.Close() }

// encodeHello builds a hello payload: magic + worker name.
func encodeHello(name string) ([]byte, error) {
	if len(name) > 255 {
		return nil, fmt.Errorf("dist: worker name %q too long", name)
	}
	b := make([]byte, 0, len(MagicRPC)+1+len(name))
	b = append(b, MagicRPC...)
	b = append(b, byte(len(name)))
	b = append(b, name...)
	return b, nil
}

// decodeHello validates a hello payload and returns the worker name.
func decodeHello(p []byte) (string, error) {
	if len(p) < len(MagicRPC)+1 {
		return "", corruptf("short hello (%d bytes)", len(p))
	}
	if string(p[:len(MagicRPC)]) != MagicRPC {
		return "", corruptf("bad hello magic %q", p[:len(MagicRPC)])
	}
	n := int(p[len(MagicRPC)])
	rest := p[len(MagicRPC)+1:]
	if len(rest) != n {
		return "", corruptf("hello name length %d, have %d bytes", n, len(rest))
	}
	return string(rest), nil
}

// encodeTask builds a task payload: kind + task bytes.
func encodeTask(kind string, payload []byte) ([]byte, error) {
	if len(kind) == 0 || len(kind) > 255 {
		return nil, fmt.Errorf("dist: bad task kind %q", kind)
	}
	b := make([]byte, 0, 1+len(kind)+len(payload))
	b = append(b, byte(len(kind)))
	b = append(b, kind...)
	b = append(b, payload...)
	return b, nil
}

// decodeTask splits a task payload into kind and task bytes.
func decodeTask(p []byte) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, corruptf("empty task frame")
	}
	n := int(p[0])
	if len(p) < 1+n {
		return "", nil, corruptf("task kind length %d, have %d bytes", n, len(p)-1)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// encodeReplica builds a replicate/replica-data payload: id + bytes.
func encodeReplica(id string, data []byte) ([]byte, error) {
	if len(id) == 0 || len(id) > 255 {
		return nil, fmt.Errorf("dist: bad artifact id %q", id)
	}
	b := make([]byte, 0, 1+len(id)+len(data))
	b = append(b, byte(len(id)))
	b = append(b, id...)
	b = append(b, data...)
	return b, nil
}

// decodeReplica splits a replicate payload into id and bytes.
func decodeReplica(p []byte) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, corruptf("empty replica frame")
	}
	n := int(p[0])
	if n == 0 || len(p) < 1+n {
		return "", nil, corruptf("replica id length %d, have %d bytes", n, len(p)-1)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}
