package dist

// ring.go is the task-routing half of the coordinator: a consistent hash
// ring over the live workers, looked up with a key derived from
// (stage sequence, task index, attempt number). Folding the attempt number
// into the key means a retry of a failed task lands on a *different* point
// of the ring — after a worker dies mid-stage, its re-dispatched tasks
// spread over the survivors instead of hammering the hole. Routing affects
// only placement, never bytes, so the ring needs stability (small worker
// churn moves few keys), not determinism across deployments.

import "sort"

// vnodesPerWorker spreads each worker over the ring so load stays even at
// small worker counts.
const vnodesPerWorker = 64

// ring maps uint64 keys to worker ids via consistent hashing. Not
// goroutine-safe; the coordinator guards it with its own mutex.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   uint64
}

// mix64 is the SplitMix64 finalizer, the repo's standard bit mixer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// routeKey derives the ring key for one task attempt.
func routeKey(stageSeq uint64, task, attempt int) uint64 {
	return mix64(mix64(mix64(stageSeq)^uint64(task)) ^ uint64(attempt))
}

// add inserts a worker's virtual nodes.
func (r *ring) add(id uint64) {
	for v := 0; v < vnodesPerWorker; v++ {
		r.points = append(r.points, ringPoint{hash: mix64(mix64(id) ^ uint64(v)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a worker's virtual nodes.
func (r *ring) remove(id uint64) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// lookup returns the worker owning key, or (0, false) on an empty ring.
func (r *ring) lookup(key uint64) (uint64, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns keys past the last
	}
	return r.points[i].id, true
}
