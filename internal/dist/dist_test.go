// End-to-end tests of the distributed runtime: real coordinator, real TCP,
// real worker loops — asserting the PR's core invariant that artifact bytes
// are identical in-process, on 1 worker, on 4 workers, and across a worker
// kill mid-stage.
package dist_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"csb/internal/cluster"
	"csb/internal/dist"
	"csb/internal/dist/task"
	"csb/internal/serve"
)

func init() {
	// disttest.slow: echo the payload after a short delay, so a stage stays
	// in flight long enough for a mid-stage worker kill to land.
	task.Register("disttest.slow", func(payload []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return payload, nil
	})
}

// pool is a coordinator plus n in-process workers, each cancellable on its
// own (kill(i) simulates a worker process dying: its connection drops and
// its in-flight tasks fail into the engine's retry path).
type pool struct {
	co      *dist.Coordinator
	workers []*dist.Worker
	runDone []chan struct{} // closed when the worker's Run returns
	cancels []context.CancelFunc
	wg      sync.WaitGroup
}

func startPool(t *testing.T, n int) *pool {
	return startPoolCfg(t, n, dist.Config{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 2 * time.Second,
		TaskTimeout:      10 * time.Second,
	}, nil)
}

// startPoolCfg starts a pool with a custom coordinator config and an
// optional per-worker config hook (chaos wrapping, names).
func startPoolCfg(t *testing.T, n int, cfg dist.Config, workerCfg func(i int, wc *dist.WorkerConfig)) *pool {
	t.Helper()
	co, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &pool{co: co}
	t.Cleanup(func() {
		for _, cancel := range p.cancels {
			cancel()
		}
		p.wg.Wait()
		co.Close()
	})
	for i := 0; i < n; i++ {
		wcfg := dist.WorkerConfig{
			Coordinator:       co.Addr(),
			Name:              fmt.Sprintf("w%d", i),
			HeartbeatInterval: 100 * time.Millisecond,
		}
		if workerCfg != nil {
			workerCfg(i, &wcfg)
		}
		w, err := dist.NewWorker(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		p.workers = append(p.workers, w)
		p.cancels = append(p.cancels, cancel)
		done := make(chan struct{})
		p.runDone = append(p.runDone, done)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer close(done)
			w.Run(ctx)
		}()
	}
	waitLive(t, co, n)
	return p
}

// kill cancels one worker's context, tearing its connection down.
func (p *pool) kill(i int) { p.cancels[i]() }

func waitLive(t *testing.T, co *dist.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for co.LiveWorkers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered", co.LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// buildDigest runs one fixed-seed generation job on a cluster wired to ex
// (nil = in-process) and returns the artifact's SHA-256.
func buildDigest(t *testing.T, ex cluster.TaskExecutor, format string) [32]byte {
	t.Helper()
	spec := serve.Spec{Generator: serve.GenPGSK, Edges: 4000, Seed: 7, Format: format}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{Nodes: 2, CoresPerNode: 4, Executor: ex})
	if err != nil {
		t.Fatal(err)
	}
	data, err := serve.BuildArtifact(context.Background(), spec, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty artifact")
	}
	return sha256.Sum256(data)
}

func TestArtifactDigestsMatchAcrossWorkerCounts(t *testing.T) {
	for _, format := range []string{"tsv", "csv", "ndjson"} {
		t.Run(format, func(t *testing.T) {
			golden := buildDigest(t, nil, format)

			one := startPool(t, 1)
			if got := buildDigest(t, one.co, format); got != golden {
				t.Fatalf("1-worker digest %x != in-process %x", got, golden)
			}

			four := startPool(t, 4)
			if got := buildDigest(t, four.co, format); got != golden {
				t.Fatalf("4-worker digest %x != in-process %x", got, golden)
			}
			if _, _, _, dispatched, _ := four.co.Counts(); dispatched == 0 {
				t.Fatal("no tasks were dispatched to workers")
			}
		})
	}
}

func TestWorkerKillMidStageRedispatches(t *testing.T) {
	p := startPool(t, 4)

	// A 32-task remotable stage of slow echo tasks; kill one worker once the
	// stage is in flight. Its tasks fail, consume one retry each, and hash
	// onto the survivors — the collected output must be unchanged.
	c := cluster.MustNew(cluster.Config{Nodes: 1, CoresPerNode: 8, Executor: p.co})
	in := make([]int, 256)
	for i := range in {
		in[i] = i
	}
	ds := cluster.Parallelize(c, in, 32)
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond) // mid-stage: tasks take >=20ms each
		p.kill(2)
		close(done)
	}()
	out := cluster.Collect(cluster.MapPartitionsRemotable(ds, "disttest.slow",
		func(part int, xs []int) []int { return xs },
		func(part int, xs []int) []byte {
			b := make([]byte, 8*len(xs))
			for i, x := range xs {
				binary.BigEndian.PutUint64(b[8*i:], uint64(x))
			}
			return b
		},
		func(result []byte) ([]int, error) {
			if len(result)%8 != 0 {
				return nil, fmt.Errorf("ragged result")
			}
			xs := make([]int, len(result)/8)
			for i := range xs {
				xs[i] = int(binary.BigEndian.Uint64(result[8*i:]))
			}
			return xs, nil
		}))
	<-done
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("collected %d values, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("value %d = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestWorkerKillMidBuildByteIdentical(t *testing.T) {
	// The acceptance-criterion shape: a full fixed-seed generation job with a
	// worker killed mid-run still digests identically to in-process.
	golden := buildDigest(t, nil, "tsv")
	p := startPool(t, 4)
	killed := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		p.kill(0)
		close(killed)
	}()
	if got := buildDigest(t, p.co, "tsv"); got != golden {
		t.Fatalf("digest after worker kill %x != in-process %x", got, golden)
	}
	<-killed
	if _, live, lost, _, _ := p.co.Counts(); live != 3 || lost == 0 {
		t.Fatalf("live=%d lost=%d after kill, want 3 live, >0 lost", live, lost)
	}
}

func TestReplicationRoundTrip(t *testing.T) {
	p := startPool(t, 2)
	data := []byte("artifact payload for replication")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if stored := p.co.Replicate(ctx, "art1", data); stored != 2 {
		t.Fatalf("Replicate stored on %d workers, want 2", stored)
	}
	got, err := p.co.FetchReplica(ctx, "art1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("fetched %q, want %q", got, data)
	}
	if _, err := p.co.FetchReplica(ctx, "missing"); err == nil {
		t.Fatal("fetch of unknown artifact succeeded")
	}
}

func TestWorkerLossDetectedByHeartbeatDeadline(t *testing.T) {
	p := startPool(t, 2)
	p.kill(1)
	deadline := time.Now().Add(10 * time.Second)
	for p.co.LiveWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker loss not detected; %d live", p.co.LiveWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	ws := p.co.Workers()
	live := 0
	for _, w := range ws {
		if w.Live {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("Workers() reports %d live entries: %+v", live, ws)
	}
}

func TestServeReadyGateAndWorkersEndpoint(t *testing.T) {
	p := startPool(t, 1)
	srv, err := serve.New(serve.Config{Workers: 1, Dist: p.co, MinWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if ready, reason := srv.Ready(); ready {
		t.Fatalf("ready with 1/2 workers (%s)", reason)
	}
	m := srv.Metrics()
	if m.Dist == nil || m.Dist.WorkersLive != 1 || m.Dist.MinWorkers != 2 {
		t.Fatalf("Dist metrics = %+v", m.Dist)
	}

	srv2, err := serve.New(serve.Config{Workers: 1, Dist: p.co, MinWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if ready, reason := srv2.Ready(); !ready {
		t.Fatalf("not ready with 1/1 workers: %s", reason)
	}
}
