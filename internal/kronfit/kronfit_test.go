package kronfit

import (
	"math"
	"testing"

	"csb/internal/graph"
	"csb/internal/kronecker"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(graph.New(5), Config{}); err == nil {
		t.Error("edgeless graph accepted")
	}
	g := graph.New(1)
	g.AddEdge(graph.Edge{Src: 0, Dst: 0})
	if _, err := Fit(g, Config{}); err == nil {
		t.Error("single-vertex graph accepted")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int64]int{2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFitImprovesLikelihood(t *testing.T) {
	truth := kronecker.Initiator{Theta: [4]float64{0.9, 0.6, 0.5, 0.15}}
	g, err := kronecker.Generate(truth, 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(g, Config{Iterations: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLL < res.InitialLL {
		t.Fatalf("likelihood decreased: %g -> %g", res.InitialLL, res.FinalLL)
	}
	if res.K != 9 {
		t.Fatalf("K = %d, want 9", res.K)
	}
}

func TestFitRecoversEdgeBudget(t *testing.T) {
	// The fitted Σθ must predict the training graph's edge count: the
	// -S^k term anchors (Σθ)^k ≈ |E|.
	truth := kronecker.Initiator{Theta: [4]float64{0.85, 0.55, 0.45, 0.2}}
	g, err := kronecker.Generate(truth, 10, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(g, Config{Iterations: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	predicted := res.Initiator.ExpectedEdges(res.K)
	actual := float64(g.NumEdges())
	if predicted < actual*0.6 || predicted > actual*1.6 {
		t.Fatalf("predicted edges %g vs actual %g (theta %v)", predicted, actual, res.Initiator)
	}
}

func TestFitRecoversCorePeripheryOrdering(t *testing.T) {
	// A strongly core-periphery graph must fit θ00 as the largest entry and
	// θ11 as the smallest.
	truth := kronecker.Initiator{Theta: [4]float64{0.95, 0.5, 0.5, 0.08}}
	g, err := kronecker.Generate(truth, 10, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(g, Config{Iterations: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	th := res.Initiator.Theta
	if !(th[0] > th[1] && th[0] > th[2] && th[0] > th[3]) {
		t.Fatalf("θ00 not dominant: %v", res.Initiator)
	}
	if !(th[3] < th[1] && th[3] < th[2]) {
		t.Fatalf("θ11 not smallest: %v", res.Initiator)
	}
}

func TestFitDeterministic(t *testing.T) {
	g, err := kronecker.Generate(kronecker.DefaultInitiator(), 8, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fit(g, Config{Iterations: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(g, Config{Iterations: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Initiator.Theta {
		if a.Initiator.Theta[i] != b.Initiator.Theta[i] {
			t.Fatalf("fit not deterministic: %v vs %v", a.Initiator, b.Initiator)
		}
	}
}

func TestFitCollapsesMultiEdges(t *testing.T) {
	// A multigraph and its simple projection must fit identically.
	g := graph.New(8)
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {4, 5}, {5, 6}, {6, 7}, {0, 4}}
	for _, e := range edges {
		g.AddEdge(graph.Edge{Src: graph.VertexID(e[0]), Dst: graph.VertexID(e[1])})
		g.AddEdge(graph.Edge{Src: graph.VertexID(e[0]), Dst: graph.VertexID(e[1])}) // dup
	}
	multi, err := Fit(g, Config{Iterations: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	simple, err := Fit(g.Simplify(), Config{Iterations: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range multi.Initiator.Theta {
		if math.Abs(multi.Initiator.Theta[i]-simple.Initiator.Theta[i]) > 1e-12 {
			t.Fatalf("multigraph fit differs: %v vs %v", multi.Initiator, simple.Initiator)
		}
	}
}

func TestFitThetaStaysInBounds(t *testing.T) {
	g, err := kronecker.Generate(kronecker.DefaultInitiator(), 8, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(g, Config{Iterations: 50, LearningRate: 1.0, Seed: 11}) // aggressive LR
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range res.Initiator.Theta {
		if th < 0.005-1e-12 || th > 0.995+1e-12 || math.IsNaN(th) {
			t.Fatalf("theta[%d] = %v escaped bounds", i, th)
		}
	}
}

func TestFitForGenerationMatchesBudget(t *testing.T) {
	truth := kronecker.Initiator{Theta: [4]float64{0.9, 0.55, 0.45, 0.15}}
	g, err := kronecker.Generate(truth, 10, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FitForGeneration(g, Config{Iterations: 30, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	predicted := res.Initiator.ExpectedEdges(res.K)
	actual := float64(g.Simplify().NumEdges())
	if math.Abs(predicted-actual)/actual > 0.02 {
		t.Fatalf("rescaled budget off: predicted %g actual %g", predicted, actual)
	}
}

func TestFitForGenerationOnFlowGraph(t *testing.T) {
	// The PGSK path: a trace-shaped multigraph (hub-dominated) must produce
	// a usable initiator.
	g := graph.New(64)
	for i := int64(1); i < 64; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 0})
		if i%3 == 0 {
			g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i / 3)})
		}
	}
	res, err := FitForGeneration(g, Config{Iterations: 40, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Initiator.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("K = %d, want 6", res.K)
	}
}
