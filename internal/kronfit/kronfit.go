// Package kronfit estimates the 2x2 stochastic Kronecker initiator matrix of
// a graph by maximum likelihood (the KronFit procedure of Leskovec et al.,
// JMLR 2010): gradient ascent on the model likelihood, with the intractable
// node-correspondence marginalized by Metropolis sampling of vertex
// permutations, and the sum over non-edges replaced by its second-order
// Taylor closed form.
//
// Likelihood. With S = Σθ and S2 = Σθ², the log-likelihood of a graph under
// initiator θ at Kronecker power k and permutation σ is approximated by
//
//	LL(θ,σ) ≈ -S^k - S2^k/2 + Σ_{(u,v)∈E} [ log p_σ(u,v) + p_σ(u,v) + p_σ(u,v)²/2 ]
//
// where p_σ(u,v) = Π_level θ[bit(σu), bit(σv)]. The first two terms are the
// closed-form Taylor expansion of Σ_{all pairs} log(1-p); the bracketed edge
// terms swap each edge's no-edge contribution for its edge contribution.
// Only the edge terms depend on σ, so Metropolis swap acceptance needs just
// the edges incident to the swapped vertices.
package kronfit

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"csb/internal/graph"
	"csb/internal/kronecker"
)

// Config parameterizes Fit. Zero fields select the defaults.
type Config struct {
	// Iterations is the number of gradient steps (default 80).
	Iterations int
	// LearningRate is the step size applied to the per-edge-normalized
	// gradient (default 0.05).
	LearningRate float64
	// PermSamples is the number of permutation samples averaged per
	// gradient step (default 3).
	PermSamples int
	// SwapsPerSample is the number of Metropolis swap proposals between
	// samples (default 2 * number of vertices).
	SwapsPerSample int
	// MinTheta is the lower projection bound keeping the likelihood finite
	// (default 0.005); the upper bound is 1 - MinTheta.
	MinTheta float64
	// Init is the starting initiator (default kronecker.DefaultInitiator).
	Init kronecker.Initiator
	// Seed drives the deterministic RNG.
	Seed uint64
}

func (c *Config) fill() {
	if c.Iterations == 0 {
		c.Iterations = 80
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.PermSamples == 0 {
		c.PermSamples = 3
	}
	if c.MinTheta == 0 {
		c.MinTheta = 0.005
	}
	if c.Init.Sum() == 0 {
		c.Init = kronecker.DefaultInitiator()
	}
}

// Result reports the fitted initiator and diagnostics.
type Result struct {
	Initiator kronecker.Initiator
	K         int     // Kronecker power covering the graph: ceil(log2 |V|)
	InitialLL float64 // likelihood at the starting point
	FinalLL   float64 // likelihood at the fitted point
}

// fitState bundles the per-fit data.
type fitState struct {
	edges [][2]int64 // simple-graph edges as vertex pairs
	inc   [][]int32  // vertex -> incident edge indices
	sigma []int64    // graph vertex -> Kronecker vertex
	k     int
	n     int64
	rng   *rand.Rand
}

// Fit estimates the initiator of g. Multi-edges are collapsed first (KronFit
// models a simple graph, mirroring the Gp construction of the PGSK
// algorithm).
func Fit(g *graph.Graph, cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.SwapsPerSample == 0 {
		cfg.SwapsPerSample = int(2 * g.NumVertices())
	}
	simple := g.Simplify()
	if simple.NumEdges() == 0 {
		return nil, errors.New("kronfit: graph has no edges")
	}
	if simple.NumVertices() < 2 {
		return nil, errors.New("kronfit: graph has fewer than 2 vertices")
	}
	n := simple.NumVertices()
	k := bitsFor(n)

	st := &fitState{
		k:   k,
		n:   n,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xf17)),
	}
	st.edges = make([][2]int64, simple.NumEdges())
	st.inc = make([][]int32, n)
	cols := simple.Cols()
	for i := 0; i < cols.Len(); i++ {
		src, dst := cols.SrcID(i), cols.DstID(i)
		st.edges[i] = [2]int64{int64(src), int64(dst)}
		st.inc[src] = append(st.inc[src], int32(i))
		if dst != src {
			st.inc[dst] = append(st.inc[dst], int32(i))
		}
	}
	st.sigma = make([]int64, n)
	for i := range st.sigma {
		st.sigma[i] = int64(i)
	}

	theta := cfg.Init
	res := &Result{K: k, InitialLL: st.logLikelihood(&theta)}
	lr := cfg.LearningRate
	currentLL := res.InitialLL
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Improve the node correspondence first; hill-climbing keeps the
		// likelihood monotone (a full Metropolis chain mixes too slowly at
		// this scale and random-walks away from good permutations).
		for s := 0; s < cfg.PermSamples; s++ {
			st.improveSigma(&theta, cfg.SwapsPerSample)
		}
		currentLL = st.logLikelihood(&theta)

		grad := st.gradient(&theta)
		// Normalize by edge count so the learning rate is scale free, and
		// backtrack until the step improves the likelihood.
		accepted := false
		for attempt := 0; attempt < 8; attempt++ {
			cand := theta
			scale := lr / float64(len(st.edges))
			for i := range cand.Theta {
				cand.Theta[i] = clamp(cand.Theta[i]+scale*grad[i], cfg.MinTheta, 1-cfg.MinTheta)
			}
			if ll := st.logLikelihood(&cand); ll >= currentLL {
				theta = cand
				currentLL = ll
				accepted = true
				break
			}
			lr /= 2
		}
		if !accepted && lr < 1e-12 {
			break // converged: no admissible step remains
		}
	}
	res.Initiator = theta
	res.FinalLL = st.logLikelihood(&theta)
	return res, nil
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int64) int {
	k := 1
	for int64(1)<<uint(k) < n {
		k++
	}
	return k
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// edgeTerm returns log p + p + p²/2 for the σ-mapped edge e.
func (st *fitState) edgeTerm(theta *kronecker.Initiator, e [2]int64) float64 {
	p := kronecker.EdgeProbability(theta, st.k, st.sigma[e[0]], st.sigma[e[1]])
	return math.Log(p) + p + p*p/2
}

// logLikelihood evaluates the approximate LL at the current permutation.
func (st *fitState) logLikelihood(theta *kronecker.Initiator) float64 {
	kf := float64(st.k)
	ll := -math.Pow(theta.Sum(), kf) - math.Pow(theta.SumSquares(), kf)/2
	for _, e := range st.edges {
		ll += st.edgeTerm(theta, e)
	}
	return ll
}

// improveSigma performs `swaps` random swap proposals on σ, accepting only
// improvements of the edge-term likelihood (the closed-form no-edge terms
// are permutation invariant, so only edges incident to the swapped vertices
// matter).
func (st *fitState) improveSigma(theta *kronecker.Initiator, swaps int) {
	for s := 0; s < swaps; s++ {
		a := st.rng.Int64N(st.n)
		b := st.rng.Int64N(st.n)
		if a == b {
			continue
		}
		var before, after float64
		for _, v := range []int64{a, b} {
			for _, ei := range st.inc[v] {
				before += st.edgeTerm(theta, st.edges[ei])
			}
		}
		st.sigma[a], st.sigma[b] = st.sigma[b], st.sigma[a]
		for _, v := range []int64{a, b} {
			for _, ei := range st.inc[v] {
				after += st.edgeTerm(theta, st.edges[ei])
			}
		}
		// Edges incident to both a and b are double counted identically on
		// both sides, so the comparison is unaffected.
		if after >= before {
			continue // accept
		}
		st.sigma[a], st.sigma[b] = st.sigma[b], st.sigma[a] // reject: undo
	}
}

// gradient evaluates dLL/dθ at the current permutation.
func (st *fitState) gradient(theta *kronecker.Initiator) [4]float64 {
	kf := float64(st.k)
	s := theta.Sum()
	s2 := theta.SumSquares()
	var grad [4]float64
	for i := range grad {
		grad[i] = -kf*math.Pow(s, kf-1) - kf*math.Pow(s2, kf-1)*theta.Theta[i]
	}
	var counts [4]int
	for _, e := range st.edges {
		u, v := st.sigma[e[0]], st.sigma[e[1]]
		p := 1.0
		counts = [4]int{}
		for level := 0; level < st.k; level++ {
			shift := uint(st.k - 1 - level)
			idx := ((u>>shift)&1)<<1 | (v>>shift)&1
			counts[idx]++
			p *= theta.Theta[idx]
		}
		f := 1 + p + p*p
		for i := range grad {
			if counts[i] > 0 {
				grad[i] += float64(counts[i]) / theta.Theta[i] * f
			}
		}
	}
	return grad
}

// FitForGeneration is the convenience used by PGSK: it fits g and returns an
// initiator rescaled so its expected edge count at power K exactly matches
// the simple graph's edge count (KronFit optimizes shape; the paper's
// pipeline needs the edge budget to match the seed).
func FitForGeneration(g *graph.Graph, cfg Config) (*Result, error) {
	res, err := Fit(g, cfg)
	if err != nil {
		return nil, err
	}
	simpleEdges := float64(g.Simplify().NumEdges())
	want := math.Pow(simpleEdges, 1/float64(res.K)) // per-level edge budget
	have := res.Initiator.Sum()
	if have > 0 {
		f := want / have
		for i := range res.Initiator.Theta {
			res.Initiator.Theta[i] = clamp(res.Initiator.Theta[i]*f, 1e-4, 1-1e-4)
		}
	}
	if err := res.Initiator.Validate(); err != nil {
		return nil, fmt.Errorf("kronfit: rescaled initiator invalid: %w", err)
	}
	return res, nil
}
