package kronecker

// droptask.go makes the SKG ball-drop stage remotable: one generate
// partition becomes a self-contained payload (initiator, depth, RNG stream)
// that any worker process can replay into the identical edge pairs the local
// closure would produce. The RNG stream derivation is cluster.DeriveRNG on
// (seed, partition), exactly as cluster.Generate does locally, so where the
// drops run never changes which edges fall out.

import (
	"encoding/binary"
	"fmt"
	"math"

	"csb/internal/cluster"
	"csb/internal/dist/task"
)

// DropTaskKind is the registered remote kind of the ball-drop stage.
const DropTaskKind = "kron.drop"

// dropTaskLen is the fixed payload size: 4 thetas, k, seed, stream, count.
const dropTaskLen = 4*8 + 8 + 8 + 8 + 8

func init() { task.Register(DropTaskKind, runDropTask) }

// encodeDropTask renders one generate partition as a drop-task payload.
func encodeDropTask(in Initiator, k int, seed, stream uint64, count int64) []byte {
	b := make([]byte, dropTaskLen)
	for i, t := range in.Theta {
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(t))
	}
	binary.BigEndian.PutUint64(b[32:], uint64(k))
	binary.BigEndian.PutUint64(b[40:], seed)
	binary.BigEndian.PutUint64(b[48:], stream)
	binary.BigEndian.PutUint64(b[56:], uint64(count))
	return b
}

// runDropTask replays one partition's recursive descents and returns the
// landed (u, v) cells as big-endian int64 pairs.
func runDropTask(payload []byte) ([]byte, error) {
	if len(payload) != dropTaskLen {
		return nil, fmt.Errorf("kronecker: drop task payload is %d bytes, want %d", len(payload), dropTaskLen)
	}
	var in Initiator
	for i := range in.Theta {
		in.Theta[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[i*8:]))
	}
	k := int(binary.BigEndian.Uint64(payload[32:]))
	seed := binary.BigEndian.Uint64(payload[40:])
	stream := binary.BigEndian.Uint64(payload[48:])
	count := int64(binary.BigEndian.Uint64(payload[56:]))
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > 62 {
		return nil, fmt.Errorf("kronecker: drop task k = %d out of range [1,62]", k)
	}
	if count < 0 || count > (1<<32) {
		return nil, fmt.Errorf("kronecker: drop task count %d out of range", count)
	}
	rng := cluster.DeriveRNG(seed, stream)
	out := make([]byte, 0, count*16)
	var rec [16]byte
	for i := int64(0); i < count; i++ {
		u, v := dropEdge(&in, k, rng)
		binary.BigEndian.PutUint64(rec[0:8], uint64(u))
		binary.BigEndian.PutUint64(rec[8:16], uint64(v))
		out = append(out, rec[:]...)
	}
	return out, nil
}

// decodePairs parses a drop-task result back into edge pairs.
func decodePairs(result []byte) ([][2]int64, error) {
	if len(result)%16 != 0 {
		return nil, fmt.Errorf("kronecker: drop result length %d not a multiple of 16", len(result))
	}
	pairs := make([][2]int64, len(result)/16)
	for i := range pairs {
		pairs[i][0] = int64(binary.BigEndian.Uint64(result[i*16:]))
		pairs[i][1] = int64(binary.BigEndian.Uint64(result[i*16+8:]))
	}
	return pairs, nil
}
