// Package kronecker implements Kronecker graph generation (Leskovec et al.,
// JMLR 2010): the deterministic Kronecker power of a small base adjacency
// matrix, and the stochastic Kronecker generator (SKG) that places the
// expected number of edges by recursive descent through a 2x2 probability
// initiator — the "ball dropping" procedure whose Map-Reduce form the paper
// parallelizes for PGSK.
package kronecker

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"csb/internal/cluster"
	"csb/internal/graph"
)

// Initiator is a 2x2 stochastic initiator matrix. Theta[0] is θ00 (the
// core-core probability), Theta[1] is θ01, Theta[2] is θ10 and Theta[3] is
// θ11 (the periphery-periphery probability).
type Initiator struct {
	Theta [4]float64
}

// DefaultInitiator is the customary KronFit starting point.
func DefaultInitiator() Initiator {
	return Initiator{Theta: [4]float64{0.9, 0.5, 0.5, 0.1}}
}

// Validate checks that every entry is a probability and the matrix is not
// degenerate.
func (in Initiator) Validate() error {
	var sum float64
	for i, t := range in.Theta {
		if t < 0 || t > 1 || math.IsNaN(t) {
			return fmt.Errorf("kronecker: theta[%d] = %v out of [0,1]", i, t)
		}
		sum += t
	}
	if sum == 0 {
		return errors.New("kronecker: all-zero initiator")
	}
	return nil
}

// Sum returns Σθ, whose k-th power is the expected edge count of the k-th
// Kronecker power.
func (in Initiator) Sum() float64 {
	return in.Theta[0] + in.Theta[1] + in.Theta[2] + in.Theta[3]
}

// SumSquares returns Σθ².
func (in Initiator) SumSquares() float64 {
	var s float64
	for _, t := range in.Theta {
		s += t * t
	}
	return s
}

// ExpectedEdges returns (Σθ)^k, the expected edge count at iteration k.
func (in Initiator) ExpectedEdges(k int) float64 {
	return math.Pow(in.Sum(), float64(k))
}

// NumVertices returns 2^k, the vertex count at iteration k.
func NumVertices(k int) int64 { return int64(1) << uint(k) }

// String renders the matrix.
func (in Initiator) String() string {
	return fmt.Sprintf("[%.4f %.4f; %.4f %.4f]", in.Theta[0], in.Theta[1], in.Theta[2], in.Theta[3])
}

// Deterministic computes the k-th Kronecker power of a small boolean base
// adjacency matrix, materializing every edge — the O(|V|^2) variant the
// paper contrasts against SKG. base must be square and non-empty; k >= 1.
func Deterministic(base [][]bool, k int) (*graph.Graph, error) {
	n := len(base)
	if n == 0 {
		return nil, errors.New("kronecker: empty base matrix")
	}
	for _, row := range base {
		if len(row) != n {
			return nil, errors.New("kronecker: base matrix not square")
		}
	}
	if k < 1 {
		return nil, errors.New("kronecker: k must be >= 1")
	}
	size := int64(1)
	for i := 0; i < k; i++ {
		size *= int64(n)
		if size > 1<<22 {
			return nil, fmt.Errorf("kronecker: deterministic size %d^%d too large", n, k)
		}
	}
	g := graph.New(size)
	// Edge (u,v) exists iff base[digit_i(u)][digit_i(v)] for every base-n
	// digit i — the defining property of the Kronecker power.
	var u int64
	for u = 0; u < size; u++ {
		for v := int64(0); v < size; v++ {
			uu, vv := u, v
			ok := true
			for i := 0; i < k; i++ {
				if !base[uu%int64(n)][vv%int64(n)] {
					ok = false
					break
				}
				uu /= int64(n)
				vv /= int64(n)
			}
			if ok {
				g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	return g, nil
}

// dropEdge performs one recursive descent through the initiator, returning
// the (u, v) cell the edge lands in.
func dropEdge(in *Initiator, k int, rng *rand.Rand) (int64, int64) {
	sum := in.Sum()
	var u, v int64
	for level := 0; level < k; level++ {
		r := rng.Float64() * sum
		u <<= 1
		v <<= 1
		switch {
		case r < in.Theta[0]:
			// quadrant (0,0)
		case r < in.Theta[0]+in.Theta[1]:
			v |= 1
		case r < in.Theta[0]+in.Theta[1]+in.Theta[2]:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return u, v
}

// Generate runs the sequential stochastic Kronecker generator: it places
// edges by recursive descent until `edges` distinct edges exist (collisions
// are re-dropped, the standard SKG semantics matching RDD.distinct in the
// parallel form). If edges <= 0, the expected count (Σθ)^k is used.
func Generate(in Initiator, k int, edges int64, seed uint64) (*graph.Graph, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > 62 {
		return nil, fmt.Errorf("kronecker: k = %d out of range [1,62]", k)
	}
	if edges <= 0 {
		edges = int64(math.Round(in.ExpectedEdges(k)))
		if edges < 1 {
			edges = 1
		}
	}
	n := NumVertices(k)
	if edges > n*n {
		return nil, fmt.Errorf("kronecker: %d edges cannot be distinct in a %d-vertex graph", edges, n)
	}
	rng := rand.New(rand.NewPCG(seed, 0x5109))
	seen := make(map[[2]int64]struct{}, edges)
	g := graph.NewWithCapacity(n, edges)
	for int64(len(seen)) < edges {
		u, v := dropEdge(&in, k, rng)
		key := [2]int64{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return g, nil
}

// GenerateParallel is the Map-Reduce form of Generate on a cluster: an
// edge dataset is generated partition-parallel (each partition drops its
// share of edges with an independent RNG stream), deduplicated with
// Distinct, and topped up until the requested count of distinct edges is
// reached — mirroring the paper's Spark implementation, including the
// repeated "generate then RDD.distinct" rounds.
func GenerateParallel(c *cluster.Cluster, in Initiator, k int, edges int64, seed uint64) (*graph.Graph, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > 62 {
		return nil, fmt.Errorf("kronecker: k = %d out of range [1,62]", k)
	}
	if edges <= 0 {
		edges = int64(math.Round(in.ExpectedEdges(k)))
		if edges < 1 {
			edges = 1
		}
	}
	n := NumVertices(k)
	if edges > n*n {
		return nil, fmt.Errorf("kronecker: %d edges cannot be distinct in a %d-vertex graph", edges, n)
	}
	type pair = [2]int64
	var ds *cluster.Dataset[pair]
	round := uint64(0)
	defer c.Scope("kronecker")()
	for {
		// Cancellation boundary: a cancelled cluster generates empty
		// partitions, so without this check the top-up loop would spin
		// forever waiting for distinct edges that never arrive.
		if err := c.Err(); err != nil {
			return nil, err
		}
		var have int64
		if ds != nil {
			have = ds.Count()
		}
		missing := edges - have
		if missing <= 0 {
			break
		}
		endRound := c.Scope(fmt.Sprintf("round%d", round+1))
		// Overprovision slightly: collisions shrink the distinct yield.
		// The drop stage is remotable (DropTaskKind): on a cluster with a
		// TaskExecutor each partition's descents may run in a worker process,
		// which replays the identical (seed, partition) RNG stream — the
		// bytes are the same wherever the balls drop.
		toDrop := missing + missing/8 + 1
		roundSeed := seed ^ (round+1)*0x9e37
		fresh := cluster.GenerateRemotable(c, toDrop, 0, roundSeed, DropTaskKind,
			func(rng *rand.Rand, emit func(pair), count int64) {
				for i := int64(0); i < count; i++ {
					u, v := dropEdge(&in, k, rng)
					emit(pair{u, v})
				}
			},
			func(part int, s uint64, count int64) []byte {
				return encodeDropTask(in, k, s, uint64(part), count)
			},
			decodePairs)
		if ds == nil {
			ds = fresh
		} else {
			ds = cluster.Union(ds, fresh)
		}
		if limit := c.Config().DefaultPartitions; ds.NumPartitions() > 4*limit {
			ds = cluster.Coalesce(ds, limit)
		}
		ds = cluster.Distinct(ds,
			func(p pair) pair { return p },
			func(p pair) uint64 {
				// SplitMix-style mix of both endpoints.
				z := uint64(p[0])*0x9e3779b97f4a7c15 ^ uint64(p[1])
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				return z ^ (z >> 27)
			})
		endRound()
		round++
	}
	all := cluster.Collect(ds)
	if int64(len(all)) > edges {
		all = all[:edges]
	}
	g := graph.NewWithCapacity(n, int64(len(all)))
	for _, p := range all {
		g.AddEdge(graph.Edge{Src: graph.VertexID(p[0]), Dst: graph.VertexID(p[1])})
	}
	return g, nil
}

// EdgeProbability returns the probability of edge (u,v) at iteration k
// under the initiator: the product over bit levels of θ[u_l, v_l]. Used by
// KronFit's likelihood.
func EdgeProbability(in *Initiator, k int, u, v int64) float64 {
	p := 1.0
	for level := 0; level < k; level++ {
		shift := uint(k - 1 - level)
		ub := (u >> shift) & 1
		vb := (v >> shift) & 1
		p *= in.Theta[ub<<1|vb]
	}
	return p
}
