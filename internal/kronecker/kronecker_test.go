package kronecker

import (
	"math"
	"testing"

	"csb/internal/cluster"
	"csb/internal/stats"
)

func TestInitiatorValidate(t *testing.T) {
	if err := DefaultInitiator().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Initiator{
		{Theta: [4]float64{-0.1, 0.5, 0.5, 0.1}},
		{Theta: [4]float64{1.1, 0.5, 0.5, 0.1}},
		{Theta: [4]float64{0, 0, 0, 0}},
		{Theta: [4]float64{math.NaN(), 0.5, 0.5, 0.1}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("initiator %d accepted: %v", i, in)
		}
	}
}

func TestInitiatorArithmetic(t *testing.T) {
	in := DefaultInitiator()
	if math.Abs(in.Sum()-2.0) > 1e-12 {
		t.Errorf("Sum = %g, want 2", in.Sum())
	}
	if math.Abs(in.SumSquares()-(0.81+0.25+0.25+0.01)) > 1e-12 {
		t.Errorf("SumSquares = %g", in.SumSquares())
	}
	if math.Abs(in.ExpectedEdges(10)-1024) > 1e-9 {
		t.Errorf("ExpectedEdges(10) = %g, want 1024", in.ExpectedEdges(10))
	}
	if NumVertices(10) != 1024 {
		t.Errorf("NumVertices(10) = %d", NumVertices(10))
	}
	if in.String() == "" {
		t.Error("empty String")
	}
}

func TestDeterministicPathGraph(t *testing.T) {
	// Base: 2x2 with a single self-loop at 0 and edge 0->1.
	base := [][]bool{{true, true}, {false, false}}
	g, err := Deterministic(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	// Edges of K⊗K: (u,v) with base[u1][v1] && base[u0][v0].
	// base has edges (0,0),(0,1) so K2 has pairs from {0,1}x{0,1} digits:
	// u digits must be 0, v digits in {0,1} => u=0, v in {0,1,2,3}.
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	for _, e := range g.EdgeSlice() {
		if e.Src != 0 {
			t.Fatalf("unexpected edge %v", e)
		}
	}
}

func TestDeterministicValidation(t *testing.T) {
	if _, err := Deterministic(nil, 2); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := Deterministic([][]bool{{true}, {true}}, 2); err == nil {
		t.Error("non-square base accepted")
	}
	if _, err := Deterministic([][]bool{{true}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Deterministic([][]bool{{true, true}, {true, true}}, 40); err == nil {
		t.Error("absurd size accepted")
	}
}

func TestGenerateDistinctAndSized(t *testing.T) {
	g, err := Generate(DefaultInitiator(), 10, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("edges = %d, want 2000", g.NumEdges())
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	seen := map[[2]int64]bool{}
	for _, e := range g.EdgeSlice() {
		k := [2]int64{int64(e.Src), int64(e.Dst)}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestGenerateDefaultsToExpectedEdges(t *testing.T) {
	g, err := Generate(DefaultInitiator(), 8, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(256) // 2^8
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want (Σθ)^k = %d", g.NumEdges(), want)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Initiator{}, 5, 10, 1); err == nil {
		t.Error("zero initiator accepted")
	}
	if _, err := Generate(DefaultInitiator(), 0, 10, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Generate(DefaultInitiator(), 2, 100, 1); err == nil {
		t.Error("more edges than cells accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultInitiator(), 9, 500, 7)
	b, _ := Generate(DefaultInitiator(), 9, 500, 7)
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestGenerateCoreConcentration(t *testing.T) {
	// With θ00 >> θ11, low-ID vertices (all-zero bit prefixes) must carry
	// far more edges than high-ID ones.
	in := Initiator{Theta: [4]float64{0.95, 0.4, 0.4, 0.05}}
	g, err := Generate(in, 12, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var low, high int64
	for _, e := range g.EdgeSlice() {
		if int64(e.Src) < n/2 {
			low++
		} else {
			high++
		}
	}
	if low < 2*high {
		t.Fatalf("core not dominant: low %d high %d", low, high)
	}
}

func TestGenerateHeavyTailDegrees(t *testing.T) {
	g, err := Generate(DefaultInitiator(), 14, 40000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizeInt(g.Degrees())
	if s.Max < 10*s.Median {
		t.Fatalf("degrees not heavy tailed: max %g median %g", s.Max, s.Median)
	}
}

func TestGenerateParallelMatchesContract(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8})
	g, err := GenerateParallel(c, DefaultInitiator(), 10, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("edges = %d, want 2000", g.NumEdges())
	}
	seen := map[[2]int64]bool{}
	for _, e := range g.EdgeSlice() {
		k := [2]int64{int64(e.Src), int64(e.Dst)}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The distinct rounds must have charged serial (shuffle) time.
	if c.Metrics().SerialTime <= 0 {
		t.Error("no serial time from Distinct rounds")
	}
}

func TestGenerateParallelValidation(t *testing.T) {
	c := cluster.Local(2)
	if _, err := GenerateParallel(c, Initiator{}, 5, 10, 1); err == nil {
		t.Error("zero initiator accepted")
	}
	if _, err := GenerateParallel(c, DefaultInitiator(), 63, 10, 1); err == nil {
		t.Error("k=63 accepted")
	}
	if _, err := GenerateParallel(c, DefaultInitiator(), 2, 100, 1); err == nil {
		t.Error("overfull graph accepted")
	}
}

func TestEdgeProbability(t *testing.T) {
	in := DefaultInitiator()
	// k=2, u=0,v=0: θ00² = 0.81.
	if p := EdgeProbability(&in, 2, 0, 0); math.Abs(p-0.81) > 1e-12 {
		t.Errorf("P(0,0) = %g, want 0.81", p)
	}
	// u=3 (bits 11), v=0 (bits 00): θ10² = 0.25.
	if p := EdgeProbability(&in, 2, 3, 0); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(3,0) = %g, want 0.25", p)
	}
	// u=1 (01), v=2 (10): level0 (0,1)=0.5, level1 (1,0)=0.5.
	if p := EdgeProbability(&in, 2, 1, 2); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(1,2) = %g, want 0.25", p)
	}
	// Probabilities over all cells sum to (Σθ)^k.
	var total float64
	for u := int64(0); u < 4; u++ {
		for v := int64(0); v < 4; v++ {
			total += EdgeProbability(&in, 2, u, v)
		}
	}
	if math.Abs(total-in.ExpectedEdges(2)) > 1e-9 {
		t.Errorf("cell probabilities sum to %g, want %g", total, in.ExpectedEdges(2))
	}
}
