package graphalgo

import (
	"sort"

	"csb/internal/graph"
)

// undirectedAdjacency builds deduplicated undirected neighbor lists
// (self-loops dropped), the view clustering coefficients are defined on.
func undirectedAdjacency(g *graph.Graph) [][]graph.VertexID {
	n := g.NumVertices()
	sets := make([]map[graph.VertexID]struct{}, n)
	at := func(v graph.VertexID) map[graph.VertexID]struct{} {
		if sets[v] == nil {
			sets[v] = make(map[graph.VertexID]struct{})
		}
		return sets[v]
	}
	cols := g.Cols()
	for i, m := 0, cols.Len(); i < m; i++ {
		src, dst := cols.SrcID(i), cols.DstID(i)
		if src == dst {
			continue
		}
		at(src)[dst] = struct{}{}
		at(dst)[src] = struct{}{}
	}
	adj := make([][]graph.VertexID, n)
	for v := int64(0); v < n; v++ {
		if sets[v] == nil {
			continue
		}
		nb := make([]graph.VertexID, 0, len(sets[v]))
		for w := range sets[v] {
			nb = append(nb, w)
		}
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		adj[v] = nb
	}
	return adj
}

// ClusteringCoefficients computes the average local clustering coefficient
// (over vertices with undirected degree >= 2) and the global transitivity
// (3 x triangles / open triads) of the graph's undirected simple view —
// the metric the BTER model targets alongside the degree distribution.
func ClusteringCoefficients(g *graph.Graph) (avgLocal, global float64) {
	adj := undirectedAdjacency(g)
	has := func(v, w graph.VertexID) bool {
		nb := adj[v]
		i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
		return i < len(nb) && nb[i] == w
	}
	var localSum float64
	var localCount int64
	var closed, triads float64
	for v := range adj {
		d := len(adj[v])
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if has(adj[v][i], adj[v][j]) {
					links++
				}
			}
		}
		possible := d * (d - 1) / 2
		localSum += float64(links) / float64(possible)
		localCount++
		closed += float64(links) // each triangle counted once per corner
		triads += float64(possible)
	}
	if localCount > 0 {
		avgLocal = localSum / float64(localCount)
	}
	if triads > 0 {
		global = closed / triads
	}
	return avgLocal, global
}
