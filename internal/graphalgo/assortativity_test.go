package graphalgo

import (
	"math"
	"testing"

	"csb/internal/graph"
)

// star builds a hub with n leaves.
func star(n int64) *graph.Graph {
	g := graph.New(n + 1)
	for i := int64(1); i <= n; i++ {
		g.AddEdge(graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	return g
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is perfectly disassortative: every edge joins the degree-n hub
	// to a degree-1 leaf.
	r := DegreeAssortativity(star(6))
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("star assortativity = %g, want -1", r)
	}
}

func TestDegreeAssortativityCycle(t *testing.T) {
	// Every vertex of a cycle has degree 2, so the endpoint degrees carry
	// no variance and the coefficient is undefined.
	g := graph.New(5)
	for i := int64(0); i < 5; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % 5)})
	}
	if r := DegreeAssortativity(g); !math.IsNaN(r) {
		t.Fatalf("cycle assortativity = %g, want NaN", r)
	}
	if r := DegreeAssortativity(graph.New(3)); !math.IsNaN(r) {
		t.Fatalf("empty-edge assortativity = %g, want NaN", r)
	}
}

func TestTriangles(t *testing.T) {
	if n := Triangles(star(5)); n != 0 {
		t.Fatalf("star triangles = %d, want 0", n)
	}

	// K4 has exactly 4 triangles; direction, duplicate edges and self-loops
	// must not matter.
	g := graph.New(4)
	for i := int64(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.Edge{Src: graph.VertexID(j), Dst: graph.VertexID(i)}) // reversed
		}
	}
	g.AddEdge(graph.Edge{Src: 0, Dst: 1}) // duplicate
	g.AddEdge(graph.Edge{Src: 2, Dst: 2}) // self-loop
	if n := Triangles(g); n != 4 {
		t.Fatalf("K4 triangles = %d, want 4", n)
	}

	// The triangle count and the transitivity must agree:
	// global = 3*triangles / open triads.
	_, global := ClusteringCoefficients(g)
	if math.Abs(global-1) > 1e-12 {
		t.Fatalf("K4 transitivity = %g, want 1", global)
	}
}
