package graphalgo

import (
	"math"

	"csb/internal/graph"
)

// DegreeAssortativity returns the degree assortativity coefficient of the
// graph's undirected simple view: the Pearson correlation of the degrees at
// the two ends of every edge (Newman 2002). Positive values mean hubs link
// to hubs, negative values mean hubs link to leaves — the star-like
// structure of scan and DDoS traffic shows up here, which is why the eval
// suite tracks it alongside the clustering coefficient. Graphs with no
// edges between degree>=1 vertices, or where every endpoint degree is
// equal (the correlation is undefined), return NaN.
func DegreeAssortativity(g *graph.Graph) float64 {
	adj := undirectedAdjacency(g)
	deg := make([]float64, len(adj))
	for v := range adj {
		deg[v] = float64(len(adj[v]))
	}
	// Accumulate Pearson sums over each edge counted in both directions
	// (j,k) and (k,j), the symmetric convention of the coefficient.
	var n, sj, sjj, sjk float64
	for v := range adj {
		dv := deg[v]
		for _, w := range adj[v] {
			n++
			sj += dv
			sjj += dv * dv
			sjk += dv * deg[w]
		}
	}
	if n == 0 {
		return math.NaN()
	}
	mean := sj / n
	num := sjk/n - mean*mean
	den := sjj/n - mean*mean
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Triangles returns the number of distinct triangles in the graph's
// undirected simple view, each counted once.
func Triangles(g *graph.Graph) int64 {
	adj := undirectedAdjacency(g)
	var count int64
	// For each edge (v, w) with v < w, count common neighbors u > w: every
	// triangle {v, w, u} is then counted exactly once, at its smallest pair.
	for v := range adj {
		vid := graph.VertexID(v)
		for _, w := range adj[v] {
			if w <= vid {
				continue
			}
			count += countCommonAbove(adj[vid], adj[w], w)
		}
	}
	return count
}

// countCommonAbove counts values above floor present in both ascending
// lists.
func countCommonAbove(a, b []graph.VertexID, floor graph.VertexID) int64 {
	i, j := 0, 0
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				n++
			}
			i++
			j++
		}
	}
	return n
}
