// Package graphalgo implements the additional structural-property
// algorithms the paper names as extensions beyond degree and PageRank
// (Section III): connected components and betweenness centrality. They feed
// the extended veracity evaluation and the workload queries.
package graphalgo

import (
	"sort"

	"csb/internal/graph"
)

// Components holds a weakly-connected-component labelling.
type Components struct {
	// Label maps each vertex to its component representative.
	Label []graph.VertexID
	// Count is the number of distinct components.
	Count int64
}

// SizeDistribution returns the component sizes, descending.
func (c *Components) SizeDistribution() []int64 {
	counts := make(map[graph.VertexID]int64)
	for _, l := range c.Label {
		counts[l]++
	}
	sizes := make([]int64, 0, len(counts))
	for _, n := range counts {
		sizes = append(sizes, n)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	return sizes
}

// GiantFraction returns the fraction of vertices in the largest component,
// or 0 for an empty graph.
func (c *Components) GiantFraction() float64 {
	if len(c.Label) == 0 {
		return 0
	}
	sizes := c.SizeDistribution()
	return float64(sizes[0]) / float64(len(c.Label))
}

// WeakComponents computes weakly connected components (edge direction
// ignored) with a union-find over the edge list: O(|E| α(|V|)), the
// appropriate formulation for the multigraph edge-list representation.
func WeakComponents(g *graph.Graph) *Components {
	n := g.NumVertices()
	parent := make([]int64, n)
	rank := make([]int8, n)
	for i := range parent {
		parent[i] = int64(i)
	}
	var find func(x int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rank[ra] < rank[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if rank[ra] == rank[rb] {
			rank[ra]++
		}
	}
	cols := g.Cols()
	for i, m := 0, cols.Len(); i < m; i++ {
		union(int64(cols.SrcID(i)), int64(cols.DstID(i)))
	}
	out := &Components{Label: make([]graph.VertexID, n)}
	seen := make(map[int64]struct{})
	for v := int64(0); v < n; v++ {
		r := find(v)
		out.Label[v] = graph.VertexID(r)
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out.Count++
		}
	}
	return out
}
