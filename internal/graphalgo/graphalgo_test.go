package graphalgo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"csb/internal/graph"
)

func TestWeakComponentsBasic(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 3, Dst: 4})
	// vertex 5 isolated
	c := WeakComponents(g)
	if c.Count != 3 {
		t.Fatalf("components = %d, want 3", c.Count)
	}
	if c.Label[0] != c.Label[1] || c.Label[1] != c.Label[2] {
		t.Error("0-1-2 not one component")
	}
	if c.Label[3] != c.Label[4] {
		t.Error("3-4 not one component")
	}
	if c.Label[5] == c.Label[0] || c.Label[5] == c.Label[3] {
		t.Error("isolated vertex merged")
	}
	sizes := c.SizeDistribution()
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
	if gf := c.GiantFraction(); math.Abs(gf-0.5) > 1e-12 {
		t.Fatalf("giant fraction = %g, want 0.5", gf)
	}
}

func TestWeakComponentsDirectionIgnored(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(graph.Edge{Src: 1, Dst: 0})
	if c := WeakComponents(g); c.Count != 1 {
		t.Fatalf("components = %d, want 1 (weak connectivity)", c.Count)
	}
}

func TestWeakComponentsEmpty(t *testing.T) {
	c := WeakComponents(graph.New(0))
	if c.Count != 0 || c.GiantFraction() != 0 {
		t.Fatalf("empty: %+v", c)
	}
	// All-isolated graph: one component per vertex.
	c = WeakComponents(graph.New(4))
	if c.Count != 4 {
		t.Fatalf("isolated components = %d", c.Count)
	}
}

// Property: labels are consistent (two vertices connected by an edge share a
// label) and component count matches distinct labels.
func TestWeakComponentsInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int64(nRaw%50) + 1
		m := int(mRaw % 300)
		rng := rand.New(rand.NewPCG(seed, 0xcc))
		g := graph.New(n)
		for i := 0; i < m; i++ {
			g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(n)), Dst: graph.VertexID(rng.Int64N(n))})
		}
		c := WeakComponents(g)
		for _, e := range g.EdgeSlice() {
			if c.Label[e.Src] != c.Label[e.Dst] {
				return false
			}
		}
		distinct := map[graph.VertexID]bool{}
		for _, l := range c.Label {
			distinct[l] = true
		}
		return int64(len(distinct)) == c.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessPathGraph(t *testing.T) {
	// Path 0->1->2->3->4: interior vertices accumulate betweenness;
	// exact values for a directed path: BC(v) = (#pairs through v).
	g := graph.New(5)
	for i := int64(0); i < 4; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)})
	}
	bc := ApproxBetweenness(g, BetweennessOptions{})
	// Vertex 1: paths 0->2,0->3,0->4 => 3. Vertex 2: 0->3,0->4,1->3,1->4 => 4.
	want := []float64{0, 3, 4, 3, 0}
	for v, w := range want {
		if math.Abs(bc[v]-w) > 1e-9 {
			t.Errorf("BC[%d] = %g, want %g", v, bc[v], w)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// In-star + out-star through the hub: hub carries all pairs.
	g := graph.New(5)
	for i := int64(1); i <= 2; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	for i := int64(3); i <= 4; i++ {
		g.AddEdge(graph.Edge{Src: 0, Dst: graph.VertexID(i)})
	}
	bc := ApproxBetweenness(g, BetweennessOptions{})
	if bc[0] != 4 { // pairs (1,3),(1,4),(2,3),(2,4)
		t.Fatalf("hub BC = %g, want 4", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf %d BC = %g, want 0", v, bc[v])
		}
	}
}

func TestBetweennessSampledApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	g := graph.New(60)
	for i := 0; i < 400; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(60)), Dst: graph.VertexID(rng.Int64N(60))})
	}
	exact := ApproxBetweenness(g, BetweennessOptions{})
	approx := ApproxBetweenness(g, BetweennessOptions{Samples: 30, Seed: 1})
	// The scaled estimate should correlate strongly with the exact values:
	// compare rank of the top exact vertex.
	var maxV int
	for v := range exact {
		if exact[v] > exact[maxV] {
			maxV = v
		}
	}
	// The top exact vertex should rank within the top 20% by the estimate.
	better := 0
	for v := range approx {
		if approx[v] > approx[maxV] {
			better++
		}
	}
	if better > len(approx)/5 {
		t.Fatalf("top vertex ranked %d by sampled estimate", better)
	}
}

func TestBetweennessParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	g := graph.New(40)
	for i := 0; i < 200; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(40)), Dst: graph.VertexID(rng.Int64N(40))})
	}
	serial := ApproxBetweenness(g, BetweennessOptions{Parallelism: 1})
	parallel := ApproxBetweenness(g, BetweennessOptions{Parallelism: 8})
	for v := range serial {
		if math.Abs(serial[v]-parallel[v]) > 1e-9 {
			t.Fatalf("BC[%d]: serial %g vs parallel %g", v, serial[v], parallel[v])
		}
	}
}

func TestBetweennessEmptyAndMultiEdge(t *testing.T) {
	if bc := ApproxBetweenness(graph.New(0), BetweennessOptions{}); bc != nil {
		t.Fatal("empty graph produced scores")
	}
	// Multi-edges change sigma counts but the hub ordering must hold.
	g := graph.New(3)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	bc := ApproxBetweenness(g, BetweennessOptions{})
	if bc[1] <= bc[0] || bc[1] <= bc[2] {
		t.Fatalf("middle vertex not dominant: %v", bc)
	}
}

func TestClusteringCoefficientsTriangle(t *testing.T) {
	// A directed triangle is an undirected triangle: all coefficients 1.
	g := graph.New(3)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 2, Dst: 0})
	local, global := ClusteringCoefficients(g)
	if local != 1 || global != 1 {
		t.Fatalf("triangle clustering = %g/%g, want 1/1", local, global)
	}
}

func TestClusteringCoefficientsPath(t *testing.T) {
	// A path has no triangles: zero clustering.
	g := graph.New(4)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 2, Dst: 3})
	local, global := ClusteringCoefficients(g)
	if local != 0 || global != 0 {
		t.Fatalf("path clustering = %g/%g, want 0/0", local, global)
	}
}

func TestClusteringCoefficientsMixed(t *testing.T) {
	// Triangle 0-1-2 plus pendant 2-3: v2 has degree 3, 1 of 3 neighbor
	// pairs linked; v0, v1 have coefficient 1; v3 degree 1 excluded.
	g := graph.New(4)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 2, Dst: 0})
	g.AddEdge(graph.Edge{Src: 2, Dst: 3})
	local, global := ClusteringCoefficients(g)
	wantLocal := (1.0 + 1.0 + 1.0/3.0) / 3.0
	if math.Abs(local-wantLocal) > 1e-12 {
		t.Fatalf("local = %g, want %g", local, wantLocal)
	}
	// Triads: v0:1, v1:1, v2:3 => closed 1+1+1 = 3 of 5.
	if math.Abs(global-3.0/5.0) > 1e-12 {
		t.Fatalf("global = %g, want 0.6", global)
	}
}

func TestClusteringIgnoresMultiEdgesAndLoops(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 0, Dst: 1}) // duplicate
	g.AddEdge(graph.Edge{Src: 1, Dst: 0}) // reverse duplicate
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 2, Dst: 2}) // self loop
	g.AddEdge(graph.Edge{Src: 2, Dst: 0})
	local, global := ClusteringCoefficients(g)
	if local != 1 || global != 1 {
		t.Fatalf("multigraph triangle clustering = %g/%g, want 1/1", local, global)
	}
}

func TestClusteringEmpty(t *testing.T) {
	local, global := ClusteringCoefficients(graph.New(5))
	if local != 0 || global != 0 {
		t.Fatalf("empty clustering = %g/%g", local, global)
	}
}
