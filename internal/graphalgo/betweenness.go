package graphalgo

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"csb/internal/graph"
)

// BetweennessOptions configures ApproxBetweenness.
type BetweennessOptions struct {
	// Samples is the number of source vertices sampled (0 means all
	// vertices, i.e. exact Brandes).
	Samples int
	// Seed drives the deterministic source sampling.
	Seed uint64
	// Parallelism is the number of concurrent Brandes sweeps (default
	// GOMAXPROCS).
	Parallelism int
}

// ApproxBetweenness estimates vertex betweenness centrality with Brandes'
// algorithm over sampled sources (Brandes 2001; sampling per Bader et al.).
// Scores are scaled by n/samples so sampled and exact runs are comparable.
// Edge direction is respected; multi-edges count as parallel shortest-path
// multiplicity.
func ApproxBetweenness(g *graph.Graph, opt BetweennessOptions) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	csr := graph.BuildCSR(g)
	sources := make([]graph.VertexID, 0, n)
	if opt.Samples <= 0 || int64(opt.Samples) >= n {
		for v := int64(0); v < n; v++ {
			sources = append(sources, graph.VertexID(v))
		}
	} else {
		rng := rand.New(rand.NewPCG(opt.Seed, 0xbc))
		seen := make(map[graph.VertexID]struct{}, opt.Samples)
		for len(sources) < opt.Samples {
			v := graph.VertexID(rng.Int64N(n))
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			sources = append(sources, v)
		}
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}

	// Each worker accumulates into its own score vector; merged at the end.
	partial := make([][]float64, workers)
	var wg sync.WaitGroup
	work := make(chan graph.VertexID, len(sources))
	for _, s := range sources {
		work <- s
	}
	close(work)
	for w := 0; w < workers; w++ {
		partial[w] = make([]float64, n)
		wg.Add(1)
		go func(acc []float64) {
			defer wg.Done()
			st := newBrandesState(n)
			for s := range work {
				st.sweep(csr, s, acc)
			}
		}(partial[w])
	}
	wg.Wait()

	scale := float64(n) / float64(len(sources))
	out := make([]float64, n)
	for _, p := range partial {
		for v, s := range p {
			out[v] += s * scale
		}
	}
	return out
}

// brandesState is the per-worker scratch of one Brandes sweep.
type brandesState struct {
	dist  []int64
	sigma []float64
	delta []float64
	queue []graph.VertexID
	stack []graph.VertexID
	preds [][]graph.VertexID
}

func newBrandesState(n int64) *brandesState {
	return &brandesState{
		dist:  make([]int64, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]graph.VertexID, n),
	}
}

// sweep runs one single-source Brandes pass from s, accumulating dependency
// scores into acc.
func (st *brandesState) sweep(csr *graph.CSR, s graph.VertexID, acc []float64) {
	n := csr.NumVertices()
	for v := int64(0); v < n; v++ {
		st.dist[v] = -1
		st.sigma[v] = 0
		st.delta[v] = 0
		st.preds[v] = st.preds[v][:0]
	}
	st.queue = st.queue[:0]
	st.stack = st.stack[:0]

	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for len(st.queue) > 0 {
		v := st.queue[0]
		st.queue = st.queue[1:]
		st.stack = append(st.stack, v)
		for _, w := range csr.Neighbors(v) {
			if st.dist[w] < 0 {
				st.dist[w] = st.dist[v] + 1
				st.queue = append(st.queue, w)
			}
			if st.dist[w] == st.dist[v]+1 {
				st.sigma[w] += st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
			}
		}
	}
	for i := len(st.stack) - 1; i >= 0; i-- {
		w := st.stack[i]
		for _, v := range st.preds[w] {
			st.delta[v] += st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
		}
		if w != s {
			acc[w] += st.delta[w]
		}
	}
}
