package scenario

import (
	"fmt"
	"math/rand/v2"

	"csb/internal/attack"
	"csb/internal/cluster"
	"csb/internal/core"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

// TimelineBase anchors every scenario timeline: attack start_ms offsets are
// relative to it, and generator backgrounds (which project timeline-free
// flows) synthesize their start times from it. It equals the synthetic
// trace's capture date (pcap.DefaultTraceConfig.StartMicros), so trace
// backgrounds and attack offsets share one clock.
const TimelineBase = int64(1318204800 * 1e6)

// Compile builds the labeled flow set a normalized spec describes:
// background flows from the selected source, each attack injected on its
// own RNG stream derived from (spec seed, attack seed), and a final
// canonical re-sort (Scenario.Finish) so the mixed timeline is in the exact
// order Assembler.Finish would emit. Generator backgrounds run on c (nil
// means a default local cluster), so a chaos-configured cluster exercises
// the fault model without changing the output — same spec + seed ⇒ the
// same labeled flows, bit for bit, on any cluster shape.
func Compile(sp *Spec, c *cluster.Cluster) (*attack.Scenario, error) {
	bg, err := background(sp, c)
	if err != nil {
		return nil, err
	}
	sc := attack.NewScenario(bg)
	if err := ApplyAttacks(sc, sp.Seed, sp.Attacks); err != nil {
		return nil, err
	}
	sc.Finish()
	return sc, nil
}

// ApplyAttacks injects every normalized attack into sc, each on its own RNG
// stream derived from (specSeed, attack seed) — the injection half of
// Compile, exported so the eval harness can mix the same attack list into a
// background it generated itself (a grid cell's synthetic flows). The
// caller must call sc.Finish() after the last injection.
func ApplyAttacks(sc *attack.Scenario, specSeed uint64, attacks []Attack) error {
	for i := range attacks {
		a := &attacks[i]
		rng := rand.New(rand.NewPCG(specSeed, a.Seed))
		ts := TimelineBase + a.StartMS*1000
		switch a.Type {
		case TypeHostScan:
			sc.InjectHostScan(rng, a.Attacker, a.Victim, a.Count, ts)
		case TypeNetworkScan:
			sc.InjectNetworkScan(rng, a.Attacker, a.Victim, a.Count, a.Port, ts)
		case TypeSYNFlood:
			sc.InjectSYNFlood(rng, a.Victim, a.Port, a.Count, ts)
		case TypeFlood:
			proto, err := floodProto(a.Proto)
			if err != nil {
				return fmt.Errorf("scenario: attack %d: %w", i, err)
			}
			sc.InjectFlood(rng, a.Attacker, a.Victim, proto, a.Count, ts)
		case TypeDDoS:
			sc.InjectDDoS(rng, a.Victim, a.Count, a.FlowsPerSource, ts)
		default:
			return fmt.Errorf("scenario: attack %d: unknown type %q (spec not normalized?)", i, a.Type)
		}
	}
	return nil
}

// background builds the benign flow set of the spec's background source.
func background(sp *Spec, c *cluster.Cluster) ([]netflow.Flow, error) {
	b := &sp.Background
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(b.Hosts, b.Sessions, sp.Seed))
	if err != nil {
		return nil, fmt.Errorf("scenario: synthesizing trace: %w", err)
	}
	flows := netflow.Assemble(pkts, 0)
	if b.Source == SourceTrace {
		return flows, nil
	}

	// Generator background: the trace becomes the seed graph, generation
	// runs on the cluster (fault model and all), and the projected flows get
	// a synthetic timeline — FlowsFromGraph emits StartMicros 0 for every
	// flow, which the replay pacer and windowed detector cannot use.
	seed, err := core.Analyze(netflow.BuildGraph(flows))
	if err != nil {
		return nil, fmt.Errorf("scenario: analyzing seed: %w", err)
	}
	var gen core.Generator
	switch b.Source {
	case SourcePGSK:
		gen = &core.PGSK{Seed: sp.Seed, Cluster: c}
	default:
		gen = &core.PGPBA{Fraction: b.Fraction, Seed: sp.Seed, Cluster: c}
	}
	g, err := gen.Generate(seed, b.Edges)
	if err != nil {
		return nil, fmt.Errorf("scenario: generating background: %w", err)
	}
	out := netflow.FlowsFromGraph(g)
	SyntheticTimeline(out, b.GapMicros)
	return out, nil
}

// SyntheticTimeline anchors timeline-free flows (graph projections emit
// StartMicros 0, which neither the replay pacer nor the windowed detector
// can use) on the scenario clock: flow i starts at TimelineBase + i*gap,
// keeping its projected duration (a pre-timeline EndMicros, clamped to at
// least 1ms).
func SyntheticTimeline(flows []netflow.Flow, gapMicros int64) {
	for i := range flows {
		duration := flows[i].EndMicros // pre-timeline EndMicros is the duration
		if duration <= 0 {
			duration = 1000
		}
		flows[i].StartMicros = TimelineBase + int64(i)*gapMicros
		flows[i].EndMicros = flows[i].StartMicros + duration
	}
}
