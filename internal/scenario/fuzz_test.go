package scenario

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"

	"csb/internal/attack"
	"csb/internal/replay"
)

// fuzzScenario is a small labeled scenario used to seed the corpora.
func fuzzScenario(t testing.TB) *attack.Scenario {
	t.Helper()
	sc := attack.NewScenario(nil)
	rng := rand.New(rand.NewPCG(1, 1))
	sc.InjectHostScan(rng, 0xbad00001, 0x0a000002, 8, 1000)
	sc.InjectSYNFlood(rng, 0x0a000003, 80, 5, 5000)
	sc.Finish()
	return sc
}

// expectTyped fails the fuzz run if err is not one of the contract errors:
// ErrCorruptLabels / replay.ErrCorruptStream for malformed bytes, io.EOF /
// io.ErrUnexpectedEOF for truncation.
func expectTyped(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, ErrCorruptLabels) || errors.Is(err, replay.ErrCorruptStream) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	t.Fatalf("untyped decode error: %v", err)
}

// FuzzDecodeLabeled drives the labeled-artifact decoder (CSBF1 flow section
// + CSBL1 label section) over arbitrary bytes: it must terminate, never
// panic, and classify every failure as either corruption (typed) or
// truncation (io.EOF family). Successfully parsed artifacts must round-trip
// through EncodeLabeled.
func FuzzDecodeLabeled(f *testing.F) {
	seed := fuzzScenario(f)
	valid, err := EncodeLabeled(seed)
	if err != nil {
		f.Fatal(err)
	}
	flowSection := replay.FlowFileHeaderLen + len(seed.Flows)*replay.FlowRecordLen
	f.Add(valid)
	f.Add(valid[:flowSection])                // flows only, labels missing
	f.Add(valid[:flowSection+LabelHeaderLen]) // label records missing
	f.Add(valid[:len(valid)-1])               // truncated flow-attack map
	f.Add([]byte("CSBF1"))                    // short flow header
	badType := append([]byte(nil), valid...)
	badType[flowSection+LabelHeaderLen] = 200 // unknown attack type
	f.Add(badType)
	badIdx := append([]byte(nil), valid...)
	badIdx[len(badIdx)-1] = 0x7f // flow-attack index out of range
	f.Add(badIdx)
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeLabeled(data)
		if err != nil {
			expectTyped(t, err)
			return
		}
		// Parsed successfully: encode-then-decode must be the identity on
		// the parsed scenario. (A full byte round trip is not promised —
		// the headers carry padding bytes and the artifact may have
		// trailing garbage the parser deliberately ignores.)
		out, err := EncodeLabeled(sc)
		if err != nil {
			t.Fatal(err)
		}
		again, err := DecodeLabeled(out)
		if err != nil {
			t.Fatalf("re-reading encoded artifact: %v", err)
		}
		if len(again.Flows) != len(sc.Flows) || len(again.Labels) != len(sc.Labels) {
			t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
				len(again.Flows), len(again.Labels), len(sc.Flows), len(sc.Labels))
		}
		for i := range sc.Flows {
			if again.Flows[i] != sc.Flows[i] || again.FlowAttack[i] != sc.FlowAttack[i] {
				t.Fatalf("flow %d changed across round trip", i)
			}
		}
		for i := range sc.Labels {
			if again.Labels[i] != sc.Labels[i] {
				t.Fatalf("label %d changed across round trip", i)
			}
		}
	})
}

// FuzzReadLabels drives the standalone CSBL1 section parser under the same
// contract.
func FuzzReadLabels(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteLabels(&buf, fuzzScenario(f)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:LabelHeaderLen])
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("CSBL1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		labels, fa, err := ReadLabels(bytes.NewReader(data))
		if err != nil {
			expectTyped(t, err)
			return
		}
		for i, a := range fa {
			if a != attack.BackgroundFlow && int(a) >= len(labels) {
				t.Fatalf("flow %d references label %d of %d", i, a, len(labels))
			}
		}
	})
}
