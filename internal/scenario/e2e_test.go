package scenario

import (
	"bytes"
	"net"
	"testing"

	"csb/internal/attack"
	"csb/internal/cluster"
	"csb/internal/ids"
	"csb/internal/netflow"
	"csb/internal/replay"
)

// e2eSpec is a mixed scenario hot enough for the detector to see every
// attack class (sized like the attack package's full-scenario tests).
func e2eSpec() *Spec {
	return &Spec{
		Seed: 5,
		Background: Background{
			Source: SourceTrace, Hosts: 40, Sessions: 600,
		},
		Attacks: []Attack{
			{Type: TypeHostScan, StartMS: 5_000, Count: 1500, Attacker: 0xbad00001, Victim: 0x0a000003},
			{Type: TypeNetworkScan, StartMS: 65_000, Count: 150, Attacker: 0xbad00002, Port: 22},
			{Type: TypeSYNFlood, StartMS: 125_000, Count: 2500, Victim: 0x0a000005, Port: 80},
			{Type: TypeDDoS, StartMS: 185_000, Count: 80, FlowsPerSource: 3, Victim: 0x0a000009},
		},
	}
}

// replayOverWire serves flows on a loopback CSBS1 stream and consumes them
// back, returning the consumed flows and the concatenated payload bytes.
func replayOverWire(t *testing.T, flows []netflow.Flow, sink func(netflow.Flow)) []byte {
	t.Helper()
	srv, err := replay.NewServer(flows, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	st, err := replay.Consume(conn, func(_ uint64, f netflow.Flow, raw []byte) error {
		payload.Write(raw)
		sink(f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Clean || st.Gaps != 0 || st.Received != uint64(len(flows)) {
		t.Fatalf("stream not clean: %+v", st)
	}
	return payload.Bytes()
}

// TestScenarioPipelineEndToEnd is the full detection-quality loop the
// tentpole ships: spec → labeled artifact → CSBS1 replay → streaming
// detector → attack.Score, asserting the labels and flow bytes survive the
// wire and the ground truth scores the detector's alerts.
func TestScenarioPipelineEndToEnd(t *testing.T) {
	sp := mustNormalize(t, e2eSpec())
	sc, err := Compile(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := EncodeLabeled(sc)
	if err != nil {
		t.Fatal(err)
	}

	// The consumer side knows only the artifact: decode ground truth from
	// it, train thresholds on its labeled background, detect on the wire.
	truth, err := DecodeLabeled(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var benign []netflow.Flow
	for i, a := range truth.FlowAttack {
		if a == attack.BackgroundFlow {
			benign = append(benign, truth.Flows[i])
		}
	}
	var alerts []ids.Alert
	det := ids.NewStreamDetector(ids.TrainThresholds(benign, 0.99, 2), 60*1e6, func(a ids.Alert) {
		alerts = append(alerts, a)
	})
	det.SetReorderHorizon(5 * 1e6)

	payload := replayOverWire(t, truth.Flows, func(f netflow.Flow) {
		det.Add(f)
	})
	det.Flush()

	// Byte identity: a gap-free subscriber's concatenated payloads are the
	// artifact's flow section, exactly.
	section := artifact[replay.FlowFileHeaderLen : replay.FlowFileHeaderLen+len(truth.Flows)*replay.FlowRecordLen]
	if !bytes.Equal(payload, section) {
		t.Fatal("wire payload differs from the artifact flow section")
	}
	// Ordering: the compiled scenario streams through the reorder horizon
	// with zero late drops (the injector ordering fix, end to end).
	if late := det.LateFlows(); late != 0 {
		t.Fatalf("detector dropped %d flows as late, want 0", late)
	}

	out := truth.Score(alerts)
	if out.Recall() < 0.75 {
		t.Fatalf("recall = %g (%+v, %d alerts), want >= 0.75", out.Recall(), out, len(alerts))
	}
	if out.Precision() < 0.5 {
		t.Fatalf("precision = %g (%+v)", out.Precision(), out)
	}

	// Wire determinism: scoring the local flows yields the identical
	// outcome — nothing about the stream changed the detection input.
	var localAlerts []ids.Alert
	ldet := ids.NewStreamDetector(ids.TrainThresholds(benign, 0.99, 2), 60*1e6, func(a ids.Alert) {
		localAlerts = append(localAlerts, a)
	})
	ldet.SetReorderHorizon(5 * 1e6)
	for _, f := range sc.Flows {
		ldet.Add(f)
	}
	ldet.Flush()
	if lout := sc.Score(localAlerts); lout != out {
		t.Fatalf("wire outcome %+v differs from local outcome %+v", out, lout)
	}
}

// TestScenarioScoresDeterministicAcrossMaxParallel compiles a
// generator-background scenario at real parallelism 1 and 16 and asserts
// both the artifact bytes and the resulting detection scores are identical.
func TestScenarioScoresDeterministicAcrossMaxParallel(t *testing.T) {
	spec := func() *Spec {
		return mustNormalize(t, &Spec{
			Seed: 11,
			Background: Background{
				Source: SourcePGPBA, Hosts: 30, Sessions: 400, Edges: 4000,
			},
			Attacks: []Attack{
				{Type: TypeHostScan, StartMS: 1_000, Count: 1200},
				{Type: TypeSYNFlood, StartMS: 30_000, Count: 1500},
			},
		})
	}
	score := func(maxParallel int) (attack.Outcome, []byte) {
		c := cluster.MustNew(cluster.Config{Nodes: 1, CoresPerNode: 4, MaxParallel: maxParallel})
		sc, err := Compile(spec(), c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeLabeled(sc)
		if err != nil {
			t.Fatal(err)
		}
		var alerts []ids.Alert
		det := ids.NewStreamDetector(ids.DefaultThresholds(), 60*1e6, func(a ids.Alert) {
			alerts = append(alerts, a)
		})
		for _, f := range sc.Flows {
			if err := det.Add(f); err != nil {
				t.Fatalf("late flow in compiled scenario: %v", err)
			}
		}
		det.Flush()
		return sc.Score(alerts), data
	}
	o1, b1 := score(1)
	o16, b16 := score(16)
	if !bytes.Equal(b1, b16) {
		t.Fatal("artifact bytes differ across MaxParallel 1 vs 16")
	}
	if o1 != o16 {
		t.Fatalf("outcomes differ across MaxParallel: %+v vs %+v", o1, o16)
	}
}
