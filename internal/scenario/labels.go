package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"csb/internal/attack"
	"csb/internal/ids"
	"csb/internal/replay"
)

// The labeled artifact is a CSBF1 flow section followed immediately by a
// CSBL1 label section. CSBF1 readers (replay.ReadFlowFile, csbreplay
// -artifact) read exactly the counted flow records and ignore the trailing
// label bytes, so a labeled artifact is also a valid plain flow artifact;
// label-aware readers slice past the flow section and decode the ground
// truth. The CSBS1 stream property is preserved too: a gap-free
// subscriber's concatenated payloads reproduce the artifact's flow section
// byte for byte, and the sidecar re-attaches labels by flow index.
//
//	label section:
//	  header (24 bytes):
//	    [0:5]   magic "CSBL1"
//	    [5]     flags (0)
//	    [6:8]   label record length, uint16 BE (LabelRecordLen)
//	    [8:16]  label count, uint64 BE
//	    [16:24] flow count, uint64 BE
//	  label records (LabelRecordLen bytes each):
//	    [0]     attack type (ids.AttackType)
//	    [1:4]   reserved (0)
//	    [4:8]   attacker IP, uint32 BE (0 = none/many)
//	    [8:12]  victim IP, uint32 BE (0 = none/many)
//	  flow-attack map (4 bytes per flow):
//	    uint32 BE label index, or 0xffffffff for background
const (
	// MagicLabels opens a CSBL1 label section.
	MagicLabels = "CSBL1"
	// LabelHeaderLen is the CSBL1 header length.
	LabelHeaderLen = 24
	// LabelRecordLen is the fixed encoded size of one label record.
	LabelRecordLen = 12
	// backgroundIndex is the on-wire FlowAttack sentinel for background.
	backgroundIndex = uint32(0xffffffff)
)

// ErrCorruptLabels tags every label-section decode failure caused by
// malformed bytes — bad magic, wrong record length, implausible counts,
// unknown attack types, out-of-range indices. Plain truncation surfaces as
// io.EOF / io.ErrUnexpectedEOF instead, mirroring the CSBF1/CSBS1 contract
// the fuzz targets enforce.
var ErrCorruptLabels = errors.New("corrupt label section")

// corruptf builds an ErrCorruptLabels-tagged error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format+": %w", append(args, ErrCorruptLabels)...)
}

// WriteLabels appends the CSBL1 label section for sc. The scenario's
// FlowAttack must be index-aligned with Flows (NewScenario and the
// injectors maintain this; hand-built scenarios shorter than Flows are
// padded as background).
func WriteLabels(w io.Writer, sc *attack.Scenario) error {
	var hdr [LabelHeaderLen]byte
	copy(hdr[0:5], MagicLabels)
	binary.BigEndian.PutUint16(hdr[6:8], LabelRecordLen)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(sc.Labels)))
	binary.BigEndian.PutUint64(hdr[16:24], uint64(len(sc.Flows)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [LabelRecordLen]byte
	for _, l := range sc.Labels {
		rec[0] = uint8(l.Type)
		binary.BigEndian.PutUint32(rec[4:8], l.Attacker)
		binary.BigEndian.PutUint32(rec[8:12], l.Victim)
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 4*len(sc.Flows))
	for i := range sc.Flows {
		idx := backgroundIndex
		if i < len(sc.FlowAttack) && sc.FlowAttack[i] >= 0 {
			idx = uint32(sc.FlowAttack[i])
		}
		buf = binary.BigEndian.AppendUint32(buf, idx)
	}
	_, err := w.Write(buf)
	return err
}

// ReadLabels parses a CSBL1 label section: the labels plus the per-flow
// attack map (attack.BackgroundFlow for background flows).
func ReadLabels(r io.Reader) ([]attack.Label, []int32, error) {
	var hdr [LabelHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("scenario: label header: %w", err)
	}
	if string(hdr[0:5]) != MagicLabels {
		return nil, nil, corruptf("bad label magic %q", hdr[0:5])
	}
	if rl := binary.BigEndian.Uint16(hdr[6:8]); rl != LabelRecordLen {
		return nil, nil, corruptf("label record length %d, want %d", rl, LabelRecordLen)
	}
	labelCount := binary.BigEndian.Uint64(hdr[8:16])
	flowCount := binary.BigEndian.Uint64(hdr[16:24])
	// A label marks one whole attack, so counts beyond the flow count (and
	// flow counts beyond CSBF1's own plausibility bound) are corrupt.
	if flowCount > 1<<40 {
		return nil, nil, corruptf("implausible flow count %d", flowCount)
	}
	if labelCount > flowCount {
		return nil, nil, corruptf("label count %d exceeds flow count %d", labelCount, flowCount)
	}
	// Same guard as ReadFlowFile: never pre-allocate from untrusted counts.
	const maxPrealloc = 1 << 20
	labels := make([]attack.Label, 0, min(labelCount, maxPrealloc))
	var rec [LabelRecordLen]byte
	for i := uint64(0); i < labelCount; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, nil, fmt.Errorf("scenario: label record %d: %w", i, err)
		}
		typ := ids.AttackType(rec[0])
		if typ == ids.AttackNone || typ > ids.AttackDDoS {
			return nil, nil, corruptf("label %d has unknown attack type %d", i, rec[0])
		}
		labels = append(labels, attack.Label{
			Type:     typ,
			Attacker: binary.BigEndian.Uint32(rec[4:8]),
			Victim:   binary.BigEndian.Uint32(rec[8:12]),
		})
	}
	fa := make([]int32, 0, min(flowCount, maxPrealloc))
	var ib [4]byte
	for i := uint64(0); i < flowCount; i++ {
		if _, err := io.ReadFull(r, ib[:]); err != nil {
			return nil, nil, fmt.Errorf("scenario: flow-attack entry %d: %w", i, err)
		}
		idx := binary.BigEndian.Uint32(ib[:])
		if idx == backgroundIndex {
			fa = append(fa, attack.BackgroundFlow)
			continue
		}
		if uint64(idx) >= labelCount {
			return nil, nil, corruptf("flow %d references label %d of %d", i, idx, labelCount)
		}
		fa = append(fa, int32(idx))
	}
	return labels, fa, nil
}

// WriteLabeled writes the combined labeled artifact: the CSBF1 flow section
// followed by the CSBL1 label section.
func WriteLabeled(w io.Writer, sc *attack.Scenario) error {
	if err := replay.WriteFlowFile(w, sc.Flows); err != nil {
		return err
	}
	return WriteLabels(w, sc)
}

// EncodeLabeled returns the combined labeled artifact as bytes.
func EncodeLabeled(sc *attack.Scenario) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteLabeled(&buf, sc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeLabeled parses a combined labeled artifact back into a scenario,
// cross-checking that the label section counts match the flow section.
func DecodeLabeled(data []byte) (*attack.Scenario, error) {
	flows, err := replay.ReadFlowFile(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	// ReadFlowFile's buffered reader over-consumes, so re-slice the label
	// section at its computed offset instead of continuing the same reader.
	off := replay.FlowFileHeaderLen + len(flows)*replay.FlowRecordLen
	labels, fa, err := ReadLabels(bytes.NewReader(data[off:]))
	if err != nil {
		return nil, err
	}
	if len(fa) != len(flows) {
		return nil, corruptf("label section covers %d flows, artifact has %d", len(fa), len(flows))
	}
	return &attack.Scenario{Flows: flows, Labels: labels, FlowAttack: fa}, nil
}
