// Package scenario is the labeled attack-scenario layer: a small JSON spec
// describing background traffic plus a composable list of attack injections
// that compiles deterministically into a labeled flow set
// (attack.Scenario), and a label-bearing artifact format (CSBL1 appended to
// a CSBF1 flow section) so the ground truth survives serialization and
// replay. The same spec compiled anywhere — csbgen, a csbd scenario job, or
// csbreplay — yields byte-identical labeled artifacts, which is what turns
// the repo's generators into a detection-quality benchmark: stream the
// artifact, run the detector, score the alerts against the labels with
// attack.Score.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"csb/internal/attack"
	"csb/internal/graph"
	"csb/internal/ids"
)

// Background sources accepted by Background.Source.
const (
	// SourceTrace assembles flows from a synthetic packet trace (the
	// Figure 1 pipeline), carrying a real timeline.
	SourceTrace = "trace"
	// SourcePGPBA and SourcePGSK generate a property graph on the cluster
	// engine and project its flows, with a synthetic timeline (GapMicros
	// between flow starts). These backgrounds exercise the fault/retry
	// machinery: the generation runs on whatever cluster the caller
	// provides, chaos plan included.
	SourcePGPBA = "pgpba"
	SourcePGSK  = "pgsk"
)

// Attack type names accepted by Attack.Type (ids.AttackType.String values).
const (
	TypeHostScan    = "host-scan"
	TypeNetworkScan = "network-scan"
	TypeSYNFlood    = "syn-flood"
	TypeFlood       = "flood"
	TypeDDoS        = "ddos"
)

// Defaults applied by Normalize to zero-valued fields.
const (
	DefaultHosts     = 100
	DefaultSessions  = 2000
	DefaultEdges     = 20000
	DefaultFraction  = 0.1
	DefaultGapMicros = 1000

	// DefaultAttacker is 198.51.100.1 (TEST-NET-2): an address outside both
	// the 10.x synthetic host pool and the injectors' spoofed ranges.
	DefaultAttacker = uint32(0xc6336401)
	// DefaultVictim is 10.0.0.1, the first synthetic trace host
	// (pcap.HostIP(0)).
	DefaultVictim = uint32(0x0a000001)
	// DefaultScanBase is 10.1.0.0, the base address of a network scan's
	// victim range (victims are base+1 .. base+count).
	DefaultScanBase = uint32(0x0a010000)
)

// Background describes the benign traffic an attack list is mixed into.
type Background struct {
	// Source selects trace (default), pgpba or pgsk.
	Source string `json:"source,omitempty"`
	// Hosts and Sessions size the synthetic seed trace.
	Hosts    int `json:"hosts,omitempty"`
	Sessions int `json:"sessions,omitempty"`
	// Edges is the generated edge count (generator sources only).
	Edges int64 `json:"edges,omitempty"`
	// Fraction is the PGPBA growth fraction in (0, 1] (pgpba only).
	Fraction float64 `json:"fraction,omitempty"`
	// GapMicros spaces the synthetic timeline of generator-projected flows
	// (they carry no start times of their own).
	GapMicros int64 `json:"gap_micros,omitempty"`
}

// Attack is one injection: an attack type plus its timing, intensity and
// per-attack RNG stream.
type Attack struct {
	// Type names the injection: host-scan, network-scan, syn-flood, flood
	// or ddos.
	Type string `json:"type"`
	// StartMS offsets the attack from the scenario timeline base, in
	// milliseconds.
	StartMS int64 `json:"start_ms,omitempty"`
	// Seed selects the attack's RNG stream (0 defaults to its position in
	// the list + 1, so every attack gets a distinct stream).
	Seed uint64 `json:"seed,omitempty"`
	// Attacker and Victim address the endpoints; unused by some types
	// (syn-flood spoofs attackers, ddos has many) and normalized away
	// there. For network-scan, Victim is the base address of the scanned
	// range.
	Attacker uint32 `json:"attacker,omitempty"`
	Victim   uint32 `json:"victim,omitempty"`
	// Count is the attack width: ports probed (host-scan, max 65535), hosts
	// probed (network-scan), flood flows (syn-flood, flood) or sources
	// (ddos).
	Count int `json:"count,omitempty"`
	// Port is the targeted service port (network-scan, syn-flood).
	Port uint16 `json:"port,omitempty"`
	// FlowsPerSource sizes each ddos source's contribution.
	FlowsPerSource int `json:"flows_per_source,omitempty"`
	// Proto selects the flood protocol: tcp, udp or icmp.
	Proto string `json:"proto,omitempty"`
}

// Spec is the canonical description of one labeled scenario: the unit of
// work of `csbgen -scenario` and csbd scenario jobs, and the input to the
// artifact content address.
type Spec struct {
	// Seed drives every RNG in the compilation (background and attacks).
	Seed       uint64     `json:"seed"`
	Background Background `json:"background"`
	Attacks    []Attack   `json:"attacks"`
}

// Parse decodes and normalizes a JSON spec.
func Parse(r io.Reader) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Normalize fills defaults and validates the spec in place, zeroing fields
// the attack type does not use so they cannot differentiate artifact
// identities. It is the single validation point shared by csbgen, csbd and
// csbreplay; the normalized spec is what ID hashes.
func (sp *Spec) Normalize() error {
	b := &sp.Background
	if b.Source == "" {
		b.Source = SourceTrace
	}
	switch b.Source {
	case SourceTrace, SourcePGPBA, SourcePGSK:
	default:
		return fmt.Errorf("scenario: unknown background source %q (want %s, %s or %s)",
			b.Source, SourceTrace, SourcePGPBA, SourcePGSK)
	}
	if b.Hosts == 0 {
		b.Hosts = DefaultHosts
	}
	if b.Hosts < 0 {
		return fmt.Errorf("scenario: background hosts must be positive, got %d", b.Hosts)
	}
	if b.Sessions == 0 {
		b.Sessions = DefaultSessions
	}
	if b.Sessions < 0 {
		return fmt.Errorf("scenario: background sessions must be positive, got %d", b.Sessions)
	}
	switch b.Source {
	case SourceTrace:
		// Trace backgrounds carry their own timeline and target no edge
		// count; the generator knobs must not differentiate identities.
		b.Edges, b.Fraction, b.GapMicros = 0, 0, 0
	default:
		if b.Edges == 0 {
			b.Edges = DefaultEdges
		}
		if b.Edges < 0 {
			return fmt.Errorf("scenario: background edges must be positive, got %d", b.Edges)
		}
		if b.GapMicros == 0 {
			b.GapMicros = DefaultGapMicros
		}
		if b.GapMicros < 0 {
			return fmt.Errorf("scenario: background gap_micros must be positive, got %d", b.GapMicros)
		}
		if b.Source == SourcePGPBA {
			if b.Fraction == 0 {
				b.Fraction = DefaultFraction
			}
			if math.IsNaN(b.Fraction) || b.Fraction <= 0 || b.Fraction > 1 {
				return fmt.Errorf("scenario: background fraction must be in (0, 1], got %v", b.Fraction)
			}
		} else {
			b.Fraction = 0
		}
	}
	if len(sp.Attacks) == 0 {
		return fmt.Errorf("scenario: at least one attack is required")
	}
	for i := range sp.Attacks {
		if err := normalizeAttack(&sp.Attacks[i], i); err != nil {
			return err
		}
	}
	return nil
}

// normalizeAttack validates one attack entry and zeroes the fields its type
// does not use.
func normalizeAttack(a *Attack, i int) error {
	if a.StartMS < 0 {
		return fmt.Errorf("scenario: attack %d: start_ms must be non-negative, got %d", i, a.StartMS)
	}
	if a.Count < 0 {
		return fmt.Errorf("scenario: attack %d: count must be positive, got %d", i, a.Count)
	}
	if a.Seed == 0 {
		a.Seed = uint64(i) + 1
	}
	switch a.Type {
	case TypeHostScan:
		if a.Count == 0 {
			a.Count = 200
		}
		if a.Count > attack.MaxScanPorts {
			return fmt.Errorf("scenario: attack %d: host-scan count %d exceeds the %d distinct TCP ports",
				i, a.Count, attack.MaxScanPorts)
		}
		if a.Attacker == 0 {
			a.Attacker = DefaultAttacker
		}
		if a.Victim == 0 {
			a.Victim = DefaultVictim
		}
		a.Port, a.FlowsPerSource, a.Proto = 0, 0, ""
	case TypeNetworkScan:
		if a.Count == 0 {
			a.Count = 50
		}
		if a.Attacker == 0 {
			a.Attacker = DefaultAttacker
		}
		if a.Victim == 0 {
			a.Victim = DefaultScanBase
		}
		if a.Port == 0 {
			a.Port = 22
		}
		a.FlowsPerSource, a.Proto = 0, ""
	case TypeSYNFlood:
		if a.Count == 0 {
			a.Count = 300
		}
		if a.Victim == 0 {
			a.Victim = DefaultVictim
		}
		if a.Port == 0 {
			a.Port = 80
		}
		a.Attacker, a.FlowsPerSource, a.Proto = 0, 0, "" // sources are spoofed
	case TypeFlood:
		if a.Count == 0 {
			a.Count = 40
		}
		if a.Attacker == 0 {
			a.Attacker = DefaultAttacker
		}
		if a.Victim == 0 {
			a.Victim = DefaultVictim
		}
		if a.Proto == "" {
			a.Proto = "udp"
		}
		if _, err := floodProto(a.Proto); err != nil {
			return fmt.Errorf("scenario: attack %d: %w", i, err)
		}
		a.Port, a.FlowsPerSource = 0, 0
	case TypeDDoS:
		if a.Count == 0 {
			a.Count = 30
		}
		if a.FlowsPerSource == 0 {
			a.FlowsPerSource = 5
		}
		if a.FlowsPerSource < 0 {
			return fmt.Errorf("scenario: attack %d: flows_per_source must be positive, got %d", i, a.FlowsPerSource)
		}
		if a.Victim == 0 {
			a.Victim = DefaultVictim
		}
		a.Attacker, a.Port, a.Proto = 0, 0, "" // many sources
	default:
		return fmt.Errorf("scenario: attack %d: unknown type %q (want %s, %s, %s, %s or %s)",
			i, a.Type, TypeHostScan, TypeNetworkScan, TypeSYNFlood, TypeFlood, TypeDDoS)
	}
	return nil
}

// floodProto maps a spec protocol name onto the graph protocol enum.
func floodProto(name string) (graph.Protocol, error) {
	switch name {
	case "tcp":
		return graph.ProtoTCP, nil
	case "udp":
		return graph.ProtoUDP, nil
	case "icmp":
		return graph.ProtoICMP, nil
	default:
		return 0, fmt.Errorf("unknown flood proto %q (want tcp, udp or icmp)", name)
	}
}

// attackTypeOf maps a spec type name onto the detector's enum; Normalize
// guarantees the name is known.
func attackTypeOf(name string) ids.AttackType {
	switch name {
	case TypeHostScan:
		return ids.AttackHostScan
	case TypeNetworkScan:
		return ids.AttackNetworkScan
	case TypeSYNFlood:
		return ids.AttackSYNFlood
	case TypeFlood:
		return ids.AttackFlood
	case TypeDDoS:
		return ids.AttackDDoS
	default:
		return ids.AttackNone
	}
}

// Canonical returns the canonical serialization of the normalized spec: the
// preimage of ID. Every normalized field appears as one key=value line, so
// two specs serialize identically exactly when they compile identically.
func (sp *Spec) Canonical() string {
	var b strings.Builder
	b.WriteString("csb-scenario/v1\n")
	b.WriteString("seed=" + strconv.FormatUint(sp.Seed, 10) + "\n")
	bg := &sp.Background
	b.WriteString("bg.source=" + bg.Source + "\n")
	b.WriteString("bg.hosts=" + strconv.Itoa(bg.Hosts) + "\n")
	b.WriteString("bg.sessions=" + strconv.Itoa(bg.Sessions) + "\n")
	b.WriteString("bg.edges=" + strconv.FormatInt(bg.Edges, 10) + "\n")
	// The float is hashed in its exact hexadecimal form, like serve.Spec.ID.
	b.WriteString("bg.fraction=" + strconv.FormatFloat(bg.Fraction, 'x', -1, 64) + "\n")
	b.WriteString("bg.gap=" + strconv.FormatInt(bg.GapMicros, 10) + "\n")
	for i := range sp.Attacks {
		a := &sp.Attacks[i]
		p := "attack." + strconv.Itoa(i) + "."
		b.WriteString(p + "type=" + a.Type + "\n")
		b.WriteString(p + "start_ms=" + strconv.FormatInt(a.StartMS, 10) + "\n")
		b.WriteString(p + "seed=" + strconv.FormatUint(a.Seed, 10) + "\n")
		b.WriteString(p + "attacker=" + strconv.FormatUint(uint64(a.Attacker), 10) + "\n")
		b.WriteString(p + "victim=" + strconv.FormatUint(uint64(a.Victim), 10) + "\n")
		b.WriteString(p + "count=" + strconv.Itoa(a.Count) + "\n")
		b.WriteString(p + "port=" + strconv.Itoa(int(a.Port)) + "\n")
		b.WriteString(p + "fps=" + strconv.Itoa(a.FlowsPerSource) + "\n")
		b.WriteString(p + "proto=" + a.Proto + "\n")
	}
	return b.String()
}

// ID returns the content address of the spec's labeled artifact: a SHA-256
// over Canonical. csbgen, csbd and csbreplay share this function, which is
// what makes their artifact identities agree.
func (sp *Spec) ID() string {
	sum := sha256.Sum256([]byte(sp.Canonical()))
	return hex.EncodeToString(sum[:])
}
