package scenario

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"csb/internal/attack"
	"csb/internal/cluster"
	"csb/internal/replay"
)

// testSpec is a small mixed scenario on a trace background.
func testSpec() *Spec {
	return &Spec{
		Seed: 7,
		Background: Background{
			Source: SourceTrace, Hosts: 40, Sessions: 600,
		},
		Attacks: []Attack{
			{Type: TypeHostScan, StartMS: 10_000, Count: 1500, Attacker: 0xbad00001, Victim: 0x0a000003},
			{Type: TypeSYNFlood, StartMS: 60_000, Count: 2500, Victim: 0x0a000005, Port: 80},
			{Type: TypeDDoS, StartMS: 120_000, Count: 40, FlowsPerSource: 3, Victim: 0x0a000009},
		},
	}
}

func mustNormalize(t *testing.T, sp *Spec) *Spec {
	t.Helper()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParseNormalizesDefaults(t *testing.T) {
	sp, err := Parse(strings.NewReader(`{"seed": 3, "attacks": [{"type": "host-scan"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b := sp.Background
	if b.Source != SourceTrace || b.Hosts != DefaultHosts || b.Sessions != DefaultSessions {
		t.Fatalf("background defaults = %+v", b)
	}
	a := sp.Attacks[0]
	if a.Seed != 1 || a.Count == 0 || a.Attacker != DefaultAttacker || a.Victim != DefaultVictim {
		t.Fatalf("attack defaults = %+v", a)
	}
}

func TestNormalizeRejectsInvalid(t *testing.T) {
	cases := []Spec{
		{Attacks: []Attack{{Type: "teardrop"}}},
		{Attacks: []Attack{{Type: TypeHostScan, Count: 70_000}}},
		{Attacks: []Attack{{Type: TypeHostScan, StartMS: -1}}},
		{Attacks: []Attack{{Type: TypeFlood, Proto: "gre"}}},
		{Attacks: nil},
		{Background: Background{Source: "pcap"}, Attacks: []Attack{{Type: TypeDDoS}}},
		{Background: Background{Hosts: -1}, Attacks: []Attack{{Type: TypeDDoS}}},
		{Background: Background{Source: SourcePGPBA, Fraction: 1.5}, Attacks: []Attack{{Type: TypeDDoS}}},
	}
	for i := range cases {
		if err := cases[i].Normalize(); err == nil {
			t.Errorf("case %d: invalid spec normalized: %+v", i, cases[i])
		}
	}
}

func TestNormalizeZeroesUnusedFields(t *testing.T) {
	sp := mustNormalize(t, &Spec{Attacks: []Attack{
		{Type: TypeSYNFlood, Attacker: 99, Proto: "udp", FlowsPerSource: 9},
	}})
	a := sp.Attacks[0]
	if a.Attacker != 0 || a.Proto != "" || a.FlowsPerSource != 0 {
		t.Fatalf("syn-flood kept unused fields: %+v", a)
	}
	// Trace backgrounds must not keep generator knobs.
	sp2 := mustNormalize(t, &Spec{
		Background: Background{Edges: 5000, Fraction: 0.5, GapMicros: 7},
		Attacks:    []Attack{{Type: TypeDDoS}},
	})
	if b := sp2.Background; b.Edges != 0 || b.Fraction != 0 || b.GapMicros != 0 {
		t.Fatalf("trace background kept generator knobs: %+v", b)
	}
}

func TestSpecIDStableAndDiscriminating(t *testing.T) {
	a := mustNormalize(t, testSpec())
	b := mustNormalize(t, testSpec())
	if a.ID() != b.ID() {
		t.Fatal("identical specs got different IDs")
	}
	// Unused fields zeroed by Normalize must not differentiate.
	c := testSpec()
	c.Attacks[1].Attacker = 0xffff
	mustNormalize(t, c)
	if c.ID() != a.ID() {
		t.Fatal("normalized-away field changed the ID")
	}
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Seed = 8 },
		func(s *Spec) { s.Background.Hosts = 41 },
		func(s *Spec) { s.Attacks[0].Count = 1501 },
		func(s *Spec) { s.Attacks[0].StartMS = 10_001 },
		func(s *Spec) { s.Attacks = s.Attacks[:2] },
		func(s *Spec) { s.Attacks[2].FlowsPerSource = 4 },
	} {
		m := testSpec()
		mutate(m)
		mustNormalize(t, m)
		if m.ID() == a.ID() {
			t.Fatalf("mutation did not change the ID: %+v", m)
		}
	}
}

func TestCompileDeterministicByteIdentical(t *testing.T) {
	sc1, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := EncodeLabeled(sc1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeLabeled(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same spec compiled to different artifact bytes")
	}
}

func TestCompileProducesFinishedLabeledScenario(t *testing.T) {
	sc, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Labels) != 3 {
		t.Fatalf("labels = %d, want 3", len(sc.Labels))
	}
	if len(sc.FlowAttack) != len(sc.Flows) {
		t.Fatalf("FlowAttack len %d != Flows len %d", len(sc.FlowAttack), len(sc.Flows))
	}
	for i := 1; i < len(sc.Flows); i++ {
		if sc.Flows[i].StartMicros < sc.Flows[i-1].StartMicros {
			t.Fatalf("compiled flows not in start order at %d", i)
		}
	}
	counts := map[int32]int{}
	for _, a := range sc.FlowAttack {
		counts[a]++
	}
	if counts[0] != 1500 || counts[1] != 2500 || counts[2] != 120 {
		t.Fatalf("per-attack flow counts = %v", counts)
	}
	if counts[attack.BackgroundFlow] == 0 {
		t.Fatal("no background flows")
	}
}

func TestGeneratorBackgroundTimelineAndDeterminismAcrossClusters(t *testing.T) {
	spec := func() *Spec {
		return mustNormalize(t, &Spec{
			Seed: 9,
			Background: Background{
				Source: SourcePGPBA, Hosts: 30, Sessions: 400, Edges: 3000,
			},
			Attacks: []Attack{
				{Type: TypeHostScan, StartMS: 1000, Count: 400},
			},
		})
	}
	// Partitioning follows the cluster shape (CoresPerNode), so determinism
	// is asserted across real parallelism and chaos at one fixed shape.
	shape := func(maxParallel int, faults *cluster.FaultPlan) *cluster.Cluster {
		return cluster.MustNew(cluster.Config{
			Nodes: 1, CoresPerNode: 4, MaxParallel: maxParallel, Faults: faults,
		})
	}
	c1 := shape(1, nil)
	c16 := shape(16, nil)
	chaos := shape(4, cluster.NewFaultPlan(3, 0.2))
	var ref []byte
	for name, c := range map[string]*cluster.Cluster{"p1": c1, "p16": c16, "chaos": chaos} {
		sc, err := Compile(spec(), c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := EncodeLabeled(sc)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			// The synthetic timeline must be usable: strictly within the
			// background span, gap-spaced from the base.
			bg := 0
			for i, a := range sc.FlowAttack {
				if a == attack.BackgroundFlow && sc.Flows[i].StartMicros < TimelineBase {
					t.Fatalf("background flow %d starts before the timeline base", i)
				} else if a == attack.BackgroundFlow {
					bg++
				}
			}
			// PGPBA grows in rounds, so it may overshoot the target slightly.
			if bg < 3000 {
				t.Fatalf("background flows = %d, want >= 3000", bg)
			}
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("%s: artifact bytes differ across cluster shapes", name)
		}
	}
}

func TestLabeledArtifactRoundTrip(t *testing.T) {
	sc, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeLabeled(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLabeled(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Flows) != len(sc.Flows) || len(got.Labels) != len(sc.Labels) {
		t.Fatalf("round trip: %d flows %d labels, want %d/%d",
			len(got.Flows), len(got.Labels), len(sc.Flows), len(sc.Labels))
	}
	for i := range sc.Flows {
		if got.Flows[i] != sc.Flows[i] {
			t.Fatalf("flow %d changed across the round trip", i)
		}
		if got.FlowAttack[i] != sc.FlowAttack[i] {
			t.Fatalf("flow %d label index changed across the round trip", i)
		}
	}
	for i := range sc.Labels {
		if got.Labels[i] != sc.Labels[i] {
			t.Fatalf("label %d changed across the round trip", i)
		}
	}
	// A labeled artifact is also a valid plain CSBF1 flow artifact: the
	// label section trails the counted records and must be ignored.
	flows, err := replay.ReadFlowFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("plain CSBF1 read of labeled artifact: %v", err)
	}
	if len(flows) != len(sc.Flows) {
		t.Fatalf("plain read got %d flows, want %d", len(flows), len(sc.Flows))
	}
	// And the flow section is exactly EncodeFlows — the bytes a gap-free
	// replay subscriber reassembles.
	section := data[replay.FlowFileHeaderLen : replay.FlowFileHeaderLen+len(sc.Flows)*replay.FlowRecordLen]
	if !bytes.Equal(section, replay.EncodeFlows(sc.Flows)) {
		t.Fatal("flow section differs from EncodeFlows")
	}
}

func TestReadLabelsTypedErrors(t *testing.T) {
	sc, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, sc); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte)) {
		t.Helper()
		b := append([]byte(nil), good...)
		mutate(b)
		if _, _, err := ReadLabels(bytes.NewReader(b)); !errors.Is(err, ErrCorruptLabels) {
			t.Errorf("%s: err = %v, want ErrCorruptLabels", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 'X' })
	corrupt("bad record len", func(b []byte) { b[7] = 13 })
	corrupt("label count > flow count", func(b []byte) { b[8] = 0xff })
	corrupt("unknown attack type", func(b []byte) { b[LabelHeaderLen] = 99 })
	corrupt("background type in label", func(b []byte) { b[LabelHeaderLen] = 0 })
	corrupt("index out of range", func(b []byte) {
		off := LabelHeaderLen + len(sc.Labels)*LabelRecordLen
		b[off], b[off+1], b[off+2], b[off+3] = 0, 0, 0, 200
	})

	// Truncation is not corruption: every cut surfaces as EOF-family.
	for _, cut := range []int{0, 5, LabelHeaderLen - 1, LabelHeaderLen + 3, len(good) - 2} {
		_, _, err := ReadLabels(bytes.NewReader(good[:cut]))
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: err = %v, want EOF family", cut, err)
		}
		if errors.Is(err, ErrCorruptLabels) {
			t.Errorf("cut at %d misreported as corruption: %v", cut, err)
		}
	}
}

func TestDecodeLabeledCrossChecksCounts(t *testing.T) {
	sc, err := Compile(mustNormalize(t, testSpec()), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeLabeled(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Claim one fewer flow in the label section than the flow section has.
	off := replay.FlowFileHeaderLen + len(sc.Flows)*replay.FlowRecordLen
	b := append([]byte(nil), data...)
	n := uint64(len(sc.Flows) - 1)
	for i := 0; i < 8; i++ {
		b[off+16+i] = byte(n >> (56 - 8*i))
	}
	// Drop the final flow-attack entry so the section is self-consistent.
	b = b[:len(b)-4]
	if _, err := DecodeLabeled(b); !errors.Is(err, ErrCorruptLabels) {
		t.Fatalf("mismatched counts: err = %v, want ErrCorruptLabels", err)
	}
}
