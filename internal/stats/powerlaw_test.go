package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	// Generate from a known power law and check the MLE recovers alpha.
	// The Clauset discrete-MLE approximation is accurate for xmin >~ 6,
	// so fit with xmin = 10.
	for _, alpha := range []float64{1.8, 2.5, 3.2} {
		truth := &PowerLaw{Alpha: alpha, Xmin: 10}
		rng := rand.New(rand.NewPCG(uint64(alpha*1000), 4))
		samples := make([]int64, 30000)
		for i := range samples {
			samples[i] = truth.Sample(rng)
		}
		fit, err := FitPowerLaw(samples, 10)
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.15 {
			t.Errorf("fitted alpha = %g, want ~%g", fit.Alpha, alpha)
		}
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]int64{5, 6}, 0); err == nil {
		t.Error("accepted xmin = 0")
	}
	if _, err := FitPowerLaw([]int64{1}, 1); err == nil {
		t.Error("accepted single sample")
	}
	if _, err := FitPowerLaw([]int64{1, 2, 3}, 100); err == nil {
		t.Error("accepted samples all below xmin")
	}
}

func TestPowerLawSampleBounds(t *testing.T) {
	p := &PowerLaw{Alpha: 2.1, Xmin: 3}
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 10000; i++ {
		if v := p.Sample(rng); v < 3 {
			t.Fatalf("sample %d below xmin", v)
		}
	}
}

func TestPowerLawCCDF(t *testing.T) {
	p := &PowerLaw{Alpha: 3, Xmin: 1}
	if got := p.CCDF(1); got != 1 {
		t.Errorf("CCDF(xmin) = %g, want 1", got)
	}
	if got := p.CCDF(10); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("CCDF(10) = %g, want 0.01", got)
	}
	if p.CCDF(100) >= p.CCDF(10) {
		t.Error("CCDF not decreasing")
	}
}

func TestPowerLawHeavyTail(t *testing.T) {
	// A smaller alpha must produce a heavier tail (larger max over a fixed
	// number of draws), statistically.
	draw := func(alpha float64, seed uint64) int64 {
		p := &PowerLaw{Alpha: alpha, Xmin: 1}
		rng := rand.New(rand.NewPCG(seed, 6))
		var maxV int64
		for i := 0; i < 20000; i++ {
			if v := p.Sample(rng); v > maxV {
				maxV = v
			}
		}
		return maxV
	}
	if draw(1.7, 11) <= draw(3.5, 11) {
		t.Error("alpha=1.7 tail not heavier than alpha=3.5")
	}
}
