package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestVeracityIdenticalIsZero(t *testing.T) {
	v := []float64{5, 3, 2, 1, 1}
	score, err := VeracityScore(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Fatalf("identical vectors score = %g, want 0", score)
	}
}

func TestVeracityScaleInvariant(t *testing.T) {
	a := []float64{5, 3, 2}
	b := []float64{50, 30, 20} // same shape, 10x scale
	score, err := VeracityScore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if score > 1e-15 {
		t.Fatalf("scaled copy score = %g, want ~0 (normalization)", score)
	}
}

func TestVeracityOrderInvariant(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	score, err := VeracityScore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if score > 1e-15 {
		t.Fatalf("permuted copy score = %g, want ~0 (rank alignment)", score)
	}
}

func TestVeracityDecreasesWithSyntheticSize(t *testing.T) {
	// The paper's key observation (Figs 6-7): as the synthetic graph grows,
	// the veracity score decreases. Model seed and synthetic as power-lawish
	// degree vectors of increasing length.
	seed := make([]float64, 100)
	for i := range seed {
		seed[i] = 1 / float64(i+1)
	}
	prev := math.Inf(1)
	for _, n := range []int{500, 5000, 50000} {
		syn := make([]float64, n)
		for i := range syn {
			syn[i] = 1 / float64(i+1)
		}
		score, err := VeracityScore(seed, syn)
		if err != nil {
			t.Fatal(err)
		}
		if score >= prev {
			t.Fatalf("score did not decrease with size: n=%d score=%g prev=%g", n, score, prev)
		}
		prev = score
	}
}

func TestVeracityErrorOnZeroSum(t *testing.T) {
	if _, err := VeracityScore([]float64{0, 0}, []float64{1}); err == nil {
		t.Fatal("accepted zero-sum seed")
	}
	if _, err := VeracityScore([]float64{1}, []float64{0}); err == nil {
		t.Fatal("accepted zero-sum synthetic")
	}
}

func TestVeracityScoreInt(t *testing.T) {
	s, err := VeracityScoreInt([]int64{2, 1}, []int64{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s > 1e-15 {
		t.Fatalf("int veracity of scaled copy = %g, want ~0", s)
	}
}

func TestEuclideanDistance(t *testing.T) {
	d, err := EuclideanDistance([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("EuclideanDistance = %g, want 5", d)
	}
	if _, err := EuclideanDistance([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch error = %v, want ErrLengthMismatch", err)
	}
}

func TestNormalizeTypedErrors(t *testing.T) {
	if _, err := Normalize(nil); !errors.Is(err, ErrEmptyVector) {
		t.Fatalf("Normalize(nil) error = %v, want ErrEmptyVector", err)
	}
	if _, err := Normalize([]float64{0, 0, 0}); !errors.Is(err, ErrZeroVector) {
		t.Fatalf("Normalize(zeros) error = %v, want ErrZeroVector", err)
	}
	if _, err := VeracityScore(nil, []float64{1}); !errors.Is(err, ErrEmptyVector) {
		t.Fatalf("VeracityScore(empty seed) error = %v, want ErrEmptyVector", err)
	}
	if _, err := VeracityScore([]float64{1}, []float64{0}); !errors.Is(err, ErrZeroVector) {
		t.Fatalf("VeracityScore(zero synthetic) error = %v, want ErrZeroVector", err)
	}
}

func TestKSDistance(t *testing.T) {
	same := []int64{1, 2, 3, 4, 5}
	if d := KSDistance(same, same); d != 0 {
		t.Fatalf("KS of identical samples = %g, want 0", d)
	}
	disjoint := KSDistance([]int64{1, 1, 1}, []int64{10, 10, 10})
	if math.Abs(disjoint-1) > 1e-12 {
		t.Fatalf("KS of disjoint samples = %g, want 1", disjoint)
	}
	// Same distribution sampled twice should have small KS.
	rng := rand.New(rand.NewPCG(3, 3))
	a := make([]int64, 5000)
	b := make([]int64, 5000)
	for i := range a {
		a[i] = rng.Int64N(10)
		b[i] = rng.Int64N(10)
	}
	if d := KSDistance(a, b); d > 0.05 {
		t.Fatalf("KS of same-law samples = %g, want < 0.05", d)
	}
}

// Property: veracity is symmetric and non-negative.
func TestVeracityProperties(t *testing.T) {
	f := func(seedA, seedB uint64, nA, nB uint8) bool {
		rngA := rand.New(rand.NewPCG(seedA, 1))
		rngB := rand.New(rand.NewPCG(seedB, 2))
		a := make([]float64, int(nA%50)+1)
		b := make([]float64, int(nB%50)+1)
		for i := range a {
			a[i] = rngA.Float64() + 0.01
		}
		for i := range b {
			b[i] = rngB.Float64() + 0.01
		}
		s1, err1 := VeracityScore(a, b)
		s2, err2 := VeracityScore(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1 >= 0 && math.Abs(s1-s2) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
