// Package stats provides the statistical machinery of the data generators:
// empirical discrete distributions with inverse-CDF sampling, power-law
// maximum-likelihood fitting, log-binned histograms for degree plots, and the
// veracity score used to compare synthetic datasets against their seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Discrete is an empirical probability distribution over int64 values, built
// from observed samples or counts. Sampling uses the Vose alias method,
// O(1) per draw; CDF and quantile queries use binary search over the
// cumulative weights.
//
// It is the distribution object of the paper's generators: the pre-computed
// in-/out-degree distributions and every Netflow attribute distribution are
// Discrete values. The generators draw |E| x |properties| samples, so the
// constant-time alias draw is what keeps property synthesis at the paper's
// O(|E| x |properties|) with a small constant.
type Discrete struct {
	values []int64   // distinct observed values, ascending
	cum    []float64 // cumulative probability, cum[len-1] == 1
	mean   float64

	// Vose alias tables: pick i uniformly, then keep i with probability
	// aliasProb[i], else take alias[i].
	aliasProb []float64
	alias     []int32
	// pmfVals keeps the exact pmf aligned with values, for serialization.
	pmfVals []float64
}

// pmf returns the exact probability mass function aligned with Support().
func (d *Discrete) pmf() []float64 { return d.pmfVals }

// FromSamples builds a Discrete from raw observations.
func FromSamples(samples []int64) (*Discrete, error) {
	if len(samples) == 0 {
		return nil, errors.New("stats: no samples")
	}
	counts := make(map[int64]int64, 256)
	for _, s := range samples {
		counts[s]++
	}
	return FromCounts(counts)
}

// FromCounts builds a Discrete from value -> count (or any non-negative
// weight) pairs. At least one count must be positive.
func FromCounts(counts map[int64]int64) (*Discrete, error) {
	if len(counts) == 0 {
		return nil, errors.New("stats: empty counts")
	}
	values := make([]int64, 0, len(counts))
	var total int64
	for v, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative count %d for value %d", c, v)
		}
		if c > 0 {
			values = append(values, v)
			total += c
		}
	}
	if total == 0 {
		return nil, errors.New("stats: all counts zero")
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	cum := make([]float64, len(values))
	var running float64
	var mean float64
	for i, v := range values {
		p := float64(counts[v]) / float64(total)
		running += p
		cum[i] = running
		mean += p * float64(v)
	}
	cum[len(cum)-1] = 1 // guard against floating point drift
	d := &Discrete{values: values, cum: cum, mean: mean}
	pmf := make([]float64, len(values))
	for i, v := range values {
		pmf[i] = float64(counts[v]) / float64(total)
	}
	d.buildAliasFromPMF(pmf)
	return d, nil
}

// buildAliasFromPMF constructs the Vose alias tables in O(k) from the
// probability mass function aligned with d.values.
func (d *Discrete) buildAliasFromPMF(pmf []float64) {
	n := len(d.values)
	d.pmfVals = append([]float64(nil), pmf...)
	d.aliasProb = make([]float64, n)
	d.alias = make([]int32, n)
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := range d.values {
		scaled[i] = pmf[i] * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.aliasProb[s] = scaled[s]
		d.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		d.aliasProb[i] = 1
		d.alias[i] = i
	}
	for _, i := range small { // numerical leftovers
		d.aliasProb[i] = 1
		d.alias[i] = i
	}
}

// Sample draws one value from the distribution using rng in O(1).
func (d *Discrete) Sample(rng *rand.Rand) int64 {
	i := rng.IntN(len(d.values))
	if rng.Float64() < d.aliasProb[i] {
		return d.values[i]
	}
	return d.values[d.alias[i]]
}

// SampleN draws n values into a new slice.
func (d *Discrete) SampleN(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Mean returns the expected value.
func (d *Discrete) Mean() float64 { return d.mean }

// Support returns the distinct values in ascending order. The slice is
// shared; callers must not modify it.
func (d *Discrete) Support() []int64 { return d.values }

// Prob returns P[X == v].
func (d *Discrete) Prob(v int64) float64 {
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] >= v })
	if i == len(d.values) || d.values[i] != v {
		return 0
	}
	if i == 0 {
		return d.cum[0]
	}
	return d.cum[i] - d.cum[i-1]
}

// CDF returns P[X <= v].
func (d *Discrete) CDF(v int64) float64 {
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i] > v })
	if i == 0 {
		return 0
	}
	return d.cum[i-1]
}

// Quantile returns the smallest value v with CDF(v) >= p, for p in (0,1].
func (d *Discrete) Quantile(p float64) int64 {
	if p <= 0 {
		return d.values[0]
	}
	i := sort.SearchFloat64s(d.cum, p)
	if i == len(d.cum) {
		i = len(d.cum) - 1
	}
	return d.values[i]
}

// Min and Max return the support bounds.
func (d *Discrete) Min() int64 { return d.values[0] }

// Max returns the largest supported value.
func (d *Discrete) Max() int64 { return d.values[len(d.values)-1] }

// DegreeDistribution builds the Discrete distribution of a degree vector,
// the "pre-computed in- and out-degree probability distributions" of the
// seed-analysis step (Figure 1). Zero-degree vertices are excluded, matching
// degree-distribution convention (a new vertex must attach at least once).
func DegreeDistribution(degrees []int64) (*Discrete, error) {
	counts := make(map[int64]int64, 64)
	for _, d := range degrees {
		if d > 0 {
			counts[d]++
		}
	}
	if len(counts) == 0 {
		return nil, errors.New("stats: degree vector has no positive entries")
	}
	return FromCounts(counts)
}

// Normalize divides each element of xs by the sum of all elements, returning
// the normalized vector. This is the normalization used by the paper for
// degree and PageRank distributions prior to veracity scoring. An empty
// input reports ErrEmptyVector, an all-zero input ErrZeroVector, and a
// non-finite sum a plain error; all are returned (never panicked) so grid
// evaluation can classify malformed cells.
func Normalize(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: cannot normalize", ErrEmptyVector)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return nil, fmt.Errorf("%w: cannot normalize", ErrZeroVector)
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("stats: cannot normalize, sum = %v", sum)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out, nil
}

// NormalizeInt divides each element by the total, returning float64s.
func NormalizeInt(xs []int64) ([]float64, error) {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Normalize(fs)
}
