package stats

import (
	"math"
	"sort"
)

// This file holds the distribution-distance metrics of the evaluation
// harness (internal/eval). KSDistance (veracity.go) compares empirical
// CDFs; JSDivergence and EMDistance below complete the suite: JS is a
// bounded symmetric divergence of the probability mass functions (sensitive
// to support mismatch), EMD is the first Wasserstein distance (sensitive to
// how far mass moved, in the attribute's own units). All three operate on
// raw int64 samples, the form every attribute marginal (degree, flow size,
// duration, port, protocol) takes in this repo.

// pmfOnMergedSupport builds the two empirical probability mass functions
// aligned on the union of the sample supports, returned with the merged
// support values in ascending order.
func pmfOnMergedSupport(a, b []int64) (support []int64, pa, pb []float64) {
	ca := make(map[int64]int64, 64)
	for _, v := range a {
		ca[v]++
	}
	cb := make(map[int64]int64, 64)
	for _, v := range b {
		cb[v]++
	}
	seen := make(map[int64]struct{}, len(ca)+len(cb))
	for v := range ca {
		seen[v] = struct{}{}
	}
	for v := range cb {
		seen[v] = struct{}{}
	}
	support = make([]int64, 0, len(seen))
	for v := range seen {
		support = append(support, v)
	}
	sort.Slice(support, func(i, j int) bool { return support[i] < support[j] })
	pa = make([]float64, len(support))
	pb = make([]float64, len(support))
	na, nb := float64(len(a)), float64(len(b))
	for i, v := range support {
		pa[i] = float64(ca[v]) / na
		pb[i] = float64(cb[v]) / nb
	}
	return support, pa, pb
}

// JSDivergence returns the Jensen-Shannon divergence (base-2 logarithm, so
// the value lies in [0, 1]) between the empirical distributions of two
// sample sets. Either set being empty reports ErrEmptyVector.
func JSDivergence(a, b []int64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptyVector
	}
	_, pa, pb := pmfOnMergedSupport(a, b)
	var js float64
	for i := range pa {
		m := (pa[i] + pb[i]) / 2
		if pa[i] > 0 {
			js += pa[i] / 2 * math.Log2(pa[i]/m)
		}
		if pb[i] > 0 {
			js += pb[i] / 2 * math.Log2(pb[i]/m)
		}
	}
	// Clamp the floating-point tail: the divergence is non-negative and at
	// most 1 bit by construction.
	if js < 0 {
		js = 0
	}
	if js > 1 {
		js = 1
	}
	return js, nil
}

// EMDistance returns the earth-mover's (first Wasserstein) distance between
// the empirical distributions of two sample sets: the integral of the
// absolute CDF difference over the merged support, in the units of the
// attribute itself. Either set being empty reports ErrEmptyVector.
func EMDistance(a, b []int64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmptyVector
	}
	support, pa, pb := pmfOnMergedSupport(a, b)
	var emd, cdfDiff float64
	for i := 0; i < len(support)-1; i++ {
		cdfDiff += pa[i] - pb[i]
		emd += math.Abs(cdfDiff) * float64(support[i+1]-support[i])
	}
	return emd, nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// vectors. Unequal lengths report ErrLengthMismatch; fewer than two points
// or a zero-variance vector report ErrZeroVector (the coefficient is
// undefined there).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrZeroVector
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrZeroVector
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
