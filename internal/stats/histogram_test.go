package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLogHistogramMassSumsToOne(t *testing.T) {
	values := []int64{1, 1, 2, 3, 10, 15, 100, 1000, 0, -5}
	bins := LogHistogram(values, 5)
	var p float64
	var c int64
	for _, b := range bins {
		p += b.P
		c += b.Count
	}
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("bin mass = %g, want 1", p)
	}
	if c != 8 { // the 8 positive values
		t.Fatalf("bin count = %d, want 8", c)
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	if bins := LogHistogram(nil, 10); bins != nil {
		t.Fatalf("empty input produced %d bins", len(bins))
	}
	if bins := LogHistogram([]int64{0, -1}, 10); bins != nil {
		t.Fatal("non-positive-only input produced bins")
	}
}

func TestLogHistogramDefaultBins(t *testing.T) {
	bins := LogHistogram([]int64{1, 10, 100}, 0) // 0 -> default 10/decade
	if len(bins) == 0 {
		t.Fatal("no bins with default binning")
	}
}

func TestDegreeCCDF(t *testing.T) {
	xs, ps := DegreeCCDF([]int64{1, 1, 2, 5, 0})
	if len(xs) != 3 {
		t.Fatalf("distinct degrees = %d, want 3", len(xs))
	}
	if xs[0] != 1 || ps[0] != 1 {
		t.Errorf("first point (%d, %g), want (1, 1)", xs[0], ps[0])
	}
	if xs[2] != 5 || math.Abs(ps[2]-0.25) > 1e-12 {
		t.Errorf("last point (%d, %g), want (5, 0.25)", xs[2], ps[2])
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] >= ps[i-1] {
			t.Error("CCDF not strictly decreasing over distinct degrees")
		}
	}
	if xs, ps := DegreeCCDF(nil); xs != nil || ps != nil {
		t.Error("empty input produced points")
	}
}

func TestWriteSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, "demo", []float64{1, 2}, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# series: demo\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "1\t10\n") || !strings.Contains(out, "2\t20\n") {
		t.Fatalf("missing rows: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("Std = %g", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary nonzero")
	}
	odd := SummarizeInt([]int64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median = %g, want 2", odd.Median)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r := PearsonCorrelation(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g, want 1", r)
	}
	c := []float64{10, 8, 6, 4, 2}
	if r := PearsonCorrelation(a, c); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation = %g, want -1", r)
	}
	if !math.IsNaN(PearsonCorrelation(a, []float64{1})) {
		t.Fatal("length mismatch did not return NaN")
	}
	if !math.IsNaN(PearsonCorrelation([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("zero-variance input did not return NaN")
	}
}

func TestShannonEntropy(t *testing.T) {
	if h := ShannonEntropy(nil); h != 0 {
		t.Fatalf("empty entropy = %g", h)
	}
	if h := ShannonEntropy([]int64{7, 7, 7}); h != 0 {
		t.Fatalf("constant entropy = %g", h)
	}
	// Uniform over 4 values: exactly 2 bits.
	h := ShannonEntropy([]int64{0, 1, 2, 3})
	if math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy = %g, want 2", h)
	}
	// Skewed distribution has lower entropy than uniform.
	skew := ShannonEntropy([]int64{0, 0, 0, 0, 0, 0, 1, 2})
	if skew >= ShannonEntropy([]int64{0, 0, 1, 1, 2, 2, 3, 3}) {
		t.Fatal("skewed entropy not below uniform")
	}
}
