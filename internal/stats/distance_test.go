package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestJSDivergence(t *testing.T) {
	same := []int64{1, 1, 2, 3, 3, 3}
	d, err := JSDivergence(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("JS of identical samples = %g, want 0", d)
	}

	// Disjoint supports give the maximum divergence of 1 bit.
	d, err = JSDivergence([]int64{1, 1, 2}, []int64{7, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("JS of disjoint samples = %g, want 1", d)
	}

	// Symmetry.
	a := []int64{1, 2, 2, 3, 5, 8}
	b := []int64{2, 3, 3, 4}
	ab, _ := JSDivergence(a, b)
	ba, _ := JSDivergence(b, a)
	if math.Abs(ab-ba) > 1e-15 {
		t.Fatalf("JS not symmetric: %g vs %g", ab, ba)
	}
	if ab <= 0 || ab >= 1 {
		t.Fatalf("JS of overlapping samples = %g, want in (0, 1)", ab)
	}

	if _, err := JSDivergence(nil, a); !errors.Is(err, ErrEmptyVector) {
		t.Fatalf("JS(empty) error = %v, want ErrEmptyVector", err)
	}
}

func TestEMDistance(t *testing.T) {
	same := []int64{4, 4, 9}
	d, err := EMDistance(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("EMD of identical samples = %g, want 0", d)
	}

	// Point masses at distance 5: all mass moves 5 units.
	d, err = EMDistance([]int64{0, 0}, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("EMD of shifted point masses = %g, want 5", d)
	}

	// A uniform shift by c moves every quantile by c.
	a := []int64{1, 2, 3, 4}
	b := []int64{4, 5, 6, 7}
	d, err = EMDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-3) > 1e-12 {
		t.Fatalf("EMD of +3 shift = %g, want 3", d)
	}

	ab, _ := EMDistance(a, b)
	ba, _ := EMDistance(b, a)
	if math.Abs(ab-ba) > 1e-15 {
		t.Fatalf("EMD not symmetric: %g vs %g", ab, ba)
	}

	if _, err := EMDistance(a, nil); !errors.Is(err, ErrEmptyVector) {
		t.Fatalf("EMD(empty) error = %v, want ErrEmptyVector", err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson of affine pair = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson of anti-affine pair = %g, want -1", r)
	}
	if _, err := Pearson(x, []float64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("Pearson mismatch error = %v, want ErrLengthMismatch", err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); !errors.Is(err, ErrZeroVector) {
		t.Fatalf("Pearson constant-vector error = %v, want ErrZeroVector", err)
	}
}

// TestDistancesDeterministic locks the distances down as pure functions of
// the sample multisets: shuffling the inputs must not change any result
// bit, which is what lets grid cells compute them on any worker.
func TestDistancesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([]int64, 500)
	b := make([]int64, 300)
	for i := range a {
		a[i] = rng.Int64N(40)
	}
	for i := range b {
		b[i] = rng.Int64N(40) + 10
	}
	js0, _ := JSDivergence(a, b)
	emd0, _ := EMDistance(a, b)
	for trial := 0; trial < 3; trial++ {
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		if js, _ := JSDivergence(a, b); js != js0 {
			t.Fatalf("JS changed under shuffle: %v vs %v", js, js0)
		}
		if emd, _ := EMDistance(a, b); emd != emd0 {
			t.Fatalf("EMD changed under shuffle: %v vs %v", emd, emd0)
		}
	}
}
