package stats

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFromSamplesEmpty(t *testing.T) {
	if _, err := FromSamples(nil); err == nil {
		t.Fatal("FromSamples(nil) succeeded")
	}
}

func TestFromCountsRejectsBadInput(t *testing.T) {
	if _, err := FromCounts(nil); err == nil {
		t.Fatal("FromCounts(nil) succeeded")
	}
	if _, err := FromCounts(map[int64]int64{1: -2}); err == nil {
		t.Fatal("FromCounts accepted negative count")
	}
	if _, err := FromCounts(map[int64]int64{1: 0, 2: 0}); err == nil {
		t.Fatal("FromCounts accepted all-zero counts")
	}
}

func TestDiscreteProbCDF(t *testing.T) {
	d, err := FromCounts(map[int64]int64{1: 1, 2: 2, 4: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    int64
		p, c float64
	}{
		{0, 0, 0},
		{1, 0.25, 0.25},
		{2, 0.5, 0.75},
		{3, 0, 0.75},
		{4, 0.25, 1},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := d.Prob(c.v); math.Abs(got-c.p) > 1e-12 {
			t.Errorf("Prob(%d) = %g, want %g", c.v, got, c.p)
		}
		if got := d.CDF(c.v); math.Abs(got-c.c) > 1e-12 {
			t.Errorf("CDF(%d) = %g, want %g", c.v, got, c.c)
		}
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Errorf("Min/Max = %d/%d, want 1/4", d.Min(), d.Max())
	}
	if got := d.Mean(); math.Abs(got-2.25) > 1e-12 {
		t.Errorf("Mean = %g, want 2.25", got)
	}
}

func TestDiscreteQuantile(t *testing.T) {
	d, _ := FromCounts(map[int64]int64{10: 5, 20: 4, 30: 1})
	if q := d.Quantile(0.5); q != 10 {
		t.Errorf("Quantile(0.5) = %d, want 10", q)
	}
	if q := d.Quantile(0.6); q != 20 {
		t.Errorf("Quantile(0.6) = %d, want 20", q)
	}
	if q := d.Quantile(1); q != 30 {
		t.Errorf("Quantile(1) = %d, want 30", q)
	}
	if q := d.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %d, want 10", q)
	}
}

func TestDiscreteSampleFrequencies(t *testing.T) {
	d, _ := FromCounts(map[int64]int64{1: 7, 5: 2, 9: 1})
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 100000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	for v, want := range map[int64]float64{1: 0.7, 5: 0.2, 9: 0.1} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical P[%d] = %g, want ~%g", v, got, want)
		}
	}
}

func TestDiscreteSingleValue(t *testing.T) {
	d, _ := FromSamples([]int64{42, 42, 42})
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 100; i++ {
		if d.Sample(rng) != 42 {
			t.Fatal("single-value distribution sampled other value")
		}
	}
	if len(d.SampleN(rng, 5)) != 5 {
		t.Fatal("SampleN length wrong")
	}
}

func TestDegreeDistributionSkipsZeros(t *testing.T) {
	d, err := DegreeDistribution([]int64{0, 0, 3, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Prob(0) != 0 {
		t.Error("zero degree included in distribution")
	}
	if math.Abs(d.Prob(1)-2.0/3) > 1e-12 || math.Abs(d.Prob(3)-1.0/3) > 1e-12 {
		t.Errorf("degree probs wrong: P(1)=%g P(3)=%g", d.Prob(1), d.Prob(3))
	}
	if _, err := DegreeDistribution([]int64{0, 0}); err == nil {
		t.Error("all-zero degree vector accepted")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.25) > 1e-12 || math.Abs(out[1]-0.75) > 1e-12 {
		t.Errorf("Normalize = %v", out)
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("Normalize accepted zero-sum vector")
	}
	if _, err := Normalize([]float64{math.NaN()}); err == nil {
		t.Error("Normalize accepted NaN")
	}
}

// Property: sampled values always come from the support, and the CDF is
// monotone reaching exactly 1.
func TestDiscreteInvariants(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, r := range raw {
			samples[i] = int64(r % 100)
		}
		d, err := FromSamples(samples)
		if err != nil {
			return false
		}
		sup := d.Support()
		for i := 1; i < len(sup); i++ {
			if sup[i] <= sup[i-1] {
				return false
			}
		}
		if d.cum[len(d.cum)-1] != 1 {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 9))
		inSupport := make(map[int64]bool, len(sup))
		for _, v := range sup {
			inSupport[v] = true
		}
		for i := 0; i < 50; i++ {
			if !inSupport[d.Sample(rng)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteSerializationRoundTrip(t *testing.T) {
	d, err := FromCounts(map[int64]int64{1: 100, 7: 13, 42: 1, 1000: 886})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDiscrete(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean() != d.Mean() || got.Min() != d.Min() || got.Max() != d.Max() {
		t.Fatal("summary stats differ")
	}
	for _, v := range d.Support() {
		if got.Prob(v) != d.Prob(v) {
			t.Fatalf("Prob(%d) differs", v)
		}
	}
	// Bit-identical sampling under the same stream.
	r1 := rand.New(rand.NewPCG(9, 9))
	r2 := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 2000; i++ {
		if d.Sample(r1) != got.Sample(r2) {
			t.Fatalf("sampling diverged at draw %d", i)
		}
	}
}

func TestReadDiscreteRejectsGarbage(t *testing.T) {
	if _, err := ReadDiscrete(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Huge claimed count.
	big := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := ReadDiscrete(bytes.NewReader(big)); err == nil {
		t.Error("implausible count accepted")
	}
	// Valid structure, corrupted CDF.
	d, _ := FromCounts(map[int64]int64{1: 2, 2: 3})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	corrupt := append([]byte(nil), b...)
	corrupt[len(corrupt)-20] ^= 0xff // inside cum/pmf floats
	if got, err := ReadDiscrete(bytes.NewReader(corrupt)); err == nil {
		// If it decodes, invariants must still hold (validation may accept
		// some bit flips that keep monotonicity).
		if got.cum[len(got.cum)-1] != 1 {
			t.Error("accepted CDF not reaching 1")
		}
	}
	// Truncations.
	for _, cut := range []int{2, 10, len(b) - 4} {
		if _, err := ReadDiscrete(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
