package stats

import (
	"errors"
	"math"
	"math/rand/v2"
)

// PowerLaw is a discrete power-law distribution p(x) ∝ x^-alpha for
// x >= Xmin, the degree law that scale-free generators target:
// P(k) ~ k^-alpha with alpha > 1.
type PowerLaw struct {
	Alpha float64
	Xmin  int64
}

// FitPowerLaw estimates the power-law exponent of samples >= xmin by the
// discrete maximum-likelihood approximation of Clauset, Shalizi & Newman:
//
//	alpha ≈ 1 + n / sum_i ln(x_i / (xmin - 0.5))
//
// Samples below xmin are ignored. It returns an error when fewer than two
// samples are usable.
func FitPowerLaw(samples []int64, xmin int64) (*PowerLaw, error) {
	if xmin < 1 {
		return nil, errors.New("stats: xmin must be >= 1")
	}
	var n int
	var logSum float64
	den := float64(xmin) - 0.5
	for _, x := range samples {
		if x >= xmin {
			n++
			logSum += math.Log(float64(x) / den)
		}
	}
	if n < 2 || logSum <= 0 {
		return nil, errors.New("stats: not enough samples above xmin for power-law fit")
	}
	return &PowerLaw{Alpha: 1 + float64(n)/logSum, Xmin: xmin}, nil
}

// Sample draws one value by inverting the continuous approximation of the
// power-law CDF and rounding down, a standard generator for discrete
// power-law variates.
func (p *PowerLaw) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	// Continuous inverse: x = xmin * (1-u)^(-1/(alpha-1)), floored.
	x := (float64(p.Xmin) - 0.5) * math.Pow(1-u, -1/(p.Alpha-1))
	v := int64(math.Floor(x + 0.5))
	if v < p.Xmin {
		v = p.Xmin
	}
	return v
}

// CCDF returns the complementary CDF P[X >= x] under the continuous
// approximation, for x >= Xmin.
func (p *PowerLaw) CCDF(x int64) float64 {
	if x <= p.Xmin {
		return 1
	}
	return math.Pow(float64(x)/float64(p.Xmin), -(p.Alpha - 1))
}
