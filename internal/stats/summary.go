package stats

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// SummarizeInt is Summarize over integer samples.
func SummarizeInt(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// ShannonEntropy returns the entropy (bits) of the empirical distribution
// of xs — the Variety metric of the four-V benchmark frame: how diverse the
// generated attribute values are compared to the seed's.
func ShannonEntropy(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	counts := make(map[int64]int64, 64)
	for _, x := range xs {
		counts[x]++
	}
	n := float64(len(xs))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// PearsonCorrelation returns the sample correlation coefficient of two
// equal-length vectors, used to verify that the conditional attribute model
// preserves cross-attribute correlation (e.g. bytes vs packets).
func PearsonCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	sa, sb := Summarize(a), Summarize(b)
	if sa.Std == 0 || sb.Std == 0 {
		return math.NaN()
	}
	var cov float64
	for i := range a {
		cov += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	cov /= float64(len(a) - 1)
	return cov / (sa.Std * sb.Std)
}
