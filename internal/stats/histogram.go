package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// HistBin is one bin of a histogram: the value range [Lo, Hi) and the
// fraction of mass falling in it.
type HistBin struct {
	Lo, Hi int64
	Count  int64
	P      float64
}

// LogHistogram bins positive values into logarithmically spaced bins with
// the given number of bins per decade. It is the binning used to render the
// degree-distribution comparison (Figure 5) on log-log axes. Non-positive
// values are dropped.
func LogHistogram(values []int64, binsPerDecade int) []HistBin {
	if binsPerDecade <= 0 {
		binsPerDecade = 10
	}
	var maxV int64
	var n int64
	for _, v := range values {
		if v > 0 {
			n++
			if v > maxV {
				maxV = v
			}
		}
	}
	if n == 0 {
		return nil
	}
	// Bin index of value v: floor(log10(v) * binsPerDecade).
	nBins := int(math.Floor(math.Log10(float64(maxV))*float64(binsPerDecade))) + 1
	counts := make([]int64, nBins)
	for _, v := range values {
		if v <= 0 {
			continue
		}
		i := int(math.Floor(math.Log10(float64(v)) * float64(binsPerDecade)))
		if i >= nBins {
			i = nBins - 1
		}
		counts[i]++
	}
	bins := make([]HistBin, 0, nBins)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := int64(math.Ceil(math.Pow(10, float64(i)/float64(binsPerDecade))))
		hi := int64(math.Ceil(math.Pow(10, float64(i+1)/float64(binsPerDecade))))
		bins = append(bins, HistBin{Lo: lo, Hi: hi, Count: c, P: float64(c) / float64(n)})
	}
	return bins
}

// DegreeCCDF returns (degree, P[D >= degree]) points for every distinct
// degree, the standard log-log degree plot series.
func DegreeCCDF(degrees []int64) (xs []int64, ps []float64) {
	pos := make([]int64, 0, len(degrees))
	for _, d := range degrees {
		if d > 0 {
			pos = append(pos, d)
		}
	}
	if len(pos) == 0 {
		return nil, nil
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	n := float64(len(pos))
	for i := 0; i < len(pos); {
		j := i
		for j < len(pos) && pos[j] == pos[i] {
			j++
		}
		xs = append(xs, pos[i])
		ps = append(ps, float64(len(pos)-i)/n)
		i = j
	}
	return xs, ps
}

// WriteSeries writes (x, y) pairs as tab-separated rows, the output format
// of the experiment harness.
func WriteSeries(w io.Writer, name string, xs []float64, ys []float64) error {
	if _, err := fmt.Fprintf(w, "# series: %s\n", name); err != nil {
		return err
	}
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%g\t%g\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}
