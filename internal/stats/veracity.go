package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Typed vector errors. Normalize (and therefore VeracityScore) reports
// ErrEmptyVector on a zero-length input and ErrZeroVector when every element
// is zero; EuclideanDistance reports ErrLengthMismatch instead of panicking.
// The eval grid runner matches on these with errors.Is to classify a
// malformed cell without crashing the whole run.
var (
	ErrEmptyVector    = errors.New("stats: empty vector")
	ErrZeroVector     = errors.New("stats: all-zero vector")
	ErrLengthMismatch = errors.New("stats: vector length mismatch")
)

// VeracityScore computes the veracity of a synthetic dataset with respect to
// its seed: the average Euclidean distance of their normalized distributions
// (Section V-A of the paper). A smaller score means higher similarity.
//
// Both inputs are per-vertex metric vectors (degrees or PageRank values).
// Each vector is normalized by its own sum, sorted descending (aligning
// vertices by rank, since vertex identities do not correspond across graphs),
// the shorter vector is zero-padded to the longer one's length L, and the
// score is the Euclidean distance divided by L:
//
//	score = sqrt(sum_i (a_i - b_i)^2) / L
//
// This definition reproduces the paper's observed behaviour: scores shrink as
// the synthetic graph grows (its normalized values shrink roughly as 1/|V'|
// while L grows), and PageRank scores are many orders of magnitude below
// degree scores.
func VeracityScore(seed, synthetic []float64) (float64, error) {
	a, err := Normalize(seed)
	if err != nil {
		return 0, err
	}
	b, err := Normalize(synthetic)
	if err != nil {
		return 0, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(a)))
	sort.Sort(sort.Reverse(sort.Float64Slice(b)))
	l := len(a)
	if len(b) > l {
		l = len(b)
	}
	var sum float64
	for i := 0; i < l; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := av - bv
		sum += d * d
	}
	return math.Sqrt(sum) / float64(l), nil
}

// VeracityScoreInt is VeracityScore over integer metric vectors (degrees).
func VeracityScoreInt(seed, synthetic []int64) (float64, error) {
	a := make([]float64, len(seed))
	for i, v := range seed {
		a[i] = float64(v)
	}
	b := make([]float64, len(synthetic))
	for i, v := range synthetic {
		b[i] = float64(v)
	}
	return VeracityScore(a, b)
}

// EuclideanDistance returns the plain Euclidean distance between two equal-
// length vectors. It is the building block of the veracity score. Unequal
// lengths report ErrLengthMismatch (it used to panic, which let one
// malformed grid cell take down an entire evaluation run).
func EuclideanDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d elements", ErrLengthMismatch, len(a), len(b))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// KSDistance returns the Kolmogorov-Smirnov statistic between the empirical
// CDFs of two samples: the maximum absolute difference between their CDFs.
// Used by tests to check that generated attribute distributions track the
// seed distributions.
func KSDistance(a, b []int64) float64 {
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	var i, j int
	var maxD float64
	for i < len(as) && j < len(bs) {
		var x int64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
