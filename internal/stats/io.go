package stats

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary serialization of Discrete distributions, used to persist seed
// analyses so the generation stage can run without re-analyzing the trace.
//
//	count   uint32 (number of distinct values)
//	mean    float64
//	values  count * int64
//	cum     count * float64
//	pmf     count * float64 (stored exactly so the rebuilt alias tables
//	        sample bit-identically to the original)

// WriteTo serializes the distribution. It implements io.WriterTo.
func (d *Discrete) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		return nil
	}
	if err := write(uint32(len(d.values))); err != nil {
		return n, err
	}
	if err := write(d.mean); err != nil {
		return n, err
	}
	if err := write(d.values); err != nil {
		return n, err
	}
	if err := write(d.cum); err != nil {
		return n, err
	}
	if err := write(d.pmf()); err != nil {
		return n, err
	}
	n = int64(4 + 8 + 24*len(d.values))
	return n, bw.Flush()
}

// ReadDiscrete deserializes a distribution written by WriteTo and rebuilds
// its sampling tables. The reconstructed distribution samples identically
// (same values, same probabilities, same alias layout).
func ReadDiscrete(r io.Reader) (*Discrete, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("stats: reading distribution size: %w", err)
	}
	if count == 0 {
		return nil, errors.New("stats: empty serialized distribution")
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("stats: implausible distribution size %d", count)
	}
	d := &Discrete{
		values: make([]int64, count),
		cum:    make([]float64, count),
	}
	if err := binary.Read(r, binary.LittleEndian, &d.mean); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, d.values); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, d.cum); err != nil {
		return nil, err
	}
	// Validate monotonicity and support ordering before trusting the data.
	prevCum := 0.0
	for i := range d.values {
		if i > 0 && d.values[i] <= d.values[i-1] {
			return nil, errors.New("stats: serialized support not ascending")
		}
		if d.cum[i] < prevCum || d.cum[i] > 1+1e-9 || math.IsNaN(d.cum[i]) {
			return nil, errors.New("stats: serialized CDF not monotone in [0,1]")
		}
		prevCum = d.cum[i]
	}
	if math.Abs(d.cum[count-1]-1) > 1e-9 {
		return nil, errors.New("stats: serialized CDF does not reach 1")
	}
	d.cum[count-1] = 1
	pmf := make([]float64, count)
	if err := binary.Read(r, binary.LittleEndian, pmf); err != nil {
		return nil, err
	}
	var sum float64
	for _, p := range pmf {
		if p < 0 || math.IsNaN(p) {
			return nil, errors.New("stats: serialized pmf invalid")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, errors.New("stats: serialized pmf does not sum to 1")
	}
	d.buildAliasFromPMF(pmf)
	return d, nil
}
