package ids

import (
	"errors"
	"sort"
	"testing"

	"csb/internal/netflow"
)

// streamScan builds host-scan probes with start times spread over a span.
func streamScan(victim uint32, n int, startMicros, spanMicros int64) []netflow.Flow {
	flows := hostScanFlows(victim, n)
	for i := range flows {
		flows[i].StartMicros = startMicros + int64(i)*spanMicros/int64(n)
		flows[i].EndMicros = flows[i].StartMicros + 1000
	}
	return flows
}

func collectAlerts(t *testing.T, window int64, flows []netflow.Flow) []Alert {
	t.Helper()
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	var alerts []Alert
	s := NewStreamDetector(DefaultThresholds(), window, func(a Alert) { alerts = append(alerts, a) })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	return alerts
}

func TestStreamDetectsAttackInWindow(t *testing.T) {
	// 300 probes within one minute: one alert at window close.
	flows := streamScan(0x0a000001, 300, 0, 30*1e6)
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 1 || alerts[0].Type != AttackHostScan || alerts[0].IP != 0x0a000001 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestStreamQuietTrafficNoAlerts(t *testing.T) {
	flows := backgroundFlows(t, 30, 300, 9)
	tr := TrainThresholds(flows, 0.99, 2)
	var alerts []Alert
	s := NewStreamDetector(tr, 60*1e6, func(a Alert) { alerts = append(alerts, a) })
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	if len(alerts) > 2 {
		t.Fatalf("%d alerts on clean traffic", len(alerts))
	}
}

func TestStreamSuppressesContinuation(t *testing.T) {
	// An attack spanning 3 consecutive windows alerts once.
	var flows []netflow.Flow
	for w := int64(0); w < 3; w++ {
		flows = append(flows, streamScan(0x0a000002, 300, w*60*1e6, 50*1e6)...)
	}
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 1 {
		t.Fatalf("continuation not suppressed: %d alerts", len(alerts))
	}
}

func TestStreamReAlertsAfterGap(t *testing.T) {
	// Attack in window 0, silence in windows 1-2, attack again in window 3:
	// two alerts.
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000003, 300, 0, 50*1e6)...)
	// One benign keep-alive flow per quiet window so windows advance.
	flows = append(flows, netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 70 * 1e6, EndMicros: 70*1e6 + 1000, OutPkts: 1, OutBytes: 100})
	flows = append(flows, netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 130 * 1e6, EndMicros: 130*1e6 + 1000, OutPkts: 1, OutBytes: 100})
	flows = append(flows, streamScan(0x0a000003, 300, 3*60*1e6, 50*1e6)...)
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 2 {
		t.Fatalf("gap re-alert failed: %d alerts (%v)", len(alerts), alerts)
	}
}

func TestStreamAttackBelowWindowThresholdSplit(t *testing.T) {
	// The same probe volume diluted over many windows falls below the
	// per-window flow threshold: the streaming detector's window length is
	// a sensitivity knob.
	flows := streamScan(0x0a000004, 300, 0, 50*60*1e6) // 6 probes per minute
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 0 {
		t.Fatalf("slow scan unexpectedly detected: %v", alerts)
	}
	// A longer window catches it again.
	alerts = collectAlerts(t, 60*60*1e6, flows)
	if len(alerts) != 1 {
		t.Fatalf("hour window missed the scan: %v", alerts)
	}
}

func TestStreamFlushIdempotentAndPending(t *testing.T) {
	var alerts []Alert
	s := NewStreamDetector(DefaultThresholds(), 0, func(a Alert) { alerts = append(alerts, a) })
	if s.window != DefaultStreamWindowMicros {
		t.Fatalf("default window = %d", s.window)
	}
	for _, f := range streamScan(0x0a000005, 300, 0, 30*1e6) {
		s.Add(f)
	}
	if s.Pending() != 300 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Flush()
	s.Flush() // second flush is a no-op
	if s.Pending() != 0 {
		t.Fatalf("pending after flush = %d", s.Pending())
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
}

func TestStreamMatchesOfflineOnSingleWindow(t *testing.T) {
	// With one giant window, streaming must reproduce offline detection.
	flows := backgroundFlows(t, 30, 300, 10)
	flows = append(flows, streamScan(0x0a000006, 1500, flows[0].StartMicros, 1e6)...)
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	tr := TrainThresholds(backgroundFlows(t, 30, 300, 11), 0.99, 2)

	offline := NewDetector(tr).Detect(flows)
	var online []Alert
	s := NewStreamDetector(tr, 1<<60, func(a Alert) { online = append(online, a) })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	if len(online) != len(offline) {
		t.Fatalf("online %d alerts vs offline %d", len(online), len(offline))
	}
	for i := range online {
		if online[i].Type != offline[i].Type || online[i].IP != offline[i].IP {
			t.Fatalf("alert %d differs: %v vs %v", i, online[i], offline[i])
		}
	}
}

// A flow starting exactly at a window boundary belongs to the next window:
// the window is [start, start+window), so the boundary flow closes the
// current window first and must not inflate its pattern counts.
func TestStreamWindowBoundaryFlow(t *testing.T) {
	const window = 60 * 1e6
	s := NewStreamDetector(DefaultThresholds(), window, func(Alert) {})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 0, EndMicros: 1000, OutPkts: 1})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: window - 1, EndMicros: window, OutPkts: 1})
	if s.Pending() != 2 || s.windowIdx != 0 {
		t.Fatalf("pre-boundary: pending=%d windowIdx=%d", s.Pending(), s.windowIdx)
	}
	// Exactly on the boundary: closes window 0, lands alone in window 1.
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: window, EndMicros: window + 1000, OutPkts: 1})
	if s.Pending() != 1 || s.windowIdx != 1 || s.start != window {
		t.Fatalf("boundary flow misplaced: pending=%d windowIdx=%d start=%d",
			s.Pending(), s.windowIdx, s.start)
	}
}

// An attack whose final probe lands exactly on the window boundary keeps
// that probe out of the first window: 299 probes inside plus 1 on the edge
// must behave like 299, not 300.
func TestStreamWindowBoundaryExcludesEdgeProbe(t *testing.T) {
	const window = 60 * 1e6
	victim := uint32(0x0a000007)
	flows := hostScanFlows(victim, 300)
	for i := range flows {
		flows[i].StartMicros = int64(i) * window / 300
		flows[i].EndMicros = flows[i].StartMicros + 1000
	}
	flows[299].StartMicros = window // exactly on the edge
	flows[299].EndMicros = window + 1000

	alerts := collectAlerts(t, window, flows)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts (%v), want 1", len(alerts), alerts)
	}
	// The alert's pattern is the proof: the closed window aggregated 299
	// probes, not 300 — the boundary probe was held for the next window.
	if got := alerts[0].Pattern.NFlows; got != 299 {
		t.Fatalf("window 0 aggregated %d flows, want 299 (edge probe leaked in)", got)
	}
}

// Duplicate-alert suppression must not bridge an empty intervening window:
// attack in window 0, nothing at all in window 1, attack again in window 2
// is a pause-and-resume and re-alerts.
func TestStreamReAlertsAcrossEmptyWindow(t *testing.T) {
	const window = 60 * 1e6
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000008, 300, 0, 50*1e6)...)
	flows = append(flows, streamScan(0x0a000008, 300, 2*window, 50*1e6)...)
	alerts := collectAlerts(t, window, flows)
	if len(alerts) != 2 {
		t.Fatalf("empty window bridged suppression: %d alerts (%v)", len(alerts), alerts)
	}
	// Control: the same resumed attack in the adjacent window is suppressed.
	flows = flows[:0]
	flows = append(flows, streamScan(0x0a000008, 300, 0, 50*1e6)...)
	flows = append(flows, streamScan(0x0a000008, 300, window, 50*1e6)...)
	if alerts := collectAlerts(t, window, flows); len(alerts) != 1 {
		t.Fatalf("adjacent continuation not suppressed: %d alerts", len(alerts))
	}
}

// With a reorder horizon, jittered arrival order produces exactly the alerts
// of in-order arrival.
func TestStreamReorderWithinHorizon(t *testing.T) {
	const window = 60 * 1e6
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000009, 300, 0, 50*1e6)...)
	flows = append(flows, streamScan(0x0a000009, 300, 2*window, 50*1e6)...)
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	inOrder := collectAlerts(t, window, flows)

	// Jitter arrival: swap neighbors several positions apart (well inside a
	// 5s horizon given probes are ~167ms apart).
	jittered := append([]netflow.Flow(nil), flows...)
	for i := 0; i+7 < len(jittered); i += 8 {
		jittered[i], jittered[i+7] = jittered[i+7], jittered[i]
	}
	var alerts []Alert
	s := NewStreamDetector(DefaultThresholds(), window, func(a Alert) { alerts = append(alerts, a) })
	s.SetReorderHorizon(5 * 1e6)
	for _, f := range jittered {
		if err := s.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s.Flush()
	if s.LateFlows() != 0 {
		t.Fatalf("%d flows dropped as late", s.LateFlows())
	}
	if len(alerts) != len(inOrder) {
		t.Fatalf("jittered: %d alerts, in-order: %d", len(alerts), len(inOrder))
	}
	for i := range alerts {
		if alerts[i].Type != inOrder[i].Type || alerts[i].IP != inOrder[i].IP {
			t.Fatalf("alert %d differs: %v vs %v", i, alerts[i], inOrder[i])
		}
	}
}

// A flow older than the current window (no horizon) or older than the
// horizon is rejected with a typed error and counted, leaving window
// accounting untouched.
func TestStreamLateFlowTypedError(t *testing.T) {
	s := NewStreamDetector(DefaultThresholds(), 60*1e6, func(Alert) {})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 120 * 1e6, EndMicros: 120*1e6 + 1, OutPkts: 1})
	err := s.Add(netflow.Flow{SrcIP: 3, DstIP: 4, StartMicros: 10 * 1e6, EndMicros: 10*1e6 + 1, OutPkts: 1})
	var late *LateFlowError
	if !errors.As(err, &late) {
		t.Fatalf("err = %v, want *LateFlowError", err)
	}
	if late.StartMicros != 10*1e6 {
		t.Fatalf("late = %+v", late)
	}
	if s.LateFlows() != 1 || s.Pending() != 1 {
		t.Fatalf("late=%d pending=%d", s.LateFlows(), s.Pending())
	}

	// With a horizon: in-horizon reordering is absorbed, beyond-horizon is
	// the same typed error.
	s = NewStreamDetector(DefaultThresholds(), 1e6, func(Alert) {})
	s.SetReorderHorizon(10 * 1e6)
	for _, start := range []int64{0, 30 * 1e6, 5 * 1e6, 50 * 1e6} {
		if err := s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: start, EndMicros: start + 1, OutPkts: 1}); err != nil {
			t.Fatalf("Add(%d): %v", start, err)
		}
	}
	err = s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 25 * 1e6, EndMicros: 25*1e6 + 1, OutPkts: 1})
	if !errors.As(err, &late) {
		t.Fatalf("beyond-horizon err = %v, want *LateFlowError", err)
	}
	if s.LateFlows() != 1 {
		t.Fatalf("late = %d", s.LateFlows())
	}
}

// Regression: a large time gap between flows must not make Add iterate one
// empty window at a time. A two-year quiet period at a one-minute cadence is
// ~10^6 windows; the fast-forward makes it O(1). The test both finishes
// quickly and checks the semantics across the jump: the gap breaks
// suppression, so the resumed attack re-alerts, and window alignment is
// preserved.
func TestStreamSparseTraceFastForward(t *testing.T) {
	const window = 60 * 1e6
	const gap int64 = 2 * 365 * 24 * 3600 * 1e6 // two years in microseconds
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000004, 300, 0, 50*1e6)...)
	flows = append(flows, streamScan(0x0a000004, 300, gap, 50*1e6)...)
	alerts := collectAlerts(t, window, flows)
	if len(alerts) != 2 {
		t.Fatalf("sparse trace: %d alerts, want 2 (gap breaks suppression)", len(alerts))
	}

	// White-box: after the jump the window origin must stay aligned to the
	// first flow's start plus a whole number of windows.
	s := NewStreamDetector(DefaultThresholds(), window, func(Alert) {})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 7, EndMicros: 8, OutPkts: 1})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 7 + gap, EndMicros: 8 + gap, OutPkts: 1})
	if (s.start-7)%window != 0 {
		t.Fatalf("window origin %d not aligned to first flow + k*window", s.start)
	}
	if s.start > 7+gap || 7+gap >= s.start+window {
		t.Fatalf("flow at %d outside current window [%d, %d)", 7+gap, s.start, s.start+window)
	}
	if want := (s.start - 7) / window; s.windowIdx != want {
		t.Fatalf("windowIdx = %d, want %d", s.windowIdx, want)
	}
}
