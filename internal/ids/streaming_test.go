package ids

import (
	"sort"
	"testing"

	"csb/internal/netflow"
)

// streamScan builds host-scan probes with start times spread over a span.
func streamScan(victim uint32, n int, startMicros, spanMicros int64) []netflow.Flow {
	flows := hostScanFlows(victim, n)
	for i := range flows {
		flows[i].StartMicros = startMicros + int64(i)*spanMicros/int64(n)
		flows[i].EndMicros = flows[i].StartMicros + 1000
	}
	return flows
}

func collectAlerts(t *testing.T, window int64, flows []netflow.Flow) []Alert {
	t.Helper()
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	var alerts []Alert
	s := NewStreamDetector(DefaultThresholds(), window, func(a Alert) { alerts = append(alerts, a) })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	return alerts
}

func TestStreamDetectsAttackInWindow(t *testing.T) {
	// 300 probes within one minute: one alert at window close.
	flows := streamScan(0x0a000001, 300, 0, 30*1e6)
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 1 || alerts[0].Type != AttackHostScan || alerts[0].IP != 0x0a000001 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestStreamQuietTrafficNoAlerts(t *testing.T) {
	flows := backgroundFlows(t, 30, 300, 9)
	tr := TrainThresholds(flows, 0.99, 2)
	var alerts []Alert
	s := NewStreamDetector(tr, 60*1e6, func(a Alert) { alerts = append(alerts, a) })
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	if len(alerts) > 2 {
		t.Fatalf("%d alerts on clean traffic", len(alerts))
	}
}

func TestStreamSuppressesContinuation(t *testing.T) {
	// An attack spanning 3 consecutive windows alerts once.
	var flows []netflow.Flow
	for w := int64(0); w < 3; w++ {
		flows = append(flows, streamScan(0x0a000002, 300, w*60*1e6, 50*1e6)...)
	}
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 1 {
		t.Fatalf("continuation not suppressed: %d alerts", len(alerts))
	}
}

func TestStreamReAlertsAfterGap(t *testing.T) {
	// Attack in window 0, silence in windows 1-2, attack again in window 3:
	// two alerts.
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000003, 300, 0, 50*1e6)...)
	// One benign keep-alive flow per quiet window so windows advance.
	flows = append(flows, netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 70 * 1e6, EndMicros: 70*1e6 + 1000, OutPkts: 1, OutBytes: 100})
	flows = append(flows, netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 130 * 1e6, EndMicros: 130*1e6 + 1000, OutPkts: 1, OutBytes: 100})
	flows = append(flows, streamScan(0x0a000003, 300, 3*60*1e6, 50*1e6)...)
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 2 {
		t.Fatalf("gap re-alert failed: %d alerts (%v)", len(alerts), alerts)
	}
}

func TestStreamAttackBelowWindowThresholdSplit(t *testing.T) {
	// The same probe volume diluted over many windows falls below the
	// per-window flow threshold: the streaming detector's window length is
	// a sensitivity knob.
	flows := streamScan(0x0a000004, 300, 0, 50*60*1e6) // 6 probes per minute
	alerts := collectAlerts(t, 60*1e6, flows)
	if len(alerts) != 0 {
		t.Fatalf("slow scan unexpectedly detected: %v", alerts)
	}
	// A longer window catches it again.
	alerts = collectAlerts(t, 60*60*1e6, flows)
	if len(alerts) != 1 {
		t.Fatalf("hour window missed the scan: %v", alerts)
	}
}

func TestStreamFlushIdempotentAndPending(t *testing.T) {
	var alerts []Alert
	s := NewStreamDetector(DefaultThresholds(), 0, func(a Alert) { alerts = append(alerts, a) })
	if s.window != DefaultStreamWindowMicros {
		t.Fatalf("default window = %d", s.window)
	}
	for _, f := range streamScan(0x0a000005, 300, 0, 30*1e6) {
		s.Add(f)
	}
	if s.Pending() != 300 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Flush()
	s.Flush() // second flush is a no-op
	if s.Pending() != 0 {
		t.Fatalf("pending after flush = %d", s.Pending())
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
}

func TestStreamMatchesOfflineOnSingleWindow(t *testing.T) {
	// With one giant window, streaming must reproduce offline detection.
	flows := backgroundFlows(t, 30, 300, 10)
	flows = append(flows, streamScan(0x0a000006, 1500, flows[0].StartMicros, 1e6)...)
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	tr := TrainThresholds(backgroundFlows(t, 30, 300, 11), 0.99, 2)

	offline := NewDetector(tr).Detect(flows)
	var online []Alert
	s := NewStreamDetector(tr, 1<<60, func(a Alert) { online = append(online, a) })
	for _, f := range flows {
		s.Add(f)
	}
	s.Flush()
	if len(online) != len(offline) {
		t.Fatalf("online %d alerts vs offline %d", len(online), len(offline))
	}
	for i := range online {
		if online[i].Type != offline[i].Type || online[i].IP != offline[i].IP {
			t.Fatalf("alert %d differs: %v vs %v", i, online[i], offline[i])
		}
	}
}

// Regression: a large time gap between flows must not make Add iterate one
// empty window at a time. A two-year quiet period at a one-minute cadence is
// ~10^6 windows; the fast-forward makes it O(1). The test both finishes
// quickly and checks the semantics across the jump: the gap breaks
// suppression, so the resumed attack re-alerts, and window alignment is
// preserved.
func TestStreamSparseTraceFastForward(t *testing.T) {
	const window = 60 * 1e6
	const gap int64 = 2 * 365 * 24 * 3600 * 1e6 // two years in microseconds
	var flows []netflow.Flow
	flows = append(flows, streamScan(0x0a000004, 300, 0, 50*1e6)...)
	flows = append(flows, streamScan(0x0a000004, 300, gap, 50*1e6)...)
	alerts := collectAlerts(t, window, flows)
	if len(alerts) != 2 {
		t.Fatalf("sparse trace: %d alerts, want 2 (gap breaks suppression)", len(alerts))
	}

	// White-box: after the jump the window origin must stay aligned to the
	// first flow's start plus a whole number of windows.
	s := NewStreamDetector(DefaultThresholds(), window, func(Alert) {})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 7, EndMicros: 8, OutPkts: 1})
	s.Add(netflow.Flow{SrcIP: 1, DstIP: 2, StartMicros: 7 + gap, EndMicros: 8 + gap, OutPkts: 1})
	if (s.start-7)%window != 0 {
		t.Fatalf("window origin %d not aligned to first flow + k*window", s.start)
	}
	if s.start > 7+gap || 7+gap >= s.start+window {
		t.Fatalf("flow at %d outside current window [%d, %d)", 7+gap, s.start, s.start+window)
	}
	if want := (s.start - 7) / window; s.windowIdx != want {
		t.Fatalf("windowIdx = %d, want %d", s.windowIdx, want)
	}
}
