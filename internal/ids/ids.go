// Package ids implements the paper's Netflow-based anomaly-detection
// approach (Section IV): network traffic is aggregated into traffic-pattern
// records keyed by destination IP and by source IP, the Table I parameters
// are computed per pattern, and the Figure 4 decision flow classifies
// patterns into host scanning, network scanning, TCP SYN flooding, generic
// ICMP/UDP/TCP flooding and DDoS.
//
// As the paper notes, the thresholds are network specific: they can be
// trained from attack-free traffic (TrainThresholds) or tuned with an
// optimizer such as PSO (csb/internal/pso).
package ids

import (
	"fmt"
	"sort"

	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

// AttackType classifies a detected anomaly.
type AttackType uint8

// Attack classes of the Figure 4 flow chart.
const (
	AttackNone        AttackType = iota
	AttackHostScan               // many ports probed on one host
	AttackNetworkScan            // one port probed across many hosts
	AttackSYNFlood               // TCP SYN flood on one service
	AttackFlood                  // ICMP/UDP/TCP bandwidth flood
	AttackDDoS                   // flood from many distinct sources
)

// String names the attack type.
func (a AttackType) String() string {
	switch a {
	case AttackHostScan:
		return "host-scan"
	case AttackNetworkScan:
		return "network-scan"
	case AttackSYNFlood:
		return "syn-flood"
	case AttackFlood:
		return "flood"
	case AttackDDoS:
		return "ddos"
	default:
		return "none"
	}
}

// Pattern is one traffic-pattern record: the Table I parameters for a single
// detection IP, aggregated over all flows sharing that destination (ByDst)
// or source (!ByDst) address.
type Pattern struct {
	IP    uint32 // the detection IP
	ByDst bool   // destination-based (true) or source-based pattern

	NFlows        int64 // N(flow)
	DistinctPeers int64 // N(S_IP) when ByDst, N(D_IP) otherwise
	DistinctPorts int64 // N(D_port): distinct destination ports
	SumFlowSize   int64 // Sum(flowSize), bytes
	SumPackets    int64 // Sum(nPacket)
	SYN           int64 // N(SYN)
	ACK           int64 // N(ACK)
}

// AvgFlowSize returns Avg(flowSize).
func (p *Pattern) AvgFlowSize() float64 {
	if p.NFlows == 0 {
		return 0
	}
	return float64(p.SumFlowSize) / float64(p.NFlows)
}

// AvgPackets returns Avg(nPacket).
func (p *Pattern) AvgPackets() float64 {
	if p.NFlows == 0 {
		return 0
	}
	return float64(p.SumPackets) / float64(p.NFlows)
}

// AckSynRatio returns N(ACK)/N(SYN), or +1 when no SYNs were seen (a neutral
// value: no handshake activity to judge).
func (p *Pattern) AckSynRatio() float64 {
	if p.SYN == 0 {
		return 1
	}
	return float64(p.ACK) / float64(p.SYN)
}

// AggregatePatterns builds the destination-based and source-based pattern
// tables from a flow set, the aggregation the property-graph structure makes
// efficient (grouping edges by head or tail vertex).
func AggregatePatterns(flows []netflow.Flow) (byDst, bySrc []Pattern) {
	type agg struct {
		p     Pattern
		peers map[uint32]struct{}
		ports map[uint16]struct{}
	}
	dst := make(map[uint32]*agg)
	src := make(map[uint32]*agg)
	get := func(m map[uint32]*agg, ip uint32, byDst bool) *agg {
		a := m[ip]
		if a == nil {
			a = &agg{p: Pattern{IP: ip, ByDst: byDst},
				peers: make(map[uint32]struct{}), ports: make(map[uint16]struct{})}
			m[ip] = a
		}
		return a
	}
	for i := range flows {
		f := &flows[i]
		d := get(dst, f.DstIP, true)
		d.p.NFlows++
		d.p.SumFlowSize += f.TotalBytes()
		d.p.SumPackets += f.TotalPkts()
		d.p.SYN += f.SYNCount
		d.p.ACK += f.ACKCount
		d.peers[f.SrcIP] = struct{}{}
		d.ports[f.DstPort] = struct{}{}

		s := get(src, f.SrcIP, false)
		s.p.NFlows++
		s.p.SumFlowSize += f.TotalBytes()
		s.p.SumPackets += f.TotalPkts()
		s.p.SYN += f.SYNCount
		s.p.ACK += f.ACKCount
		s.peers[f.DstIP] = struct{}{}
		s.ports[f.DstPort] = struct{}{}
	}
	finish := func(m map[uint32]*agg) []Pattern {
		out := make([]Pattern, 0, len(m))
		for _, a := range m {
			a.p.DistinctPeers = int64(len(a.peers))
			a.p.DistinctPorts = int64(len(a.ports))
			out = append(out, a.p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
		return out
	}
	return finish(dst), finish(src)
}

// Thresholds are the Table I threshold parameters. All are float64 so an
// optimizer can tune them continuously.
type Thresholds struct {
	DIPT float64 // dip-T: max normal distinct destination IPs per source
	SIPT float64 // sip-T: max normal distinct source IPs per destination
	DPLT float64 // dp-LT: low destination-port count bound
	DPHT float64 // dp-HT: high destination-port count bound
	NFT  float64 // nf-T: max normal flow count per detection IP
	FSLT float64 // fs-LT: low average flow size bound (bytes)
	FSHT float64 // fs-HT: high total flow size bound (bytes)
	NPLT float64 // np-LT: low average packet count bound
	NPHT float64 // np-HT: high total packet count bound
	SAT  float64 // sa-T: min normal ACK/SYN ratio
}

// DefaultThresholds returns a hand-set baseline suitable for the synthetic
// traces of this repository; real deployments should train or tune.
func DefaultThresholds() Thresholds {
	return Thresholds{
		DIPT: 15,
		SIPT: 15,
		DPLT: 8,
		DPHT: 20,
		NFT:  40,
		FSLT: 200,
		FSHT: 2 << 20, // 2 MiB aggregate
		NPLT: 4,
		NPHT: 3000,
		SAT:  0.25,
	}
}

// Alert is one detection: the attack class, the detection IP the pattern was
// keyed on, and the triggering pattern for forensics.
type Alert struct {
	Type    AttackType
	IP      uint32 // victim for destination-based alerts, attacker for source-based
	ByDst   bool
	Pattern Pattern
}

// String renders the alert.
func (a Alert) String() string {
	side := "src"
	if a.ByDst {
		side = "dst"
	}
	return fmt.Sprintf("%s %s=%s flows=%d peers=%d ports=%d",
		a.Type, side, pcap.FormatIPv4(a.IP), a.Pattern.NFlows, a.Pattern.DistinctPeers, a.Pattern.DistinctPorts)
}

// Detector runs the Figure 4 decision flow.
type Detector struct {
	T Thresholds
}

// NewDetector returns a Detector with the given thresholds.
func NewDetector(t Thresholds) *Detector { return &Detector{T: t} }

// Detect classifies the flow set and returns all alerts, destination-based
// first, sorted by IP.
func (d *Detector) Detect(flows []netflow.Flow) []Alert {
	byDst, bySrc := AggregatePatterns(flows)
	var alerts []Alert
	for i := range byDst {
		if a, ok := d.classifyDst(&byDst[i]); ok {
			alerts = append(alerts, a)
		}
	}
	for i := range bySrc {
		if a, ok := d.classifySrc(&bySrc[i]); ok {
			alerts = append(alerts, a)
		}
	}
	return alerts
}

// DetectGraph runs detection over a property graph by converting its edges
// to flow records, which is how the benchmark exercises synthetic datasets.
func (d *Detector) DetectGraph(g *graph.Graph) []Alert {
	return d.Detect(netflow.FlowsFromGraph(g))
}

// classifyDst implements the destination-based half of Figure 4.
func (d *Detector) classifyDst(p *Pattern) (Alert, bool) {
	t := &d.T
	manySmallFlows := float64(p.NFlows) > t.NFT &&
		p.AvgFlowSize() < t.FSLT && p.AvgPackets() < t.NPLT
	if manySmallFlows {
		// Many small flows at one host: scanning or SYN flooding.
		if float64(p.DistinctPorts) > t.DPHT {
			return Alert{Type: AttackHostScan, IP: p.IP, ByDst: true, Pattern: *p}, true
		}
		if p.AckSynRatio() < t.SAT && float64(p.DistinctPorts) < t.DPLT {
			return Alert{Type: AttackSYNFlood, IP: p.IP, ByDst: true, Pattern: *p}, true
		}
	}
	// Bandwidth exhaustion: large total bytes and packets.
	if float64(p.SumFlowSize) > t.FSHT && float64(p.SumPackets) > t.NPHT {
		if float64(p.DistinctPeers) > t.SIPT {
			return Alert{Type: AttackDDoS, IP: p.IP, ByDst: true, Pattern: *p}, true
		}
		return Alert{Type: AttackFlood, IP: p.IP, ByDst: true, Pattern: *p}, true
	}
	return Alert{}, false
}

// classifySrc implements the source-based half of Figure 4.
func (d *Detector) classifySrc(p *Pattern) (Alert, bool) {
	t := &d.T
	manySmallFlows := float64(p.NFlows) > t.NFT &&
		p.AvgFlowSize() < t.FSLT && p.AvgPackets() < t.NPLT
	if manySmallFlows && float64(p.DistinctPeers) > t.DIPT {
		// One source touching many hosts with small probes: network scan.
		return Alert{Type: AttackNetworkScan, IP: p.IP, ByDst: false, Pattern: *p}, true
	}
	return Alert{}, false
}

// TrainThresholds derives thresholds from attack-free traffic: each bound is
// placed at a quantile of the observed per-pattern statistic, scaled by
// margin (> 1 loosens). This realizes the paper's remark that thresholds are
// network driven and must be trained per target network.
func TrainThresholds(normal []netflow.Flow, quantile, margin float64) Thresholds {
	if quantile <= 0 || quantile > 1 {
		quantile = 0.99
	}
	if margin <= 0 {
		margin = 1.5
	}
	byDst, bySrc := AggregatePatterns(normal)
	qAt := func(vals []float64, p float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	q := func(vals []float64) float64 { return qAt(vals, quantile) }
	var nf, peersDst, peersSrc, ports, sumFS, sumNP, avgFS, avgNP, ratios []float64
	for i := range byDst {
		p := &byDst[i]
		nf = append(nf, float64(p.NFlows))
		peersDst = append(peersDst, float64(p.DistinctPeers))
		ports = append(ports, float64(p.DistinctPorts))
		sumFS = append(sumFS, float64(p.SumFlowSize))
		sumNP = append(sumNP, float64(p.SumPackets))
		avgFS = append(avgFS, p.AvgFlowSize())
		avgNP = append(avgNP, p.AvgPackets())
		if p.SYN > 0 {
			ratios = append(ratios, p.AckSynRatio())
		}
	}
	for i := range bySrc {
		peersSrc = append(peersSrc, float64(bySrc[i].DistinctPeers))
	}
	t := Thresholds{
		DIPT: q(peersSrc) * margin,
		SIPT: q(peersDst) * margin,
		// "Small number of destination ports" means small relative to a
		// typical host's port spread, which a popular server legitimately
		// grows to 10-20; anchor at twice the median plus one.
		DPLT: qAt(ports, 0.5)*margin + 1,
		DPHT: q(ports) * margin,
		NFT:  q(nf) * margin,
		FSLT: q(avgFS) / (4 * margin), // "small" bounds sit well below normal
		FSHT: q(sumFS) * margin,
		NPLT: q(avgNP) / (4 * margin),
		NPHT: q(sumNP) * margin,
		// Normal hosts complete handshakes, so their ACK/SYN ratio sits
		// well above 1; a flood victim's is buried toward zero. Anchor the
		// bound at half the lowest normal ratios.
		SAT: qAt(ratios, 0.05) / 2,
	}
	if t.SAT <= 0 {
		t.SAT = 0.25
	}
	return t
}
