package ids

import (
	"fmt"
	"sort"

	"csb/internal/netflow"
)

// StreamDetector is the on-line form of the anomaly detector — the paper's
// stated future work ("on-line intrusion detection with streaming data").
// Flows arrive in start-time order; they are aggregated into tumbling
// windows, and when a window closes its traffic patterns run through the
// same Figure 4 decision flow as the off-line detector. Consecutive
// duplicate alerts (same attack class and detection IP in back-to-back
// windows) are suppressed so a long-running attack raises one alert when it
// starts and a fresh one only if it pauses and resumes.
type StreamDetector struct {
	det    *Detector
	window int64 // window length, microseconds
	sink   func(Alert)

	start   int64 // current window start (0 before the first flow)
	started bool
	flows   []netflow.Flow

	// Reorder handling: flows are buffered in pending (sorted by start
	// time) until the high-water mark has moved horizon past them, then
	// released into the window logic in order. With horizon 0 every flow
	// is released immediately, and a flow older than the current window is
	// rejected with a LateFlowError instead of being silently folded into
	// the wrong window.
	horizon int64
	pending []netflow.Flow
	maxSeen int64
	late    int64

	// lastFired maps (IP, type, byDst) to the window index of the most
	// recent alert, for consecutive-window suppression.
	lastFired map[streamKey]int64
	windowIdx int64
}

// LateFlowError reports a flow that arrived too far out of order to place in
// any open window: its start time precedes the reorder horizon (or, with no
// horizon, the current window). The flow is counted (LateFlows) and skipped;
// the detector's window accounting is unaffected.
type LateFlowError struct {
	// StartMicros is the rejected flow's start time; Limit is the oldest
	// start time still placeable when it arrived.
	StartMicros int64
	Limit       int64
}

// Error describes the rejection.
func (e *LateFlowError) Error() string {
	return fmt.Sprintf("ids: flow at %dµs arrived %dµs past the reorder horizon",
		e.StartMicros, e.Limit-e.StartMicros)
}

type streamKey struct {
	ip    uint32
	typ   AttackType
	byDst bool
}

// DefaultStreamWindowMicros is one minute, a common flow-monitoring cadence.
const DefaultStreamWindowMicros = 60 * 1e6

// NewStreamDetector builds a streaming detector with the given thresholds
// and tumbling window length in microseconds (0 selects the default).
// Alerts are delivered synchronously to sink as windows close.
func NewStreamDetector(t Thresholds, windowMicros int64, sink func(Alert)) *StreamDetector {
	if windowMicros <= 0 {
		windowMicros = DefaultStreamWindowMicros
	}
	return &StreamDetector{
		det:       NewDetector(t),
		window:    windowMicros,
		sink:      sink,
		lastFired: make(map[streamKey]int64),
	}
}

// SetReorderHorizon makes Add tolerate out-of-order arrival within the given
// span: flows are held back (sorted) until the newest start time seen has
// moved horizonMicros past them, then released in order. Live transports
// reorder — a replay subscriber's frames are in order, but merged feeds or
// multi-exporter capture are not — and the window logic needs non-decreasing
// start times. Call before the first Add; 0 (the default) disables
// buffering.
func (s *StreamDetector) SetReorderHorizon(horizonMicros int64) {
	if horizonMicros < 0 {
		horizonMicros = 0
	}
	s.horizon = horizonMicros
}

// Add feeds one flow. With no reorder horizon, flows must arrive in
// non-decreasing StartMicros order (the order a flow exporter emits them); a
// flow older than the current window is rejected with a *LateFlowError —
// previously it was silently folded into the wrong window, corrupting that
// window's pattern accounting. With a horizon, arrival order may be off by
// up to the horizon; only flows older than that are rejected.
func (s *StreamDetector) Add(f netflow.Flow) error {
	if f.StartMicros > s.maxSeen {
		s.maxSeen = f.StartMicros
	}
	if s.horizon <= 0 {
		return s.ingest(f)
	}
	// Insert in start-time order; arrivals are mostly in order, so the
	// binary search almost always appends. Flows that fall behind even the
	// horizon surface as a LateFlowError out of ingest when released.
	i := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].StartMicros > f.StartMicros
	})
	s.pending = append(s.pending, netflow.Flow{})
	copy(s.pending[i+1:], s.pending[i:])
	s.pending[i] = f
	return s.release(s.maxSeen - s.horizon)
}

// release feeds every pending flow at or before the watermark into the
// window logic, in order.
func (s *StreamDetector) release(watermark int64) error {
	n := 0
	var err error
	for n < len(s.pending) && s.pending[n].StartMicros <= watermark {
		if e := s.ingest(s.pending[n]); e != nil && err == nil {
			err = e
		}
		n++
	}
	if n > 0 {
		s.pending = s.pending[:copy(s.pending, s.pending[n:])]
	}
	return err
}

// ingest is the windowing core: close windows the flow has moved past, then
// buffer it into the (now) current window.
func (s *StreamDetector) ingest(f netflow.Flow) error {
	if !s.started {
		s.start = f.StartMicros
		s.started = true
	}
	if f.StartMicros < s.start {
		s.late++
		return &LateFlowError{StartMicros: f.StartMicros, Limit: s.start}
	}
	for f.StartMicros >= s.start+s.window {
		s.closeWindow()
		s.start += s.window
		s.windowIdx++
		// Once the buffer is drained, the remaining windows up to the flow
		// are all empty: closeWindow would no-op through each. Jump straight
		// to the flow's window instead of iterating O(gap/window) times —
		// sparse traces (e.g. a multi-day quiet period at a one-minute
		// cadence) would otherwise spin through millions of empty windows.
		if len(s.flows) == 0 && f.StartMicros >= s.start+s.window {
			k := (f.StartMicros - s.start) / s.window
			s.start += k * s.window
			s.windowIdx += k
		}
	}
	s.flows = append(s.flows, f)
	return nil
}

// LateFlows returns how many flows were rejected as older than the reorder
// horizon (or, with no horizon, the current window) since construction.
func (s *StreamDetector) LateFlows() int64 { return s.late }

// Flush drains the reorder buffer and closes the current window, emitting
// any pending alerts. Call once at end of stream.
func (s *StreamDetector) Flush() {
	for i := range s.pending {
		s.ingest(s.pending[i]) // in order; nothing can be late here
	}
	s.pending = s.pending[:0]
	s.closeWindow()
	s.windowIdx++
}

// closeWindow classifies the buffered flows and emits non-suppressed alerts.
func (s *StreamDetector) closeWindow() {
	if len(s.flows) == 0 {
		return
	}
	alerts := s.det.Detect(s.flows)
	s.flows = s.flows[:0]
	for _, a := range alerts {
		k := streamKey{ip: a.IP, typ: a.Type, byDst: a.ByDst}
		if last, ok := s.lastFired[k]; ok && last == s.windowIdx-1 {
			// Continuation of an already-reported attack: refresh the
			// suppression horizon without re-alerting.
			s.lastFired[k] = s.windowIdx
			continue
		}
		s.lastFired[k] = s.windowIdx
		s.sink(a)
	}
}

// Pending returns the number of flows buffered in the open window (not
// counting flows still held in the reorder buffer).
func (s *StreamDetector) Pending() int { return len(s.flows) }

// Buffered returns the number of flows held in the reorder buffer awaiting
// their release watermark.
func (s *StreamDetector) Buffered() int { return len(s.pending) }
