package ids

import (
	"csb/internal/netflow"
)

// StreamDetector is the on-line form of the anomaly detector — the paper's
// stated future work ("on-line intrusion detection with streaming data").
// Flows arrive in start-time order; they are aggregated into tumbling
// windows, and when a window closes its traffic patterns run through the
// same Figure 4 decision flow as the off-line detector. Consecutive
// duplicate alerts (same attack class and detection IP in back-to-back
// windows) are suppressed so a long-running attack raises one alert when it
// starts and a fresh one only if it pauses and resumes.
type StreamDetector struct {
	det    *Detector
	window int64 // window length, microseconds
	sink   func(Alert)

	start   int64 // current window start (0 before the first flow)
	started bool
	flows   []netflow.Flow

	// lastFired maps (IP, type, byDst) to the window index of the most
	// recent alert, for consecutive-window suppression.
	lastFired map[streamKey]int64
	windowIdx int64
}

type streamKey struct {
	ip    uint32
	typ   AttackType
	byDst bool
}

// DefaultStreamWindowMicros is one minute, a common flow-monitoring cadence.
const DefaultStreamWindowMicros = 60 * 1e6

// NewStreamDetector builds a streaming detector with the given thresholds
// and tumbling window length in microseconds (0 selects the default).
// Alerts are delivered synchronously to sink as windows close.
func NewStreamDetector(t Thresholds, windowMicros int64, sink func(Alert)) *StreamDetector {
	if windowMicros <= 0 {
		windowMicros = DefaultStreamWindowMicros
	}
	return &StreamDetector{
		det:       NewDetector(t),
		window:    windowMicros,
		sink:      sink,
		lastFired: make(map[streamKey]int64),
	}
}

// Add feeds one flow. Flows must arrive in non-decreasing StartMicros
// order (the order a flow exporter emits them); a flow starting past the
// current window closes it first.
func (s *StreamDetector) Add(f netflow.Flow) {
	if !s.started {
		s.start = f.StartMicros
		s.started = true
	}
	for f.StartMicros >= s.start+s.window {
		s.closeWindow()
		s.start += s.window
		s.windowIdx++
		// Once the buffer is drained, the remaining windows up to the flow
		// are all empty: closeWindow would no-op through each. Jump straight
		// to the flow's window instead of iterating O(gap/window) times —
		// sparse traces (e.g. a multi-day quiet period at a one-minute
		// cadence) would otherwise spin through millions of empty windows.
		if len(s.flows) == 0 && f.StartMicros >= s.start+s.window {
			k := (f.StartMicros - s.start) / s.window
			s.start += k * s.window
			s.windowIdx += k
		}
	}
	s.flows = append(s.flows, f)
}

// Flush closes the current window, emitting any pending alerts. Call once
// at end of stream.
func (s *StreamDetector) Flush() {
	s.closeWindow()
	s.windowIdx++
}

// closeWindow classifies the buffered flows and emits non-suppressed alerts.
func (s *StreamDetector) closeWindow() {
	if len(s.flows) == 0 {
		return
	}
	alerts := s.det.Detect(s.flows)
	s.flows = s.flows[:0]
	for _, a := range alerts {
		k := streamKey{ip: a.IP, typ: a.Type, byDst: a.ByDst}
		if last, ok := s.lastFired[k]; ok && last == s.windowIdx-1 {
			// Continuation of an already-reported attack: refresh the
			// suppression horizon without re-alerting.
			s.lastFired[k] = s.windowIdx
			continue
		}
		s.lastFired[k] = s.windowIdx
		s.sink(a)
	}
}

// Pending returns the number of flows buffered in the open window.
func (s *StreamDetector) Pending() int { return len(s.flows) }
