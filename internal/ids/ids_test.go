package ids

import (
	"math/rand/v2"
	"testing"

	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

func backgroundFlows(t testing.TB, hosts, sessions int, seed uint64) []netflow.Flow {
	t.Helper()
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(hosts, sessions, seed))
	if err != nil {
		t.Fatal(err)
	}
	return netflow.Assemble(pkts, 0)
}

func TestAggregatePatternsBasic(t *testing.T) {
	flows := []netflow.Flow{
		{SrcIP: 1, DstIP: 10, DstPort: 80, OutBytes: 100, OutPkts: 2, SYNCount: 1, ACKCount: 3},
		{SrcIP: 2, DstIP: 10, DstPort: 443, OutBytes: 50, InBytes: 50, OutPkts: 1, InPkts: 1},
		{SrcIP: 1, DstIP: 20, DstPort: 80, OutBytes: 10, OutPkts: 1},
	}
	byDst, bySrc := AggregatePatterns(flows)
	if len(byDst) != 2 || len(bySrc) != 2 {
		t.Fatalf("patterns: %d byDst %d bySrc", len(byDst), len(bySrc))
	}
	// byDst sorted by IP: 10 first.
	p := byDst[0]
	if p.IP != 10 || !p.ByDst {
		t.Fatalf("pattern = %+v", p)
	}
	if p.NFlows != 2 || p.DistinctPeers != 2 || p.DistinctPorts != 2 {
		t.Fatalf("dst pattern counts: %+v", p)
	}
	if p.SumFlowSize != 200 || p.SumPackets != 4 {
		t.Fatalf("dst pattern sums: %+v", p)
	}
	if p.SYN != 1 || p.ACK != 3 {
		t.Fatalf("dst pattern flags: %+v", p)
	}
	// bySrc: IP 1 has flows to 10 and 20.
	s := bySrc[0]
	if s.IP != 1 || s.ByDst || s.NFlows != 2 || s.DistinctPeers != 2 || s.DistinctPorts != 1 {
		t.Fatalf("src pattern: %+v", s)
	}
}

func TestPatternAverages(t *testing.T) {
	p := Pattern{NFlows: 4, SumFlowSize: 100, SumPackets: 8, SYN: 4, ACK: 1}
	if p.AvgFlowSize() != 25 || p.AvgPackets() != 2 {
		t.Fatalf("averages: %g %g", p.AvgFlowSize(), p.AvgPackets())
	}
	if p.AckSynRatio() != 0.25 {
		t.Fatalf("ratio = %g", p.AckSynRatio())
	}
	var z Pattern
	if z.AvgFlowSize() != 0 || z.AvgPackets() != 0 {
		t.Fatal("zero pattern averages nonzero")
	}
	if z.AckSynRatio() != 1 {
		t.Fatal("no-SYN ratio should be neutral 1")
	}
}

func TestNoAlertsOnNormalTraffic(t *testing.T) {
	flows := backgroundFlows(t, 40, 600, 1)
	det := NewDetector(TrainThresholds(flows, 0.99, 2))
	alerts := det.Detect(flows)
	// Trained thresholds on the very same traffic must be (nearly) silent.
	if len(alerts) > 2 {
		t.Fatalf("%d false alarms on normal traffic: %v", len(alerts), alerts)
	}
}

// synthetic attack helpers (kept local to avoid an import cycle with the
// attack package, which imports ids).

func hostScanFlows(victim uint32, n int) []netflow.Flow {
	out := make([]netflow.Flow, n)
	for i := range out {
		out[i] = netflow.Flow{
			SrcIP: 0xbad00001, DstIP: victim, Protocol: graph.ProtoTCP,
			SrcPort: uint16(30000 + i), DstPort: uint16(i + 1),
			OutBytes: 40, OutPkts: 1, State: graph.StateS0, SYNCount: 1,
		}
	}
	return out
}

func synFloodFlows(victim uint32, n int) []netflow.Flow {
	out := make([]netflow.Flow, n)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range out {
		out[i] = netflow.Flow{
			SrcIP: 0xc0000000 | rng.Uint32()&0xffff, DstIP: victim, Protocol: graph.ProtoTCP,
			SrcPort: uint16(1024 + i), DstPort: 80,
			OutBytes: 40, OutPkts: 1, State: graph.StateS0, SYNCount: 1,
		}
	}
	return out
}

func networkScanFlows(attacker uint32, n int) []netflow.Flow {
	out := make([]netflow.Flow, n)
	for i := range out {
		out[i] = netflow.Flow{
			SrcIP: attacker, DstIP: 0x0a010000 | uint32(i+1), Protocol: graph.ProtoTCP,
			SrcPort: uint16(30000 + i), DstPort: 22,
			OutBytes: 40, OutPkts: 1, State: graph.StateS0, SYNCount: 1,
		}
	}
	return out
}

func floodFlows(attacker, victim uint32, n int) []netflow.Flow {
	out := make([]netflow.Flow, n)
	for i := range out {
		out[i] = netflow.Flow{
			SrcIP: attacker, DstIP: victim, Protocol: graph.ProtoUDP,
			SrcPort: uint16(1024 + i), DstPort: 80,
			OutBytes: 800_000, OutPkts: 900,
		}
	}
	return out
}

func ddosFlows(victim uint32, sources, per int) []netflow.Flow {
	var out []netflow.Flow
	for s := 0; s < sources; s++ {
		a := 0xd0000000 | uint32(s+1)
		out = append(out, floodFlows(a, victim, per)...)
	}
	return out
}

func detectTypes(t *testing.T, flows []netflow.Flow) map[AttackType][]Alert {
	t.Helper()
	det := NewDetector(DefaultThresholds())
	byType := map[AttackType][]Alert{}
	for _, a := range det.Detect(flows) {
		byType[a.Type] = append(byType[a.Type], a)
	}
	return byType
}

func TestDetectHostScan(t *testing.T) {
	victim := uint32(0x0a000005)
	byType := detectTypes(t, hostScanFlows(victim, 200))
	hs := byType[AttackHostScan]
	if len(hs) != 1 || hs[0].IP != victim || !hs[0].ByDst {
		t.Fatalf("host scan not detected: %v", byType)
	}
}

func TestDetectSYNFlood(t *testing.T) {
	victim := uint32(0x0a000006)
	byType := detectTypes(t, synFloodFlows(victim, 300))
	sf := byType[AttackSYNFlood]
	if len(sf) != 1 || sf[0].IP != victim {
		t.Fatalf("SYN flood not detected: %v", byType)
	}
}

func TestDetectNetworkScan(t *testing.T) {
	attacker := uint32(0x0bad0001)
	byType := detectTypes(t, networkScanFlows(attacker, 150))
	ns := byType[AttackNetworkScan]
	if len(ns) != 1 || ns[0].IP != attacker || ns[0].ByDst {
		t.Fatalf("network scan not detected: %v", byType)
	}
}

func TestDetectFlood(t *testing.T) {
	victim := uint32(0x0a000007)
	byType := detectTypes(t, floodFlows(0x0bad0002, victim, 10))
	fl := byType[AttackFlood]
	if len(fl) != 1 || fl[0].IP != victim {
		t.Fatalf("flood not detected: %v", byType)
	}
	if len(byType[AttackDDoS]) != 0 {
		t.Fatal("single-source flood misclassified as DDoS")
	}
}

func TestDetectDDoS(t *testing.T) {
	victim := uint32(0x0a000008)
	byType := detectTypes(t, ddosFlows(victim, 30, 3))
	dd := byType[AttackDDoS]
	if len(dd) != 1 || dd[0].IP != victim {
		t.Fatalf("DDoS not detected: %v", byType)
	}
}

func TestDetectAttacksBuriedInBackground(t *testing.T) {
	flows := backgroundFlows(t, 40, 600, 2)
	victim := pcap.HostIP(3)
	flows = append(flows, hostScanFlows(victim, 1500)...)
	det := NewDetector(TrainThresholds(backgroundFlows(t, 40, 600, 3), 0.99, 2))
	var found bool
	for _, a := range det.Detect(flows) {
		if a.Type == AttackHostScan && a.IP == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("host scan not found in mixed traffic")
	}
}

func TestDetectGraphPath(t *testing.T) {
	// Detection through the property-graph representation: build a graph
	// from attack flows and detect on the graph.
	g := netflow.BuildGraph(hostScanFlows(0x0a000009, 200))
	det := NewDetector(DefaultThresholds())
	alerts := det.DetectGraph(g)
	var found bool
	for _, a := range alerts {
		if a.Type == AttackHostScan {
			found = true
		}
	}
	if !found {
		t.Fatalf("graph-path detection failed: %v", alerts)
	}
}

func TestAttackTypeStrings(t *testing.T) {
	want := map[AttackType]string{
		AttackNone: "none", AttackHostScan: "host-scan", AttackNetworkScan: "network-scan",
		AttackSYNFlood: "syn-flood", AttackFlood: "flood", AttackDDoS: "ddos",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Type: AttackHostScan, IP: 0x0a000001, ByDst: true, Pattern: Pattern{NFlows: 5}}
	s := a.String()
	if s == "" || a.Type.String() != "host-scan" {
		t.Fatalf("alert string %q", s)
	}
}

func TestTrainThresholdsDefaultsOnBadArgs(t *testing.T) {
	flows := backgroundFlows(t, 10, 100, 4)
	tr := TrainThresholds(flows, -1, -1) // invalid => internal defaults
	if tr.NFT <= 0 || tr.FSHT <= 0 {
		t.Fatalf("trained thresholds degenerate: %+v", tr)
	}
}

func TestAggregateGraphMatchesFlowPath(t *testing.T) {
	// Both aggregation paths over the same graph must produce identical
	// pattern tables.
	flows := backgroundFlows(t, 30, 400, 17)
	flows = append(flows, hostScanFlows(0x0a000003, 300)...)
	g := netflow.BuildGraph(flows)

	gd, gs := AggregateGraph(g)
	fd, fs := AggregatePatterns(netflow.FlowsFromGraph(g))
	compare := func(name string, a, b []Pattern) {
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d patterns", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s pattern %d differs:\n graph %+v\n flows %+v", name, i, a[i], b[i])
			}
		}
	}
	compare("byDst", gd, fd)
	compare("bySrc", gs, fs)
}

func TestDetectGraphDirectMatchesDetectGraph(t *testing.T) {
	flows := backgroundFlows(t, 30, 400, 18)
	flows = append(flows, hostScanFlows(0x0a000004, 1500)...)
	flows = append(flows, synFloodFlows(0x0a000005, 2500)...)
	g := netflow.BuildGraph(flows)
	det := NewDetector(DefaultThresholds())
	a := det.DetectGraph(g)
	b := det.DetectGraphDirect(g)
	if len(a) != len(b) {
		t.Fatalf("alert counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].IP != b[i].IP || a[i].ByDst != b[i].ByDst {
			t.Fatalf("alert %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAggregateGraphEmpty(t *testing.T) {
	d, s := AggregateGraph(graph.New(0))
	if d != nil || s != nil {
		t.Fatal("empty graph produced patterns")
	}
}
