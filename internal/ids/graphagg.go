package ids

import (
	"slices"
	"sort"

	"csb/internal/graph"
)

// AggregateGraph builds the Table I traffic-pattern records directly from a
// property graph, exploiting the graph structure the way Section IV
// motivates: "property-graphs can improve the performance in the processing
// of aggregated packet data". Grouping flows by detection IP is grouping
// edges by head or tail vertex, so the aggregation runs over dense
// vertex-indexed arrays with no hash lookups — unlike AggregatePatterns,
// which must hash every flow's addresses.
//
// Flag counters are reconstructed from edge state exactly as
// netflow.FlowsFromGraph does, so both aggregation paths produce identical
// patterns for the same graph (see TestAggregateGraphMatchesFlowPath).
func AggregateGraph(g *graph.Graph) (byDst, bySrc []Pattern) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	addrOf := func(v graph.VertexID) uint32 {
		if g.HasAddrs() {
			if a := g.Addr(v); a != 0 {
				return a
			}
		}
		return uint32(v) + 1
	}

	cols := g.Cols()
	m := int64(cols.Len())

	// CSR-style layout: one counting pass, then fill single backing arrays,
	// so the whole aggregation performs O(1) allocations regardless of |E|.
	// The counting pass touches only the 4-byte endpoint column it keys on.
	side := func(byDstSide bool) []Pattern {
		counts := make([]int64, n+1)
		for i := 0; i < int(m); i++ {
			v := cols.SrcID(i)
			if byDstSide {
				v = cols.DstID(i)
			}
			counts[v+1]++
		}
		offsets := counts // prefix sums in place
		for v := int64(1); v <= n; v++ {
			offsets[v] += offsets[v-1]
		}
		peers := make([]uint32, m)
		ports := make([]uint16, m)
		cursor := make([]int64, n)
		pats := make([]Pattern, n)
		for i := 0; i < int(m); i++ {
			e := cols.Edge(i)
			v, peer := e.Src, e.Dst
			if byDstSide {
				v, peer = e.Dst, e.Src
			}
			p := &pats[v]
			p.NFlows++
			p.SumFlowSize += e.Props.OutBytes + e.Props.InBytes
			p.SumPackets += e.Props.OutPkts + e.Props.InPkts
			syn, ack := flagCounts(&e)
			p.SYN += syn
			p.ACK += ack
			at := offsets[v] + cursor[v]
			cursor[v]++
			peers[at] = addrOf(peer)
			ports[at] = e.Props.DstPort
		}
		out := make([]Pattern, 0, n)
		for v := int64(0); v < n; v++ {
			p := &pats[v]
			if p.NFlows == 0 {
				continue
			}
			p.IP = addrOf(graph.VertexID(v))
			p.ByDst = byDstSide
			p.DistinctPeers = distinctU32(peers[offsets[v] : offsets[v]+cursor[v]])
			p.DistinctPorts = distinctU16(ports[offsets[v] : offsets[v]+cursor[v]])
			out = append(out, *p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
		return out
	}
	return side(true), side(false)
}

// flagCounts reconstructs SYN/ACK counters from an edge's TCP state using
// the same rules as netflow.FlowsFromGraph.
func flagCounts(e *graph.Edge) (syn, ack int64) {
	if e.Props.Protocol != graph.ProtoTCP {
		return 0, 0
	}
	switch e.Props.State {
	case graph.StateS0, graph.StateSH:
		syn = e.Props.OutPkts
	case graph.StateOTH:
		syn = 0
	default:
		syn = 2
	}
	if e.Props.State != graph.StateS0 && e.Props.State != graph.StateSH && e.Props.State != graph.StateOTH {
		ack = e.Props.OutPkts + e.Props.InPkts - 1
		if ack < 0 {
			ack = 0
		}
	}
	return syn, ack
}

func distinctU32(xs []uint32) int64 {
	if len(xs) == 0 {
		return 0
	}
	slices.Sort(xs)
	var n int64 = 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			n++
		}
	}
	return n
}

func distinctU16(xs []uint16) int64 {
	if len(xs) == 0 {
		return 0
	}
	slices.Sort(xs)
	var n int64 = 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			n++
		}
	}
	return n
}

// DetectGraphDirect runs the Figure 4 decision flow over graph-side
// aggregation, avoiding the flow-record materialization of DetectGraph.
// Results are identical; this is the fast path for synthetic datasets.
func (d *Detector) DetectGraphDirect(g *graph.Graph) []Alert {
	byDst, bySrc := AggregateGraph(g)
	var alerts []Alert
	for i := range byDst {
		if a, ok := d.classifyDst(&byDst[i]); ok {
			alerts = append(alerts, a)
		}
	}
	for i := range bySrc {
		if a, ok := d.classifySrc(&bySrc[i]); ok {
			alerts = append(alerts, a)
		}
	}
	return alerts
}
