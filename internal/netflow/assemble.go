package netflow

import (
	"sort"

	"csb/internal/graph"
	"csb/internal/pcap"
)

// DefaultIdleTimeoutMicros is the flow idle timeout: a flow with no packet
// for this long is considered finished, matching common Netflow exporter and
// Bro defaults (60 s for TCP-ish traffic at our trace scale).
const DefaultIdleTimeoutMicros = 60 * 1e6

type flowKey struct {
	a, b         uint32
	aPort, bPort uint16
	proto        uint8
}

type flowState struct {
	flow Flow
	// TCP bookkeeping for the Bro state machine.
	origSYN  bool // originator sent SYN
	respSYN  bool // responder sent SYN-ACK
	origFIN  bool
	respFIN  bool
	origRST  bool
	respRST  bool
	sawReply bool // any responder packet at all
	closing  bool // teardown complete; lingering for trailing ACKs
}

// Assembler groups packets into bidirectional flows. Feed packets in
// timestamp order via Add, then call Finish to flush open flows. The zero
// value is not ready; use NewAssembler.
type Assembler struct {
	idleTimeout int64
	active      map[flowKey]*flowState
	done        []Flow
	lastSweep   int64
}

// NewAssembler returns an Assembler with the given idle timeout in
// microseconds (0 means DefaultIdleTimeoutMicros).
func NewAssembler(idleTimeoutMicros int64) *Assembler {
	if idleTimeoutMicros <= 0 {
		idleTimeoutMicros = DefaultIdleTimeoutMicros
	}
	return &Assembler{
		idleTimeout: idleTimeoutMicros,
		active:      make(map[flowKey]*flowState),
	}
}

func key(p pcap.PacketInfo) flowKey {
	return flowKey{a: p.SrcIP, b: p.DstIP, aPort: p.SrcPort, bPort: p.DstPort, proto: p.Protocol}
}

func (k flowKey) reversed() flowKey {
	return flowKey{a: k.b, b: k.a, aPort: k.bPort, bPort: k.aPort, proto: k.proto}
}

// Add processes one packet. Packets should arrive in non-decreasing
// timestamp order; mild reordering is tolerated (flows only extend).
func (a *Assembler) Add(p pcap.PacketInfo) {
	// Periodically expire idle flows so memory stays bounded on long traces.
	if p.TsMicros-a.lastSweep > a.idleTimeout {
		a.sweep(p.TsMicros)
		a.lastSweep = p.TsMicros
	}
	k := key(p)
	if st, ok := a.active[k]; ok {
		switch {
		case p.TsMicros-st.flow.EndMicros > a.idleTimeout:
			a.finalize(k, st)
		case st.closing && p.Flags.Has(pcap.FlagSYN):
			// Port reuse: a fresh handshake after teardown starts a new flow.
			a.finalize(k, st)
		default:
			a.update(st, p, true)
			a.maybeClose(st)
			return
		}
	}
	rk := k.reversed()
	if st, ok := a.active[rk]; ok {
		switch {
		case p.TsMicros-st.flow.EndMicros > a.idleTimeout:
			a.finalize(rk, st)
		case st.closing && p.Flags.Has(pcap.FlagSYN):
			a.finalize(rk, st)
		default:
			a.update(st, p, false)
			a.maybeClose(st)
			return
		}
	}
	// New flow; the first packet's sender is the originator.
	st := &flowState{flow: Flow{
		SrcIP: p.SrcIP, DstIP: p.DstIP,
		Protocol: protoFromIP(p.Protocol),
		SrcPort:  p.SrcPort, DstPort: p.DstPort,
		StartMicros: p.TsMicros, EndMicros: p.TsMicros,
	}}
	a.active[k] = st
	a.update(st, p, true)
}

// update folds packet p into st; fromOrig says whether p travels in the
// originator's direction.
func (a *Assembler) update(st *flowState, p pcap.PacketInfo, fromOrig bool) {
	f := &st.flow
	if p.TsMicros > f.EndMicros {
		f.EndMicros = p.TsMicros
	}
	if fromOrig {
		f.OutBytes += p.Len
		f.OutPkts++
	} else {
		f.InBytes += p.Len
		f.InPkts++
		st.sawReply = true
	}
	if p.Protocol != pcap.IPProtoTCP {
		return
	}
	if p.Flags.Has(pcap.FlagSYN) {
		f.SYNCount++
		if fromOrig {
			st.origSYN = true
		} else {
			st.respSYN = true
		}
	}
	if p.Flags.Has(pcap.FlagACK) {
		f.ACKCount++
	}
	if p.Flags.Has(pcap.FlagFIN) {
		if fromOrig {
			st.origFIN = true
		} else {
			st.respFIN = true
		}
	}
	if p.Flags.Has(pcap.FlagRST) {
		if fromOrig {
			st.origRST = true
		} else {
			st.respRST = true
		}
	}
}

// maybeClose marks a TCP flow as closing once its teardown is complete. The
// flow lingers so trailing teardown ACKs still fold in; it is finalized when
// a new SYN reuses the tuple, at an idle sweep, or at Finish.
func (a *Assembler) maybeClose(st *flowState) {
	if st.flow.Protocol != graph.ProtoTCP {
		return
	}
	if st.origRST || st.respRST || (st.origFIN && st.respFIN) {
		st.closing = true
	}
}

func (a *Assembler) finalize(k flowKey, st *flowState) {
	st.flow.State = tcpState(st)
	a.done = append(a.done, st.flow)
	delete(a.active, k)
}

func (a *Assembler) sweep(now int64) {
	for k, st := range a.active {
		if now-st.flow.EndMicros > a.idleTimeout {
			a.finalize(k, st)
		}
	}
}

// tcpState derives the Bro-style connection state.
func tcpState(st *flowState) graph.TCPState {
	if st.flow.Protocol != graph.ProtoTCP {
		return graph.StateNone
	}
	switch {
	case !st.origSYN:
		return graph.StateOTH // midstream: no originator SYN seen
	case st.origSYN && !st.sawReply && st.origFIN:
		return graph.StateSH
	case st.origSYN && !st.sawReply:
		return graph.StateS0
	case st.respRST && !st.respSYN:
		return graph.StateREJ
	case st.origRST:
		return graph.StateRSTO
	case st.respRST:
		return graph.StateRSTR
	case st.origFIN && st.respFIN:
		return graph.StateSF
	default:
		return graph.StateS1
	}
}

// Finish flushes every open flow and returns all flows sorted by start time,
// with a stable tie-break on the 5-tuple for flows starting on the same
// microsecond. Ties are common (port scans, floods) and the pre-sort order
// leaks map iteration, so without the tie-break the output order — which the
// replay engine's pacing and StreamDetector's non-decreasing-order contract
// both consume — would vary run to run. The Assembler can be reused
// afterwards.
func (a *Assembler) Finish() []Flow {
	for k, st := range a.active {
		a.finalize(k, st)
	}
	out := a.done
	a.done = nil
	// Reset the sweep clock too: a reused Assembler fed a trace that starts
	// earlier than the previous one ended must not suppress idle sweeps (or,
	// with a stale high-water mark, trip one on the very first packet).
	a.lastSweep = 0
	sort.Slice(out, func(i, j int) bool { return FlowLess(&out[i], &out[j]) })
	return out
}

// FlowLess orders flows by StartMicros, then by the 5-tuple (src, dst,
// ports, protocol) and EndMicros so equal-start flows have one canonical
// order independent of map iteration. It is exported because this ordering
// is the repo-wide canonical flow order: attack.Scenario.Finish sorts mixed
// scenarios with it so injected flows interleave with background exactly the
// way Assembler.Finish would have emitted them.
func FlowLess(a, b *Flow) bool {
	switch {
	case a.StartMicros != b.StartMicros:
		return a.StartMicros < b.StartMicros
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	case a.Protocol != b.Protocol:
		return a.Protocol < b.Protocol
	default:
		return a.EndMicros < b.EndMicros
	}
}

// Assemble is the one-shot convenience: packets in, flows out.
func Assemble(packets []pcap.PacketInfo, idleTimeoutMicros int64) []Flow {
	a := NewAssembler(idleTimeoutMicros)
	for _, p := range packets {
		a.Add(p)
	}
	return a.Finish()
}
