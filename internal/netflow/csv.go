package netflow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"csb/internal/graph"
	"csb/internal/pcap"
)

var csvHeader = []string{
	"start_us", "end_us", "src_ip", "dst_ip", "proto",
	"src_port", "dst_port", "out_bytes", "in_bytes",
	"out_pkts", "in_pkts", "state", "syn", "ack",
}

// WriteCSV serializes flows as CSV with a header row, the textual Netflow
// exchange format of the toolchain.
func WriteCSV(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for i := range flows {
		f := &flows[i]
		rec[0] = strconv.FormatInt(f.StartMicros, 10)
		rec[1] = strconv.FormatInt(f.EndMicros, 10)
		rec[2] = pcap.FormatIPv4(f.SrcIP)
		rec[3] = pcap.FormatIPv4(f.DstIP)
		rec[4] = f.Protocol.String()
		rec[5] = strconv.FormatUint(uint64(f.SrcPort), 10)
		rec[6] = strconv.FormatUint(uint64(f.DstPort), 10)
		rec[7] = strconv.FormatInt(f.OutBytes, 10)
		rec[8] = strconv.FormatInt(f.InBytes, 10)
		rec[9] = strconv.FormatInt(f.OutPkts, 10)
		rec[10] = strconv.FormatInt(f.InPkts, 10)
		rec[11] = f.State.String()
		rec[12] = strconv.FormatInt(f.SYNCount, 10)
		rec[13] = strconv.FormatInt(f.ACKCount, 10)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses flows written by WriteCSV.
func ReadCSV(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("netflow: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if hdr[i] != h {
			return nil, fmt.Errorf("netflow: CSV column %d is %q, want %q", i, hdr[i], h)
		}
	}
	var flows []Flow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return flows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netflow: CSV line %d: %w", line, err)
		}
		f, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("netflow: CSV line %d: %w", line, err)
		}
		flows = append(flows, f)
	}
}

func parseCSVRecord(rec []string) (Flow, error) {
	var f Flow
	var err error
	geti := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	f.StartMicros = geti(rec[0])
	f.EndMicros = geti(rec[1])
	f.SrcIP, err = parseIPv4(rec[2], err)
	f.DstIP, err = parseIPv4(rec[3], err)
	f.Protocol, err = parseProto(rec[4], err)
	f.SrcPort = uint16(geti(rec[5]))
	f.DstPort = uint16(geti(rec[6]))
	f.OutBytes = geti(rec[7])
	f.InBytes = geti(rec[8])
	f.OutPkts = geti(rec[9])
	f.InPkts = geti(rec[10])
	f.State, err = parseState(rec[11], err)
	f.SYNCount = geti(rec[12])
	f.ACKCount = geti(rec[13])
	return f, err
}

func parseIPv4(s string, prev error) (uint32, error) {
	if prev != nil {
		return 0, prev
	}
	var a, b, c, d uint32
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 %q: %w", s, err)
	}
	if a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	return a<<24 | b<<16 | c<<8 | d, nil
}

func parseProto(s string, prev error) (graph.Protocol, error) {
	if prev != nil {
		return 0, prev
	}
	switch s {
	case "tcp":
		return graph.ProtoTCP, nil
	case "udp":
		return graph.ProtoUDP, nil
	case "icmp":
		return graph.ProtoICMP, nil
	case "unknown":
		return graph.ProtoUnknown, nil
	default:
		return 0, fmt.Errorf("bad protocol %q", s)
	}
}

func parseState(s string, prev error) (graph.TCPState, error) {
	if prev != nil {
		return 0, prev
	}
	states := map[string]graph.TCPState{
		"-": graph.StateNone, "S0": graph.StateS0, "S1": graph.StateS1,
		"SF": graph.StateSF, "REJ": graph.StateREJ, "RSTO": graph.StateRSTO,
		"RSTR": graph.StateRSTR, "SH": graph.StateSH, "OTH": graph.StateOTH,
	}
	st, ok := states[s]
	if !ok {
		return 0, fmt.Errorf("bad TCP state %q", s)
	}
	return st, nil
}
