package netflow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"csb/internal/bufpool"
	"csb/internal/graph"
)

var csvHeader = []string{
	"start_us", "end_us", "src_ip", "dst_ip", "proto",
	"src_port", "dst_port", "out_bytes", "in_bytes",
	"out_pkts", "in_pkts", "state", "syn", "ack",
}

// CSVHeaderLine is the header row WriteCSV emits, exposed so chunked
// (distributed) encoders can write the header once and concatenate row
// chunks after it.
const CSVHeaderLine = "start_us,end_us,src_ip,dst_ip,proto,src_port,dst_port,out_bytes,in_bytes,out_pkts,in_pkts,state,syn,ack\n"

// AppendCSVRow appends f's CSV row (with trailing newline) to dst. WriteCSV
// and the distributed row encoders share this single formatter, which is
// what keeps their bytes identical.
func AppendCSVRow(dst []byte, f *Flow) []byte {
	b := dst
	b = strconv.AppendInt(b, f.StartMicros, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.EndMicros, 10)
	b = append(b, ',')
	b = appendIPv4(b, f.SrcIP)
	b = append(b, ',')
	b = appendIPv4(b, f.DstIP)
	b = append(b, ',')
	b = append(b, f.Protocol.String()...)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(f.SrcPort), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(f.DstPort), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.OutBytes, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.InBytes, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.OutPkts, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.InPkts, 10)
	b = append(b, ',')
	b = append(b, f.State.String()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.SYNCount, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, f.ACKCount, 10)
	b = append(b, '\n')
	return b
}

// WriteCSV serializes flows as CSV with a header row, the textual Netflow
// exchange format of the toolchain. Rows are formatted append-style into a
// pooled scratch buffer — every field is a bare number or a fixed token
// (proto, TCP state, dotted-quad IPs), so no CSV quoting can ever be needed
// and the output stays byte-identical to the encoding/csv form this writer
// replaced. TestWriteCSVMatchesEncodingCSV holds that equivalence in place.
func WriteCSV(w io.Writer, flows []Flow) error {
	bw := bufpool.Get(w)
	defer bufpool.Put(bw)
	for i, h := range csvHeader {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(h); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i := range flows {
		b := AppendCSVRow(bw.Scratch[:0], &flows[i])
		bw.Scratch = b
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendIPv4 formats ip as a dotted quad, matching pcap.FormatIPv4.
func appendIPv4(b []byte, ip uint32) []byte {
	b = strconv.AppendUint(b, uint64(ip>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(ip&0xff), 10)
	return b
}

// ReadCSV parses flows written by WriteCSV.
func ReadCSV(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("netflow: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if hdr[i] != h {
			return nil, fmt.Errorf("netflow: CSV column %d is %q, want %q", i, hdr[i], h)
		}
	}
	var flows []Flow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return flows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netflow: CSV line %d: %w", line, err)
		}
		f, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("netflow: CSV line %d: %w", line, err)
		}
		flows = append(flows, f)
	}
}

func parseCSVRecord(rec []string) (Flow, error) {
	var f Flow
	var err error
	geti := func(s string) int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = strconv.ParseInt(s, 10, 64)
		return v
	}
	f.StartMicros = geti(rec[0])
	f.EndMicros = geti(rec[1])
	f.SrcIP, err = parseIPv4(rec[2], err)
	f.DstIP, err = parseIPv4(rec[3], err)
	f.Protocol, err = parseProto(rec[4], err)
	f.SrcPort = uint16(geti(rec[5]))
	f.DstPort = uint16(geti(rec[6]))
	f.OutBytes = geti(rec[7])
	f.InBytes = geti(rec[8])
	f.OutPkts = geti(rec[9])
	f.InPkts = geti(rec[10])
	f.State, err = parseState(rec[11], err)
	f.SYNCount = geti(rec[12])
	f.ACKCount = geti(rec[13])
	return f, err
}

func parseIPv4(s string, prev error) (uint32, error) {
	if prev != nil {
		return 0, prev
	}
	var a, b, c, d uint32
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 %q: %w", s, err)
	}
	if a > 255 || b > 255 || c > 255 || d > 255 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	return a<<24 | b<<16 | c<<8 | d, nil
}

func parseProto(s string, prev error) (graph.Protocol, error) {
	if prev != nil {
		return 0, prev
	}
	switch s {
	case "tcp":
		return graph.ProtoTCP, nil
	case "udp":
		return graph.ProtoUDP, nil
	case "icmp":
		return graph.ProtoICMP, nil
	case "unknown":
		return graph.ProtoUnknown, nil
	default:
		return 0, fmt.Errorf("bad protocol %q", s)
	}
}

func parseState(s string, prev error) (graph.TCPState, error) {
	if prev != nil {
		return 0, prev
	}
	states := map[string]graph.TCPState{
		"-": graph.StateNone, "S0": graph.StateS0, "S1": graph.StateS1,
		"SF": graph.StateSF, "REJ": graph.StateREJ, "RSTO": graph.StateRSTO,
		"RSTR": graph.StateRSTR, "SH": graph.StateSH, "OTH": graph.StateOTH,
	}
	st, ok := states[s]
	if !ok {
		return 0, fmt.Errorf("bad TCP state %q", s)
	}
	return st, nil
}
