package netflow

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV flow parser never panics and that everything
// it accepts re-serializes losslessly.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteCSV(&buf, sampleFlows())
	f.Add(buf.String())
	f.Add("")
	f.Add("start_us,end_us\n1,2\n")
	f.Add(strings.Replace(buf.String(), "tcp", "xxx", 1))

	f.Fuzz(func(t *testing.T, data string) {
		flows, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, flows); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(flows) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(flows))
		}
	})
}

// FuzzReadV5 asserts the NetFlow v5 parser never panics and pairs whatever
// it accepts without crashing.
func FuzzReadV5(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteV5(&buf, sampleFlows())
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:24])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x05}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		unis, err := ReadV5(bytes.NewReader(data))
		if err != nil {
			return
		}
		flows := PairUniflows(unis)
		if len(flows) > len(unis) {
			t.Fatalf("pairing grew records: %d from %d", len(flows), len(unis))
		}
		for _, fl := range flows {
			if fl.OutPkts < 0 || fl.InPkts < 0 || fl.OutBytes < 0 || fl.InBytes < 0 {
				t.Fatalf("negative counters: %+v", fl)
			}
		}
	})
}
