package netflow

import (
	"encoding/binary"
	"fmt"

	"csb/internal/graph"
)

// FlowRecordLen is the size of one fixed binary flow record — the unit of
// the distributed CSV row-encode payloads (internal/dist/rows). Layout, all
// big-endian: start, end (int64), srcIP, dstIP (uint32), proto, state
// (uint8), srcPort, dstPort (uint16), outBytes, inBytes, outPkts, inPkts,
// syn, ack (int64).
const FlowRecordLen = 8 + 8 + 4 + 4 + 1 + 1 + 2 + 2 + 8 + 8 + 8 + 8 + 8 + 8

// AppendFlowRecord appends f's fixed-size binary record to dst.
func AppendFlowRecord(dst []byte, f *Flow) []byte {
	var rec [FlowRecordLen]byte
	binary.BigEndian.PutUint64(rec[0:8], uint64(f.StartMicros))
	binary.BigEndian.PutUint64(rec[8:16], uint64(f.EndMicros))
	binary.BigEndian.PutUint32(rec[16:20], f.SrcIP)
	binary.BigEndian.PutUint32(rec[20:24], f.DstIP)
	rec[24] = byte(f.Protocol)
	rec[25] = byte(f.State)
	binary.BigEndian.PutUint16(rec[26:28], f.SrcPort)
	binary.BigEndian.PutUint16(rec[28:30], f.DstPort)
	binary.BigEndian.PutUint64(rec[30:38], uint64(f.OutBytes))
	binary.BigEndian.PutUint64(rec[38:46], uint64(f.InBytes))
	binary.BigEndian.PutUint64(rec[46:54], uint64(f.OutPkts))
	binary.BigEndian.PutUint64(rec[54:62], uint64(f.InPkts))
	binary.BigEndian.PutUint64(rec[62:70], uint64(f.SYNCount))
	binary.BigEndian.PutUint64(rec[70:78], uint64(f.ACKCount))
	return append(dst, rec[:]...)
}

// DecodeFlowRecord parses one binary flow record (rec must hold at least
// FlowRecordLen bytes).
func DecodeFlowRecord(rec []byte) (Flow, error) {
	if len(rec) < FlowRecordLen {
		return Flow{}, fmt.Errorf("netflow: flow record is %d bytes, want %d", len(rec), FlowRecordLen)
	}
	var f Flow
	f.StartMicros = int64(binary.BigEndian.Uint64(rec[0:8]))
	f.EndMicros = int64(binary.BigEndian.Uint64(rec[8:16]))
	f.SrcIP = binary.BigEndian.Uint32(rec[16:20])
	f.DstIP = binary.BigEndian.Uint32(rec[20:24])
	f.Protocol = graph.Protocol(rec[24])
	f.State = graph.TCPState(rec[25])
	f.SrcPort = binary.BigEndian.Uint16(rec[26:28])
	f.DstPort = binary.BigEndian.Uint16(rec[28:30])
	f.OutBytes = int64(binary.BigEndian.Uint64(rec[30:38]))
	f.InBytes = int64(binary.BigEndian.Uint64(rec[38:46]))
	f.OutPkts = int64(binary.BigEndian.Uint64(rec[46:54]))
	f.InPkts = int64(binary.BigEndian.Uint64(rec[54:62]))
	f.SYNCount = int64(binary.BigEndian.Uint64(rec[62:70]))
	f.ACKCount = int64(binary.BigEndian.Uint64(rec[70:78]))
	return f, nil
}
