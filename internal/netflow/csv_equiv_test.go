package netflow

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"csb/internal/graph"
	"csb/internal/pcap"
)

// writeCSVReference is the encoding/csv implementation WriteCSV replaced.
// The fast writer must stay byte-for-byte equivalent to it.
func writeCSVReference(buf *bytes.Buffer, flows []Flow) error {
	cw := csv.NewWriter(buf)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for i := range flows {
		f := &flows[i]
		rec[0] = strconv.FormatInt(f.StartMicros, 10)
		rec[1] = strconv.FormatInt(f.EndMicros, 10)
		rec[2] = pcap.FormatIPv4(f.SrcIP)
		rec[3] = pcap.FormatIPv4(f.DstIP)
		rec[4] = f.Protocol.String()
		rec[5] = strconv.FormatUint(uint64(f.SrcPort), 10)
		rec[6] = strconv.FormatUint(uint64(f.DstPort), 10)
		rec[7] = strconv.FormatInt(f.OutBytes, 10)
		rec[8] = strconv.FormatInt(f.InBytes, 10)
		rec[9] = strconv.FormatInt(f.OutPkts, 10)
		rec[10] = strconv.FormatInt(f.InPkts, 10)
		rec[11] = f.State.String()
		rec[12] = strconv.FormatInt(f.SYNCount, 10)
		rec[13] = strconv.FormatInt(f.ACKCount, 10)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func TestWriteCSVMatchesEncodingCSV(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	protos := []graph.Protocol{graph.ProtoTCP, graph.ProtoUDP, graph.ProtoICMP, graph.ProtoUnknown}
	states := []graph.TCPState{
		graph.StateNone, graph.StateS0, graph.StateS1, graph.StateSF,
		graph.StateREJ, graph.StateRSTO, graph.StateRSTR, graph.StateSH, graph.StateOTH,
	}
	flows := make([]Flow, 500)
	for i := range flows {
		flows[i] = Flow{
			StartMicros: int64(next() % 1e12),
			EndMicros:   int64(next() % 1e12),
			SrcIP:       uint32(next()),
			DstIP:       uint32(next()),
			Protocol:    protos[next()%uint64(len(protos))],
			SrcPort:     uint16(next()),
			DstPort:     uint16(next()),
			OutBytes:    int64(next() % 1e9),
			InBytes:     int64(next() % 1e9),
			OutPkts:     int64(next() % 1e5),
			InPkts:      int64(next() % 1e5),
			State:       states[next()%uint64(len(states))],
			SYNCount:    int64(next() % 8),
			ACKCount:    int64(next() % 64),
		}
	}
	// Corner values the random sweep can miss.
	flows = append(flows,
		Flow{},
		Flow{SrcIP: 0xffffffff, DstIP: 0, SrcPort: 65535, DstPort: 0,
			Protocol: graph.ProtoICMP, State: graph.StateOTH,
			StartMicros: 1<<62 - 1, EndMicros: 1<<62 - 1},
	)
	var got, want bytes.Buffer
	if err := WriteCSV(&got, flows); err != nil {
		t.Fatal(err)
	}
	if err := writeCSVReference(&want, flows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("WriteCSV output diverged from encoding/csv reference\n got %d bytes\nwant %d bytes", got.Len(), want.Len())
	}
}
