package netflow

import (
	"testing"

	"csb/internal/graph"
	"csb/internal/pcap"
)

// pkt builds a test packet.
func pkt(ts int64, src, dst uint32, proto uint8, sp, dp uint16, flags pcap.TCPFlags, size int64) pcap.PacketInfo {
	return pcap.PacketInfo{TsMicros: ts, SrcIP: src, DstIP: dst, Protocol: proto,
		SrcPort: sp, DstPort: dp, Flags: flags, Len: size}
}

const (
	hostA = 0x0a000001
	hostB = 0x0a000002
)

func tcpSession(start int64) []pcap.PacketInfo {
	return []pcap.PacketInfo{
		pkt(start, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagSYN, 40),
		pkt(start+1000, hostB, hostA, pcap.IPProtoTCP, 80, 40000, pcap.FlagSYN|pcap.FlagACK, 40),
		pkt(start+2000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagACK, 40),
		pkt(start+3000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagACK|pcap.FlagPSH, 500),
		pkt(start+4000, hostB, hostA, pcap.IPProtoTCP, 80, 40000, pcap.FlagACK|pcap.FlagPSH, 1400),
		pkt(start+5000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagFIN|pcap.FlagACK, 40),
		pkt(start+6000, hostB, hostA, pcap.IPProtoTCP, 80, 40000, pcap.FlagFIN|pcap.FlagACK, 40),
		pkt(start+7000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagACK, 40),
	}
}

func TestAssembleNormalTCPSession(t *testing.T) {
	flows := Assemble(tcpSession(1e6), 0)
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(flows))
	}
	f := flows[0]
	if f.SrcIP != hostA || f.DstIP != hostB {
		t.Errorf("originator wrong: %x -> %x", f.SrcIP, f.DstIP)
	}
	if f.Protocol != graph.ProtoTCP || f.State != graph.StateSF {
		t.Errorf("proto/state = %v/%v, want tcp/SF", f.Protocol, f.State)
	}
	if f.OutPkts != 5 || f.InPkts != 3 {
		t.Errorf("pkts = %d/%d, want 5/3", f.OutPkts, f.InPkts)
	}
	if f.OutBytes != 40+40+500+40+40 || f.InBytes != 40+1400+40 {
		t.Errorf("bytes = %d/%d", f.OutBytes, f.InBytes)
	}
	if f.DurationMs() != 7 {
		t.Errorf("duration = %dms, want 7", f.DurationMs())
	}
	if f.SYNCount != 2 {
		t.Errorf("SYNCount = %d, want 2", f.SYNCount)
	}
	if f.ACKCount != 7 {
		t.Errorf("ACKCount = %d, want 7", f.ACKCount)
	}
}

func TestAssembleS0(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagSYN, 40),
		pkt(1e6, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagSYN, 40),
	}, 0)
	if len(flows) != 1 || flows[0].State != graph.StateS0 {
		t.Fatalf("flows = %+v, want one S0", flows)
	}
	if flows[0].InPkts != 0 {
		t.Errorf("S0 flow has reply packets")
	}
}

func TestAssembleREJ(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagSYN, 40),
		pkt(1000, hostB, hostA, pcap.IPProtoTCP, 80, 40000, pcap.FlagRST|pcap.FlagACK, 40),
	}, 0)
	if len(flows) != 1 || flows[0].State != graph.StateREJ {
		t.Fatalf("state = %v, want REJ", flows[0].State)
	}
}

func TestAssembleRSTO(t *testing.T) {
	ps := tcpSession(0)[:5] // up to established with data
	ps = append(ps, pkt(6000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagRST, 40))
	flows := Assemble(ps, 0)
	if len(flows) != 1 || flows[0].State != graph.StateRSTO {
		t.Fatalf("state = %v, want RSTO", flows[0].State)
	}
}

func TestAssembleRSTR(t *testing.T) {
	ps := tcpSession(0)[:5]
	ps = append(ps, pkt(6000, hostB, hostA, pcap.IPProtoTCP, 80, 40000, pcap.FlagRST, 40))
	flows := Assemble(ps, 0)
	if len(flows) != 1 || flows[0].State != graph.StateRSTR {
		t.Fatalf("state = %v, want RSTR", flows[0].State)
	}
}

func TestAssembleS1(t *testing.T) {
	ps := tcpSession(0)[:5] // established, never torn down
	flows := Assemble(ps, 0)
	if len(flows) != 1 || flows[0].State != graph.StateS1 {
		t.Fatalf("state = %v, want S1", flows[0].State)
	}
}

func TestAssembleSH(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagSYN, 40),
		pkt(1000, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagFIN, 40),
	}, 0)
	if len(flows) != 1 || flows[0].State != graph.StateSH {
		t.Fatalf("state = %v, want SH", flows[0].State)
	}
}

func TestAssembleOTH(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoTCP, 40000, 80, pcap.FlagACK|pcap.FlagPSH, 800),
	}, 0)
	if len(flows) != 1 || flows[0].State != graph.StateOTH {
		t.Fatalf("state = %v, want OTH", flows[0].State)
	}
}

func TestAssembleUDPBidirectional(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoUDP, 5000, 53, 0, 70),
		pkt(1000, hostB, hostA, pcap.IPProtoUDP, 53, 5000, 0, 200),
	}, 0)
	if len(flows) != 1 {
		t.Fatalf("got %d flows, want 1 (bidirectional merge)", len(flows))
	}
	f := flows[0]
	if f.Protocol != graph.ProtoUDP || f.State != graph.StateNone {
		t.Errorf("proto/state = %v/%v", f.Protocol, f.State)
	}
	if f.OutBytes != 70 || f.InBytes != 200 {
		t.Errorf("bytes = %d/%d, want 70/200", f.OutBytes, f.InBytes)
	}
}

func TestAssembleIdleTimeoutSplits(t *testing.T) {
	// Two UDP bursts on the same 5-tuple, separated by more than the idle
	// timeout, must become two flows.
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoUDP, 5000, 53, 0, 70),
		pkt(200*1e6, hostA, hostB, pcap.IPProtoUDP, 5000, 53, 0, 70),
	}, 60*1e6)
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2 (idle split)", len(flows))
	}
}

func TestAssemblePortReuseAfterClose(t *testing.T) {
	// A completed TCP session followed by a new session on the same 5-tuple
	// must produce two flows even within the idle window.
	ps := tcpSession(0)
	ps = append(ps, tcpSession(10000)...)
	flows := Assemble(ps, 0)
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2 (port reuse after close)", len(flows))
	}
	for _, f := range flows {
		if f.State != graph.StateSF {
			t.Errorf("state = %v, want SF", f.State)
		}
	}
}

func TestAssembleDistinctTuplesDistinctFlows(t *testing.T) {
	flows := Assemble([]pcap.PacketInfo{
		pkt(0, hostA, hostB, pcap.IPProtoUDP, 5000, 53, 0, 70),
		pkt(10, hostA, hostB, pcap.IPProtoUDP, 5001, 53, 0, 70),
		pkt(20, hostA, hostB, pcap.IPProtoTCP, 5000, 53, pcap.FlagSYN, 40),
	}, 0)
	if len(flows) != 3 {
		t.Fatalf("got %d flows, want 3", len(flows))
	}
}

func TestAssembleSortedByStart(t *testing.T) {
	ps := append(tcpSession(5e6), tcpSession(1e6)...)
	// Feed out of order is not required; sort inputs first like a capture.
	flows := Assemble(append(tcpSession(1e6), tcpSession(5e6)...), 0)
	_ = ps
	if len(flows) != 2 || flows[0].StartMicros > flows[1].StartMicros {
		t.Fatalf("flows not sorted by start: %+v", flows)
	}
}

func TestAssembleSyntheticTraceFlowCount(t *testing.T) {
	// End-to-end: the synthetic trace's session count must be recovered by
	// the assembler within a small tolerance (sessions on the same 5-tuple
	// are astronomically unlikely at this scale).
	cfg := pcap.DefaultTraceConfig(50, 2000, 13)
	pkts, err := pcap.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flows := Assemble(pkts, 0)
	if len(flows) < 1900 || len(flows) > 2100 {
		t.Fatalf("recovered %d flows from 2000 sessions", len(flows))
	}
	st := Summarize(flows)
	if st.Hosts != 50 {
		t.Errorf("hosts = %d, want 50", st.Hosts)
	}
	if st.TCP == 0 || st.UDP == 0 || st.ICMP == 0 {
		t.Errorf("missing protocols in %v", st)
	}
}

// Property: flow assembly conserves packets and bytes — the sums over all
// flows equal the sums over all packets, for arbitrary synthetic traces.
func TestAssembleConservation(t *testing.T) {
	for _, seed := range []uint64{1, 22, 333} {
		pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(25, 400, seed))
		if err != nil {
			t.Fatal(err)
		}
		var pktBytes, pktCount int64
		for _, p := range pkts {
			pktBytes += p.Len
			pktCount++
		}
		flows := Assemble(pkts, 0)
		var flowBytes, flowPkts int64
		for i := range flows {
			flowBytes += flows[i].TotalBytes()
			flowPkts += flows[i].TotalPkts()
		}
		if flowBytes != pktBytes {
			t.Fatalf("seed %d: bytes not conserved: %d vs %d", seed, flowBytes, pktBytes)
		}
		if flowPkts != pktCount {
			t.Fatalf("seed %d: packets not conserved: %d vs %d", seed, flowPkts, pktCount)
		}
	}
}

// Regression: Finish must reset the sweep clock. A reused Assembler whose
// previous trace ended at a high timestamp used to keep that high-water mark
// in lastSweep, silently suppressing every idle sweep of a later trace that
// starts earlier — idle flows then accumulated in the active map until Finish.
func TestAssemblerReuseResetsSweepClock(t *testing.T) {
	const idle = 60 * 1e6
	a := NewAssembler(idle)

	// First trace ends far in the future.
	a.Add(pkt(5000*1e6, hostA, hostB, pcap.IPProtoUDP, 5000, 53, 0, 70))
	if got := len(a.Finish()); got != 1 {
		t.Fatalf("first trace: got %d flows, want 1", got)
	}

	// Second trace restarts near zero. The first tuple goes idle; a later
	// packet on a different tuple must sweep it out of the active set.
	a.Add(pkt(0, hostA, hostB, pcap.IPProtoUDP, 6000, 53, 0, 70))
	a.Add(pkt(200*1e6, hostB, hostA, pcap.IPProtoUDP, 7000, 123, 0, 70))
	if got := len(a.active); got != 1 {
		t.Fatalf("active flows after sweep window = %d, want 1 (idle flow swept)", got)
	}
	if flows := a.Finish(); len(flows) != 2 {
		t.Fatalf("second trace: got %d flows, want 2", len(flows))
	}
}

// Finish must return one canonical order when flows share a start time: the
// 5-tuple tie-break. Without it, map-iteration order leaks into the output —
// many simultaneous flows (a scan, a flood) would come back shuffled run to
// run, breaking replay pacing and the streaming detector's ordering
// contract.
func TestFinishDeterministicOrderOnEqualStarts(t *testing.T) {
	const n = 64
	build := func(perm []int) []Flow {
		a := NewAssembler(0)
		// One UDP packet per flow, all at the same microsecond, fed in the
		// given permutation.
		for _, i := range perm {
			a.Add(pkt(1e6, hostA, hostB, pcap.IPProtoUDP, uint16(10000+i), 53, 0, 100))
		}
		return a.Finish()
	}
	fwd := make([]int, n)
	rev := make([]int, n)
	for i := 0; i < n; i++ {
		fwd[i] = i
		rev[i] = n - 1 - i
	}
	f1 := build(fwd)
	f2 := build(rev)
	if len(f1) != n || len(f2) != n {
		t.Fatalf("flow counts %d, %d, want %d", len(f1), len(f2), n)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("order depends on insertion at index %d: %v vs %v", i, f1[i], f2[i])
		}
		if i > 0 && f1[i].SrcPort <= f1[i-1].SrcPort {
			t.Fatalf("tie-break not canonical at %d: port %d after %d", i, f1[i].SrcPort, f1[i-1].SrcPort)
		}
	}
}
