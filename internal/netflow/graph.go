package netflow

import (
	"fmt"

	"csb/internal/graph"
)

// BuildGraph maps flow records onto a directed property multigraph: each
// distinct host address becomes a vertex (ID assigned in order of first
// appearance, recorded in the graph's address table) and each flow becomes
// an edge from its originator to its responder carrying the Netflow
// attributes. This is the "map Netflow data to a property-graph" step of
// Figure 1.
func BuildGraph(flows []Flow) *graph.Graph {
	ids := make(map[uint32]graph.VertexID, 1024)
	var addrs []uint32
	vertexOf := func(ip uint32) graph.VertexID {
		if v, ok := ids[ip]; ok {
			return v
		}
		v := graph.VertexID(len(addrs))
		ids[ip] = v
		addrs = append(addrs, ip)
		return v
	}
	type rawEdge struct {
		src, dst graph.VertexID
		props    graph.EdgeProps
	}
	raw := make([]rawEdge, len(flows))
	for i := range flows {
		f := &flows[i]
		raw[i] = rawEdge{src: vertexOf(f.SrcIP), dst: vertexOf(f.DstIP), props: f.Props()}
	}
	g := graph.NewWithCapacity(int64(len(addrs)), int64(len(flows)))
	for i, ip := range addrs {
		g.SetAddr(graph.VertexID(i), ip)
	}
	for _, e := range raw {
		g.AddEdge(graph.Edge{Src: e.src, Dst: e.dst, Props: e.props})
	}
	return g
}

// FlowsFromGraph converts property-graph edges back into flow records, using
// the graph's address table when present (vertex IDs otherwise stand in for
// addresses). Flag counters are reconstructed conservatively from the TCP
// state: flows whose state implies a handshake contribute SYN counts, and
// ACK counts are approximated by the packet count. This is the bridge that
// lets the anomaly detector run over synthetic property graphs.
func FlowsFromGraph(g *graph.Graph) []Flow {
	addrOf := func(v graph.VertexID) uint32 {
		if g.HasAddrs() {
			if a := g.Addr(v); a != 0 {
				return a
			}
		}
		return uint32(v) + 1 // synthetic vertices: 1-based pseudo-addresses
	}
	// Stream straight over the graph's columns: each flow is built from the
	// columnar store without materializing an intermediate []Edge copy.
	cols := g.Cols()
	flows := make([]Flow, cols.Len())
	for i := range flows {
		e := cols.Edge(i)
		f := Flow{
			SrcIP: addrOf(e.Src), DstIP: addrOf(e.Dst),
			Protocol: e.Props.Protocol,
			SrcPort:  e.Props.SrcPort, DstPort: e.Props.DstPort,
			StartMicros: 0, EndMicros: e.Props.Duration * 1000,
			OutBytes: e.Props.OutBytes, InBytes: e.Props.InBytes,
			OutPkts: e.Props.OutPkts, InPkts: e.Props.InPkts,
			State: e.Props.State,
		}
		if f.Protocol == graph.ProtoTCP {
			switch f.State {
			case graph.StateS0, graph.StateSH:
				f.SYNCount = f.OutPkts // unanswered SYN retries
			case graph.StateOTH:
				f.SYNCount = 0
			default:
				f.SYNCount = 2 // SYN + SYN-ACK
			}
			if f.State != graph.StateS0 && f.State != graph.StateSH && f.State != graph.StateOTH {
				ack := f.TotalPkts() - 1
				if ack < 0 {
					ack = 0
				}
				f.ACKCount = ack
			}
		}
		flows[i] = f
	}
	return flows
}

// Stats summarizes a flow set for reporting.
type Stats struct {
	Flows     int
	Hosts     int
	TCP       int
	UDP       int
	ICMP      int
	Bytes     int64
	Packets   int64
	StartsMin int64
	EndsMax   int64
}

// Summarize computes aggregate statistics of a flow set.
func Summarize(flows []Flow) Stats {
	s := Stats{Flows: len(flows)}
	hosts := make(map[uint32]struct{}, 1024)
	for i := range flows {
		f := &flows[i]
		hosts[f.SrcIP] = struct{}{}
		hosts[f.DstIP] = struct{}{}
		switch f.Protocol {
		case graph.ProtoTCP:
			s.TCP++
		case graph.ProtoUDP:
			s.UDP++
		case graph.ProtoICMP:
			s.ICMP++
		}
		s.Bytes += f.TotalBytes()
		s.Packets += f.TotalPkts()
		if s.StartsMin == 0 || f.StartMicros < s.StartsMin {
			s.StartsMin = f.StartMicros
		}
		if f.EndMicros > s.EndsMax {
			s.EndsMax = f.EndMicros
		}
	}
	s.Hosts = len(hosts)
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("flows=%d hosts=%d tcp=%d udp=%d icmp=%d bytes=%d packets=%d",
		s.Flows, s.Hosts, s.TCP, s.UDP, s.ICMP, s.Bytes, s.Packets)
}
