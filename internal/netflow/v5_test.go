package netflow

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"csb/internal/graph"
	"csb/internal/pcap"
)

func TestV5RoundTripUniflows(t *testing.T) {
	in := sampleFlows()
	var buf bytes.Buffer
	if err := WriteV5(&buf, in); err != nil {
		t.Fatalf("WriteV5: %v", err)
	}
	unis, err := ReadV5(&buf)
	if err != nil {
		t.Fatalf("ReadV5: %v", err)
	}
	// sampleFlows: flow0 bidirectional (2 records), flow1 unidirectional,
	// flow2 unidirectional.
	if len(unis) != 4 {
		t.Fatalf("uniflows = %d, want 4", len(unis))
	}
	u := unis[0]
	if u.SrcIP != hostA || u.DstIP != hostB || u.SrcPort != 40000 || u.DstPort != 80 {
		t.Fatalf("uniflow 0 wrong: %+v", u)
	}
	if u.Packets != 5 || u.Octets != 660 {
		t.Fatalf("uniflow 0 counters: %+v", u)
	}
	if u.Protocol != pcap.IPProtoTCP {
		t.Fatalf("uniflow 0 protocol %d", u.Protocol)
	}
	// Timestamps survive with millisecond resolution.
	if u.FirstMicros != 0 || u.LastMicros != 7000 {
		t.Fatalf("uniflow 0 times: %d..%d", u.FirstMicros, u.LastMicros)
	}
}

func TestV5PairRoundTrip(t *testing.T) {
	in := sampleFlows()
	var buf bytes.Buffer
	if err := WriteV5(&buf, in); err != nil {
		t.Fatal(err)
	}
	unis, err := ReadV5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	flows := PairUniflows(unis)
	if len(flows) != len(in) {
		t.Fatalf("paired %d flows, want %d", len(flows), len(in))
	}
	for i := range in {
		got, want := flows[i], in[i]
		if got.SrcIP != want.SrcIP || got.DstIP != want.DstIP {
			t.Errorf("flow %d endpoints: %+v vs %+v", i, got, want)
		}
		if got.OutBytes != want.OutBytes || got.InBytes != want.InBytes {
			t.Errorf("flow %d bytes: %d/%d vs %d/%d", i, got.OutBytes, got.InBytes, want.OutBytes, want.InBytes)
		}
		if got.OutPkts != want.OutPkts || got.InPkts != want.InPkts {
			t.Errorf("flow %d packets differ", i)
		}
		if got.Protocol != want.Protocol {
			t.Errorf("flow %d protocol differs", i)
		}
	}
	// TCP state approximations: SF flow stays SF, S0 stays S0.
	if flows[0].State != graph.StateSF {
		t.Errorf("flow 0 state %v, want SF", flows[0].State)
	}
	if flows[2].State != graph.StateS0 {
		t.Errorf("flow 2 state %v, want S0", flows[2].State)
	}
}

func TestV5EmptyMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteV5(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty export = %d bytes, want header only", buf.Len())
	}
	unis, err := ReadV5(&buf)
	if err != nil || len(unis) != 0 {
		t.Fatalf("empty read: %v, %d records", err, len(unis))
	}
}

func TestV5MessageSplitting(t *testing.T) {
	// 40 unidirectional flows need two v5 messages (30 max each).
	var flows []Flow
	for i := 0; i < 40; i++ {
		flows = append(flows, Flow{
			SrcIP: hostA, DstIP: hostB, Protocol: graph.ProtoUDP,
			SrcPort: uint16(1000 + i), DstPort: 53,
			StartMicros: int64(i) * 1000, EndMicros: int64(i)*1000 + 500,
			OutPkts: 1, OutBytes: 100,
		})
	}
	var buf bytes.Buffer
	if err := WriteV5(&buf, flows); err != nil {
		t.Fatal(err)
	}
	wantLen := 2*24 + 40*48
	if buf.Len() != wantLen {
		t.Fatalf("export = %d bytes, want %d (2 messages)", buf.Len(), wantLen)
	}
	unis, err := ReadV5(&buf)
	if err != nil || len(unis) != 40 {
		t.Fatalf("read: %v, %d records", err, len(unis))
	}
	if got := PairUniflows(unis); len(got) != 40 {
		t.Fatalf("paired = %d flows", len(got))
	}
}

func TestV5ReadRejectsGarbage(t *testing.T) {
	if _, err := ReadV5(strings.NewReader("short")); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	binary.BigEndian.PutUint16(bad[0:2], 9)
	if _, err := ReadV5(bytes.NewReader(bad)); err == nil {
		t.Error("version 9 accepted")
	}
	// Valid header claiming a record that is not there.
	binary.BigEndian.PutUint16(bad[0:2], 5)
	binary.BigEndian.PutUint16(bad[2:4], 1)
	if _, err := ReadV5(bytes.NewReader(bad)); err == nil {
		t.Error("truncated record accepted")
	}
	// Record count over the v5 maximum.
	binary.BigEndian.PutUint16(bad[2:4], 31)
	if _, err := ReadV5(bytes.NewReader(bad)); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestV5CounterClamping(t *testing.T) {
	f := Flow{
		SrcIP: hostA, DstIP: hostB, Protocol: graph.ProtoUDP,
		OutPkts: 1 << 40, OutBytes: -5,
	}
	var buf bytes.Buffer
	if err := WriteV5(&buf, []Flow{f}); err != nil {
		t.Fatal(err)
	}
	unis, err := ReadV5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if unis[0].Packets != 0xffffffff {
		t.Errorf("packets not clamped: %d", unis[0].Packets)
	}
	if unis[0].Octets != 0 {
		t.Errorf("negative octets not clamped: %d", unis[0].Octets)
	}
}

func TestV5EndToEndWithAssembler(t *testing.T) {
	// PCAP -> flows -> v5 -> flows: sizes and totals survive.
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(20, 300, 31))
	if err != nil {
		t.Fatal(err)
	}
	in := Assemble(pkts, 0)
	var buf bytes.Buffer
	if err := WriteV5(&buf, in); err != nil {
		t.Fatal(err)
	}
	unis, err := ReadV5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := PairUniflows(unis)
	// v5 has no flow boundaries: distinct flows on one 5-tuple within the
	// idle window merge back. Tolerate a handful of such merges.
	if len(out) > len(in) || len(in)-len(out) > 5 {
		t.Fatalf("flows: %d out vs %d in", len(out), len(in))
	}
	sIn, sOut := Summarize(in), Summarize(out)
	if sIn.Bytes != sOut.Bytes || sIn.Packets != sOut.Packets {
		t.Fatalf("totals differ: %v vs %v", sIn, sOut)
	}
}
