// Package netflow converts packet captures into Netflow-style flow records
// and maps flow records onto the property graph of Section III: hosts become
// vertices, TCP connections and UDP streams become edges carrying the
// Netflow attributes (protocol, ports, duration, bytes, packets, state).
//
// The packet -> flow conversion mirrors what the paper obtains from Bro IDS:
// bidirectional 5-tuple aggregation with an idle timeout and a Bro-style TCP
// connection state machine.
package netflow

import (
	"csb/internal/graph"
	"csb/internal/pcap"
)

// Flow is one Netflow record: a TCP connection, UDP stream or ICMP exchange
// between an originator (Src) and a responder (Dst).
type Flow struct {
	SrcIP    uint32 // originator address, host byte order
	DstIP    uint32 // responder address
	Protocol graph.Protocol
	SrcPort  uint16
	DstPort  uint16

	StartMicros int64 // first packet timestamp
	EndMicros   int64 // last packet timestamp

	OutBytes int64 // bytes originator -> responder
	InBytes  int64 // bytes responder -> originator
	OutPkts  int64 // packets originator -> responder
	InPkts   int64 // packets responder -> originator

	State graph.TCPState // Bro-style state, TCP only

	// Flag counters used by the anomaly-detection approach (Table I).
	SYNCount int64 // packets carrying SYN
	ACKCount int64 // packets carrying ACK
}

// DurationMs returns the flow duration in milliseconds, the DURATION
// property-graph attribute.
func (f *Flow) DurationMs() int64 {
	d := (f.EndMicros - f.StartMicros) / 1000
	if d < 0 {
		return 0
	}
	return d
}

// TotalBytes returns bytes in both directions.
func (f *Flow) TotalBytes() int64 { return f.OutBytes + f.InBytes }

// TotalPkts returns packets in both directions.
func (f *Flow) TotalPkts() int64 { return f.OutPkts + f.InPkts }

// Props converts the flow's Netflow attributes into edge properties.
func (f *Flow) Props() graph.EdgeProps {
	return graph.EdgeProps{
		Protocol: f.Protocol,
		State:    f.State,
		SrcPort:  f.SrcPort,
		DstPort:  f.DstPort,
		Duration: f.DurationMs(),
		OutBytes: f.OutBytes,
		InBytes:  f.InBytes,
		OutPkts:  f.OutPkts,
		InPkts:   f.InPkts,
	}
}

func protoFromIP(ipProto uint8) graph.Protocol {
	switch ipProto {
	case pcap.IPProtoTCP:
		return graph.ProtoTCP
	case pcap.IPProtoUDP:
		return graph.ProtoUDP
	case pcap.IPProtoICMP:
		return graph.ProtoICMP
	default:
		return graph.ProtoUnknown
	}
}
