package netflow

import (
	"strings"
	"testing"

	"csb/internal/graph"
	"csb/internal/pcap"
)

func sampleFlows() []Flow {
	return []Flow{
		{SrcIP: hostA, DstIP: hostB, Protocol: graph.ProtoTCP, SrcPort: 40000, DstPort: 80,
			StartMicros: 0, EndMicros: 7000, OutBytes: 660, InBytes: 1480, OutPkts: 5, InPkts: 3,
			State: graph.StateSF, SYNCount: 2, ACKCount: 7},
		{SrcIP: hostB, DstIP: hostA, Protocol: graph.ProtoUDP, SrcPort: 53, DstPort: 5000,
			StartMicros: 1000, EndMicros: 2000, OutBytes: 70, InBytes: 0, OutPkts: 1, InPkts: 0},
		{SrcIP: hostA, DstIP: 0x0a000003, Protocol: graph.ProtoTCP, SrcPort: 40001, DstPort: 443,
			StartMicros: 5000, EndMicros: 5000, OutBytes: 40, InBytes: 0, OutPkts: 1, InPkts: 0,
			State: graph.StateS0, SYNCount: 1},
	}
}

func TestBuildGraph(t *testing.T) {
	g := BuildGraph(sampleFlows())
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasAddrs() {
		t.Fatal("graph missing address table")
	}
	// First-appearance order: hostA=0, hostB=1, hostC=2.
	if g.Addr(0) != hostA || g.Addr(1) != hostB || g.Addr(2) != 0x0a000003 {
		t.Fatalf("addresses wrong: %x %x %x", g.Addr(0), g.Addr(1), g.Addr(2))
	}
	e := g.EdgeSlice()[0]
	if e.Src != 0 || e.Dst != 1 {
		t.Errorf("edge 0 endpoints %d->%d, want 0->1", e.Src, e.Dst)
	}
	if e.Props.Duration != 7 || e.Props.OutBytes != 660 || e.Props.State != graph.StateSF {
		t.Errorf("edge 0 props wrong: %+v", e.Props)
	}
}

func TestBuildGraphEmpty(t *testing.T) {
	g := BuildGraph(nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty build: %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestBuildGraphMultiEdges(t *testing.T) {
	flows := []Flow{
		{SrcIP: hostA, DstIP: hostB, Protocol: graph.ProtoTCP},
		{SrcIP: hostA, DstIP: hostB, Protocol: graph.ProtoTCP},
	}
	g := BuildGraph(flows)
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("multi-edge build: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestFlowsFromGraphRoundTrip(t *testing.T) {
	in := sampleFlows()
	g := BuildGraph(in)
	out := FlowsFromGraph(g)
	if len(out) != len(in) {
		t.Fatalf("round trip: %d flows, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].SrcIP != in[i].SrcIP || out[i].DstIP != in[i].DstIP {
			t.Errorf("flow %d endpoints differ", i)
		}
		if out[i].Protocol != in[i].Protocol || out[i].State != in[i].State {
			t.Errorf("flow %d proto/state differ", i)
		}
		if out[i].OutBytes != in[i].OutBytes || out[i].InPkts != in[i].InPkts {
			t.Errorf("flow %d counters differ", i)
		}
		if out[i].DurationMs() != in[i].DurationMs() {
			t.Errorf("flow %d duration %d, want %d", i, out[i].DurationMs(), in[i].DurationMs())
		}
	}
	// SYN reconstruction: SF flow gets 2, S0 flow gets its packet count.
	if out[0].SYNCount != 2 {
		t.Errorf("SF flow SYNCount = %d, want 2", out[0].SYNCount)
	}
	if out[2].SYNCount != 1 {
		t.Errorf("S0 flow SYNCount = %d, want 1 (OutPkts)", out[2].SYNCount)
	}
}

func TestFlowsFromGraphWithoutAddrs(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1, Props: graph.EdgeProps{Protocol: graph.ProtoUDP}})
	flows := FlowsFromGraph(g)
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].SrcIP != 1 || flows[0].DstIP != 2 {
		t.Errorf("pseudo-addresses = %d/%d, want 1/2", flows[0].SrcIP, flows[0].DstIP)
	}
}

func TestSummarizeAndString(t *testing.T) {
	s := Summarize(sampleFlows())
	if s.Flows != 3 || s.Hosts != 3 || s.TCP != 2 || s.UDP != 1 || s.ICMP != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Bytes != 660+1480+70+40 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	if !strings.Contains(s.String(), "flows=3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestDurationNonNegative(t *testing.T) {
	f := Flow{StartMicros: 5000, EndMicros: 1000}
	if f.DurationMs() != 0 {
		t.Fatalf("negative duration not clamped: %d", f.DurationMs())
	}
}

func TestEndToEndTraceToGraph(t *testing.T) {
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(30, 500, 21))
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(Assemble(pkts, 0))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30 {
		t.Errorf("vertices = %d, want 30", g.NumVertices())
	}
	if g.NumEdges() < 450 {
		t.Errorf("edges = %d, want ~500", g.NumEdges())
	}
	// Every edge must carry plausible Netflow properties.
	for _, e := range g.EdgeSlice() {
		if e.Props.Protocol == graph.ProtoUnknown {
			t.Fatal("edge with unknown protocol")
		}
		if e.Props.OutPkts == 0 && e.Props.InPkts == 0 {
			t.Fatal("edge with no packets")
		}
	}
}
