package netflow

import (
	"io"
	"testing"

	"csb/internal/graph"
)

// benchFlows builds a deterministic flow set for writer benchmarks.
func benchFlows(n int) []Flow {
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{
			SrcIP: 0x0a000001 + uint32(i%250), DstIP: 0x0a000101 + uint32(i%200),
			SrcPort: uint16(1024 + i%40000), DstPort: uint16(1 + i%1000),
			Protocol: graph.ProtoTCP, State: graph.StateSF,
			StartMicros: int64(i) * 1000, EndMicros: int64(i)*1000 + 500,
			OutBytes: int64(100 + i%1400), InBytes: int64(40 + i%400),
			OutPkts: int64(1 + i%10), InPkts: int64(1 + i%8),
			SYNCount: 1, ACKCount: 2,
		}
	}
	return flows
}

func BenchmarkWriteCSV(b *testing.B) {
	flows := benchFlows(20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteCSV(io.Discard, flows); err != nil {
			b.Fatal(err)
		}
	}
}
