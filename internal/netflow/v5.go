package netflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"csb/internal/graph"
	"csb/internal/pcap"
)

// NetFlow v5 export format (the Cisco on-the-wire format the paper's data
// model derives from). A v5 record is unidirectional; WriteV5 splits each
// bidirectional Flow into an originator->responder record and, when reply
// traffic exists, a responder->originator record. ReadV5 parses records and
// PairUniflows reassembles bidirectional Flows.
//
// Layout (RFC-less but standardized by Cisco):
//
//	header (24 bytes): version, count, sysUptime, unixSecs, unixNsecs,
//	                   flowSequence, engineType, engineID, sampling
//	record (48 bytes): srcaddr, dstaddr, nexthop, input, output, dPkts,
//	                   dOctets, first, last, srcport, dstport, pad, tcpFlags,
//	                   prot, tos, srcAS, dstAS, srcMask, dstMask, pad
const (
	v5Version       = 5
	v5HeaderLen     = 24
	v5RecordLen     = 48
	v5MaxPerMessage = 30
)

// Uniflow is one unidirectional NetFlow v5 record in decoded form.
type Uniflow struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Protocol         uint8 // IP protocol number
	TCPFlags         uint8
	Packets, Octets  uint32
	FirstMicros      int64 // absolute time reconstructed from the header
	LastMicros       int64
}

// protoNumber maps the graph protocol to the IP protocol number.
func protoNumber(p graph.Protocol) uint8 {
	switch p {
	case graph.ProtoTCP:
		return pcap.IPProtoTCP
	case graph.ProtoUDP:
		return pcap.IPProtoUDP
	case graph.ProtoICMP:
		return pcap.IPProtoICMP
	default:
		return 0
	}
}

// v5Flags reconstructs a cumulative TCP flag byte from the connection state.
func v5Flags(f *Flow) uint8 {
	if f.Protocol != graph.ProtoTCP {
		return 0
	}
	var fl uint8
	if f.SYNCount > 0 {
		fl |= uint8(pcap.FlagSYN)
	}
	if f.ACKCount > 0 {
		fl |= uint8(pcap.FlagACK)
	}
	switch f.State {
	case graph.StateSF, graph.StateSH:
		fl |= uint8(pcap.FlagFIN)
	case graph.StateREJ, graph.StateRSTO, graph.StateRSTR:
		fl |= uint8(pcap.FlagRST)
	}
	return fl
}

// WriteV5 serializes flows as NetFlow v5 export messages. Each Flow emits
// one record for the originator direction and one for the responder
// direction when reply packets exist. Timestamps are encoded relative to
// the earliest flow start (the v5 sysUptime convention).
func WriteV5(w io.Writer, flows []Flow) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	// Base time: earliest start, carried in the header's unix seconds.
	var base int64
	for i := range flows {
		if i == 0 || flows[i].StartMicros < base {
			base = flows[i].StartMicros
		}
	}
	var unis []Uniflow
	for i := range flows {
		f := &flows[i]
		if f.OutPkts > 0 || f.InPkts == 0 {
			unis = append(unis, Uniflow{
				SrcIP: f.SrcIP, DstIP: f.DstIP,
				SrcPort: f.SrcPort, DstPort: f.DstPort,
				Protocol: protoNumber(f.Protocol), TCPFlags: v5Flags(f),
				Packets: clampU32(f.OutPkts), Octets: clampU32(f.OutBytes),
				FirstMicros: f.StartMicros, LastMicros: f.EndMicros,
			})
		}
		if f.InPkts > 0 {
			unis = append(unis, Uniflow{
				SrcIP: f.DstIP, DstIP: f.SrcIP,
				SrcPort: f.DstPort, DstPort: f.SrcPort,
				Protocol: protoNumber(f.Protocol), TCPFlags: v5Flags(f),
				Packets: clampU32(f.InPkts), Octets: clampU32(f.InBytes),
				FirstMicros: f.StartMicros, LastMicros: f.EndMicros,
			})
		}
	}
	var seq uint32
	for off := 0; off < len(unis); off += v5MaxPerMessage {
		end := off + v5MaxPerMessage
		if end > len(unis) {
			end = len(unis)
		}
		if err := writeV5Message(bw, unis[off:end], base, seq); err != nil {
			return err
		}
		seq += uint32(end - off)
	}
	if len(unis) == 0 {
		if err := writeV5Message(bw, nil, base, 0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func clampU32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint32(v)
}

func writeV5Message(w io.Writer, unis []Uniflow, baseMicros int64, seq uint32) error {
	var hdr [v5HeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], v5Version)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(unis)))
	// sysUptime 0 at base time; unixSecs/unixNsecs give the absolute base.
	binary.BigEndian.PutUint32(hdr[4:8], 0)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(baseMicros/1e6))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(baseMicros%1e6)*1000)
	binary.BigEndian.PutUint32(hdr[16:20], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [v5RecordLen]byte
	for i := range unis {
		u := &unis[i]
		for j := range rec {
			rec[j] = 0
		}
		binary.BigEndian.PutUint32(rec[0:4], u.SrcIP)
		binary.BigEndian.PutUint32(rec[4:8], u.DstIP)
		binary.BigEndian.PutUint32(rec[16:20], u.Packets)
		binary.BigEndian.PutUint32(rec[20:24], u.Octets)
		binary.BigEndian.PutUint32(rec[24:28], uint32((u.FirstMicros-baseMicros)/1000))
		binary.BigEndian.PutUint32(rec[28:32], uint32((u.LastMicros-baseMicros)/1000))
		binary.BigEndian.PutUint16(rec[32:34], u.SrcPort)
		binary.BigEndian.PutUint16(rec[34:36], u.DstPort)
		rec[37] = u.TCPFlags
		rec[38] = u.Protocol
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadV5 parses NetFlow v5 export messages until EOF, returning the decoded
// unidirectional records.
func ReadV5(r io.Reader) ([]Uniflow, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []Uniflow
	for msg := 0; ; msg++ {
		var hdr [v5HeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("netflow: v5 message %d header: %w", msg, err)
		}
		if v := binary.BigEndian.Uint16(hdr[0:2]); v != v5Version {
			return nil, fmt.Errorf("netflow: v5 message %d has version %d", msg, v)
		}
		count := binary.BigEndian.Uint16(hdr[2:4])
		if count > v5MaxPerMessage {
			return nil, fmt.Errorf("netflow: v5 message %d claims %d records", msg, count)
		}
		uptime := int64(binary.BigEndian.Uint32(hdr[4:8]))
		secs := int64(binary.BigEndian.Uint32(hdr[8:12]))
		nsecs := int64(binary.BigEndian.Uint32(hdr[12:16]))
		// Absolute time of sysUptime 0.
		base := secs*1e6 + nsecs/1000 - uptime*1000
		var rec [v5RecordLen]byte
		for i := 0; i < int(count); i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("netflow: v5 message %d record %d: %w", msg, i, err)
			}
			out = append(out, Uniflow{
				SrcIP:       binary.BigEndian.Uint32(rec[0:4]),
				DstIP:       binary.BigEndian.Uint32(rec[4:8]),
				Packets:     binary.BigEndian.Uint32(rec[16:20]),
				Octets:      binary.BigEndian.Uint32(rec[20:24]),
				FirstMicros: base + int64(binary.BigEndian.Uint32(rec[24:28]))*1000,
				LastMicros:  base + int64(binary.BigEndian.Uint32(rec[28:32]))*1000,
				SrcPort:     binary.BigEndian.Uint16(rec[32:34]),
				DstPort:     binary.BigEndian.Uint16(rec[34:36]),
				TCPFlags:    rec[37],
				Protocol:    rec[38],
			})
		}
	}
}

// PairUniflows reassembles bidirectional Flows from unidirectional v5
// records: records with mirrored 5-tuples merge, the earlier-starting side
// becoming the originator. A record on a known tuple starting more than the
// idle timeout after that flow ended opens a new flow (v5 carries no flow
// boundaries; this is the standard collector heuristic). TCP state is
// approximated from the cumulative flags (v5 has no state machine).
func PairUniflows(unis []Uniflow) []Flow {
	type key struct {
		a, b         uint32
		aPort, bPort uint16
		proto        uint8
	}
	fwd := make(map[key]int, len(unis)) // key -> index into flows
	var flows []Flow
	for i := range unis {
		u := &unis[i]
		k := key{a: u.SrcIP, b: u.DstIP, aPort: u.SrcPort, bPort: u.DstPort, proto: u.Protocol}
		rk := key{a: u.DstIP, b: u.SrcIP, aPort: u.DstPort, bPort: u.SrcPort, proto: u.Protocol}
		if fi, ok := fwd[rk]; ok && u.FirstMicros <= flows[fi].EndMicros+DefaultIdleTimeoutMicros {
			// Reply direction of an existing flow.
			f := &flows[fi]
			f.InPkts += int64(u.Packets)
			f.InBytes += int64(u.Octets)
			if u.LastMicros > f.EndMicros {
				f.EndMicros = u.LastMicros
			}
			if u.FirstMicros < f.StartMicros {
				f.StartMicros = u.FirstMicros
			}
			continue
		}
		if fi, ok := fwd[k]; ok && u.FirstMicros <= flows[fi].EndMicros+DefaultIdleTimeoutMicros {
			// Same direction seen again (multi-message split): accumulate.
			f := &flows[fi]
			f.OutPkts += int64(u.Packets)
			f.OutBytes += int64(u.Octets)
			if u.LastMicros > f.EndMicros {
				f.EndMicros = u.LastMicros
			}
			continue
		}
		f := Flow{
			SrcIP: u.SrcIP, DstIP: u.DstIP,
			Protocol: protoFromIP(u.Protocol),
			SrcPort:  u.SrcPort, DstPort: u.DstPort,
			StartMicros: u.FirstMicros, EndMicros: u.LastMicros,
			OutPkts: int64(u.Packets), OutBytes: int64(u.Octets),
		}
		if f.Protocol == graph.ProtoTCP {
			fl := pcap.TCPFlags(u.TCPFlags)
			switch {
			case fl.Has(pcap.FlagRST):
				f.State = graph.StateRSTO
			case fl.Has(pcap.FlagSYN | pcap.FlagFIN | pcap.FlagACK):
				f.State = graph.StateSF
			case fl.Has(pcap.FlagSYN) && !fl.Has(pcap.FlagACK):
				f.State = graph.StateS0
			case fl.Has(pcap.FlagSYN):
				f.State = graph.StateS1
			default:
				f.State = graph.StateOTH
			}
			if fl.Has(pcap.FlagSYN) {
				f.SYNCount = 1
			}
			if fl.Has(pcap.FlagACK) {
				f.ACKCount = 1
			}
		}
		fwd[k] = len(flows)
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })
	return flows
}
