package netflow

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	in := sampleFlows()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip: %d flows, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("flow %d mismatch:\n in %+v\nout %+v", i, in[i], out[i])
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d flows from empty CSV", len(out))
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	bad := "a,b,c,d,e,f,g,h,i,j,k,l,m,n\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted wrong header")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestReadCSVRejectsBadFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleFlows()[:1]); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := []struct{ from, to string }{
		{"tcp", "sctp"},
		{"SF", "XX"},
		{"10.0.0.1", "10.0.0"},
		{"660", "sixsixty"},
	}
	for _, c := range cases {
		bad := strings.Replace(good, c.from, c.to, 1)
		if bad == good {
			t.Fatalf("replacement %q not found", c.from)
		}
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted corrupted field %q -> %q", c.from, c.to)
		}
	}
}

func TestParseIPv4Range(t *testing.T) {
	if _, err := parseIPv4("300.1.1.1", nil); err == nil {
		t.Fatal("accepted octet > 255")
	}
	v, err := parseIPv4("10.0.0.1", nil)
	if err != nil || v != 0x0a000001 {
		t.Fatalf("parseIPv4 = %x, %v", v, err)
	}
}
