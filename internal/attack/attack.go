// Package attack synthesizes labeled attack traffic at the Netflow level:
// the scanning and flooding behaviours Section IV's detector targets, with
// ground-truth labels so detection quality can be measured and thresholds
// tuned. Each injector mirrors the traffic characterization in the paper
// (small probe packets for scans, small unanswered SYNs for SYN floods,
// high-bandwidth many-packet flows for floods, many sources for DDoS).
package attack

import (
	"math/rand/v2"
	"sort"

	"csb/internal/graph"
	"csb/internal/ids"
	"csb/internal/netflow"
)

// Label is the ground truth for one injected attack.
type Label struct {
	Type     ids.AttackType
	Attacker uint32 // zero for DDoS (many attackers)
	Victim   uint32 // zero for network scans (many victims)
}

// BackgroundFlow marks a flow that belongs to no attack in
// Scenario.FlowAttack.
const BackgroundFlow = int32(-1)

// Scenario is a traffic mix: background flows plus injected attacks with
// their labels. FlowAttack carries the per-flow ground truth: FlowAttack[i]
// is the index into Labels of the attack flow i belongs to, or
// BackgroundFlow (-1) for background traffic. It stays index-aligned with
// Flows through injection and through Finish's canonical re-sort, which is
// what lets labels survive serialization (internal/scenario's CSBL1 section)
// and replay.
type Scenario struct {
	Flows      []netflow.Flow
	Labels     []Label
	FlowAttack []int32
}

// NewScenario starts a scenario from background traffic.
func NewScenario(background []netflow.Flow) *Scenario {
	s := &Scenario{Flows: append([]netflow.Flow(nil), background...)}
	s.pad()
	return s
}

// pad extends FlowAttack with BackgroundFlow up to len(Flows), so scenarios
// constructed by hand (pre-FlowAttack callers) keep working.
func (s *Scenario) pad() {
	for len(s.FlowAttack) < len(s.Flows) {
		s.FlowAttack = append(s.FlowAttack, BackgroundFlow)
	}
}

// label appends l to Labels and tags every flow from index `from` on as
// belonging to it. Injectors call it after appending their flows.
func (s *Scenario) label(l Label, from int) {
	s.pad()
	idx := int32(len(s.Labels))
	s.Labels = append(s.Labels, l)
	for i := from; i < len(s.FlowAttack); i++ {
		s.FlowAttack[i] = idx
	}
}

// Finish sorts the mixed timeline into the canonical flow order — the same
// StartMicros + stable 5-tuple ordering Assembler.Finish emits — keeping
// FlowAttack aligned with Flows through the permutation. The injectors
// append attack flows after the background, so without Finish a mixed
// scenario is not in start-time order and a replay pacer or the
// StreamDetector's reorder horizon rejects the out-of-order attack flows as
// *LateFlowError, silently deflating recall. Call once after the last
// injection; it is idempotent.
func (s *Scenario) Finish() {
	s.pad()
	idx := make([]int, len(s.Flows))
	for i := range idx {
		idx[i] = i
	}
	// Stable on the original index so fully-identical records (possible in
	// floods) keep one deterministic order.
	sort.SliceStable(idx, func(i, j int) bool {
		return netflow.FlowLess(&s.Flows[idx[i]], &s.Flows[idx[j]])
	})
	flows := make([]netflow.Flow, len(s.Flows))
	fa := make([]int32, len(s.Flows))
	for i, j := range idx {
		flows[i] = s.Flows[j]
		fa[i] = s.FlowAttack[j]
	}
	s.Flows, s.FlowAttack = flows, fa
}

// probeFlow builds one small scan probe: a 40-byte SYN answered by nothing
// or a reject.
func probeFlow(rng *rand.Rand, attacker, victim uint32, port uint16, ts int64) netflow.Flow {
	f := netflow.Flow{
		SrcIP: attacker, DstIP: victim,
		Protocol: graph.ProtoTCP,
		SrcPort:  uint16(32768 + rng.IntN(28000)), DstPort: port,
		StartMicros: ts, EndMicros: ts + 1000,
		OutBytes: 40, OutPkts: 1,
		SYNCount: 1,
	}
	if rng.Float64() < 0.3 { // closed port answered by RST
		f.State = graph.StateREJ
		f.InBytes, f.InPkts = 40, 1
	} else {
		f.State = graph.StateS0
	}
	return f
}

// MaxScanPorts is the largest host-scan width: every TCP port once.
const MaxScanPorts = 65535

// InjectHostScan adds a vertical port scan: attacker probes nPorts distinct
// ports of victim. nPorts is clamped to MaxScanPorts — ports are derived as
// 1..nPorts, and a wider scan would wrap uint16 into duplicate probes of the
// same ports plus the reserved port 0.
func (s *Scenario) InjectHostScan(rng *rand.Rand, attacker, victim uint32, nPorts int, startMicros int64) {
	if nPorts > MaxScanPorts {
		nPorts = MaxScanPorts
	}
	from := len(s.Flows)
	for i := 0; i < nPorts; i++ {
		s.Flows = append(s.Flows, probeFlow(rng, attacker, victim, uint16(i+1), startMicros+int64(i)*1000))
	}
	s.label(Label{Type: ids.AttackHostScan, Attacker: attacker, Victim: victim}, from)
}

// InjectNetworkScan adds a horizontal scan: attacker probes one port across
// nHosts victims (victims get addresses base+1 .. base+nHosts).
func (s *Scenario) InjectNetworkScan(rng *rand.Rand, attacker uint32, victimBase uint32, nHosts int, port uint16, startMicros int64) {
	from := len(s.Flows)
	for i := 0; i < nHosts; i++ {
		s.Flows = append(s.Flows, probeFlow(rng, attacker, victimBase+uint32(i+1), port, startMicros+int64(i)*1000))
	}
	s.label(Label{Type: ids.AttackNetworkScan, Attacker: attacker}, from)
}

// InjectSYNFlood adds a TCP SYN flood: nFlows unanswered SYN flows from
// spoofed sources against one port of the victim.
func (s *Scenario) InjectSYNFlood(rng *rand.Rand, victim uint32, port uint16, nFlows int, startMicros int64) {
	from := len(s.Flows)
	for i := 0; i < nFlows; i++ {
		src := 0xc0000000 | rng.Uint32()&0x00ffffff // spoofed 192.x pool
		f := netflow.Flow{
			SrcIP: src, DstIP: victim,
			Protocol: graph.ProtoTCP,
			SrcPort:  uint16(1024 + rng.IntN(60000)), DstPort: port,
			StartMicros: startMicros + int64(i)*100, EndMicros: startMicros + int64(i)*100 + 500,
			OutBytes: 40, OutPkts: 1,
			State:    graph.StateS0,
			SYNCount: 1,
		}
		s.Flows = append(s.Flows, f)
	}
	s.label(Label{Type: ids.AttackSYNFlood, Victim: victim}, from)
}

// InjectFlood adds a bandwidth flood (UDP by default): nFlows bulky flows
// from one attacker to the victim.
func (s *Scenario) InjectFlood(rng *rand.Rand, attacker, victim uint32, proto graph.Protocol, nFlows int, startMicros int64) {
	from := len(s.Flows)
	for i := 0; i < nFlows; i++ {
		bytes := int64(500_000 + rng.Int64N(1_000_000))
		pkts := bytes / 1000
		f := netflow.Flow{
			SrcIP: attacker, DstIP: victim,
			Protocol: proto,
			SrcPort:  uint16(1024 + rng.IntN(60000)), DstPort: 80,
			StartMicros: startMicros + int64(i)*1000, EndMicros: startMicros + int64(i)*1000 + 5_000_000,
			OutBytes: bytes, OutPkts: pkts,
		}
		if proto == graph.ProtoTCP {
			f.State = graph.StateS1
			f.SYNCount, f.ACKCount = 2, pkts
		}
		s.Flows = append(s.Flows, f)
	}
	s.label(Label{Type: ids.AttackFlood, Attacker: attacker, Victim: victim}, from)
}

// InjectDDoS adds a distributed flood: nSources attackers each send bulky
// flows at the victim.
func (s *Scenario) InjectDDoS(rng *rand.Rand, victim uint32, nSources, flowsPerSource int, startMicros int64) {
	from := len(s.Flows)
	for src := 0; src < nSources; src++ {
		attacker := 0xd0000000 | uint32(src+1)
		for i := 0; i < flowsPerSource; i++ {
			bytes := int64(200_000 + rng.Int64N(400_000))
			s.Flows = append(s.Flows, netflow.Flow{
				SrcIP: attacker, DstIP: victim,
				Protocol: graph.ProtoUDP,
				SrcPort:  uint16(1024 + rng.IntN(60000)), DstPort: 53,
				StartMicros: startMicros + int64(i)*1000, EndMicros: startMicros + int64(i)*1000 + 2_000_000,
				OutBytes: bytes, OutPkts: bytes / 800,
			})
		}
	}
	s.label(Label{Type: ids.AttackDDoS, Victim: victim}, from)
}

// Outcome scores a detection run against the scenario's ground truth.
type Outcome struct {
	TruePositives  int // labels matched by an alert of the right type and IP
	FalseNegatives int // labels with no matching alert
	FalsePositives int // alerts matching no label
}

// Precision returns TP / (TP + FP), or 1 when nothing was reported.
func (o Outcome) Precision() float64 {
	if o.TruePositives+o.FalsePositives == 0 {
		return 1
	}
	return float64(o.TruePositives) / float64(o.TruePositives+o.FalsePositives)
}

// Recall returns TP / (TP + FN), or 1 when nothing was labeled.
func (o Outcome) Recall() float64 {
	if o.TruePositives+o.FalseNegatives == 0 {
		return 1
	}
	return float64(o.TruePositives) / float64(o.TruePositives+o.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (o Outcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Score matches alerts against the scenario labels. An alert matches a label
// when the types agree and the alert's detection IP equals the label's
// victim (destination-based alerts) or attacker (source-based alerts).
func (s *Scenario) Score(alerts []ids.Alert) Outcome {
	matched := make([]bool, len(s.Labels))
	usedAlert := make([]bool, len(alerts))
	for li, l := range s.Labels {
		for ai := range alerts {
			if usedAlert[ai] || alerts[ai].Type != l.Type {
				continue
			}
			a := &alerts[ai]
			var ok bool
			if a.ByDst {
				ok = l.Victim != 0 && a.IP == l.Victim
			} else {
				ok = l.Attacker != 0 && a.IP == l.Attacker
			}
			if ok {
				matched[li] = true
				usedAlert[ai] = true
				break
			}
		}
	}
	var out Outcome
	for _, m := range matched {
		if m {
			out.TruePositives++
		} else {
			out.FalseNegatives++
		}
	}
	for _, u := range usedAlert {
		if !u {
			out.FalsePositives++
		}
	}
	return out
}
