package attack

import (
	"math/rand/v2"
	"testing"

	"csb/internal/graph"
	"csb/internal/ids"
	"csb/internal/netflow"
	"csb/internal/pcap"
	"csb/internal/pso"
)

func background(t testing.TB, seed uint64) []netflow.Flow {
	t.Helper()
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(40, 600, seed))
	if err != nil {
		t.Fatal(err)
	}
	return netflow.Assemble(pkts, 0)
}

func fullScenario(t testing.TB, seed uint64) *Scenario {
	t.Helper()
	s := NewScenario(background(t, seed))
	rng := rand.New(rand.NewPCG(seed, 0xa77))
	base := int64(1318204800) * 1e6
	s.InjectHostScan(rng, 0xbad00001, pcap.HostIP(2), 1500, base)
	s.InjectNetworkScan(rng, 0xbad00002, 0x0a010000, 150, 22, base)
	s.InjectSYNFlood(rng, pcap.HostIP(4), 80, 2500, base)
	s.InjectFlood(rng, 0xbad00003, pcap.HostIP(6), graph.ProtoUDP, 10, base)
	s.InjectDDoS(rng, pcap.HostIP(8), 80, 3, base)
	return s
}

func TestInjectorsAddLabeledFlows(t *testing.T) {
	s := NewScenario(nil)
	rng := rand.New(rand.NewPCG(1, 1))
	s.InjectHostScan(rng, 1, 2, 50, 0)
	if len(s.Labels) != 1 || s.Labels[0].Type != ids.AttackHostScan {
		t.Fatalf("labels = %+v", s.Labels)
	}
	if len(s.Flows) != 50 {
		t.Fatalf("flows = %d, want 50", len(s.Flows))
	}
	// Scan probes are small TCP flows against distinct ports.
	ports := map[uint16]bool{}
	for _, f := range s.Flows {
		if f.Protocol != graph.ProtoTCP || f.OutBytes != 40 {
			t.Fatalf("probe flow wrong: %+v", f)
		}
		ports[f.DstPort] = true
	}
	if len(ports) != 50 {
		t.Fatalf("distinct ports = %d, want 50", len(ports))
	}
}

func TestInjectSYNFloodShape(t *testing.T) {
	s := NewScenario(nil)
	rng := rand.New(rand.NewPCG(2, 2))
	s.InjectSYNFlood(rng, 9, 80, 100, 0)
	srcs := map[uint32]bool{}
	for _, f := range s.Flows {
		if f.State != graph.StateS0 || f.SYNCount != 1 || f.DstPort != 80 {
			t.Fatalf("SYN flood flow wrong: %+v", f)
		}
		srcs[f.SrcIP] = true
	}
	if len(srcs) < 50 {
		t.Fatalf("spoofed sources = %d, want many", len(srcs))
	}
}

func TestInjectDDoSManySources(t *testing.T) {
	s := NewScenario(nil)
	rng := rand.New(rand.NewPCG(3, 3))
	s.InjectDDoS(rng, 9, 25, 4, 0)
	if len(s.Flows) != 100 {
		t.Fatalf("flows = %d, want 100", len(s.Flows))
	}
	srcs := map[uint32]bool{}
	for _, f := range s.Flows {
		srcs[f.SrcIP] = true
	}
	if len(srcs) != 25 {
		t.Fatalf("sources = %d, want 25", len(srcs))
	}
}

func TestScenarioDetectionEndToEnd(t *testing.T) {
	s := fullScenario(t, 5)
	// Thresholds trained on attack-free traffic from the same network, as
	// the paper prescribes.
	det := ids.NewDetector(ids.TrainThresholds(background(t, 99), 0.99, 2))
	out := s.Score(det.Detect(s.Flows))
	if out.Recall() < 0.8 {
		t.Fatalf("recall = %g (%+v), want >= 0.8", out.Recall(), out)
	}
	if out.Precision() < 0.5 {
		t.Fatalf("precision = %g (%+v)", out.Precision(), out)
	}
}

func TestScoreCountsFalsePositivesAndNegatives(t *testing.T) {
	s := NewScenario(nil)
	s.Labels = append(s.Labels, Label{Type: ids.AttackHostScan, Victim: 7})
	alerts := []ids.Alert{
		{Type: ids.AttackHostScan, IP: 7, ByDst: true}, // match
		{Type: ids.AttackFlood, IP: 9, ByDst: true},    // FP
		{Type: ids.AttackHostScan, IP: 8, ByDst: true}, // FP (wrong IP)
	}
	out := s.Score(alerts)
	if out.TruePositives != 1 || out.FalsePositives != 2 || out.FalseNegatives != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	// Unmatched label.
	s2 := NewScenario(nil)
	s2.Labels = append(s2.Labels, Label{Type: ids.AttackDDoS, Victim: 3})
	out2 := s2.Score(nil)
	if out2.FalseNegatives != 1 || out2.Recall() != 0 {
		t.Fatalf("outcome = %+v", out2)
	}
}

func TestOutcomeMetrics(t *testing.T) {
	o := Outcome{TruePositives: 3, FalsePositives: 1, FalseNegatives: 1}
	if o.Precision() != 0.75 || o.Recall() != 0.75 {
		t.Fatalf("P/R = %g/%g", o.Precision(), o.Recall())
	}
	if f1 := o.F1(); f1 != 0.75 {
		t.Fatalf("F1 = %g", f1)
	}
	var empty Outcome
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("empty outcome not neutral")
	}
	bad := Outcome{FalseNegatives: 1, FalsePositives: 1}
	if bad.F1() != 0 {
		t.Fatalf("all-wrong F1 = %g", bad.F1())
	}
}

func TestTuneThresholdsImprovesF1(t *testing.T) {
	s := fullScenario(t, 6)
	// Start from deliberately bad thresholds.
	bad := ids.DefaultThresholds()
	bad.NFT = 1
	bad.FSHT = 1000
	detBad := ids.NewDetector(bad)
	before := s.Score(detBad.Detect(s.Flows)).F1()

	tuned, out, err := TuneThresholds(s, bad, pso.Config{Particles: 12, Iterations: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.F1() < before {
		t.Fatalf("tuning degraded F1: %g -> %g", before, out.F1())
	}
	if out.F1() < 0.6 {
		t.Fatalf("tuned F1 = %g, want >= 0.6", out.F1())
	}
	if tuned == bad {
		t.Fatal("thresholds unchanged by tuning")
	}
}
