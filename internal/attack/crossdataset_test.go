// Cross-dataset transfer test for TuneThresholds: thresholds tuned on a
// synthetic-background scenario must not score worse than the untuned
// defaults on a held-out trace-background scenario they never saw. This is
// the property the evaluation harness's utility metric (internal/eval)
// builds on; the external test package lets us drive the scenario compiler
// without an import cycle.
package attack_test

import (
	"testing"

	"csb/internal/attack"
	"csb/internal/core"
	"csb/internal/ids"
	"csb/internal/netflow"
	"csb/internal/pcap"
	"csb/internal/pso"
	"csb/internal/scenario"
)

// crossAttacks is the shared labeled injection mix: one attack per family,
// each on its own victim with staggered starts so the per-IP aggregates stay
// distinguishable.
func crossAttacks() []scenario.Attack {
	return []scenario.Attack{
		{Type: scenario.TypeHostScan, StartMS: 5_000, Count: 1500, Victim: 0x0a000003},
		{Type: scenario.TypeNetworkScan, StartMS: 65_000, Count: 150, Port: 22},
		{Type: scenario.TypeSYNFlood, StartMS: 125_000, Count: 2500, Victim: 0x0a000005, Port: 80},
		{Type: scenario.TypeDDoS, StartMS: 185_000, Count: 80, FlowsPerSource: 3, Victim: 0x0a000009},
	}
}

func TestTuneTransfersAcrossDatasets(t *testing.T) {
	attacks := crossAttacks()

	// Tuning set: flows projected from a synthetically grown graph, with the
	// attack mix injected on top.
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(40, 600, 20171010))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := core.Analyze(netflow.BuildGraph(netflow.Assemble(pkts, 0)))
	if err != nil {
		t.Fatal(err)
	}
	gen := &core.PGSK{Seed: 1}
	g, err := gen.Generate(seed, 5000)
	if err != nil {
		t.Fatal(err)
	}
	flows := netflow.FlowsFromGraph(g)
	scenario.SyntheticTimeline(flows, 1000)
	syn := attack.NewScenario(flows)
	if err := scenario.ApplyAttacks(syn, 1, attacks); err != nil {
		t.Fatal(err)
	}
	syn.Finish()

	// Held-out set: a trace-background scenario on a different seed; the
	// tuner never sees it.
	heldSpec := &scenario.Spec{
		Seed:       104729,
		Background: scenario.Background{Source: scenario.SourceTrace, Hosts: 40, Sessions: 600},
		Attacks:    attacks,
	}
	if err := heldSpec.Normalize(); err != nil {
		t.Fatal(err)
	}
	held, err := scenario.Compile(heldSpec, nil)
	if err != nil {
		t.Fatal(err)
	}

	base := ids.DefaultThresholds()
	tuned, trainOut, err := attack.TuneThresholds(syn, base, pso.Config{Particles: 8, Iterations: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	baseF1 := held.Score(ids.NewDetector(base).Detect(held.Flows)).F1()
	tunedF1 := held.Score(ids.NewDetector(tuned).Detect(held.Flows)).F1()
	t.Logf("train F1 = %.3f; held-out: base F1 = %.3f, tuned F1 = %.3f", trainOut.F1(), baseF1, tunedF1)

	if trainOut.F1() < baseF1 {
		t.Fatalf("tuning made the training scenario worse: train F1 %.3f < base F1 %.3f", trainOut.F1(), baseF1)
	}
	// The transfer property: synthetic-tuned thresholds hold up on data they
	// were not tuned on.
	if tunedF1 < baseF1 {
		t.Fatalf("tuned thresholds transfer worse than defaults: held-out F1 %.3f < base %.3f", tunedF1, baseF1)
	}
	// And tuning must actually help somewhere, or the metric is vacuous.
	if tunedF1 <= baseF1 && trainOut.F1() <= baseF1 {
		t.Fatal("tuning improved nothing on either dataset")
	}
}
