package attack

import (
	"csb/internal/ids"
	"csb/internal/pso"
)

// thresholdVector flattens Thresholds for the optimizer.
func thresholdVector(t ids.Thresholds) []float64 {
	return []float64{t.DIPT, t.SIPT, t.DPLT, t.DPHT, t.NFT, t.FSLT, t.FSHT, t.NPLT, t.NPHT, t.SAT}
}

func vectorThresholds(v []float64) ids.Thresholds {
	return ids.Thresholds{
		DIPT: v[0], SIPT: v[1], DPLT: v[2], DPHT: v[3], NFT: v[4],
		FSLT: v[5], FSHT: v[6], NPLT: v[7], NPHT: v[8], SAT: v[9],
	}
}

// TuneThresholds optimizes detection thresholds against a labeled scenario
// with PSO (the tuner the paper suggests), minimizing 1 - F1. The search
// box spans [base/8, base*8] around the starting thresholds.
func TuneThresholds(s *Scenario, base ids.Thresholds, cfg pso.Config) (ids.Thresholds, Outcome, error) {
	bv := thresholdVector(base)
	bounds := pso.Bounds{Lo: make([]float64, len(bv)), Hi: make([]float64, len(bv))}
	for i, b := range bv {
		if b <= 0 {
			b = 1
		}
		bounds.Lo[i] = b / 8
		bounds.Hi[i] = b * 8
	}
	// The ACK/SYN ratio is itself a ratio: keep it within (0, 1].
	bounds.Lo[9], bounds.Hi[9] = 0.01, 1

	objective := func(v []float64) float64 {
		det := ids.NewDetector(vectorThresholds(v))
		return 1 - s.Score(det.Detect(s.Flows)).F1()
	}
	res, err := pso.Minimize(objective, bounds, cfg)
	if err != nil {
		return base, Outcome{}, err
	}
	// Never regress below the starting thresholds: the swarm may miss the
	// base point when it is already (near) optimal.
	baseOut := s.Score(ids.NewDetector(base).Detect(s.Flows))
	tuned := vectorThresholds(res.Position)
	tunedOut := s.Score(ids.NewDetector(tuned).Detect(s.Flows))
	if baseOut.F1() >= tunedOut.F1() {
		return base, baseOut, nil
	}
	return tuned, tunedOut, nil
}
