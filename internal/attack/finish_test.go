package attack

import (
	"math/rand/v2"
	"testing"

	"csb/internal/graph"
	"csb/internal/ids"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

// flowLabel pairs a flow with its ground-truth attack index for multiset
// comparison across the Finish permutation (Flow is comparable).
type flowLabel struct {
	f netflow.Flow
	a int32
}

func TestFinishSortsCanonicallyAndKeepsLabelsAligned(t *testing.T) {
	s := fullScenario(t, 11)
	if len(s.FlowAttack) != len(s.Flows) {
		t.Fatalf("FlowAttack len %d != Flows len %d", len(s.FlowAttack), len(s.Flows))
	}
	before := map[flowLabel]int{}
	for i := range s.Flows {
		before[flowLabel{s.Flows[i], s.FlowAttack[i]}]++
	}
	// The injectors append after the background, so the pre-Finish timeline
	// must actually be out of order for this test to prove anything.
	sorted := true
	for i := 1; i < len(s.Flows); i++ {
		if netflow.FlowLess(&s.Flows[i], &s.Flows[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("pre-Finish scenario already sorted; regression test is vacuous")
	}

	s.Finish()

	for i := 1; i < len(s.Flows); i++ {
		if netflow.FlowLess(&s.Flows[i], &s.Flows[i-1]) {
			t.Fatalf("flows %d and %d out of canonical order after Finish", i-1, i)
		}
	}
	after := map[flowLabel]int{}
	for i := range s.Flows {
		after[flowLabel{s.Flows[i], s.FlowAttack[i]}]++
	}
	if len(after) != len(before) {
		t.Fatalf("flow/label multiset changed: %d distinct pairs, want %d", len(after), len(before))
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("flow/label pair %+v count %d, want %d", k, after[k], n)
		}
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	s := fullScenario(t, 12)
	s.Finish()
	flows := append([]netflow.Flow(nil), s.Flows...)
	fa := append([]int32(nil), s.FlowAttack...)
	s.Finish()
	for i := range flows {
		if flows[i] != s.Flows[i] || fa[i] != s.FlowAttack[i] {
			t.Fatalf("second Finish changed flow %d", i)
		}
	}
}

// TestMixedScenarioStreamsThroughReorderHorizon is the regression test for
// the injector ordering bug: a finished mixed scenario must stream through
// the StreamDetector's reorder horizon with zero LateFlowError drops, while
// the unfinished (append-ordered) timeline demonstrably does not.
func TestMixedScenarioStreamsThroughReorderHorizon(t *testing.T) {
	lateAfterStreaming := func(s *Scenario, horizonMicros int64) int64 {
		det := ids.NewStreamDetector(ids.DefaultThresholds(), 60*1e6, func(ids.Alert) {})
		det.SetReorderHorizon(horizonMicros)
		for _, f := range s.Flows {
			det.Add(f)
		}
		det.Flush()
		return det.LateFlows()
	}

	// Unfixed order: attack flows appended after a 10-minute background are
	// minutes out of order — far past a 5-second horizon.
	unsorted := fullScenario(t, 13)
	if late := lateAfterStreaming(unsorted, 5*1e6); late == 0 {
		t.Fatal("append-ordered scenario produced no late flows; regression test is vacuous")
	}

	finished := fullScenario(t, 13)
	finished.Finish()
	if late := lateAfterStreaming(finished, 5*1e6); late != 0 {
		t.Fatalf("finished scenario dropped %d flows as late, want 0", late)
	}
	// And with no horizon at all: canonical order is non-decreasing, so the
	// strict in-order contract holds too.
	finished2 := fullScenario(t, 13)
	finished2.Finish()
	if late := lateAfterStreaming(finished2, 0); late != 0 {
		t.Fatalf("finished scenario dropped %d flows with no horizon, want 0", late)
	}
}

func TestInjectHostScanClampsPortWidth(t *testing.T) {
	s := NewScenario(nil)
	rng := rand.New(rand.NewPCG(4, 4))
	s.InjectHostScan(rng, 1, 2, 70_000, 0)
	if len(s.Flows) != MaxScanPorts {
		t.Fatalf("flows = %d, want clamp to %d", len(s.Flows), MaxScanPorts)
	}
	ports := map[uint16]bool{}
	for _, f := range s.Flows {
		if f.DstPort == 0 {
			t.Fatal("scan probed reserved port 0 (uint16 wrap)")
		}
		ports[f.DstPort] = true
	}
	if len(ports) != MaxScanPorts {
		t.Fatalf("distinct ports = %d, want %d (duplicates mean uint16 wrap)", len(ports), MaxScanPorts)
	}
}

func TestInjectorsTagFlowAttack(t *testing.T) {
	bg := background(t, 21)
	s := NewScenario(bg)
	for i, a := range s.FlowAttack {
		if a != BackgroundFlow {
			t.Fatalf("background flow %d tagged %d", i, a)
		}
	}
	rng := rand.New(rand.NewPCG(5, 5))
	s.InjectHostScan(rng, 0xbad00001, pcap.HostIP(1), 30, 0)
	s.InjectFlood(rng, 0xbad00002, pcap.HostIP(2), graph.ProtoUDP, 5, 0)
	if len(s.FlowAttack) != len(s.Flows) {
		t.Fatalf("FlowAttack len %d != Flows len %d", len(s.FlowAttack), len(s.Flows))
	}
	counts := map[int32]int{}
	for _, a := range s.FlowAttack {
		counts[a]++
	}
	if counts[0] != 30 || counts[1] != 5 || counts[BackgroundFlow] != len(bg) {
		t.Fatalf("per-label flow counts = %v", counts)
	}
}
