// Package serve is the dataset-generation service of csb: a stdlib-only
// net/http daemon (cmd/csbd) that accepts generation jobs, runs them on a
// bounded worker pool with per-job cancellation plumbed down through the
// cluster engine, and serves the resulting edge-list artifacts from a
// content-addressed, byte-budgeted cache.
//
// The unit of work is a Spec: the canonical parameter set of one generation
// (generator, synthetic-seed shape, RNG seed, target edge count, output
// format). PR 1 made the generators bit-for-bit deterministic, so an
// artifact is a pure function of its Spec on a fixed engine shape — which is
// what makes caching by Spec.ID sound, and what the csbgen CLI relies on
// when it prints the same artifact IDs for its own outputs.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"csb/internal/scenario"
)

// Generator names accepted by Spec.Generator.
const (
	GenPGPBA = "pgpba"
	GenPGSK  = "pgsk"
	// GenScenario is the labeled attack-scenario job kind: the spec embeds a
	// scenario.Spec and the artifact is a CSBF1+CSBL1 labeled flow set.
	GenScenario = "scenario"
)

// Artifact output formats accepted by Spec.Format.
const (
	// FormatTSV is the tab-separated edge list of Graph.WriteEdgeList —
	// byte-identical to `csbgen -edgelist-out`.
	FormatTSV = "tsv"
	// FormatCSBG is the binary CSBG container of Graph.Write —
	// byte-identical to `csbgen -out`.
	FormatCSBG = "csbg"
	// FormatCSV is the Netflow-record CSV of the graph's flows.
	FormatCSV = "csv"
	// FormatNDJSON is one JSON object per flow edge, newline-delimited.
	FormatNDJSON = "ndjson"
	// FormatCSBF is the binary labeled flow artifact of scenario jobs: a
	// CSBF1 flow section followed by a CSBL1 label section — byte-identical
	// to `csbgen -scenario`. Scenario jobs only.
	FormatCSBF = "csbf"
)

// Spec is the canonical description of one generation job. It is the wire
// format of POST /v1/jobs and the input to the artifact content address: two
// specs with equal normalized fields name the same artifact.
type Spec struct {
	// Generator selects pgpba or pgsk.
	Generator string `json:"generator"`
	// Hosts and Sessions size the synthetic seed trace (Figure 1 pipeline).
	Hosts    int `json:"hosts,omitempty"`
	Sessions int `json:"sessions,omitempty"`
	// Seed drives every RNG in the pipeline.
	Seed uint64 `json:"seed"`
	// Fraction is the PGPBA per-round growth fraction in (0, 1]. Ignored
	// (and normalized away) for PGSK.
	Fraction float64 `json:"fraction,omitempty"`
	// Edges is the desired edge count of the synthetic graph.
	Edges int64 `json:"edges"`
	// Format selects the artifact encoding: tsv, csbg, csv or ndjson
	// (csbf for scenario jobs).
	Format string `json:"format,omitempty"`
	// Scenario, when set, makes this a scenario job: the artifact is the
	// labeled flow set the embedded spec compiles to. The flat generator
	// knobs above are normalized away — a scenario job's identity is the
	// scenario's own content address.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
}

// Defaults applied by Normalize to zero-valued fields.
const (
	DefaultHosts    = 100
	DefaultSessions = 2000
	DefaultFraction = 0.1
)

// Normalize fills defaults and validates the spec in place. It is the single
// validation point shared by the daemon and the csbgen CLI, so invalid
// parameters (zero or negative target size, Fraction outside (0, 1], NaN)
// fail fast with an error instead of silently producing empty output. The
// normalized spec is what Spec.ID hashes.
func (s *Spec) Normalize() error {
	if s.Scenario != nil {
		s.Generator = GenScenario
	}
	if s.Generator == GenScenario {
		if s.Scenario == nil {
			return fmt.Errorf("spec: generator %q requires an embedded scenario", GenScenario)
		}
		if err := s.Scenario.Normalize(); err != nil {
			return err
		}
		// The embedded scenario fully describes the job; the flat knobs must
		// not differentiate artifact identities.
		s.Hosts, s.Sessions, s.Seed, s.Fraction, s.Edges = 0, 0, 0, 0, 0
		if s.Format == "" {
			s.Format = FormatCSBF
		}
		if s.Format != FormatCSBF {
			return fmt.Errorf("spec: scenario jobs produce %s artifacts, got format %q", FormatCSBF, s.Format)
		}
		return nil
	}
	if s.Generator == "" {
		s.Generator = GenPGPBA
	}
	switch s.Generator {
	case GenPGPBA, GenPGSK:
	default:
		return fmt.Errorf("spec: unknown generator %q (want %s, %s or %s)", s.Generator, GenPGPBA, GenPGSK, GenScenario)
	}
	if s.Hosts == 0 {
		s.Hosts = DefaultHosts
	}
	if s.Hosts < 0 {
		return fmt.Errorf("spec: hosts must be positive, got %d", s.Hosts)
	}
	if s.Sessions == 0 {
		s.Sessions = DefaultSessions
	}
	if s.Sessions < 0 {
		return fmt.Errorf("spec: sessions must be positive, got %d", s.Sessions)
	}
	if s.Edges <= 0 {
		return fmt.Errorf("spec: edges must be positive, got %d", s.Edges)
	}
	switch s.Generator {
	case GenPGPBA:
		if s.Fraction == 0 {
			s.Fraction = DefaultFraction
		}
		if math.IsNaN(s.Fraction) || s.Fraction <= 0 || s.Fraction > 1 {
			return fmt.Errorf("spec: fraction must be in (0, 1], got %v", s.Fraction)
		}
	case GenPGSK:
		// Fraction does not participate in PGSK, so it must not
		// differentiate artifact identities.
		s.Fraction = 0
	}
	if s.Format == "" {
		s.Format = FormatTSV
	}
	switch s.Format {
	case FormatTSV, FormatCSBG, FormatCSV, FormatNDJSON:
	default:
		return fmt.Errorf("spec: unknown format %q (want %s, %s, %s or %s)",
			s.Format, FormatTSV, FormatCSBG, FormatCSV, FormatNDJSON)
	}
	return nil
}

// ID returns the content address of the spec's artifact: a SHA-256 over a
// canonical serialization of the normalized fields. The float is hashed in
// its exact hexadecimal form, so identities never depend on decimal
// formatting. CLI and daemon share this function, which is what makes their
// artifact identities agree.
func (s Spec) ID() string {
	var b strings.Builder
	b.WriteString("csbd-spec/v1\n")
	b.WriteString("generator=" + s.Generator + "\n")
	b.WriteString("hosts=" + strconv.Itoa(s.Hosts) + "\n")
	b.WriteString("sessions=" + strconv.Itoa(s.Sessions) + "\n")
	b.WriteString("seed=" + strconv.FormatUint(s.Seed, 10) + "\n")
	b.WriteString("fraction=" + strconv.FormatFloat(s.Fraction, 'x', -1, 64) + "\n")
	b.WriteString("edges=" + strconv.FormatInt(s.Edges, 10) + "\n")
	b.WriteString("format=" + s.Format + "\n")
	if s.Scenario != nil {
		// Folding the scenario's own content address in keeps the flat-spec
		// preimage unchanged for every pre-existing job kind.
		b.WriteString("scenario=" + s.Scenario.ID() + "\n")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ContentType returns the HTTP content type of the spec's artifact format.
func (s Spec) ContentType() string {
	switch s.Format {
	case FormatCSBG, FormatCSBF:
		return "application/octet-stream"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	case FormatNDJSON:
		return "application/x-ndjson"
	default:
		return "text/tab-separated-values; charset=utf-8"
	}
}
