package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csb/internal/cluster"
)

// -update-equiv regenerates the artifact-equivalence digests:
//
//	go test ./internal/serve/ -run TestArtifactEquivalenceGolden -update-equiv
//
// The digests freeze the byte-exact artifact output of every format at a
// fixed seed. They were recorded before the columnar edge-storage refactor
// and prove that generators, shuffles and writers streaming over EdgeBatch
// columns produce bit-identical artifacts to the row-structured originals.
var updateEquiv = flag.Bool("update-equiv", false, "rewrite artifact-equivalence digests under testdata/")

// equivCluster builds the fixed virtual topology the equivalence matrix runs
// on. Only MaxParallel and the fault plan vary across the matrix — both are
// documented non-inputs to artifact bytes.
func equivCluster(par int, faultRate float64) *cluster.Cluster {
	cfg := cluster.Config{
		Nodes: 2, CoresPerNode: 4, DefaultPartitions: 8, MaxParallel: par,
	}
	if faultRate > 0 {
		cfg.Faults = cluster.NewFaultPlan(1234, faultRate)
		cfg.MaxTaskRetries = 8
		cfg.Speculation = true
	}
	return cluster.MustNew(cfg)
}

// TestArtifactEquivalenceGolden locks the byte-exact artifact output of both
// generators in every artifact format across the determinism matrix:
// MaxParallel 1 vs 16, fault rate 0 vs 0.2. All four cells must agree with
// each other and with the committed digest.
func TestArtifactEquivalenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence matrix is not short")
	}
	specs := []Spec{
		{Generator: GenPGPBA, Hosts: 25, Sessions: 400, Seed: 42, Fraction: 0.3, Edges: 6000},
		{Generator: GenPGSK, Hosts: 25, Sessions: 400, Seed: 42, Edges: 6000},
	}
	formats := []string{FormatTSV, FormatCSBG, FormatCSV, FormatNDJSON}
	for _, base := range specs {
		for _, format := range formats {
			spec := base
			spec.Format = format
			if err := spec.Normalize(); err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("%s-%s", spec.Generator, format)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				type cell struct {
					par       int
					faultRate float64
				}
				cells := []cell{{1, 0}, {16, 0}, {1, 0.2}, {16, 0.2}}
				digests := make([]string, len(cells))
				for i, cl := range cells {
					c := equivCluster(cl.par, cl.faultRate)
					data, err := BuildArtifact(context.Background(), spec, c)
					if err != nil {
						t.Fatalf("par=%d fault=%v: %v", cl.par, cl.faultRate, err)
					}
					sum := sha256.Sum256(data)
					digests[i] = hex.EncodeToString(sum[:])
				}
				for i := 1; i < len(digests); i++ {
					if digests[i] != digests[0] {
						t.Fatalf("artifact bytes depend on the execution cell:\n  par=%d fault=%v: %s\n  par=%d fault=%v: %s",
							cells[0].par, cells[0].faultRate, digests[0],
							cells[i].par, cells[i].faultRate, digests[i])
					}
				}
				path := filepath.Join("testdata", "equiv_"+name+".sha256")
				if *updateEquiv {
					if err := os.WriteFile(path, []byte(digests[0]+"\n"), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s", path)
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("reading equivalence digest (run with -update-equiv to create): %v", err)
				}
				if got := digests[0]; got != strings.TrimSpace(string(want)) {
					t.Fatalf("fixed-seed %s artifact drifted from pre-refactor digest:\n  got  %s\n  want %s\nArtifact bytes are a compatibility contract; regenerate with -update-equiv only for an intended format change.",
						name, got, strings.TrimSpace(string(want)))
				}
			})
		}
	}
}
