package serve

import (
	"math"
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s := Spec{Edges: 1000}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Generator != GenPGPBA || s.Hosts != DefaultHosts || s.Sessions != DefaultSessions ||
		s.Fraction != DefaultFraction || s.Format != FormatTSV {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestSpecNormalizeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"zero edges", Spec{}, "edges"},
		{"negative edges", Spec{Edges: -5}, "edges"},
		{"unknown generator", Spec{Generator: "magic", Edges: 10}, "generator"},
		{"zero-excluded fraction", Spec{Generator: GenPGPBA, Edges: 10, Fraction: -0.5}, "fraction"},
		{"fraction above one", Spec{Generator: GenPGPBA, Edges: 10, Fraction: 1.5}, "fraction"},
		{"NaN fraction", Spec{Generator: GenPGPBA, Edges: 10, Fraction: math.NaN()}, "fraction"},
		{"negative hosts", Spec{Edges: 10, Hosts: -1}, "hosts"},
		{"negative sessions", Spec{Edges: 10, Sessions: -1}, "sessions"},
		{"unknown format", Spec{Edges: 10, Format: "xml"}, "format"},
	}
	for _, c := range cases {
		err := c.spec.Normalize()
		if err == nil {
			t.Errorf("%s accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSpecIDStableAndDiscriminating(t *testing.T) {
	base := Spec{Generator: GenPGPBA, Edges: 5000, Seed: 7}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	same := Spec{Generator: GenPGPBA, Edges: 5000, Seed: 7}
	if err := same.Normalize(); err != nil {
		t.Fatal(err)
	}
	if base.ID() != same.ID() {
		t.Fatal("identical specs produced different IDs")
	}
	if len(base.ID()) != 64 {
		t.Fatalf("ID %q is not a hex sha256", base.ID())
	}
	mutations := []Spec{
		{Generator: GenPGSK, Edges: 5000, Seed: 7},
		{Generator: GenPGPBA, Edges: 5001, Seed: 7},
		{Generator: GenPGPBA, Edges: 5000, Seed: 8},
		{Generator: GenPGPBA, Edges: 5000, Seed: 7, Fraction: 0.2},
		{Generator: GenPGPBA, Edges: 5000, Seed: 7, Hosts: 50},
		{Generator: GenPGPBA, Edges: 5000, Seed: 7, Format: FormatNDJSON},
	}
	for i, m := range mutations {
		if err := m.Normalize(); err != nil {
			t.Fatal(err)
		}
		if m.ID() == base.ID() {
			t.Errorf("mutation %d collided with the base ID", i)
		}
	}
}

func TestSpecIDIgnoresFractionForPGSK(t *testing.T) {
	// Fraction does not participate in PGSK generation, so it must not
	// split the cache for otherwise-identical jobs.
	a := Spec{Generator: GenPGSK, Edges: 1000, Seed: 3, Fraction: 0.4}
	b := Spec{Generator: GenPGSK, Edges: 1000, Seed: 3}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("PGSK artifact identity depends on the unused fraction")
	}
}
