package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed artifact store: a byte-budgeted in-memory
// LRU with an optional disk spill tier. Artifacts are keyed by Spec.ID, so a
// repeated identical job is served from here at wire speed instead of being
// regenerated.
//
// Eviction from memory spills the artifact to the disk tier when a spill
// directory is configured (its own byte budget, LRU again, oldest files
// deleted); a disk hit promotes the artifact back into memory. All methods
// are safe for concurrent use.
type Cache struct {
	mu sync.Mutex

	memBudget int64
	memBytes  int64
	mem       map[string]*list.Element // value.Value is *memEntry
	memLRU    *list.List               // front = most recently used

	dir        string
	diskBudget int64
	diskBytes  int64
	disk       map[string]*list.Element // value.Value is *diskEntry
	diskLRU    *list.List

	hits, misses, evictions, spills int64
}

type memEntry struct {
	id   string
	data []byte
}

type diskEntry struct {
	id   string
	size int64
}

// DefaultCacheBytes is the in-memory artifact budget when none is given.
const DefaultCacheBytes = 256 << 20

// NewCache creates a cache with the given in-memory byte budget (0 means
// DefaultCacheBytes). dir enables the disk spill tier ("" disables it);
// diskBudget bounds it (0 means 4x the memory budget). The directory is
// created if missing.
func NewCache(memBudget int64, dir string, diskBudget int64) (*Cache, error) {
	if memBudget <= 0 {
		memBudget = DefaultCacheBytes
	}
	if diskBudget <= 0 {
		diskBudget = 4 * memBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating spill dir: %w", err)
		}
	}
	return &Cache{
		memBudget: memBudget,
		mem:       make(map[string]*list.Element),
		memLRU:    list.New(),
		dir:       dir,
		diskBudget: func() int64 {
			if dir == "" {
				return 0
			}
			return diskBudget
		}(),
		disk:    make(map[string]*list.Element),
		diskLRU: list.New(),
	}, nil
}

// Get returns the artifact bytes for id. The returned slice is shared and
// must be treated as read-only. A disk-tier hit promotes the artifact back
// into memory.
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.mem[id]; ok {
		c.memLRU.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.hits++
		c.mu.Unlock()
		return data, true
	}
	el, ok := c.disk[id]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	path := c.spillPath(id)
	c.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		// Spill file lost out from under us (operator cleanup); drop the
		// index entry and report a miss.
		c.mu.Lock()
		if cur, still := c.disk[id]; still && cur == el {
			c.removeDiskLocked(el, false)
		}
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.insertMemLocked(id, data)
	c.mu.Unlock()
	return data, true
}

// Contains reports whether id is present in either tier, without touching
// recency or the hit/miss counters.
func (c *Cache) Contains(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[id]; ok {
		return true
	}
	_, ok := c.disk[id]
	return ok
}

// Put stores the artifact bytes under id, evicting least-recently-used
// artifacts (spilling them to disk when enabled) to stay within budget. The
// cache takes ownership of data.
func (c *Cache) Put(id string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertMemLocked(id, data)
}

// insertMemLocked adds or refreshes a memory entry and rebalances budgets.
func (c *Cache) insertMemLocked(id string, data []byte) {
	if el, ok := c.mem[id]; ok {
		ent := el.Value.(*memEntry)
		c.memBytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.memLRU.MoveToFront(el)
	} else {
		el := c.memLRU.PushFront(&memEntry{id: id, data: data})
		c.mem[id] = el
		c.memBytes += int64(len(data))
	}
	// An artifact promoted from disk should not also occupy spill space.
	if el, ok := c.disk[id]; ok {
		c.removeDiskLocked(el, true)
	}
	for c.memBytes > c.memBudget && c.memLRU.Len() > 1 {
		c.evictOldestLocked()
	}
	// A single artifact larger than the whole budget is kept anyway (the
	// alternative is thrashing: rebuild on every request).
}

// evictOldestLocked drops the LRU memory entry, spilling it to disk first
// when the spill tier is enabled.
func (c *Cache) evictOldestLocked() {
	el := c.memLRU.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*memEntry)
	c.memLRU.Remove(el)
	delete(c.mem, ent.id)
	c.memBytes -= int64(len(ent.data))
	c.evictions++
	if c.dir == "" || int64(len(ent.data)) > c.diskBudget {
		return
	}
	if err := os.WriteFile(c.spillPath(ent.id), ent.data, 0o644); err != nil {
		return // disk full or unwritable: degrade to plain eviction
	}
	c.spills++
	dl := c.diskLRU.PushFront(&diskEntry{id: ent.id, size: int64(len(ent.data))})
	c.disk[ent.id] = dl
	c.diskBytes += int64(len(ent.data))
	for c.diskBytes > c.diskBudget && c.diskLRU.Len() > 1 {
		c.removeDiskLocked(c.diskLRU.Back(), true)
	}
}

// removeDiskLocked drops a disk-tier entry; unlink removes the spill file.
func (c *Cache) removeDiskLocked(el *list.Element, unlink bool) {
	ent := el.Value.(*diskEntry)
	c.diskLRU.Remove(el)
	delete(c.disk, ent.id)
	c.diskBytes -= ent.size
	if unlink {
		os.Remove(c.spillPath(ent.id))
	}
}

// spillPath returns the spill file path of an artifact id (ids are hex, so
// they are filesystem-safe).
func (c *Cache) spillPath(id string) string {
	return filepath.Join(c.dir, id+".art")
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries     int
	Bytes       int64
	DiskEntries int
	DiskBytes   int64
	Hits        int64
	Misses      int64
	Evictions   int64
	Spills      int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     c.memLRU.Len(),
		Bytes:       c.memBytes,
		DiskEntries: c.diskLRU.Len(),
		DiskBytes:   c.diskBytes,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Spills:      c.spills,
	}
}
