package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed artifact store: a byte-budgeted in-memory
// LRU with an optional disk spill tier. Artifacts are keyed by Spec.ID, so a
// repeated identical job is served from here at wire speed instead of being
// regenerated.
//
// Eviction from memory spills the artifact to the disk tier when a spill
// directory is configured (its own byte budget, LRU again, oldest files
// deleted); a disk hit promotes the artifact back into memory. All methods
// are safe for concurrent use.
type Cache struct {
	mu sync.Mutex

	memBudget int64
	memBytes  int64
	mem       map[string]*list.Element // value.Value is *memEntry
	memLRU    *list.List               // front = most recently used

	dir        string
	diskBudget int64
	diskBytes  int64
	disk       map[string]*list.Element // value.Value is *diskEntry
	diskLRU    *list.List

	hits, misses, evictions, spills int64
	quarantined, spillWriteFailures int64
}

type memEntry struct {
	id   string
	data []byte
}

type diskEntry struct {
	id   string
	size int64
}

// DefaultCacheBytes is the in-memory artifact budget when none is given.
const DefaultCacheBytes = 256 << 20

// NewCache creates a cache with the given in-memory byte budget (0 means
// DefaultCacheBytes). dir enables the disk spill tier ("" disables it);
// diskBudget bounds it (0 means 4x the memory budget). The directory is
// created if missing.
func NewCache(memBudget int64, dir string, diskBudget int64) (*Cache, error) {
	if memBudget <= 0 {
		memBudget = DefaultCacheBytes
	}
	if diskBudget <= 0 {
		diskBudget = 4 * memBudget
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: creating spill dir: %w", err)
		}
	}
	return &Cache{
		memBudget: memBudget,
		mem:       make(map[string]*list.Element),
		memLRU:    list.New(),
		dir:       dir,
		diskBudget: func() int64 {
			if dir == "" {
				return 0
			}
			return diskBudget
		}(),
		disk:    make(map[string]*list.Element),
		diskLRU: list.New(),
	}, nil
}

// Get returns the artifact bytes for id. The returned slice is shared and
// must be treated as read-only. A disk-tier hit promotes the artifact back
// into memory.
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.mem[id]; ok {
		c.memLRU.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.hits++
		c.mu.Unlock()
		return data, true
	}
	el, ok := c.disk[id]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	path := c.spillPath(id)
	c.mu.Unlock()
	data, err := readSpillFile(path)
	if err != nil {
		// Spill file lost or damaged out from under us. A missing file
		// (operator cleanup) just drops the index entry; a corrupt or
		// truncated one is additionally quarantined — moved aside under a
		// .quarantine suffix so the bad bytes stay inspectable but can never
		// be served — and the artifact is reported as a miss, which makes
		// the daemon regenerate it.
		c.mu.Lock()
		if cur, still := c.disk[id]; still && cur == el {
			c.removeDiskLocked(el, false)
			// Quarantine only on the winning removal: concurrent readers of
			// the same damaged file all fail verification, but exactly one
			// moves it aside and counts it — the rest just report a miss.
			if errors.Is(err, errSpillCorrupt) {
				c.quarantined++
				os.Rename(path, path+".quarantine")
			}
		}
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	c.hits++
	c.insertMemLocked(id, data)
	c.mu.Unlock()
	return data, true
}

// Contains reports whether id is present in either tier, without touching
// recency or the hit/miss counters.
func (c *Cache) Contains(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[id]; ok {
		return true
	}
	_, ok := c.disk[id]
	return ok
}

// Put stores the artifact bytes under id, evicting least-recently-used
// artifacts (spilling them to disk when enabled) to stay within budget. The
// cache takes ownership of data.
func (c *Cache) Put(id string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertMemLocked(id, data)
}

// insertMemLocked adds or refreshes a memory entry and rebalances budgets.
func (c *Cache) insertMemLocked(id string, data []byte) {
	if el, ok := c.mem[id]; ok {
		ent := el.Value.(*memEntry)
		c.memBytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		c.memLRU.MoveToFront(el)
	} else {
		el := c.memLRU.PushFront(&memEntry{id: id, data: data})
		c.mem[id] = el
		c.memBytes += int64(len(data))
	}
	// An artifact promoted from disk should not also occupy spill space.
	if el, ok := c.disk[id]; ok {
		c.removeDiskLocked(el, true)
	}
	for c.memBytes > c.memBudget && c.memLRU.Len() > 1 {
		c.evictOldestLocked()
	}
	// A single artifact larger than the whole budget is kept anyway (the
	// alternative is thrashing: rebuild on every request).
}

// evictOldestLocked drops the LRU memory entry, spilling it to disk first
// when the spill tier is enabled.
func (c *Cache) evictOldestLocked() {
	el := c.memLRU.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*memEntry)
	c.memLRU.Remove(el)
	delete(c.mem, ent.id)
	c.memBytes -= int64(len(ent.data))
	c.evictions++
	if c.dir == "" || int64(len(ent.data)) > c.diskBudget {
		return
	}
	if err := writeSpillFile(c.dir, c.spillPath(ent.id), ent.data); err != nil {
		c.spillWriteFailures++
		return // disk full or unwritable: degrade to plain eviction
	}
	c.spills++
	dl := c.diskLRU.PushFront(&diskEntry{id: ent.id, size: int64(len(ent.data))})
	c.disk[ent.id] = dl
	c.diskBytes += int64(len(ent.data))
	for c.diskBytes > c.diskBudget && c.diskLRU.Len() > 1 {
		c.removeDiskLocked(c.diskLRU.Back(), true)
	}
}

// removeDiskLocked drops a disk-tier entry; unlink removes the spill file.
func (c *Cache) removeDiskLocked(el *list.Element, unlink bool) {
	ent := el.Value.(*diskEntry)
	c.diskLRU.Remove(el)
	delete(c.disk, ent.id)
	c.diskBytes -= ent.size
	if unlink {
		os.Remove(c.spillPath(ent.id))
	}
}

// spillPath returns the spill file path of an artifact id (ids are hex, so
// they are filesystem-safe).
func (c *Cache) spillPath(id string) string {
	return filepath.Join(c.dir, id+".art")
}

// Spill file framing: artifacts on disk carry a magic, the payload length
// and a SHA-256 digest, so a read can distinguish a healthy file from a
// truncated or bit-rotted one instead of serving whatever bytes happen to
// be there.
//
//	offset  size  field
//	0       4     magic "CSB1"
//	4       8     payload length, big endian
//	12      32    SHA-256 of the payload
//	44      n     payload
var spillMagic = [4]byte{'C', 'S', 'B', '1'}

const spillHeaderLen = 4 + 8 + sha256.Size

// errSpillCorrupt marks a spill file whose contents cannot be trusted:
// wrong magic, short read, or checksum mismatch. Callers quarantine on it.
var errSpillCorrupt = errors.New("serve: spill file corrupt")

// writeSpillFile persists framed artifact bytes atomically: the file is
// assembled in a temp file in the same directory and renamed into place, so
// a crash mid-write can never leave a torn file under the artifact's name.
func writeSpillFile(dir, path string, data []byte) error {
	var hdr [spillHeaderLen]byte
	copy(hdr[:4], spillMagic[:])
	binary.BigEndian.PutUint64(hdr[4:12], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(hdr[12:], sum[:])

	tmp, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(hdr[:])
	if err == nil {
		_, err = tmp.Write(data)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readSpillFile loads and verifies a framed spill file. It returns an error
// wrapping fs.ErrNotExist when the file is gone, or errSpillCorrupt when the
// contents fail validation (bad magic, truncation, trailing garbage, or
// checksum mismatch).
func readSpillFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < spillHeaderLen || !bytes.Equal(raw[:4], spillMagic[:]) {
		return nil, fmt.Errorf("%w: %s: bad header", errSpillCorrupt, filepath.Base(path))
	}
	want := binary.BigEndian.Uint64(raw[4:12])
	payload := raw[spillHeaderLen:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d",
			errSpillCorrupt, filepath.Base(path), len(payload), want)
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[12:spillHeaderLen]) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", errSpillCorrupt, filepath.Base(path))
	}
	return payload, nil
}

// DiskHealthy reports whether the spill tier is usable: disabled counts as
// healthy (nothing to go wrong), otherwise the spill directory must exist.
// The readiness probe uses this to take a daemon with a dead artifact disk
// out of rotation.
func (c *Cache) DiskHealthy() bool {
	if c.dir == "" {
		return true
	}
	info, err := os.Stat(c.dir)
	if err != nil || !info.IsDir() {
		return false
	}
	return true
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries     int
	Bytes       int64
	DiskEntries int
	DiskBytes   int64
	Hits        int64
	Misses      int64
	Evictions   int64
	Spills      int64
	// Quarantined counts spill files that failed verification on read and
	// were moved aside (the artifact was then regenerated).
	Quarantined int64
	// SpillErrors counts evictions that could not be spilled to disk
	// (write or rename failure); the artifact degraded to plain eviction.
	SpillErrors int64
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     c.memLRU.Len(),
		Bytes:       c.memBytes,
		DiskEntries: c.diskLRU.Len(),
		DiskBytes:   c.diskBytes,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Spills:      c.spills,
		Quarantined: c.quarantined,
		SpillErrors: c.spillWriteFailures,
	}
}
