package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csb/internal/cluster"
	"csb/internal/dist"
	"csb/internal/journal"
)

// DistPool is the coordinator-side view serve needs of the distributed
// runtime (implemented by *dist.Coordinator): dispatch remotable stage tasks,
// report worker topology, and replicate finished artifacts. Nil means
// single-process operation.
type DistPool interface {
	cluster.TaskExecutor
	// Workers lists known workers, live first, lost tombstones after.
	Workers() []dist.WorkerInfo
	// LiveWorkers counts currently-registered workers.
	LiveWorkers() int
	// Counts reports topology and dispatch totals.
	Counts() (registered, live, lost, dispatched, declined int64)
	// Replicate pushes an artifact to every live worker, returning how many
	// stored it.
	Replicate(ctx context.Context, id string, data []byte) int
}

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrent generations (0 means 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (0 means 16). A submit
	// that finds the queue full is shed with 429 + Retry-After.
	QueueDepth int
	// JobTimeout is the per-job deadline once a job starts running
	// (0 means 10 minutes).
	JobTimeout time.Duration
	// JobRetries is how many times a failed generation is re-attempted
	// before the job reports failed (0 means 1; negative disables retries).
	// Cancellations and deadline overruns are terminal and never retried —
	// only transient build errors are.
	JobRetries int
	// JobRetryBackoff is the pause between job attempts (0 means 200ms;
	// negative disables the wait).
	JobRetryBackoff time.Duration
	// MaxEdges caps the target edge count a job may request (0 means 50M);
	// admission control rejects larger asks with 400 before queuing.
	MaxEdges int64
	// CacheBytes budgets the in-memory artifact cache (0 means
	// DefaultCacheBytes).
	CacheBytes int64
	// CacheDir enables the disk spill tier of the artifact cache.
	CacheDir string
	// CacheDiskBytes budgets the spill tier (0 means 4x CacheBytes).
	CacheDiskBytes int64
	// Shape fixes the virtual-cluster topology jobs run on. The zero value
	// is one node with all local cores — the csbgen default, which keeps
	// daemon artifacts byte-identical to CLI output on the same host.
	Shape EngineShape
	// ReplaySessions caps concurrently-running replay sessions (0 means
	// DefaultReplaySessions); POST /replay beyond the cap is shed with 429.
	ReplaySessions int
	// Dist, when non-nil, dispatches remotable engine stages to registered
	// worker processes and replicates finished artifacts to them. Like the
	// fault knobs it is not part of artifact identity: bytes stay identical
	// whether stages run in-process or on workers.
	Dist DistPool
	// MinWorkers gates /readyz when distributed: with Dist set, readiness
	// additionally requires at least this many live workers. Zero means
	// ready even with an empty pool (stages fall back to local execution).
	MinWorkers int
	// Journal, when non-nil, makes the job queue crash-safe: every job
	// lifecycle transition is appended to the write-ahead log, and New
	// replays it to re-enqueue jobs that were accepted but never reached a
	// terminal state — so kill -9 mid-build followed by a restart converges
	// to byte-identical artifacts. dist.Checkpointed can share the same
	// journal to resume sharded builds. The caller keeps ownership (Close).
	Journal *journal.Journal
}

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// job is the server-side record of one submitted generation.
type job struct {
	id       string
	spec     Spec
	artifact string // content address (Spec.ID)

	ctx    context.Context // cancelled by DELETE or server shutdown
	cancel context.CancelFunc

	mu       sync.Mutex
	state    JobState
	errMsg   string
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobStatus is the wire representation of a job (GET /v1/jobs/{id} and the
// POST /v1/jobs response).
type JobStatus struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Spec       Spec     `json:"spec"`
	ArtifactID string   `json:"artifact_id"`
	// ArtifactURL is set once the artifact is ready to download.
	ArtifactURL string `json:"artifact_url,omitempty"`
	CacheHit    bool   `json:"cache_hit"`
	Error       string `json:"error,omitempty"`
	CreatedAt   string `json:"created_at"`
	// DurationMS is the run time of a finished job in milliseconds.
	DurationMS int64 `json:"duration_ms,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Spec:       j.spec,
		ArtifactID: j.artifact,
		CacheHit:   j.cacheHit,
		Error:      j.errMsg,
		CreatedAt:  j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.state == StateDone {
		st.ArtifactURL = "/v1/artifacts/" + j.artifact
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	return st
}

// Server is the dataset-generation service: a bounded job queue in front of
// a worker pool, a content-addressed artifact cache, and the HTTP API of
// cmd/csbd. Create with New, mount Handler, Close to drain.
type Server struct {
	cfg    Config
	cache  *Cache
	tracer *cluster.Tracer

	baseCtx context.Context
	stop    context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // artifact id -> queued/running job (single-flight)
	closed   bool

	// Replay sessions (internal/replay) keyed by session id; rtotals
	// accumulates the counters of deleted sessions for /metrics.
	rmu           sync.Mutex
	replays       map[string]*replaySession
	replaysClosed bool
	rseq          atomic.Int64
	rtotals       replayTotals

	journal *journal.Journal

	seq         atomic.Int64
	running     atomic.Int64
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	canceled    atomic.Int64
	rejected    atomic.Int64
	hits        atomic.Int64 // submits answered from cache or coalesced onto a flight
	misses      atomic.Int64 // submits that had to generate
	retries     atomic.Int64 // job re-attempts after transient build failures
	bytesServed atomic.Int64
	resumed     atomic.Int64 // jobs re-enqueued from the journal at startup
	journalErrs atomic.Int64 // journal appends/replays that failed

	// buildArtifact is swappable so admission-control tests can hold jobs
	// in "running" deterministically; production builds on a per-job
	// cluster bounded by ctx.
	buildArtifact func(ctx context.Context, spec Spec) ([]byte, error)
}

// New validates cfg and returns a ready Server (workers started).
func New(cfg Config) (*Server, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Workers < 0 {
		return nil, errors.New("serve: Workers must be positive")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.QueueDepth < 0 {
		return nil, errors.New("serve: QueueDepth must be positive")
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.MaxEdges == 0 {
		cfg.MaxEdges = 50_000_000
	}
	if cfg.JobRetries == 0 {
		cfg.JobRetries = 1
	} else if cfg.JobRetries < 0 {
		cfg.JobRetries = 0
	}
	if cfg.JobRetryBackoff == 0 {
		cfg.JobRetryBackoff = 200 * time.Millisecond
	} else if cfg.JobRetryBackoff < 0 {
		cfg.JobRetryBackoff = 0
	}
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir, cfg.CacheDiskBytes)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		tracer:   cluster.NewTracer(),
		baseCtx:  ctx,
		stop:     stop,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		replays:  make(map[string]*replaySession),
	}
	s.buildArtifact = func(ctx context.Context, spec Spec) ([]byte, error) {
		var exec cluster.TaskExecutor
		if cfg.Dist != nil {
			exec = cfg.Dist
		}
		c, err := cfg.Shape.newCluster(ctx, s.tracer, exec)
		if err != nil {
			return nil, err
		}
		return BuildArtifact(ctx, spec, c)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Journal != nil {
		s.journal = cfg.Journal
		s.resumeFromJournal()
	}
	return s, nil
}

// Tracer returns the tracer every job cluster reports its stage spans to;
// /metrics aggregates it into per-op timings.
func (s *Server) Tracer() *cluster.Tracer { return s.tracer }

// Cache returns the artifact cache (read-mostly; exposed for tests and for
// cmd/csbd warm-up tooling).
func (s *Server) Cache() *Cache { return s.cache }

// Close stops accepting jobs, cancels running ones and waits for the
// workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	close(s.queue)
	s.wg.Wait()
	s.closeReplays()
}

// worker drains the job queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job to a terminal state.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		s.finishInflight(j)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Transient build failures are retried with backoff before the job
	// reports failed — the daemon-level mirror of the engine's task
	// attempts. Each attempt gets a fresh timeout; cancellation and
	// deadline overruns are terminal (retrying them would double the
	// client's wait for no benefit).
	s.running.Add(1)
	var data []byte
	var err error
	for attempt := 0; ; attempt++ {
		ctx, cancelTimeout := context.WithTimeout(j.ctx, s.cfg.JobTimeout)
		data, err = s.buildArtifact(ctx, j.spec)
		cancelTimeout()
		if err == nil || attempt >= s.cfg.JobRetries ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		s.retries.Add(1)
		if s.cfg.JobRetryBackoff > 0 {
			select {
			case <-j.ctx.Done():
			case <-time.After(s.cfg.JobRetryBackoff):
			}
		}
	}
	s.running.Add(-1)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		s.cache.Put(j.artifact, data)
		j.state = StateDone
		s.completed.Add(1)
		if s.cfg.Dist != nil {
			// Replicate so any worker can serve the artifact; best-effort and
			// off the job's critical path, bounded by server lifetime.
			go s.cfg.Dist.Replicate(s.baseCtx, j.artifact, data)
		}
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
		s.canceled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = "job deadline exceeded"
		s.failed.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed.Add(1)
	}
	final := j.state
	j.mu.Unlock()
	s.finishInflight(j)
	switch final {
	case StateDone:
		s.journalAppend(journalJobDone, j.artifact, nil)
	case StateCanceled:
		s.journalAppend(journalJobCanceled, j.artifact, nil)
	default:
		s.journalAppend(journalJobFailed, j.artifact, nil)
	}
}

// finishInflight clears the single-flight slot once a job reaches a
// terminal state.
func (s *Server) finishInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.artifact] == j {
		delete(s.inflight, j.artifact)
	}
	s.mu.Unlock()
}

// submitErr tags admission failures with the HTTP status to surface.
type submitErr struct {
	code int
	msg  string
}

func (e *submitErr) Error() string { return e.msg }

// Submit runs the admission pipeline for a spec (normalized in place) and
// returns the accepted job's status: a cached artifact yields an
// immediately-done job, an identical in-flight job is coalesced, and a full
// queue is refused with a 429-tagged error.
func (s *Server) Submit(spec *Spec) (JobStatus, error) {
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, &submitErr{code: http.StatusBadRequest, msg: err.Error()}
	}
	// Scenario jobs keep their size in the embedded background spec; the
	// admission cap applies to whichever edge target the job would generate.
	edges := spec.Edges
	if spec.Scenario != nil {
		edges = spec.Scenario.Background.Edges
	}
	if edges > s.cfg.MaxEdges {
		return JobStatus{}, &submitErr{
			code: http.StatusBadRequest,
			msg:  fmt.Sprintf("edges %d exceeds the admission cap %d", edges, s.cfg.MaxEdges),
		}
	}
	s.submitted.Add(1)
	artifact := spec.ID()

	// Cache hit: the artifact already exists, no work to enqueue. Get (not
	// Contains) so disk-tier entries are verified before the job is declared
	// done — a corrupt spill file reads as a miss here, quarantines itself,
	// and falls through to regeneration instead of minting a done job whose
	// artifact would then 404.
	if _, ok := s.cache.Get(artifact); ok {
		s.hits.Add(1)
		j := &job{
			id: s.nextID(), spec: *spec, artifact: artifact,
			state: StateDone, cacheHit: true, created: time.Now(),
		}
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		return j.status(), nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, &submitErr{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	// Single-flight: an identical job already queued or running absorbs
	// this submit instead of burning a second worker on the same bytes.
	if cur, ok := s.inflight[artifact]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return cur.status(), nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id: s.nextID(), spec: *spec, artifact: artifact,
		ctx: ctx, cancel: cancel,
		state: StateQueued, created: time.Now(),
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.inflight[artifact] = j
		s.mu.Unlock()
		s.misses.Add(1)
		// Durably record the acceptance before acking the client: if the
		// process dies from here on, restart replays the spec and re-runs
		// the job to the same content-addressed bytes.
		if specJSON, err := json.Marshal(j.spec); err == nil {
			s.journalAppend(journalJobAccepted, artifact, specJSON)
		} else {
			s.journalErrs.Add(1)
		}
		return j.status(), nil
	default:
		s.mu.Unlock()
		cancel()
		s.rejected.Add(1)
		return JobStatus{}, &submitErr{code: http.StatusTooManyRequests, msg: "job queue is full"}
	}
}

// nextID mints a job id.
func (s *Server) nextID() string {
	return "j" + strconv.FormatInt(s.seq.Add(1), 10)
}

// CancelJob cancels a queued or running job; it reports whether the job
// exists. Cancelling a finished job is a no-op.
func (s *Server) CancelJob(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	wasQueued := j.state == StateQueued
	if wasQueued {
		// A queued job flips terminal immediately; the worker skips it.
		j.state = StateCanceled
		j.errMsg = "canceled"
		j.finished = time.Now()
		s.canceled.Add(1)
	}
	cancel := j.cancel
	j.mu.Unlock()
	if wasQueued {
		// Release the single-flight slot now — a resubmit of the same spec
		// must start a fresh job, not coalesce onto this dead one.
		s.finishInflight(j)
		s.journalAppend(journalJobCanceled, j.artifact, nil)
	}
	if cancel != nil {
		cancel() // running jobs stop between engine tasks
	}
	return true
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Ready reports whether the daemon should receive new traffic, with the
// reason when it should not: a shutting-down server, a saturated job queue
// (new submits would be shed with 429 anyway), or an unusable artifact
// spill tier. This is the /readyz predicate — distinct from /healthz, which
// only answers "is the process alive".
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false, "shutting down"
	}
	if len(s.queue) >= cap(s.queue) {
		return false, "job queue saturated"
	}
	if !s.cache.DiskHealthy() {
		return false, "artifact spill tier unavailable"
	}
	if s.cfg.Dist != nil && s.cfg.MinWorkers > 0 {
		if live := s.cfg.Dist.LiveWorkers(); live < s.cfg.MinWorkers {
			return false, fmt.Sprintf("%d/%d workers live", live, s.cfg.MinWorkers)
		}
	}
	return true, "ok"
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs            submit a Spec (JSON body)
//	GET    /v1/jobs/{id}       poll job status
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/artifact  stream the finished artifact
//	GET    /v1/artifacts/{id}  stream an artifact by content address
//	POST   /replay             start a live replay session of an artifact
//	GET    /replay/{id}        poll replay session status
//	DELETE /replay/{id}        stop a replay session
//	GET    /workers            distributed worker topology (JSON; 404 when
//	                           not running distributed)
//	GET    /healthz            liveness (process is up)
//	GET    /readyz             readiness (queue has room, spill tier usable,
//	                           enough live workers when distributed)
//	GET    /metrics            service + engine-stage metrics (text)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleJobArtifact)
	mux.HandleFunc("GET /v1/artifacts/{id}", s.handleArtifact)
	mux.HandleFunc("POST /replay", s.handleReplayStart)
	mux.HandleFunc("GET /replay/{id}", s.handleReplayStatus)
	mux.HandleFunc("DELETE /replay/{id}", s.handleReplayStop)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, reason := s.Ready()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, reason+"\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /workers", s.handleWorkers)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleWorkers is GET /workers: the coordinator's worker topology.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Dist == nil {
		httpError(w, http.StatusNotFound, "not running distributed")
		return
	}
	registered, live, lost, dispatched, declined := s.cfg.Dist.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"registered_total": registered,
		"live":             live,
		"lost_total":       lost,
		"dispatched_total": dispatched,
		"declined_total":   declined,
		"min_workers":      s.cfg.MinWorkers,
		"workers":          s.cfg.Dist.Workers(),
	})
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	st, err := s.Submit(&spec)
	if err != nil {
		var se *submitErr
		if errors.As(err, &se) {
			if se.code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", s.retryAfter())
			}
			httpError(w, se.code, se.msg)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// retryAfter estimates (in whole seconds) when a shed client should retry:
// one full queue drain at the configured parallelism, clamped to [1, 60].
func (s *Server) retryAfter() string {
	sec := int64(1)
	if n := s.QueueDepth(); n > 0 {
		// Rough per-job cost: half the job deadline is a pessimistic but
		// safe stand-in when no timing history exists yet.
		est := time.Duration(n/s.cfg.Workers+1) * (s.cfg.JobTimeout / 2)
		sec = int64(est / time.Second)
	}
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return strconv.FormatInt(sec, 10)
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.CancelJob(id) {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusAccepted, s.lookup(id).status())
}

// handleJobArtifact is GET /v1/jobs/{id}/artifact.
func (s *Server) handleJobArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	switch st.State {
	case StateDone:
		s.serveArtifact(w, j.artifact, j.spec)
	case StateQueued, StateRunning:
		httpError(w, http.StatusConflict, "job is "+string(st.State)+"; poll /v1/jobs/"+j.id)
	default:
		httpError(w, http.StatusGone, "job "+string(st.State)+": "+st.Error)
	}
}

// handleArtifact is GET /v1/artifacts/{id}.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The artifact's format rides in its spec; recover it from any job that
	// produced this artifact for an accurate content type, defaulting to
	// octet-stream for direct content-address fetches.
	spec := Spec{Format: ""}
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.artifact == id {
			spec = j.spec
			break
		}
	}
	s.mu.Unlock()
	s.serveArtifact(w, id, spec)
}

// serveArtifact streams cached artifact bytes in bounded chunks. Chunked
// transfer keeps memory flat on the write path and the per-chunk flush
// hands backpressure to the client connection.
func (s *Server) serveArtifact(w http.ResponseWriter, id string, spec Spec) {
	data, ok := s.cache.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "artifact evicted or unknown; resubmit the job")
		return
	}
	if spec.Format != "" {
		w.Header().Set("Content-Type", spec.ContentType())
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("X-Artifact-Id", id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	const chunk = 256 << 10
	r := bytes.NewReader(data)
	buf := make([]byte, chunk)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away; bytes up to here still count
			}
			s.bytesServed.Add(int64(n))
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// lookup returns the job record for id, or nil.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}
