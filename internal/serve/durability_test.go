package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"csb/internal/journal"
)

func openJournalT(t *testing.T, path string) *journal.Journal {
	t.Helper()
	jl, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// TestCrashResumeByteIdentical is the serve half of the crash-resume
// acceptance criterion: a daemon killed (simulated: abandoned without Close)
// while a journaled job is mid-build must, after restart on the same
// journal, re-enqueue the job and produce bytes identical to an
// uninterrupted run.
func TestCrashResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(77)

	// Golden: an uninterrupted, journal-free run of the same spec.
	sGold, tsGold := newTestServer(t, Config{Workers: 1})
	_ = sGold
	_, st := postJob(t, tsGold, spec)
	pollDone(t, tsGold, st.ID)
	golden := fetchArtifact(t, tsGold, st.ID)
	artifactID := st.ArtifactID

	// "Crashed" daemon: the build blocks forever, so the accepted job never
	// reaches a terminal journal record. No Close — that is the kill -9.
	walPath := filepath.Join(dir, "csbd.wal")
	jl1 := openJournalT(t, walPath)
	crashed, err := New(Config{Workers: 1, Journal: jl1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	crashed.buildArtifact = func(ctx context.Context, spec Spec) ([]byte, error) {
		<-release
		return nil, errors.New("abandoned")
	}
	spec2 := spec
	if _, err := crashed.Submit(&spec2); err != nil {
		t.Fatal(err)
	}
	// The accepted record is on disk before Submit returns; nothing else to
	// wait for. Reopen the journal as a restarted process would.
	jl2 := openJournalT(t, walPath)
	restarted, tsRestarted := newTestServer(t, Config{Workers: 1, Journal: jl2})

	m := restarted.Metrics()
	if m.Journal == nil || m.Journal.JobsResumed != 1 {
		t.Fatalf("resumed journal metrics = %+v, want 1 job resumed", m.Journal)
	}
	// The resumed job carries the same content address; poll it there.
	deadline := time.Now().Add(60 * time.Second)
	var got []byte
	for {
		resp, err := http.Get(tsRestarted.URL + "/v1/artifacts/" + artifactID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			got = buf.Bytes()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("resumed job never produced the artifact")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("resumed artifact differs from uninterrupted run: %d vs %d bytes", len(got), len(golden))
	}

	// A second restart finds the job terminal and resumes nothing.
	restarted.Close()
	jl3 := openJournalT(t, walPath)
	again, _ := newTestServer(t, Config{Workers: 1, Journal: jl3})
	if m := again.Metrics(); m.Journal.JobsResumed != 0 {
		t.Fatalf("terminal job resumed on second restart: %+v", m.Journal)
	}
}

// TestResumeSkipsTerminalJobs: done/failed/canceled jobs in the journal are
// not re-enqueued, and compaction drops their records.
func TestResumeSkipsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	mkRecords := func(name string, terminalKind string) string {
		path := filepath.Join(dir, name)
		jl := openJournalT(t, path)
		spec := tinySpec(5)
		if err := spec.Normalize(); err != nil {
			t.Fatal(err)
		}
		specJSON, _ := json.Marshal(spec)
		jl.Append(journal.Record{Kind: journalJobAccepted, Key: spec.ID(), Payload: specJSON})
		jl.Append(journal.Record{Kind: terminalKind, Key: spec.ID()})
		jl.Close()
		return path
	}
	for _, kind := range []string{journalJobDone, journalJobFailed, journalJobCanceled} {
		path := mkRecords("wal-"+kind, kind)
		jl := openJournalT(t, path)
		s, err := New(Config{Workers: 1, Journal: jl})
		if err != nil {
			t.Fatal(err)
		}
		m := s.Metrics()
		if m.Journal.JobsResumed != 0 {
			t.Errorf("%s: resumed %d jobs, want 0", kind, m.Journal.JobsResumed)
		}
		if m.JobsSubmitted != 0 {
			t.Errorf("%s: %d jobs submitted during resume", kind, m.JobsSubmitted)
		}
		s.Close()
		// Compaction left nothing behind for a fully-terminal history.
		jl2 := openJournalT(t, path)
		if recs := jl2.Records(); len(recs) != 0 {
			t.Errorf("%s: post-compaction records = %+v", kind, recs)
		}
	}
}

// TestResumeReopensReacceptedJob: accepted → done → accepted (resubmit after
// cache eviction) must resume, since the latest acceptance is unfinished.
func TestResumeReopensReacceptedJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	jl := openJournalT(t, path)
	spec := tinySpec(9)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(spec)
	key := spec.ID()
	jl.Append(journal.Record{Kind: journalJobAccepted, Key: key, Payload: specJSON})
	jl.Append(journal.Record{Kind: journalJobDone, Key: key})
	jl.Append(journal.Record{Kind: journalJobAccepted, Key: key, Payload: specJSON})
	jl.Close()

	jl2 := openJournalT(t, path)
	s, err := New(Config{Workers: 1, Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Metrics().Journal.JobsResumed; got != 1 {
		t.Fatalf("resumed %d jobs, want 1", got)
	}
}
