package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"csb/internal/netflow"
	"csb/internal/replay"
)

// startReplayHTTP posts a replay request and decodes the response.
func startReplayHTTP(t *testing.T, ts *httptest.Server, req ReplayRequest) (*http.Response, ReplayStatus) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/replay", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ReplayStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// genCSVArtifact runs one csv-format job to completion and returns its
// artifact id.
func genCSVArtifact(t *testing.T, ts *httptest.Server, seed uint64) string {
	t.Helper()
	spec := tinySpec(seed)
	spec.Format = FormatCSV
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	st = pollDone(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	return st.ArtifactID
}

// TestReplayEndpointStreamsArtifact is the end-to-end daemon path: generate a
// csv artifact, POST /replay, subscribe over TCP, and check the stream
// delivers every flow cleanly with the artifact's content address in the
// header.
func TestReplayEndpointStreamsArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	artifact := genCSVArtifact(t, ts, 7)

	resp, st := startReplayHTTP(t, ts, ReplayRequest{
		ArtifactID: artifact, WaitSubscribers: 1, WaitMS: 30_000,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /replay: status %d", resp.StatusCode)
	}
	if st.Flows == 0 || st.Addr == "" || st.Policy != "block" {
		t.Fatalf("bad session status: %+v", st)
	}

	conn, err := net.Dial("tcp", st.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var got int
	cs, err := replay.Consume(conn, func(seq uint64, f netflow.Flow, raw []byte) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Clean || cs.Gaps != 0 || got != st.Flows {
		t.Fatalf("consume: clean=%v gaps=%d got=%d want %d flows", cs.Clean, cs.Gaps, got, st.Flows)
	}
	// The stream header carries the artifact's content address.
	if gotSHA := hex.EncodeToString(cs.Header.ArtifactSHA[:]); gotSHA != artifact {
		t.Fatalf("header SHA %s, want %s", gotSHA, artifact)
	}

	// Status flips to done and reports the emitted count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/replay/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur ReplayStatus
		if err := json.NewDecoder(r2.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if cur.Done {
			if cur.Emitted != int64(st.Flows) {
				t.Fatalf("emitted %d, want %d", cur.Emitted, st.Flows)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplayEndpointErrors covers the admission paths: unknown artifact,
// non-replayable format, bad policy, missing id.
func TestReplayEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	for _, tc := range []struct {
		name string
		req  ReplayRequest
		want int
	}{
		{"missing id", ReplayRequest{}, http.StatusBadRequest},
		{"unknown artifact", ReplayRequest{ArtifactID: strings.Repeat("ab", 32)}, http.StatusNotFound},
		{"bad policy", ReplayRequest{ArtifactID: strings.Repeat("ab", 32), Policy: "nope"}, http.StatusBadRequest},
	} {
		resp, _ := startReplayHTTP(t, ts, tc.req)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// A tsv artifact exists but has no flow decoder.
	spec := tinySpec(9) // default format: tsv
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	done := pollDone(t, ts, st.ID)
	resp2, _ := startReplayHTTP(t, ts, ReplayRequest{ArtifactID: done.ArtifactID})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("tsv replay: status %d, want 400", resp2.StatusCode)
	}
}

// TestReplaySessionCapAndDelete checks the session cap sheds with 429 and
// DELETE frees a slot while preserving the metrics totals.
func TestReplaySessionCapAndDelete(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, ReplaySessions: 1})
	artifact := genCSVArtifact(t, ts, 11)

	// wait_subscribers holds the run open (no subscriber will come), pinning
	// the session active.
	resp, st := startReplayHTTP(t, ts, ReplayRequest{
		ArtifactID: artifact, WaitSubscribers: 1, WaitMS: 60_000,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first session: status %d", resp.StatusCode)
	}
	resp2, _ := startReplayHTTP(t, ts, ReplayRequest{ArtifactID: artifact, WaitSubscribers: 1})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap session: status %d, want 429", resp2.StatusCode)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/replay/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	if _, ok := s.ReplayStatusByID(st.ID); ok {
		t.Fatal("session still registered after DELETE")
	}
	// Slot freed: a new session is admitted.
	resp3, st3 := startReplayHTTP(t, ts, ReplayRequest{ArtifactID: artifact})
	if resp3.StatusCode != http.StatusCreated {
		t.Fatalf("post-delete session: status %d", resp3.StatusCode)
	}
	// Totals count both admitted sessions even though one was deleted; the
	// shed request never minted a session.
	if m := s.Metrics(); m.Replay.SessionsTotal != 2 {
		t.Fatalf("sessions total %d, want 2 (%+v)", m.Replay.SessionsTotal, m.Replay)
	}
	_ = st3
}

// TestReplayMetricsLines checks the /metrics rendering carries the replay
// gauges and counters.
func TestReplayMetricsLines(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	artifact := genCSVArtifact(t, ts, 13)
	resp, st := startReplayHTTP(t, ts, ReplayRequest{ArtifactID: artifact})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /replay: status %d", resp.StatusCode)
	}
	// Drain the stream so the session finishes.
	conn, err := net.Dial("tcp", st.Addr)
	if err != nil {
		t.Fatal(err)
	}
	replay.Consume(conn, nil)
	conn.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range []string{
		"csbd_replay_sessions_total 1",
		"csbd_replay_sessions 1",
		"csbd_replay_subscribers_total 1",
		"csbd_replay_dropped_frames_total 0",
		"csbd_replay_disconnected_total 0",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("metrics missing %q in:\n%s", line, text)
		}
	}
	if !strings.Contains(text, "csbd_replay_emitted_flows_total") {
		t.Fatal("metrics missing emitted counter")
	}
}
