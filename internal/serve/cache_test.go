package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c, err := NewCache(1<<20, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 5 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictsLRUWithinBudget(t *testing.T) {
	c, err := NewCache(100, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 40)) // 5*40 = 200 > 100
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("cache over budget: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// The most recently inserted entry must survive.
	if _, ok := c.Get("k4"); !ok {
		t.Fatal("most recent entry evicted")
	}
	// The oldest must be gone (no disk tier).
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived a 2.5x-over-budget insert storm")
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c, err := NewCache(100, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("old", make([]byte, 40))
	c.Put("mid", make([]byte, 40))
	c.Get("old")                   // touch: "mid" is now LRU
	c.Put("new", make([]byte, 40)) // forces one eviction
	if _, ok := c.Get("old"); !ok {
		t.Fatal("recently touched entry evicted")
	}
	if _, ok := c.Get("mid"); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestCacheOversizedArtifactIsKept(t *testing.T) {
	c, err := NewCache(10, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("big", make([]byte, 1000))
	if _, ok := c.Get("big"); !ok {
		t.Fatal("artifact larger than the budget was dropped; it would rebuild on every request")
	}
}

func TestCacheDiskSpillAndPromotion(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(100, dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 80)
	c.Put("spilled", payload)
	c.Put("fresh", make([]byte, 80)) // evicts "spilled" to disk
	st := c.Stats()
	if st.Spills != 1 || st.DiskEntries != 1 {
		t.Fatalf("stats after spill = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "spilled.art")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	// Disk hit: bytes come back and the artifact is promoted to memory,
	// which in turn evicts (and spills) "fresh" — the tiers swap contents.
	got, ok := c.Get("spilled")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk Get = %v, %v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "spilled.art")); !os.IsNotExist(err) {
		t.Fatal("promotion left the old spill file behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "fresh.art")); err != nil {
		t.Fatalf("evicted entry was not spilled: %v", err)
	}
	if st := c.Stats(); st.DiskEntries != 1 {
		t.Fatalf("stats after swap = %+v", st)
	}
}

func TestCacheDiskBudgetBounded(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(50, dir, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 40))
	}
	st := c.Stats()
	if st.DiskBytes > 120 {
		t.Fatalf("disk tier over budget: %+v", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != st.DiskEntries {
		t.Fatalf("%d spill files on disk, index says %d", len(files), st.DiskEntries)
	}
}

func TestCacheLostSpillFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(50, dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40)) // spills "a"
	if err := os.Remove(filepath.Join(dir, "a.art")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get succeeded after the spill file was deleted")
	}
	if st := c.Stats(); st.DiskEntries != 0 {
		t.Fatalf("stale disk index entry survived: %+v", st)
	}
}
