package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Metrics is a point-in-time snapshot of the service counters, exposed both
// as a struct (for tests and embedding) and as the /metrics text endpoint.
type Metrics struct {
	JobsSubmitted int64
	JobsCompleted int64
	JobsFailed    int64
	JobsCanceled  int64
	JobsRejected  int64
	JobsRunning   int64
	JobRetries    int64
	QueueDepth    int
	Ready         bool
	CacheHits     int64
	CacheMisses   int64
	BytesServed   int64
	Cache         CacheStats
	// Replay aggregates the live-replay subsystem (POST /replay sessions).
	Replay ReplayMetrics
	// Stages aggregates the engine-stage spans of every job cluster by
	// operation name, sorted by op.
	Stages []StageMetric
	// Dist is the distributed worker topology; nil when this daemon is not a
	// coordinator.
	Dist *DistMetrics
	// Journal is the durability WAL snapshot; nil when running without one.
	Journal *JournalMetrics
}

// JournalMetrics snapshots the write-ahead log (Config.Journal).
type JournalMetrics struct {
	// JobsResumed counts jobs re-enqueued from the journal at startup.
	JobsResumed int64
	// AppendErrors counts failed journal writes and unreplayable records.
	AppendErrors int64
	// Replayed is how many records the journal recovered at open.
	Replayed int64
	// TruncatedBytes is the torn tail discarded at open (kill -9 mid-append).
	TruncatedBytes int64
	// Appended counts records written since open; Bytes is the file size.
	Appended int64
	Bytes    int64
}

// DistMetrics snapshots the coordinator's worker pool for /metrics.
type DistMetrics struct {
	WorkersRegistered int64
	WorkersLive       int64
	WorkersLost       int64
	TasksDispatched   int64
	DispatchDeclined  int64
	MinWorkers        int
	// Workers lists live workers plus recent tombstones.
	Workers []WorkerStat
}

// WorkerStat is the per-worker slice of DistMetrics.
type WorkerStat struct {
	Name           string
	Live           bool
	TasksDone      int64
	TasksFailed    int64
	ReplicasHeld   int64
	HeartbeatAgeMS int64
}

// StageMetric is the aggregate of all recorded spans of one engine op.
type StageMetric struct {
	Op       string
	Count    int64
	Tasks    int64
	Real     time.Duration // summed host wall time
	Work     time.Duration // summed task work
	BytesIn  int64
	BytesOut int64
	// Fault-tolerance accounting, summed from the engine's task attempts.
	Attempts    int64
	Retries     int64
	Speculative int64
	// Remote counts task attempts committed on distributed workers.
	Remote int64
}

// HitRatio returns cache hits / (hits + misses) at the job-admission level,
// 0 when nothing has been submitted.
func (m Metrics) HitRatio() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// Metrics returns a snapshot of the service counters, including the
// per-stage aggregation of every span the job clusters traced so far.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		JobsSubmitted: s.submitted.Load(),
		JobsCompleted: s.completed.Load(),
		JobsFailed:    s.failed.Load(),
		JobsCanceled:  s.canceled.Load(),
		JobsRejected:  s.rejected.Load(),
		JobsRunning:   s.running.Load(),
		JobRetries:    s.retries.Load(),
		QueueDepth:    s.QueueDepth(),
		CacheHits:     s.hits.Load(),
		CacheMisses:   s.misses.Load(),
		BytesServed:   s.bytesServed.Load(),
		Cache:         s.cache.Stats(),
		Replay:        s.replayMetrics(),
	}
	m.Ready, _ = s.Ready()
	agg := make(map[string]*StageMetric)
	for _, span := range s.tracer.Spans() {
		sm, ok := agg[span.Op]
		if !ok {
			sm = &StageMetric{Op: span.Op}
			agg[span.Op] = sm
		}
		sm.Count++
		sm.Tasks += int64(span.Tasks)
		sm.Real += span.Real
		sm.Work += span.Work
		sm.BytesIn += span.BytesIn
		sm.BytesOut += span.BytesOut
		sm.Attempts += int64(span.Attempts)
		sm.Retries += int64(span.Retries)
		sm.Speculative += int64(span.Speculative)
		sm.Remote += int64(span.Remote)
	}
	m.Stages = make([]StageMetric, 0, len(agg))
	for _, sm := range agg {
		m.Stages = append(m.Stages, *sm)
	}
	sort.Slice(m.Stages, func(i, j int) bool { return m.Stages[i].Op < m.Stages[j].Op })
	if s.cfg.Dist != nil {
		registered, live, lost, dispatched, declined := s.cfg.Dist.Counts()
		dm := &DistMetrics{
			WorkersRegistered: registered,
			WorkersLive:       live,
			WorkersLost:       lost,
			TasksDispatched:   dispatched,
			DispatchDeclined:  declined,
			MinWorkers:        s.cfg.MinWorkers,
		}
		for _, wi := range s.cfg.Dist.Workers() {
			dm.Workers = append(dm.Workers, WorkerStat{
				Name: wi.Name, Live: wi.Live,
				TasksDone: wi.TasksDone, TasksFailed: wi.TasksFailed,
				ReplicasHeld: wi.ReplicasHeld, HeartbeatAgeMS: wi.HeartbeatAgeMS,
			})
		}
		m.Dist = dm
	}
	if s.journal != nil {
		st := s.journal.Stats()
		m.Journal = &JournalMetrics{
			JobsResumed:    s.resumed.Load(),
			AppendErrors:   s.journalErrs.Load(),
			Replayed:       int64(st.Replayed),
			TruncatedBytes: st.TruncatedBytes,
			Appended:       st.Appended,
			Bytes:          st.Bytes,
		}
	}
	return m
}

// handleMetrics is GET /metrics: a flat, Prometheus-style text rendering.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	var b strings.Builder
	put := func(name string, v any) { fmt.Fprintf(&b, "%s %v\n", name, v) }
	put("csbd_jobs_submitted_total", m.JobsSubmitted)
	put("csbd_jobs_completed_total", m.JobsCompleted)
	put("csbd_jobs_failed_total", m.JobsFailed)
	put("csbd_jobs_canceled_total", m.JobsCanceled)
	put("csbd_jobs_rejected_total", m.JobsRejected)
	put("csbd_jobs_running", m.JobsRunning)
	put("csbd_job_retries_total", m.JobRetries)
	put("csbd_queue_depth", m.QueueDepth)
	ready := 0
	if m.Ready {
		ready = 1
	}
	put("csbd_ready", ready)
	put("csbd_cache_hits_total", m.CacheHits)
	put("csbd_cache_misses_total", m.CacheMisses)
	fmt.Fprintf(&b, "csbd_cache_hit_ratio %.4f\n", m.HitRatio())
	put("csbd_cache_entries", m.Cache.Entries)
	put("csbd_cache_bytes", m.Cache.Bytes)
	put("csbd_cache_disk_entries", m.Cache.DiskEntries)
	put("csbd_cache_disk_bytes", m.Cache.DiskBytes)
	put("csbd_cache_evictions_total", m.Cache.Evictions)
	put("csbd_cache_spills_total", m.Cache.Spills)
	put("csbd_cache_quarantined_total", m.Cache.Quarantined)
	put("csbd_cache_spill_errors_total", m.Cache.SpillErrors)
	put("csbd_bytes_served_total", m.BytesServed)
	put("csbd_replay_sessions_active", m.Replay.SessionsActive)
	put("csbd_replay_sessions", m.Replay.Sessions)
	put("csbd_replay_sessions_total", m.Replay.SessionsTotal)
	put("csbd_replay_subscribers", m.Replay.Subscribers)
	put("csbd_replay_subscribers_total", m.Replay.SubscribersTotal)
	put("csbd_replay_emitted_flows_total", m.Replay.Emitted)
	put("csbd_replay_dropped_frames_total", m.Replay.Dropped)
	put("csbd_replay_disconnected_total", m.Replay.Disconnected)
	fmt.Fprintf(&b, "csbd_replay_flows_per_sec %.2f\n", m.Replay.FlowsPerSec)
	for _, sm := range m.Stages {
		fmt.Fprintf(&b, "csbd_stage_count{op=%q} %d\n", sm.Op, sm.Count)
		fmt.Fprintf(&b, "csbd_stage_tasks_total{op=%q} %d\n", sm.Op, sm.Tasks)
		fmt.Fprintf(&b, "csbd_stage_attempts_total{op=%q} %d\n", sm.Op, sm.Attempts)
		fmt.Fprintf(&b, "csbd_stage_retries_total{op=%q} %d\n", sm.Op, sm.Retries)
		fmt.Fprintf(&b, "csbd_stage_speculative_total{op=%q} %d\n", sm.Op, sm.Speculative)
		fmt.Fprintf(&b, "csbd_stage_remote_total{op=%q} %d\n", sm.Op, sm.Remote)
		fmt.Fprintf(&b, "csbd_stage_real_seconds_total{op=%q} %.6f\n", sm.Op, sm.Real.Seconds())
		fmt.Fprintf(&b, "csbd_stage_work_seconds_total{op=%q} %.6f\n", sm.Op, sm.Work.Seconds())
		fmt.Fprintf(&b, "csbd_stage_bytes_in_total{op=%q} %d\n", sm.Op, sm.BytesIn)
		fmt.Fprintf(&b, "csbd_stage_bytes_out_total{op=%q} %d\n", sm.Op, sm.BytesOut)
	}
	if m.Dist != nil {
		put("csbd_dist_workers_registered_total", m.Dist.WorkersRegistered)
		put("csbd_dist_workers_live", m.Dist.WorkersLive)
		put("csbd_dist_workers_lost_total", m.Dist.WorkersLost)
		put("csbd_dist_tasks_dispatched_total", m.Dist.TasksDispatched)
		put("csbd_dist_dispatch_declined_total", m.Dist.DispatchDeclined)
		put("csbd_dist_min_workers", m.Dist.MinWorkers)
		for _, ws := range m.Dist.Workers {
			live := 0
			if ws.Live {
				live = 1
			}
			fmt.Fprintf(&b, "csbd_dist_worker_live{worker=%q} %d\n", ws.Name, live)
			fmt.Fprintf(&b, "csbd_dist_worker_tasks_done_total{worker=%q} %d\n", ws.Name, ws.TasksDone)
			fmt.Fprintf(&b, "csbd_dist_worker_tasks_failed_total{worker=%q} %d\n", ws.Name, ws.TasksFailed)
			fmt.Fprintf(&b, "csbd_dist_worker_replicas{worker=%q} %d\n", ws.Name, ws.ReplicasHeld)
			fmt.Fprintf(&b, "csbd_dist_worker_heartbeat_age_seconds{worker=%q} %.3f\n",
				ws.Name, float64(ws.HeartbeatAgeMS)/1000)
		}
	}
	if m.Journal != nil {
		put("csbd_jobs_resumed_total", m.Journal.JobsResumed)
		put("csbd_journal_append_errors_total", m.Journal.AppendErrors)
		put("csbd_journal_replayed_records", m.Journal.Replayed)
		put("csbd_journal_truncated_bytes", m.Journal.TruncatedBytes)
		put("csbd_journal_appended_total", m.Journal.Appended)
		put("csbd_journal_bytes", m.Journal.Bytes)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
