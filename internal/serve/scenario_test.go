package serve

import (
	"bytes"
	"encoding/hex"
	"net"
	"net/http"
	"strings"
	"testing"

	"csb/internal/netflow"
	"csb/internal/replay"
	"csb/internal/scenario"
)

// tinyScenario is a scenario small enough for unit tests. The trace
// background makes the compiled bytes independent of the job's cluster
// shape, so tests can compare against a local Compile with no cluster.
func tinyScenario() *scenario.Spec {
	return &scenario.Spec{
		Seed: 9,
		Background: scenario.Background{
			Source: scenario.SourceTrace, Hosts: 15, Sessions: 150,
		},
		Attacks: []scenario.Attack{
			{Type: scenario.TypeHostScan, StartMS: 1_000, Count: 120},
			{Type: scenario.TypeSYNFlood, StartMS: 5_000, Count: 200},
		},
	}
}

func TestSpecNormalizeScenario(t *testing.T) {
	s := Spec{
		// Flat knobs set alongside the scenario: all normalized away.
		Hosts: 40, Sessions: 700, Seed: 3, Fraction: 0.5, Edges: 9000,
		Scenario: tinyScenario(),
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Generator != GenScenario || s.Format != FormatCSBF {
		t.Fatalf("normalized kind = %q/%q, want %s/%s", s.Generator, s.Format, GenScenario, FormatCSBF)
	}
	if s.Hosts != 0 || s.Sessions != 0 || s.Seed != 0 || s.Fraction != 0 || s.Edges != 0 {
		t.Fatalf("flat knobs survived scenario normalization: %+v", s)
	}
	// The embedded spec was normalized too (defaults applied in place).
	if s.Scenario.Attacks[0].Attacker == 0 {
		t.Fatal("embedded scenario not normalized")
	}

	// Identity follows the scenario's own content address: a flat-knob
	// variant collapses onto the same ID, a scenario mutation splits it.
	variant := Spec{Edges: 12345, Scenario: tinyScenario()}
	if err := variant.Normalize(); err != nil {
		t.Fatal(err)
	}
	if variant.ID() != s.ID() {
		t.Fatal("flat knobs differentiated scenario artifact identities")
	}
	mutated := Spec{Scenario: tinyScenario()}
	mutated.Scenario.Seed = 10
	if err := mutated.Normalize(); err != nil {
		t.Fatal(err)
	}
	if mutated.ID() == s.ID() {
		t.Fatal("scenario seed change did not change the artifact identity")
	}

	// Scenario jobs are csbf-only; the kind without a spec is invalid.
	bad := Spec{Scenario: tinyScenario(), Format: FormatTSV}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("tsv scenario job accepted (err=%v)", err)
	}
	orphan := Spec{Generator: GenScenario, Edges: 100}
	if err := orphan.Normalize(); err == nil || !strings.Contains(err.Error(), "scenario") {
		t.Fatalf("scenario generator without a spec accepted (err=%v)", err)
	}
	invalid := Spec{Scenario: &scenario.Spec{}}
	if err := invalid.Normalize(); err == nil {
		t.Fatal("scenario with no attacks accepted")
	}
}

// TestScenarioJobLifecycle runs a scenario job through the daemon end to
// end: submit, poll, fetch — and checks the artifact is byte-identical to a
// local compile of the same spec, that the label section survived the
// content-addressed store, and that a repeat submit is a cache hit.
func TestScenarioJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	submit := Spec{Scenario: tinyScenario()}
	resp, st := postJob(t, ts, submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %q (%s)", final.State, final.Error)
	}
	got := fetchArtifact(t, ts, st.ID)

	want, err := scenario.Compile(mustScenario(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := scenario.EncodeLabeled(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatal("daemon scenario artifact differs from a local compile of the same spec")
	}

	// The labels decode straight out of the fetched artifact.
	sc, err := scenario.DecodeLabeled(got)
	if err != nil {
		t.Fatalf("decoding fetched artifact: %v", err)
	}
	if len(sc.Labels) != 2 || len(sc.FlowAttack) != len(sc.Flows) {
		t.Fatalf("fetched artifact ground truth: %d labels, %d/%d flow tags",
			len(sc.Labels), len(sc.FlowAttack), len(sc.Flows))
	}

	// Identical scenario spec → cache hit, same artifact.
	respWarm, warm := postJob(t, ts, Spec{Scenario: tinyScenario()})
	if respWarm.StatusCode != http.StatusOK || !warm.CacheHit || warm.ArtifactID != final.ArtifactID {
		t.Fatalf("warm scenario submit = %d %+v, want cache hit on %s",
			respWarm.StatusCode, warm, final.ArtifactID)
	}
	if m := s.Metrics(); m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.CacheHits)
	}
}

// mustScenario returns tinyScenario normalized, as the daemon job sees it.
func mustScenario(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := tinyScenario()
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestScenarioAdmissionCap checks MaxEdges admission applies to the
// scenario's background edge target, not the (zeroed) flat knob.
func TestScenarioAdmissionCap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxEdges: 400})
	sp := tinyScenario()
	sp.Background = scenario.Background{Source: scenario.SourcePGPBA, Hosts: 15, Sessions: 150, Edges: 4000}
	resp, _ := postJob(t, ts, Spec{Scenario: sp})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap scenario background accepted with %d", resp.StatusCode)
	}
	// A trace background requests no generated edges and is admitted.
	resp2, st := postJob(t, ts, Spec{Scenario: tinyScenario()})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("trace scenario shed with %d", resp2.StatusCode)
	}
	if final := pollDone(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("trace scenario job = %q (%s)", final.State, final.Error)
	}
}

// TestReplayScenarioArtifact replays a labeled csbf artifact through the
// daemon's replay endpoint: the stream must deliver exactly the artifact's
// flow section (labels are artifact-side ground truth, not wire frames).
func TestReplayScenarioArtifact(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, Spec{Scenario: tinyScenario()})
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("scenario job = %q (%s)", final.State, final.Error)
	}
	artifact := fetchArtifact(t, ts, st.ID)
	sc, err := scenario.DecodeLabeled(artifact)
	if err != nil {
		t.Fatal(err)
	}

	resp, rs := startReplayHTTP(t, ts, ReplayRequest{
		ArtifactID: final.ArtifactID, WaitSubscribers: 1, WaitMS: 30_000,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /replay: status %d", resp.StatusCode)
	}
	if rs.Flows != len(sc.Flows) {
		t.Fatalf("session flows = %d, want %d", rs.Flows, len(sc.Flows))
	}
	conn, err := net.Dial("tcp", rs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var payload bytes.Buffer
	cs, err := replay.Consume(conn, func(_ uint64, _ netflow.Flow, raw []byte) error {
		payload.Write(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Clean || cs.Gaps != 0 {
		t.Fatalf("stream not clean: %+v", cs)
	}
	if hex.EncodeToString(cs.Header.ArtifactSHA[:]) != final.ArtifactID {
		t.Fatal("stream header does not carry the labeled artifact's content address")
	}
	section := artifact[replay.FlowFileHeaderLen : replay.FlowFileHeaderLen+len(sc.Flows)*replay.FlowRecordLen]
	if !bytes.Equal(payload.Bytes(), section) {
		t.Fatal("replayed payload differs from the artifact flow section")
	}
}
