package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/replay"
)

// DefaultReplaySessions is the cap on concurrently-running replay sessions
// when Config.ReplaySessions is zero. Each session owns a TCP listener and an
// emitter goroutine, so the cap is admission control, same as the job queue.
const DefaultReplaySessions = 8

// defaultReplayAwait bounds how long a session with wait_subscribers waits
// before starting anyway, when the request does not say.
const defaultReplayAwait = 60 * time.Second

// ReplayRequest is the body of POST /replay: replay a cached artifact as a
// live CSBS1 stream. Only flow-shaped artifacts replay — csv directly, csbg
// via the graph's flow projection; tsv and ndjson have no flow decoder.
type ReplayRequest struct {
	// ArtifactID is the content address of the dataset to replay.
	ArtifactID string `json:"artifact_id"`
	// Speed is the time-warp factor (0 = as fast as possible; see
	// replay.Options.Speed).
	Speed float64 `json:"speed,omitempty"`
	// Rate caps emission in flows/sec (0 = unlimited). Graph-projected flows
	// carry no timeline, so Rate is their only pacing knob.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth for Rate (0 = default).
	Burst int `json:"burst,omitempty"`
	// Policy is the lag policy: block, drop or disconnect (default block).
	Policy string `json:"policy,omitempty"`
	// Queue bounds each subscriber's send queue in frames (0 = default).
	Queue int `json:"queue,omitempty"`
	// WaitSubscribers delays the clock until this many subscribers have
	// connected (0 starts immediately), so a fan-out benchmark's subscribers
	// all see flow 0.
	WaitSubscribers int `json:"wait_subscribers,omitempty"`
	// WaitMS bounds the subscriber wait in milliseconds (0 = 60s); on
	// timeout the run starts with whoever is connected.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// ReplayStatus is the wire representation of a replay session (the POST
// /replay response and GET /replay/{id}).
type ReplayStatus struct {
	ID         string `json:"id"`
	ArtifactID string `json:"artifact_id"`
	// Addr is the TCP address subscribers dial for the CSBS1 stream.
	Addr   string  `json:"addr"`
	Flows  int     `json:"flows"`
	Speed  float64 `json:"speed"`
	Rate   float64 `json:"rate,omitempty"`
	Policy string  `json:"policy"`

	Emitted          int64   `json:"emitted"`
	Subscribers      int     `json:"subscribers"`
	SubscribersTotal int64   `json:"subscribers_total"`
	Dropped          int64   `json:"dropped"`
	Disconnected     int64   `json:"disconnected"`
	Done             bool    `json:"done"`
	FlowsPerSec      float64 `json:"flows_per_sec,omitempty"`
	CreatedAt        string  `json:"created_at"`
}

// replaySession is the server-side record of one live replay.
type replaySession struct {
	id       string
	artifact string
	srv      *replay.Server
	addr     string
	flows    int
	speed    float64
	rate     float64
	policy   replay.LagPolicy
	created  time.Time
}

func (rs *replaySession) status() ReplayStatus {
	st := rs.srv.Stats()
	return ReplayStatus{
		ID:         rs.id,
		ArtifactID: rs.artifact,
		Addr:       rs.addr,
		Flows:      rs.flows,
		Speed:      rs.speed,
		Rate:       rs.rate,
		Policy:     rs.policy.String(),

		Emitted:          st.Emitted,
		Subscribers:      st.Subscribers,
		SubscribersTotal: st.SubscribersTotal,
		Dropped:          st.Dropped,
		Disconnected:     st.Disconnected,
		Done:             st.Done,
		FlowsPerSec:      st.FlowsPerSec,
		CreatedAt:        rs.created.UTC().Format(time.RFC3339Nano),
	}
}

// replayTotals accumulates the counters of deleted sessions so /metrics
// totals survive DELETE /replay/{id}. Guarded by Server.rmu.
type replayTotals struct {
	subscribers  int64
	emitted      int64
	dropped      int64
	disconnected int64
}

// StartReplay decodes the artifact's flows and opens a replay session on an
// ephemeral loopback port. Errors carry the HTTP status via submitErr, same
// as Submit.
func (s *Server) StartReplay(req ReplayRequest) (ReplayStatus, error) {
	if req.ArtifactID == "" {
		return ReplayStatus{}, &submitErr{code: http.StatusBadRequest, msg: "artifact_id is required"}
	}
	policy, err := replay.ParseLagPolicy(req.Policy)
	if err != nil {
		return ReplayStatus{}, &submitErr{code: http.StatusBadRequest, msg: err.Error()}
	}
	data, ok := s.cache.Get(req.ArtifactID)
	if !ok {
		return ReplayStatus{}, &submitErr{code: http.StatusNotFound, msg: "artifact evicted or unknown; resubmit the job"}
	}
	format := s.artifactFormat(req.ArtifactID)
	flows, err := decodeReplayFlows(data, format)
	if err != nil {
		return ReplayStatus{}, &submitErr{code: http.StatusBadRequest, msg: err.Error()}
	}
	// The replay contract wants non-decreasing start times; csv artifacts are
	// already sorted (Assembler.Finish) and graph projections are all-zero,
	// but re-sorting is cheap insurance against future formats.
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].StartMicros < flows[j].StartMicros })

	opts := replay.Options{
		Speed: req.Speed, Rate: req.Rate, Burst: req.Burst,
		Policy: policy, QueueLen: req.Queue,
	}
	// The artifact ID is the hex SHA-256 of the spec; stamp it into the
	// stream header so subscribers can tie the stream back to the artifact.
	if sum, err := hex.DecodeString(req.ArtifactID); err == nil && len(sum) == 32 {
		copy(opts.ArtifactSHA[:], sum)
	}
	rsrv, err := replay.NewServer(flows, opts)
	if err != nil {
		return ReplayStatus{}, &submitErr{code: http.StatusBadRequest, msg: err.Error()}
	}

	s.rmu.Lock()
	if s.replaysClosed {
		s.rmu.Unlock()
		rsrv.Close()
		return ReplayStatus{}, &submitErr{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	active := 0
	for _, rs := range s.replays {
		if !rs.srv.Done() {
			active++
		}
	}
	cap := s.cfg.ReplaySessions
	if cap <= 0 {
		cap = DefaultReplaySessions
	}
	if active >= cap {
		s.rmu.Unlock()
		rsrv.Close()
		return ReplayStatus{}, &submitErr{code: http.StatusTooManyRequests,
			msg: fmt.Sprintf("replay session cap %d reached", cap)}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.rmu.Unlock()
		rsrv.Close()
		return ReplayStatus{}, &submitErr{code: http.StatusInternalServerError, msg: err.Error()}
	}
	rs := &replaySession{
		id:       "r" + strconv.FormatInt(s.rseq.Add(1), 10),
		artifact: req.ArtifactID,
		srv:      rsrv,
		addr:     ln.Addr().String(),
		flows:    len(flows),
		speed:    req.Speed,
		rate:     req.Rate,
		policy:   policy,
		created:  time.Now(),
	}
	s.replays[rs.id] = rs
	s.rmu.Unlock()

	go rsrv.Serve(ln)
	if n := req.WaitSubscribers; n > 0 {
		wait := defaultReplayAwait
		if req.WaitMS > 0 {
			wait = time.Duration(req.WaitMS) * time.Millisecond
		}
		go func() {
			// On timeout, start with whoever showed up — a benchmark that
			// under-dialed still runs, just without the synchronized flow 0.
			rsrv.AwaitSubscribers(n, wait)
			rsrv.Start()
		}()
	} else if err := rsrv.Start(); err != nil {
		s.dropReplay(rs.id)
		return ReplayStatus{}, &submitErr{code: http.StatusInternalServerError, msg: err.Error()}
	}
	return rs.status(), nil
}

// ReplayStatusByID returns a session's status.
func (s *Server) ReplayStatusByID(id string) (ReplayStatus, bool) {
	s.rmu.Lock()
	rs, ok := s.replays[id]
	s.rmu.Unlock()
	if !ok {
		return ReplayStatus{}, false
	}
	return rs.status(), true
}

// StopReplay tears a session down, folding its counters into the metrics
// totals; it reports whether the session existed.
func (s *Server) StopReplay(id string) bool {
	rs := s.dropReplay(id)
	if rs == nil {
		return false
	}
	rs.srv.Close()
	return true
}

// dropReplay unregisters a session and accumulates its final counters.
func (s *Server) dropReplay(id string) *replaySession {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	rs, ok := s.replays[id]
	if !ok {
		return nil
	}
	delete(s.replays, id)
	st := rs.srv.Stats()
	s.rtotals.subscribers += st.SubscribersTotal
	s.rtotals.emitted += st.Emitted
	s.rtotals.dropped += st.Dropped
	s.rtotals.disconnected += st.Disconnected
	return rs
}

// closeReplays tears down every session (server shutdown). Setting
// replaysClosed under rmu fences concurrent StartReplay calls: a session
// either registers before the snapshot (and is closed here) or observes the
// flag and refuses.
func (s *Server) closeReplays() {
	s.rmu.Lock()
	s.replaysClosed = true
	sessions := make([]*replaySession, 0, len(s.replays))
	for _, rs := range s.replays {
		sessions = append(sessions, rs)
	}
	s.rmu.Unlock()
	for _, rs := range sessions {
		s.StopReplay(rs.id)
	}
}

// ReplayMetrics aggregates the replay subsystem for /metrics: live sessions
// plus the accumulated counters of deleted ones.
type ReplayMetrics struct {
	// SessionsActive counts sessions still emitting; Sessions counts every
	// registered session (finished ones linger until DELETE); SessionsTotal
	// counts every session ever started.
	SessionsActive int
	Sessions       int
	SessionsTotal  int64
	// Subscribers is the current connection count across sessions;
	// SubscribersTotal counts every subscriber that ever connected.
	Subscribers      int
	SubscribersTotal int64
	// Emitted counts flows released by the replay clocks; Dropped and
	// Disconnected count the per-policy lag outcomes.
	Emitted      int64
	Dropped      int64
	Disconnected int64
	// FlowsPerSec sums the emission rate of the currently-active sessions.
	FlowsPerSec float64
}

// replayMetrics snapshots the replay subsystem.
func (s *Server) replayMetrics() ReplayMetrics {
	s.rmu.Lock()
	sessions := make([]*replaySession, 0, len(s.replays))
	for _, rs := range s.replays {
		sessions = append(sessions, rs)
	}
	m := ReplayMetrics{
		SessionsTotal:    s.rseq.Load(),
		SubscribersTotal: s.rtotals.subscribers,
		Emitted:          s.rtotals.emitted,
		Dropped:          s.rtotals.dropped,
		Disconnected:     s.rtotals.disconnected,
	}
	s.rmu.Unlock()
	m.Sessions = len(sessions)
	for _, rs := range sessions {
		st := rs.srv.Stats()
		if !st.Done {
			m.SessionsActive++
			m.FlowsPerSec += st.FlowsPerSec
		}
		m.Subscribers += st.Subscribers
		m.SubscribersTotal += st.SubscribersTotal
		m.Emitted += st.Emitted
		m.Dropped += st.Dropped
		m.Disconnected += st.Disconnected
	}
	return m
}

// artifactFormat recovers an artifact's format from any job that produced it
// ("" when no job record names it — e.g. a cache-warmed artifact).
func (s *Server) artifactFormat(artifact string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.artifact == artifact {
			return j.spec.Format
		}
	}
	return ""
}

// decodeReplayFlows turns artifact bytes into the flow set a replay run
// emits. csv (flow records), csbg (graph whose flow projection is replayed)
// and csbf (labeled flow artifact; the flow section replays and subscribers
// re-attach labels from the spec) are flow-shaped; other formats have no
// decoder and are rejected.
func decodeReplayFlows(data []byte, format string) ([]netflow.Flow, error) {
	switch format {
	case FormatCSV:
		return netflow.ReadCSV(bytes.NewReader(data))
	case FormatCSBG:
		g, err := graph.Read(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return netflow.FlowsFromGraph(g), nil
	case FormatCSBF:
		// ReadFlowFile stops after the counted records, so the CSBL1 label
		// section trailing a labeled artifact is ignored here — the stream
		// carries exactly the flow section, preserving the byte-identity
		// contract between stream payloads and the artifact's flow bytes.
		return replay.ReadFlowFile(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("artifact format %q is not replayable (want %s, %s or %s)",
			format, FormatCSV, FormatCSBG, FormatCSBF)
	}
}

// handleReplayStart is POST /replay.
func (s *Server) handleReplayStart(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid replay request: "+err.Error())
		return
	}
	st, err := s.StartReplay(req)
	if err != nil {
		var se *submitErr
		if errors.As(err, &se) {
			httpError(w, se.code, se.msg)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// handleReplayStatus is GET /replay/{id}.
func (s *Server) handleReplayStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.ReplayStatusByID(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such replay session")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReplayStop is DELETE /replay/{id}.
func (s *Server) handleReplayStop(w http.ResponseWriter, r *http.Request) {
	if !s.StopReplay(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "no such replay session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
