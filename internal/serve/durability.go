package serve

import (
	"encoding/json"

	"csb/internal/journal"
)

// Journal record kinds serve writes. The coordinator's checkpoint layer
// (dist.Checkpointed) shares the same journal with "task.done" records;
// compaction here retains those only while some job is still incomplete,
// since a finished job's stage results can never be asked for again.
const (
	journalJobAccepted = "job.accepted" // payload: normalized spec JSON
	journalJobDone     = "job.done"
	journalJobFailed   = "job.failed"
	journalJobCanceled = "job.canceled"
	journalTaskDone    = "task.done" // written by dist.Checkpointed
)

// journalAppend records one lifecycle event. Append failures (disk full,
// journal closed during shutdown) are counted, not fatal: durability
// degrades to in-memory behavior rather than taking the daemon down.
func (s *Server) journalAppend(kind, key string, payload []byte) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(journal.Record{Kind: kind, Key: key, Payload: payload}); err != nil {
		s.journalErrs.Add(1)
	}
}

// resumeFromJournal replays the WAL: any job that was accepted but never
// reached a terminal state is re-submitted, so a daemon killed mid-build
// converges to the same artifacts after restart. Called from New once the
// workers are running; content addressing makes the replay idempotent — a
// resumed job carries the same artifact ID, so its bytes are identical to
// what the interrupted run would have produced.
func (s *Server) resumeFromJournal() {
	type pending struct {
		spec     []byte
		complete bool
	}
	byKey := make(map[string]*pending)
	var order []string
	for _, rec := range s.journal.Records() {
		switch rec.Kind {
		case journalJobAccepted:
			p, ok := byKey[rec.Key]
			if !ok {
				p = &pending{}
				byKey[rec.Key] = p
				order = append(order, rec.Key)
			}
			// A re-accept after a terminal state (e.g. resubmit after cache
			// eviction) reopens the job; the latest spec payload wins.
			p.complete = false
			if len(rec.Payload) > 0 {
				p.spec = rec.Payload
			}
		case journalJobDone, journalJobFailed, journalJobCanceled:
			if p, ok := byKey[rec.Key]; ok {
				p.complete = true
			}
		}
	}
	incomplete := make(map[string]bool)
	for key, p := range byKey {
		if !p.complete && len(p.spec) > 0 {
			incomplete[key] = true
		}
	}

	// Drop the terminal noise before re-submitting: keep the accepted
	// records of incomplete jobs (they are the recovery source of truth
	// until those jobs finish) and coordinator task checkpoints only while
	// some job can still consume them.
	s.journal.Compact(func(r journal.Record) bool {
		switch r.Kind {
		case journalJobAccepted:
			return incomplete[r.Key]
		case journalTaskDone:
			return len(incomplete) > 0
		default:
			return false
		}
	})

	for _, key := range order {
		p := byKey[key]
		if p.complete || len(p.spec) == 0 {
			continue
		}
		var spec Spec
		if err := json.Unmarshal(p.spec, &spec); err != nil {
			s.journalErrs.Add(1)
			continue
		}
		if _, err := s.Submit(&spec); err != nil {
			// Queue full or spec no longer admissible: surfaced as a
			// counter; the accepted record stays for the next restart.
			s.journalErrs.Add(1)
			continue
		}
		s.resumed.Add(1)
	}
}
