package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"csb/internal/cluster"
	"csb/internal/core"
	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
	"csb/internal/scenario"
)

// EngineShape fixes the virtual-cluster topology artifacts are generated on.
// Partitioning (and therefore per-partition RNG streams) follows the cluster
// shape, so the shape is part of a deployment's artifact identity: one
// daemon must keep one shape for its cache to stay sound, and a CLI run
// reproduces a daemon's bytes only on the same shape (both default to one
// node with all local cores).
// The fault-tolerance knobs below are deliberately NOT part of artifact
// identity: retries, speculation and injected faults change the attempt
// schedule, never the committed bytes (see internal/cluster/fault.go), so
// chaos-enabled daemons keep serving cache-compatible artifacts.
type EngineShape struct {
	// Nodes is the virtual node count (0 means 1).
	Nodes int
	// CoresPerNode is the per-node core count (0 means all local cores).
	CoresPerNode int
	// MaxTaskRetries bounds per-task retry attempts in the engine (0 means
	// cluster.DefaultMaxTaskRetries; negative disables retries).
	MaxTaskRetries int
	// Speculation enables straggler duplication in the engine.
	Speculation bool
	// Faults, when non-nil, injects deterministic chaos into every job's
	// engine (testing only).
	Faults *cluster.FaultPlan
}

// newCluster builds the per-job execution cluster: the deployment's engine
// shape, bounded by ctx, traced by tracer (both may be nil).
func (sh EngineShape) newCluster(ctx context.Context, tracer *cluster.Tracer) (*cluster.Cluster, error) {
	nodes := sh.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	cores := sh.CoresPerNode
	if cores <= 0 {
		cores = 0 // cluster.Config fills GOMAXPROCS via MaxParallel below
	}
	cfg := cluster.Config{
		Nodes: nodes, CoresPerNode: cores, Context: ctx, Tracer: tracer,
		MaxTaskRetries: sh.MaxTaskRetries,
		Speculation:    sh.Speculation,
		Faults:         sh.Faults,
	}
	if cfg.CoresPerNode == 0 {
		// Match cluster.Local(0): single node exposing every local core.
		l := cluster.Local(0)
		cfg.CoresPerNode = l.Config().CoresPerNode
	}
	return cluster.New(cfg)
}

// BuildArtifact runs the full pipeline for one normalized spec — synthetic
// seed trace, seed analysis, generation on c, artifact encoding — and
// returns the encoded artifact bytes. The bytes are a pure function of
// (spec, engine shape); ctx cancellation aborts between engine stages.
func BuildArtifact(ctx context.Context, spec Spec, c *cluster.Cluster) ([]byte, error) {
	if spec.Generator == GenScenario {
		// Scenario jobs reuse the same per-job cluster (cancellation, fault
		// plan, tracer), so csbd's retry and chaos semantics apply to labeled
		// artifacts unchanged.
		sc, err := scenario.Compile(spec.Scenario, c)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return scenario.EncodeLabeled(sc)
	}
	seed, err := buildSeed(spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var gen core.Generator
	switch spec.Generator {
	case GenPGSK:
		gen = &core.PGSK{Seed: spec.Seed, Cluster: c}
	default:
		gen = &core.PGPBA{Fraction: spec.Fraction, Seed: spec.Seed, Cluster: c}
	}
	g, err := gen.Generate(seed, spec.Edges)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := EncodeArtifact(&buf, g, spec.Format); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildSeed runs the Figure 1 pipeline over a synthetic trace sized by the
// spec (the serve-side equivalent of csb.BuildSyntheticSeed).
func buildSeed(spec Spec) (*core.Seed, error) {
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(spec.Hosts, spec.Sessions, spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("serve: synthesizing seed trace: %w", err)
	}
	return core.Analyze(netflow.BuildGraph(netflow.Assemble(pkts, 0)))
}

// EncodeArtifact serializes g in the given artifact format. The tsv and csbg
// encodings are exactly Graph.WriteEdgeList and Graph.Write, so daemon
// artifacts stay byte-identical to csbgen's files.
func EncodeArtifact(w io.Writer, g *graph.Graph, format string) error {
	switch format {
	case FormatCSBG:
		return g.Write(w)
	case FormatCSV:
		return netflow.WriteCSV(w, netflow.FlowsFromGraph(g))
	case FormatNDJSON:
		return writeNDJSON(w, g)
	case FormatTSV, "":
		return g.WriteEdgeList(w)
	default:
		return fmt.Errorf("serve: unknown artifact format %q", format)
	}
}

// ndjsonEdge is the NDJSON projection of one flow edge; field names mirror
// the TSV edge-list header.
type ndjsonEdge struct {
	Src        int64  `json:"src"`
	Dst        int64  `json:"dst"`
	Proto      string `json:"proto"`
	SrcPort    uint16 `json:"src_port"`
	DstPort    uint16 `json:"dst_port"`
	DurationMS int64  `json:"duration_ms"`
	OutBytes   int64  `json:"out_bytes"`
	InBytes    int64  `json:"in_bytes"`
	OutPkts    int64  `json:"out_pkts"`
	InPkts     int64  `json:"in_pkts"`
	State      string `json:"state"`
}

// writeNDJSON emits one JSON object per edge, newline-delimited, in edge
// order (deterministic for deterministic graphs).
func writeNDJSON(w io.Writer, g *graph.Graph) error {
	enc := json.NewEncoder(w)
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		rec := ndjsonEdge{
			Src: int64(e.Src), Dst: int64(e.Dst),
			Proto:   e.Props.Protocol.String(),
			SrcPort: e.Props.SrcPort, DstPort: e.Props.DstPort,
			DurationMS: e.Props.Duration,
			OutBytes:   e.Props.OutBytes, InBytes: e.Props.InBytes,
			OutPkts: e.Props.OutPkts, InPkts: e.Props.InPkts,
			State: e.Props.State.String(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
