package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"csb/internal/cluster"
	"csb/internal/core"
	"csb/internal/dist/rows"
	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
	"csb/internal/scenario"
)

// EngineShape fixes the virtual-cluster topology artifacts are generated on.
// Partitioning (and therefore per-partition RNG streams) follows the cluster
// shape, so the shape is part of a deployment's artifact identity: one
// daemon must keep one shape for its cache to stay sound, and a CLI run
// reproduces a daemon's bytes only on the same shape (both default to one
// node with all local cores).
// The fault-tolerance knobs below are deliberately NOT part of artifact
// identity: retries, speculation and injected faults change the attempt
// schedule, never the committed bytes (see internal/cluster/fault.go), so
// chaos-enabled daemons keep serving cache-compatible artifacts.
type EngineShape struct {
	// Nodes is the virtual node count (0 means 1).
	Nodes int
	// CoresPerNode is the per-node core count (0 means all local cores).
	CoresPerNode int
	// MaxTaskRetries bounds per-task retry attempts in the engine (0 means
	// cluster.DefaultMaxTaskRetries; negative disables retries).
	MaxTaskRetries int
	// Speculation enables straggler duplication in the engine.
	Speculation bool
	// Faults, when non-nil, injects deterministic chaos into every job's
	// engine (testing only).
	Faults *cluster.FaultPlan
}

// newCluster builds the per-job execution cluster: the deployment's engine
// shape, bounded by ctx, traced by tracer, dispatching remotable stages to
// exec (all three may be nil). Like the fault knobs, exec is not part of
// artifact identity: where a stage's tasks run never changes their bytes.
func (sh EngineShape) newCluster(ctx context.Context, tracer *cluster.Tracer, exec cluster.TaskExecutor) (*cluster.Cluster, error) {
	nodes := sh.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	cores := sh.CoresPerNode
	if cores <= 0 {
		cores = 0 // cluster.Config fills GOMAXPROCS via MaxParallel below
	}
	cfg := cluster.Config{
		Nodes: nodes, CoresPerNode: cores, Context: ctx, Tracer: tracer,
		MaxTaskRetries: sh.MaxTaskRetries,
		Speculation:    sh.Speculation,
		Faults:         sh.Faults,
		Executor:       exec,
	}
	if cfg.CoresPerNode == 0 {
		// Match cluster.Local(0): single node exposing every local core.
		l := cluster.Local(0)
		cfg.CoresPerNode = l.Config().CoresPerNode
	}
	return cluster.New(cfg)
}

// BuildArtifact runs the full pipeline for one normalized spec — synthetic
// seed trace, seed analysis, generation on c, artifact encoding — and
// returns the encoded artifact bytes. The bytes are a pure function of
// (spec, engine shape); ctx cancellation aborts between engine stages.
func BuildArtifact(ctx context.Context, spec Spec, c *cluster.Cluster) ([]byte, error) {
	if spec.Generator == GenScenario {
		// Scenario jobs reuse the same per-job cluster (cancellation, fault
		// plan, tracer), so csbd's retry and chaos semantics apply to labeled
		// artifacts unchanged.
		sc, err := scenario.Compile(spec.Scenario, c)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return scenario.EncodeLabeled(sc)
	}
	seed, err := buildSeed(spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var gen core.Generator
	switch spec.Generator {
	case GenPGSK:
		gen = &core.PGSK{Seed: spec.Seed, Cluster: c}
	default:
		gen = &core.PGPBA{Fraction: spec.Fraction, Seed: spec.Seed, Cluster: c}
	}
	g, err := gen.Generate(seed, spec.Edges)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := encodeArtifactOn(&buf, g, spec.Format, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildSeed runs the Figure 1 pipeline over a synthetic trace sized by the
// spec (the serve-side equivalent of csb.BuildSyntheticSeed).
func buildSeed(spec Spec) (*core.Seed, error) {
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(spec.Hosts, spec.Sessions, spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("serve: synthesizing seed trace: %w", err)
	}
	return core.Analyze(netflow.BuildGraph(netflow.Assemble(pkts, 0)))
}

// EncodeArtifact serializes g in the given artifact format. The tsv and csbg
// encodings are exactly Graph.WriteEdgeList and Graph.Write, so daemon
// artifacts stay byte-identical to csbgen's files.
func EncodeArtifact(w io.Writer, g *graph.Graph, format string) error {
	switch format {
	case FormatCSBG:
		return g.Write(w)
	case FormatCSV:
		return netflow.WriteCSV(w, netflow.FlowsFromGraph(g))
	case FormatNDJSON:
		return writeNDJSON(w, g)
	case FormatTSV, "":
		return g.WriteEdgeList(w)
	default:
		return fmt.Errorf("serve: unknown artifact format %q", format)
	}
}

// writeNDJSON emits one JSON object per edge, newline-delimited, in edge
// order (deterministic for deterministic graphs). The row formatter lives in
// internal/dist/rows so the sequential and distributed encoders share it.
func writeNDJSON(w io.Writer, g *graph.Graph) error {
	out, err := rows.NDJSONBatch(g.Cols())
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// encodeArtifactOn is EncodeArtifact with a distributed fast path: on a
// cluster with a TaskExecutor the text formats encode chunk-parallel through
// the engine (remotable row stages, see internal/dist/rows), so workers
// carry the formatting and the coordinator concatenates header + chunks in
// partition order. Chunks share the sequential writers' row formatters and
// partitioning follows only the cluster shape, so the bytes are identical to
// EncodeArtifact's on every worker count. csbg is not distributed — its
// result bytes equal its input bytes, so shipping them wins nothing.
func encodeArtifactOn(w io.Writer, g *graph.Graph, format string, c *cluster.Cluster) error {
	if c == nil || c.Config().Executor == nil {
		return EncodeArtifact(w, g, format)
	}
	switch format {
	case FormatTSV, "":
		return writeChunked(w, cluster.ParallelizeEdges(c, g.Cols(), 0), graph.EdgeListHeader, rows.TSVKind,
			func(xs []graph.Edge) []byte { return rows.TSVRows(xs) },
			rows.EncodeEdges)
	case FormatNDJSON:
		return writeChunked(w, cluster.ParallelizeEdges(c, g.Cols(), 0), "", rows.NDJSONKind,
			func(xs []graph.Edge) []byte {
				out, err := rows.NDJSONRows(xs)
				if err != nil {
					panic(err) // plain structs cannot fail to marshal
				}
				return out
			},
			rows.EncodeEdges)
	case FormatCSV:
		return writeChunked(w, cluster.Parallelize(c, netflow.FlowsFromGraph(g), 0), netflow.CSVHeaderLine, rows.CSVKind,
			func(xs []netflow.Flow) []byte { return rows.CSVRows(xs) },
			rows.EncodeFlows)
	default:
		return EncodeArtifact(w, g, format)
	}
}

// writeChunked runs one remotable row-encode stage over the pre-partitioned
// records and writes header plus the row chunks in partition order. Callers
// hand it a dataset (ParallelizeEdges for columnar edge sources) so record
// batches stream into partition storage without a monolithic row slice.
func writeChunked[T any](w io.Writer, ds *cluster.Dataset[T], header, kind string,
	local func(xs []T) []byte, payload func(xs []T) []byte) error {
	c := ds.Cluster()
	chunks := cluster.MapPartitionsRemotable(ds, kind,
		func(part int, xs []T) []byte { return local(xs) },
		func(part int, xs []T) []byte { return payload(xs) },
		func(result []byte) ([]byte, error) { return result, nil })
	if err := c.Err(); err != nil {
		return err
	}
	if header != "" {
		if _, err := io.WriteString(w, header); err != nil {
			return err
		}
	}
	for i := 0; i < chunks.NumPartitions(); i++ {
		if _, err := w.Write(chunks.Partition(i)); err != nil {
			return err
		}
	}
	return nil
}
