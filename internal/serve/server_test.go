package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySpec is a generation small enough for unit tests.
func tinySpec(seed uint64) Spec {
	return Spec{Generator: GenPGPBA, Hosts: 15, Sessions: 150, Seed: seed, Fraction: 0.5, Edges: 2000}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec Spec) (*http.Response, JobStatus) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func fetchArtifact(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("artifact fetch: %d %s", resp.StatusCode, b)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, st := postJob(t, ts, tinySpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}
	if st.CacheHit {
		t.Fatal("cold submit reported a cache hit")
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %q (%s)", final.State, final.Error)
	}
	if final.ArtifactURL == "" || final.ArtifactID != st.ArtifactID {
		t.Fatalf("final status missing artifact: %+v", final)
	}
	data := fetchArtifact(t, ts, st.ID)
	if !bytes.HasPrefix(data, []byte("src\tdst\t")) {
		t.Fatalf("artifact does not look like a TSV edge list: %q", data[:40])
	}
	// The same bytes are reachable by content address.
	resp2, err := http.Get(ts.URL + "/v1/artifacts/" + final.ArtifactID)
	if err != nil {
		t.Fatal(err)
	}
	byAddr, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(byAddr, data) {
		t.Fatal("content-address fetch differs from job artifact fetch")
	}
}

func TestRepeatedJobServedFromCacheByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	_, st := postJob(t, ts, tinySpec(2))
	pollDone(t, ts, st.ID)
	cold := fetchArtifact(t, ts, st.ID)

	// The identical spec must be answered from the artifact cache: done
	// immediately, flagged as a hit, and byte-identical to the cold run.
	resp, warmSt := postJob(t, ts, tinySpec(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm submit status = %d, want 200", resp.StatusCode)
	}
	if warmSt.State != StateDone || !warmSt.CacheHit {
		t.Fatalf("warm job = %+v, want done cache hit", warmSt)
	}
	if warmSt.ArtifactID != st.ArtifactID {
		t.Fatal("warm job resolved to a different artifact")
	}
	warm := fetchArtifact(t, ts, warmSt.ID)
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache-hit artifact differs from the cold run")
	}

	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// And the /metrics endpoint surfaces the hit.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"csbd_cache_hits_total 1",
		"csbd_cache_misses_total 1",
		"csbd_cache_hit_ratio 0.5000",
		"csbd_jobs_completed_total 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(string(text), "csbd_stage_real_seconds_total{op=") {
		t.Error("/metrics missing per-stage timings")
	}
}

// blockingServer swaps the artifact builder for one that parks until
// released (or its context ends), making admission-control states
// deterministic.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	s, ts := newTestServer(t, cfg)
	release := make(chan struct{})
	s.buildArtifact = func(ctx context.Context, spec Spec) ([]byte, error) {
		select {
		case <-release:
			return []byte("artifact:" + spec.ID()), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, ts, release
}

func TestAdmissionControlShedsWith429(t *testing.T) {
	s, ts, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1})

	// Job 1 occupies the single worker, job 2 the single queue slot.
	_, st1 := postJob(t, ts, tinySpec(10))
	waitState(t, s, st1.ID, StateRunning)
	resp2, st2 := postJob(t, ts, tinySpec(11))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp2.StatusCode)
	}

	// Job 3 must be shed with 429 + Retry-After.
	resp3, _ := postJob(t, ts, tinySpec(12))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if m := s.Metrics(); m.JobsRejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.JobsRejected)
	}

	// A duplicate of the queued job coalesces instead of being shed.
	respDup, stDup := postJob(t, ts, tinySpec(11))
	if respDup.StatusCode != http.StatusAccepted || stDup.ID != st2.ID {
		t.Fatalf("duplicate submit = %d id=%s, want coalesced onto %s", respDup.StatusCode, stDup.ID, st2.ID)
	}

	close(release)
	if st := pollDone(t, ts, st1.ID); st.State != StateDone {
		t.Fatalf("job1 final state %q", st.State)
	}
	if st := pollDone(t, ts, st2.ID); st.State != StateDone {
		t.Fatalf("job2 final state %q", st.State)
	}
}

func waitState(t *testing.T, s *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j := s.lookup(id); j != nil {
			j.mu.Lock()
			cur := j.state
			j.mu.Unlock()
			if cur == want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
}

func TestCancelRunningJob(t *testing.T) {
	s, ts, release := blockingServer(t, Config{Workers: 1, QueueDepth: 4})
	defer close(release)
	_, st := postJob(t, ts, tinySpec(20))
	waitState(t, s, st.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %q", final.State)
	}
	if m := s.Metrics(); m.JobsCanceled != 1 {
		t.Fatalf("canceled = %d, want 1", m.JobsCanceled)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts, release := blockingServer(t, Config{Workers: 1, QueueDepth: 2})
	defer close(release)
	_, st1 := postJob(t, ts, tinySpec(30))
	waitState(t, s, st1.ID, StateRunning)
	_, st2 := postJob(t, ts, tinySpec(31))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final := pollDone(t, ts, st2.ID); final.State != StateCanceled {
		t.Fatalf("queued job after cancel = %q", final.State)
	}
	// A fresh submit of the same spec must run (the canceled flight slot
	// was reclaimed), not coalesce onto the dead job.
	_, st3 := postJob(t, ts, tinySpec(31))
	if st3.ID == st2.ID {
		t.Fatal("new submit coalesced onto a canceled job")
	}
}

func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"generator":"pgpba","edges":0}`,
		`{"generator":"pgpba","edges":-3}`,
		`{"generator":"pgpba","edges":100,"fraction":2.5}`,
		`{"generator":"warp","edges":100}`,
		`{"generator":"pgpba","edges":100,"format":"xml"}`,
		`{"edges":100,"bogus_field":1}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s accepted with %d", body, resp.StatusCode)
		}
	}
	// Admission cap on target size.
	resp, _ := postJob(t, ts, Spec{Generator: GenPGPBA, Edges: 100_000_000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-cap edges accepted with %d", resp.StatusCode)
	}
}

func TestUnknownJobAndArtifactAre404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/jobs/j999", "/v1/jobs/j999/artifact", "/v1/artifacts/deadbeef"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestConcurrentJobsSharedTracer exercises concurrent Tracer span appends
// from simultaneous server jobs — every job cluster streams its stages into
// the one shared tracer. Run under -race (the CI default) this is the
// data-race check for the whole submit/run/trace path.
func TestConcurrentJobsSharedTracer(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds so nothing coalesces; every job really runs.
			_, st := postJob(t, ts, tinySpec(100+uint64(i)))
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			t.Fatalf("job %d was not accepted", i)
		}
		if st := pollDone(t, ts, id); st.State != StateDone {
			t.Fatalf("job %s = %q (%s)", id, st.State, st.Error)
		}
	}
	if spans := s.Tracer().Spans(); len(spans) == 0 {
		t.Fatal("shared tracer recorded no spans")
	}
	m := s.Metrics()
	if m.JobsCompleted != n || m.CacheMisses != n {
		t.Fatalf("completed/misses = %d/%d, want %d/%d", m.JobsCompleted, m.CacheMisses, n, n)
	}
	if len(m.Stages) == 0 {
		t.Fatal("no per-stage metrics aggregated")
	}
}

func TestArtifactFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, format := range []string{FormatTSV, FormatCSBG, FormatCSV, FormatNDJSON} {
		spec := tinySpec(40)
		spec.Format = format
		_, st := postJob(t, ts, spec)
		final := pollDone(t, ts, st.ID)
		if final.State != StateDone {
			t.Fatalf("%s job = %q (%s)", format, final.State, final.Error)
		}
		data := fetchArtifact(t, ts, st.ID)
		if len(data) == 0 {
			t.Fatalf("%s artifact is empty", format)
		}
		switch format {
		case FormatCSBG:
			if !bytes.HasPrefix(data, []byte("CSBG")) {
				t.Errorf("csbg artifact lacks magic: %q", data[:8])
			}
		case FormatNDJSON:
			var first map[string]any
			line, _, _ := bytes.Cut(data, []byte("\n"))
			if err := json.Unmarshal(line, &first); err != nil {
				t.Errorf("ndjson first line: %v", err)
			}
		}
	}
}

func TestServerCloseRejectsNewJobs(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	spec := tinySpec(50)
	if _, err := s.Submit(&spec); err == nil {
		t.Fatal("closed server accepted a job")
	}
	s.Close() // double close is a no-op
}

func TestRetryAfterClamped(t *testing.T) {
	s, _, release := blockingServer(t, Config{Workers: 1, QueueDepth: 1, JobTimeout: time.Hour})
	defer close(release)
	spec1, spec2 := tinySpec(60), tinySpec(61)
	st1, err := s.Submit(&spec1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st1.ID, StateRunning)
	if _, err := s.Submit(&spec2); err != nil {
		t.Fatal(err)
	}
	ra := s.retryAfter()
	if ra == "" {
		t.Fatal("empty Retry-After")
	}
	var sec int
	fmt.Sscanf(ra, "%d", &sec)
	if sec < 1 || sec > 60 {
		t.Fatalf("Retry-After %d outside [1, 60]", sec)
	}
}
