// Package bufpool recycles the buffered writers and per-record byte scratch
// used by the artifact writers (TSV edge lists, Netflow CSV, CSBG graphs,
// CSBF flow files). Every encode used to allocate its own bufio.Writer (up
// to 1 MiB) and format each field through fmt or strconv into fresh strings;
// a csbd daemon or benchmark run encodes thousands of artifacts, so those
// buffers now come from a process-wide sync.Pool and the per-record bytes
// are built with append-style formatting into one reusable scratch slice.
package bufpool

import (
	"bufio"
	"io"
	"sync"
)

// writerSize is the buffered-writer capacity. 64 KiB keeps syscall counts
// low without the 1 MiB-per-call footprint the graph writer used to pay.
const writerSize = 1 << 16

// Writer is a pooled bufio.Writer with a reusable per-record scratch slice.
// Borrow with Get, write, Flush, then hand back with Put. Not safe for
// concurrent use; each goroutine borrows its own.
type Writer struct {
	*bufio.Writer
	// Scratch is the per-record format buffer: build each record with
	// append-style calls into Scratch[:0], write it, repeat. It is retained
	// (and its growth kept) across uses.
	Scratch []byte
}

var pool = sync.Pool{New: func() any {
	return &Writer{
		Writer:  bufio.NewWriterSize(io.Discard, writerSize),
		Scratch: make([]byte, 0, 256),
	}
}}

// Get borrows a Writer targeting w.
func Get(w io.Writer) *Writer {
	bw := pool.Get().(*Writer)
	bw.Reset(w)
	return bw
}

// Put returns bw to the pool. The caller must have called Flush (and
// checked its error) first; Put discards any remaining buffered bytes and
// drops the reference to the underlying writer.
func Put(bw *Writer) {
	bw.Reset(io.Discard)
	pool.Put(bw)
}
