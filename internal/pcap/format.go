// Package pcap implements the libpcap capture file format, Ethernet/IPv4/
// TCP/UDP/ICMP header codecs, and a synthetic network-trace generator.
//
// The paper seeds its generators with a real PCAP trace (the Swedish
// Department of Defense SMIA 2011 capture) analyzed by Bro IDS. That trace
// is not redistributable, so this package provides the substitute: Synthesize
// produces a capture with the same statistical structure (scale-free host
// popularity, heavy-tailed flow sizes, realistic TCP session lifecycles)
// written in genuine libpcap format, exercising the identical downstream
// code path (packet parsing -> flow assembly -> property graph).
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Libpcap file format constants.
const (
	// MagicMicros is the classic little-endian microsecond-resolution magic.
	MagicMicros = 0xa1b2c3d4
	// VersionMajor and VersionMinor identify format version 2.4.
	VersionMajor = 2
	VersionMinor = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
	// DefaultSnapLen is the capture length offered by Writer.
	DefaultSnapLen = 65535
)

// Record is one captured packet: a timestamp, the bytes actually captured
// (possibly truncated to the snap length) and the original wire length.
type Record struct {
	TsMicros int64  // capture time, microseconds since the Unix epoch
	OrigLen  uint32 // length of the packet on the wire
	Data     []byte // captured bytes (len(Data) <= snaplen, <= OrigLen)
}

// Writer writes a libpcap capture file.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	started bool
}

// NewWriter returns a Writer targeting w with the default snap length.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20), snaplen: DefaultSnapLen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MagicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], VersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], VersionMinor)
	// thiszone (4 bytes) and sigfigs (4 bytes) are zero.
	binary.LittleEndian.PutUint32(hdr[16:20], w.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	return err
}

// WriteRecord appends one packet record.
func (w *Writer) WriteRecord(r Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	if uint32(len(r.Data)) > w.snaplen {
		return fmt.Errorf("pcap: captured length %d exceeds snaplen %d", len(r.Data), w.snaplen)
	}
	if r.OrigLen < uint32(len(r.Data)) {
		return fmt.Errorf("pcap: original length %d below captured length %d", r.OrigLen, len(r.Data))
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(r.TsMicros/1e6))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(r.TsMicros%1e6))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(r.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], r.OrigLen)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(r.Data)
	return err
}

// Flush writes any buffered data to the underlying writer. An empty capture
// still gets a valid global header.
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader reads a libpcap capture file.
type Reader struct {
	r       *bufio.Reader
	snaplen uint32
}

// NewReader parses the global header and returns a Reader. Only the
// little-endian microsecond Ethernet variant produced by Writer (and by
// tcpdump on little-endian hosts) is supported.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != MagicMicros {
		return nil, fmt.Errorf("pcap: unsupported magic %#x", m)
	}
	if maj := binary.LittleEndian.Uint16(hdr[4:6]); maj != VersionMajor {
		return nil, fmt.Errorf("pcap: unsupported major version %d", maj)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	snaplen := binary.LittleEndian.Uint32(hdr[16:20])
	// Bound the per-record allocation a corrupt header can demand; real
	// captures use snap lengths at or below 256 KiB.
	if snaplen > 1<<24 {
		return nil, fmt.Errorf("pcap: implausible snaplen %d", snaplen)
	}
	return &Reader{r: br, snaplen: snaplen}, nil
}

// SnapLen returns the snap length declared in the file header.
func (r *Reader) SnapLen() uint32 { return r.snaplen }

// ReadRecord reads the next packet record, returning io.EOF at clean end of
// file.
func (r *Reader) ReadRecord() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:4])
	usec := binary.LittleEndian.Uint32(hdr[4:8])
	incl := binary.LittleEndian.Uint32(hdr[8:12])
	orig := binary.LittleEndian.Uint32(hdr[12:16])
	if incl > r.snaplen {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.snaplen)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: reading %d record bytes: %w", incl, err)
	}
	return Record{TsMicros: int64(sec)*1e6 + int64(usec), OrigLen: orig, Data: data}, nil
}

// ReadAll reads every record in the capture.
func ReadAll(r io.Reader) ([]Record, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := pr.ReadRecord()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
