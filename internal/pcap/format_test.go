package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{TsMicros: 1000000, OrigLen: 100, Data: []byte{1, 2, 3}},
		{TsMicros: 2500000, OrigLen: 3, Data: []byte{9, 8, 7}},
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatalf("WriteRecord: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	for i := range recs {
		if got[i].TsMicros != recs[i].TsMicros || got[i].OrigLen != recs[i].OrigLen || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestEmptyCaptureHasValidHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty capture = %d bytes, want 24", buf.Len())
	}
	if m := binary.LittleEndian.Uint32(buf.Bytes()[0:4]); m != MagicMicros {
		t.Fatalf("magic = %#x", m)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 {
		t.Fatalf("ReadAll empty: %v, %d records", err, len(recs))
	}
}

func TestWriteRecordValidation(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteRecord(Record{OrigLen: 2, Data: make([]byte, 5)}); err == nil {
		t.Error("accepted OrigLen < captured length")
	}
	if err := w.WriteRecord(Record{OrigLen: 1 << 20, Data: make([]byte, DefaultSnapLen+1)}); err == nil {
		t.Error("accepted record beyond snaplen")
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("short")); err == nil {
		t.Error("accepted short header")
	}
	bad := make([]byte, 24)
	binary.LittleEndian.PutUint32(bad[0:4], 0xdeadbeef)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	// Good magic, bad link type.
	binary.LittleEndian.PutUint32(bad[0:4], MagicMicros)
	binary.LittleEndian.PutUint16(bad[4:6], VersionMajor)
	binary.LittleEndian.PutUint32(bad[20:24], 999)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("accepted non-Ethernet link type")
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(Record{TsMicros: 1, OrigLen: 4, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Error("accepted truncated record body")
	}
	if _, err := ReadAll(bytes.NewReader(b[:30])); err == nil {
		t.Error("accepted truncated record header")
	}
}
