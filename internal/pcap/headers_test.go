package pcap

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeTCP(t *testing.T) {
	in := PacketInfo{
		TsMicros: 123456789,
		SrcIP:    0x0a000001,
		DstIP:    0x0a000002,
		Protocol: IPProtoTCP,
		SrcPort:  43210,
		DstPort:  443,
		Flags:    FlagSYN | FlagACK,
		Len:      1500,
	}
	rec := EncodePacket(in)
	out, err := DecodePacket(rec)
	if err != nil {
		t.Fatalf("DecodePacket: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	if rec.OrigLen != uint32(in.Len)+14 {
		t.Errorf("OrigLen = %d, want IP len + Ethernet header", rec.OrigLen)
	}
}

func TestEncodeDecodeUDPAndICMP(t *testing.T) {
	udp := PacketInfo{TsMicros: 5, SrcIP: 1, DstIP: 2, Protocol: IPProtoUDP, SrcPort: 53, DstPort: 3333, Len: 80}
	got, err := DecodePacket(EncodePacket(udp))
	if err != nil || got != udp {
		t.Fatalf("UDP round trip: %v, %+v", err, got)
	}
	icmp := PacketInfo{TsMicros: 6, SrcIP: 3, DstIP: 4, Protocol: IPProtoICMP, Len: 84}
	got, err = DecodePacket(EncodePacket(icmp))
	if err != nil || got != icmp {
		t.Fatalf("ICMP round trip: %v, %+v", err, got)
	}
}

func TestEncodeEnforcesMinimumLength(t *testing.T) {
	p := PacketInfo{Protocol: IPProtoTCP, Len: 1} // below header size
	out, err := DecodePacket(EncodePacket(p))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len != 40 {
		t.Fatalf("Len = %d, want clamped to 40 (IP+TCP headers)", out.Len)
	}
}

func TestEncodeUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodePacket accepted unknown protocol")
		}
	}()
	EncodePacket(PacketInfo{Protocol: 99})
}

func TestIPv4ChecksumValid(t *testing.T) {
	rec := EncodePacket(PacketInfo{SrcIP: 0xc0a80101, DstIP: 0x08080808, Protocol: IPProtoUDP, SrcPort: 1, DstPort: 2, Len: 100})
	ip := rec.Data[14:34]
	// Re-summing the header including its checksum must give 0xffff.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("IPv4 checksum invalid: sum = %#x", sum)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePacket(Record{Data: []byte{1, 2, 3}}); err != ErrTruncated {
		t.Errorf("short frame: err = %v, want ErrTruncated", err)
	}
	// Valid length but ARP ethertype.
	frame := make([]byte, 60)
	binary.BigEndian.PutUint16(frame[12:14], 0x0806)
	if _, err := DecodePacket(Record{Data: frame}); err != ErrNotIPv4 {
		t.Errorf("ARP frame: err = %v, want ErrNotIPv4", err)
	}
	// IPv4 ethertype but version 6 nibble.
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)
	frame[14] = 0x65
	if _, err := DecodePacket(Record{Data: frame}); err != ErrNotIPv4 {
		t.Errorf("bad version: err = %v, want ErrNotIPv4", err)
	}
	// TCP claimed but transport header missing.
	tcp := EncodePacket(PacketInfo{Protocol: IPProtoTCP, Len: 40})
	tcp.Data = tcp.Data[:34] // strip TCP header
	if _, err := DecodePacket(tcp); err != ErrTruncated {
		t.Errorf("truncated TCP: err = %v, want ErrTruncated", err)
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("String = %q, want SYN|ACK", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Errorf("String = %q, want -", s)
	}
	if !FlagSYN.Has(FlagSYN) || FlagSYN.Has(FlagACK) {
		t.Error("Has wrong")
	}
}

func TestFormatIPv4(t *testing.T) {
	if s := FormatIPv4(0x0a000001); s != "10.0.0.1" {
		t.Errorf("FormatIPv4 = %q", s)
	}
	if s := FormatIPv4(0xffffffff); s != "255.255.255.255" {
		t.Errorf("FormatIPv4 = %q", s)
	}
}

// Property: encode/decode round-trips arbitrary valid packets.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(ts int64, src, dst uint32, protoRaw uint8, sp, dp uint16, flags uint8, lenRaw uint16) bool {
		protos := []uint8{IPProtoTCP, IPProtoUDP, IPProtoICMP}
		in := PacketInfo{
			TsMicros: ts & 0x7fffffffffff,
			SrcIP:    src, DstIP: dst,
			Protocol: protos[int(protoRaw)%3],
			Len:      int64(lenRaw%1400) + 60,
		}
		if in.Protocol != IPProtoICMP {
			in.SrcPort, in.DstPort = sp, dp
		}
		if in.Protocol == IPProtoTCP {
			in.Flags = TCPFlags(flags & 0x1f)
		}
		out, err := DecodePacket(EncodePacket(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
