package pcap

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket asserts the packet decoder never panics and, when it
// succeeds, returns internally consistent fields.
func FuzzDecodePacket(f *testing.F) {
	// Seed corpus: valid TCP/UDP/ICMP frames and truncations.
	for _, p := range []PacketInfo{
		{SrcIP: 1, DstIP: 2, Protocol: IPProtoTCP, SrcPort: 80, DstPort: 443, Flags: FlagSYN, Len: 60},
		{SrcIP: 3, DstIP: 4, Protocol: IPProtoUDP, SrcPort: 53, DstPort: 53, Len: 80},
		{SrcIP: 5, DstIP: 6, Protocol: IPProtoICMP, Len: 84},
	} {
		rec := EncodePacket(p)
		f.Add(rec.Data)
		f.Add(rec.Data[:len(rec.Data)/2])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := DecodePacket(Record{Data: data, OrigLen: uint32(len(data))})
		if err != nil {
			return
		}
		if info.Len < 0 {
			t.Fatalf("negative length: %+v", info)
		}
		switch info.Protocol {
		case IPProtoTCP, IPProtoUDP, IPProtoICMP:
		default:
			// Other protocols decode with zero ports; that is fine.
		}
	})
}

// FuzzReadAll asserts the capture-file reader never panics and errors
// cleanly on corrupt files.
func FuzzReadAll(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteRecord(Record{TsMicros: 1, OrigLen: 4, Data: []byte{1, 2, 3, 4}})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:20])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range recs {
			if uint32(len(r.Data)) > r.OrigLen && r.OrigLen != 0 {
				// Snaplen-truncated records may have OrigLen >= captured;
				// captured beyond original would be a reader bug.
				t.Fatalf("captured %d > original %d", len(r.Data), r.OrigLen)
			}
		}
	})
}
