package pcap

import (
	"bytes"
	"sort"
	"testing"

	"csb/internal/stats"
)

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig(20, 200, 42)
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs between runs", i)
		}
	}
}

func TestSynthesizeSorted(t *testing.T) {
	pkts, err := Synthesize(DefaultTraceConfig(10, 100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(pkts, func(i, j int) bool { return pkts[i].TsMicros < pkts[j].TsMicros }) {
		t.Fatal("packets not in timestamp order")
	}
}

func TestSynthesizeProtocolMix(t *testing.T) {
	cfg := DefaultTraceConfig(50, 3000, 7)
	pkts, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint8]int{}
	for _, p := range pkts {
		counts[p.Protocol]++
		if p.SrcIP == p.DstIP {
			t.Fatal("self-loop packet generated")
		}
		if p.Len < 28 {
			t.Fatalf("packet too small: %d", p.Len)
		}
	}
	for _, proto := range []uint8{IPProtoTCP, IPProtoUDP, IPProtoICMP} {
		if counts[proto] == 0 {
			t.Errorf("no packets of protocol %d", proto)
		}
	}
	if counts[IPProtoTCP] <= counts[IPProtoICMP] {
		t.Error("TCP should dominate ICMP under the default mix")
	}
}

func TestSynthesizeScaleFreePopularity(t *testing.T) {
	// Server in-popularity should be heavy-tailed: fit a power law to the
	// distinct-destination contact counts and expect a plausible exponent.
	cfg := DefaultTraceConfig(200, 20000, 99)
	pkts, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count sessions per destination server using SYNs/first-packets by
	// destination IP of client->server packets; approximate with all packets
	// grouped by dst.
	contacts := map[uint32]int64{}
	for _, p := range pkts {
		contacts[p.DstIP]++
	}
	counts := make([]int64, 0, len(contacts))
	for _, c := range contacts {
		counts = append(counts, c)
	}
	fit, err := stats.FitPowerLaw(counts, 10)
	if err != nil {
		t.Fatalf("power-law fit: %v", err)
	}
	if fit.Alpha < 1.2 || fit.Alpha > 4.5 {
		t.Errorf("popularity exponent = %g, want scale-free-ish (1.2..4.5)", fit.Alpha)
	}
	// And the max must far exceed the median (heavy tail).
	s := stats.SummarizeInt(counts)
	if s.Max < 5*s.Median {
		t.Errorf("no heavy tail: max %g median %g", s.Max, s.Median)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	bad := []TraceConfig{
		{Hosts: 1, Sessions: 1, DurationMicros: 1, TCPFraction: 0.5, UDPFraction: 0.2, PacketAlpha: 2, MaxDataPackets: 10},
		{Hosts: 5, Sessions: 0, DurationMicros: 1, TCPFraction: 0.5, UDPFraction: 0.2, PacketAlpha: 2, MaxDataPackets: 10},
		{Hosts: 5, Sessions: 1, DurationMicros: 0, TCPFraction: 0.5, UDPFraction: 0.2, PacketAlpha: 2, MaxDataPackets: 10},
		{Hosts: 5, Sessions: 1, DurationMicros: 1, TCPFraction: 0.9, UDPFraction: 0.3, PacketAlpha: 2, MaxDataPackets: 10},
		{Hosts: 5, Sessions: 1, DurationMicros: 1, TCPFraction: 0.5, UDPFraction: 0.2, PacketAlpha: 1, MaxDataPackets: 10},
		{Hosts: 5, Sessions: 1, DurationMicros: 1, TCPFraction: 0.5, UDPFraction: 0.2, PacketAlpha: 2, MaxDataPackets: 0},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWriteReadTraceRoundTrip(t *testing.T) {
	pkts, err := Synthesize(DefaultTraceConfig(10, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, pkts); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("round trip: %d packets, want %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Fatalf("packet %d mismatch:\n in %+v\nout %+v", i, pkts[i], got[i])
		}
	}
}

func TestHostIP(t *testing.T) {
	if HostIP(0) != 0x0a000001 {
		t.Errorf("HostIP(0) = %#x", HostIP(0))
	}
	if HostIP(255) != 0x0a000100 {
		t.Errorf("HostIP(255) = %#x", HostIP(255))
	}
}

func TestTCPSessionsHaveHandshake(t *testing.T) {
	cfg := DefaultTraceConfig(10, 500, 11)
	cfg.UDPFraction = 0
	cfg.TCPFraction = 1
	cfg.PNoResponse, cfg.PReject, cfg.PReset = 0, 0, 0
	pkts, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var syn, synack, fin int
	for _, p := range pkts {
		switch {
		case p.Flags.Has(FlagSYN | FlagACK):
			synack++
		case p.Flags.Has(FlagSYN):
			syn++
		}
		if p.Flags.Has(FlagFIN) {
			fin++
		}
	}
	if syn != 500 || synack != 500 {
		t.Errorf("handshakes: %d SYN %d SYN-ACK, want 500 each", syn, synack)
	}
	if fin != 1000 { // each normal session has 2 FINs
		t.Errorf("FIN count = %d, want 1000", fin)
	}
}
