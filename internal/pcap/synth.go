package pcap

import (
	"errors"
	"io"
	"math/rand/v2"
	"sort"

	"csb/internal/stats"
)

// TraceConfig parameterizes the synthetic trace generator. The zero value is
// not valid; use DefaultTraceConfig or fill every field.
type TraceConfig struct {
	Hosts    int // distinct hosts (vertices of the eventual seed graph)
	Sessions int // flows (edges of the eventual seed graph)

	StartMicros    int64 // trace start time (microseconds since epoch)
	DurationMicros int64 // session start times are uniform in this window

	Seed uint64 // RNG seed; equal configs produce identical traces

	// Protocol mix; the ICMP fraction is the remainder.
	TCPFraction float64
	UDPFraction float64

	// TCP failure-mode probabilities (the remainder is a normal SF session).
	PNoResponse float64 // S0: SYN never answered
	PReject     float64 // REJ: SYN answered by RST
	PReset      float64 // RSTO: established then aborted by originator

	// PacketAlpha is the power-law exponent of data packets per flow
	// direction; smaller means heavier tails.
	PacketAlpha float64
	// MaxDataPackets caps per-direction data packets, bounding trace size.
	MaxDataPackets int64
}

// DefaultTraceConfig returns the configuration used by the experiments: a
// trace with scale-free server popularity and a realistic protocol mix.
func DefaultTraceConfig(hosts, sessions int, seed uint64) TraceConfig {
	return TraceConfig{
		Hosts:          hosts,
		Sessions:       sessions,
		StartMicros:    1318204800 * 1e6, // 2011-10-10, the SMIA capture date
		DurationMicros: 10 * 60 * 1e6,
		Seed:           seed,
		TCPFraction:    0.70,
		UDPFraction:    0.25,
		PNoResponse:    0.03,
		PReject:        0.02,
		PReset:         0.02,
		PacketAlpha:    1.9,
		MaxDataPackets: 200,
	}
}

func (c *TraceConfig) validate() error {
	switch {
	case c.Hosts < 2:
		return errors.New("pcap: need at least 2 hosts")
	case c.Sessions < 1:
		return errors.New("pcap: need at least 1 session")
	case c.DurationMicros <= 0:
		return errors.New("pcap: duration must be positive")
	case c.TCPFraction < 0 || c.UDPFraction < 0 || c.TCPFraction+c.UDPFraction > 1:
		return errors.New("pcap: invalid protocol mix")
	case c.PacketAlpha <= 1:
		return errors.New("pcap: packet alpha must exceed 1")
	case c.MaxDataPackets < 1:
		return errors.New("pcap: max data packets must be positive")
	}
	return nil
}

// HostIP returns the synthetic address of host i: 10.0.0.0/8 space.
func HostIP(i int) uint32 { return 0x0a000000 | uint32(i+1) }

// Common server ports weighted roughly like enterprise traffic.
var tcpServerPorts = []uint16{80, 443, 443, 80, 22, 25, 8080, 3389, 445, 143}
var udpServerPorts = []uint16{53, 53, 53, 123, 161, 514}

// Synthesize generates the packets of a synthetic trace. Servers are chosen
// by preferential attachment (each completed session makes its server more
// likely to be chosen again), which yields the scale-free in-degree
// distribution the seed graph must exhibit. Packets are returned in
// timestamp order.
func Synthesize(cfg TraceConfig) ([]PacketInfo, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5eed))
	// Preferential server pool: starts with one slot per host, and every
	// chosen server is appended again, so P(server=h) grows with its use.
	pool := make([]int, cfg.Hosts)
	for i := range pool {
		pool[i] = i
	}
	pkts := make([]PacketInfo, 0, cfg.Sessions*8)
	dataLaw := &stats.PowerLaw{Alpha: cfg.PacketAlpha, Xmin: 1}

	for s := 0; s < cfg.Sessions; s++ {
		client := rng.IntN(cfg.Hosts)
		server := pool[rng.IntN(len(pool))]
		for server == client {
			server = pool[rng.IntN(len(pool))]
		}
		pool = append(pool, server)

		start := cfg.StartMicros + rng.Int64N(cfg.DurationMicros)
		p := rng.Float64()
		switch {
		case p < cfg.TCPFraction:
			pkts = appendTCPSession(pkts, rng, &cfg, dataLaw, client, server, start)
		case p < cfg.TCPFraction+cfg.UDPFraction:
			pkts = appendUDPSession(pkts, rng, &cfg, dataLaw, client, server, start)
		default:
			pkts = appendICMPSession(pkts, rng, client, server, start)
		}
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i].TsMicros < pkts[j].TsMicros })
	return pkts, nil
}

func ephemeralPort(rng *rand.Rand) uint16 {
	return uint16(32768 + rng.IntN(28232))
}

func tcpSegSize(rng *rand.Rand) int64 {
	// Bimodal: small control-ish segments and near-MTU bulk segments.
	if rng.Float64() < 0.4 {
		return 40 + rng.Int64N(160)
	}
	return 1000 + rng.Int64N(500)
}

func appendTCPSession(pkts []PacketInfo, rng *rand.Rand, cfg *TraceConfig, law *stats.PowerLaw, client, server int, start int64) []PacketInfo {
	sp := ephemeralPort(rng)
	dp := tcpServerPorts[rng.IntN(len(tcpServerPorts))]
	ts := start
	c2s := func(flags TCPFlags, size int64) {
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(client), DstIP: HostIP(server),
			Protocol: IPProtoTCP, SrcPort: sp, DstPort: dp, Flags: flags, Len: size})
	}
	s2c := func(flags TCPFlags, size int64) {
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(server), DstIP: HostIP(client),
			Protocol: IPProtoTCP, SrcPort: dp, DstPort: sp, Flags: flags, Len: size})
	}
	step := func() { ts += 100 + rng.Int64N(5000) }

	outcome := rng.Float64()
	switch {
	case outcome < cfg.PNoResponse: // S0: unanswered SYN (with retries)
		for i := 0; i < 1+rng.IntN(3); i++ {
			c2s(FlagSYN, 40)
			ts += 1e6
		}
		return pkts
	case outcome < cfg.PNoResponse+cfg.PReject: // REJ
		c2s(FlagSYN, 40)
		step()
		s2c(FlagRST|FlagACK, 40)
		return pkts
	}

	// Established session.
	c2s(FlagSYN, 40)
	step()
	s2c(FlagSYN|FlagACK, 40)
	step()
	c2s(FlagACK, 40)
	step()
	nOut := min64(law.Sample(rng), cfg.MaxDataPackets)
	nIn := min64(law.Sample(rng)*2, cfg.MaxDataPackets) // responses are bulkier
	for i := int64(0); i < nOut; i++ {
		c2s(FlagACK|FlagPSH, tcpSegSize(rng))
		step()
	}
	for i := int64(0); i < nIn; i++ {
		s2c(FlagACK|FlagPSH, tcpSegSize(rng))
		step()
	}
	if outcome < cfg.PNoResponse+cfg.PReject+cfg.PReset { // RSTO
		c2s(FlagRST, 40)
		return pkts
	}
	// Normal termination: SF.
	c2s(FlagFIN|FlagACK, 40)
	step()
	s2c(FlagFIN|FlagACK, 40)
	step()
	c2s(FlagACK, 40)
	return pkts
}

func appendUDPSession(pkts []PacketInfo, rng *rand.Rand, cfg *TraceConfig, law *stats.PowerLaw, client, server int, start int64) []PacketInfo {
	sp := ephemeralPort(rng)
	dp := udpServerPorts[rng.IntN(len(udpServerPorts))]
	ts := start
	nOut := min64(law.Sample(rng), cfg.MaxDataPackets)
	nIn := min64(law.Sample(rng), cfg.MaxDataPackets)
	for i := int64(0); i < nOut; i++ {
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(client), DstIP: HostIP(server),
			Protocol: IPProtoUDP, SrcPort: sp, DstPort: dp, Len: 60 + rng.Int64N(440)})
		ts += 50 + rng.Int64N(2000)
	}
	for i := int64(0); i < nIn; i++ {
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(server), DstIP: HostIP(client),
			Protocol: IPProtoUDP, SrcPort: dp, DstPort: sp, Len: 60 + rng.Int64N(440)})
		ts += 50 + rng.Int64N(2000)
	}
	return pkts
}

func appendICMPSession(pkts []PacketInfo, rng *rand.Rand, client, server int, start int64) []PacketInfo {
	ts := start
	n := 1 + rng.IntN(4)
	for i := 0; i < n; i++ {
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(client), DstIP: HostIP(server),
			Protocol: IPProtoICMP, Len: 84})
		ts += 1000 + rng.Int64N(1000)
		pkts = append(pkts, PacketInfo{TsMicros: ts, SrcIP: HostIP(server), DstIP: HostIP(client),
			Protocol: IPProtoICMP, Len: 84})
		ts += 1e6
	}
	return pkts
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteTrace encodes packets into a libpcap capture on w.
func WriteTrace(w io.Writer, packets []PacketInfo) error {
	pw := NewWriter(w)
	for _, p := range packets {
		if err := pw.WriteRecord(EncodePacket(p)); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// ReadTrace reads a libpcap capture and decodes every IPv4 packet, silently
// skipping non-IPv4 frames (as a flow analyzer would).
func ReadTrace(r io.Reader) ([]PacketInfo, error) {
	recs, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make([]PacketInfo, 0, len(recs))
	for _, rec := range recs {
		info, err := DecodePacket(rec)
		if err == ErrNotIPv4 {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}
