package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IP protocol numbers used by the trace generator and parser.
const (
	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
)

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << 0
	FlagSYN TCPFlags = 1 << 1
	FlagRST TCPFlags = 1 << 2
	FlagPSH TCPFlags = 1 << 3
	FlagACK TCPFlags = 1 << 4
)

// Has reports whether all bits in f2 are set in f.
func (f TCPFlags) Has(f2 TCPFlags) bool { return f&f2 == f2 }

// String renders the flag mnemonics, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}}
	out := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "-"
	}
	return out
}

// PacketInfo is the decoded form of one IPv4 packet: everything the flow
// assembler needs.
type PacketInfo struct {
	TsMicros int64
	SrcIP    uint32 // host byte order
	DstIP    uint32
	Protocol uint8 // IPProtoTCP, IPProtoUDP or IPProtoICMP
	SrcPort  uint16
	DstPort  uint16
	Flags    TCPFlags // TCP only
	Len      int64    // IPv4 total length (header + payload), bytes on the wire
}

// Header sizes.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

// ipv4Checksum computes the Internet checksum over an IPv4 header whose
// checksum field is zero.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// EncodePacket builds the wire bytes (Ethernet + IPv4 + transport header) of
// the packet. Payload bytes are not materialized: the IPv4 total-length field
// and the record's OrigLen claim info.Len bytes while only headers are stored,
// exactly like a snap-length-limited real capture. This keeps large synthetic
// traces compact while preserving byte accounting.
func EncodePacket(info PacketInfo) Record {
	var transportLen int
	switch info.Protocol {
	case IPProtoTCP:
		transportLen = tcpHeaderLen
	case IPProtoUDP:
		transportLen = udpHeaderLen
	case IPProtoICMP:
		transportLen = icmpHeaderLen
	default:
		panic(fmt.Sprintf("pcap: cannot encode protocol %d", info.Protocol))
	}
	minLen := int64(ipv4HeaderLen + transportLen)
	if info.Len < minLen {
		info.Len = minLen
	}
	buf := make([]byte, ethHeaderLen+ipv4HeaderLen+transportLen)

	// Ethernet: synthetic locally-administered MACs derived from the IPs.
	eth := buf[:ethHeaderLen]
	eth[0], eth[1] = 0x02, 0x00
	binary.BigEndian.PutUint32(eth[2:6], info.DstIP)
	eth[6], eth[7] = 0x02, 0x00
	binary.BigEndian.PutUint32(eth[8:12], info.SrcIP)
	binary.BigEndian.PutUint16(eth[12:14], 0x0800) // IPv4

	ip := buf[ethHeaderLen : ethHeaderLen+ipv4HeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(clampU16(info.Len)))
	ip[8] = 64 // TTL
	ip[9] = info.Protocol
	binary.BigEndian.PutUint32(ip[12:16], info.SrcIP)
	binary.BigEndian.PutUint32(ip[16:20], info.DstIP)
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip))

	tp := buf[ethHeaderLen+ipv4HeaderLen:]
	switch info.Protocol {
	case IPProtoTCP:
		binary.BigEndian.PutUint16(tp[0:2], info.SrcPort)
		binary.BigEndian.PutUint16(tp[2:4], info.DstPort)
		tp[12] = 5 << 4 // data offset: 5 words
		tp[13] = byte(info.Flags)
		binary.BigEndian.PutUint16(tp[14:16], 65535) // window
	case IPProtoUDP:
		binary.BigEndian.PutUint16(tp[0:2], info.SrcPort)
		binary.BigEndian.PutUint16(tp[2:4], info.DstPort)
		binary.BigEndian.PutUint16(tp[4:6], uint16(clampU16(info.Len-ipv4HeaderLen)))
	case IPProtoICMP:
		tp[0] = 8 // echo request
	}
	return Record{
		TsMicros: info.TsMicros,
		OrigLen:  uint32(info.Len) + ethHeaderLen,
		Data:     buf,
	}
}

func clampU16(v int64) int64 {
	if v > 65535 {
		return 65535
	}
	return v
}

// ErrNotIPv4 is returned by DecodePacket for non-IPv4 frames.
var ErrNotIPv4 = errors.New("pcap: not an IPv4 packet")

// ErrTruncated is returned by DecodePacket when the captured bytes are too
// short to contain the advertised headers.
var ErrTruncated = errors.New("pcap: truncated packet")

// DecodePacket parses an Ethernet/IPv4 record into a PacketInfo. Byte
// accounting uses the IPv4 total-length field rather than the captured
// length, so snap-length-truncated captures report true wire sizes.
func DecodePacket(r Record) (PacketInfo, error) {
	if len(r.Data) < ethHeaderLen+ipv4HeaderLen {
		return PacketInfo{}, ErrTruncated
	}
	if et := binary.BigEndian.Uint16(r.Data[12:14]); et != 0x0800 {
		return PacketInfo{}, ErrNotIPv4
	}
	ip := r.Data[ethHeaderLen:]
	if ip[0]>>4 != 4 {
		return PacketInfo{}, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return PacketInfo{}, ErrTruncated
	}
	info := PacketInfo{
		TsMicros: r.TsMicros,
		SrcIP:    binary.BigEndian.Uint32(ip[12:16]),
		DstIP:    binary.BigEndian.Uint32(ip[16:20]),
		Protocol: ip[9],
		Len:      int64(binary.BigEndian.Uint16(ip[2:4])),
	}
	tp := ip[ihl:]
	switch info.Protocol {
	case IPProtoTCP:
		if len(tp) < tcpHeaderLen {
			return PacketInfo{}, ErrTruncated
		}
		info.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		info.DstPort = binary.BigEndian.Uint16(tp[2:4])
		info.Flags = TCPFlags(tp[13])
	case IPProtoUDP:
		if len(tp) < udpHeaderLen {
			return PacketInfo{}, ErrTruncated
		}
		info.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		info.DstPort = binary.BigEndian.Uint16(tp[2:4])
	case IPProtoICMP:
		if len(tp) < icmpHeaderLen {
			return PacketInfo{}, ErrTruncated
		}
	}
	return info, nil
}

// FormatIPv4 renders a host-order uint32 address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
