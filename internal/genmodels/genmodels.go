// Package genmodels implements the classical random-graph models the paper
// surveys as background (Section II): Erdős-Rényi, Watts-Strogatz, Chung-Lu,
// the stochastic block model and R-MAT. They serve as the comparison
// baselines that motivate the paper's choice of scale-free generators: none
// of them reproduces a network trace's joint structure the way BA and
// Kronecker growth from a seed does, which the baseline-comparison
// experiment quantifies.
package genmodels

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"csb/internal/cluster"
	"csb/internal/graph"
)

// ErdosRenyi generates the G(n, m) model: m distinct directed edges chosen
// uniformly among all n*(n-1) ordered pairs (self-loops excluded). Degree
// distributions concentrate around m/n — the "no highly connected vertices"
// property the paper contrasts with real networks.
func ErdosRenyi(n, m int64, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("genmodels: ER needs at least 2 vertices")
	}
	if m < 0 || m > n*(n-1) {
		return nil, fmt.Errorf("genmodels: ER cannot place %d distinct edges on %d vertices", m, n)
	}
	rng := rand.New(rand.NewPCG(seed, 0xe12))
	g := graph.NewWithCapacity(n, m)
	seen := make(map[[2]int64]struct{}, m)
	for int64(len(seen)) < m {
		u := rng.Int64N(n)
		v := rng.Int64N(n)
		if u == v {
			continue
		}
		k := [2]int64{u, v}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return g, nil
}

// WattsStrogatz generates the small-world model: a ring lattice where every
// vertex connects to its k nearest clockwise neighbors, with each edge's
// endpoint rewired to a uniform vertex with probability beta. beta = 0 is a
// pure lattice; beta = 1 approaches a random graph.
func WattsStrogatz(n int64, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if n < 3 {
		return nil, errors.New("genmodels: WS needs at least 3 vertices")
	}
	if k < 1 || int64(k) >= n {
		return nil, fmt.Errorf("genmodels: WS neighbor count %d out of range", k)
	}
	if beta < 0 || beta > 1 {
		return nil, errors.New("genmodels: WS beta must be in [0,1]")
	}
	rng := rand.New(rand.NewPCG(seed, 0x35))
	g := graph.NewWithCapacity(n, n*int64(k))
	for u := int64(0); u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + int64(j)) % n
			if rng.Float64() < beta {
				// Rewire to a uniform non-self target.
				for {
					v = rng.Int64N(n)
					if v != u {
						break
					}
				}
			}
			g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
		}
	}
	return g, nil
}

// ChungLu generates a directed Chung-Lu graph from expected out- and
// in-degree sequences: sum(out) edges are placed by sampling sources
// proportionally to outDegree and destinations proportionally to inDegree
// (the O(|E|) edge-skipping formulation). The result is a multigraph whose
// expected degrees match the inputs — the model that "can generate networks
// from almost any real-world desired degree distribution".
func ChungLu(outDegree, inDegree []float64, seed uint64) (*graph.Graph, error) {
	if len(outDegree) == 0 || len(outDegree) != len(inDegree) {
		return nil, errors.New("genmodels: CL needs equal, non-empty degree sequences")
	}
	var sumOut, sumIn float64
	for i := range outDegree {
		if outDegree[i] < 0 || inDegree[i] < 0 {
			return nil, errors.New("genmodels: CL degrees must be non-negative")
		}
		sumOut += outDegree[i]
		sumIn += inDegree[i]
	}
	if sumOut == 0 || sumIn == 0 {
		return nil, errors.New("genmodels: CL degree sequences sum to zero")
	}
	srcAlias, err := newWeightedAlias(outDegree)
	if err != nil {
		return nil, err
	}
	dstAlias, err := newWeightedAlias(inDegree)
	if err != nil {
		return nil, err
	}
	m := int64(math.Round(sumOut))
	rng := rand.New(rand.NewPCG(seed, 0xc1))
	n := int64(len(outDegree))
	g := graph.NewWithCapacity(n, m)
	for i := int64(0); i < m; i++ {
		g.AddEdge(graph.Edge{
			Src: graph.VertexID(srcAlias.sample(rng)),
			Dst: graph.VertexID(dstAlias.sample(rng)),
		})
	}
	return g, nil
}

// SBM generates a stochastic block model: blockSizes give the community
// sizes and probs[a][b] the edge probability from block a to block b.
// Within each block pair, edges are placed by geometric skip sampling in
// O(edges), not O(n^2). Self-loops are excluded.
func SBM(blockSizes []int64, probs [][]float64, seed uint64) (*graph.Graph, error) {
	if len(blockSizes) == 0 || len(probs) != len(blockSizes) {
		return nil, errors.New("genmodels: SBM needs matching block sizes and probability matrix")
	}
	var n int64
	starts := make([]int64, len(blockSizes))
	for b, s := range blockSizes {
		if s < 1 {
			return nil, errors.New("genmodels: SBM block sizes must be positive")
		}
		if len(probs[b]) != len(blockSizes) {
			return nil, errors.New("genmodels: SBM probability matrix not square")
		}
		starts[b] = n
		n += s
	}
	rng := rand.New(rand.NewPCG(seed, 0x5b1))
	g := graph.New(n)
	for a := range blockSizes {
		for b := range blockSizes {
			p := probs[a][b]
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("genmodels: SBM probability %g out of [0,1]", p)
			}
			if p == 0 {
				continue
			}
			cells := blockSizes[a] * blockSizes[b]
			// Geometric skip sampling over the cell grid.
			for idx := skip(rng, p); idx < cells; idx += 1 + skip(rng, p) {
				u := starts[a] + idx/blockSizes[b]
				v := starts[b] + idx%blockSizes[b]
				if u == v {
					continue
				}
				g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
			}
		}
	}
	return g, nil
}

// skip draws the number of cells skipped before the next success of a
// Bernoulli(p) process: floor(log(U)/log(1-p)).
func skip(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int64(math.Log(u) / math.Log(1-p))
}

// RMAT generates a recursive-matrix graph (Chakrabarti et al.): 2^scale
// vertices and `edges` edge drops descending through quadrant probabilities
// (a, b, c, d), a+b+c+d = 1. Duplicates are kept, matching the classic
// multigraph formulation; callers wanting simple graphs use
// Graph.Simplify. R-MAT is the deterministic-free cousin of the stochastic
// Kronecker generator.
func RMAT(scale int, edges int64, a, b, c, d float64, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("genmodels: RMAT scale %d out of [1,30]", scale)
	}
	if edges < 0 {
		return nil, errors.New("genmodels: RMAT needs non-negative edge count")
	}
	sum := a + b + c + d
	if a < 0 || b < 0 || c < 0 || d < 0 || math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("genmodels: RMAT probabilities must be non-negative and sum to 1, got %g", sum)
	}
	rng := rand.New(rand.NewPCG(seed, 0x12a7))
	n := int64(1) << uint(scale)
	g := graph.NewWithCapacity(n, edges)
	for i := int64(0); i < edges; i++ {
		var u, v int64
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			u <<= 1
			v <<= 1
			switch {
			case r < a:
			case r < a+b:
				v |= 1
			case r < a+b+c:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		g.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return g, nil
}

// BTER generates the block two-level Erdős-Rényi model (Seshadhri, Kolda &
// Pinar): vertices are grouped by degree into affinity blocks of size
// (degree+1); phase one runs dense ER inside each block (producing the
// community structure and clustering), phase two spends each vertex's
// excess degree in a Chung-Lu pass across blocks. The result matches the
// degree sequence like Chung-Lu while exhibiting far higher clustering —
// the property the paper's Section II credits BTER with.
//
// degrees is the desired per-vertex (undirected) degree sequence;
// blockDensity in (0,1] is the within-block ER probability. Each generated
// undirected edge is emitted as one randomly oriented arc.
func BTER(degrees []int64, blockDensity float64, seed uint64) (*graph.Graph, error) {
	if len(degrees) == 0 {
		return nil, errors.New("genmodels: BTER needs a degree sequence")
	}
	if blockDensity <= 0 || blockDensity > 1 {
		return nil, errors.New("genmodels: BTER block density must be in (0,1]")
	}
	for _, d := range degrees {
		if d < 0 {
			return nil, errors.New("genmodels: BTER degrees must be non-negative")
		}
	}
	n := int64(len(degrees))
	rng := rand.New(rand.NewPCG(seed, 0xb7e2))

	// Sort vertex indices by degree ascending; zero-degree vertices are
	// left out of both phases.
	order := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		if degrees[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if degrees[order[a]] != degrees[order[b]] {
			return degrees[order[a]] < degrees[order[b]]
		}
		return order[a] < order[b]
	})

	g := graph.New(n)
	excess := make([]float64, n)
	orient := func(u, v int64) graph.Edge {
		if rng.IntN(2) == 1 {
			u, v = v, u
		}
		return graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)}
	}

	// Phase 1: affinity blocks. A block starting at a vertex of degree d
	// takes d+1 members; within-block ER(blockDensity).
	for at := 0; at < len(order); {
		d := degrees[order[at]]
		size := int(d) + 1
		if at+size > len(order) {
			size = len(order) - at
		}
		block := order[at : at+size]
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				if rng.Float64() < blockDensity {
					g.AddEdge(orient(block[i], block[j]))
				}
			}
		}
		within := blockDensity * float64(len(block)-1)
		for _, v := range block {
			if e := float64(degrees[v]) - within; e > 0 {
				excess[v] = e
			}
		}
		at += size
	}

	// Phase 2: Chung-Lu over the excess degrees (each undirected CL edge
	// consumes 2 endpoint slots, so place sum(excess)/2 edges).
	var sumExcess float64
	for _, e := range excess {
		sumExcess += e
	}
	if sumExcess > 1 {
		alias, err := newWeightedAlias(excess)
		if err != nil {
			return nil, err
		}
		m := int64(math.Round(sumExcess / 2))
		for i := int64(0); i < m; i++ {
			u := alias.sample(rng)
			v := alias.sample(rng)
			if u == v {
				continue
			}
			g.AddEdge(orient(u, v))
		}
	}
	return g, nil
}

// ChungLuParallel is the distributed form of ChungLu on the cluster
// substrate (the "distributed-memory parallel implementations" of related
// work): each partition places its share of the edges with an independent
// RNG stream and shared alias tables.
func ChungLuParallel(c *cluster.Cluster, outDegree, inDegree []float64, seed uint64) (*graph.Graph, error) {
	if len(outDegree) == 0 || len(outDegree) != len(inDegree) {
		return nil, errors.New("genmodels: CL needs equal, non-empty degree sequences")
	}
	var sumOut float64
	for i := range outDegree {
		if outDegree[i] < 0 || inDegree[i] < 0 {
			return nil, errors.New("genmodels: CL degrees must be non-negative")
		}
		sumOut += outDegree[i]
	}
	srcAlias, err := newWeightedAlias(outDegree)
	if err != nil {
		return nil, err
	}
	dstAlias, err := newWeightedAlias(inDegree)
	if err != nil {
		return nil, err
	}
	m := int64(math.Round(sumOut))
	n := int64(len(outDegree))
	ds := cluster.Generate(c, m, 0, seed, func(rng *rand.Rand, emit func(graph.Edge), count int64) {
		for i := int64(0); i < count; i++ {
			emit(graph.Edge{
				Src: graph.VertexID(srcAlias.sample(rng)),
				Dst: graph.VertexID(dstAlias.sample(rng)),
			})
		}
	})
	g := graph.NewWithCapacity(n, m)
	if err := g.AddEdges(cluster.Collect(ds)); err != nil {
		return nil, err
	}
	return g, nil
}

// weightedAlias is a Vose alias table over float64 weights (vertex indices).
type weightedAlias struct {
	prob  []float64
	alias []int32
}

func newWeightedAlias(weights []float64) (*weightedAlias, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("genmodels: empty weights")
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return nil, errors.New("genmodels: weights sum to zero")
	}
	wa := &weightedAlias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		wa.prob[s] = scaled[s]
		wa.alias[s] = l
		scaled[l] += scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		wa.prob[i] = 1
		wa.alias[i] = i
	}
	for _, i := range small {
		wa.prob[i] = 1
		wa.alias[i] = i
	}
	return wa, nil
}

func (wa *weightedAlias) sample(rng *rand.Rand) int64 {
	i := rng.IntN(len(wa.prob))
	if rng.Float64() < wa.prob[i] {
		return int64(i)
	}
	return int64(wa.alias[i])
}
