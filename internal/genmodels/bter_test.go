package genmodels

import (
	"math"
	"testing"

	"csb/internal/cluster"
	"csb/internal/graphalgo"
	"csb/internal/stats"
)

// powerLawDegrees builds a heavy-tailed degree sequence.
func powerLawDegrees(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 / (i + 1))
		if out[i] < 2 {
			out[i] = 2
		}
	}
	return out
}

func TestBTERValidation(t *testing.T) {
	if _, err := BTER(nil, 0.5, 1); err == nil {
		t.Error("empty degrees accepted")
	}
	if _, err := BTER([]int64{2, 2}, 0, 1); err == nil {
		t.Error("zero density accepted")
	}
	if _, err := BTER([]int64{2, 2}, 1.5, 1); err == nil {
		t.Error("density > 1 accepted")
	}
	if _, err := BTER([]int64{-1, 2}, 0.5, 1); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestBTERDegreeSequenceRoughlyPreserved(t *testing.T) {
	degrees := powerLawDegrees(400)
	g, err := BTER(degrees, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum int64
	for _, d := range degrees {
		wantSum += d
	}
	// Total degree = 2*edges must land near the requested sum.
	gotSum := 2 * g.NumEdges()
	if math.Abs(float64(gotSum-wantSum)) > 0.35*float64(wantSum) {
		t.Fatalf("degree mass: got %d want ~%d", gotSum, wantSum)
	}
	// The top-weight vertex must rank far above a tail vertex.
	deg := g.Degrees()
	if deg[0] < 4*deg[300] {
		t.Fatalf("degree ordering lost: deg[0]=%d deg[300]=%d", deg[0], deg[300])
	}
}

func TestBTERClusteringBeatsChungLu(t *testing.T) {
	// The whole point of BTER (Section II): same degree sequence, much
	// higher clustering than Chung-Lu.
	degrees := powerLawDegrees(400)
	bter, err := BTER(degrees, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	fdeg := make([]float64, len(degrees))
	for i, d := range degrees {
		fdeg[i] = float64(d) / 2 // CL splits degree over out+in
	}
	cl, err := ChungLu(fdeg, fdeg, 3)
	if err != nil {
		t.Fatal(err)
	}
	bterLocal, bterGlobal := graphalgo.ClusteringCoefficients(bter)
	clLocal, clGlobal := graphalgo.ClusteringCoefficients(cl)
	if bterLocal < 2*clLocal {
		t.Fatalf("BTER local clustering %g not above CL's %g", bterLocal, clLocal)
	}
	if bterGlobal <= clGlobal {
		t.Fatalf("BTER global clustering %g not above CL's %g", bterGlobal, clGlobal)
	}
}

func TestBTERDeterministic(t *testing.T) {
	degrees := powerLawDegrees(100)
	a, err := BTER(degrees, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BTER(degrees, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("sizes differ")
	}
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestBTERZeroDegreeVerticesIsolated(t *testing.T) {
	g, err := BTER([]int64{0, 3, 3, 3, 0, 3}, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	if deg[0] != 0 || deg[4] != 0 {
		t.Fatalf("zero-degree vertices got edges: %v", deg)
	}
}

func TestChungLuParallelMatchesSequentialLaw(t *testing.T) {
	c := cluster.MustNew(cluster.Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8})
	out := make([]float64, 300)
	in := make([]float64, 300)
	for i := range out {
		out[i] = 50.0 / float64(i+1)
		in[i] = out[i]
	}
	g, err := ChungLuParallel(c, out, in, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ChungLu(out, in, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != seq.NumEdges() {
		t.Fatalf("edge budgets differ: %d vs %d", g.NumEdges(), seq.NumEdges())
	}
	// Same degree law: KS distance between the two degree samples small.
	if ks := stats.KSDistance(g.Degrees(), seq.Degrees()); ks > 0.1 {
		t.Fatalf("parallel/sequential degree KS = %g", ks)
	}
	// The cluster actually executed stages.
	if c.Metrics().Tasks == 0 {
		t.Fatal("cluster unused")
	}
}

func TestChungLuParallelValidation(t *testing.T) {
	c := cluster.Local(1)
	if _, err := ChungLuParallel(c, nil, nil, 1); err == nil {
		t.Error("empty sequences accepted")
	}
	if _, err := ChungLuParallel(c, []float64{-1}, []float64{1}, 1); err == nil {
		t.Error("negative degrees accepted")
	}
}
