package genmodels

import (
	"math"
	"testing"

	"csb/internal/graph"
	"csb/internal/stats"
)

func TestErdosRenyiSizesAndDistinct(t *testing.T) {
	g, err := ErdosRenyi(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Fatalf("ER size %d/%d", g.NumVertices(), g.NumEdges())
	}
	if s := g.Simplify(); s.NumEdges() != 500 {
		t.Fatalf("ER edges not distinct: %d", s.NumEdges())
	}
	for _, e := range g.EdgeSlice() {
		if e.Src == e.Dst {
			t.Fatal("ER self-loop")
		}
	}
}

func TestErdosRenyiValidation(t *testing.T) {
	if _, err := ErdosRenyi(1, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ErdosRenyi(3, 7, 1); err == nil {
		t.Error("m > n(n-1) accepted")
	}
	if _, err := ErdosRenyi(3, -1, 1); err == nil {
		t.Error("negative m accepted")
	}
}

func TestErdosRenyiDegreesConcentrate(t *testing.T) {
	// ER's hallmark: no heavy tail. Max degree stays within a small factor
	// of the mean.
	g, err := ErdosRenyi(1000, 10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizeInt(g.Degrees())
	if s.Max > 4*s.Mean {
		t.Fatalf("ER degree tail too heavy: max %g mean %g", s.Max, s.Mean)
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex has out-degree k.
	g, err := WattsStrogatz(20, 3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 60 {
		t.Fatalf("WS edges = %d, want 60", g.NumEdges())
	}
	for v, d := range g.OutDegrees() {
		if d != 3 {
			t.Fatalf("WS out-degree[%d] = %d, want 3", v, d)
		}
	}
	// Lattice structure: 0 connects to 1, 2, 3.
	for _, e := range g.EdgeSlice() {
		if e.Src == 0 && (e.Dst < 1 || e.Dst > 3) {
			t.Fatalf("lattice edge 0->%d unexpected", e.Dst)
		}
	}
}

func TestWattsStrogatzRewiring(t *testing.T) {
	g, err := WattsStrogatz(200, 2, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With beta=0.5 roughly half the edges leave the lattice neighborhood.
	rewired := 0
	for _, e := range g.EdgeSlice() {
		diff := (int64(e.Dst) - int64(e.Src) + 200) % 200
		if diff > 2 {
			rewired++
		}
	}
	if rewired < 100 || rewired > 300 {
		t.Fatalf("rewired = %d of 400, want ~200", rewired)
	}
	for _, e := range g.EdgeSlice() {
		if e.Src == e.Dst {
			t.Fatal("WS self-loop after rewiring")
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	if _, err := WattsStrogatz(2, 1, 0, 1); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := WattsStrogatz(10, 0, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := WattsStrogatz(10, 10, 0, 1); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Error("beta>1 accepted")
	}
}

func TestChungLuMatchesExpectedDegrees(t *testing.T) {
	// Power-lawish expected degrees; realized degrees should track them.
	n := 500
	out := make([]float64, n)
	in := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = 100.0 / float64(i+1)
		in[i] = out[i]
		sum += out[i]
	}
	g, err := ChungLu(out, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(g.NumEdges())-sum) > 1 {
		t.Fatalf("CL edges = %d, want ~%g", g.NumEdges(), sum)
	}
	// Vertex 0 expects out-degree 100; Poisson-ish tolerance.
	od := g.OutDegrees()
	if od[0] < 60 || od[0] > 150 {
		t.Fatalf("CL out-degree[0] = %d, want ~100", od[0])
	}
	// Rank order roughly preserved: top vertex beats a mid-ranked one.
	if od[0] <= od[250] {
		t.Fatalf("CL degrees not tracking weights: %d vs %d", od[0], od[250])
	}
}

func TestChungLuValidation(t *testing.T) {
	if _, err := ChungLu(nil, nil, 1); err == nil {
		t.Error("empty sequences accepted")
	}
	if _, err := ChungLu([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("ragged sequences accepted")
	}
	if _, err := ChungLu([]float64{-1, 2}, []float64{1, 1}, 1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := ChungLu([]float64{0, 0}, []float64{0, 0}, 1); err == nil {
		t.Error("zero-sum accepted")
	}
}

func TestSBMBlockStructure(t *testing.T) {
	g, err := SBM([]int64{50, 50}, [][]float64{{0.2, 0.01}, {0.01, 0.2}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var within, across int
	for _, e := range g.EdgeSlice() {
		sameBlock := (e.Src < 50) == (e.Dst < 50)
		if sameBlock {
			within++
		} else {
			across++
		}
	}
	// Expected: within ~ 2*0.2*50*50 = 1000, across ~ 2*0.01*2500 = 50.
	if within < 700 || within > 1300 {
		t.Fatalf("within-block edges = %d, want ~1000", within)
	}
	if across > 150 {
		t.Fatalf("cross-block edges = %d, want ~50", across)
	}
	for _, e := range g.EdgeSlice() {
		if e.Src == e.Dst {
			t.Fatal("SBM self-loop")
		}
	}
}

func TestSBMValidation(t *testing.T) {
	if _, err := SBM(nil, nil, 1); err == nil {
		t.Error("empty blocks accepted")
	}
	if _, err := SBM([]int64{2}, [][]float64{{0.1, 0.2}}, 1); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := SBM([]int64{0}, [][]float64{{0.1}}, 1); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := SBM([]int64{2}, [][]float64{{1.5}}, 1); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestSBMDenseProbability(t *testing.T) {
	// p = 1 must produce the complete bipartite pattern minus self-loops.
	g, err := SBM([]int64{3, 2}, [][]float64{{1, 1}, {1, 1}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5*5-5 {
		t.Fatalf("dense SBM edges = %d, want 20", g.NumEdges())
	}
}

func TestRMATHeavyTail(t *testing.T) {
	g, err := RMAT(12, 40000, 0.57, 0.19, 0.19, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4096 || g.NumEdges() != 40000 {
		t.Fatalf("RMAT size %d/%d", g.NumVertices(), g.NumEdges())
	}
	s := stats.SummarizeInt(g.Degrees())
	if s.Max < 10*s.Median {
		t.Fatalf("RMAT tail not heavy: max %g median %g", s.Max, s.Median)
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(0, 10, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(5, -1, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Error("negative edges accepted")
	}
	if _, err := RMAT(5, 10, 0.5, 0.5, 0.5, 0.5, 1); err == nil {
		t.Error("probabilities summing to 2 accepted")
	}
	if _, err := RMAT(5, 10, -0.1, 0.4, 0.4, 0.3, 1); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestModelsDeterministic(t *testing.T) {
	build := []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return ErdosRenyi(50, 200, 9) },
		func() (*graph.Graph, error) { return WattsStrogatz(50, 2, 0.3, 9) },
		func() (*graph.Graph, error) { return RMAT(8, 500, 0.57, 0.19, 0.19, 0.05, 9) },
		func() (*graph.Graph, error) { return SBM([]int64{20, 20}, [][]float64{{0.2, 0.02}, {0.02, 0.2}}, 9) },
	}
	for i, f := range build {
		a, err := f()
		if err != nil {
			t.Fatal(err)
		}
		b, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if a.NumEdges() != b.NumEdges() {
			t.Fatalf("model %d not deterministic in size", i)
		}
		for j := range a.EdgeSlice() {
			if a.EdgeSlice()[j] != b.EdgeSlice()[j] {
				t.Fatalf("model %d edge %d differs", i, j)
			}
		}
	}
}
