// Package journal is the crash-safety substrate of csbd: an append-only,
// CRC-checksummed write-ahead log of small typed records. The daemon journals
// job lifecycle events (accepted/done/failed/canceled) and the distributed
// coordinator checkpoints per-task completions into the same file, so a
// process killed mid-build can replay the log on restart, re-enqueue every
// incomplete job and skip every task whose result bytes were already
// committed — converging on byte-identical artifacts instead of losing work.
//
// The format (CSBJ1) follows the repo's wire conventions: versioned magic,
// length-framed big-endian records, per-record CRC32 (IEEE), and no
// pre-allocation from untrusted counts.
//
//	file header (8 bytes): magic "CSBJ1" + 3 zero bytes
//
//	record:
//	  [0]     kind length, uint8
//	  [1:..]  kind (UTF-8, e.g. "job.accepted", "task.done")
//	  [..]    key length, uint8
//	  [..]    key (e.g. an artifact id or task content hash)
//	  [..+4]  payload length, uint32 BE
//	  [..]    payload
//	  [..+4]  CRC32 (IEEE) of everything above, uint32 BE
//
// A crash mid-append leaves a torn record at the tail; Open detects it via
// the checksum (or a short read), truncates the file back to the last intact
// record and keeps going. Torn tails are expected — they are the crash the
// journal exists to survive — so truncation is silent recovery, not an error.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Format constants.
const (
	// Magic opens every CSBJ1 journal file (padded to 8 bytes on disk).
	Magic = "CSBJ1"
	// headerLen is the on-disk file header length.
	headerLen = 8
	// maxPayload bounds one record's payload; journal records are job specs
	// and task results, never multi-GB artifacts.
	maxPayload = 256 << 20
)

// ErrCorrupt tags journal damage that truncation cannot repair: a bad file
// header. Torn or corrupt records at the tail are repaired silently instead.
var ErrCorrupt = errors.New("journal: corrupt")

// Record is one journaled event. Kind namespaces the event ("job.accepted",
// "task.done"), Key identifies its subject (artifact id, task hash) and
// Payload carries kind-specific bytes (a job spec, task result bytes).
type Record struct {
	Kind    string
	Key     string
	Payload []byte
}

// Stats is a point-in-time snapshot of one journal's counters.
type Stats struct {
	// Replayed is how many intact records Open recovered.
	Replayed int
	// TruncatedBytes is how many torn tail bytes Open discarded.
	TruncatedBytes int64
	// Appended counts records written since Open.
	Appended int64
	// Bytes is the current file size.
	Bytes int64
}

// Journal is an open write-ahead log. All methods are safe for concurrent
// use. Appends are synced to disk before they return, so an acknowledged
// record survives kill -9.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64

	records   []Record // replayed at Open, in log order
	replayed  int
	truncated int64
	appended  int64
}

// Open opens (creating if missing) the journal at path, replays every intact
// record, repairs a torn tail by truncation, and leaves the file positioned
// for appends.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay validates the header, loads intact records and truncates a torn
// tail. Called once from Open.
func (j *Journal) replay() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat: %w", err)
	}
	if info.Size() == 0 {
		var hdr [headerLen]byte
		copy(hdr[:], Magic)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("journal: writing header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: syncing header: %w", err)
		}
		j.size = headerLen
		return nil
	}
	if info.Size() < headerLen {
		// Crash while writing the 8-byte header of a brand-new journal: there
		// were no records yet, so rewrite it and carry on.
		return j.reset()
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
		return fmt.Errorf("journal: reading header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: bad magic %q in %s", ErrCorrupt, hdr[:len(Magic)], filepath.Base(j.path))
	}
	good := int64(headerLen)
	for {
		rec, n, err := readRecord(j.f)
		if err != nil {
			// Torn or corrupt tail: truncate back to the last intact record.
			// io.EOF with n==0 is the clean end of the log.
			if err == io.EOF && n == 0 {
				break
			}
			j.truncated = info.Size() - good
			if err := j.f.Truncate(good); err != nil {
				return fmt.Errorf("journal: truncating torn tail: %w", err)
			}
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("journal: syncing truncation: %w", err)
			}
			break
		}
		good += n
		j.records = append(j.records, rec)
	}
	j.replayed = len(j.records)
	j.size = good
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seeking to tail: %w", err)
	}
	return nil
}

// reset rewrites an empty journal header after a header-torn crash.
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: resetting: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[:], Magic)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: rewriting header: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = headerLen
	return nil
}

// readRecord decodes one record from r, returning how many bytes it
// consumed. Any malformed or short read returns an error; n then reports how
// far the reader got (nonzero means a torn record).
func readRecord(r io.Reader) (Record, int64, error) {
	var kl [1]byte
	n, err := io.ReadFull(r, kl[:])
	if err != nil {
		return Record{}, int64(n), err
	}
	read := int64(n)
	kind := make([]byte, kl[0])
	n, err = io.ReadFull(r, kind)
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	var yl [1]byte
	n, err = io.ReadFull(r, yl[:])
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	key := make([]byte, yl[0])
	n, err = io.ReadFull(r, key)
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	var pl [4]byte
	n, err = io.ReadFull(r, pl[:])
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	plen := binary.BigEndian.Uint32(pl[:])
	if plen > maxPayload {
		return Record{}, read, fmt.Errorf("%w: payload %d exceeds %d bytes", ErrCorrupt, plen, maxPayload)
	}
	payload := make([]byte, plen)
	n, err = io.ReadFull(r, payload)
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	var sum [4]byte
	n, err = io.ReadFull(r, sum[:])
	read += int64(n)
	if err != nil {
		return Record{}, read, err
	}
	crc := crc32.NewIEEE()
	crc.Write(kl[:])
	crc.Write(kind)
	crc.Write(yl[:])
	crc.Write(key)
	crc.Write(pl[:])
	crc.Write(payload)
	if got := binary.BigEndian.Uint32(sum[:]); got != crc.Sum32() {
		return Record{}, read, fmt.Errorf("%w: record checksum %08x, want %08x", ErrCorrupt, got, crc.Sum32())
	}
	return Record{Kind: string(kind), Key: string(key), Payload: payload}, read, nil
}

// encodeRecord renders one record in its on-disk framing.
func encodeRecord(rec Record) ([]byte, error) {
	if len(rec.Kind) == 0 || len(rec.Kind) > 255 {
		return nil, fmt.Errorf("journal: bad record kind %q", rec.Kind)
	}
	if len(rec.Key) > 255 {
		return nil, fmt.Errorf("journal: record key %q too long", rec.Key)
	}
	if len(rec.Payload) > maxPayload {
		return nil, fmt.Errorf("journal: record payload %d exceeds %d bytes", len(rec.Payload), maxPayload)
	}
	b := make([]byte, 0, 1+len(rec.Kind)+1+len(rec.Key)+4+len(rec.Payload)+4)
	b = append(b, byte(len(rec.Kind)))
	b = append(b, rec.Kind...)
	b = append(b, byte(len(rec.Key)))
	b = append(b, rec.Key...)
	var pl [4]byte
	binary.BigEndian.PutUint32(pl[:], uint32(len(rec.Payload)))
	b = append(b, pl[:]...)
	b = append(b, rec.Payload...)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(b))
	b = append(b, sum[:]...)
	return b, nil
}

// Append durably writes one record: it is on disk (fsync'd) when Append
// returns nil.
func (j *Journal) Append(rec Record) error {
	b, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.size += int64(len(b))
	j.appended++
	return nil
}

// Records returns the records replayed at Open, in log order. The slice is
// shared; treat it as read-only. Records appended after Open are not
// included — replay state is an Open-time snapshot by design.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// Compact rewrites the journal keeping only the replayed records that pass
// keep, dropping everything else (completed jobs, stale task checkpoints).
// The rewrite is atomic: a temp file in the same directory is renamed over
// the journal, so a crash mid-compaction leaves the old intact log in place.
// Records appended after Open survive only if they were re-appended after
// Compact returns; call it immediately after Open, before new appends.
func (j *Journal) Compact(keep func(Record) bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [headerLen]byte
	copy(hdr[:], Magic)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	size := int64(headerLen)
	kept := j.records[:0:0]
	for _, rec := range j.records {
		if !keep(rec) {
			continue
		}
		b, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(b); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		size += int64(len(b))
		kept = append(kept, rec)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = size
	j.records = kept
	return nil
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Replayed:       j.replayed,
		TruncatedBytes: j.truncated,
		Appended:       j.appended,
		Bytes:          j.size,
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
