package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	want := []Record{
		{Kind: "job.accepted", Key: "a1", Payload: []byte(`{"seed":7}`)},
		{Kind: "task.done", Key: "t1", Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Kind: "job.done", Key: "a1"},
		{Kind: "empty.payload", Key: ""},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Stats().Appended; got != int64(len(want)) {
		t.Fatalf("Appended = %d, want %d", got, len(want))
	}
	j.Close()

	j2 := openT(t, path)
	got := j2.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Key != want[i].Key ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st := j2.Stats(); st.Replayed != len(want) || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTornTailTruncated simulates kill -9 mid-append: the journal must come
// back with every intact record and the torn bytes discarded.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	j.Append(Record{Kind: "job.accepted", Key: "a1", Payload: []byte("spec")})
	j.Append(Record{Kind: "job.accepted", Key: "a2", Payload: []byte("spec2")})
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 20; cut++ {
		torn := raw[:len(raw)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recs := j2.Records()
		if len(recs) != 1 || recs[0].Key != "a1" {
			t.Fatalf("cut %d: replayed %+v, want only a1", cut, recs)
		}
		if j2.Stats().TruncatedBytes == 0 {
			t.Fatalf("cut %d: no truncation reported", cut)
		}
		// Appends after repair land after the surviving record.
		if err := j2.Append(Record{Kind: "job.done", Key: "a1"}); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3 := openT(t, path)
		if recs := j3.Records(); len(recs) != 2 || recs[1].Kind != "job.done" {
			t.Fatalf("cut %d: after repair+append replayed %+v", cut, recs)
		}
		j3.Close()
	}
}

// TestCorruptMidRecordTruncates flips a byte inside the first record: replay
// must stop before it rather than serve corrupt bytes.
func TestCorruptMidRecordTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	j.Append(Record{Kind: "job.accepted", Key: "a1", Payload: []byte("payload-1")})
	j.Close()
	raw, _ := os.ReadFile(path)
	raw[headerLen+5] ^= 0x20 // inside the record kind
	os.WriteFile(path, raw, 0o644)
	j2 := openT(t, path)
	if recs := j2.Records(); len(recs) != 0 {
		t.Fatalf("corrupt record replayed: %+v", recs)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	os.WriteFile(path, []byte("NOTJRNL0"), 0o644)
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTornHeaderReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	os.WriteFile(path, []byte("CSB"), 0o644) // crash mid-header
	j := openT(t, path)
	if recs := j.Records(); len(recs) != 0 {
		t.Fatalf("records = %+v", recs)
	}
	if err := j.Append(Record{Kind: "k", Key: "x"}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactKeepsFiltered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	j.Append(Record{Kind: "job.accepted", Key: "a1", Payload: []byte("s1")})
	j.Append(Record{Kind: "job.done", Key: "a1"})
	j.Append(Record{Kind: "job.accepted", Key: "a2", Payload: []byte("s2")})
	j.Append(Record{Kind: "task.done", Key: "t9", Payload: []byte("result")})
	j.Close()

	j2 := openT(t, path)
	before := j2.Stats().Bytes
	if err := j2.Compact(func(r Record) bool { return r.Key == "a2" || r.Kind == "task.done" }); err != nil {
		t.Fatal(err)
	}
	if after := j2.Stats().Bytes; after >= before {
		t.Fatalf("compact grew the file: %d -> %d", before, after)
	}
	// Appends after compaction extend the compacted file.
	if err := j2.Append(Record{Kind: "job.done", Key: "a2"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3 := openT(t, path)
	recs := j3.Records()
	if len(recs) != 3 || recs[0].Key != "a2" || recs[1].Key != "t9" || recs[2].Kind != "job.done" {
		t.Fatalf("post-compact records = %+v", recs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if err := j.Append(Record{Kind: "task.done", Key: "k", Payload: []byte{byte(i), byte(k)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	j2 := openT(t, path)
	if got := len(j2.Records()); got != 160 {
		t.Fatalf("replayed %d records, want 160", got)
	}
}

func TestRecordLimits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j := openT(t, path)
	if err := j.Append(Record{Kind: "", Key: "x"}); err == nil {
		t.Error("empty kind accepted")
	}
	if err := j.Append(Record{Kind: string(bytes.Repeat([]byte{'k'}, 256)), Key: "x"}); err == nil {
		t.Error("oversized kind accepted")
	}
	if err := j.Append(Record{Kind: "k", Key: string(bytes.Repeat([]byte{'y'}, 256))}); err == nil {
		t.Error("oversized key accepted")
	}
}
