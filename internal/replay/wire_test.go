package replay

import (
	"bytes"
	"io"
	"testing"

	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

// testFlows assembles a real flow set (sorted by StartMicros with actual
// timestamps) from a synthetic trace.
func testFlows(t testing.TB, hosts, sessions int, seed uint64) []netflow.Flow {
	t.Helper()
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(hosts, sessions, seed))
	if err != nil {
		t.Fatal(err)
	}
	flows := netflow.Assemble(pkts, 0)
	if len(flows) == 0 {
		t.Fatal("no flows assembled")
	}
	return flows
}

func TestFlowRecordRoundTrip(t *testing.T) {
	f := netflow.Flow{
		SrcIP: 0x0a000001, DstIP: 0xc0a80102,
		Protocol: graph.ProtoTCP, SrcPort: 49152, DstPort: 443,
		StartMicros: 1318204800_000001, EndMicros: 1318204860_999999,
		OutBytes: 123456, InBytes: 654321, OutPkts: 42, InPkts: 40,
		State: graph.StateSF, SYNCount: 2, ACKCount: 80,
	}
	rec := EncodeFlow(&f)
	got, err := DecodeFlow(rec[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestFlowRecordRoundTripAllAssembled(t *testing.T) {
	for _, f := range testFlows(t, 20, 300, 5) {
		rec := EncodeFlow(&f)
		got, err := DecodeFlow(rec[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, f)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	var sha [32]byte
	for i := range sha {
		sha[i] = byte(i * 7)
	}
	b := EncodeHeader(Header{ArtifactSHA: sha, Flows: 12345})
	h, err := DecodeHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if h.ArtifactSHA != sha || h.Flows != 12345 {
		t.Fatalf("header = %+v", h)
	}
	b[0] = 'X'
	if _, err := DecodeHeader(b[:]); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFlowFileRoundTrip(t *testing.T) {
	flows := testFlows(t, 20, 300, 6)
	var buf bytes.Buffer
	if err := WriteFlowFile(&buf, flows); err != nil {
		t.Fatal(err)
	}
	// The flow section after the header is exactly EncodeFlows.
	if got, want := buf.Bytes()[FlowFileHeaderLen:], EncodeFlows(flows); !bytes.Equal(got, want) {
		t.Fatal("flow section differs from EncodeFlows")
	}
	back, err := ReadFlowFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flows) {
		t.Fatalf("%d flows, want %d", len(back), len(flows))
	}
	for i := range back {
		if back[i] != flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

// streamBytes renders a complete stream for flows as one subscriber would
// receive it.
func streamBytes(t *testing.T, flows []netflow.Flow) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	for i := range flows {
		rec := EncodeFlow(&flows[i])
		if err := fw.writeFrame(uint64(i), rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.writeEnd(uint64(len(flows))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamReaderRoundTrip(t *testing.T) {
	flows := testFlows(t, 20, 300, 7)
	raw := streamBytes(t, flows)
	st, err := Consume(bytes.NewReader(raw), func(seq uint64, f netflow.Flow, _ []byte) error {
		if f != flows[seq] {
			t.Fatalf("flow %d differs", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Clean || st.Received != uint64(len(flows)) || st.Gaps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStreamReaderDetectsCorruption(t *testing.T) {
	flows := testFlows(t, 20, 300, 8)
	raw := streamBytes(t, flows)
	// Flip one payload byte mid-stream: the rolling checksum on that frame
	// must catch it.
	raw[HeaderLen+frameOverhead+40] ^= 0x01
	_, err := Consume(bytes.NewReader(raw), nil)
	if err == nil {
		t.Fatal("corrupted stream accepted")
	}
}

func TestStreamReaderDetectsTruncation(t *testing.T) {
	flows := testFlows(t, 20, 300, 8)
	raw := streamBytes(t, flows)
	_, err := Consume(bytes.NewReader(raw[:len(raw)/2]), nil)
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
	st, err := Consume(io.MultiReader(bytes.NewReader(raw[:len(raw)/2]), &errReader{}), nil)
	if err == nil || st.Clean {
		t.Fatalf("err = %v, stats = %+v", err, st)
	}
}

type errReader struct{}

func (*errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestStreamReaderCountsGaps(t *testing.T) {
	flows := testFlows(t, 20, 300, 9)
	if len(flows) < 10 {
		t.Skip("need more flows")
	}
	// Emit only every other frame, as a drop-policy server would.
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	var sent uint64
	for i := 0; i < len(flows); i += 2 {
		rec := EncodeFlow(&flows[i])
		if err := fw.writeFrame(uint64(i), rec[:]); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	if err := fw.writeEnd(sent); err != nil {
		t.Fatal(err)
	}
	st, err := Consume(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != sent || st.Gaps == 0 {
		t.Fatalf("stats = %+v (sent %d)", st, sent)
	}
}
