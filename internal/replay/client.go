package replay

import (
	"io"

	"csb/internal/netflow"
)

// ConsumeStats summarizes one consumed stream.
type ConsumeStats struct {
	// Header is the stream header the server sent.
	Header Header
	// Received counts flow frames delivered; Gaps counts flows the server
	// skipped for this stream under its drop policy (sequence holes).
	Received uint64
	Gaps     uint64
	// Clean reports whether the stream ended with a verified end frame (as
	// opposed to the connection dying mid-run, e.g. a disconnect-policy
	// eviction or a server crash).
	Clean bool
}

// Consume reads a CSBS1 stream to completion, invoking fn for every flow
// frame. fn may be nil (useful for draining); returning an error from fn
// aborts consumption. The returned stats are valid even on error.
func Consume(r io.Reader, fn func(seq uint64, f netflow.Flow, raw []byte) error) (ConsumeStats, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return ConsumeStats{}, err
	}
	st := ConsumeStats{Header: sr.Header}
	for {
		fr, err := sr.Next()
		if err != nil {
			st.Received, st.Gaps = sr.Received, sr.Gaps
			return st, err
		}
		if fr.End {
			st.Received, st.Gaps = sr.Received, sr.Gaps
			st.Clean = true
			return st, nil
		}
		if fn != nil {
			if err := fn(fr.Seq, fr.Flow, fr.Raw); err != nil {
				st.Received, st.Gaps = sr.Received, sr.Gaps
				return st, err
			}
		}
	}
}
