package replay

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"csb/internal/graph"
	"csb/internal/netflow"
)

// fuzzFlows is a small valid flow set used to seed the corpora.
func fuzzFlows() []netflow.Flow {
	return []netflow.Flow{
		{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 443, DstPort: 51000,
			Protocol: graph.ProtoTCP, State: graph.StateSF,
			StartMicros: 1000, EndMicros: 2000,
			OutBytes: 1200, InBytes: 8000, OutPkts: 10, InPkts: 12,
			SYNCount: 1, ACKCount: 9},
		{SrcIP: 0xc0a80101, DstIP: 0x08080808, SrcPort: 53321, DstPort: 53,
			Protocol:    graph.ProtoUDP,
			StartMicros: 5000, EndMicros: 5100,
			OutBytes: 64, InBytes: 512, OutPkts: 1, InPkts: 1},
	}
}

// validStream renders a complete CSBS1 stream (header, flow frames, end
// frame) the way a server does.
func validStream(t testing.TB) []byte {
	t.Helper()
	flows := fuzzFlows()
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	for i := range flows {
		rec := EncodeFlow(&flows[i])
		if err := fw.writeFrame(uint64(i), rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.writeEnd(uint64(len(flows))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectTyped fails the fuzz run if err is not one of the contract errors:
// ErrCorruptStream for malformed bytes, io.EOF / io.ErrUnexpectedEOF for
// truncation.
func expectTyped(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, ErrCorruptStream) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	t.Fatalf("untyped decode error: %v", err)
}

// FuzzDecodeFrame drives the CSBS1 stream reader over arbitrary bytes: it
// must terminate, never panic, and classify every failure as either stream
// corruption (ErrCorruptStream) or truncation (io.EOF family).
func FuzzDecodeFrame(f *testing.F) {
	valid := validStream(f)
	f.Add(valid)
	f.Add(valid[:HeaderLen])              // header only
	f.Add(valid[:HeaderLen+7])            // truncated mid-frame-header
	f.Add(valid[:len(valid)-3])           // truncated mid-checksum
	f.Add([]byte("CSBS1"))                // short header
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // garbage
	flipped := append([]byte(nil), valid...)
	flipped[HeaderLen+12] ^= 0x01 // corrupt first payload byte -> CRC mismatch
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			expectTyped(t, err)
			return
		}
		for {
			fr, err := sr.Next()
			if err != nil {
				expectTyped(t, err)
				return
			}
			if fr.End {
				// After a clean end frame only io.EOF may follow.
				if _, err := sr.Next(); !errors.Is(err, io.EOF) {
					t.Fatalf("post-end Next() = %v, want io.EOF", err)
				}
				return
			}
		}
	})
}

// batchStream renders a stream carrying flows tiled to total records, framed
// in batches of batchLen (the final frame takes whatever remains).
func batchStream(t testing.TB, total, batchLen int) []byte {
	t.Helper()
	base := fuzzFlows()
	flows := make([]netflow.Flow, total)
	for i := range flows {
		flows[i] = base[i%len(base)]
	}
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(total)})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	for i := 0; i < total; i += batchLen {
		j := i + batchLen
		if j > total {
			j = total
		}
		if err := fw.writeFrame(uint64(i), EncodeFlows(flows[i:j])); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.writeEnd(uint64(total)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeBatchFrame drives the stream reader over byte streams seeded with
// batch frames — whole batches, mixed v1/batch framing, corrupt batch length
// fields, flipped mid-batch payload bytes, and regressing batch sequence
// numbers. The contract is the same as FuzzDecodeFrame (no panic, every
// failure typed), plus a stronger invariant on success: however the input
// frames its records, the per-flow sequence numbers the reader yields are
// strictly increasing and the received count matches what it yielded.
func FuzzDecodeBatchFrame(f *testing.F) {
	f.Add(batchStream(f, 16, 4))  // uniform batches
	f.Add(batchStream(f, 10, 3))  // ragged final batch
	f.Add(batchStream(f, 6, 1))   // pure v1 framing
	f.Add(batchStream(f, 64, 64)) // one maximal-for-input batch

	// Mixed v1 and batch frames on one stream.
	mixed := func() []byte {
		base := fuzzFlows()
		flows := make([]netflow.Flow, 9)
		for i := range flows {
			flows[i] = base[i%len(base)]
		}
		var buf bytes.Buffer
		hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
		buf.Write(hdr[:])
		fw := newFrameWriter(&buf)
		for _, span := range [][2]int{{0, 1}, {1, 5}, {5, 6}, {6, 9}} {
			if err := fw.writeFrame(uint64(span[0]), EncodeFlows(flows[span[0]:span[1]])); err != nil {
				f.Fatal(err)
			}
		}
		if err := fw.writeEnd(uint64(len(flows))); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(mixed)

	valid := batchStream(f, 16, 4)
	// Length field not a whole number of records.
	ragged := append([]byte(nil), valid...)
	ragged[HeaderLen+3]++
	f.Add(ragged)
	// Length field claiming a batch over the wire limit.
	huge := append([]byte(nil), valid...)
	huge[HeaderLen+0] = 0x01 // 4*80 -> 2^24 + 4*80 bytes
	f.Add(huge)
	// Flipped byte inside the second record of the first batch -> CRC mismatch.
	flipped := append([]byte(nil), valid...)
	flipped[HeaderLen+12+FlowRecordLen+5] ^= 0x01
	f.Add(flipped)
	// Second batch's seq regresses into the first.
	regress := append([]byte(nil), valid...)
	regress[HeaderLen+12+4*FlowRecordLen+4+11] = 1 // seq 4 -> 1
	f.Add(regress)
	// Truncation mid-batch payload.
	f.Add(valid[:HeaderLen+12+2*FlowRecordLen+7])

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			expectTyped(t, err)
			return
		}
		var yielded uint64
		lastSeq, haveSeq := uint64(0), false
		for {
			fr, err := sr.Next()
			if err != nil {
				expectTyped(t, err)
				return
			}
			if fr.End {
				if sr.Received != yielded {
					t.Fatalf("Received = %d, yielded %d flows", sr.Received, yielded)
				}
				if _, err := sr.Next(); !errors.Is(err, io.EOF) {
					t.Fatalf("post-end Next() = %v, want io.EOF", err)
				}
				return
			}
			if haveSeq && fr.Seq <= lastSeq {
				t.Fatalf("seq %d after %d: not strictly increasing", fr.Seq, lastSeq)
			}
			lastSeq, haveSeq = fr.Seq, true
			if len(fr.Raw) != FlowRecordLen {
				t.Fatalf("frame raw is %d bytes", len(fr.Raw))
			}
			yielded++
		}
	})
}

// FuzzReadFlowFile drives the CSBF1 artifact parser over arbitrary bytes with
// the same no-panic, typed-error contract, and checks that intact files
// round-trip.
func FuzzReadFlowFile(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFlowFile(&buf, fuzzFlows()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:FlowFileHeaderLen])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("CSBF1"))
	f.Add(bytes.Repeat([]byte{0x00}, 96))
	f.Fuzz(func(t *testing.T, data []byte) {
		flows, err := ReadFlowFile(bytes.NewReader(data))
		if err != nil {
			expectTyped(t, err)
			return
		}
		// Parsed successfully: encode-then-decode must be the identity on the
		// parsed flows. (A full byte round trip is not promised — the header
		// and records carry padding bytes the parser deliberately ignores.)
		var out bytes.Buffer
		if err := WriteFlowFile(&out, flows); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFlowFile(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading encoded flows: %v", err)
		}
		if len(again) != len(flows) {
			t.Fatalf("round trip changed flow count: %d vs %d", len(again), len(flows))
		}
		for i := range flows {
			if again[i] != flows[i] {
				t.Fatalf("flow %d changed across round trip", i)
			}
		}
	})
}
