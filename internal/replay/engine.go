package replay

import (
	"fmt"
	"time"
)

// LagPolicy decides what happens to a subscriber whose bounded send queue is
// full when the clock says the next flow is due.
type LagPolicy uint8

const (
	// PolicyBlock propagates backpressure to the replay clock: the emitter
	// waits for the slowest subscriber, keeping every stream complete but
	// letting one slow client stall the run (and everyone on it).
	PolicyBlock LagPolicy = iota
	// PolicyDrop skips the frame for the lagging subscriber only, counting
	// the drop; the clock and the other subscribers are unaffected. The
	// receiver sees the loss as a sequence gap.
	PolicyDrop
	// PolicyDisconnect evicts the lagging subscriber outright; the clock
	// and the other subscribers are unaffected.
	PolicyDisconnect
)

// String names the policy as accepted by ParseLagPolicy.
func (p LagPolicy) String() string {
	switch p {
	case PolicyDrop:
		return "drop"
	case PolicyDisconnect:
		return "disconnect"
	default:
		return "block"
	}
}

// ParseLagPolicy parses a policy name: block, drop or disconnect.
func ParseLagPolicy(s string) (LagPolicy, error) {
	switch s {
	case "block", "":
		return PolicyBlock, nil
	case "drop":
		return PolicyDrop, nil
	case "disconnect":
		return PolicyDisconnect, nil
	default:
		return PolicyBlock, fmt.Errorf("replay: unknown lag policy %q (want block, drop or disconnect)", s)
	}
}

// Options parameterizes a replay run.
type Options struct {
	// Speed is the time-warp factor mapping dataset time to wall time:
	// 1.0 replays on the original inter-flow timeline, 100 runs 100x
	// faster, and 0 (the default) emits as fast as possible — pacing then
	// falls entirely to Rate. Negative is rejected.
	Speed float64
	// Rate caps emission at this many flows per second through a token
	// bucket, independent of Speed (0 = unlimited). Useful for datasets
	// without a timeline, e.g. flows projected from a generated property
	// graph, whose start times are all zero.
	Rate float64
	// Burst is the token-bucket depth (0 means DefaultBurst).
	Burst int
	// Policy is the lag policy for slow subscribers.
	Policy LagPolicy
	// QueueLen bounds each subscriber's send queue in frames (0 means
	// DefaultQueueLen).
	QueueLen int
	// BatchLen caps how many flows one stream frame may carry (0 means
	// DefaultBatchLen, 1 forces v1 single-flow frames). Batching never
	// delays delivery: a frame carries only the contiguous run of flows
	// already queued when the writer catches up, so a caught-up live
	// subscriber still sees every flow in its own frame.
	BatchLen int
	// ArtifactSHA is the content address stamped into every stream header.
	ArtifactSHA [32]byte
}

// Defaults for Options.
const (
	DefaultQueueLen = 256
	DefaultBurst    = 64
	DefaultBatchLen = 64
)

func (o *Options) normalize() error {
	if o.Speed < 0 {
		return fmt.Errorf("replay: negative speed %v", o.Speed)
	}
	if o.Rate < 0 {
		return fmt.Errorf("replay: negative rate %v", o.Rate)
	}
	if o.QueueLen <= 0 {
		o.QueueLen = DefaultQueueLen
	}
	if o.Burst <= 0 {
		o.Burst = DefaultBurst
	}
	if o.BatchLen <= 0 {
		o.BatchLen = DefaultBatchLen
	}
	if o.BatchLen > MaxBatchFlows {
		return fmt.Errorf("replay: batch length %d exceeds the wire limit %d", o.BatchLen, MaxBatchFlows)
	}
	return nil
}

// clock abstracts wall time so pacing is testable without real sleeps.
type clock struct {
	now   func() time.Time
	sleep func(time.Duration)
}

func realClock() clock {
	return clock{now: time.Now, sleep: time.Sleep}
}

// pacer schedules flow emission: the time-warp schedule against the
// dataset's own timeline, then the token bucket on top. Both delays compose
// (the bucket never lets a burst exceed Rate even when Speed releases many
// flows at once).
type pacer struct {
	clk   clock
	speed float64

	base    int64     // dataset time of the first flow, micros
	started time.Time // wall time of run start

	// Token bucket (inactive when rate == 0).
	rate   float64
	tokens float64
	burst  float64
	last   time.Time
}

func newPacer(clk clock, o Options) *pacer {
	return &pacer{
		clk: clk, speed: o.Speed,
		rate: o.Rate, burst: float64(o.Burst), tokens: float64(o.Burst),
	}
}

// start pins the wall-clock origin of the run to the first flow's timestamp.
func (p *pacer) start(baseMicros int64) {
	p.base = baseMicros
	p.started = p.clk.now()
	p.last = p.started
}

// wait blocks until the flow with dataset timestamp startMicros is due.
func (p *pacer) wait(startMicros int64) {
	if p.speed > 0 {
		elapsed := float64(startMicros-p.base) / p.speed // dataset µs -> wall µs
		due := p.started.Add(time.Duration(elapsed) * time.Microsecond)
		if d := due.Sub(p.clk.now()); d > 0 {
			p.clk.sleep(d)
		}
	}
	if p.rate > 0 {
		p.take()
	}
}

// take consumes one token, sleeping for the refill when the bucket is empty.
func (p *pacer) take() {
	now := p.clk.now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	p.last = now
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	if p.tokens < 1 {
		need := (1 - p.tokens) / p.rate // seconds until one token refills
		d := time.Duration(need * float64(time.Second))
		p.clk.sleep(d)
		now = p.clk.now()
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
	}
	p.tokens--
}
