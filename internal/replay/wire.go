// Package replay turns static csb datasets into live traffic: a flow-replay
// engine that re-emits an assembled dataset on its original inter-flow
// timeline (with a time-warp factor and an optional token-bucket rate cap)
// and a TCP streaming server that fans each run out to many concurrent
// subscribers — the delivery half of "on-line intrusion detection with
// streaming data", the paper's stated future work. Datasets stop being files
// and start being traffic an external NIDS (or internal/ids.StreamDetector)
// can consume as it happens.
//
// The wire format (CSBS1) is versioned, length-framed and self-verifying:
//
//	stream header (48 bytes):
//	  [0:5]   magic "CSBS1"
//	  [5]     flags (0)
//	  [6:8]   record length, uint16 BE (FlowRecordLen)
//	  [8:40]  SHA-256 content address of the source artifact (zero if unknown)
//	  [40:48] flow count of the run, uint64 BE
//
//	frame:
//	  [0:4]   payload length, uint32 BE: k*FlowRecordLen for a batch of k
//	          consecutive flows (k = 1 is the original v1 single-flow frame;
//	          0 = end of stream; any other length is corruption)
//	  [4:12]  sequence number, uint64 BE (the first flow's index in the run;
//	          a batch's k records are flows seq..seq+k-1; the end frame
//	          carries the count of flows emitted to this stream)
//	  [12:..] payload (k concatenated flow records)
//	  [..+4]  rolling CRC32 (IEEE), uint32 BE, of every payload byte
//	          delivered on this stream so far including this frame
//
// The sequence number makes lag-policy drops visible (a gap in seq), and the
// rolling checksum makes silent corruption or truncation detectable at every
// frame, not just at end of stream. Batch frames are pure framing: the
// checksum folds payload bytes, not frame boundaries, so a batch of k flows
// rolls the CRC to exactly the state k single-flow frames would, and
// concatenating the payloads of a gap-free stream reproduces the source
// artifact's flow section byte for byte regardless of how the sender
// batched. Decoders accept both kinds on one stream; senders written before
// the batch kind simply always emit k = 1.
package replay

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"csb/internal/bufpool"
	"csb/internal/graph"
	"csb/internal/netflow"
)

// Wire-format constants.
const (
	// MagicStream opens every CSBS1 stream.
	MagicStream = "CSBS1"
	// MagicFlowFile opens a CSBF1 flow artifact (header + raw records).
	MagicFlowFile = "CSBF1"
	// HeaderLen is the CSBS1 stream header length.
	HeaderLen = 48
	// FlowFileHeaderLen is the CSBF1 flow-artifact header length.
	FlowFileHeaderLen = 16
	// FlowRecordLen is the fixed encoded size of one flow record.
	FlowRecordLen = 80
	// MaxBatchFlows bounds how many flow records one batch frame may carry.
	// It caps the sender's framing and, more importantly, the decoder's
	// buffer: a corrupt length field can never demand more than
	// MaxBatchFlows*FlowRecordLen bytes.
	MaxBatchFlows = 1024
	// frameOverhead is the per-frame framing cost: length + seq + crc.
	frameOverhead = 4 + 8 + 4
)

// ErrCorruptStream tags every decode failure caused by malformed wire bytes
// — bad magic, wrong record length, checksum mismatch, sequence regression,
// implausible counts. Callers distinguish corruption from plain truncation
// (which surfaces as io.EOF / io.ErrUnexpectedEOF) with errors.Is. The fuzz
// targets enforce that corrupt input always yields one of these typed errors
// and never a panic.
var ErrCorruptStream = errors.New("corrupt stream")

// corruptf builds an ErrCorruptStream-tagged error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("replay: "+format+": %w", append(args, ErrCorruptStream)...)
}

// Header is the decoded CSBS1 stream header.
type Header struct {
	// ArtifactSHA is the SHA-256 content address of the dataset being
	// replayed (the csbd spec ID when the daemon serves the run, the file
	// hash when csbreplay serves a local artifact). All zero when unknown.
	ArtifactSHA [32]byte
	// Flows is the total flow count of the run.
	Flows uint64
}

// EncodeHeader serializes h.
func EncodeHeader(h Header) [HeaderLen]byte {
	var b [HeaderLen]byte
	copy(b[0:5], MagicStream)
	binary.BigEndian.PutUint16(b[6:8], FlowRecordLen)
	copy(b[8:40], h.ArtifactSHA[:])
	binary.BigEndian.PutUint64(b[40:48], h.Flows)
	return b
}

// DecodeHeader parses and validates a CSBS1 stream header.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderLen {
		return h, corruptf("short stream header (%d bytes)", len(b))
	}
	if string(b[0:5]) != MagicStream {
		return h, corruptf("bad stream magic %q", b[0:5])
	}
	if rl := binary.BigEndian.Uint16(b[6:8]); rl != FlowRecordLen {
		return h, corruptf("record length %d, want %d", rl, FlowRecordLen)
	}
	copy(h.ArtifactSHA[:], b[8:40])
	h.Flows = binary.BigEndian.Uint64(b[40:48])
	return h, nil
}

// EncodeFlow serializes one flow record into the fixed 80-byte wire form.
// All integers are big-endian; the encoding round-trips every Flow field.
func EncodeFlow(f *netflow.Flow) [FlowRecordLen]byte {
	var b [FlowRecordLen]byte
	binary.BigEndian.PutUint32(b[0:4], f.SrcIP)
	binary.BigEndian.PutUint32(b[4:8], f.DstIP)
	binary.BigEndian.PutUint16(b[8:10], f.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], f.DstPort)
	b[12] = uint8(f.Protocol)
	b[13] = uint8(f.State)
	binary.BigEndian.PutUint64(b[16:24], uint64(f.StartMicros))
	binary.BigEndian.PutUint64(b[24:32], uint64(f.EndMicros))
	binary.BigEndian.PutUint64(b[32:40], uint64(f.OutBytes))
	binary.BigEndian.PutUint64(b[40:48], uint64(f.InBytes))
	binary.BigEndian.PutUint64(b[48:56], uint64(f.OutPkts))
	binary.BigEndian.PutUint64(b[56:64], uint64(f.InPkts))
	binary.BigEndian.PutUint64(b[64:72], uint64(f.SYNCount))
	binary.BigEndian.PutUint64(b[72:80], uint64(f.ACKCount))
	return b
}

// DecodeFlow parses one 80-byte flow record.
func DecodeFlow(b []byte) (netflow.Flow, error) {
	var f netflow.Flow
	if len(b) < FlowRecordLen {
		return f, corruptf("short flow record (%d bytes)", len(b))
	}
	f.SrcIP = binary.BigEndian.Uint32(b[0:4])
	f.DstIP = binary.BigEndian.Uint32(b[4:8])
	f.SrcPort = binary.BigEndian.Uint16(b[8:10])
	f.DstPort = binary.BigEndian.Uint16(b[10:12])
	f.Protocol = graph.Protocol(b[12])
	f.State = graph.TCPState(b[13])
	f.StartMicros = int64(binary.BigEndian.Uint64(b[16:24]))
	f.EndMicros = int64(binary.BigEndian.Uint64(b[24:32]))
	f.OutBytes = int64(binary.BigEndian.Uint64(b[32:40]))
	f.InBytes = int64(binary.BigEndian.Uint64(b[40:48]))
	f.OutPkts = int64(binary.BigEndian.Uint64(b[48:56]))
	f.InPkts = int64(binary.BigEndian.Uint64(b[56:64]))
	f.SYNCount = int64(binary.BigEndian.Uint64(b[64:72]))
	f.ACKCount = int64(binary.BigEndian.Uint64(b[72:80]))
	return f, nil
}

// EncodeFlows concatenates the wire records of a flow set — the "flow
// section" of a CSBF1 artifact, and exactly what a gap-free subscriber's
// concatenated frame payloads reproduce.
func EncodeFlows(flows []netflow.Flow) []byte {
	out := make([]byte, 0, len(flows)*FlowRecordLen)
	for i := range flows {
		rec := EncodeFlow(&flows[i])
		out = append(out, rec[:]...)
	}
	return out
}

// WriteFlowFile writes flows as a CSBF1 flow artifact: a 16-byte header
// (magic, record length, count) followed by the raw concatenated records.
func WriteFlowFile(w io.Writer, flows []netflow.Flow) error {
	var hdr [FlowFileHeaderLen]byte
	copy(hdr[0:5], MagicFlowFile)
	binary.BigEndian.PutUint16(hdr[6:8], FlowRecordLen)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(flows)))
	bw := bufpool.Get(w)
	defer bufpool.Put(bw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for i := range flows {
		rec := EncodeFlow(&flows[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFlowFile parses a CSBF1 flow artifact.
func ReadFlowFile(r io.Reader) ([]netflow.Flow, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [FlowFileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("replay: flow-file header: %w", err)
	}
	if string(hdr[0:5]) != MagicFlowFile {
		return nil, corruptf("bad flow-file magic %q", hdr[0:5])
	}
	if rl := binary.BigEndian.Uint16(hdr[6:8]); rl != FlowRecordLen {
		return nil, corruptf("flow-file record length %d, want %d", rl, FlowRecordLen)
	}
	count := binary.BigEndian.Uint64(hdr[8:16])
	if count > 1<<40 {
		return nil, corruptf("implausible flow count %d", count)
	}
	// Never pre-allocate from the untrusted header count alone: a corrupt
	// 16-byte header claiming 2^40 flows must not demand terabytes up front.
	const maxPrealloc = 1 << 20
	flows := make([]netflow.Flow, 0, min(count, maxPrealloc))
	var rec [FlowRecordLen]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("replay: flow record %d: %w", i, err)
		}
		f, err := DecodeFlow(rec[:])
		if err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// frameWriter emits framed records with the per-stream rolling checksum.
// It is not safe for concurrent use; each subscriber owns one.
type frameWriter struct {
	w   *bufio.Writer
	crc uint32
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 1<<15)}
}

// writeFrame emits one frame — payload is k >= 1 concatenated flow records,
// seq the first record's flow index — and folds the payload into the rolling
// checksum with a single CRC update, however many records it carries.
func (fw *frameWriter) writeFrame(seq uint64, payload []byte) error {
	var pre [12]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(pre[4:12], seq)
	if _, err := fw.w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	fw.crc = crc32.Update(fw.crc, crc32.IEEETable, payload)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], fw.crc)
	_, err := fw.w.Write(sum[:])
	return err
}

// writeEnd emits the end-of-stream frame (zero length, final checksum) and
// flushes. delivered is the number of flow frames this stream carried.
func (fw *frameWriter) writeEnd(delivered uint64) error {
	var pre [12]byte
	binary.BigEndian.PutUint64(pre[4:12], delivered)
	if _, err := fw.w.Write(pre[:]); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], fw.crc)
	if _, err := fw.w.Write(sum[:]); err != nil {
		return err
	}
	return fw.w.Flush()
}

// Frame is one decoded stream frame.
type Frame struct {
	// Seq is the flow's index in the run (frames skipped by a drop-policy
	// server show up as gaps in Seq).
	Seq uint64
	// Flow is the decoded record.
	Flow netflow.Flow
	// Raw is the payload as delivered (aliased into the reader's buffer
	// only until the next call; copy to retain).
	Raw []byte
	// End marks the end-of-stream frame; Seq then holds the delivered
	// count and Flow/Raw are zero.
	End bool
}

// StreamReader consumes one CSBS1 stream, verifying the rolling checksum on
// every frame. It decodes v1 single-flow frames and batch frames on the same
// stream transparently: Next yields exactly one flow per call either way, so
// callers never see the sender's framing. The payload buffer is reused
// across frames (grown geometrically up to the MaxBatchFlows bound), which is
// what keeps a fan-out consumer allocation-free per flow.
type StreamReader struct {
	br  *bufio.Reader
	crc uint32

	// payload holds the current frame's records; off is the byte offset of
	// the next record Next will yield, batchSeq the frame's first flow index.
	payload  []byte
	off      int
	batchSeq uint64

	// Header is the stream header, decoded at construction.
	Header Header
	// Received counts flow records read so far (a batch frame counts once
	// per record it carries).
	Received uint64
	// Gaps counts flows skipped by the sender's lag policy, derived from
	// sequence-number jumps.
	Gaps uint64

	nextSeq uint64
	started bool
	done    bool
}

// NewStreamReader reads and validates the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<15)
	var hb [HeaderLen]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, fmt.Errorf("replay: stream header: %w", err)
	}
	h, err := DecodeHeader(hb[:])
	if err != nil {
		return nil, err
	}
	return &StreamReader{br: br, Header: h}, nil
}

// Next returns the next flow frame, reading a new wire frame only once the
// current batch's records are exhausted. After the end-of-stream frame is
// returned (End true), subsequent calls return io.EOF.
func (sr *StreamReader) Next() (Frame, error) {
	if sr.done {
		return Frame{}, io.EOF
	}
	if sr.off < len(sr.payload) {
		return sr.yield(), nil
	}
	var pre [12]byte
	if _, err := io.ReadFull(sr.br, pre[:]); err != nil {
		return Frame{}, fmt.Errorf("replay: frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(pre[0:4])
	seq := binary.BigEndian.Uint64(pre[4:12])
	if length == 0 {
		var sum [4]byte
		if _, err := io.ReadFull(sr.br, sum[:]); err != nil {
			return Frame{}, fmt.Errorf("replay: end frame: %w", err)
		}
		if got := binary.BigEndian.Uint32(sum[:]); got != sr.crc {
			return Frame{}, corruptf("final checksum %08x, want %08x", got, sr.crc)
		}
		if seq != sr.Received {
			return Frame{}, corruptf("end frame claims %d flows, received %d", seq, sr.Received)
		}
		sr.done = true
		return Frame{Seq: seq, End: true}, nil
	}
	if length%FlowRecordLen != 0 {
		return Frame{}, corruptf("frame length %d is not a multiple of the %d-byte record", length, FlowRecordLen)
	}
	k := length / FlowRecordLen
	if k > MaxBatchFlows {
		return Frame{}, corruptf("batch of %d flows exceeds the %d-flow limit", k, MaxBatchFlows)
	}
	if cap(sr.payload) < int(length) {
		sr.payload = make([]byte, length)
	} else {
		sr.payload = sr.payload[:length]
	}
	if _, err := io.ReadFull(sr.br, sr.payload); err != nil {
		return Frame{}, fmt.Errorf("replay: frame payload: %w", err)
	}
	sr.crc = crc32.Update(sr.crc, crc32.IEEETable, sr.payload)
	var sum [4]byte
	if _, err := io.ReadFull(sr.br, sum[:]); err != nil {
		return Frame{}, fmt.Errorf("replay: frame checksum: %w", err)
	}
	if got := binary.BigEndian.Uint32(sum[:]); got != sr.crc {
		return Frame{}, corruptf("rolling checksum %08x at seq %d, want %08x", got, seq, sr.crc)
	}
	if sr.started {
		if seq < sr.nextSeq {
			return Frame{}, corruptf("sequence %d went backwards (expected >= %d)", seq, sr.nextSeq)
		}
		sr.Gaps += seq - sr.nextSeq
	} else {
		sr.started = true
	}
	sr.nextSeq = seq + uint64(k)
	sr.batchSeq = seq
	sr.off = 0
	return sr.yield(), nil
}

// yield decodes the next record of the current frame's payload. The caller
// has already verified off < len(payload); records inside a batch are
// consecutive flows, so the per-record sequence number is derived from the
// frame's first index.
func (sr *StreamReader) yield() Frame {
	rec := sr.payload[sr.off : sr.off+FlowRecordLen]
	seq := sr.batchSeq + uint64(sr.off/FlowRecordLen)
	sr.off += FlowRecordLen
	// rec holds exactly FlowRecordLen bytes, so DecodeFlow cannot fail.
	f, _ := DecodeFlow(rec)
	sr.Received++
	return Frame{Seq: seq, Flow: f, Raw: rec}
}
