package replay

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"csb/internal/chaosnet"
	"csb/internal/netflow"
)

// serveChaosFlows is serveFlows with a chaosnet injector wrapped around the
// listener, so every subscriber connection runs through the fault model.
func serveChaosFlows(t *testing.T, faults *chaosnet.Faults, flows []netflow.Flow, opts Options) (*Server, string) {
	t.Helper()
	s, err := NewServer(flows, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(faults.Listen(ln))
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

// TestReplayStreamByteIdenticalUnderShaping: CSBS1 delivery through latency,
// jitter, slow-drip chunking and a bandwidth cap must still hand every
// subscriber the exact artifact bytes — shaping reorders nothing and loses
// nothing, it only stretches time.
func TestReplayStreamByteIdenticalUnderShaping(t *testing.T) {
	flows := testFlows(t, 20, 600, 5)
	want := EncodeFlows(flows)
	cases := []struct {
		name string
		cfg  chaosnet.Config
	}{
		{"latency-jitter-drip", chaosnet.Config{Seed: 3, Latency: 100 * time.Microsecond, Jitter: 500 * time.Microsecond, Drip: 256}},
		{"bandwidth-cap", chaosnet.Config{Seed: 3, BandwidthBPS: 4 << 20, Drip: 1024}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := chaosnet.MustNew(tc.cfg)
			s, addr := serveChaosFlows(t, faults, flows, Options{Speed: 0, Policy: PolicyBlock})
			var wg sync.WaitGroup
			results := make([]streamResult, 2)
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i] = collectStream(t, addr)
				}(i)
			}
			if err := s.AwaitSubscribers(len(results), 10*time.Second); err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			for i, r := range results {
				if r.err != nil {
					t.Fatalf("subscriber %d: %v", i, r.err)
				}
				if !r.stats.Clean || string(r.payload) != string(want) {
					t.Fatalf("subscriber %d: clean=%v, %d payload bytes (want %d)",
						i, r.stats.Clean, len(r.payload), len(want))
				}
			}
			if st := faults.Stats(); st.DelayedOps == 0 {
				t.Error("shaping case delayed no operations")
			}
		})
	}
}

// TestReplayStreamCorruptionSurfacesTypedError: wire corruption on a CSBS1
// stream must be caught by the framing (record length, sequence order, the
// rolling checksum) and surface as ErrCorruptStream — mangled flow bytes
// must never be delivered as data.
func TestReplayStreamCorruptionSurfacesTypedError(t *testing.T) {
	flows := testFlows(t, 20, 600, 5)
	want := EncodeFlows(flows)
	// Grace exempts the first write op (which carries the stream header);
	// every later write gets one flipped bit.
	faults := chaosnet.MustNew(chaosnet.Config{Seed: 9, CorruptRate: 1, GraceOps: 1})
	s, addr := serveChaosFlows(t, faults, flows, Options{Speed: 0, Policy: PolicyBlock})
	done := make(chan streamResult, 1)
	go func() { done <- collectStream(t, addr) }()
	if err := s.AwaitSubscribers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if !errors.Is(r.err, ErrCorruptStream) {
		t.Fatalf("consume of corrupted stream: err = %v, want ErrCorruptStream", r.err)
	}
	if r.stats.Clean {
		t.Fatal("corrupted stream reported a clean end")
	}
	// Whatever prefix was delivered before detection is a prefix of the
	// truth: corruption never reached the consumer's payload.
	if len(r.payload) > len(want) || string(want[:len(r.payload)]) != string(r.payload) {
		t.Fatalf("delivered prefix (%d bytes) diverges from the artifact", len(r.payload))
	}
	if faults.Stats().Corrupted == 0 {
		t.Fatal("injector reports no corruption")
	}
}
