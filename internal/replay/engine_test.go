package replay

import (
	"testing"
	"time"
)

// fakeClock advances only through sleep, making pacing assertions exact.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) clock() clock {
	return clock{
		now: func() time.Time { return c.t },
		sleep: func(d time.Duration) {
			if d > 0 {
				c.t = c.t.Add(d)
				c.slept += d
			}
		},
	}
}

func TestParseLagPolicy(t *testing.T) {
	for s, want := range map[string]LagPolicy{
		"block": PolicyBlock, "": PolicyBlock,
		"drop": PolicyDrop, "disconnect": PolicyDisconnect,
	} {
		got, err := ParseLagPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseLagPolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseLagPolicy("nope"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.QueueLen != DefaultQueueLen || o.Burst != DefaultBurst {
		t.Fatalf("defaults not applied: %+v", o)
	}
	for _, bad := range []Options{{Speed: -1}, {Rate: -5}} {
		b := bad
		if err := b.normalize(); err == nil {
			t.Fatalf("%+v accepted", bad)
		}
	}
}

// TestPacerTimeWarp checks the time-warp schedule: a dataset spanning 10
// virtual seconds replays in 10s at speed 1, 100ms at speed 100, and with no
// sleeps at all at speed 0.
func TestPacerTimeWarp(t *testing.T) {
	starts := []int64{0, 2_000_000, 5_000_000, 10_000_000} // micros
	for _, tc := range []struct {
		speed float64
		want  time.Duration
	}{
		{1, 10 * time.Second},
		{100, 100 * time.Millisecond},
		{0, 0},
	} {
		fc := &fakeClock{t: time.Unix(0, 0)}
		o := Options{Speed: tc.speed}
		if err := o.normalize(); err != nil {
			t.Fatal(err)
		}
		p := newPacer(fc.clock(), o)
		p.start(starts[0])
		for _, s := range starts {
			p.wait(s)
		}
		if fc.slept != tc.want {
			t.Fatalf("speed %v: slept %v, want %v", tc.speed, fc.slept, tc.want)
		}
	}
}

// TestPacerTokenBucket checks the rate cap: 100 flows at 1000 flows/sec with
// a burst of 10 must take about (100-10)/1000 s of sleeping.
func TestPacerTokenBucket(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	o := Options{Rate: 1000, Burst: 10}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	p := newPacer(fc.clock(), o)
	p.start(0)
	for i := 0; i < 100; i++ {
		p.wait(0) // timeline-free dataset: pacing is the bucket alone
	}
	want := 90 * time.Millisecond
	if fc.slept < want-time.Millisecond || fc.slept > want+5*time.Millisecond {
		t.Fatalf("slept %v, want ~%v", fc.slept, want)
	}
}

// TestPacerComposes checks that the rate cap still binds when the time-warp
// schedule would release flows faster.
func TestPacerComposes(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	o := Options{Speed: 1000, Rate: 100, Burst: 1}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	p := newPacer(fc.clock(), o)
	p.start(0)
	for i := int64(0); i < 50; i++ {
		p.wait(i * 1000) // 1ms apart in dataset time -> 1µs at speed 1000
	}
	// 49 refills at 100/s dominate: ~490ms.
	if fc.slept < 400*time.Millisecond {
		t.Fatalf("slept only %v; rate cap did not bind", fc.slept)
	}
}
