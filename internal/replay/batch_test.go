package replay

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"csb/internal/netflow"
)

// batchStreamBytes renders a complete stream for flows using batch frames
// whose sizes cycle through sizes (clamped to the flows remaining).
func batchStreamBytes(t *testing.T, flows []netflow.Flow, sizes []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	for i, si := 0, 0; i < len(flows); si++ {
		k := sizes[si%len(sizes)]
		if k > len(flows)-i {
			k = len(flows) - i
		}
		if err := fw.writeFrame(uint64(i), EncodeFlows(flows[i:i+k])); err != nil {
			t.Fatal(err)
		}
		i += k
	}
	if err := fw.writeEnd(uint64(len(flows))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Batch frames of every legal size — including the 1-flow v1 frame and the
// MaxBatchFlows limit — decode to exactly the per-flow sequence the v1
// framing yields, and the concatenated payloads reproduce EncodeFlows.
func TestBatchFrameDecodeRoundTrip(t *testing.T) {
	flows := testFlows(t, 20, 300, 21)
	for _, sizes := range [][]int{
		{1},
		{3},
		{64},
		{MaxBatchFlows},
		{1, 5, 2, 64, 1, MaxBatchFlows},
	} {
		raw := batchStreamBytes(t, flows, sizes)
		var payload bytes.Buffer
		st, err := Consume(bytes.NewReader(raw), func(seq uint64, f netflow.Flow, rec []byte) error {
			if f != flows[seq] {
				t.Fatalf("sizes %v: flow %d differs", sizes, seq)
			}
			payload.Write(rec)
			return nil
		})
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		if !st.Clean || st.Received != uint64(len(flows)) || st.Gaps != 0 {
			t.Fatalf("sizes %v: stats = %+v", sizes, st)
		}
		if !bytes.Equal(payload.Bytes(), EncodeFlows(flows)) {
			t.Fatalf("sizes %v: concatenated payloads differ from EncodeFlows", sizes)
		}
	}
}

// A stream interleaving v1 single-flow frames and batch frames decodes
// seamlessly: the rolling checksum folds payload bytes only, so the framing
// mix is invisible to the consumer.
func TestMixedV1AndBatchFramesOneStream(t *testing.T) {
	flows := testFlows(t, 20, 300, 22)
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	i := 0
	for batch := false; i < len(flows); batch = !batch {
		k := 1
		if batch {
			k = 7
			if k > len(flows)-i {
				k = len(flows) - i
			}
		}
		if err := fw.writeFrame(uint64(i), EncodeFlows(flows[i:i+k])); err != nil {
			t.Fatal(err)
		}
		i += k
	}
	if err := fw.writeEnd(uint64(len(flows))); err != nil {
		t.Fatal(err)
	}
	st, err := Consume(bytes.NewReader(buf.Bytes()), func(seq uint64, f netflow.Flow, _ []byte) error {
		if f != flows[seq] {
			t.Fatalf("flow %d differs", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Clean || st.Received != uint64(len(flows)) || st.Gaps != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Drop-policy gaps land between frames as sequence jumps; the reader counts
// them the same whether the surviving runs ship as batches or v1 frames.
func TestBatchFramesCountGapsBetweenBatches(t *testing.T) {
	flows := testFlows(t, 20, 300, 23)
	if len(flows) < 40 {
		t.Skip("need more flows")
	}
	// Emit runs of 8, skipping 4 flows between runs.
	var buf bytes.Buffer
	hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
	buf.Write(hdr[:])
	fw := newFrameWriter(&buf)
	var sent, skipped uint64
	for i := 0; i+8 <= len(flows); i += 12 {
		if err := fw.writeFrame(uint64(i), EncodeFlows(flows[i:i+8])); err != nil {
			t.Fatal(err)
		}
		sent += 8
		// A skip only registers as a gap when a later frame follows it.
		if i+12+8 <= len(flows) {
			skipped += 4
		}
	}
	if err := fw.writeEnd(sent); err != nil {
		t.Fatal(err)
	}
	st, err := Consume(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != sent || st.Gaps != skipped {
		t.Fatalf("stats = %+v, want received %d gaps %d", st, sent, skipped)
	}
}

// Corrupt batch frames surface typed ErrCorruptStream, never a panic: a
// length that is not a whole number of records, a batch over the wire limit,
// a flipped payload byte, and a sequence regression.
func TestBatchFrameCorruptionTyped(t *testing.T) {
	flows := testFlows(t, 20, 300, 24)
	writeRaggedFrame := func(fw *frameWriter, length uint32, seq uint64, payload []byte) error {
		// Hand-roll a frame with a lying length field.
		var pre [12]byte
		pre[0] = byte(length >> 24)
		pre[1] = byte(length >> 16)
		pre[2] = byte(length >> 8)
		pre[3] = byte(length)
		for i := 0; i < 8; i++ {
			pre[4+i] = byte(seq >> (56 - 8*i))
		}
		if _, err := fw.w.Write(pre[:]); err != nil {
			return err
		}
		if _, err := fw.w.Write(payload); err != nil {
			return err
		}
		var sum [4]byte
		if _, err := fw.w.Write(sum[:]); err != nil {
			return err
		}
		return fw.w.Flush()
	}

	t.Run("ragged length", func(t *testing.T) {
		var buf bytes.Buffer
		hdr := EncodeHeader(Header{Flows: 2})
		buf.Write(hdr[:])
		fw := newFrameWriter(&buf)
		if err := writeRaggedFrame(fw, FlowRecordLen+1, 0, make([]byte, FlowRecordLen+1)); err != nil {
			t.Fatal(err)
		}
		_, err := Consume(bytes.NewReader(buf.Bytes()), nil)
		if !errors.Is(err, ErrCorruptStream) {
			t.Fatalf("err = %v, want ErrCorruptStream", err)
		}
	})

	t.Run("oversized batch", func(t *testing.T) {
		var buf bytes.Buffer
		hdr := EncodeHeader(Header{Flows: MaxBatchFlows + 1})
		buf.Write(hdr[:])
		fw := newFrameWriter(&buf)
		const n = (MaxBatchFlows + 1) * FlowRecordLen
		if err := writeRaggedFrame(fw, n, 0, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
		_, err := Consume(bytes.NewReader(buf.Bytes()), nil)
		if !errors.Is(err, ErrCorruptStream) {
			t.Fatalf("err = %v, want ErrCorruptStream", err)
		}
	})

	t.Run("flipped payload byte", func(t *testing.T) {
		raw := batchStreamBytes(t, flows, []int{16})
		// Flip a byte inside the first batch's payload (frame header is 12
		// bytes after the stream header).
		raw[HeaderLen+12+200] ^= 0x01
		_, err := Consume(bytes.NewReader(raw), nil)
		if !errors.Is(err, ErrCorruptStream) {
			t.Fatalf("err = %v, want ErrCorruptStream", err)
		}
	})

	t.Run("sequence regression", func(t *testing.T) {
		var buf bytes.Buffer
		hdr := EncodeHeader(Header{Flows: uint64(len(flows))})
		buf.Write(hdr[:])
		fw := newFrameWriter(&buf)
		if err := fw.writeFrame(0, EncodeFlows(flows[:8])); err != nil {
			t.Fatal(err)
		}
		// The next batch claims to start at flow 2, inside the previous one.
		if err := fw.writeFrame(2, EncodeFlows(flows[2:10])); err != nil {
			t.Fatal(err)
		}
		if err := fw.writeEnd(16); err != nil {
			t.Fatal(err)
		}
		_, err := Consume(bytes.NewReader(buf.Bytes()), nil)
		if !errors.Is(err, ErrCorruptStream) {
			t.Fatalf("err = %v, want ErrCorruptStream", err)
		}
	})
}

// Interop: a batch-framing server and a v1 single-frame server deliver the
// same flows to the same unchanged Consume client — identical per-flow
// sequence numbers, identical concatenated payloads, zero gaps.
func TestBatchInteropIdenticalDelivery(t *testing.T) {
	flows := testFlows(t, 20, 300, 25)
	want := EncodeFlows(flows)
	for _, batchLen := range []int{1, 0, DefaultBatchLen, MaxBatchFlows} {
		s, addr := serveFlows(t, flows, Options{Policy: PolicyBlock, BatchLen: batchLen})
		var (
			seqs    []uint64
			payload bytes.Buffer
			st      ConsumeStats
			cerr    error
			wg      sync.WaitGroup
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				cerr = err
				return
			}
			defer conn.Close()
			st, cerr = Consume(conn, func(seq uint64, _ netflow.Flow, raw []byte) error {
				seqs = append(seqs, seq)
				payload.Write(raw)
				return nil
			})
		}()
		if err := s.AwaitSubscribers(1, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		s.Wait()
		wg.Wait()
		if cerr != nil {
			t.Fatalf("batch %d: %v", batchLen, cerr)
		}
		if !st.Clean || st.Gaps != 0 || st.Received != uint64(len(flows)) {
			t.Fatalf("batch %d: stats = %+v", batchLen, st)
		}
		for i, seq := range seqs {
			if seq != uint64(i) {
				t.Fatalf("batch %d: delivery %d carried seq %d", batchLen, i, seq)
			}
		}
		if !bytes.Equal(payload.Bytes(), want) {
			t.Fatalf("batch %d: payload differs from EncodeFlows", batchLen)
		}
	}
}

// A BatchLen 1 server reproduces the pre-batch wire format byte for byte:
// the whole TCP stream, not just the payloads, matches the v1 rendering.
func TestBatchLenOneServerEmitsExactV1Bytes(t *testing.T) {
	flows := testFlows(t, 20, 300, 26)
	want := streamBytes(t, flows)
	s, addr := serveFlows(t, flows, Options{Policy: PolicyBlock, BatchLen: 1})
	var (
		got []byte
		err error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, derr := net.Dial("tcp", addr)
		if derr != nil {
			err = derr
			return
		}
		defer conn.Close()
		got, err = io.ReadAll(conn)
	}()
	if aerr := s.AwaitSubscribers(1, 10*time.Second); aerr != nil {
		t.Fatal(aerr)
	}
	if serr := s.Start(); serr != nil {
		t.Fatal(serr)
	}
	s.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("BatchLen 1 wire bytes differ from v1 rendering (%d vs %d bytes)", len(got), len(want))
	}
}
