package replay

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"csb/internal/netflow"
)

// Server replays one dataset to any number of concurrent TCP subscribers.
// One run has one clock: the pacing engine emits each flow once, and every
// emission fans out to all connected subscribers through bounded per-
// subscriber queues. The lag policy decides what a full queue means — block
// the clock, drop the frame for that subscriber, or disconnect it — so under
// drop/disconnect one slow client can never stall the run or its peers.
//
// Lifecycle: NewServer → Serve (accept loop, usually in a goroutine) and/or
// Attach → Start → Wait → Close. Subscribers connecting mid-run join the
// stream at the current position (their first frame's sequence number says
// where); subscribers connecting after the run get an immediate clean end
// frame.
type Server struct {
	flows []netflow.Flow
	slab  []byte // pre-encoded records; flow i is slab[i*FlowRecordLen:...]
	opts  Options
	clk   clock
	hdr   [HeaderLen]byte

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	bcast   []*subscriber // emitter-owned snapshot scratch, reused every flow
	started bool
	runOver bool // emitter finished; set under mu before queues close
	closed  bool
	ln      net.Listener

	stop    chan struct{} // closed by Close: aborts pacing and accept loop
	runDone chan struct{} // closed when the emitter finishes

	emitted      atomic.Int64
	dropped      atomic.Int64
	disconnected atomic.Int64
	subsTotal    atomic.Int64

	startWall atomic.Int64 // unix nanos; 0 until Start
	endWall   atomic.Int64 // unix nanos; 0 until the run finishes
}

// subscriber is one connected stream. The emitter enqueues flow indices on
// ch; the writer goroutine frames and sends them. gone is closed when the
// writer exits (connection error or eviction) so a block-policy emitter
// never deadlocks on a dead peer.
type subscriber struct {
	conn      net.Conn
	ch        chan int
	gone      chan struct{}
	closeOnce sync.Once
	delivered uint64
	dropped   atomic.Int64
	evicted   atomic.Bool
}

// NewServer validates opts, checks the dataset is sorted by StartMicros (the
// pacing contract) and pre-encodes every record.
func NewServer(flows []netflow.Flow, opts Options) (*Server, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].StartMicros < flows[i-1].StartMicros {
			return nil, fmt.Errorf("replay: flows not sorted by StartMicros (index %d)", i)
		}
	}
	s := &Server{
		flows:   flows,
		slab:    EncodeFlows(flows),
		opts:    opts,
		clk:     realClock(),
		subs:    make(map[*subscriber]struct{}),
		stop:    make(chan struct{}),
		runDone: make(chan struct{}),
	}
	s.hdr = EncodeHeader(Header{ArtifactSHA: opts.ArtifactSHA, Flows: uint64(len(flows))})
	return s, nil
}

// Serve accepts subscribers on ln until ln is closed or the server is
// closed. It is safe to run concurrently with Start.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("replay: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.Attach(conn)
	}
}

// Attach registers an already-established connection as a subscriber. The
// stream header goes out immediately; frames follow once the run reaches
// this subscriber.
func (s *Server) Attach(conn net.Conn) {
	sub := &subscriber{
		conn: conn,
		ch:   make(chan int, s.opts.QueueLen),
		gone: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.subs[sub] = struct{}{}
	runOver := s.runOver
	s.mu.Unlock()
	s.subsTotal.Add(1)
	if runOver {
		// Run already finished: the emitter's shutdown pass will never see
		// this queue, so end the stream cleanly now. runOver is checked
		// under the same lock the shutdown pass snapshots under, so exactly
		// one side closes the channel.
		close(sub.ch)
	}
	go s.writeLoop(sub)
}

// Subscribers returns the number of currently connected subscribers.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// AwaitSubscribers blocks until at least n subscribers are connected or the
// timeout elapses (0 waits forever).
func (s *Server) AwaitSubscribers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if s.Subscribers() >= n {
			return nil
		}
		select {
		case <-s.stop:
			return errors.New("replay: server closed")
		default:
		}
		if timeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("replay: %d subscriber(s) after %v, want %d", s.Subscribers(), timeout, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Drain waits until every subscriber's writer has finished — queues emptied,
// end frames flushed, connections half-closed — or the timeout elapses
// (0 waits forever). Call after Wait when shutting down gracefully: Close
// alone tears connections down immediately, truncating streams that are
// still catching up.
func (s *Server) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if s.Subscribers() == 0 {
			return nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("replay: %d subscriber(s) still draining after %v", s.Subscribers(), timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Start launches the replay run. It errors if called twice or after Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("replay: server closed")
	}
	if s.started {
		return errors.New("replay: run already started")
	}
	s.started = true
	s.startWall.Store(time.Now().UnixNano())
	go s.run()
	return nil
}

// Wait blocks until the run has emitted every flow (or the server closed).
func (s *Server) Wait() {
	<-s.runDone
}

// Done reports whether the run has finished.
func (s *Server) Done() bool {
	select {
	case <-s.runDone:
		return true
	default:
		return false
	}
}

// run is the emitter: one pass over the dataset on the pacing schedule,
// fanning each flow out under the lag policy.
func (s *Server) run() {
	defer func() {
		s.endWall.Store(time.Now().UnixNano())
		// Close every queue so the writers emit end frames and finish.
		// runOver flips under the same lock as the snapshot, so a
		// concurrent Attach either lands in the snapshot or closes its own
		// queue — never both.
		s.mu.Lock()
		s.runOver = true
		subs := make([]*subscriber, 0, len(s.subs))
		for sub := range s.subs {
			subs = append(subs, sub)
		}
		s.mu.Unlock()
		for _, sub := range subs {
			close(sub.ch)
		}
		close(s.runDone)
	}()
	if len(s.flows) == 0 {
		return
	}
	p := newPacer(s.clk, s.opts)
	p.start(s.flows[0].StartMicros)
	for i := range s.flows {
		select {
		case <-s.stop:
			return
		default:
		}
		p.wait(s.flows[i].StartMicros)
		s.broadcast(i)
		s.emitted.Add(1)
	}
}

// broadcast offers flow index i to every live subscriber under the policy.
// The snapshot scratch is owned by the emitter goroutine (broadcast's only
// caller) and reused across flows, so the per-flow fan-out allocates nothing.
func (s *Server) broadcast(i int) {
	s.mu.Lock()
	subs := s.bcast[:0]
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.bcast = subs
	s.mu.Unlock()
	for _, sub := range subs {
		switch s.opts.Policy {
		case PolicyDrop:
			select {
			case sub.ch <- i:
			default:
				sub.dropped.Add(1)
				s.dropped.Add(1)
			}
		case PolicyDisconnect:
			select {
			case sub.ch <- i:
			default:
				s.evict(sub)
				s.disconnected.Add(1)
			}
		default: // PolicyBlock
			select {
			case sub.ch <- i:
			case <-sub.gone:
			case <-s.stop:
				return
			}
		}
	}
}

// evict removes a lagging subscriber: closing the connection unblocks any
// in-flight write and makes its writer exit.
func (s *Server) evict(sub *subscriber) {
	sub.evicted.Store(true)
	s.removeSub(sub)
	sub.closeOnce.Do(func() { sub.conn.Close() })
}

// removeSub unregisters a subscriber (idempotent).
func (s *Server) removeSub(sub *subscriber) {
	s.mu.Lock()
	delete(s.subs, sub)
	s.mu.Unlock()
}

// writeLoop frames and sends one subscriber's stream. Whatever contiguous
// run of flow indices is already queued when the writer comes around goes out
// as one batch frame — a single slab slice, framed and checksummed once — so
// a catching-up stream amortizes framing across up to Options.BatchLen flows
// while a caught-up stream still gets every flow in its own frame the moment
// it is emitted. Batching never waits: only indices sitting in the queue
// right now extend the frame. The send buffer is flushed whenever the queue
// drains, so a caught-up live stream sees every flow promptly.
func (s *Server) writeLoop(sub *subscriber) {
	defer close(sub.gone)
	defer s.removeSub(sub)
	defer sub.closeOnce.Do(func() { sub.conn.Close() })
	if _, err := sub.conn.Write(s.hdr[:]); err != nil {
		return
	}
	fw := newFrameWriter(sub.conn)
	var (
		pending     int  // first index of the next frame, when havePending
		havePending bool // a non-contiguous index was pulled off the queue
		closed      bool // the queue closed mid-collect
	)
	for !closed {
		var first int
		if havePending {
			first, havePending = pending, false
		} else {
			i, ok := <-sub.ch
			if !ok {
				break
			}
			first = i
		}
		count := 1
	collect:
		for count < s.opts.BatchLen {
			select {
			case j, ok := <-sub.ch:
				if !ok {
					closed = true
					break collect
				}
				if j != first+count {
					// A drop-policy gap: it must land between frames so the
					// receiver sees it as a sequence jump.
					pending, havePending = j, true
					break collect
				}
				count++
			default:
				break collect
			}
		}
		payload := s.slab[first*FlowRecordLen : (first+count)*FlowRecordLen]
		if err := fw.writeFrame(uint64(first), payload); err != nil {
			return
		}
		sub.delivered += uint64(count)
		if !havePending && len(sub.ch) == 0 {
			if err := fw.w.Flush(); err != nil {
				return
			}
		}
	}
	if sub.evicted.Load() {
		return
	}
	if err := fw.writeEnd(sub.delivered); err != nil {
		return
	}
	// Half-close when possible so the peer reads a clean EOF after the end
	// frame; the deferred Close tears the rest down.
	if cw, ok := sub.conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
}

// Close aborts the run (if any), stops the accept loop and disconnects all
// subscribers. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	started := s.started
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	close(s.stop)
	if ln != nil {
		ln.Close()
	}
	if started {
		<-s.runDone
	} else {
		// The run will never start (Start errors once closed): release any
		// Wait callers and close the queues so the writers exit.
		s.mu.Lock()
		s.runOver = true
		s.mu.Unlock()
		for _, sub := range subs {
			close(sub.ch)
		}
		close(s.runDone)
	}
	for _, sub := range subs {
		sub.closeOnce.Do(func() { sub.conn.Close() })
	}
}

// Stats is a point-in-time snapshot of one replay run.
type Stats struct {
	// Flows is the dataset size.
	Flows int
	// Emitted counts flows the clock has released so far.
	Emitted int64
	// Subscribers is the current subscriber count; SubscribersTotal counts
	// every subscriber that ever connected.
	Subscribers      int
	SubscribersTotal int64
	// Dropped counts frames skipped under PolicyDrop, summed over
	// subscribers; Disconnected counts PolicyDisconnect evictions.
	Dropped      int64
	Disconnected int64
	// Done reports whether the run has finished; Elapsed is the run's wall
	// time so far (or final); FlowsPerSec is Emitted/Elapsed.
	Done        bool
	Elapsed     time.Duration
	FlowsPerSec float64
}

// Stats snapshots the run counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Flows:            len(s.flows),
		Emitted:          s.emitted.Load(),
		Subscribers:      s.Subscribers(),
		SubscribersTotal: s.subsTotal.Load(),
		Dropped:          s.dropped.Load(),
		Disconnected:     s.disconnected.Load(),
		Done:             s.Done(),
	}
	if start := s.startWall.Load(); start != 0 {
		end := s.endWall.Load()
		if end == 0 {
			end = time.Now().UnixNano()
		}
		st.Elapsed = time.Duration(end - start)
		if st.Elapsed > 0 {
			st.FlowsPerSec = float64(st.Emitted) / st.Elapsed.Seconds()
		}
	}
	return st
}
