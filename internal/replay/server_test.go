package replay

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"csb/internal/netflow"
)

// collectStream dials addr and consumes the whole stream, concatenating the
// raw flow payloads.
type streamResult struct {
	payload []byte
	stats   ConsumeStats
	err     error
}

func collectStream(t *testing.T, addr string) streamResult {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return streamResult{err: err}
	}
	defer conn.Close()
	var buf bytes.Buffer
	st, err := Consume(conn, func(_ uint64, _ netflow.Flow, raw []byte) error {
		buf.Write(raw)
		return nil
	})
	return streamResult{payload: buf.Bytes(), stats: st, err: err}
}

// serveFlows starts a server on loopback and returns it with its address.
func serveFlows(t *testing.T, flows []netflow.Flow, opts Options) (*Server, string) {
	t.Helper()
	s, err := NewServer(flows, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

// TestReplayByteIdentityAcrossSubscribers is the core acceptance check: at
// speed 0 under the default block policy, every subscriber's concatenated
// payloads are byte-identical to the source artifact's flow section, for
// several subscriber counts.
func TestReplayByteIdentityAcrossSubscribers(t *testing.T) {
	flows := testFlows(t, 30, 1200, 11)
	want := EncodeFlows(flows)
	var sha [32]byte
	sha[0], sha[31] = 0xab, 0xcd
	for _, n := range []int{1, 4, 8} {
		s, addr := serveFlows(t, flows, Options{Speed: 0, Policy: PolicyBlock, ArtifactSHA: sha})
		results := make([]streamResult, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = collectStream(t, addr)
			}(i)
		}
		if err := s.AwaitSubscribers(n, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		for i, r := range results {
			if r.err != nil {
				t.Fatalf("n=%d subscriber %d: %v", n, i, r.err)
			}
			if !r.stats.Clean || r.stats.Gaps != 0 {
				t.Fatalf("n=%d subscriber %d stats: %+v", n, i, r.stats)
			}
			if r.stats.Header.ArtifactSHA != sha || r.stats.Header.Flows != uint64(len(flows)) {
				t.Fatalf("n=%d subscriber %d header: %+v", n, i, r.stats.Header)
			}
			if !bytes.Equal(r.payload, want) {
				t.Fatalf("n=%d subscriber %d: payload differs from artifact flow section", n, i)
			}
		}
		st := s.Stats()
		if st.Emitted != int64(len(flows)) || st.Dropped != 0 || st.Disconnected != 0 {
			t.Fatalf("n=%d server stats: %+v", n, st)
		}
		s.Close()
	}
}

// stalledSubscriber attaches a pipe-backed subscriber that reads the stream
// header and then never reads again, deterministically filling its queue.
func stalledSubscriber(t *testing.T, s *Server) net.Conn {
	t.Helper()
	server, client := net.Pipe()
	s.Attach(server)
	var hdr [HeaderLen]byte
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := readFull(client, hdr[:]); err != nil {
		t.Fatalf("stalled subscriber header: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func readFull(c net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := c.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestReplaySoakStalledSubscriberDisconnect is the soak scenario: 8 healthy
// subscribers plus one deliberately stalled one under the disconnect policy.
// The stalled subscriber is evicted, the run completes without it, and every
// healthy subscriber's bytes match the on-disk artifact's flow section.
func TestReplaySoakStalledSubscriberDisconnect(t *testing.T) {
	flows := testFlows(t, 30, 1200, 12)

	// The on-disk artifact whose flow section is the identity reference.
	path := filepath.Join(t.TempDir(), "soak.csbf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFlowFile(f, flows); err != nil {
		t.Fatal(err)
	}
	f.Close()
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := disk[FlowFileHeaderLen:]

	// Rate-limit emission so healthy TCP subscribers trivially keep up
	// while the stalled pipe subscriber overflows its queue immediately.
	s, addr := serveFlows(t, flows, Options{
		Rate: 2000, Burst: 16, Policy: PolicyDisconnect, QueueLen: 64,
	})
	const healthy = 8
	results := make([]streamResult, healthy)
	var wg sync.WaitGroup
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = collectStream(t, addr)
		}(i)
	}
	if err := s.AwaitSubscribers(healthy, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	stalled := stalledSubscriber(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// The run must finish despite the stalled subscriber: a watchdog far
	// looser than the expected runtime but far tighter than "hangs".
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run stalled: lag policy failed to isolate the slow subscriber")
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil || !r.stats.Clean || r.stats.Gaps != 0 {
			t.Fatalf("healthy subscriber %d: err=%v stats=%+v", i, r.err, r.stats)
		}
		if !bytes.Equal(r.payload, want) {
			t.Fatalf("healthy subscriber %d: bytes differ from on-disk flow section", i)
		}
	}
	st := s.Stats()
	if st.Disconnected == 0 {
		t.Fatalf("stalled subscriber not disconnected: %+v", st)
	}
	if st.Emitted != int64(len(flows)) {
		t.Fatalf("emitted %d of %d flows", st.Emitted, len(flows))
	}
	// The evicted connection is actually dead: reads now fail.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1<<16)
	for {
		if _, err := stalled.Read(buf); err != nil {
			break
		}
	}
}

// TestReplayStalledSubscriberDrop: same soak shape under the drop policy —
// the laggard stays connected but loses frames (counted), healthy
// subscribers stay byte-perfect.
func TestReplayStalledSubscriberDrop(t *testing.T) {
	flows := testFlows(t, 30, 1200, 13)
	want := EncodeFlows(flows)
	s, addr := serveFlows(t, flows, Options{
		Rate: 2000, Burst: 16, Policy: PolicyDrop, QueueLen: 64,
	})
	const healthy = 4
	results := make([]streamResult, healthy)
	var wg sync.WaitGroup
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = collectStream(t, addr)
		}(i)
	}
	if err := s.AwaitSubscribers(healthy, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	stalledSubscriber(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("run stalled under drop policy")
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil || !r.stats.Clean || r.stats.Gaps != 0 || !bytes.Equal(r.payload, want) {
			t.Fatalf("healthy subscriber %d: err=%v stats=%+v", i, r.err, r.stats)
		}
	}
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatalf("no drops recorded for the stalled subscriber: %+v", st)
	}
	if st.Disconnected != 0 {
		t.Fatalf("drop policy disconnected someone: %+v", st)
	}
}

// TestReplayLateSubscriberJoinsMidRun: a subscriber connecting after the run
// started receives a suffix of the stream starting at the then-current
// sequence, ending cleanly.
func TestReplayLateSubscriberJoinsMidRun(t *testing.T) {
	flows := testFlows(t, 30, 1200, 14)
	s, addr := serveFlows(t, flows, Options{Rate: 1500, Burst: 1, QueueLen: 64, Policy: PolicyBlock})
	early := make(chan streamResult, 1)
	go func() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			early <- streamResult{err: err}
			return
		}
		defer conn.Close()
		st, err := Consume(conn, nil)
		early <- streamResult{stats: st, err: err}
	}()
	if err := s.AwaitSubscribers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Join once a meaningful prefix has been emitted.
	for s.Stats().Emitted < int64(len(flows)/4) {
		time.Sleep(time.Millisecond)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var firstSeq uint64
	var got uint64
	st, err := Consume(conn, func(seq uint64, _ netflow.Flow, _ []byte) error {
		if got == 0 {
			firstSeq = seq
		}
		got++
		return nil
	})
	if err != nil || !st.Clean {
		t.Fatalf("late subscriber: err=%v stats=%+v", err, st)
	}
	if got > 0 && firstSeq == 0 {
		t.Fatal("late subscriber saw the stream from the beginning")
	}
	if firstSeq+got != uint64(len(flows)) {
		t.Fatalf("late subscriber: first=%d received=%d flows=%d", firstSeq, got, len(flows))
	}
	r := <-early
	if r.err != nil || !r.stats.Clean || r.stats.Received != uint64(len(flows)) {
		t.Fatalf("early subscriber: err=%v stats=%+v", r.err, r.stats)
	}
}

// TestReplaySubscriberAfterRunEnds gets an immediate clean end frame.
func TestReplaySubscriberAfterRunEnds(t *testing.T) {
	flows := testFlows(t, 20, 300, 15)
	s, addr := serveFlows(t, flows, Options{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	r := collectStream(t, addr)
	if r.err != nil || !r.stats.Clean || r.stats.Received != 0 {
		t.Fatalf("post-run subscriber: err=%v stats=%+v", r.err, r.stats)
	}
}

func TestReplayRejectsUnsortedFlows(t *testing.T) {
	flows := []netflow.Flow{{StartMicros: 10}, {StartMicros: 5}}
	if _, err := NewServer(flows, Options{}); err == nil {
		t.Fatal("unsorted dataset accepted")
	}
}

// TestReplayCloseMidRun aborts a paced run promptly and tears everything
// down without deadlock.
func TestReplayCloseMidRun(t *testing.T) {
	flows := testFlows(t, 30, 1200, 16)
	s, addr := serveFlows(t, flows, Options{Rate: 200, Burst: 1}) // slow run
	resCh := make(chan streamResult, 1)
	go func() { resCh <- collectStream(t, addr) }()
	if err := s.AwaitSubscribers(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for s.Stats().Emitted < 10 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	select {
	case r := <-resCh:
		if r.err == nil && r.stats.Received == uint64(len(flows)) {
			t.Fatal("subscriber received the whole run after an early Close")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("subscriber hung after Close")
	}
	if !s.Done() {
		t.Fatal("server not done after Close")
	}
}
