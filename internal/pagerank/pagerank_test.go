package pagerank

import (
	"math"
	"math/rand/v2"
	"testing"

	"csb/internal/cluster"
	"csb/internal/graph"
)

func ranksOf(t *testing.T, g *graph.Graph, opt Options) []float64 {
	t.Helper()
	res, err := Compute(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res.Ranks
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestEmptyGraphError(t *testing.T) {
	if _, err := Compute(graph.New(0), Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBadDamping(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	for _, d := range []float64{-0.1, 1, 1.5} {
		if _, err := Compute(g, Options{Damping: d}); err == nil {
			t.Errorf("damping %g accepted", d)
		}
	}
}

func TestCycleUniform(t *testing.T) {
	// A directed cycle is perfectly symmetric: ranks must be uniform.
	const n = 10
	g := graph.New(n)
	for i := int64(0); i < n; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n)})
	}
	r := ranksOf(t, g, Options{})
	for v, rv := range r {
		if math.Abs(rv-0.1) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want 0.1", v, rv)
		}
	}
}

func TestSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	g := graph.New(50)
	for i := 0; i < 300; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(50)), Dst: graph.VertexID(rng.Int64N(50))})
	}
	r := ranksOf(t, g, Options{})
	if s := sum(r); math.Abs(s-1) > 1e-9 {
		t.Fatalf("ranks sum to %g, want 1", s)
	}
}

func TestStarCenterDominates(t *testing.T) {
	// Every leaf points at the hub: the hub must hold the highest rank.
	const n = 20
	g := graph.New(n)
	for i := int64(1); i < n; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	r := ranksOf(t, g, Options{})
	for v := 1; v < n; v++ {
		if r[0] <= r[v] {
			t.Fatalf("hub rank %g not above leaf %d rank %g", r[0], v, r[v])
		}
	}
}

func TestKnownTwoNodeValue(t *testing.T) {
	// 0 -> 1 with damping 0.85:
	// r0 = 0.15/2 + 0.85*dangling(=r1)/2 ; r1 = r0's push + base.
	// Solve analytically via iteration to fixed point and compare.
	g := graph.New(2)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	r := ranksOf(t, g, Options{Tol: 1e-14, MaxIter: 500})
	// Fixed point equations: r0 = 0.075 + 0.425*r1 ; r1 = 0.075 + 0.425*r1 + 0.85*r0.
	r0 := r[0]
	r1 := r[1]
	if math.Abs(r0-(0.075+0.425*r1)) > 1e-9 {
		t.Fatalf("r0 equation violated: r0=%g r1=%g", r0, r1)
	}
	if math.Abs(r1-(0.075+0.425*r1+0.85*r0)) > 1e-9 {
		t.Fatalf("r1 equation violated: r0=%g r1=%g", r0, r1)
	}
	if r1 <= r0 {
		t.Fatal("sink not ranked above source")
	}
}

func TestDanglingMassConserved(t *testing.T) {
	// Graph with a pure sink: ranks still sum to 1.
	g := graph.New(3)
	g.AddEdge(graph.Edge{Src: 0, Dst: 2})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	r := ranksOf(t, g, Options{})
	if s := sum(r); math.Abs(s-1) > 1e-9 {
		t.Fatalf("sum = %g with dangling sink", s)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g := graph.New(200)
	for i := 0; i < 2000; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(200)), Dst: graph.VertexID(rng.Int64N(200))})
	}
	serial := ranksOf(t, g, Options{Parallelism: 1})
	parallel := ranksOf(t, g, Options{Parallelism: 8})
	for v := range serial {
		if math.Abs(serial[v]-parallel[v]) > 1e-12 {
			t.Fatalf("rank[%d]: serial %g vs parallel %g", v, serial[v], parallel[v])
		}
	}
}

func TestConvergenceReported(t *testing.T) {
	g := graph.New(4)
	for i := int64(0); i < 4; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % 4)})
	}
	res, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("cycle did not converge")
	}
	if res.Iterations <= 0 || res.Iterations > 100 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// With MaxIter 1 the loop cannot converge on an asymmetric graph.
	g2 := graph.New(3)
	g2.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g2.AddEdge(graph.Edge{Src: 1, Dst: 2})
	res2, err := Compute(g2, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Converged {
		t.Fatal("claimed convergence after 1 iteration")
	}
}

func TestMultiEdgeWeighting(t *testing.T) {
	// 0 has 3 edges to 1 and 1 edge to 2: vertex 1 must receive three times
	// vertex 2's share from 0.
	g := graph.New(3)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 0, Dst: 2})
	r := ranksOf(t, g, Options{})
	if r[1] <= r[2] {
		t.Fatalf("multi-edge target not favoured: r1=%g r2=%g", r[1], r[2])
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	g := graph.New(100)
	for i := 0; i < 800; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(rng.Int64N(100)), Dst: graph.VertexID(rng.Int64N(100))})
	}
	local, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.MustNew(cluster.Config{Nodes: 3, CoresPerNode: 2, DefaultPartitions: 6})
	dist, err := ComputeDistributed(c, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Converged {
		t.Fatal("distributed PageRank did not converge")
	}
	for v := range local.Ranks {
		if math.Abs(local.Ranks[v]-dist.Ranks[v]) > 1e-9 {
			t.Fatalf("rank[%d]: local %g vs distributed %g", v, local.Ranks[v], dist.Ranks[v])
		}
	}
	if c.Metrics().Stages == 0 {
		t.Fatal("cluster not exercised")
	}
}

func TestDistributedValidation(t *testing.T) {
	c := cluster.Local(1)
	if _, err := ComputeDistributed(c, graph.New(0), Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	g := graph.New(2)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	if _, err := ComputeDistributed(c, g, Options{Damping: 2}); err == nil {
		t.Error("bad damping accepted")
	}
}
