package pagerank

import (
	"errors"
	"fmt"

	"csb/internal/cluster"
	"csb/internal/graph"
)

// ComputeDistributed runs PageRank as a Map-Reduce pipeline on the cluster
// substrate, the formulation a GraphX deployment uses when the graph exceeds
// one host (the paper's Section I motivation: trace graphs "can reach sizes
// that make them difficult, and even impossible to be analyzed with a single
// host"). Each iteration FlatMaps rank contributions along the partitioned
// edge list and ReduceByKey-sums them per target vertex.
//
// Results match Compute to floating-point reordering (contributions sum in
// shuffle order); tests bound the difference at 1e-9.
func ComputeDistributed(c *cluster.Cluster, g *graph.Graph, opt Options) (*Result, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	opt.fill()
	if opt.Damping <= 0 || opt.Damping >= 1 {
		return nil, errors.New("pagerank: damping must be in (0,1)")
	}
	n := g.NumVertices()
	outDeg := g.OutDegrees()
	edges := cluster.ParallelizeEdges(c, g.Cols(), 0)

	inv := 1 / float64(n)
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = inv
	}

	type kv = cluster.KV[graph.VertexID, float64]
	shard := func(v graph.VertexID) uint64 {
		z := uint64(v) * 0x9e3779b97f4a7c15
		return z ^ (z >> 29)
	}

	defer c.Scope("pagerank")()
	res := &Result{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		endIter := c.Scope(fmt.Sprintf("iter%d", iter+1))
		var dangling float64
		for v := int64(0); v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opt.Damping)*inv + opt.Damping*dangling*inv

		// Map: each edge carries rank[src]/outDeg[src] to its target.
		contribs := cluster.Map(edges, func(e graph.Edge) kv {
			return kv{Key: e.Dst, Val: rank[e.Src] / float64(outDeg[e.Src])}
		})
		// Reduce: sum contributions per target.
		sums := cluster.ReduceByKey(contribs, shard, func(a, b float64) float64 { return a + b })

		next := make([]float64, n)
		for i := range next {
			next[i] = base
		}
		for _, part := range collectParts(sums) {
			for _, kv := range part {
				next[kv.Key] += opt.Damping * kv.Val
			}
		}
		var diff float64
		for v := int64(0); v < n; v++ {
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		rank = next
		res.Iterations = iter + 1
		endIter()
		if diff < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = rank
	return res, nil
}

// collectParts exposes a dataset's partitions without concatenating them.
func collectParts[T any](d *cluster.Dataset[T]) [][]T {
	out := make([][]T, d.NumPartitions())
	for i := range out {
		out[i] = d.Partition(i)
	}
	return out
}
