// Package pagerank implements parallel PageRank by power iteration, the
// second structural metric of the paper's veracity evaluation (Figure 7).
package pagerank

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"csb/internal/graph"
)

// Options configures Compute. The zero value selects the standard defaults.
type Options struct {
	// Damping is the damping factor d (default 0.85).
	Damping float64
	// MaxIter bounds the number of power iterations (default 100).
	MaxIter int
	// Tol is the L1 convergence threshold (default 1e-10).
	Tol float64
	// Parallelism is the number of worker goroutines (default GOMAXPROCS).
	Parallelism int
}

func (o *Options) fill() {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Result carries the PageRank vector and convergence information.
type Result struct {
	Ranks      []float64 // sums to 1
	Iterations int
	Converged  bool
}

// Compute runs PageRank on g. Multi-edges contribute proportionally (an
// originator with three flows to the same responder pushes rank three ways
// along them, matching GraphX behaviour on multigraphs). Dangling mass is
// redistributed uniformly.
func Compute(g *graph.Graph, opt Options) (*Result, error) {
	if g.NumVertices() == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	opt.fill()
	if opt.Damping <= 0 || opt.Damping >= 1 {
		return nil, errors.New("pagerank: damping must be in (0,1)")
	}
	n := g.NumVertices()
	rev := graph.BuildReverseCSR(g)
	outDeg := g.OutDegrees()

	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}

	res := &Result{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Dangling vertices donate their mass uniformly.
		var dangling float64
		for v := int64(0); v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opt.Damping)*inv + opt.Damping*dangling*inv

		diff := parallelSweep(n, opt.Parallelism, func(lo, hi int64) float64 {
			var localDiff float64
			for v := lo; v < hi; v++ {
				var sum float64
				for _, u := range rev.Neighbors(graph.VertexID(v)) {
					sum += rank[u] / float64(outDeg[u])
				}
				nv := base + opt.Damping*sum
				localDiff += math.Abs(nv - rank[v])
				next[v] = nv
			}
			return localDiff
		})
		rank, next = next, rank
		res.Iterations = iter + 1
		if diff < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = rank
	return res, nil
}

// parallelSweep splits [0,n) into chunks, runs body on workers, and returns
// the summed per-chunk results.
func parallelSweep(n int64, workers int, body func(lo, hi int64) float64) float64 {
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > n {
		workers = int(n)
	}
	chunk := (n + int64(workers) - 1) / int64(workers)
	results := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			results[w] = body(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, r := range results {
		total += r
	}
	return total
}
