package cluster

import (
	"fmt"
	"testing"
)

// Property-based equivalence tests: the parallel shuffle operators must agree
// with naive single-threaded references on randomized inputs, and their exact
// output (ordering included) must be invariant across worker counts and fault
// injection. Together with the golden digests in internal/core these pin the
// PR 1 determinism contract against the pooled shuffle implementation.

// propRNG is a SplitMix64 generator for reproducible randomized inputs.
type propRNG uint64

func (r *propRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// propConfigs enumerates the execution matrix of the equivalence tests:
// MaxParallel {1, 4, 16} crossed with fault rate {0, 0.2}.
func propConfigs(caseSeed uint64) []struct {
	name  string
	par   int
	rate  float64
	build func() *Cluster
} {
	var out []struct {
		name  string
		par   int
		rate  float64
		build func() *Cluster
	}
	for _, par := range []int{1, 4, 16} {
		for _, rate := range []float64{0, 0.2} {
			par, rate := par, rate
			out = append(out, struct {
				name  string
				par   int
				rate  float64
				build func() *Cluster
			}{
				name: fmt.Sprintf("par=%d,faults=%g", par, rate),
				par:  par, rate: rate,
				build: func() *Cluster {
					cfg := Config{
						Nodes: 4, CoresPerNode: 4,
						DefaultPartitions: 8, MaxParallel: par,
					}
					if rate > 0 {
						plan := NewFaultPlan(caseSeed, rate)
						plan.MaxFaultyAttempts = 3
						cfg.Faults = plan
						cfg.MaxTaskRetries = 8
						cfg.Speculation = true
					}
					return MustNew(cfg)
				},
			})
		}
	}
	return out
}

func mixKey(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestReduceByKeyMatchesReference(t *testing.T) {
	for round := 0; round < 5; round++ {
		rng := propRNG(1000 + round)
		n := int(rng.next()%5000) + 1
		keySpace := int64(rng.next()%500) + 1
		kvs := make([]KV[int64, int64], n)
		// Naive single-threaded reference: plain map aggregation.
		want := map[int64]int64{}
		for i := range kvs {
			k := int64(rng.next() % uint64(keySpace))
			v := int64(rng.next() % 1000)
			kvs[i] = KV[int64, int64]{Key: k, Val: v}
			want[k] += v
		}

		var baseline []KV[int64, int64]
		for _, pc := range propConfigs(uint64(2000 + round)) {
			c := pc.build()
			ds := Parallelize(c, kvs, 8)
			got := Collect(ReduceByKey(ds, mixKey, func(a, b int64) int64 { return a + b }))
			if err := c.Err(); err != nil {
				t.Fatalf("round %d %s: cluster error: %v", round, pc.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d %s: %d keys, want %d", round, pc.name, len(got), len(want))
			}
			for _, kv := range got {
				if kv.Val != want[kv.Key] {
					t.Fatalf("round %d %s: key %d = %d, want %d", round, pc.name, kv.Key, kv.Val, want[kv.Key])
				}
			}
			// Exact output (ordering included) must not depend on MaxParallel
			// or fault injection.
			if baseline == nil {
				baseline = got
				continue
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("round %d %s: output[%d] = %+v differs from baseline %+v",
						round, pc.name, i, got[i], baseline[i])
				}
			}
		}
	}
}

func TestDistinctMatchesReference(t *testing.T) {
	for round := 0; round < 5; round++ {
		rng := propRNG(3000 + round)
		n := int(rng.next()%5000) + 1
		keySpace := int64(rng.next()%800) + 1
		data := make([]int64, n)
		// Naive reference: the set of unique values.
		want := map[int64]struct{}{}
		for i := range data {
			data[i] = int64(rng.next() % uint64(keySpace))
			want[data[i]] = struct{}{}
		}

		var baseline []int64
		for _, pc := range propConfigs(uint64(4000 + round)) {
			c := pc.build()
			ds := Parallelize(c, data, 8)
			got := Collect(Distinct(ds, func(v int64) int64 { return v }, mixKey))
			if err := c.Err(); err != nil {
				t.Fatalf("round %d %s: cluster error: %v", round, pc.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d %s: %d distinct, want %d", round, pc.name, len(got), len(want))
			}
			seen := map[int64]struct{}{}
			for _, v := range got {
				if _, ok := want[v]; !ok {
					t.Fatalf("round %d %s: value %d not in input", round, pc.name, v)
				}
				if _, dup := seen[v]; dup {
					t.Fatalf("round %d %s: value %d emitted twice", round, pc.name, v)
				}
				seen[v] = struct{}{}
			}
			if baseline == nil {
				baseline = got
				continue
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("round %d %s: output[%d] = %d differs from baseline %d",
						round, pc.name, i, got[i], baseline[i])
				}
			}
		}
	}
}

func TestSampleMatchesReference(t *testing.T) {
	for round := 0; round < 5; round++ {
		rng := propRNG(5000 + round)
		n := int(rng.next()%5000) + 1
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(rng.next())
		}
		sampleSeed := rng.next()

		for _, fraction := range []float64{0, 0.3, 1} {
			var baseline []int64
			for _, pc := range propConfigs(uint64(6000 + round)) {
				c := pc.build()
				ds := Parallelize(c, data, 8)
				got := Collect(Sample(ds, fraction, sampleSeed))
				if err := c.Err(); err != nil {
					t.Fatalf("round %d f=%g %s: cluster error: %v", round, fraction, pc.name, err)
				}
				switch fraction {
				case 0:
					if len(got) != 0 {
						t.Fatalf("round %d %s: fraction 0 kept %d elements", round, pc.name, len(got))
					}
				case 1:
					if len(got) != n {
						t.Fatalf("round %d %s: fraction 1 kept %d of %d", round, pc.name, len(got), n)
					}
				default:
					// Naive reference property: the sample is a subsequence of
					// the input (Parallelize splits contiguously and Sample
					// preserves order within partitions).
					j := 0
					for _, v := range data {
						if j < len(got) && got[j] == v {
							j++
						}
					}
					if j != len(got) {
						t.Fatalf("round %d %s: sample is not a subsequence of the input (matched %d of %d)",
							round, pc.name, j, len(got))
					}
				}
				if baseline == nil {
					baseline = got
					continue
				}
				if len(got) != len(baseline) {
					t.Fatalf("round %d f=%g %s: %d sampled, baseline %d", round, fraction, pc.name, len(got), len(baseline))
				}
				for i := range got {
					if got[i] != baseline[i] {
						t.Fatalf("round %d f=%g %s: output[%d] differs from baseline", round, fraction, pc.name, i)
					}
				}
			}
		}
	}
}
