package cluster

import "csb/internal/graph"

// This file is the columnar bridge between the graph's struct-of-arrays edge
// store (graph.EdgeBatch) and the row-structured Dataset engine. Shuffle
// operators move individual elements and stay generic; the pipeline endpoints
// — loading a graph's edges into a dataset and draining a dataset back into a
// graph — stream batch columns instead of materializing one monolithic
// []Edge on each side.

// ParallelizeEdges splits the edges of a columnar batch into balanced
// partitions, materializing rows once per partition. The partition boundaries
// are exactly Parallelize's (base = len/p with the remainder spread over the
// first len%p partitions), so downstream stages see byte-identical input to
// the former Parallelize(c, b.Edges(), partitions) — without the intermediate
// full-graph []Edge copy.
func ParallelizeEdges(c *Cluster, b *graph.EdgeBatch, partitions int) *Dataset[graph.Edge] {
	p := c.defaultPartitions(partitions)
	n := b.Len()
	if p > n {
		p = n
	}
	if n == 0 {
		return newDataset(c, make([][]graph.Edge, 0))
	}
	parts := make([][]graph.Edge, p)
	base, rem := n/p, n%p
	lo := 0
	for i := range parts {
		sz := base
		if i < rem {
			sz++
		}
		part := make([]graph.Edge, sz)
		for j := range part {
			part[j] = b.Edge(lo + j)
		}
		parts[i] = part
		lo += sz
	}
	return newDataset(c, parts)
}

// AppendTo drains an edge dataset into g partition by partition, in Collect
// order, validating each partition once. It replaces the Collect-then-AddEdges
// pattern: edges flow straight from partition storage into the graph's
// columns with no intermediate full-size []Edge.
func AppendTo(in *Dataset[graph.Edge], g *graph.Graph) error {
	for i := range in.parts {
		if err := g.AddEdges(in.parts[i]); err != nil {
			return err
		}
	}
	return nil
}
