package cluster

// Hot-path micro-benchmarks for the engine operations the generators spend
// their time in. These are the per-op counterpart of the end-to-end suite in
// internal/bench/hotpath.go: run them with
//
//	go test -bench=. -benchmem ./internal/cluster/
//
// and compare B/op and allocs/op across changes. BENCH_PR5.json (written by
// csbbench -json) records the end-to-end trajectory; these isolate the
// shuffle and element-wise paths.

import (
	"testing"
)

// benchShard is the shard function used by every shuffle benchmark: a
// SplitMix64 finalizer, the same mixing the generators use for real keys.
func benchShard(k int64) uint64 {
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// benchKVs builds n key-value pairs over `keys` distinct keys in a fixed
// pseudo-random order, so map-side combining has real work to do.
func benchKVs(n, keys int) []KV[int64, int64] {
	out := make([]KV[int64, int64], n)
	rng := DeriveRNG(42, 0)
	for i := range out {
		out[i] = KV[int64, int64]{Key: rng.Int64N(int64(keys)), Val: 1}
	}
	return out
}

func BenchmarkReduceByKey(b *testing.B) {
	data := benchKVs(200_000, 10_000)
	c := Local(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := Parallelize(c, data, 16)
		out := ReduceByKey(in, func(k int64) uint64 { return benchShard(k) },
			func(a, bv int64) int64 { return a + bv })
		if out.Count() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkDistinct(b *testing.B) {
	rng := DeriveRNG(43, 0)
	data := make([]int64, 200_000)
	for i := range data {
		data[i] = rng.Int64N(40_000)
	}
	c := Local(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := Parallelize(c, data, 16)
		out := Distinct(in, func(v int64) int64 { return v }, benchShard)
		if out.Count() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkMapFilter(b *testing.B) {
	rng := DeriveRNG(44, 0)
	data := make([]int64, 200_000)
	for i := range data {
		data[i] = rng.Int64N(1 << 20)
	}
	c := Local(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := Parallelize(c, data, 16)
		m := Map(in, func(v int64) int64 { return v * 3 })
		f := Filter(m, func(v int64) bool { return v&1 == 0 })
		if f.Count() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFlatMap(b *testing.B) {
	rng := DeriveRNG(45, 0)
	data := make([]int64, 50_000)
	for i := range data {
		data[i] = rng.Int64N(1 << 20)
	}
	c := Local(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := Parallelize(c, data, 16)
		fm := FlatMap(in, func(v int64) []int64 { return []int64{v, v + 1} })
		if fm.Count() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkStageDispatch measures the fixed cost of scheduling a stage: many
// tiny tasks whose closure does almost nothing, so the goroutine/queue
// machinery dominates.
func BenchmarkStageDispatch(b *testing.B) {
	data := make([]int64, 256)
	for i := range data {
		data[i] = int64(i)
	}
	c := Local(4)
	in := Parallelize(c, data, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Map(in, func(v int64) int64 { return v + 1 })
		if out.NumPartitions() != 64 {
			b.Fatal("bad partition count")
		}
	}
}
