package cluster

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func testCluster() *Cluster {
	return MustNew(Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8})
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePreservesAllElements(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(100), 7)
	if d.NumPartitions() != 7 {
		t.Fatalf("partitions = %d, want 7", d.NumPartitions())
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d, want 100", d.Count())
	}
	got := Collect(d)
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	c := testCluster()
	if d := Parallelize(c, []int{}, 4); d.Count() != 0 || d.NumPartitions() != 0 {
		t.Fatalf("empty parallelize: %d/%d", d.Count(), d.NumPartitions())
	}
	// More partitions than elements: clamp.
	d := Parallelize(c, seq(3), 10)
	if d.NumPartitions() != 3 {
		t.Fatalf("partitions = %d, want clamped to 3", d.NumPartitions())
	}
	// Default partitions.
	if d := Parallelize(c, seq(100), 0); d.NumPartitions() != 8 {
		t.Fatalf("default partitions = %d, want 8", d.NumPartitions())
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(10), 3)
	doubled := Collect(Map(d, func(x int) int { return 2 * x }))
	sort.Ints(doubled)
	for i, v := range doubled {
		if v != 2*i {
			t.Fatalf("Map wrong at %d: %d", i, v)
		}
	}
	even := Filter(d, func(x int) bool { return x%2 == 0 })
	if even.Count() != 5 {
		t.Fatalf("Filter count = %d, want 5", even.Count())
	}
	fm := FlatMap(d, func(x int) []int { return []int{x, x} })
	if fm.Count() != 20 {
		t.Fatalf("FlatMap count = %d, want 20", fm.Count())
	}
}

func TestMapPartitionsSeesEveryPartitionOnce(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(20), 4)
	counts := Collect(MapPartitions(d, func(part int, xs []int) []int {
		return []int{len(xs)}
	}))
	var total int
	for _, n := range counts {
		total += n
	}
	if len(counts) != 4 || total != 20 {
		t.Fatalf("MapPartitions counts = %v", counts)
	}
}

func TestSampleFractionAndDeterminism(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(10000), 8)
	s1 := Sample(d, 0.3, 99)
	s2 := Sample(d, 0.3, 99)
	if s1.Count() != s2.Count() {
		t.Fatalf("sample not deterministic: %d vs %d", s1.Count(), s2.Count())
	}
	n := s1.Count()
	if n < 2500 || n > 3500 {
		t.Fatalf("sample fraction off: %d of 10000 at 0.3", n)
	}
	if Sample(d, 0, 1).Count() != 0 {
		t.Fatal("fraction 0 kept elements")
	}
	if Sample(d, 1, 1).Count() != 10000 {
		t.Fatal("fraction 1 dropped elements")
	}
	if Sample(d, -0.5, 1).Count() != 0 {
		t.Fatal("negative fraction kept elements")
	}
}

func TestDistinct(t *testing.T) {
	c := testCluster()
	data := append(seq(50), seq(50)...) // every value twice
	d := Parallelize(c, data, 6)
	u := Distinct(d, func(x int) int { return x }, func(k int) uint64 { return uint64(k) * 0x9e3779b9 })
	if u.Count() != 50 {
		t.Fatalf("Distinct count = %d, want 50", u.Count())
	}
	got := Collect(u)
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("Distinct lost/mangled values at %d: %d", i, v)
		}
	}
	// Distinct must charge serial time (the shuffle model).
	if c.Metrics().SerialTime <= 0 {
		t.Fatal("Distinct recorded no serial time")
	}
}

func TestReduce(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(101), 9)
	sum := Reduce(d, 0, func(a, b int) int { return a + b })
	if sum != 5050 {
		t.Fatalf("Reduce sum = %d, want 5050", sum)
	}
}

func TestUnionAndRepartition(t *testing.T) {
	c := testCluster()
	a := Parallelize(c, seq(10), 2)
	b := Parallelize(c, seq(5), 1)
	u := Union(a, b)
	if u.Count() != 15 || u.NumPartitions() != 3 {
		t.Fatalf("Union: %d elements %d partitions", u.Count(), u.NumPartitions())
	}
	r := Repartition(u, 5)
	if r.Count() != 15 || r.NumPartitions() != 5 {
		t.Fatalf("Repartition: %d elements %d partitions", r.Count(), r.NumPartitions())
	}
}

func TestGenerate(t *testing.T) {
	c := testCluster()
	d := Generate(c, 1000, 8, 42, func(rng *rand.Rand, emit func(int64), count int64) {
		for i := int64(0); i < count; i++ {
			emit(rng.Int64N(100))
		}
	})
	if d.Count() != 1000 {
		t.Fatalf("Generate count = %d, want 1000", d.Count())
	}
	// Deterministic under same seed.
	d2 := Generate(c, 1000, 8, 42, func(rng *rand.Rand, emit func(int64), count int64) {
		for i := int64(0); i < count; i++ {
			emit(rng.Int64N(100))
		}
	})
	a, b := Collect(d), Collect(d2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Generate not deterministic at %d", i)
		}
	}
	// Zero elements.
	z := Generate(c, 0, 4, 1, func(rng *rand.Rand, emit func(int64), count int64) {})
	if z.Count() != 0 {
		t.Fatal("Generate(0) nonzero")
	}
	// Fewer elements than partitions.
	f := Generate(c, 3, 16, 1, func(rng *rand.Rand, emit func(int64), count int64) {
		for i := int64(0); i < count; i++ {
			emit(int64(i))
		}
	})
	if f.Count() != 3 {
		t.Fatalf("Generate(3) count = %d", f.Count())
	}
}

func TestDeriveRNGDecorrelated(t *testing.T) {
	a := DeriveRNG(1, 0)
	b := DeriveRNG(1, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int64N(1000) == b.Int64N(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("streams correlated: %d/100 equal draws", same)
	}
}

// Property: Map then Collect is a permutation-preserving transformation of
// sequential map, and Filter(p) + Filter(!p) partition the dataset.
func TestDatasetAlgebra(t *testing.T) {
	f := func(raw []uint16, partsRaw uint8) bool {
		c := testCluster()
		data := make([]int, len(raw))
		for i, r := range raw {
			data[i] = int(r)
		}
		parts := int(partsRaw%16) + 1
		d := Parallelize(c, data, parts)
		pred := func(x int) bool { return x%3 == 0 }
		yes := Filter(d, pred).Count()
		no := Filter(d, func(x int) bool { return !pred(x) }).Count()
		return yes+no == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceBalancesWeights(t *testing.T) {
	c := testCluster()
	// Build a dataset with wildly unbalanced partitions via Union.
	big := Parallelize(c, seq(10000), 2) // two partitions of 5000
	small := Parallelize(c, seq(64), 32) // 32 partitions of 2
	u := Union(big, small)
	if u.NumPartitions() != 34 {
		t.Fatalf("union partitions = %d", u.NumPartitions())
	}
	co := Coalesce(u, 8)
	if co.NumPartitions() != 8 {
		t.Fatalf("coalesced partitions = %d, want 8", co.NumPartitions())
	}
	if co.Count() != u.Count() {
		t.Fatalf("coalesce lost elements: %d vs %d", co.Count(), u.Count())
	}
	// Balance: whole input partitions are indivisible, so the LPT bound is
	// max(largest input partition, ~4/3 optimal). No bin may exceed that.
	largestInput := 5000.0
	mean := float64(co.Count()) / 8
	bound := largestInput
	if 2*mean > bound {
		bound = 2 * mean
	}
	for i := 0; i < 8; i++ {
		if float64(len(co.Partition(i))) > bound {
			t.Fatalf("partition %d has %d elements (bound %.0f)", i, len(co.Partition(i)), bound)
		}
	}
	// The small partitions must spread over the remaining bins, not pile up.
	nonEmpty := 0
	for i := 0; i < 8; i++ {
		if len(co.Partition(i)) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 8 {
		t.Fatalf("only %d of 8 bins used", nonEmpty)
	}
	// Element multiset preserved.
	all := Collect(co)
	sort.Ints(all)
	want := append(seq(64), seq(10000)...)
	sort.Ints(want)
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("element %d = %d, want %d", i, all[i], want[i])
		}
	}
}

func TestCoalesceNoOpWhenSmall(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, seq(10), 4)
	if got := Coalesce(d, 8); got != d {
		t.Fatal("coalesce copied a small dataset")
	}
	if got := Coalesce(d, 0); got.NumPartitions() != 1 {
		t.Fatalf("coalesce to p<1 got %d partitions", got.NumPartitions())
	}
}

func TestCoalesceDeterministic(t *testing.T) {
	c := testCluster()
	d := Union(Parallelize(c, seq(100), 10), Parallelize(c, seq(50), 5))
	a := Collect(Coalesce(d, 3))
	b := Collect(Coalesce(d, 3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("coalesce order not deterministic")
		}
	}
}

func TestShuffleCoordCharged(t *testing.T) {
	c := MustNew(Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8})
	d := Parallelize(c, seq(1000), 8)
	Distinct(d, func(x int) int { return x }, func(k int) uint64 { return uint64(k) })
	m := c.Metrics()
	if m.SerialTime <= 0 {
		t.Fatal("no shuffle coordination charged")
	}
	// The charge scales with partitions: 8 * 300ns = 2400ns.
	if m.SerialTime != 8*300 {
		t.Fatalf("SerialTime = %v, want 2.4µs", m.SerialTime)
	}
}

func TestRecordStages(t *testing.T) {
	c := MustNew(Config{Nodes: 1, CoresPerNode: 2, DefaultPartitions: 4, RecordStages: true})
	d := Parallelize(c, seq(100), 4)
	Map(d, func(x int) int { return x + 1 })
	Distinct(d, func(x int) int { return x }, func(k int) uint64 { return uint64(k) })
	log := c.Metrics().StageLog
	if len(log) != 4 { // map + distinct phase1 + coord + phase2
		t.Fatalf("stage log has %d entries: %+v", len(log), log)
	}
	var serial int
	for _, s := range log {
		if s.Serial {
			serial++
		}
	}
	if serial != 1 {
		t.Fatalf("serial stages = %d, want 1 (shuffle coord)", serial)
	}
}

func TestReduceByKey(t *testing.T) {
	c := testCluster()
	var kvs []KV[string, int]
	for i := 0; i < 100; i++ {
		kvs = append(kvs, KV[string, int]{Key: []string{"a", "b", "c"}[i%3], Val: 1})
	}
	d := Parallelize(c, kvs, 7)
	sums := ReduceByKey(d, func(k string) uint64 { return uint64(k[0]) }, func(a, b int) int { return a + b })
	got := map[string]int{}
	for _, kv := range Collect(sums) {
		if _, dup := got[kv.Key]; dup {
			t.Fatalf("key %q appears in multiple shards", kv.Key)
		}
		got[kv.Key] = kv.Val
	}
	want := map[string]int{"a": 34, "b": 33, "c": 33}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("sum[%q] = %d, want %d", k, got[k], v)
		}
	}
	if c.Metrics().SerialTime <= 0 {
		t.Fatal("ReduceByKey charged no shuffle coordination")
	}
}

func TestReduceByKeyEmpty(t *testing.T) {
	c := testCluster()
	d := Parallelize(c, []KV[int, int]{}, 4)
	out := ReduceByKey(d, func(k int) uint64 { return uint64(k) }, func(a, b int) int { return a + b })
	if out.Count() != 0 {
		t.Fatal("empty reduce produced elements")
	}
}

// reduceByKeyFloatRun executes a float-summing shuffle pipeline and returns
// the collected output in emission order (not sorted — the order itself is
// part of the contract under test).
func reduceByKeyFloatRun(maxParallel int) []KV[int, float64] {
	c := MustNew(Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8, MaxParallel: maxParallel})
	d := Parallelize(c, seq(5000), 16)
	kvs := Map(d, func(x int) KV[int, float64] {
		// Values chosen so that summing in different orders gives different
		// floating-point results: rounding makes + non-associative here.
		return KV[int, float64]{Key: x % 97, Val: 1.0/float64(x+1) + float64(x)*1e-7}
	})
	sums := ReduceByKey(kvs, func(k int) uint64 {
		z := uint64(k) * 0x9e3779b97f4a7c15
		return z ^ (z >> 29)
	}, func(a, b float64) float64 { return a + b })
	return Collect(sums)
}

// Regression: ReduceByKey used to emit both shuffle phases in Go map
// iteration order, so repeated identical runs produced differently-ordered
// output and (for float combines) bitwise-different sums. Output order and
// combine application order are now first-occurrence order.
func TestReduceByKeyDeterministicAcrossRuns(t *testing.T) {
	first := reduceByKeyFloatRun(0)
	for run := 0; run < 5; run++ {
		got := reduceByKeyFloatRun(0)
		if len(got) != len(first) {
			t.Fatalf("run %d: %d pairs, want %d", run, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d: pair %d = %+v, want %+v (order or float sum drift)",
					run, i, got[i], first[i])
			}
		}
	}
}

// Determinism must not depend on how many goroutines execute the stages:
// partitioning is fixed by DefaultPartitions, so MaxParallel only changes
// scheduling, never data placement or order.
func TestReduceByKeyDeterministicAcrossParallelism(t *testing.T) {
	first := reduceByKeyFloatRun(1)
	for _, mp := range []int{2, 4, 16} {
		got := reduceByKeyFloatRun(mp)
		if len(got) != len(first) {
			t.Fatalf("MaxParallel=%d: %d pairs, want %d", mp, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("MaxParallel=%d: pair %d = %+v, want %+v", mp, i, got[i], first[i])
			}
		}
	}
}

// Distinct's phases emit in slice order (maps are membership-only), so its
// output must likewise be byte-identical across runs and parallelism.
func TestDistinctDeterministicAcrossRuns(t *testing.T) {
	run := func(maxParallel int) []int {
		c := MustNew(Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8, MaxParallel: maxParallel})
		d := Parallelize(c, seq(3000), 16)
		d = Map(d, func(x int) int { return x % 271 })
		return Collect(Distinct(d, func(x int) int { return x }, func(k int) uint64 {
			z := uint64(k) * 0xbf58476d1ce4e5b9
			return z ^ (z >> 27)
		}))
	}
	first := run(0)
	for _, mp := range []int{0, 1, 4} {
		got := run(mp)
		if len(got) != len(first) {
			t.Fatalf("MaxParallel=%d: %d elems, want %d", mp, len(got), len(first))
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("MaxParallel=%d: elem %d = %d, want %d", mp, i, got[i], first[i])
			}
		}
	}
}
