package cluster

import (
	"sort"
	"testing"
)

// Table-driven edge cases for the partition-count operators: p <= 0, p larger
// than the partition or element count, and empty datasets must all produce
// well-formed datasets (no panics, no empty stranded partitions from
// Repartition, every element preserved).
func TestRepartitionEdgeCases(t *testing.T) {
	c := Local(2)
	cases := []struct {
		name      string
		elems     int
		initParts int
		p         int
		wantParts int // -1: don't check exact count
	}{
		{"zero p uses default", 10, 2, 0, -1},
		{"negative p uses default", 10, 2, -3, -1},
		{"p of one", 10, 4, 1, 1},
		{"p above partition count", 10, 2, 5, 5},
		{"p above element count clamps", 3, 2, 10, 3},
		{"empty dataset", 0, 2, 4, 0},
		{"single element", 1, 1, 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := make([]int, tc.elems)
			for i := range data {
				data[i] = i
			}
			in := Parallelize(c, data, tc.initParts)
			out := Repartition(in, tc.p)
			if tc.wantParts >= 0 && out.NumPartitions() != tc.wantParts {
				t.Fatalf("partitions = %d, want %d", out.NumPartitions(), tc.wantParts)
			}
			got := Collect(out)
			if len(got) != tc.elems {
				t.Fatalf("collected %d elements, want %d", len(got), tc.elems)
			}
			// Repartition preserves element order exactly.
			for i, v := range got {
				if v != i {
					t.Fatalf("element %d = %d, order not preserved", i, v)
				}
			}
			// Balanced: partition sizes differ by at most one, none empty.
			minSz, maxSz := tc.elems, 0
			for i := 0; i < out.NumPartitions(); i++ {
				n := len(out.Partition(i))
				if n == 0 {
					t.Fatalf("partition %d is empty", i)
				}
				if n < minSz {
					minSz = n
				}
				if n > maxSz {
					maxSz = n
				}
			}
			if out.NumPartitions() > 0 && maxSz-minSz > 1 {
				t.Fatalf("unbalanced split: min %d max %d", minSz, maxSz)
			}
		})
	}
}

func TestCoalesceEdgeCases(t *testing.T) {
	c := Local(2)
	cases := []struct {
		name      string
		elems     int
		initParts int
		p         int
		wantParts int
	}{
		{"zero p clamps to one", 10, 4, 0, 1},
		{"negative p clamps to one", 10, 4, -2, 1},
		{"p above partition count is a no-op", 10, 2, 8, 2},
		{"p equal to partition count is a no-op", 10, 4, 4, 4},
		{"shrink", 20, 8, 3, 3},
		{"empty dataset", 0, 4, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := make([]int, tc.elems)
			for i := range data {
				data[i] = i
			}
			in := Parallelize(c, data, tc.initParts)
			out := Coalesce(in, tc.p)
			if out.NumPartitions() != tc.wantParts {
				t.Fatalf("partitions = %d, want %d", out.NumPartitions(), tc.wantParts)
			}
			// Coalesce may reorder across groups but must preserve the
			// multiset of elements.
			got := Collect(out)
			if len(got) != tc.elems {
				t.Fatalf("collected %d elements, want %d", len(got), tc.elems)
			}
			sort.Ints(got)
			for i, v := range got {
				if v != i {
					t.Fatalf("element set damaged at %d: %d", i, v)
				}
			}
		})
	}
}
