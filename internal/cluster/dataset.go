package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"
)

// Dataset is a partitioned in-memory collection, the RDD substitute. Values
// are held in per-partition slices; operations run one task per partition.
// Datasets are immutable: every operation produces a new Dataset.
type Dataset[T any] struct {
	c     *Cluster
	parts [][]T
}

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return len(d.parts) }

// Cluster returns the executing cluster.
func (d *Dataset[T]) Cluster() *Cluster { return d.c }

// Count returns the total number of elements.
func (d *Dataset[T]) Count() int64 {
	var n int64
	for _, p := range d.parts {
		n += int64(len(p))
	}
	return n
}

// Partition returns partition i (shared storage; read-only).
func (d *Dataset[T]) Partition(i int) []T { return d.parts[i] }

// bytesOf estimates the memory footprint of a dataset from its element type
// size; good enough for the Figure 11 accounting.
func bytesOf[T any](parts [][]T) int64 {
	var zero T
	elem := int64(reflect.TypeOf(&zero).Elem().Size())
	if elem == 0 {
		elem = 1
	}
	var n int64
	for _, p := range parts {
		n += int64(len(p))
	}
	return n * elem
}

func newDataset[T any](c *Cluster, parts [][]T) *Dataset[T] {
	d := &Dataset[T]{c: c, parts: parts}
	c.chargeMemory(bytesOf(parts))
	return d
}

// inSpec builds the stageSpec shared by the element-wise operations: task
// weights and input bytes come from the source partitions, output bytes are
// measured from the destination partitions once the stage completes.
func inSpec[T, U any](op string, in *Dataset[T], out [][]U) stageSpec {
	return stageSpec{
		op:       op,
		weights:  partWeights(in.parts),
		bytesIn:  bytesOf(in.parts),
		bytesOut: func() int64 { return bytesOf(out) },
	}
}

// partWeights returns per-partition element counts, the task weights used
// to apportion stage time (see runStage).
func partWeights[T any](parts [][]T) []int64 {
	w := make([]int64, len(parts))
	for i, p := range parts {
		w[i] = int64(len(p))
	}
	return w
}

// Parallelize splits data into balanced partitions distributed over the
// cluster (partitions <= 0 uses the cluster default; the count is clamped to
// len(data), so no partition is ever empty and an empty input yields zero
// partitions). The input slice is not copied; partitions alias its storage,
// with their capacities clamped so appending to one partition can never
// bleed into the next.
//
// Sizes differ by at most one element: base = len/p with the remainder
// spread over the first len%p partitions. The previous ceil-chunk split
// could strand empty or near-empty tail partitions (e.g. 6 elements over 4
// partitions became 2/2/2/0), which skewed every downstream stage's task
// weights and wasted shuffle buckets.
func Parallelize[T any](c *Cluster, data []T, partitions int) *Dataset[T] {
	p := c.defaultPartitions(partitions)
	if p > len(data) {
		p = len(data)
	}
	if len(data) == 0 {
		return newDataset(c, make([][]T, 0))
	}
	parts := make([][]T, p)
	base, rem := len(data)/p, len(data)%p
	lo := 0
	for i := range parts {
		n := base
		if i < rem {
			n++
		}
		parts[i] = data[lo : lo+n : lo+n]
		lo += n
	}
	return newDataset(c, parts)
}

// Generate creates a dataset of n elements produced by gen, one task per
// partition, each with its own deterministic RNG derived from seed. It is
// the parallel-source primitive the generators build on.
func Generate[T any](c *Cluster, n int64, partitions int, seed uint64, gen func(rng *rand.Rand, emit func(T), count int64)) *Dataset[T] {
	p := c.defaultPartitions(partitions)
	if int64(p) > n && n > 0 {
		p = int(n)
	}
	if n == 0 {
		return newDataset(c, make([][]T, 0))
	}
	parts := make([][]T, p)
	base := n / int64(p)
	rem := n % int64(p)
	weights := make([]int64, p)
	for i := range weights {
		weights[i] = base
		if int64(i) < rem {
			weights[i]++
		}
	}
	c.runStage(stageSpec{op: "generate", weights: weights,
		bytesOut: func() int64 { return bytesOf(parts) }}, p, func(i int) {
		count := weights[i]
		out := make([]T, 0, count)
		rng := DeriveRNG(seed, uint64(i))
		gen(rng, func(v T) { out = append(out, v) }, count)
		parts[i] = out
	})
	return newDataset(c, parts)
}

// GenerateRemotable is Generate for stages that can also run in another
// process: locally it is byte-for-byte Generate (same partitioning, same
// per-partition RNG streams), but when the cluster has a TaskExecutor each
// partition task may instead be dispatched as remote.Kind with
// payload(part, seed, count) bytes, and the worker's result bytes are decoded
// into the partition with decode. Partitioning depends only on (n, partitions,
// cluster shape) — never on worker availability — which is what keeps output
// identical in-process, with 1 worker, and with N workers.
func GenerateRemotable[T any](c *Cluster, n int64, partitions int, seed uint64, kind string,
	gen func(rng *rand.Rand, emit func(T), count int64),
	payload func(part int, seed uint64, count int64) []byte,
	decode func(result []byte) ([]T, error),
) *Dataset[T] {
	p := c.defaultPartitions(partitions)
	if int64(p) > n && n > 0 {
		p = int(n)
	}
	if n == 0 {
		return newDataset(c, make([][]T, 0))
	}
	parts := make([][]T, p)
	base := n / int64(p)
	rem := n % int64(p)
	weights := make([]int64, p)
	for i := range weights {
		weights[i] = base
		if int64(i) < rem {
			weights[i]++
		}
	}
	remote := &RemoteStage{
		Kind:    kind,
		Payload: func(task int) []byte { return payload(task, seed, weights[task]) },
		Apply: func(task int, result []byte) error {
			out, err := decode(result)
			if err != nil {
				return err
			}
			if int64(len(out)) != weights[task] {
				return fmt.Errorf("cluster: remote %s task %d returned %d elements, want %d",
					kind, task, len(out), weights[task])
			}
			parts[task] = out
			return nil
		},
	}
	c.runStage(stageSpec{op: "generate", weights: weights, remote: remote,
		bytesOut: func() int64 { return bytesOf(parts) }}, p, func(i int) {
		count := weights[i]
		out := make([]T, 0, count)
		rng := DeriveRNG(seed, uint64(i))
		gen(rng, func(v T) { out = append(out, v) }, count)
		parts[i] = out
	})
	return newDataset(c, parts)
}

// MapPartitionsRemotable is MapPartitions for stages that can also run in
// another process: f is the local closure; payload renders partition i's
// input as self-contained bytes for remote.Kind, and decode turns a worker's
// result bytes back into the output partition. The two paths must agree
// byte-for-byte (f(i, xs) == decode(worker(payload(i, xs)))) — the golden
// determinism tests hold them together.
func MapPartitionsRemotable[T, U any](in *Dataset[T], kind string,
	f func(part int, xs []T) []U,
	payload func(part int, xs []T) []byte,
	decode func(result []byte) ([]U, error),
) *Dataset[U] {
	parts := make([][]U, len(in.parts))
	spec := inSpec("mapPartitions", in, parts)
	spec.remote = &RemoteStage{
		Kind:    kind,
		Payload: func(task int) []byte { return payload(task, in.parts[task]) },
		Apply: func(task int, result []byte) error {
			out, err := decode(result)
			if err != nil {
				return err
			}
			parts[task] = out
			return nil
		},
	}
	in.c.runStage(spec, len(in.parts), func(i int) {
		parts[i] = f(i, in.parts[i])
	})
	return newDataset(in.c, parts)
}

// Map applies f to every element.
func Map[T, U any](in *Dataset[T], f func(T) U) *Dataset[U] {
	parts := make([][]U, len(in.parts))
	in.c.runStage(inSpec("map", in, parts), len(in.parts), func(i int) {
		src := in.parts[i]
		dst := make([]U, len(src))
		for j, v := range src {
			dst[j] = f(v)
		}
		parts[i] = dst
	})
	return newDataset(in.c, parts)
}

// MapPartitions applies f to whole partitions, allowing per-partition state
// (e.g. a partition-local RNG).
func MapPartitions[T, U any](in *Dataset[T], f func(part int, xs []T) []U) *Dataset[U] {
	parts := make([][]U, len(in.parts))
	in.c.runStage(inSpec("mapPartitions", in, parts), len(in.parts), func(i int) {
		parts[i] = f(i, in.parts[i])
	})
	return newDataset(in.c, parts)
}

// FlatMap applies f to every element and concatenates the results. The
// output partition starts at the input's length (expansion factors below 1
// are rare for flatMap workloads) and grows from there.
func FlatMap[T, U any](in *Dataset[T], f func(T) []U) *Dataset[U] {
	parts := make([][]U, len(in.parts))
	in.c.runStage(inSpec("flatMap", in, parts), len(in.parts), func(i int) {
		src := in.parts[i]
		dst := make([]U, 0, len(src))
		for _, v := range src {
			dst = append(dst, f(v)...)
		}
		parts[i] = dst
	})
	return newDataset(in.c, parts)
}

// Filter keeps elements satisfying pred. The output partition is pre-sized
// to the input length — the survivors can never exceed it, and one exact-cap
// allocation beats a geometric append chain on the hot path.
func Filter[T any](in *Dataset[T], pred func(T) bool) *Dataset[T] {
	parts := make([][]T, len(in.parts))
	in.c.runStage(inSpec("filter", in, parts), len(in.parts), func(i int) {
		src := in.parts[i]
		dst := make([]T, 0, len(src))
		for _, v := range src {
			if pred(v) {
				dst = append(dst, v)
			}
		}
		parts[i] = dst
	})
	return newDataset(in.c, parts)
}

// Sample returns a dataset where each element is kept independently with
// probability fraction — RDD.sample without replacement, the first stage of
// the PGPBA preferential attachment. Deterministic in seed.
func Sample[T any](in *Dataset[T], fraction float64, seed uint64) *Dataset[T] {
	if fraction < 0 {
		fraction = 0
	}
	parts := make([][]T, len(in.parts))
	in.c.runStage(inSpec("sample", in, parts), len(in.parts), func(i int) {
		rng := DeriveRNG(seed, uint64(i))
		src := in.parts[i]
		// Pre-size to the expected survivor count (exact for fraction >= 1,
		// mean + 1 otherwise); the occasional over-draw grows once.
		want := len(src)
		if fraction < 1 {
			want = int(fraction*float64(len(src))) + 1
		}
		dst := make([]T, 0, want)
		for _, v := range src {
			if fraction >= 1 || rng.Float64() < fraction {
				dst = append(dst, v)
			}
		}
		parts[i] = dst
	})
	return newDataset(in.c, parts)
}

// shardScratch is the recyclable per-task scratch of the shuffle operations:
// the per-survivor destination shard, the per-survivor source index (used by
// Distinct; ReduceByKey derives placement from its key order instead), and
// the per-shard survivor counts. Pooling it means a steady-state shuffle
// task allocates only its dedup map and one flat output block.
type shardScratch struct {
	shards []int32 // destination shard per survivor
	idx    []int32 // source index per survivor (Distinct only)
	counts []int64 // survivors per shard
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

// getShardScratch returns a scratch with empty survivor slices and p zeroed
// counts.
func getShardScratch(p int) *shardScratch {
	sc := shardScratchPool.Get().(*shardScratch)
	sc.shards = sc.shards[:0]
	sc.idx = sc.idx[:0]
	if cap(sc.counts) < p {
		sc.counts = make([]int64, p)
	} else {
		sc.counts = sc.counts[:p]
		clear(sc.counts)
	}
	return sc
}

func putShardScratch(sc *shardScratch) { shardScratchPool.Put(sc) }

// bucketize carves one flat, exactly sized allocation into p shard buckets
// (bucket s pre-sized to counts[s]) and returns them ready for appends. The
// flat backing replaces the per-shard append chains the shuffles used to
// grow: one allocation instead of O(p log n).
func bucketize[T any](counts []int64, total int) [][]T {
	flat := make([]T, total)
	bkts := make([][]T, len(counts))
	off := 0
	for s, n := range counts {
		bkts[s] = flat[off : off : off+int(n)]
		off += int(n)
	}
	return bkts
}

// maxShuffleInts guards the int32 scratch indices: a partition beyond 2^31
// elements would silently truncate, so refuse it loudly. At 16 bytes per
// element that is a 32 GiB single partition — repartition long before then.
const maxShuffleInts = math.MaxInt32

// Distinct removes duplicates under key — RDD.distinct, used by the PGSK
// edge generation. It is a two-phase parallel hash shuffle, like Spark's:
// phase one dedups each partition locally and splits survivors into shard
// buckets by shard(key); phase two merges and dedups each shard across all
// partitions. Duplicates always hash to the same shard, so the result is
// globally distinct. The shard function must be deterministic and must map
// equal keys to equal values; a short barrier between the phases models the
// shuffle coordination.
//
// Output order is deterministic: both phases emit survivors in first-
// occurrence order (maps are used only for membership, never iterated), so
// the result depends only on the input partitioning — never on scheduling
// or Go's randomized map order. ReduceByKey provides the same guarantee.
// The golden-digest tests in internal/core and the property tests in this
// package hold both guarantees in place.
func Distinct[T any, K comparable](in *Dataset[T], key func(T) K, shard func(K) uint64) *Dataset[T] {
	p := len(in.parts)
	if p == 0 {
		return newDataset(in.c, make([][]T, 0))
	}
	// Phase 1: local dedup + bucket split. buckets[i][s] holds partition
	// i's survivors destined for shard s, in input order. Survivors are
	// first picked out into pooled scratch (shard + source index), then
	// placed into one flat pre-sized block per task.
	buckets := make([][][]T, p)
	in.c.runStage(stageSpec{op: "distinct.local", weights: partWeights(in.parts),
		bytesIn: bytesOf(in.parts)}, p, func(i int) {
		src := in.parts[i]
		if len(src) > maxShuffleInts {
			panic("cluster: Distinct partition exceeds 2^31 elements; repartition first")
		}
		seen := make(map[K]struct{}, len(src))
		sc := getShardScratch(p)
		defer putShardScratch(sc)
		for j, v := range src {
			k := key(v)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			s := int32(shard(k) % uint64(p))
			sc.shards = append(sc.shards, s)
			sc.idx = append(sc.idx, int32(j))
			sc.counts[s]++
		}
		bkts := bucketize[T](sc.counts, len(sc.idx))
		for n, j := range sc.idx {
			s := sc.shards[n]
			bkts[s] = append(bkts[s], src[j])
		}
		buckets[i] = bkts
	})
	// Shuffle barrier: the driver-side coordination is charged per
	// partition (Config.ShuffleCoordPerPartition); it is the term that
	// keeps distinct-heavy pipelines (PGSK) slightly below ideal speedup
	// as partition counts grow with the cluster.
	in.c.chargeShuffleCoord(p)
	shardW := shardWeights(buckets, p)
	merged := make([][]T, p)
	in.c.runStage(stageSpec{op: "distinct.merge", weights: shardW,
		bytesIn:  bytesOf(in.parts),
		bytesOut: func() int64 { return bytesOf(merged) }}, p, func(s int) {
		// shardW[s] bounds this shard's output exactly when there are no
		// cross-partition duplicates, so the map and output pre-size to it.
		total := int(shardW[s])
		seen := make(map[K]struct{}, total)
		dst := make([]T, 0, total)
		for i := 0; i < p; i++ {
			for _, v := range buckets[i][s] {
				k := key(v)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				dst = append(dst, v)
			}
		}
		merged[s] = dst
	})
	return newDataset(in.c, merged)
}

// shardWeights sums the per-shard bucket sizes across all source partitions
// — the merge phase's task weights and pre-size bounds.
func shardWeights[T any](buckets [][][]T, p int) []int64 {
	w := make([]int64, p)
	for i := 0; i < p; i++ {
		for s := 0; s < p; s++ {
			w[s] += int64(len(buckets[i][s]))
		}
	}
	return w
}

// KV is a key-value pair for the shuffle-based aggregations.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// ReduceByKey aggregates values per key — Spark's reduceByKey, the workhorse
// of distributed analytics (e.g. summing PageRank contributions per target
// vertex). Like Distinct it is a two-phase parallel hash shuffle: map-side
// combine per partition, then per-shard merge, with the coordination charged
// serially per partition. combine must be associative and commutative.
//
// Output order and combine application order are deterministic: both phases
// emit keys in first-occurrence order (partition-major in the merge), using
// their maps only for lookup, never for iteration. Repeated runs over the
// same partitioning therefore produce bit-identical output even when combine
// is only approximately associative — float addition included — which is
// what keeps distributed PageRank reproducible run to run.
func ReduceByKey[K comparable, V any](in *Dataset[KV[K, V]], shard func(K) uint64, combine func(a, b V) V) *Dataset[KV[K, V]] {
	p := len(in.parts)
	if p == 0 {
		return newDataset(in.c, make([][]KV[K, V], 0))
	}
	// Phase 1: map-side combine + bucket split, emitting each partition's
	// keys in first-occurrence order into one flat pre-sized block per task
	// (pooled scratch carries the shard routing, as in Distinct).
	buckets := make([][][]KV[K, V], p)
	in.c.runStage(stageSpec{op: "reduceByKey.combine", weights: partWeights(in.parts),
		bytesIn: bytesOf(in.parts)}, p, func(i int) {
		src := in.parts[i]
		if len(src) > maxShuffleInts {
			panic("cluster: ReduceByKey partition exceeds 2^31 elements; repartition first")
		}
		local := make(map[K]V, len(src))
		order := make([]K, 0, len(src))
		for _, kv := range src {
			if v, ok := local[kv.Key]; ok {
				local[kv.Key] = combine(v, kv.Val)
			} else {
				local[kv.Key] = kv.Val
				order = append(order, kv.Key)
			}
		}
		sc := getShardScratch(p)
		defer putShardScratch(sc)
		for _, k := range order {
			s := int32(shard(k) % uint64(p))
			sc.shards = append(sc.shards, s)
			sc.counts[s]++
		}
		bkts := bucketize[KV[K, V]](sc.counts, len(order))
		for n, k := range order {
			s := sc.shards[n]
			bkts[s] = append(bkts[s], KV[K, V]{Key: k, Val: local[k]})
		}
		buckets[i] = bkts
	})
	in.c.chargeShuffleCoord(p)
	shardW := shardWeights(buckets, p)
	// Phase 2: per-shard reduce, again in first-occurrence order, with the
	// accumulator map and output pre-sized to the shard's incoming volume.
	merged := make([][]KV[K, V], p)
	in.c.runStage(stageSpec{op: "reduceByKey.merge", weights: shardW,
		bytesIn:  bytesOf(in.parts),
		bytesOut: func() int64 { return bytesOf(merged) }}, p, func(s int) {
		// Pre-size to the largest single contribution, not the summed
		// volume: map-side combine already deduped each partition, so when
		// every partition carries (mostly) the same key set — the common
		// aggregation shape — the union is close to the max, and sizing to
		// the sum would overshoot the map p-fold.
		want := 0
		for i := 0; i < p; i++ {
			if n := len(buckets[i][s]); n > want {
				want = n
			}
		}
		acc := make(map[K]V, want)
		order := make([]K, 0, want)
		for i := 0; i < p; i++ {
			for _, kv := range buckets[i][s] {
				if v, ok := acc[kv.Key]; ok {
					acc[kv.Key] = combine(v, kv.Val)
				} else {
					acc[kv.Key] = kv.Val
					order = append(order, kv.Key)
				}
			}
		}
		out := make([]KV[K, V], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, V]{Key: k, Val: acc[k]})
		}
		merged[s] = out
	})
	return newDataset(in.c, merged)
}

// Reduce folds all elements with combine, which must be associative and
// commutative; id is the identity element. Partitions reduce in parallel,
// then partials fold serially.
func Reduce[T any](in *Dataset[T], id T, combine func(a, b T) T) T {
	partials := make([]T, len(in.parts))
	in.c.runStage(stageSpec{op: "reduce", weights: partWeights(in.parts),
		bytesIn: bytesOf(in.parts)}, len(in.parts), func(i int) {
		acc := id
		for _, v := range in.parts[i] {
			acc = combine(acc, v)
		}
		partials[i] = acc
	})
	acc := id
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}

// Collect concatenates all partitions into one slice.
func Collect[T any](in *Dataset[T]) []T {
	out := make([]T, 0, in.Count())
	for _, p := range in.parts {
		out = append(out, p...)
	}
	return out
}

// Union concatenates two datasets partition-wise (no data movement).
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	parts := make([][]T, 0, len(a.parts)+len(b.parts))
	parts = append(parts, a.parts...)
	parts = append(parts, b.parts...)
	return newDataset(a.c, parts)
}

// Repartition redistributes elements into p balanced partitions.
func Repartition[T any](in *Dataset[T], p int) *Dataset[T] {
	return Parallelize(in.c, Collect(in), p)
}

// Coalesce reduces the partition count to at most p, one measured parallel
// task per output partition. Input partitions are packed into output bins
// largest-first onto the least-loaded bin, so the result is weight balanced
// even when a Union chain mixed tiny and huge partitions — unbalanced output
// would skew every downstream stage's makespan. Union chains grow the
// partition count unboundedly; the generators coalesce periodically so
// per-task scheduling overhead stays amortized (Spark's coalesce/repartition
// role).
func Coalesce[T any](in *Dataset[T], p int) *Dataset[T] {
	if p < 1 {
		p = 1
	}
	if len(in.parts) <= p {
		return in
	}
	// LPT bin packing of input partitions into p output bins.
	order := make([]int, len(in.parts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(in.parts[order[a]]), len(in.parts[order[b]])
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	groups := make([][]int, p)
	loads := make([]int64, p)
	for _, i := range order {
		best := 0
		for j := 1; j < p; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		groups[best] = append(groups[best], i)
		loads[best] += int64(len(in.parts[i]))
	}
	// Concatenate each group's members in input order (deterministic).
	for _, g := range groups {
		sort.Ints(g)
	}
	parts := make([][]T, p)
	in.c.runStage(stageSpec{op: "coalesce", weights: loads,
		bytesIn:  bytesOf(in.parts),
		bytesOut: func() int64 { return bytesOf(parts) }}, p, func(j int) {
		dst := make([]T, 0, loads[j])
		for _, i := range groups[j] {
			dst = append(dst, in.parts[i]...)
		}
		parts[j] = dst
	})
	return newDataset(in.c, parts)
}

// DeriveRNG returns a deterministic PCG stream for (seed, stream); every
// partition task derives its own so results are reproducible regardless of
// scheduling.
func DeriveRNG(seed, stream uint64) *rand.Rand {
	// SplitMix64 finalizer decorrelates the stream keys.
	z := stream + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewPCG(seed, z))
}
