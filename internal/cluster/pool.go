package cluster

// pool.go is the persistent worker pool behind every engine stage. Before
// the hot-path pass each stage spawned (and discarded) min(MaxParallel,
// tasks) goroutines plus an optional straggler monitor; a generator run
// executes thousands of stages, so the engine was paying a goroutine launch
// and teardown per worker per stage for bodies that often run microseconds.
// The pool keeps finished workers parked on a LIFO free list and hands them
// the next stage's work instead.
//
// Design constraints, in order:
//
//   - submit must never block and never queue behind a busy worker: stage
//     concurrency is decided by the caller (MaxParallel), not by the pool.
//     When no parked worker is free a new one is spawned, so the pool's
//     size floats to the peak concurrency ever requested and correctness
//     never depends on pool capacity (no lost wakeups, no deadlocks when
//     several clusters share the process, as csbd's job workers do).
//
//   - LIFO reuse keeps recently active workers (and their already-grown
//     stacks) warm; the cold tail just stays parked on its own channel at
//     ~4 KiB a goroutine, bounded by the largest MaxParallel (+1 monitor
//     per concurrently running speculative stage) the process ever used.
//
//   - Channel handoff provides the happens-before edge between one stage's
//     writes and the next stage's reads on a reused worker, so the race
//     detector and the memory model see exactly what fresh goroutines gave.

import (
	"sync"
	"sync/atomic"
)

// poolWorker is one parked goroutine: it waits on its private channel for
// the next closure to run.
type poolWorker struct {
	work chan func()
}

// workerPool is a grow-on-demand goroutine pool (see the file comment for
// the contract). The zero value is ready to use.
type workerPool struct {
	mu   sync.Mutex
	idle []*poolWorker

	// Counters for tests and observability; they do not affect behavior.
	spawned atomic.Int64 // workers ever created
	reused  atomic.Int64 // submissions served by a parked worker
}

// sharedPool serves every cluster in the process. Sharing across clusters is
// what makes the pool effective for the benchmark harness and csbd, which
// build short-lived clusters by the hundred.
var sharedPool workerPool

// submit runs fn on a pooled goroutine, reusing a parked worker when one is
// free and spawning a new one otherwise. It never blocks.
func (p *workerPool) submit(fn func()) {
	p.mu.Lock()
	var w *poolWorker
	if n := len(p.idle); n > 0 {
		w = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if w != nil {
		p.reused.Add(1)
		w.work <- fn
		return
	}
	p.spawned.Add(1)
	w = &poolWorker{work: make(chan func(), 1)}
	w.work <- fn
	go w.loop(p)
}

// loop is the body of a pooled goroutine: run a closure, park, repeat. A
// worker parks itself only after its closure returns, so the idle list holds
// exclusively quiescent workers.
func (w *poolWorker) loop(p *workerPool) {
	for fn := range w.work {
		fn()
		p.mu.Lock()
		p.idle = append(p.idle, w)
		p.mu.Unlock()
	}
}

// stats snapshots the pool counters (test hook).
func (p *workerPool) stats() (spawned, reused int64) {
	return p.spawned.Load(), p.reused.Load()
}
