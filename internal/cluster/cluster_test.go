package cluster

import (
	"context"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, CoresPerNode: 1},
		{Nodes: -1, CoresPerNode: 1},
		{Nodes: 1, CoresPerNode: 0},
		{Nodes: 1, CoresPerNode: 1, DefaultPartitions: -2},
		{Nodes: 1, CoresPerNode: 1, MaxParallel: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	c, err := New(Config{Nodes: 3, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.DefaultPartitions != 24 {
		t.Errorf("DefaultPartitions = %d, want 2x12", cfg.DefaultPartitions)
	}
	if cfg.MaxParallel <= 0 {
		t.Errorf("MaxParallel = %d", cfg.MaxParallel)
	}
	if cfg.PlatformOverheadBytes != DefaultPlatformOverheadBytes {
		t.Errorf("overhead = %d", cfg.PlatformOverheadBytes)
	}
	if c.VirtualCores() != 12 {
		t.Errorf("VirtualCores = %d, want 12", c.VirtualCores())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted bad config")
		}
	}()
	MustNew(Config{})
}

func TestLocal(t *testing.T) {
	c := Local(2)
	if c.Config().Nodes != 1 || c.Config().MaxParallel != 2 {
		t.Fatalf("Local config = %+v", c.Config())
	}
	if Local(0).Config().MaxParallel <= 0 {
		t.Fatal("Local(0) did not default MaxParallel")
	}
}

func TestLPTMakespan(t *testing.T) {
	ds := []time.Duration{4, 3, 2, 1, 1, 1} // units
	if got := lptMakespan(ds, 1); got != 12 {
		t.Errorf("1 core: %d, want 12", got)
	}
	// 2 cores LPT: 4+1+1=6 vs 3+2+1=6.
	if got := lptMakespan(ds, 2); got != 6 {
		t.Errorf("2 cores: %d, want 6", got)
	}
	// More cores than tasks: bounded by the longest task.
	if got := lptMakespan(ds, 100); got != 4 {
		t.Errorf("100 cores: %d, want 4", got)
	}
	if got := lptMakespan(nil, 4); got != 0 {
		t.Errorf("empty: %d, want 0", got)
	}
	if got := lptMakespan([]time.Duration{5}, 0); got != 5 {
		t.Errorf("0 cores clamps to 1: %d, want 5", got)
	}
}

func TestMetricsAccumulateAndReset(t *testing.T) {
	c := MustNew(Config{Nodes: 2, CoresPerNode: 2, MaxParallel: 2})
	c.runStage(stageSpec{op: "test"}, 4, func(i int) { time.Sleep(time.Millisecond) })
	m := c.Metrics()
	if m.Stages != 1 || m.Tasks != 4 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.TotalWork < 4*time.Millisecond {
		t.Errorf("TotalWork = %v, want >= 4ms", m.TotalWork)
	}
	if m.Makespan <= 0 || m.Makespan > m.TotalWork {
		t.Errorf("Makespan = %v not in (0, TotalWork=%v]", m.Makespan, m.TotalWork)
	}
	c.runSerial("test.serial", func() { time.Sleep(time.Millisecond) })
	m = c.Metrics()
	if m.SerialTime < time.Millisecond {
		t.Errorf("SerialTime = %v", m.SerialTime)
	}
	c.ResetMetrics()
	if m := c.Metrics(); m.Stages != 0 || m.TotalWork != 0 {
		t.Errorf("metrics not reset: %+v", m)
	}
}

func TestVirtualScalingReducesMakespan(t *testing.T) {
	// The same workload on more virtual cores must have a smaller makespan;
	// this is the mechanism behind the Figure 12 speedup curves. Weighted
	// stages (the production path) apportion the measured total by data
	// weight, so a GC pause inside one task cannot dominate the placement.
	weights := make([]int64, 64)
	for i := range weights {
		weights[i] = 1
	}
	work := func(c *Cluster) time.Duration {
		c.runStage(stageSpec{op: "test", weights: weights}, 64, func(i int) {
			// Busy work ~ a fraction of a millisecond.
			s := 0
			for j := 0; j < 200000; j++ {
				s += j
			}
			_ = s
		})
		return c.Metrics().Makespan
	}
	small := work(MustNew(Config{Nodes: 1, CoresPerNode: 4, MaxParallel: 2}))
	big := work(MustNew(Config{Nodes: 16, CoresPerNode: 4, MaxParallel: 2}))
	if big >= small {
		t.Fatalf("makespan did not shrink with nodes: 1 node %v vs 16 nodes %v", small, big)
	}
}

func TestChargeMemory(t *testing.T) {
	c := MustNew(Config{Nodes: 4, CoresPerNode: 1, PlatformOverheadBytes: 100})
	c.chargeMemory(4000)
	if got := c.Metrics().PeakBytesPerNode; got != 1100 {
		t.Fatalf("PeakBytesPerNode = %d, want 4000/4+100", got)
	}
	c.chargeMemory(400) // smaller: peak unchanged
	if got := c.Metrics().PeakBytesPerNode; got != 1100 {
		t.Fatalf("peak decreased: %d", got)
	}
}

func TestRunStageZeroTasks(t *testing.T) {
	c := Local(1)
	c.runStage(stageSpec{op: "test"}, 0, func(i int) { t.Fatal("task ran") })
	if m := c.Metrics(); m.Stages != 0 {
		t.Fatalf("empty stage recorded: %+v", m)
	}
}

func TestClusterContextStopsStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := MustNew(Config{Nodes: 1, CoresPerNode: 2, Context: ctx})
	if c.Err() != nil {
		t.Fatalf("live context reports %v", c.Err())
	}
	// A live cluster executes normally.
	if got := Collect(Map(Parallelize(c, seq(100), 4), func(x int) int { return x + 1 })); len(got) != 100 {
		t.Fatalf("pre-cancel map produced %d elements", len(got))
	}
	cancel()
	if c.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", c.Err())
	}
	// Post-cancel stages stop picking up tasks: output partitions stay empty.
	if got := Collect(Map(Parallelize(c, seq(100), 4), func(x int) int { return x + 1 })); len(got) != 0 {
		t.Fatalf("cancelled map still produced %d elements", len(got))
	}
}
