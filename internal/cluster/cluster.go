// Package cluster is the distributed-execution substrate of csb: a
// Spark-like engine over partitioned in-memory datasets with the operations
// the paper's generators need (map, filter, sample, distinct, reduce).
//
// The paper runs on Apache Spark over 60 physical nodes. This package
// substitutes that testbed with a two-level model:
//
//   - Real execution: every partition task actually runs, on a goroutine
//     worker pool bounded by MaxParallel (defaults to GOMAXPROCS). Results
//     are therefore real, not simulated.
//
//   - Virtual time: each task's wall time is measured, and every stage's
//     tasks are placed onto Nodes*CoresPerNode virtual cores by an LPT
//     (longest processing time first) scheduler. The resulting per-stage
//     makespans accumulate into Metrics.Makespan, which is the execution
//     time a cluster of that shape would observe. Strong-scaling studies
//     (Figure 12) sweep Nodes while the physical host stays fixed.
//
// Serial sections (like the global merge of Distinct, Spark's shuffle) are
// charged to every virtual core, which is what makes speedup curves bend
// away from ideal exactly as the paper observes for PGSK.
package cluster

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config describes the (possibly virtual) cluster topology.
type Config struct {
	// Nodes is the number of simulated compute nodes.
	Nodes int
	// CoresPerNode is the number of cores each simulated node offers.
	CoresPerNode int
	// DefaultPartitions is the partition count used when an operation is
	// asked for 0 partitions. Following the paper's tuning, it defaults to
	// 2x the total executor cores.
	DefaultPartitions int
	// MaxParallel bounds real OS-level parallelism (0 means GOMAXPROCS).
	MaxParallel int
	// PlatformOverheadBytes is the fixed per-node memory overhead charged
	// by the platform (Spark's baseline footprint in the paper, visible as
	// the flat left region of Figure 11).
	PlatformOverheadBytes int64
	// RecordStages keeps a per-stage log in Metrics.StageLog for
	// performance analysis of generator pipelines.
	RecordStages bool
	// ShuffleCoordPerPartition is the serial coordination cost charged per
	// partition for every shuffle (Distinct): the driver-side bookkeeping
	// that keeps shuffle-heavy pipelines slightly below ideal speedup as
	// partition counts grow. Defaults to 300ns — far below a real Spark
	// driver's, so it bounds rather than dominates.
	ShuffleCoordPerPartition time.Duration
}

// StageRecord describes one executed stage for the optional stage log.
type StageRecord struct {
	Tasks    int
	Serial   bool
	Work     time.Duration // summed task wall time
	Makespan time.Duration // LPT makespan on the virtual cores
}

// DefaultPlatformOverheadBytes is the per-node platform overhead used when
// Config.PlatformOverheadBytes is zero: the paper observes ~10 GB on 512 GB
// nodes; scaled to laptop-size experiments this is 64 MiB.
const DefaultPlatformOverheadBytes = 64 << 20

// Metrics accumulates the virtual-time and memory accounting of a cluster.
type Metrics struct {
	// Stages is the number of executed stages.
	Stages int64
	// Tasks is the number of executed partition tasks.
	Tasks int64
	// TotalWork is the summed wall time of all tasks (CPU-seconds of work).
	TotalWork time.Duration
	// Makespan is the simulated execution time on Nodes*CoresPerNode cores.
	Makespan time.Duration
	// SerialTime is the portion of Makespan spent in serial sections.
	SerialTime time.Duration
	// PeakBytesPerNode is the maximum simultaneous dataset footprint
	// charged to one node (including platform overhead).
	PeakBytesPerNode int64
	// StageLog holds per-stage records when Config.RecordStages is set.
	StageLog []StageRecord
}

// Cluster executes dataset operations. Create with New; safe for use from a
// single orchestrating goroutine (the operations themselves parallelize
// internally).
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	metrics Metrics
}

// New validates cfg, fills defaults and returns a Cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("cluster: CoresPerNode must be positive, got %d", cfg.CoresPerNode)
	}
	if cfg.DefaultPartitions == 0 {
		cfg.DefaultPartitions = 2 * cfg.Nodes * cfg.CoresPerNode
	}
	if cfg.DefaultPartitions < 0 {
		return nil, fmt.Errorf("cluster: DefaultPartitions must be positive")
	}
	if cfg.MaxParallel == 0 {
		cfg.MaxParallel = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallel < 0 {
		return nil, fmt.Errorf("cluster: MaxParallel must be positive")
	}
	if cfg.PlatformOverheadBytes == 0 {
		cfg.PlatformOverheadBytes = DefaultPlatformOverheadBytes
	}
	if cfg.ShuffleCoordPerPartition == 0 {
		cfg.ShuffleCoordPerPartition = 300 * time.Nanosecond
	}
	return &Cluster{cfg: cfg}, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Local returns a single-node cluster using up to maxParallel real cores
// (0 for GOMAXPROCS), the configuration of the single-node experiments.
func Local(maxParallel int) *Cluster {
	if maxParallel <= 0 {
		maxParallel = runtime.GOMAXPROCS(0)
	}
	return MustNew(Config{Nodes: 1, CoresPerNode: maxParallel, MaxParallel: maxParallel})
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// VirtualCores returns Nodes * CoresPerNode.
func (c *Cluster) VirtualCores() int { return c.cfg.Nodes * c.cfg.CoresPerNode }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// ResetMetrics zeroes the accumulated metrics (e.g. between sweep points).
func (c *Cluster) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = Metrics{}
}

// defaultPartitions resolves a requested partition count.
func (c *Cluster) defaultPartitions(requested int) int {
	if requested > 0 {
		return requested
	}
	return c.cfg.DefaultPartitions
}

// runStage executes nTasks tasks on the real worker pool, measures each, and
// charges the stage's LPT makespan over the virtual cores.
func (c *Cluster) runStage(nTasks int, task func(i int)) {
	c.runStageWeighted(nTasks, nil, task)
}

// runStageWeighted is runStage with explicit task weights (typically the
// partition element counts). When weights are given, the stage's summed
// wall time is apportioned to tasks proportionally to their weights before
// the LPT placement: total cost stays real and data skew is respected, but
// per-task timer noise (a GC pause landing inside one microsecond task)
// no longer distorts the virtual makespan. Without weights, the raw
// per-task measurements are used.
func (c *Cluster) runStageWeighted(nTasks int, weights []int64, task func(i int)) {
	if nTasks == 0 {
		return
	}
	durations := make([]time.Duration, nTasks)
	workers := c.cfg.MaxParallel
	if workers > nTasks {
		workers = nTasks
	}
	var wg sync.WaitGroup
	idx := make(chan int, nTasks)
	for i := 0; i < nTasks; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				task(i)
				durations[i] = time.Since(start)
			}
		}()
	}
	wg.Wait()

	var total time.Duration
	for _, d := range durations {
		total += d
	}
	if weights != nil && len(weights) == nTasks {
		var sumW int64
		for _, w := range weights {
			sumW += w
		}
		if sumW > 0 {
			for i := range durations {
				durations[i] = time.Duration(float64(total) * float64(weights[i]) / float64(sumW))
			}
		} else {
			for i := range durations {
				durations[i] = total / time.Duration(nTasks)
			}
		}
	}
	span := lptMakespan(durations, c.VirtualCores())
	c.mu.Lock()
	c.metrics.Stages++
	c.metrics.Tasks += int64(nTasks)
	c.metrics.TotalWork += total
	c.metrics.Makespan += span
	if c.cfg.RecordStages {
		c.metrics.StageLog = append(c.metrics.StageLog,
			StageRecord{Tasks: nTasks, Work: total, Makespan: span})
	}
	c.mu.Unlock()
}

// runSerial executes fn as a serial section: its wall time is charged to the
// makespan in full (every virtual core waits), modelling shuffles and
// driver-side merges.
func (c *Cluster) runSerial(fn func()) {
	start := time.Now()
	fn()
	d := time.Since(start)
	c.mu.Lock()
	c.metrics.Stages++
	c.metrics.Tasks++
	c.metrics.TotalWork += d
	c.metrics.Makespan += d
	c.metrics.SerialTime += d
	if c.cfg.RecordStages {
		c.metrics.StageLog = append(c.metrics.StageLog,
			StageRecord{Tasks: 1, Serial: true, Work: d, Makespan: d})
	}
	c.mu.Unlock()
}

// chargeShuffleCoord charges the serial shuffle-coordination cost for a
// shuffle over p partitions without executing anything.
func (c *Cluster) chargeShuffleCoord(p int) {
	d := time.Duration(p) * c.cfg.ShuffleCoordPerPartition
	c.mu.Lock()
	c.metrics.Stages++
	c.metrics.Makespan += d
	c.metrics.SerialTime += d
	if c.cfg.RecordStages {
		c.metrics.StageLog = append(c.metrics.StageLog,
			StageRecord{Tasks: 0, Serial: true, Makespan: d})
	}
	c.mu.Unlock()
}

// chargeMemory records the footprint of live bytes spread across the nodes.
func (c *Cluster) chargeMemory(liveBytes int64) {
	perNode := liveBytes/int64(c.cfg.Nodes) + c.cfg.PlatformOverheadBytes
	c.mu.Lock()
	if perNode > c.metrics.PeakBytesPerNode {
		c.metrics.PeakBytesPerNode = perNode
	}
	c.mu.Unlock()
}

// lptMakespan assigns task durations to cores longest-first, each to the
// least-loaded core, and returns the maximum core load — the classic LPT
// approximation of the optimal schedule.
func lptMakespan(durations []time.Duration, cores int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if cores < 1 {
		cores = 1
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if cores > len(sorted) {
		cores = len(sorted)
	}
	h := make(loadHeap, cores)
	heap.Init(&h)
	for _, d := range sorted {
		h[0] += d
		heap.Fix(&h, 0)
	}
	var maxLoad time.Duration
	for _, l := range h {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// loadHeap is a min-heap of virtual core loads.
type loadHeap []time.Duration

func (h loadHeap) Len() int            { return len(h) }
func (h loadHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
