// Package cluster is the distributed-execution substrate of csb: a
// Spark-like engine over partitioned in-memory datasets with the operations
// the paper's generators need (map, filter, sample, distinct, reduce).
//
// The paper runs on Apache Spark over 60 physical nodes. This package
// substitutes that testbed with a two-level model:
//
//   - Real execution: every partition task actually runs, on a goroutine
//     worker pool bounded by MaxParallel (defaults to GOMAXPROCS). Results
//     are therefore real, not simulated.
//
//   - Virtual time: each task's wall time is measured, and every stage's
//     tasks are placed onto Nodes*CoresPerNode virtual cores by an LPT
//     (longest processing time first) scheduler. The resulting per-stage
//     makespans accumulate into Metrics.Makespan, which is the execution
//     time a cluster of that shape would observe. Strong-scaling studies
//     (Figure 12) sweep Nodes while the physical host stays fixed.
//
// Serial sections (like the global merge of Distinct, Spark's shuffle) are
// charged to every virtual core, which is what makes speedup curves bend
// away from ideal exactly as the paper observes for PGSK.
package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the (possibly virtual) cluster topology.
type Config struct {
	// Nodes is the number of simulated compute nodes.
	Nodes int
	// CoresPerNode is the number of cores each simulated node offers.
	CoresPerNode int
	// DefaultPartitions is the partition count used when an operation is
	// asked for 0 partitions. Following the paper's tuning, it defaults to
	// 2x the total executor cores.
	DefaultPartitions int
	// MaxParallel bounds real OS-level parallelism (0 means GOMAXPROCS).
	MaxParallel int
	// PlatformOverheadBytes is the fixed per-node memory overhead charged
	// by the platform (Spark's baseline footprint in the paper, visible as
	// the flat left region of Figure 11).
	PlatformOverheadBytes int64
	// RecordStages keeps a per-stage log in Metrics.StageLog for
	// performance analysis of generator pipelines.
	RecordStages bool
	// ShuffleCoordPerPartition is the serial coordination cost charged per
	// partition for every shuffle (Distinct): the driver-side bookkeeping
	// that keeps shuffle-heavy pipelines slightly below ideal speedup as
	// partition counts grow. Defaults to 300ns — far below a real Spark
	// driver's, so it bounds rather than dominates.
	ShuffleCoordPerPartition time.Duration
	// Tracer, when non-nil, receives every stage span this cluster executes
	// (independent of RecordStages). One Tracer may be shared by several
	// clusters; each gets its own trace lane.
	Tracer *Tracer
	// Context, when non-nil, bounds every stage this cluster executes: once
	// it is cancelled (or its deadline passes), running stages stop picking
	// up new partition tasks and Err reports the cause. Pipelines check Err
	// between stages, so a cancelled generation stops between tasks instead
	// of running to completion. Nil means context.Background (never done).
	Context context.Context
	// MaxTaskRetries is how many times a failed task attempt (panic or
	// injected fault) is re-executed before the stage fails the cluster with
	// a *StageError. 0 means DefaultMaxTaskRetries; negative disables
	// retries (every attempt is final), mirroring Spark's
	// spark.task.maxFailures.
	MaxTaskRetries int
	// RetryBackoff is the base delay before a task retry; the k-th retry
	// waits about RetryBackoff*2^k with deterministic jitter. 0 means
	// DefaultRetryBackoff; negative disables the wait.
	RetryBackoff time.Duration
	// Speculation enables straggler mitigation: once at least half of a
	// stage's tasks have finished, any task running longer than
	// SpeculationQuantile times the median task time gets a duplicate
	// attempt, and whichever attempt commits first wins. Output is
	// unaffected — duplicates race only for the commit slot, never the
	// result bytes.
	Speculation bool
	// SpeculationQuantile is the straggler threshold multiple over the
	// median committed-task runtime (0 means DefaultSpeculationQuantile).
	SpeculationQuantile float64
	// Faults, when non-nil, deterministically injects panics, transient
	// errors and straggler delays into task attempts for chaos testing. It
	// never alters committed output, only the attempt schedule.
	Faults *FaultPlan
	// Executor, when non-nil, receives every attempt of stages that declare
	// a RemoteStage and may run them in another process (see executor.go).
	// Where an attempt executes never changes committed bytes, so Executor —
	// like the fault knobs above — is not part of artifact identity.
	Executor TaskExecutor
}

// StageRecord is one executed stage span: what operation ran, under which
// caller-propagated label, how its tasks behaved, and what it cost in real
// and virtual time. It is kept in Metrics.StageLog when Config.RecordStages
// is set and streamed to Config.Tracer when one is attached.
type StageRecord struct {
	Seq    int64  // 1-based stage sequence number within the cluster
	Op     string // engine operation ("map", "distinct.merge", "shuffle.coord", ...)
	Label  string // caller scope at execution time (see Cluster.Scope), "/"-joined
	Tasks  int
	Serial bool
	// Virtual-time accounting.
	Work     time.Duration // summed task wall time
	Makespan time.Duration // LPT makespan on the virtual cores
	// Real-time accounting (host wall clock).
	Start time.Duration // offset of the stage start from cluster creation
	Real  time.Duration // host wall time of the whole stage
	// Per-task distribution, after weight apportioning when weights were
	// given — so Skew reflects data skew, not timer noise.
	TaskMin  time.Duration
	TaskMax  time.Duration
	TaskMean time.Duration
	Skew     float64 // TaskMax / TaskMean; 1.0 is perfectly balanced
	// Data movement, estimated from element sizes (the Figure 11 model).
	BytesIn  int64
	BytesOut int64
	// Fault-tolerance accounting.
	Attempts       int // task attempts launched (>= Tasks when anything retried)
	Retries        int // re-attempts scheduled after failed attempts
	Speculative    int // duplicate attempts launched for stragglers
	FailedAttempts int // attempts that panicked or returned an injected fault
	Remote         int // attempts that executed on a remote worker
}

// DefaultPlatformOverheadBytes is the per-node platform overhead used when
// Config.PlatformOverheadBytes is zero: the paper observes ~10 GB on 512 GB
// nodes; scaled to laptop-size experiments this is 64 MiB.
const DefaultPlatformOverheadBytes = 64 << 20

// Metrics accumulates the virtual-time and memory accounting of a cluster.
type Metrics struct {
	// Stages is the number of executed stages.
	Stages int64
	// Tasks is the number of executed partition tasks.
	Tasks int64
	// TotalWork is the summed wall time of all tasks (CPU-seconds of work).
	TotalWork time.Duration
	// Makespan is the simulated execution time on Nodes*CoresPerNode cores.
	Makespan time.Duration
	// SerialTime is the portion of Makespan spent in serial sections.
	SerialTime time.Duration
	// PeakBytesPerNode is the maximum simultaneous dataset footprint
	// charged to one node (including platform overhead).
	PeakBytesPerNode int64
	// TaskRetries counts re-attempts scheduled after failed task attempts.
	TaskRetries int64
	// SpeculativeTasks counts duplicate attempts launched for stragglers.
	SpeculativeTasks int64
	// TaskFailures counts attempts that panicked or hit an injected fault
	// (including ones later recovered by a retry).
	TaskFailures int64
	// RemoteTasks counts task attempts executed on a remote worker via the
	// configured TaskExecutor.
	RemoteTasks int64
	// StageLog holds per-stage records when Config.RecordStages is set.
	StageLog []StageRecord
}

// Cluster executes dataset operations. Create with New; safe for use from a
// single orchestrating goroutine (the operations themselves parallelize
// internally).
type Cluster struct {
	cfg      Config
	epoch    time.Time // creation time; stage Start offsets are relative to it
	tracerID int       // lane id assigned by cfg.Tracer, when attached

	// execSeq numbers stages as they start executing; assigned by the single
	// orchestrator goroutine, so it is deterministic for a given pipeline and
	// keys the FaultPlan's replayable fault decisions.
	execSeq atomic.Uint64

	mu      sync.Mutex
	metrics Metrics
	labels  []string    // active Scope stack, joined into StageRecord.Label
	failure *StageError // first stage failure; sticky, surfaced by Err
}

// New validates cfg, fills defaults and returns a Cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("cluster: CoresPerNode must be positive, got %d", cfg.CoresPerNode)
	}
	if cfg.DefaultPartitions == 0 {
		cfg.DefaultPartitions = 2 * cfg.Nodes * cfg.CoresPerNode
	}
	if cfg.DefaultPartitions < 0 {
		return nil, fmt.Errorf("cluster: DefaultPartitions must be positive")
	}
	if cfg.MaxParallel == 0 {
		cfg.MaxParallel = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxParallel < 0 {
		return nil, fmt.Errorf("cluster: MaxParallel must be positive")
	}
	if cfg.PlatformOverheadBytes == 0 {
		cfg.PlatformOverheadBytes = DefaultPlatformOverheadBytes
	}
	if cfg.ShuffleCoordPerPartition == 0 {
		cfg.ShuffleCoordPerPartition = 300 * time.Nanosecond
	}
	if cfg.MaxTaskRetries == 0 {
		cfg.MaxTaskRetries = DefaultMaxTaskRetries
	} else if cfg.MaxTaskRetries < 0 {
		cfg.MaxTaskRetries = 0 // explicit opt-out: attempts are final
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	} else if cfg.RetryBackoff < 0 {
		cfg.RetryBackoff = 0
	}
	if cfg.SpeculationQuantile == 0 {
		cfg.SpeculationQuantile = DefaultSpeculationQuantile
	}
	if cfg.SpeculationQuantile < 1 {
		return nil, fmt.Errorf("cluster: SpeculationQuantile must be >= 1, got %g", cfg.SpeculationQuantile)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			return nil, err
		}
	}
	c := &Cluster{cfg: cfg, epoch: time.Now()}
	if cfg.Tracer != nil {
		c.tracerID = cfg.Tracer.register()
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Local returns a single-node cluster using up to maxParallel real cores
// (0 for GOMAXPROCS), the configuration of the single-node experiments.
func Local(maxParallel int) *Cluster {
	if maxParallel <= 0 {
		maxParallel = runtime.GOMAXPROCS(0)
	}
	return MustNew(Config{Nodes: 1, CoresPerNode: maxParallel, MaxParallel: maxParallel})
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Err reports whether the cluster must stop: nil while execution may
// continue; a *StageError once a stage exhausted a task's retry budget (the
// failure is sticky — later stages refuse to run); or the bounding Context's
// error (context.Canceled or context.DeadlineExceeded) once it has ended.
// Engine stages poll it between partition tasks; generator pipelines poll it
// between stages and propagate the error to their caller.
func (c *Cluster) Err() error {
	c.mu.Lock()
	failed := c.failure
	c.mu.Unlock()
	if failed != nil {
		return failed
	}
	if c.cfg.Context == nil {
		return nil
	}
	return c.cfg.Context.Err()
}

// fail records the cluster's first stage failure; later failures (from
// stages already in flight) are dropped, so Err is stable once set.
func (c *Cluster) fail(e *StageError) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = e
	}
	c.mu.Unlock()
}

// currentLabel snapshots the "/"-joined Scope stack.
func (c *Cluster) currentLabel() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.labels, "/")
}

// VirtualCores returns Nodes * CoresPerNode.
func (c *Cluster) VirtualCores() int { return c.cfg.Nodes * c.cfg.CoresPerNode }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

// ResetMetrics zeroes the accumulated metrics (e.g. between sweep points).
func (c *Cluster) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = Metrics{}
}

// defaultPartitions resolves a requested partition count.
func (c *Cluster) defaultPartitions(requested int) int {
	if requested > 0 {
		return requested
	}
	return c.cfg.DefaultPartitions
}

// Scope pushes a label segment onto the cluster's stage-label stack and
// returns the function that pops it. Every stage executed while the segment
// is active records the "/"-joined stack as its Label, so generator
// pipelines can name their phases:
//
//	defer c.Scope("pgpba")()
//	...
//	end := c.Scope("round1")
//	edges = cluster.Union(edges, grow(sampled)) // spans labeled "pgpba/round1"
//	end()
//
// Scopes follow the single-orchestrator contract of Cluster: push and pop
// from the goroutine driving the pipeline.
func (c *Cluster) Scope(label string) func() {
	c.mu.Lock()
	c.labels = append(c.labels, label)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		if n := len(c.labels); n > 0 {
			c.labels = c.labels[:n-1]
		}
		c.mu.Unlock()
	}
}

// stageSpec names and sizes one engine stage for the span accounting.
type stageSpec struct {
	op       string       // engine operation name
	weights  []int64      // optional per-task weights (element counts)
	bytesIn  int64        // estimated input footprint
	bytesOut func() int64 // evaluated after the tasks complete; nil means 0
	remote   *RemoteStage // non-nil when tasks can run in another process
}

// runStage executes nTasks tasks on the real worker pool, measures each, and
// charges the stage's LPT makespan over the virtual cores. Execution is
// fault-tolerant: each task runs as a chain of attempts with panic recovery
// and bounded retries, plus optional speculative duplicates and injected
// faults (see fault.go). A task out of retries fails the cluster via a
// sticky *StageError; a cancelled or already-failed cluster skips the stage
// entirely, leaving its output partitions empty.
//
// When spec.weights is set (typically the partition element counts), the
// stage's summed wall time is apportioned to tasks proportionally to their
// weights before the LPT placement: total cost stays real and data skew is
// respected, but per-task timer noise (a GC pause landing inside one
// microsecond task) no longer distorts the virtual makespan. Without
// weights, the raw per-task measurements are used. Both paths consider only
// committed tasks, so a stage cut short by cancellation or failure does not
// drag zero-duration phantom tasks into the stats.
func (c *Cluster) runStage(spec stageSpec, nTasks int, task func(i int)) {
	if nTasks == 0 || c.Err() != nil {
		return
	}
	realStart := time.Now()
	st := newStageRun(c, spec.op, c.execSeq.Add(1), nTasks, task, spec.remote)
	st.run()
	if st.failure != nil {
		c.fail(st.failure)
	}

	// Stats over the committed subset only (satellite fix: a worker exiting
	// early on cancellation must not contribute zero durations).
	executed := make([]int, 0, nTasks)
	durations := make([]time.Duration, 0, nTasks)
	var total time.Duration
	for i := range st.slots {
		if st.slots[i].done.Load() {
			executed = append(executed, i)
			d := time.Duration(st.slots[i].durNS.Load())
			durations = append(durations, d)
			total += d
		}
	}
	if spec.weights != nil && len(spec.weights) == nTasks && len(executed) > 0 {
		var sumW int64
		for _, i := range executed {
			sumW += spec.weights[i]
		}
		if sumW > 0 {
			for j, i := range executed {
				durations[j] = time.Duration(float64(total) * float64(spec.weights[i]) / float64(sumW))
			}
		} else {
			for j := range durations {
				durations[j] = total / time.Duration(len(executed))
			}
		}
	}
	span := lptMakespan(durations, c.VirtualCores())
	var bytesOut int64
	if spec.bytesOut != nil {
		bytesOut = spec.bytesOut()
	}
	rec := StageRecord{
		Op:             spec.op,
		Tasks:          nTasks,
		Work:           total,
		Makespan:       span,
		Start:          realStart.Sub(c.epoch),
		Real:           time.Since(realStart),
		BytesIn:        spec.bytesIn,
		BytesOut:       bytesOut,
		Attempts:       int(st.attempts.Load()),
		Retries:        int(st.retries.Load()),
		Speculative:    int(st.speculative.Load()),
		FailedAttempts: int(st.failures.Load()),
		Remote:         int(st.remoteRuns.Load()),
	}
	rec.TaskMin, rec.TaskMax, rec.TaskMean, rec.Skew = taskStats(durations)
	c.commit(rec, func(m *Metrics) {
		m.Tasks += int64(len(executed))
		m.TotalWork += total
		m.Makespan += span
		m.TaskRetries += int64(rec.Retries)
		m.SpeculativeTasks += int64(rec.Speculative)
		m.TaskFailures += int64(rec.FailedAttempts)
		m.RemoteTasks += int64(rec.Remote)
	})
}

// runSerial executes fn as a serial section: its wall time is charged to the
// makespan in full (every virtual core waits), modelling shuffles and
// driver-side merges. Serial sections are not retried — they are single
// global merges whose inputs a retry would consume twice — but a panic is
// still contained: it fails the cluster with a *StageError instead of
// crashing the process.
func (c *Cluster) runSerial(op string, fn func()) {
	if c.Err() != nil {
		return
	}
	realStart := time.Now()
	var panicked any
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = r
			}
		}()
		fn()
	}()
	if panicked != nil {
		c.fail(&StageError{Op: op, Label: c.currentLabel(), Task: 0, Attempts: 1, Cause: panicked})
		return
	}
	d := time.Since(realStart)
	rec := StageRecord{
		Op: op, Tasks: 1, Serial: true,
		Work: d, Makespan: d,
		Start: realStart.Sub(c.epoch), Real: d,
		TaskMin: d, TaskMax: d, TaskMean: d, Skew: 1,
		Attempts: 1,
	}
	c.commit(rec, func(m *Metrics) {
		m.Tasks++
		m.TotalWork += d
		m.Makespan += d
		m.SerialTime += d
	})
}

// chargeShuffleCoord charges the serial shuffle-coordination cost for a
// shuffle over p partitions without executing anything.
func (c *Cluster) chargeShuffleCoord(p int) {
	d := time.Duration(p) * c.cfg.ShuffleCoordPerPartition
	now := time.Now()
	rec := StageRecord{
		Op: "shuffle.coord", Tasks: 0, Serial: true,
		Makespan: d,
		Start:    now.Sub(c.epoch),
	}
	c.commit(rec, func(m *Metrics) {
		m.Makespan += d
		m.SerialTime += d
	})
}

// commit stamps rec with its sequence number and label, folds the stage into
// the metrics under the lock, and forwards the span to the log and tracer.
func (c *Cluster) commit(rec StageRecord, fold func(m *Metrics)) {
	c.mu.Lock()
	c.metrics.Stages++
	rec.Seq = c.metrics.Stages
	rec.Label = strings.Join(c.labels, "/")
	fold(&c.metrics)
	if c.cfg.RecordStages {
		c.metrics.StageLog = append(c.metrics.StageLog, rec)
	}
	c.mu.Unlock()
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.add(c.tracerID, c.epoch.Add(rec.Start), rec)
	}
}

// taskStats summarizes a stage's per-task durations.
func taskStats(durations []time.Duration) (min, max, mean time.Duration, skew float64) {
	if len(durations) == 0 {
		return 0, 0, 0, 0
	}
	min = durations[0]
	var total time.Duration
	for _, d := range durations {
		total += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	mean = total / time.Duration(len(durations))
	if mean > 0 {
		skew = float64(max) / float64(mean)
	}
	return min, max, mean, skew
}

// chargeMemory records the footprint of live bytes spread across the nodes.
func (c *Cluster) chargeMemory(liveBytes int64) {
	perNode := liveBytes/int64(c.cfg.Nodes) + c.cfg.PlatformOverheadBytes
	c.mu.Lock()
	if perNode > c.metrics.PeakBytesPerNode {
		c.metrics.PeakBytesPerNode = perNode
	}
	c.mu.Unlock()
}

// lptMakespan assigns task durations to cores longest-first, each to the
// least-loaded core, and returns the maximum core load — the classic LPT
// approximation of the optimal schedule.
func lptMakespan(durations []time.Duration, cores int) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	if cores < 1 {
		cores = 1
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if cores > len(sorted) {
		cores = len(sorted)
	}
	h := make(loadHeap, cores)
	heap.Init(&h)
	for _, d := range sorted {
		h[0] += d
		heap.Fix(&h, 0)
	}
	var maxLoad time.Duration
	for _, l := range h {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// loadHeap is a min-heap of virtual core loads.
type loadHeap []time.Duration

func (h loadHeap) Len() int            { return len(h) }
func (h loadHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
