package cluster

// fault.go is the fault-tolerance layer of the engine: Spark-style task
// attempts with panic recovery and bounded, jitter-backed retries;
// speculative duplicate attempts for stragglers; and a deterministic
// fault-injection plan for chaos testing.
//
// The determinism argument, on which everything downstream (artifact
// content addressing, the byte-identity tests of PR 1) rests:
//
//   - Every dataset operation's task builds its output locally and writes
//     it to a per-task slot as its final action, so a failed attempt leaves
//     the slot untouched and a retry recomputes the identical value from
//     the same (seed, partition) RNG stream — lineage recomputation in
//     Spark's terms.
//
//   - At most one attempt per task ever executes the task closure to
//     completion: attempts serialize on the slot's commit lock and check
//     the committed flag under it, so a speculative duplicate and a slow
//     original can never double-apply or interleave a slot write.
//
//   - Which attempt wins changes only *when* the slot value is produced,
//     never *what* it is. Retries, speculation and injected faults therefore
//     perturb scheduling and timing only; Collect and Graph.Write output is
//     byte-identical to a fault-free run as long as no task exhausts its
//     retry budget.
//
//   - Fault injection is a pure function of (plan seed, stage sequence,
//     task index, attempt number). Stage sequence numbers are assigned by
//     the single orchestrating goroutine, so a chaos run replays exactly,
//     independent of MaxParallel and host speed.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault-tolerance defaults applied by New to zero-valued Config fields.
const (
	// DefaultMaxTaskRetries is how many times a failed task attempt is
	// retried before the stage fails the cluster (Spark's
	// spark.task.maxFailures - 1).
	DefaultMaxTaskRetries = 3
	// DefaultRetryBackoff is the base delay before re-attempting a failed
	// task; the k-th retry waits about base*2^k with deterministic jitter.
	DefaultRetryBackoff = 2 * time.Millisecond
	// DefaultSpeculationQuantile is the straggler threshold: a running task
	// is duplicated once it exceeds this multiple of the median runtime of
	// the stage's completed tasks.
	DefaultSpeculationQuantile = 1.5
	// DefaultFaultDelay is the maximum injected straggler delay when a
	// FaultPlan leaves MaxDelay zero.
	DefaultFaultDelay = 2 * time.Millisecond
)

// speculationFloor is the smallest straggler threshold the monitor applies:
// duplicating microsecond tasks costs more than it saves.
const speculationFloor = 200 * time.Microsecond

// ErrInjected is the transient error a FaultPlan injects into task attempts;
// chaos tests match it with errors.Is through the retry path.
var ErrInjected = errors.New("cluster: injected transient fault")

// StageError is the typed, terminal failure of one engine stage: a task
// whose every attempt (original plus MaxTaskRetries retries) panicked or
// failed. It is surfaced by Cluster.Err, sticks for the cluster's lifetime,
// and carries enough context to identify the failing partition task.
type StageError struct {
	// Op is the engine operation of the failed stage ("map", "generate",
	// "distinct.merge", ...).
	Op string
	// Label is the caller scope active when the stage ran (see
	// Cluster.Scope), "/"-joined.
	Label string
	// Task is the failing partition-task index within the stage.
	Task int
	// Attempts is how many attempts the task consumed before giving up.
	Attempts int
	// Cause is the recovered panic value or the error of the last attempt.
	Cause any
}

// Error implements error.
func (e *StageError) Error() string {
	scope := e.Label
	if scope == "" {
		scope = "-"
	}
	return fmt.Sprintf("cluster: stage %s (scope %s) task %d failed after %d attempt(s): %v",
		e.Op, scope, e.Task, e.Attempts, e.Cause)
}

// Unwrap exposes an error Cause to errors.Is/As chains (e.g. ErrInjected).
func (e *StageError) Unwrap() error {
	if err, ok := e.Cause.(error); ok {
		return err
	}
	return nil
}

// taskPanic wraps a recovered panic value so it can travel the attempt
// error path; StageError unwraps it back to the raw value.
type taskPanic struct{ val any }

func (p *taskPanic) Error() string { return fmt.Sprintf("task panicked: %v", p.val) }

// FaultPlan deterministically injects faults into task attempts for chaos
// testing: each (stage, task, attempt) triple hashes to at most one fault —
// a panic, a transient error, or a straggler delay. The same plan on the
// same pipeline replays the exact same fault schedule, independent of
// MaxParallel, so chaos failures reproduce under a debugger.
type FaultPlan struct {
	// Seed keys the fault hash; two plans with different seeds fault
	// different task attempts.
	Seed uint64
	// PanicRate is the probability a task attempt panics before running.
	PanicRate float64
	// ErrorRate is the probability a task attempt fails with ErrInjected.
	ErrorRate float64
	// DelayRate is the probability a task attempt is delayed (a straggler),
	// exercising the speculation path.
	DelayRate float64
	// MaxDelay bounds injected straggler delays (0 means DefaultFaultDelay).
	MaxDelay time.Duration
	// MaxFaultyAttempts, when positive, stops injecting into a task once
	// its attempt number reaches it. Setting it at or below MaxTaskRetries
	// guarantees chaos runs converge: the final attempt always runs clean.
	MaxFaultyAttempts int
}

// NewFaultPlan builds a mixed plan from one total fault rate, split 40%
// panics, 40% transient errors, 20% straggler delays — the shape the
// -fault-rate CLI flags expose.
func NewFaultPlan(seed uint64, rate float64) *FaultPlan {
	return &FaultPlan{
		Seed:      seed,
		PanicRate: 0.4 * rate,
		ErrorRate: 0.4 * rate,
		DelayRate: 0.2 * rate,
	}
}

// validate checks the plan's rates at cluster construction.
func (p *FaultPlan) validate() error {
	for _, r := range []float64{p.PanicRate, p.ErrorRate, p.DelayRate} {
		if r < 0 || r != r {
			return fmt.Errorf("cluster: fault rates must be non-negative, got %+v", *p)
		}
	}
	if sum := p.PanicRate + p.ErrorRate + p.DelayRate; sum > 1 {
		return fmt.Errorf("cluster: fault rates sum to %.3f, must not exceed 1", sum)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("cluster: MaxDelay must be non-negative, got %v", p.MaxDelay)
	}
	return nil
}

type faultKind int

const (
	faultNone faultKind = iota
	faultPanic
	faultError
	faultDelay
)

// faultHash mixes the decision coordinates with SplitMix64 rounds.
func faultHash(seed, stage, task, attempt uint64) uint64 {
	z := seed
	for _, w := range [...]uint64{stage, task, attempt} {
		z += w + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// decide returns the fault (if any) for one task attempt.
func (p *FaultPlan) decide(stage uint64, task, attempt int) (faultKind, time.Duration) {
	if p.MaxFaultyAttempts > 0 && attempt >= p.MaxFaultyAttempts {
		return faultNone, 0
	}
	u := unitFloat(faultHash(p.Seed, stage, uint64(task), uint64(attempt)))
	switch {
	case u < p.PanicRate:
		return faultPanic, 0
	case u < p.PanicRate+p.ErrorRate:
		return faultError, 0
	case u < p.PanicRate+p.ErrorRate+p.DelayRate:
		maxD := p.MaxDelay
		if maxD <= 0 {
			maxD = DefaultFaultDelay
		}
		frac := unitFloat(faultHash(p.Seed^0x6a09e667f3bcc909, stage, uint64(task), uint64(attempt)))
		return faultDelay, time.Duration(frac * float64(maxD))
	}
	return faultNone, 0
}

// taskAttempt is one unit of worker work: which task, which attempt in its
// chain, and whether it is a speculative duplicate.
type taskAttempt struct {
	task        int
	attempt     int
	speculative bool
}

// taskSlot is the per-task commit state of a running stage.
type taskSlot struct {
	// mu serializes closure execution across attempts of this task; the
	// committed flag under it is the double-apply guard.
	mu        sync.Mutex
	committed bool

	done       atomic.Bool  // an attempt committed (lock-free fast check)
	startNS    atomic.Int64 // wall time the first attempt started; 0 = never started
	durNS      atomic.Int64 // winning attempt's closure wall time
	speculated atomic.Bool  // a duplicate has been launched (at most one)
}

// stageRun executes one stage's tasks with retries and speculation. It is
// created, driven and discarded by runStage.
type stageRun struct {
	c          *Cluster
	op, label  string
	seq        uint64 // deterministic stage sequence for fault decisions
	n          int
	task       func(int)
	remote     *RemoteStage // non-nil when the stage's tasks are remotable
	executor   TaskExecutor // non-nil when the cluster has a remote executor
	maxRetries int
	backoff    time.Duration
	faults     *FaultPlan

	slots []taskSlot
	// queue is buffered for the worst-case attempt count so enqueues never
	// block, even from retry timers firing after the stage ended.
	queue     chan taskAttempt
	stop      chan struct{} // closed when the stage is terminal
	stopOnce  sync.Once
	remaining atomic.Int64 // tasks not yet committed

	failMu  sync.Mutex
	failure *StageError

	// Counters folded into StageRecord/Metrics.
	attempts    atomic.Int64
	failures    atomic.Int64
	retries     atomic.Int64
	speculative atomic.Int64
	remoteRuns  atomic.Int64
}

func newStageRun(c *Cluster, op string, seq uint64, n int, task func(int), remote *RemoteStage) *stageRun {
	st := &stageRun{
		c:          c,
		op:         op,
		label:      c.currentLabel(),
		seq:        seq,
		n:          n,
		task:       task,
		remote:     remote,
		executor:   c.cfg.Executor,
		maxRetries: c.cfg.MaxTaskRetries,
		backoff:    c.cfg.RetryBackoff,
		faults:     c.cfg.Faults,
		slots:      make([]taskSlot, n),
		stop:       make(chan struct{}),
	}
	st.queue = make(chan taskAttempt, n*(st.maxRetries+2))
	st.remaining.Store(int64(n))
	return st
}

// run drives the stage to a terminal state: all tasks committed, a task out
// of retries (stage failure), or the cluster context cancelled. Workers come
// from the process-wide persistent pool (see pool.go) rather than being
// spawned per stage.
func (st *stageRun) run() {
	for i := 0; i < st.n; i++ {
		st.queue <- taskAttempt{task: i}
	}
	var ctxDone <-chan struct{} // nil channel blocks forever when no context
	if ctx := st.c.cfg.Context; ctx != nil {
		ctxDone = ctx.Done()
	}
	workers := st.c.cfg.MaxParallel
	if workers > st.n {
		workers = st.n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		sharedPool.submit(func() {
			defer wg.Done()
			for {
				select {
				case <-st.stop:
					return
				case <-ctxDone:
					return
				case att := <-st.queue:
					st.runAttempt(att)
				}
			}
		})
	}
	if st.c.cfg.Speculation && st.n > 1 {
		wg.Add(1)
		sharedPool.submit(func() {
			defer wg.Done()
			st.speculate(ctxDone)
		})
	}
	wg.Wait()
	// Unblock any retry timer that fires after the stage ended (its enqueue
	// falls into the buffered queue and is never drained — harmless).
	st.stopOnce.Do(func() { close(st.stop) })
}

// runAttempt executes one attempt and routes its outcome: commit, retry
// with backoff, or stage failure.
func (st *stageRun) runAttempt(att taskAttempt) {
	slot := &st.slots[att.task]
	if slot.done.Load() {
		return // another attempt already committed this task
	}
	st.attempts.Add(1)
	slot.startNS.CompareAndSwap(0, time.Now().UnixNano())
	err := st.execute(att, slot)
	if err == nil {
		return
	}
	st.failures.Add(1)
	if att.speculative {
		// Duplicates never retry and never fail the stage; only the original
		// attempt chain decides failure, which keeps whether a stage fails a
		// pure function of the fault plan rather than of scheduling.
		return
	}
	if att.attempt >= st.maxRetries {
		st.fail(att, err)
		return
	}
	st.retries.Add(1)
	next := taskAttempt{task: att.task, attempt: att.attempt + 1}
	delay := st.backoffFor(next)
	if delay <= 0 {
		st.enqueue(next)
		return
	}
	time.AfterFunc(delay, func() { st.enqueue(next) })
}

// enqueue adds an attempt without ever blocking; the queue is sized for the
// worst case, so a full queue means the stage is already terminal.
func (st *stageRun) enqueue(att taskAttempt) {
	select {
	case st.queue <- att:
	default:
	}
}

// execute runs one attempt end to end: fault injection, panic recovery, and
// the slot-commit gate. A nil return means the task is committed (by this
// attempt or an earlier winner).
func (st *stageRun) execute(att taskAttempt, slot *taskSlot) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &taskPanic{val: r}
		}
	}()
	if st.faults != nil && !att.speculative {
		switch kind, d := st.faults.decide(st.seq, att.task, att.attempt); kind {
		case faultPanic:
			panic(fmt.Sprintf("injected panic (stage %d task %d attempt %d)", st.seq, att.task, att.attempt))
		case faultError:
			return fmt.Errorf("%w (stage %d task %d attempt %d)", ErrInjected, st.seq, att.task, att.attempt)
		case faultDelay:
			time.Sleep(d) // straggle, then run normally
		}
	}
	if st.remote != nil && st.executor != nil {
		handled, err := st.executeRemote(att, slot)
		if handled {
			return err
		}
		// The executor declined (no live worker); fall through to the local
		// closure so output never depends on worker availability.
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.committed {
		return nil // lost the race to a duplicate or retry; output already in place
	}
	start := time.Now()
	st.task(att.task)
	slot.durNS.Store(int64(time.Since(start)))
	slot.committed = true
	slot.done.Store(true)
	if st.remaining.Add(-1) == 0 {
		st.stopOnce.Do(func() { close(st.stop) })
	}
	return nil
}

// executeRemote dispatches one attempt through the cluster's TaskExecutor.
// The RPC waits outside the commit lock — a speculative duplicate must not
// serialize behind a hung call to a dead worker — and only the Apply of the
// returned bytes runs under it, winning or discarding exactly like a local
// closure. handled is false when the executor declined (ErrNoRemote), in
// which case the caller falls back to local execution.
func (st *stageRun) executeRemote(att taskAttempt, slot *taskSlot) (handled bool, err error) {
	ctx := st.c.cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	result, err := st.executor.ExecRemote(ctx,
		StageInfo{Op: st.op, Label: st.label, Seq: st.seq},
		AttemptInfo{Task: att.task, Attempt: att.attempt, Speculative: att.speculative},
		st.remote.Kind,
		func() []byte { return st.remote.Payload(att.task) })
	if errors.Is(err, ErrNoRemote) {
		return false, nil
	}
	if err != nil {
		return true, err
	}
	st.remoteRuns.Add(1)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.committed {
		return true, nil // lost the commit race; the worker's bytes are discarded
	}
	if err := st.remote.Apply(att.task, result); err != nil {
		return true, err
	}
	// The recorded duration covers dispatch through apply, so the straggler
	// monitor sees remote tasks on the same clock as local ones.
	slot.durNS.Store(int64(time.Since(start)))
	slot.committed = true
	slot.done.Store(true)
	if st.remaining.Add(-1) == 0 {
		st.stopOnce.Do(func() { close(st.stop) })
	}
	return true, nil
}

// fail records the stage's terminal failure (first one wins) and stops the
// workers.
func (st *stageRun) fail(att taskAttempt, err error) {
	cause := any(err)
	var tp *taskPanic
	if errors.As(err, &tp) {
		cause = tp.val
	}
	st.failMu.Lock()
	if st.failure == nil {
		st.failure = &StageError{
			Op:       st.op,
			Label:    st.label,
			Task:     att.task,
			Attempts: att.attempt + 1,
			Cause:    cause,
		}
	}
	st.failMu.Unlock()
	st.stopOnce.Do(func() { close(st.stop) })
}

// backoffFor returns the deterministic jittered delay before an attempt:
// exponential in the attempt number, jittered into [0.5, 1.5) of the base by
// the fault hash so retry storms of parallel tasks decorrelate.
func (st *stageRun) backoffFor(att taskAttempt) time.Duration {
	base := st.backoff
	if base <= 0 {
		return 0
	}
	for i := 1; i < att.attempt && base < 250*time.Millisecond; i++ {
		base *= 2
	}
	if base > 250*time.Millisecond {
		base = 250 * time.Millisecond
	}
	frac := 0.5 + unitFloat(faultHash(0xb5297a4d3a2d9fe1, st.seq, uint64(att.task), uint64(att.attempt)))
	return time.Duration(float64(base) * frac)
}

// speculate is the straggler monitor: once at least half the stage's tasks
// have committed, any running task older than SpeculationQuantile times the
// median committed runtime is duplicated (once). Whichever attempt reaches
// the commit gate first wins; the loser observes the committed flag and
// discards itself.
func (st *stageRun) speculate(ctxDone <-chan struct{}) {
	quantile := st.c.cfg.SpeculationQuantile
	if quantile <= 0 {
		quantile = DefaultSpeculationQuantile
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-ctxDone:
			return
		case <-tick.C:
		}
		durs := make([]time.Duration, 0, st.n)
		for i := range st.slots {
			if st.slots[i].done.Load() {
				durs = append(durs, time.Duration(st.slots[i].durNS.Load()))
			}
		}
		if len(durs) == st.n {
			return
		}
		if len(durs) < (st.n+1)/2 {
			continue // not enough samples for a meaningful median yet
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		median := durs[len(durs)/2]
		threshold := time.Duration(quantile * float64(median))
		if threshold < speculationFloor {
			threshold = speculationFloor
		}
		now := time.Now().UnixNano()
		for i := range st.slots {
			s := &st.slots[i]
			if s.done.Load() || s.speculated.Load() {
				continue
			}
			started := s.startNS.Load()
			if started == 0 || time.Duration(now-started) <= threshold {
				continue // queued tasks gain nothing from a duplicate
			}
			if s.speculated.CompareAndSwap(false, true) {
				st.speculative.Add(1)
				st.enqueue(taskAttempt{task: i, speculative: true})
			}
		}
	}
}
