package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func seqN(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{PanicRate: -0.1},
		{PanicRate: 0.5, ErrorRate: 0.4, DelayRate: 0.2}, // sums to 1.1
		{MaxDelay: -time.Second},
	}
	for i, p := range bad {
		if _, err := New(Config{Nodes: 1, CoresPerNode: 1, Faults: &p}); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	good := NewFaultPlan(1, 0.2)
	if _, err := New(Config{Nodes: 1, CoresPerNode: 1, Faults: good}); err != nil {
		t.Errorf("NewFaultPlan(1, 0.2) rejected: %v", err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	p := NewFaultPlan(7, 0.5)
	for stage := uint64(1); stage <= 4; stage++ {
		for task := 0; task < 16; task++ {
			k1, d1 := p.decide(stage, task, 0)
			k2, d2 := p.decide(stage, task, 0)
			if k1 != k2 || d1 != d2 {
				t.Fatalf("decide(%d,%d,0) not stable: (%v,%v) vs (%v,%v)", stage, task, k1, d1, k2, d2)
			}
		}
	}
	// MaxFaultyAttempts silences injection from that attempt onward.
	p.MaxFaultyAttempts = 2
	for task := 0; task < 64; task++ {
		if k, _ := p.decide(1, task, 2); k != faultNone {
			t.Fatalf("attempt 2 still faulted task %d with MaxFaultyAttempts=2", task)
		}
	}
}

// TestRetriesRecoverInjectedFaults drives a map pipeline through a plan
// aggressive enough to fault most tasks at least once; retries must absorb
// every fault and the output must match the fault-free run exactly.
func TestRetriesRecoverInjectedFaults(t *testing.T) {
	clean := Collect(Map(Parallelize(Local(4), seqN(500), 8), func(x int) int { return x * x }))

	faults := &FaultPlan{Seed: 3, PanicRate: 0.3, ErrorRate: 0.3, MaxFaultyAttempts: 3}
	c := MustNew(Config{
		Nodes: 1, CoresPerNode: 4, MaxParallel: 4,
		MaxTaskRetries: 5, RetryBackoff: -1, // no sleeping in tests
		Faults: faults,
	})
	got := Collect(Map(Parallelize(c, seqN(500), 8), func(x int) int { return x * x }))
	if err := c.Err(); err != nil {
		t.Fatalf("cluster failed despite retry budget: %v", err)
	}
	if len(got) != len(clean) {
		t.Fatalf("chaos run produced %d elements, want %d", len(got), len(clean))
	}
	for i := range got {
		if got[i] != clean[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], clean[i])
		}
	}
	m := c.Metrics()
	if m.TaskFailures == 0 || m.TaskRetries == 0 {
		t.Fatalf("no faults observed under 60%% fault rate: %+v", m)
	}
}

// TestExhaustedRetriesFailTyped asserts the clean-failure contract: a task
// whose every attempt panics surfaces as *StageError from Err, later stages
// refuse to run, and the process never crashes.
func TestExhaustedRetriesFailTyped(t *testing.T) {
	c := MustNew(Config{
		Nodes: 1, CoresPerNode: 2, MaxParallel: 2,
		MaxTaskRetries: 2, RetryBackoff: -1,
	})
	defer c.Scope("doomed")()
	d := Map(Parallelize(c, seqN(40), 4), func(x int) int {
		if x == 17 {
			panic("poison element")
		}
		return x
	})
	_ = Collect(d)

	err := c.Err()
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("Err = %v (%T), want *StageError", err, err)
	}
	if se.Op != "map" {
		t.Errorf("Op = %q, want map", se.Op)
	}
	if se.Label != "doomed" {
		t.Errorf("Label = %q, want doomed", se.Label)
	}
	if se.Attempts != 3 { // original + 2 retries
		t.Errorf("Attempts = %d, want 3", se.Attempts)
	}
	if se.Cause != "poison element" {
		t.Errorf("Cause = %v, want recovered panic value", se.Cause)
	}
	if !strings.Contains(se.Error(), "map") || !strings.Contains(se.Error(), "poison element") {
		t.Errorf("Error() = %q lacks context", se.Error())
	}

	// Failure is sticky: subsequent stages no-op and Err stays the same.
	before := c.Metrics().Stages
	if got := Collect(Map(Parallelize(c, seqN(10), 2), func(x int) int { return x + 1 })); len(got) != 0 {
		t.Fatalf("post-failure stage produced %d elements", len(got))
	}
	if c.Metrics().Stages != before {
		t.Fatal("post-failure stage was recorded")
	}
	if c.Err() != err {
		t.Fatalf("failure not sticky: %v then %v", err, c.Err())
	}
}

// TestInjectedErrorUnwraps checks errors.Is reaches ErrInjected through the
// StageError chain when a transient fault exhausts the budget.
func TestInjectedErrorUnwraps(t *testing.T) {
	c := MustNew(Config{
		Nodes: 1, CoresPerNode: 1, MaxParallel: 1,
		MaxTaskRetries: -1, RetryBackoff: -1, // attempts are final
		Faults: &FaultPlan{Seed: 11, ErrorRate: 1},
	})
	_ = Collect(Map(Parallelize(c, seqN(4), 2), func(x int) int { return x }))
	if err := c.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v, want wrapped ErrInjected", err)
	}
}

// TestSerialPanicContained asserts driver-side serial sections fail the
// cluster typed instead of crashing.
func TestSerialPanicContained(t *testing.T) {
	c := Local(2)
	c.runSerial("merge", func() { panic("serial boom") })
	var se *StageError
	if err := c.Err(); !errors.As(err, &se) || se.Op != "merge" || se.Cause != "serial boom" {
		t.Fatalf("Err = %v, want *StageError{Op: merge}", err)
	}
	// A failed cluster skips later serial sections too.
	ran := false
	c.runSerial("after", func() { ran = true })
	if ran {
		t.Fatal("serial section ran on failed cluster")
	}
}

// TestSpeculationDuplicatesStragglers injects one long straggler into a
// stage of fast tasks and verifies a duplicate attempt is launched and the
// output stays correct.
func TestSpeculationDuplicatesStragglers(t *testing.T) {
	c := MustNew(Config{
		Nodes: 1, CoresPerNode: 4, MaxParallel: 4,
		Speculation: true, RetryBackoff: -1,
		// One guaranteed injected delay on task 0's first attempt only:
		// delay every attempt 0... but rate 1 would delay all tasks, so use
		// the plan only for the straggle and keep it short for the rest.
		Faults: &FaultPlan{Seed: 5, DelayRate: 0.1, MaxDelay: 50 * time.Millisecond, MaxFaultyAttempts: 1},
	})
	got := Collect(Map(Parallelize(c, seqN(64), 16), func(x int) int { return x + 1 }))
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if len(got) != 64 {
		t.Fatalf("got %d elements, want 64", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("element %d = %d, want %d", i, v, i+1)
		}
	}
	// Delay injection is probabilistic per (stage, task); with 10% over
	// 16 tasks × several stages a straggler is near-certain, but assert
	// only the invariant that speculation never corrupts output, and
	// report the observed duplicates for the log.
	t.Logf("speculative attempts: %d", c.Metrics().SpeculativeTasks)
}

// TestCancelledStageStatsExcludeUnstartedTasks is the satellite fix: tasks a
// cancelled worker never picked up must not appear as zero-duration samples
// in the stage stats, and Metrics.Tasks must count only executed tasks.
func TestCancelledStageStatsExcludeUnstartedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := MustNew(Config{
		Nodes: 1, CoresPerNode: 1, MaxParallel: 1,
		RecordStages: true, RetryBackoff: -1, Context: ctx,
	})
	ran := 0
	c.runStage(stageSpec{op: "test"}, 8, func(i int) {
		ran++
		time.Sleep(2 * time.Millisecond)
		if ran == 2 {
			cancel() // remaining tasks never start
		}
	})
	m := c.Metrics()
	if len(m.StageLog) != 1 {
		t.Fatalf("stage log = %+v", m.StageLog)
	}
	rec := m.StageLog[0]
	if rec.Tasks != 8 {
		t.Errorf("Tasks = %d, want stage size 8", rec.Tasks)
	}
	if m.Tasks != int64(ran) {
		t.Errorf("Metrics.Tasks = %d, want %d executed", m.Tasks, ran)
	}
	if rec.TaskMin < time.Millisecond {
		t.Errorf("TaskMin = %v includes unstarted tasks", rec.TaskMin)
	}
	if rec.Skew > 3 {
		t.Errorf("Skew = %.2f distorted by phantom zero-duration tasks", rec.Skew)
	}
}

// TestChaosMatrixByteIdenticalPipeline runs a shuffle-heavy pipeline
// (distinct + reduceByKey) across fault rates and parallelism and asserts
// the collected output never changes — the engine-level half of the
// determinism acceptance criterion (the generator-level half lives in
// internal/core).
func TestChaosMatrixByteIdenticalPipeline(t *testing.T) {
	run := func(rate float64, maxPar int) []int {
		cfg := Config{
			Nodes: 2, CoresPerNode: 2, MaxParallel: maxPar,
			MaxTaskRetries: 8, RetryBackoff: -1, Speculation: true,
		}
		if rate > 0 {
			cfg.Faults = NewFaultPlan(99, rate)
			cfg.Faults.MaxDelay = time.Millisecond
			cfg.Faults.MaxFaultyAttempts = 4
		}
		c := MustNew(cfg)
		data := Parallelize(c, seqN(3000), 0)
		dup := FlatMap(data, func(x int) []int { return []int{x % 997, x % 997} })
		distinct := Distinct(dup, func(x int) int { return x }, func(k int) uint64 { return uint64(k) * 0x9e3779b9 })
		squared := Map(distinct, func(x int) int { return x*x + 1 })
		out := Collect(squared)
		if err := c.Err(); err != nil {
			t.Fatalf("rate %.2f par %d failed: %v", rate, maxPar, err)
		}
		return out
	}
	want := run(0, 1)
	for _, rate := range []float64{0, 0.05, 0.2} {
		for _, par := range []int{1, 4} {
			got := run(rate, par)
			if len(got) != len(want) {
				t.Fatalf("rate %.2f par %d: %d elements, want %d", rate, par, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rate %.2f par %d: element %d = %d, want %d", rate, par, i, got[i], want[i])
				}
			}
		}
	}
}
