package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// tracedCluster builds a small cluster wired to a fresh tracer.
func tracedCluster(t *testing.T) (*Cluster, *Tracer) {
	t.Helper()
	tr := NewTracer()
	c := MustNew(Config{Nodes: 2, CoresPerNode: 2, DefaultPartitions: 8, Tracer: tr})
	return c, tr
}

// runTracedPipeline exercises every traced operation class once.
func runTracedPipeline(c *Cluster) {
	defer c.Scope("pipeline")()
	d := Parallelize(c, seq(200), 8)
	d = Map(d, func(x int) int { return x % 50 })
	d = Filter(d, func(x int) bool { return x%2 == 0 })
	d = Distinct(d, func(x int) int { return x }, func(k int) uint64 { return uint64(k) })
	kvs := Map(d, func(x int) KV[int, int] { return KV[int, int]{Key: x % 5, Val: x} })
	sums := ReduceByKey(kvs, func(k int) uint64 { return uint64(k) }, func(a, b int) int { return a + b })
	Collect(Coalesce(sums, 2))
}

func TestTracerRecordsSpans(t *testing.T) {
	c, tr := tracedCluster(t)
	runTracedPipeline(c)

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	ops := map[string]bool{}
	for _, s := range spans {
		if s.Op == "" {
			t.Errorf("span seq %d has empty op", s.Seq)
		}
		ops[s.Op] = true
		if s.Cluster != 1 {
			t.Errorf("span %q on lane %d, want 1", s.Op, s.Cluster)
		}
		if !s.Serial && s.Op != "shuffle.coord" && s.Label != "pipeline" {
			t.Errorf("span %q label = %q, want \"pipeline\"", s.Op, s.Label)
		}
	}
	for _, want := range []string{
		"map", "filter", "distinct.local", "distinct.merge",
		"reduceByKey.combine", "reduceByKey.merge", "shuffle.coord", "coalesce",
	} {
		if !ops[want] {
			t.Errorf("no span for op %q (got %v)", want, ops)
		}
	}
}

func TestTracerSpanStats(t *testing.T) {
	c, tr := tracedCluster(t)
	d := Parallelize(c, seq(1000), 8)
	Collect(Map(d, func(x int) int { return x * x }))

	var mapSpan *TraceSpan
	for i, s := range tr.Spans() {
		if s.Op == "map" {
			mapSpan = &tr.Spans()[i]
			break
		}
	}
	if mapSpan == nil {
		t.Fatal("no map span")
	}
	if mapSpan.Tasks != 8 {
		t.Errorf("tasks = %d, want 8", mapSpan.Tasks)
	}
	if mapSpan.TaskMin > mapSpan.TaskMean || mapSpan.TaskMean > mapSpan.TaskMax {
		t.Errorf("task stats not ordered: min %v mean %v max %v",
			mapSpan.TaskMin, mapSpan.TaskMean, mapSpan.TaskMax)
	}
	if mapSpan.Skew < 1 {
		t.Errorf("skew = %v, want >= 1", mapSpan.Skew)
	}
	if mapSpan.BytesIn <= 0 || mapSpan.BytesOut <= 0 {
		t.Errorf("bytes in/out = %d/%d, want positive", mapSpan.BytesIn, mapSpan.BytesOut)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c, tr := tracedCluster(t)
	runTracedPipeline(c)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	var meta, complete int
	for _, ev := range file.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required field: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Args["op"] == "" {
				t.Errorf("X event %q has no op arg", ev.Name)
			}
			if _, ok := ev.Args["virtual_span_us"]; !ok {
				t.Errorf("X event %q missing virtual_span_us arg", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("metadata events = %d, want >= 2", meta)
	}
	if complete != len(tr.Spans()) {
		t.Errorf("X events = %d, want %d (one per span)", complete, len(tr.Spans()))
	}
}

func TestWriteStageTable(t *testing.T) {
	c, tr := tracedCluster(t)
	runTracedPipeline(c)

	var buf bytes.Buffer
	if err := tr.WriteStageTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "cluster") {
		t.Errorf("table header = %q", lines[0])
	}
	if got, want := len(lines)-1, len(tr.Spans()); got != want {
		t.Errorf("table rows = %d, want %d", got, want)
	}
	if !strings.Contains(out, "reduceByKey.merge") {
		t.Errorf("table missing reduceByKey.merge row:\n%s", out)
	}
}

func TestTracerMultipleClusterLanes(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 2; i++ {
		c := MustNew(Config{Nodes: 1, CoresPerNode: 2, DefaultPartitions: 4, Tracer: tr})
		Collect(Map(Parallelize(c, seq(10), 2), func(x int) int { return x + 1 }))
	}
	lanes := map[int]bool{}
	for _, s := range tr.Spans() {
		lanes[s.Cluster] = true
	}
	if len(lanes) != 2 {
		t.Fatalf("lanes = %v, want 2 distinct", lanes)
	}
}

func TestTracerReset(t *testing.T) {
	c, tr := tracedCluster(t)
	Collect(Map(Parallelize(c, seq(10), 2), func(x int) int { return x }))
	if len(tr.Spans()) == 0 {
		t.Fatal("expected spans before reset")
	}
	tr.Reset()
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("spans after reset = %d", n)
	}
}

func TestScopeNesting(t *testing.T) {
	c, tr := tracedCluster(t)
	end := c.Scope("outer")
	inner := c.Scope("inner")
	Collect(Map(Parallelize(c, seq(10), 2), func(x int) int { return x }))
	inner()
	end()
	Collect(Map(Parallelize(c, seq(10), 2), func(x int) int { return x }))

	var nested, bare bool
	for _, s := range tr.Spans() {
		if s.Op != "map" {
			continue
		}
		switch s.Label {
		case "outer/inner":
			nested = true
		case "":
			bare = true
		}
	}
	if !nested {
		t.Error("no span labeled outer/inner")
	}
	if !bare {
		t.Error("no unlabeled span after scopes popped")
	}
}

// TestTracerConcurrentClusterAppends drives several clusters into one shared
// tracer from concurrent goroutines — the csbd serving pattern, where every
// simultaneous job owns a cluster but all stream spans into the daemon's
// tracer. Run under -race this is the data-race check for Tracer.add/Spans.
func TestTracerConcurrentClusterAppends(t *testing.T) {
	tr := NewTracer()
	const jobs = 8
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := MustNew(Config{Nodes: 1, CoresPerNode: 2, DefaultPartitions: 4, Tracer: tr})
			runTracedPipeline(c)
		}()
	}
	// Readers race the writers: snapshotting and exporting mid-run must be
	// safe, exactly like a /metrics scrape during active jobs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Spans()
			var buf bytes.Buffer
			tr.WriteChromeTrace(&buf)
		}
	}()
	wg.Wait()
	<-done

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	lanes := map[int]bool{}
	for _, s := range spans {
		lanes[s.Cluster] = true
	}
	if len(lanes) != jobs {
		t.Fatalf("spans cover %d lanes, want %d", len(lanes), jobs)
	}
}
