package cluster

// executor.go is the pluggable task-execution seam of the engine. Every
// stage attempt historically ran its closure on the local goroutine pool;
// this file extracts the decision "where does this attempt execute" into a
// TaskExecutor so a distributed runtime (internal/dist) can dispatch
// remotable stages to worker processes while the commit-slot machinery of
// fault.go — at-most-once commits, retries, speculation — stays exactly the
// same for both paths. A cluster without an Executor behaves as before.

import (
	"context"
	"errors"
)

// ErrNoRemote is returned by a TaskExecutor to decline a remote dispatch
// (for example when no worker is live); the attempt then falls back to the
// local closure instead of consuming a retry.
var ErrNoRemote = errors.New("cluster: no remote execution available")

// StageInfo identifies one engine stage to a TaskExecutor. Seq is the
// deterministic stage sequence number assigned by the orchestrating
// goroutine, so executors can route on it reproducibly.
type StageInfo struct {
	Op    string
	Label string
	Seq   uint64
}

// AttemptInfo identifies one task attempt within a stage.
type AttemptInfo struct {
	Task        int
	Attempt     int
	Speculative bool
}

// RemoteStage describes how a stage's tasks can execute in another process:
// Payload renders task i as self-contained bytes (a registered task kind
// recomputes it anywhere — see internal/dist/task), and Apply installs a
// worker's result bytes as task i's output. Apply runs under the task's
// commit lock, so it is the remote path's equivalent of the local closure:
// it must be deterministic and must produce exactly the elements the local
// closure would.
type RemoteStage struct {
	// Kind names the registered remote computation.
	Kind string
	// Payload renders one task as self-contained input bytes.
	Payload func(task int) []byte
	// Apply installs a worker's result bytes as the task's output.
	Apply func(task int, result []byte) error
}

// TaskExecutor decides where remotable task attempts run. Implementations
// must be safe for concurrent use; attempts of one stage dispatch in
// parallel.
type TaskExecutor interface {
	// ExecRemote dispatches one remotable task attempt and returns its
	// result bytes. payload is a thunk so declining executors never pay the
	// serialization. Returning ErrNoRemote (wrapped or not) makes the
	// attempt run its local closure instead — it is not a failure. Any other
	// error fails the attempt and consumes a retry, which is how a lost
	// worker's in-flight tasks re-disperse through the engine's existing
	// retry/backoff budget.
	ExecRemote(ctx context.Context, stage StageInfo, att AttemptInfo, kind string, payload func() []byte) ([]byte, error)
}
