package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"
)

// Tracer collects stage spans from one or more clusters onto a single real
// timeline, for post-mortem analysis of generator pipelines. Attach it via
// Config.Tracer; every stage a cluster executes (parallel stages, serial
// merges, shuffle-coordination charges) becomes one span. Export with
// WriteChromeTrace (chrome://tracing / Perfetto "trace event" JSON) or
// WriteStageTable (plain text).
//
// A Tracer is safe for concurrent use; clusters registered on it appear as
// separate trace lanes (threads) so sweep harnesses that build a fresh
// cluster per configuration keep their runs distinguishable.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time
	clusters int
	spans    []TraceSpan
}

// TraceSpan is one recorded stage span, placed on the tracer's timeline.
type TraceSpan struct {
	Cluster int           // lane id of the cluster that executed the stage
	Start   time.Duration // offset of the stage start from the tracer's epoch
	StageRecord
}

// NewTracer returns an empty tracer whose timeline starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// register assigns a trace lane to a cluster.
func (t *Tracer) register() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clusters++
	return t.clusters
}

// add appends one span; start is the stage's host start time.
func (t *Tracer) add(cluster int, start time.Time, rec StageRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, TraceSpan{Cluster: cluster, Start: start.Sub(t.epoch), StageRecord: rec})
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Tracer) Spans() []TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceSpan(nil), t.spans...)
}

// Reset drops all recorded spans (lane ids keep advancing).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// traceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`            // microseconds
	Dur  *int64         `json:"dur,omitempty"` // required on "X" events, even when 0
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of a trace, accepted by chrome://tracing
// and Perfetto.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// spanName is the display name of a span: the caller label plus operation.
func spanName(s TraceSpan) string {
	if s.Label == "" {
		return s.Op
	}
	return s.Label + " " + s.Op
}

// WriteChromeTrace serializes the recorded spans as Chrome trace-event JSON.
// Spans are "X" (complete) events on the real timeline: ts/dur are host
// wall-clock microseconds; the virtual-time accounting (makespan, summed
// work) rides along in args so real and virtual cost can be compared span
// by span. Each cluster is one thread lane.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]traceEvent, 0, len(spans)+1+t.laneCount())
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "csb cluster engine"},
	})
	seen := map[int]bool{}
	for _, s := range spans {
		if !seen[s.Cluster] {
			seen[s.Cluster] = true
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: s.Cluster,
				Args: map[string]any{"name": fmt.Sprintf("cluster %d", s.Cluster)},
			})
		}
		cat := "stage"
		if s.Serial {
			cat = "serial"
		}
		dur := s.Real.Microseconds()
		events = append(events, traceEvent{
			Name: spanName(s),
			Cat:  cat,
			Ph:   "X",
			Ts:   s.Start.Microseconds(),
			Dur:  &dur,
			Pid:  0,
			Tid:  s.Cluster,
			Args: map[string]any{
				"seq":             s.Seq,
				"op":              s.Op,
				"label":           s.Label,
				"tasks":           s.Tasks,
				"serial":          s.Serial,
				"work_us":         s.Work.Microseconds(),
				"virtual_span_us": s.Makespan.Microseconds(),
				"real_us":         s.Real.Microseconds(),
				"task_min_us":     s.TaskMin.Microseconds(),
				"task_max_us":     s.TaskMax.Microseconds(),
				"task_mean_us":    s.TaskMean.Microseconds(),
				"skew":            s.Skew,
				"bytes_in":        s.BytesIn,
				"bytes_out":       s.BytesOut,
				"attempts":        s.Attempts,
				"retries":         s.Retries,
				"speculative":     s.Speculative,
				"failed_attempts": s.FailedAttempts,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// laneCount returns how many lanes have been registered so far.
func (t *Tracer) laneCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clusters
}

// WriteStageTable renders the recorded spans as an aligned plain-text table,
// one row per stage, suitable for eyeballing where a pipeline's time and
// data went.
func (t *Tracer) WriteStageTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "cluster\tseq\tlabel\top\ttasks\treal\twork\tvspan\tskew\tin_bytes\tout_bytes\tattempts\tretries\tspec")
	for _, s := range t.Spans() {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%v\t%v\t%v\t%.2f\t%d\t%d\t%d\t%d\t%d\n",
			s.Cluster, s.Seq, s.Label, s.Op, s.Tasks,
			s.Real.Round(time.Microsecond), s.Work.Round(time.Microsecond),
			s.Makespan.Round(time.Microsecond), s.Skew, s.BytesIn, s.BytesOut,
			s.Attempts, s.Retries, s.Speculative)
	}
	return tw.Flush()
}
