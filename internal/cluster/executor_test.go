package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

// fakeExecutor runs payloads through fn, like a worker would, optionally
// failing the first call per task to exercise the retry path.
type fakeExecutor struct {
	fn       func(kind string, payload []byte) ([]byte, error)
	calls    atomic.Int64
	declined atomic.Int64
	failer   func(att AttemptInfo) error // non-nil error fails the attempt
}

func (f *fakeExecutor) ExecRemote(ctx context.Context, stage StageInfo, att AttemptInfo, kind string, payload func() []byte) ([]byte, error) {
	f.calls.Add(1)
	if f.failer != nil {
		if err := f.failer(att); err != nil {
			if errors.Is(err, ErrNoRemote) {
				f.declined.Add(1)
			}
			return nil, err
		}
	}
	return f.fn(kind, payload())
}

func encodeInts(xs []int) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.BigEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

func decodeInts(b []byte) ([]int, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("ragged int payload (%d bytes)", len(b))
	}
	out := make([]int, len(b)/8)
	for i := range out {
		out[i] = int(binary.BigEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// doubler is the "worker side" of the test kind: decode, double, encode.
func doubler(kind string, payload []byte) ([]byte, error) {
	xs, err := decodeInts(payload)
	if err != nil {
		return nil, err
	}
	for i := range xs {
		xs[i] *= 2
	}
	return encodeInts(xs), nil
}

func remoteDoubled(c *Cluster, n int) *Dataset[int] {
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	ds := Parallelize(c, in, 8)
	return MapPartitionsRemotable(ds, "test.double",
		func(part int, xs []int) []int {
			out := make([]int, len(xs))
			for i, x := range xs {
				out[i] = 2 * x
			}
			return out
		},
		func(part int, xs []int) []byte { return encodeInts(xs) },
		decodeInts)
}

func wantDoubled(n int) []int {
	want := make([]int, n)
	for i := range want {
		want[i] = 2 * i
	}
	return want
}

func checkInts(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestExecutorRunsRemotableStage(t *testing.T) {
	ex := &fakeExecutor{fn: doubler}
	c := MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: ex})
	got := Collect(remoteDoubled(c, 100))
	checkInts(t, got, wantDoubled(100))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if ex.calls.Load() == 0 {
		t.Fatal("executor was never called")
	}
	if rt := c.Metrics().RemoteTasks; rt != 8 {
		t.Fatalf("RemoteTasks = %d, want 8", rt)
	}
}

func TestExecutorDeclineFallsBackLocally(t *testing.T) {
	ex := &fakeExecutor{
		fn:     doubler,
		failer: func(att AttemptInfo) error { return ErrNoRemote },
	}
	c := MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: ex})
	got := Collect(remoteDoubled(c, 100))
	checkInts(t, got, wantDoubled(100))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if rt := c.Metrics().RemoteTasks; rt != 0 {
		t.Fatalf("RemoteTasks = %d, want 0 (all declined)", rt)
	}
	// Declining must not burn the retry budget: zero retries recorded.
	if r := c.Metrics().TaskRetries; r != 0 {
		t.Fatalf("TaskRetries = %d, want 0", r)
	}
}

func TestExecutorErrorConsumesRetryThenRecovers(t *testing.T) {
	// Fail every first attempt like a mid-stage worker loss; the engine's
	// retry budget must re-dispatch and the output must be unchanged.
	ex := &fakeExecutor{
		fn: doubler,
		failer: func(att AttemptInfo) error {
			if att.Attempt == 0 {
				return errors.New("worker lost")
			}
			return nil
		},
	}
	c := MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: ex})
	got := Collect(remoteDoubled(c, 100))
	checkInts(t, got, wantDoubled(100))
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.TaskRetries == 0 {
		t.Fatal("expected retries after executor failures")
	}
	if m.RemoteTasks != 8 {
		t.Fatalf("RemoteTasks = %d, want 8 (every task recovered remotely)", m.RemoteTasks)
	}
}

func TestExecutorDoesNotChangeBytes(t *testing.T) {
	// The determinism contract: local, remote and flaky-remote execution all
	// commit identical values in identical order.
	local := Collect(remoteDoubled(MustNew(Config{Nodes: 1, CoresPerNode: 4}), 500))
	remote := Collect(remoteDoubled(MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: &fakeExecutor{fn: doubler}}), 500))
	flaky := Collect(remoteDoubled(MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: &fakeExecutor{
		fn: doubler,
		failer: func(att AttemptInfo) error {
			if att.Attempt == 0 && att.Task%3 == 0 {
				return errors.New("worker lost")
			}
			if att.Task%5 == 0 {
				return ErrNoRemote
			}
			return nil
		},
	}}), 500))
	checkInts(t, remote, local)
	checkInts(t, flaky, local)
}

func TestGenerateRemotableMatchesGenerate(t *testing.T) {
	// Payload carries (seed, stream, count); the "worker" re-derives the
	// partition RNG exactly like Generate does.
	runKind := func(kind string, payload []byte) ([]byte, error) {
		if len(payload) != 24 {
			return nil, fmt.Errorf("bad gen payload (%d bytes)", len(payload))
		}
		seed := binary.BigEndian.Uint64(payload[0:])
		stream := binary.BigEndian.Uint64(payload[8:])
		count := int64(binary.BigEndian.Uint64(payload[16:]))
		rng := DeriveRNG(seed, stream)
		out := make([]byte, 0, 8*count)
		var buf [8]byte
		for i := int64(0); i < count; i++ {
			binary.BigEndian.PutUint64(buf[:], rng.Uint64())
			out = append(out, buf[:]...)
		}
		return out, nil
	}
	build := func(ex TaskExecutor) []uint64 {
		c := MustNew(Config{Nodes: 1, CoresPerNode: 4, Executor: ex})
		ds := GenerateRemotable(c, 1000, 8, 42, "test.gen",
			func(rng *rand.Rand, emit func(uint64), count int64) {
				for i := int64(0); i < count; i++ {
					emit(rng.Uint64())
				}
			},
			func(part int, seed uint64, count int64) []byte {
				b := make([]byte, 24)
				binary.BigEndian.PutUint64(b[0:], seed)
				binary.BigEndian.PutUint64(b[8:], uint64(part))
				binary.BigEndian.PutUint64(b[16:], uint64(count))
				return b
			},
			func(result []byte) ([]uint64, error) {
				if len(result)%8 != 0 {
					return nil, fmt.Errorf("ragged result")
				}
				out := make([]uint64, len(result)/8)
				for i := range out {
					out[i] = binary.BigEndian.Uint64(result[8*i:])
				}
				return out, nil
			})
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return Collect(ds)
	}
	local := build(nil)
	remote := build(&fakeExecutor{fn: runKind})
	if len(local) != 1000 || len(remote) != 1000 {
		t.Fatalf("lengths %d/%d, want 1000", len(local), len(remote))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("value %d differs: %d vs %d", i, local[i], remote[i])
		}
	}
}
