// Package ba implements the Barabási-Albert family of scale-free graph
// generators: the classic sequential model (growth + preferential attachment
// with explicit attachment probabilities) and the edge-list parallel variant
// the paper builds PGPBA on, where preferential attachment is realized in
// constant time by sampling the edge list uniformly and picking one endpoint
// of the sampled edge — a vertex appears in the edge list once per incident
// edge, so the two-stage sampling is exactly degree-proportional.
package ba

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"csb/internal/graph"
)

// Classic generates an n-vertex BA graph where each new vertex attaches m
// edges to existing vertices with probability proportional to their degree.
// This is the O(n*m) textbook algorithm kept as the ablation baseline; it
// recomputes nothing thanks to the repeated-endpoint target list, but it is
// inherently sequential (each vertex depends on the previous attachment).
func Classic(n int64, m int, seed uint64) (*graph.Graph, error) {
	if m < 1 {
		return nil, errors.New("ba: m must be >= 1")
	}
	if n < int64(m)+1 {
		return nil, fmt.Errorf("ba: n must exceed m (n=%d, m=%d)", n, m)
	}
	rng := rand.New(rand.NewPCG(seed, 0xba))
	g := graph.NewWithCapacity(n, n*int64(m))
	// Seed: a ring over the first m+1 vertices so every vertex has degree.
	g.AddVertices(0) // vertices pre-allocated by New; nothing to do
	// Attachment pool: one entry per edge endpoint.
	pool := make([]graph.VertexID, 0, 2*n*int64(m))
	m0 := int64(m) + 1
	for i := int64(0); i < m0; i++ {
		e := graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % m0)}
		g.AddEdge(e)
		pool = append(pool, e.Src, e.Dst)
	}
	for v := m0; v < n; v++ {
		// Select m distinct targets degree-proportionally, keeping
		// selection order so runs are reproducible.
		seen := make(map[graph.VertexID]struct{}, m)
		targets := make([]graph.VertexID, 0, m)
		for len(targets) < m {
			t := pool[rng.IntN(len(pool))]
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			targets = append(targets, t)
		}
		for _, t := range targets {
			g.AddEdge(graph.Edge{Src: graph.VertexID(v), Dst: t})
			pool = append(pool, graph.VertexID(v), t)
		}
	}
	return g, nil
}

// GrowConfig parameterizes EdgeListGrow.
type GrowConfig struct {
	// TargetEdges is the desired number of edges in the grown graph.
	TargetEdges int64
	// Fraction is the ratio of newly added vertices to current edges per
	// round (the paper's granularity parameter). Each round samples
	// Fraction*|E| edges and adds one new vertex per sampled edge.
	Fraction float64
	// OutPerVertex is how many edges each new vertex contributes toward its
	// attachment target (1 reproduces the unlabeled structural baseline).
	OutPerVertex int
	// Seed drives the deterministic RNG.
	Seed uint64
}

// EdgeListGrow grows seed to cfg.TargetEdges edges using the two-stage
// edge-list preferential attachment. It returns a new graph; seed is not
// modified. This is the structural core that PGPBA extends with property
// synthesis and in/out-degree distributions.
func EdgeListGrow(seed *graph.Graph, cfg GrowConfig) (*graph.Graph, error) {
	if seed.NumEdges() == 0 {
		return nil, errors.New("ba: seed graph has no edges")
	}
	if cfg.TargetEdges <= seed.NumEdges() {
		return nil, fmt.Errorf("ba: target %d must exceed seed edges %d", cfg.TargetEdges, seed.NumEdges())
	}
	if cfg.Fraction <= 0 {
		return nil, errors.New("ba: fraction must be positive")
	}
	if cfg.OutPerVertex < 1 {
		cfg.OutPerVertex = 1
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xba11))
	g := seed.Clone()
	// The round's new edges accumulate in a pooled columnar batch: sampling
	// reads only the two endpoint columns of the graph's store, and the batch
	// is appended column-wise — no per-round []Edge materialization.
	nb := graph.GetBatch(0)
	defer graph.PutBatch(nb)
	for g.NumEdges() < cfg.TargetEdges {
		cols := g.Cols()
		n := cols.Len()
		k := int64(cfg.Fraction * float64(n))
		if k < 1 {
			k = 1
		}
		if rem := cfg.TargetEdges - g.NumEdges(); k*int64(cfg.OutPerVertex) > rem {
			k = (rem + int64(cfg.OutPerVertex) - 1) / int64(cfg.OutPerVertex)
		}
		first := g.AddVertices(k)
		nb.Reset()
		nb.Grow(int(k) * cfg.OutPerVertex)
		for i := int64(0); i < k; i++ {
			// Stage 1: uniform edge sample; stage 2: random endpoint.
			s := rng.IntN(n)
			dest := cols.SrcID(s)
			if rng.IntN(2) == 1 {
				dest = cols.DstID(s)
			}
			nv := first + graph.VertexID(i)
			for j := 0; j < cfg.OutPerVertex; j++ {
				nb.Append(graph.Edge{Src: nv, Dst: dest})
			}
		}
		if err := g.AppendBatch(nb); err != nil {
			return nil, err
		}
	}
	return g, nil
}
