package ba

import (
	"testing"

	"csb/internal/graph"
	"csb/internal/stats"
)

func TestClassicSizes(t *testing.T) {
	g, err := Classic(1000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
	// Ring of m+1=4 edges + (1000-4) vertices * 3 edges.
	want := int64(4 + 996*3)
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClassicValidation(t *testing.T) {
	if _, err := Classic(10, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Classic(3, 3, 1); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestClassicDeterministic(t *testing.T) {
	a, _ := Classic(200, 2, 7)
	b, _ := Classic(200, 2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestClassicScaleFree(t *testing.T) {
	g, err := Classic(20000, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLaw(g.Degrees(), 6)
	if err != nil {
		t.Fatal(err)
	}
	// BA's theoretical exponent is 3; the MLE over a finite graph lands
	// nearby.
	if fit.Alpha < 2.2 || fit.Alpha > 3.8 {
		t.Fatalf("degree exponent = %g, want ~3", fit.Alpha)
	}
}

func TestClassicDistinctTargets(t *testing.T) {
	// Each new vertex must attach to m distinct targets.
	g, err := Classic(500, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	perSrc := map[graph.VertexID]map[graph.VertexID]int{}
	for _, e := range g.EdgeSlice() {
		if perSrc[e.Src] == nil {
			perSrc[e.Src] = map[graph.VertexID]int{}
		}
		perSrc[e.Src][e.Dst]++
	}
	for src, dsts := range perSrc {
		if int64(src) < 5 {
			continue // ring seed
		}
		for dst, c := range dsts {
			if c > 1 {
				t.Fatalf("vertex %d attached %d times to %d", src, c, dst)
			}
		}
	}
}

func seedGraph() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2})
	g.AddEdge(graph.Edge{Src: 2, Dst: 3})
	g.AddEdge(graph.Edge{Src: 3, Dst: 0})
	return g
}

func TestEdgeListGrowReachesTarget(t *testing.T) {
	g, err := EdgeListGrow(seedGraph(), GrowConfig{TargetEdges: 1000, Fraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1000 {
		t.Fatalf("edges = %d, want exactly 1000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every grown vertex got OutPerVertex=1 edge, so vertices grew by
	// edges added.
	if g.NumVertices() != 4+996 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
}

func TestEdgeListGrowValidation(t *testing.T) {
	if _, err := EdgeListGrow(graph.New(5), GrowConfig{TargetEdges: 10, Fraction: 0.5}); err == nil {
		t.Error("edgeless seed accepted")
	}
	if _, err := EdgeListGrow(seedGraph(), GrowConfig{TargetEdges: 4, Fraction: 0.5}); err == nil {
		t.Error("target <= seed accepted")
	}
	if _, err := EdgeListGrow(seedGraph(), GrowConfig{TargetEdges: 10, Fraction: 0}); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestEdgeListGrowDoesNotMutateSeed(t *testing.T) {
	s := seedGraph()
	if _, err := EdgeListGrow(s, GrowConfig{TargetEdges: 100, Fraction: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 4 || s.NumVertices() != 4 {
		t.Fatal("seed mutated")
	}
}

func TestEdgeListGrowPreferentialAttachment(t *testing.T) {
	// Start from a star: vertex 0 has huge degree. Grown vertices must
	// attach to 0 far more often than to any single leaf.
	g := graph.New(11)
	for i := int64(1); i <= 10; i++ {
		g.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 0})
	}
	grown, err := EdgeListGrow(g, GrowConfig{TargetEdges: 5000, Fraction: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	deg := grown.Degrees()
	if deg[0] < 3*deg[1] {
		t.Fatalf("hub degree %d not dominant over leaf %d", deg[0], deg[1])
	}
}

func TestEdgeListGrowOutPerVertex(t *testing.T) {
	g, err := EdgeListGrow(seedGraph(), GrowConfig{TargetEdges: 100, Fraction: 0.5, OutPerVertex: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 100 || g.NumEdges() > 102 {
		t.Fatalf("edges = %d, want ~100 (may overshoot by <OutPerVertex)", g.NumEdges())
	}
	// New vertices have out-degree 3 (except possibly the last batch).
	out := g.OutDegrees()
	three := 0
	for v := int64(4); v < g.NumVertices(); v++ {
		if out[v] == 3 {
			three++
		}
	}
	if three == 0 {
		t.Fatal("no vertex with out-degree 3")
	}
}

func TestEdgeListGrowScaleFree(t *testing.T) {
	g, err := EdgeListGrow(seedGraph(), GrowConfig{TargetEdges: 30000, Fraction: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := stats.SummarizeInt(g.Degrees())
	if s.Max < 20*s.Median {
		t.Fatalf("no heavy tail: max %g median %g", s.Max, s.Median)
	}
}
