package core

import (
	"errors"
	"fmt"
	"math"

	"csb/internal/cluster"
	"csb/internal/graph"
)

// Generator is the shared contract of the two data generators.
type Generator interface {
	// Generate grows the analyzed seed to a synthetic property graph with
	// at least desiredEdges edges (probabilistic algorithms may overshoot
	// slightly, as the paper notes in Section V).
	Generate(seed *Seed, desiredEdges int64) (*graph.Graph, error)
	// Name identifies the generator in reports.
	Name() string
}

// PGPBA is the Property-Graph Parallel Barabási-Albert generator
// (Figure 2). Each round samples fraction*|E| edges from the current edge
// list (stage one of the two-stage preferential attachment), creates one
// new vertex per sampled edge, attaches it to a random endpoint of its
// sampled edge (stage two), and creates out- and in-edges between the new
// vertex and its destination according to the seed's out- and in-degree
// distributions. Finally every edge receives Netflow attributes sampled
// from the seed's property model.
type PGPBA struct {
	// Fraction is the ratio of newly added vertices to current edges per
	// round. Values above 1 sample with replacement (the paper's Figure 9
	// uses fraction = 2 to match PGSK's doubling).
	Fraction float64
	// Seed drives the deterministic RNG.
	Seed uint64
	// Cluster executes the Map-Reduce stages (nil means a local cluster).
	Cluster *cluster.Cluster
	// SkipProperties suppresses the property-synthesis pass; used by the
	// Figure 10 overhead measurement.
	SkipProperties bool
	// IndependentProps samples attributes without the IN_BYTES
	// conditioning (ablation).
	IndependentProps bool
	// SpreadAttachment is a design-space ablation of Figure 2: instead of
	// connecting all of a new vertex's out- and in-edges to the single
	// destination of its sampled edge (the paper's lines 10-11), each edge
	// re-samples its own destination from the sampled edge list. This
	// matches classic BA more closely and reduces hub amplification at the
	// cost of one extra sample per edge.
	SpreadAttachment bool
}

// Name implements Generator.
func (p *PGPBA) Name() string { return "PGPBA" }

// Generate implements Generator, following Figure 2 line by line on the
// cluster substrate.
func (p *PGPBA) Generate(seed *Seed, desiredEdges int64) (*graph.Graph, error) {
	if seed == nil || seed.Graph == nil || seed.Graph.NumEdges() == 0 {
		return nil, errors.New("pgpba: empty seed")
	}
	// NaN fails every comparison, so "<= 0" alone would let it through and
	// the growth loop would sample zero edges forever.
	if !(p.Fraction > 0) || math.IsInf(p.Fraction, 0) {
		return nil, fmt.Errorf("pgpba: fraction must be positive and finite, got %v", p.Fraction)
	}
	if desiredEdges <= seed.Graph.NumEdges() {
		return nil, fmt.Errorf("pgpba: desired size %d must exceed seed size %d",
			desiredEdges, seed.Graph.NumEdges())
	}
	c := p.Cluster
	if c == nil {
		c = cluster.Local(0)
	}
	defer c.Scope("pgpba")()

	// G' <- G (line 1). The seed's columns stream straight into partition
	// storage; the seed graph is never aliased or copied wholesale.
	edges := cluster.ParallelizeEdges(c, seed.Graph.Cols(), 0)
	numVertices := seed.Graph.NumVertices()
	round := uint64(0)

	// Expected edges added per sampled edge: one new vertex attaching with
	// out- plus in-degree samples. Used to shrink the final round so the
	// output lands near desired_size instead of overshooting by a full
	// round.
	perVertex := seed.OutDegree.Mean() + seed.InDegree.Mean()

	// while |E'| < desired_size (line 2).
	for {
		// Cancellation boundary: a cancelled job stops between rounds
		// instead of growing to completion.
		if err := c.Err(); err != nil {
			return nil, err
		}
		have := edges.Count()
		if have >= desiredEdges {
			break
		}
		round++
		endRound := c.Scope(fmt.Sprintf("round%d", round))
		fraction := p.Fraction
		if expect := fraction * float64(have) * perVertex; expect > float64(desiredEdges-have) {
			fraction = float64(desiredEdges-have) / (float64(have) * perVertex)
			if fraction*float64(have) < 1 {
				fraction = 1 / float64(have) // keep expecting >= 1 sample
			}
		}
		// Line 3: sample the edge list. Stage one of the preferential
		// attachment: an edge is sampled with probability proportional to
		// nothing but its presence, and a vertex appears once per incident
		// edge, so endpoint frequency is degree-proportional.
		sampled := sampleWithReplacement(edges, fraction, p.Seed^round*0x9e3779b97f4a7c15)
		nNew := sampled.Count()
		if nNew == 0 {
			endRound()
			continue
		}
		// Lines 4-5: create empty vertices, one per sampled edge, with
		// globally unique contiguous IDs handed out per partition.
		firstID := numVertices
		numVertices += nNew
		offsets := partitionOffsets(sampled)

		// Lines 6-13: per sampled edge, pick the destination vertex and
		// create the out- and in-edges.
		inDeg, outDeg := seed.InDegree, seed.OutDegree
		newEdges := cluster.MapPartitions(sampled, func(part int, es []graph.Edge) []graph.Edge {
			rng := cluster.DeriveRNG(p.Seed^(round*0x51ed), uint64(part))
			out := make([]graph.Edge, 0, 2*len(es))
			pickDest := func(e graph.Edge) graph.VertexID {
				// Line 7: random endpoint of a sampled edge (stage two of
				// the preferential attachment).
				if rng.IntN(2) == 1 {
					return e.Dst
				}
				return e.Src
			}
			for i, e := range es {
				newV := graph.VertexID(firstID + offsets[part] + int64(i))
				dest := pickDest(e)
				// Lines 8-9: degree samples.
				nOut := outDeg.Sample(rng)
				nIn := inDeg.Sample(rng)
				// Lines 10-12: edge creation. The paper's variant reuses
				// one destination for every edge; the spread ablation
				// re-samples per edge.
				for j := int64(0); j < nOut; j++ {
					d := dest
					if p.SpreadAttachment {
						d = pickDest(es[rng.IntN(len(es))])
					}
					out = append(out, graph.Edge{Src: newV, Dst: d})
				}
				for j := int64(0); j < nIn; j++ {
					d := dest
					if p.SpreadAttachment {
						d = pickDest(es[rng.IntN(len(es))])
					}
					out = append(out, graph.Edge{Src: d, Dst: newV})
				}
			}
			return out
		})
		edges = cluster.Union(edges, newEdges)
		// Union grows the partition count every round; coalesce once it
		// exceeds a few times the cluster's tuned partitioning so per-task
		// overhead stays amortized.
		if limit := c.Config().DefaultPartitions; edges.NumPartitions() > 4*limit {
			edges = cluster.Coalesce(edges, limit)
		}
		endRound()
	}

	// Rebalance before the dominant property-synthesis stage: the growth
	// rounds leave a mix of heavy and near-empty partitions behind.
	if limit := c.Config().DefaultPartitions; edges.NumPartitions() > limit {
		endRebalance := c.Scope("rebalance")
		edges = cluster.Coalesce(edges, limit)
		endRebalance()
	}

	// Lines 15-20: property synthesis for every edge.
	if !p.SkipProperties {
		edges = assignProperties(edges, seed.Props, p.Seed^0xab5, p.IndependentProps)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}

	out := graph.NewWithCapacity(numVertices, edges.Count())
	if err := cluster.AppendTo(edges, out); err != nil {
		return nil, err
	}
	return out, nil
}

// partitionOffsets returns the exclusive prefix sums of partition sizes, so
// each partition can assign contiguous new-vertex IDs independently.
func partitionOffsets[T any](ds *cluster.Dataset[T]) []int64 {
	offsets := make([]int64, ds.NumPartitions())
	var acc int64
	for i := range offsets {
		offsets[i] = acc
		acc += int64(len(ds.Partition(i)))
	}
	return offsets
}

// sampleWithReplacement extends cluster.Sample to fractions >= 1: each
// partition emits round(fraction * len) draws with replacement, matching
// Spark's sample(withReplacement=true, fraction).
func sampleWithReplacement(ds *cluster.Dataset[graph.Edge], fraction float64, seed uint64) *cluster.Dataset[graph.Edge] {
	if fraction < 1 {
		return cluster.Sample(ds, fraction, seed)
	}
	return cluster.MapPartitions(ds, func(part int, es []graph.Edge) []graph.Edge {
		if len(es) == 0 {
			return nil
		}
		rng := cluster.DeriveRNG(seed, uint64(part))
		n := int(fraction * float64(len(es)))
		out := make([]graph.Edge, n)
		for i := range out {
			out[i] = es[rng.IntN(len(es))]
		}
		return out
	})
}

// assignProperties samples a fresh Netflow attribute set for every edge
// (Figure 2 lines 15-20 and Figure 3 lines 13-18), in O(|E| x |properties|).
func assignProperties(edges *cluster.Dataset[graph.Edge], props *PropertyModel, seed uint64, independent bool) *cluster.Dataset[graph.Edge] {
	defer edges.Cluster().Scope("props")()
	return cluster.MapPartitions(edges, func(part int, es []graph.Edge) []graph.Edge {
		rng := cluster.DeriveRNG(seed, uint64(part))
		out := make([]graph.Edge, len(es))
		for i, e := range es {
			if independent {
				e.Props = props.SampleIndependent(rng)
			} else {
				e.Props = props.Sample(rng)
			}
			out[i] = e
		}
		return out
	})
}

var _ Generator = (*PGPBA)(nil)
