package core

import (
	"errors"
	"fmt"
	"math"

	"csb/internal/cluster"
	"csb/internal/graph"
	"csb/internal/kronecker"
	"csb/internal/kronfit"
)

// PGSK is the Property-Graph Stochastic Kronecker generator (Figure 3).
// The seed property multigraph is projected to a simple graph Gp (lines
// 1-5), KronFit estimates a 2x2 initiator from it (line 6), the stochastic
// Kronecker expansion places distinct edges by parallel recursive descent
// with RDD.distinct semantics (line 7), every resulting edge is duplicated
// according to the seed's out-degree distribution (lines 8-12, restoring
// multigraph structure), and Netflow attributes are sampled for every edge
// (lines 13-18).
type PGSK struct {
	// Seed drives the deterministic RNG.
	Seed uint64
	// Cluster executes the Map-Reduce stages (nil means a local cluster).
	Cluster *cluster.Cluster
	// Fit configures the KronFit step. The zero value uses the defaults.
	Fit kronfit.Config
	// Initiator, when non-nil, skips KronFit and uses the given matrix
	// directly (lets sweeps reuse one fit, as the paper's experiments do).
	Initiator *kronecker.Initiator
	// SkipProperties suppresses property synthesis (Figure 10 overhead
	// measurement).
	SkipProperties bool
	// IndependentProps samples attributes without the IN_BYTES
	// conditioning (ablation).
	IndependentProps bool
}

// Name implements Generator.
func (p *PGSK) Name() string { return "PGSK" }

// FitSeed runs the KronFit stage alone and returns the fitted initiator,
// so callers sweeping many sizes can pay for the fit once.
func (p *PGSK) FitSeed(seed *Seed) (kronecker.Initiator, error) {
	cfg := p.Fit
	if cfg.Seed == 0 {
		cfg.Seed = p.Seed
	}
	res, err := kronfit.FitForGeneration(seed.Graph, cfg)
	if err != nil {
		return kronecker.Initiator{}, err
	}
	return res.Initiator, nil
}

// Generate implements Generator following Figure 3.
func (p *PGSK) Generate(seed *Seed, desiredEdges int64) (*graph.Graph, error) {
	if seed == nil || seed.Graph == nil || seed.Graph.NumEdges() == 0 {
		return nil, errors.New("pgsk: empty seed")
	}
	if desiredEdges < 1 {
		return nil, errors.New("pgsk: desired size must be positive")
	}
	c := p.Cluster
	if c == nil {
		c = cluster.Local(0)
	}

	// Lines 1-6: Gp projection + KronFit (or a caller-provided initiator).
	var init kronecker.Initiator
	if p.Initiator != nil {
		init = *p.Initiator
	} else {
		var err error
		if init, err = p.FitSeed(seed); err != nil {
			return nil, err
		}
	}

	// The duplication step multiplies the distinct Kronecker edges by the
	// seed's mean out-degree, so the expansion targets desired/mean edges.
	meanOut := seed.OutDegree.Mean()
	if meanOut < 1 {
		meanOut = 1
	}
	distinctTarget := int64(math.Ceil(float64(desiredEdges) / meanOut))
	if distinctTarget < 1 {
		distinctTarget = 1
	}
	k, err := iterationsFor(init, distinctTarget)
	if err != nil {
		return nil, err
	}

	defer c.Scope("pgsk")()

	// Line 7: parallel stochastic Kronecker expansion with distinct edges.
	gk, err := kronecker.GenerateParallel(c, init, k, distinctTarget, p.Seed^0x5109)
	if err != nil {
		return nil, err
	}

	// Lines 8-12: duplicate each structural edge per the out-degree
	// distribution, restoring the multigraph nature of Netflow data.
	outDeg := seed.OutDegree
	endDup := c.Scope("duplicate")
	base := cluster.ParallelizeEdges(c, gk.Cols(), 0)
	edges := cluster.MapPartitions(base, func(part int, es []graph.Edge) []graph.Edge {
		rng := cluster.DeriveRNG(p.Seed^0xd0b1e, uint64(part))
		var out []graph.Edge
		for _, e := range es {
			n := outDeg.Sample(rng)
			if n < 1 {
				n = 1
			}
			for j := int64(0); j < n; j++ {
				out = append(out, e)
			}
		}
		return out
	})
	endDup()

	// Lines 13-18: property synthesis.
	if !p.SkipProperties {
		edges = assignProperties(edges, seed.Props, p.Seed^0xab5, p.IndependentProps)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}

	out := graph.NewWithCapacity(gk.NumVertices(), edges.Count())
	if err := cluster.AppendTo(edges, out); err != nil {
		return nil, err
	}
	return out, nil
}

// iterationsFor returns the smallest Kronecker power k whose vertex grid can
// hold `edges` distinct edges and whose expected edge count reaches them.
func iterationsFor(init kronecker.Initiator, edges int64) (int, error) {
	s := init.Sum()
	if s <= 1 {
		return 0, fmt.Errorf("pgsk: initiator sum %.3f cannot grow (need > 1)", s)
	}
	k := 1
	for ; k <= 60; k++ {
		n := kronecker.NumVertices(k)
		if init.ExpectedEdges(k) >= float64(edges) && n*n >= edges*2 {
			return k, nil
		}
	}
	return 0, fmt.Errorf("pgsk: no feasible iteration count for %d edges", edges)
}

var _ Generator = (*PGSK)(nil)
