package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"csb/internal/graph"
	"csb/internal/stats"
)

// Binary seed-analysis container ("CSBA"): persists a complete analyzed
// seed — the property graph plus every pre-computed distribution — so the
// generation stage can run repeatedly without re-analyzing the trace
// (separating the Figure 1 pipeline from the Figure 2/3 generators).
//
//	magic    [4]byte "CSBA"
//	version  uint32 (1)
//	graph    CSBG container (graph.Write)
//	inDeg    Discrete
//	outDeg   Discrete
//	props    PropertyModel (see writePropertyModel)

var seedMagic = [4]byte{'C', 'S', 'B', 'A'}

const seedFormatVersion = 1

// Write serializes the analyzed seed.
func (s *Seed) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(seedMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(seedFormatVersion)); err != nil {
		return err
	}
	if err := s.Graph.Write(bw); err != nil {
		return err
	}
	if _, err := s.InDegree.WriteTo(bw); err != nil {
		return err
	}
	if _, err := s.OutDegree.WriteTo(bw); err != nil {
		return err
	}
	if err := writePropertyModel(bw, s.Props); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSeed deserializes a seed written by Seed.Write.
func ReadSeed(r io.Reader) (*Seed, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("core: reading seed magic: %w", err)
	}
	if m != seedMagic {
		return nil, fmt.Errorf("core: bad seed magic %q", m[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != seedFormatVersion {
		return nil, fmt.Errorf("core: unsupported seed version %d", version)
	}
	g, err := graph.Read(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading seed graph: %w", err)
	}
	inDeg, err := stats.ReadDiscrete(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading in-degree distribution: %w", err)
	}
	outDeg, err := stats.ReadDiscrete(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading out-degree distribution: %w", err)
	}
	props, err := readPropertyModel(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading property model: %w", err)
	}
	return &Seed{Graph: g, InDegree: inDeg, OutDegree: outDeg, Props: props}, nil
}

// attrModel serialization order.
func (m *attrModel) dists() []**stats.Discrete {
	return []**stats.Discrete{
		&m.duration, &m.outBytes, &m.outPkts, &m.inPkts,
		&m.srcPort, &m.dstPort, &m.protoState,
	}
}

func writeAttrModel(w io.Writer, m *attrModel) error {
	for _, d := range m.dists() {
		if _, err := (*d).WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

func readAttrModel(r io.Reader) (*attrModel, error) {
	m := &attrModel{}
	for _, d := range m.dists() {
		dd, err := stats.ReadDiscrete(r)
		if err != nil {
			return nil, err
		}
		*d = dd
	}
	return m, nil
}

// writePropertyModel serializes the conditional attribute model:
//
//	inBytes      Discrete
//	all          attrModel (7 Discretes)
//	bucketCount  uint32
//	per bucket   (ascending): bucketID int32, attrModel
func writePropertyModel(w io.Writer, m *PropertyModel) error {
	if _, err := m.inBytes.WriteTo(w); err != nil {
		return err
	}
	if err := writeAttrModel(w, m.all); err != nil {
		return err
	}
	ids := make([]int, 0, len(m.buckets))
	for id := range m.buckets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := binary.Write(w, binary.LittleEndian, int32(id)); err != nil {
			return err
		}
		if err := writeAttrModel(w, m.buckets[id]); err != nil {
			return err
		}
	}
	return nil
}

func readPropertyModel(r io.Reader) (*PropertyModel, error) {
	m := &PropertyModel{buckets: make(map[int]*attrModel)}
	var err error
	if m.inBytes, err = stats.ReadDiscrete(r); err != nil {
		return nil, err
	}
	if m.all, err = readAttrModel(r); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("core: implausible bucket count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		var id int32
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return nil, err
		}
		am, err := readAttrModel(r)
		if err != nil {
			return nil, err
		}
		m.buckets[int(id)] = am
	}
	return m, nil
}
