package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"csb/internal/cluster"
	"csb/internal/graph"
	"csb/internal/stats"
)

func TestPGPBAValidation(t *testing.T) {
	s := traceSeed(t, 10, 100, 1)
	cases := []struct {
		name string
		gen  PGPBA
		size int64
	}{
		{"zero fraction", PGPBA{Fraction: 0}, 10000},
		{"negative fraction", PGPBA{Fraction: -1}, 10000},
		{"NaN fraction", PGPBA{Fraction: math.NaN()}, 10000},
		{"+Inf fraction", PGPBA{Fraction: math.Inf(1)}, 10000},
		{"size below seed", PGPBA{Fraction: 0.1}, 1},
	}
	for _, c := range cases {
		if _, err := c.gen.Generate(s, c.size); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	var empty PGPBA
	if _, err := empty.Generate(nil, 10); err == nil {
		t.Error("nil seed accepted")
	}
}

func TestPGPBAGrowsToDesiredSize(t *testing.T) {
	s := traceSeed(t, 20, 300, 2)
	gen := PGPBA{Fraction: 0.3, Seed: 7}
	g, err := gen.Generate(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("edges = %d, want >= 5000", g.NumEdges())
	}
	// Probabilistic overshoot is expected but bounded: one round adds about
	// fraction*|E|*(meanIn+meanOut).
	bound := int64(float64(5000) * (1 + 0.3*(s.InDegree.Mean()+s.OutDegree.Mean())))
	if g.NumEdges() > bound {
		t.Fatalf("edges = %d, overshoot beyond bound %d", g.NumEdges(), bound)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() <= s.Graph.NumVertices() {
		t.Fatal("no vertices added")
	}
}

func TestPGPBADeterministic(t *testing.T) {
	s := traceSeed(t, 15, 200, 3)
	gen := PGPBA{Fraction: 0.5, Seed: 9}
	a, err := gen.Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.NumVertices() != b.NumVertices() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPGPBAAssignsProperties(t *testing.T) {
	s := traceSeed(t, 15, 200, 4)
	g, err := (&PGPBA{Fraction: 0.5, Seed: 11}).Generate(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.EdgeSlice() {
		if e.Props.Protocol == graph.ProtoUnknown {
			t.Fatalf("edge %d has no protocol", i)
		}
		if e.Props.OutPkts == 0 && e.Props.InPkts == 0 {
			t.Fatalf("edge %d has empty packet counters", i)
		}
	}
}

func TestPGPBASkipProperties(t *testing.T) {
	s := traceSeed(t, 15, 200, 5)
	g, err := (&PGPBA{Fraction: 0.5, Seed: 12, SkipProperties: true}).Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Grown edges carry zero properties when synthesis is skipped.
	zero := 0
	for _, e := range g.EdgeSlice() {
		if e.Props == (graph.EdgeProps{}) {
			zero++
		}
	}
	if zero == 0 {
		t.Fatal("SkipProperties still assigned properties")
	}
}

func TestPGPBAFractionTwo(t *testing.T) {
	// The paper's Figure 9 configuration: fraction = 2 (with-replacement
	// sampling of the edge list).
	s := traceSeed(t, 15, 200, 6)
	g, err := (&PGPBA{Fraction: 2, Seed: 13}).Generate(s, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 20000 {
		t.Fatalf("edges = %d, want >= 20000", g.NumEdges())
	}
}

func TestPGPBAHeavyTailDegrees(t *testing.T) {
	s := traceSeed(t, 30, 500, 7)
	g, err := (&PGPBA{Fraction: 0.1, Seed: 14}).Generate(s, 30000)
	if err != nil {
		t.Fatal(err)
	}
	sum := stats.SummarizeInt(g.Degrees())
	if sum.Max < 10*sum.Median {
		t.Fatalf("no heavy tail: max %g median %g", sum.Max, sum.Median)
	}
}

func TestPGPBAVeracityAgainstSeed(t *testing.T) {
	s := traceSeed(t, 30, 500, 8)
	g, err := (&PGPBA{Fraction: 0.1, Seed: 15}).Generate(s, 20000)
	if err != nil {
		t.Fatal(err)
	}
	score, err := stats.VeracityScoreInt(s.Graph.Degrees(), g.Degrees())
	if err != nil {
		t.Fatal(err)
	}
	if score > 1e-3 {
		t.Fatalf("degree veracity score = %g, want small", score)
	}
}

func TestPGPBAOnExplicitCluster(t *testing.T) {
	s := traceSeed(t, 15, 200, 9)
	c := cluster.MustNew(cluster.Config{Nodes: 4, CoresPerNode: 2, DefaultPartitions: 8})
	g, err := (&PGPBA{Fraction: 0.5, Seed: 16, Cluster: c}).Generate(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 3000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	m := c.Metrics()
	if m.Stages == 0 || m.Tasks == 0 {
		t.Fatalf("cluster not exercised: %+v", m)
	}
}

func TestPGPBACancelledGenerationReturnsPromptly(t *testing.T) {
	s := traceSeed(t, 20, 300, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := cluster.MustNew(cluster.Config{Nodes: 1, CoresPerNode: 2, Context: ctx})
	done := make(chan error, 1)
	go func() {
		// A target this far beyond the seed takes many rounds, so the
		// cancel always lands mid-generation.
		_, err := (&PGPBA{Fraction: 0.1, Seed: 17, Cluster: c}).Generate(s, 20_000_000)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled generation did not return promptly")
	}
}

func TestGeneratorsRejectDeadCluster(t *testing.T) {
	// A context that is already done must stop both generators before any
	// growth happens — PGSK's Kronecker top-up loop in particular must not
	// spin on the empty partitions a cancelled cluster produces.
	s := traceSeed(t, 15, 200, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := cluster.MustNew(cluster.Config{Nodes: 1, CoresPerNode: 2, Context: ctx})
	if _, err := (&PGPBA{Fraction: 0.5, Seed: 18, Cluster: c}).Generate(s, 2000); !errors.Is(err, context.Canceled) {
		t.Fatalf("pgpba err = %v, want context.Canceled", err)
	}
	if _, err := (&PGSK{Seed: 18, Cluster: c}).Generate(s, 2000); !errors.Is(err, context.Canceled) {
		t.Fatalf("pgsk err = %v, want context.Canceled", err)
	}
}

func TestSampleWithReplacementFractions(t *testing.T) {
	c := cluster.Local(2)
	edges := make([]graph.Edge, 1000)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID((i + 1) % 10)}
	}
	ds := cluster.Parallelize(c, edges, 4)
	if n := sampleWithReplacement(ds, 2, 1).Count(); n != 2000 {
		t.Errorf("fraction 2 sampled %d, want 2000", n)
	}
	n := sampleWithReplacement(ds, 0.25, 1).Count()
	if n < 150 || n > 350 {
		t.Errorf("fraction 0.25 sampled %d, want ~250", n)
	}
}

func TestPartitionOffsets(t *testing.T) {
	c := cluster.Local(2)
	ds := cluster.Parallelize(c, make([]int, 10), 3)
	off := partitionOffsets(ds)
	want := []int64{0, 4, 7} // balanced split of 10 over 3: 4,3,3
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", off, want)
		}
	}
}

func TestPGPBASpreadAttachmentReducesHubConcentration(t *testing.T) {
	s := traceSeed(t, 30, 500, 20)
	clumped, err := (&PGPBA{Fraction: 0.3, Seed: 21}).Generate(s, 30000)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := (&PGPBA{Fraction: 0.3, Seed: 21, SpreadAttachment: true}).Generate(s, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if err := spread.Validate(); err != nil {
		t.Fatal(err)
	}
	maxDeg := func(g *graph.Graph) int64 {
		var m int64
		for _, d := range g.Degrees() {
			if d > m {
				m = d
			}
		}
		return m
	}
	// Re-sampling destinations per edge spreads attachment mass: the top
	// hub must shrink versus the paper's single-destination variant.
	if maxDeg(spread) >= maxDeg(clumped) {
		t.Fatalf("spread hub %d not below clumped hub %d", maxDeg(spread), maxDeg(clumped))
	}
	// Both variants stay scale-free.
	sum := stats.SummarizeInt(spread.Degrees())
	if sum.Max < 5*sum.Median {
		t.Fatalf("spread variant lost its tail: %+v", sum)
	}
}
