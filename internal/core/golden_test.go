package core

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csb/internal/cluster"
)

// -update regenerates the golden digests from the current implementation:
//
//	go test ./internal/core/ -run TestGolden -update
//
// Only do this after verifying that an output change is intended; these
// digests are the contract that fixed-seed generator output never drifts.
var updateGolden = flag.Bool("update", false, "rewrite golden digest files under testdata/")

// edgeListSHA renders the graph of one fixed-seed generation as edge-list
// text and hashes it.
func edgeListSHA(t *testing.T, gen Generator, s *Seed, size int64) string {
	t.Helper()
	g, err := gen.Generate(s, size)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := g.WriteEdgeList(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenGeneratorDigests locks the byte-exact output of both generators
// at a fixed seed: for each generator the edge-list SHA-256 must be identical
// across MaxParallel 1 and 16 (scheduling independence, the PR 1 invariant)
// and must match the digest recorded under testdata/ (cross-version drift).
func TestGoldenGeneratorDigests(t *testing.T) {
	s := traceSeed(t, 25, 400, 42)
	cases := []struct {
		name string
		gen  func(c *cluster.Cluster) Generator
		size int64
	}{
		{"pgpba", func(c *cluster.Cluster) Generator {
			return &PGPBA{Fraction: 0.3, Seed: 42, Cluster: c}
		}, 8000},
		{"pgsk", func(c *cluster.Cluster) Generator {
			return &PGSK{Seed: 42, Cluster: c}
		}, 8000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			digests := map[int]string{}
			for _, par := range []int{1, 16} {
				c := cluster.MustNew(cluster.Config{
					Nodes: 4, CoresPerNode: 4,
					DefaultPartitions: 8, MaxParallel: par,
				})
				digests[par] = edgeListSHA(t, tc.gen(c), s, tc.size)
			}
			if digests[1] != digests[16] {
				t.Fatalf("fixed-seed output depends on MaxParallel:\n  1:  %s\n  16: %s",
					digests[1], digests[16])
			}
			path := filepath.Join("testdata", "golden_"+tc.name+".sha256")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(digests[1]+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden digest (run with -update to create): %v", err)
			}
			if got := digests[1]; got != strings.TrimSpace(string(want)) {
				t.Fatalf("fixed-seed %s output drifted from golden digest:\n  got  %s\n  want %s\nIf the change is intended, regenerate with -update.",
					tc.name, got, strings.TrimSpace(string(want)))
			}
		})
	}
}
