package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"csb/internal/cluster"
	"csb/internal/graph"
)

// chaosCluster builds the engine configuration of one chaos matrix point:
// the same virtual topology throughout (partitioning — and therefore RNG
// streams — must not vary), with only fault rate and real parallelism
// changing.
func chaosCluster(t *testing.T, rate float64, maxParallel int) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Config{
		Nodes: 2, CoresPerNode: 2, MaxParallel: maxParallel,
		MaxTaskRetries: 8, RetryBackoff: -1, Speculation: true,
	}
	if rate > 0 {
		plan := cluster.NewFaultPlan(1234, rate)
		plan.MaxDelay = time.Millisecond
		// Stop injecting before the retry budget runs out so every matrix
		// point converges; 4 faulty attempts per task still exercises the
		// retry machinery hard at rate 0.2.
		plan.MaxFaultyAttempts = 4
		cfg.Faults = plan
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosMatrixGeneratorsByteIdentical is the acceptance criterion of the
// fault model: for both generators, every (fault rate, parallelism) matrix
// point must produce Graph.Write output byte-identical to the fault-free
// run — injected panics, transient errors, straggler delays, retries and
// speculative duplicates may change the schedule but never the artifact.
func TestChaosMatrixGeneratorsByteIdentical(t *testing.T) {
	seed := traceSeed(t, 20, 250, 3)
	generators := map[string]func(c *cluster.Cluster) Generator{
		"pgpba": func(c *cluster.Cluster) Generator {
			return &PGPBA{Fraction: 0.5, Seed: 77, Cluster: c}
		},
		"pgsk": func(c *cluster.Cluster) Generator {
			return &PGSK{Seed: 77, Cluster: c}
		},
	}
	for name, mk := range generators {
		t.Run(name, func(t *testing.T) {
			render := func(rate float64, maxParallel int) []byte {
				c := chaosCluster(t, rate, maxParallel)
				g, err := mk(c).Generate(seed, 4000)
				if err != nil {
					t.Fatalf("rate %.2f par %d: %v", rate, maxParallel, err)
				}
				if err := c.Err(); err != nil {
					t.Fatalf("rate %.2f par %d: cluster failed: %v", rate, maxParallel, err)
				}
				var buf bytes.Buffer
				if err := g.Write(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			want := render(0, 1)
			for _, rate := range []float64{0, 0.05, 0.2} {
				for _, par := range []int{1, 4} {
					if got := render(rate, par); !bytes.Equal(got, want) {
						t.Errorf("rate %.2f par %d: output differs (%d vs %d bytes)",
							rate, par, len(got), len(want))
					}
				}
			}
		})
	}
}

// TestGeneratorSurfacesStageError asserts the clean-failure half of the
// contract at the generator level: a fault plan that exhausts the retry
// budget surfaces as an error from Generate (a *StageError via Cluster.Err)
// without crashing the process.
func TestGeneratorSurfacesStageError(t *testing.T) {
	seed := traceSeed(t, 20, 250, 3)
	c, err := cluster.New(cluster.Config{
		Nodes: 1, CoresPerNode: 2, MaxParallel: 2,
		MaxTaskRetries: -1, RetryBackoff: -1, // attempts are final
		Faults: &cluster.FaultPlan{Seed: 9, PanicRate: 0.5, ErrorRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var g *graph.Graph
	g, err = (&PGPBA{Fraction: 0.5, Seed: 77, Cluster: c}).Generate(seed, 4000)
	if err == nil {
		t.Fatalf("Generate succeeded under a certain-failure plan: %v", g)
	}
	var se *cluster.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *cluster.StageError", err, err)
	}
	if se.Op == "" || se.Attempts != 1 {
		t.Errorf("StageError not populated: %+v", se)
	}
	// The error message carries enough to find the failing task.
	msg := fmt.Sprintf("%v", err)
	if msg == "" || se.Error() != msg {
		t.Errorf("unexpected error rendering: %q", msg)
	}
}
