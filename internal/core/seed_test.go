package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"csb/internal/graph"
	"csb/internal/netflow"
	"csb/internal/pcap"
	"csb/internal/stats"
)

// traceSeed builds a seed through the full Figure 1 pipeline: synthetic
// PCAP -> flow assembly -> property graph -> analysis.
func traceSeed(t testing.TB, hosts, sessions int, seed uint64) *Seed {
	t.Helper()
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(hosts, sessions, seed))
	if err != nil {
		t.Fatal(err)
	}
	g := netflow.BuildGraph(netflow.Assemble(pkts, 0))
	s, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeEmptyGraph(t *testing.T) {
	if _, err := Analyze(graph.New(3)); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

func TestAnalyzeDegreeDistributions(t *testing.T) {
	g := graph.New(4)
	// out-degrees: v0=2, v1=1; in-degrees: v2=2, v3=1.
	g.AddEdge(graph.Edge{Src: 0, Dst: 2, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, InBytes: 10}})
	g.AddEdge(graph.Edge{Src: 0, Dst: 3, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, InBytes: 20}})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, InBytes: 30}})
	s, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.OutDegree.Prob(2); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P[out=2] = %g, want 0.5", p)
	}
	if p := s.OutDegree.Prob(1); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P[out=1] = %g, want 0.5", p)
	}
	if p := s.InDegree.Prob(2); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P[in=2] = %g, want 0.5", p)
	}
}

func TestFitPropertiesEmpty(t *testing.T) {
	if _, err := FitProperties(nil); err == nil {
		t.Fatal("empty edge list accepted")
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, -5: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1024: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestProtoStateCodeRoundTrip(t *testing.T) {
	for _, p := range []graph.Protocol{graph.ProtoTCP, graph.ProtoUDP, graph.ProtoICMP} {
		for _, s := range []graph.TCPState{graph.StateNone, graph.StateS0, graph.StateSF, graph.StateOTH} {
			gp, gs := codeProtoState(protoStateCode(p, s))
			if gp != p || gs != s {
				t.Fatalf("round trip (%v,%v) -> (%v,%v)", p, s, gp, gs)
			}
		}
	}
}

func TestSampleNeverInventsProtoStatePairs(t *testing.T) {
	// Seed holds TCP/SF and UDP/None only; samples must never mix them.
	edges := []graph.Edge{}
	for i := 0; i < 50; i++ {
		edges = append(edges,
			graph.Edge{Props: graph.EdgeProps{Protocol: graph.ProtoTCP, State: graph.StateSF, InBytes: int64(i + 1)}},
			graph.Edge{Props: graph.EdgeProps{Protocol: graph.ProtoUDP, State: graph.StateNone, InBytes: int64(i + 1)}},
		)
	}
	m, err := FitProperties(edges)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 2000; i++ {
		p := m.Sample(rng)
		switch p.Protocol {
		case graph.ProtoTCP:
			if p.State != graph.StateSF {
				t.Fatalf("invented TCP state %v", p.State)
			}
		case graph.ProtoUDP:
			if p.State != graph.StateNone {
				t.Fatalf("invented UDP state %v", p.State)
			}
		default:
			t.Fatalf("invented protocol %v", p.Protocol)
		}
	}
}

func TestConditionalSamplingPreservesCorrelation(t *testing.T) {
	// Build edges with OUT_BYTES strongly tied to IN_BYTES across a wide
	// dynamic range; the conditional model must preserve the coupling,
	// the independent ablation must destroy it.
	rng := rand.New(rand.NewPCG(2, 2))
	var edges []graph.Edge
	for i := 0; i < 4000; i++ {
		ib := int64(1) << uint(rng.IntN(16)) // 1 .. 32768
		edges = append(edges, graph.Edge{Props: graph.EdgeProps{
			Protocol: graph.ProtoTCP, State: graph.StateSF,
			InBytes: ib, OutBytes: ib * 2, OutPkts: ib / 4, InPkts: ib / 2,
			Duration: ib * 3,
		}})
	}
	m, err := FitProperties(edges)
	if err != nil {
		t.Fatal(err)
	}
	corr := func(sample func(*rand.Rand) graph.EdgeProps) float64 {
		r := rand.New(rand.NewPCG(3, 3))
		var in, out []float64
		for i := 0; i < 4000; i++ {
			p := sample(r)
			in = append(in, math.Log1p(float64(p.InBytes)))
			out = append(out, math.Log1p(float64(p.OutBytes)))
		}
		return stats.PearsonCorrelation(in, out)
	}
	cond := corr(m.Sample)
	ind := corr(m.SampleIndependent)
	if cond < 0.9 {
		t.Errorf("conditional correlation = %g, want > 0.9", cond)
	}
	if ind > 0.3 {
		t.Errorf("independent correlation = %g, want ~0", ind)
	}
	if cond <= ind {
		t.Errorf("conditioning did not help: cond %g vs ind %g", cond, ind)
	}
}

func TestSampleAttributesComeFromSeedSupport(t *testing.T) {
	s := traceSeed(t, 20, 300, 5)
	// Collect the seed's observed attribute values.
	durations := map[int64]bool{}
	for _, e := range s.Graph.EdgeSlice() {
		durations[e.Props.Duration] = true
	}
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 500; i++ {
		p := s.Props.Sample(rng)
		if !durations[p.Duration] {
			t.Fatalf("sampled duration %d never observed in seed", p.Duration)
		}
	}
}

func TestAnalyzeTraceSeedShape(t *testing.T) {
	s := traceSeed(t, 40, 800, 6)
	if s.Graph.NumVertices() != 40 {
		t.Errorf("vertices = %d", s.Graph.NumVertices())
	}
	if s.InDegree.Min() < 1 || s.OutDegree.Min() < 1 {
		t.Error("degree distributions include zero")
	}
	if s.InDegree.Mean() <= 0 || s.OutDegree.Mean() <= 0 {
		t.Error("degenerate degree means")
	}
}
