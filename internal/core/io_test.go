package core

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestSeedWriteReadRoundTrip(t *testing.T) {
	s := traceSeed(t, 20, 300, 50)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadSeed(&buf)
	if err != nil {
		t.Fatalf("ReadSeed: %v", err)
	}
	if got.Graph.NumVertices() != s.Graph.NumVertices() || got.Graph.NumEdges() != s.Graph.NumEdges() {
		t.Fatal("graph sizes differ")
	}
	// Distributions must sample identically under the same RNG stream.
	r1 := rand.New(rand.NewPCG(1, 1))
	r2 := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 500; i++ {
		if s.InDegree.Sample(r1) != got.InDegree.Sample(r2) {
			t.Fatal("in-degree sampling diverged")
		}
	}
	r1 = rand.New(rand.NewPCG(2, 2))
	r2 = rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 500; i++ {
		if s.OutDegree.Sample(r1) != got.OutDegree.Sample(r2) {
			t.Fatal("out-degree sampling diverged")
		}
	}
	r1 = rand.New(rand.NewPCG(3, 3))
	r2 = rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 500; i++ {
		if s.Props.Sample(r1) != got.Props.Sample(r2) {
			t.Fatal("property sampling diverged")
		}
	}
}

func TestSeedRoundTripGeneratesIdentically(t *testing.T) {
	// The strongest contract: a generator fed the deserialized seed must
	// produce the exact same graph as with the original.
	s := traceSeed(t, 15, 200, 51)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gen := &PGPBA{Fraction: 0.5, Seed: 52}
	a, err := gen.Generate(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(loaded, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadSeedRejectsGarbage(t *testing.T) {
	if _, err := ReadSeed(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadSeed(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid magic, truncated body.
	s := traceSeed(t, 10, 100, 53)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{6, 40, len(b) / 2, len(b) - 3} {
		if _, err := ReadSeed(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt a CDF byte inside the distribution section (after the graph).
	corrupt := append([]byte(nil), b...)
	// Find a late offset and flip bits; decoding must error or keep
	// invariants (never panic).
	corrupt[len(corrupt)-10] ^= 0xff
	_, _ = ReadSeed(bytes.NewReader(corrupt)) // must not panic
}
