// Package core implements the paper's contribution: the seed-analysis
// pipeline of Figure 1 and the two property-graph generators, PGPBA
// (Property-Graph Parallel Barabási-Albert, Figure 2) and PGSK
// (Property-Graph Stochastic Kronecker, Figure 3). Both grow an analyzed
// seed property-graph to a synthetic graph of arbitrary size while
// preserving its structural properties (in-/out-degree, PageRank) and its
// Netflow attribute distributions.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"csb/internal/graph"
	"csb/internal/stats"
)

// Seed is an analyzed seed graph: the graph itself plus the pre-computed
// distributions the generators sample from (Figure 1, last step).
type Seed struct {
	// Graph is the seed property graph built from a network trace.
	Graph *graph.Graph
	// InDegree and OutDegree are the empirical degree distributions
	// (zero-degree vertices excluded).
	InDegree  *stats.Discrete
	OutDegree *stats.Discrete
	// Props models the joint Netflow attribute distributions.
	Props *PropertyModel
}

// Analyze performs the seed analysis of Figure 1: it computes the in- and
// out-degree probability distributions and the attribute model
// p(IN_BYTES), p(a | IN_BYTES) from the seed property graph.
func Analyze(g *graph.Graph) (*Seed, error) {
	if g.NumEdges() == 0 {
		return nil, errors.New("core: seed graph has no edges")
	}
	in, err := stats.DegreeDistribution(g.InDegrees())
	if err != nil {
		return nil, fmt.Errorf("core: in-degree analysis: %w", err)
	}
	out, err := stats.DegreeDistribution(g.OutDegrees())
	if err != nil {
		return nil, fmt.Errorf("core: out-degree analysis: %w", err)
	}
	props, err := FitPropertiesBatch(g.Cols())
	if err != nil {
		return nil, fmt.Errorf("core: attribute analysis: %w", err)
	}
	return &Seed{Graph: g, InDegree: in, OutDegree: out, Props: props}, nil
}

// PropertyModel holds the Netflow attribute distributions of a seed: the
// unconditional p(IN_BYTES) and, for every other attribute a, the
// conditional p(a | IN_BYTES) realized as per-bucket distributions over
// logarithmic IN_BYTES buckets. Conditioning preserves cross-attribute
// structure (a flow that moved many bytes also moved many packets and
// lasted longer), which independent sampling would destroy.
type PropertyModel struct {
	inBytes *stats.Discrete
	buckets map[int]*attrModel
	all     *attrModel // fallback for buckets unseen at fit time
}

// attrModel carries the per-bucket conditional distributions.
type attrModel struct {
	duration   *stats.Discrete
	outBytes   *stats.Discrete
	outPkts    *stats.Discrete
	inPkts     *stats.Discrete
	srcPort    *stats.Discrete
	dstPort    *stats.Discrete
	protoState *stats.Discrete // joint (protocol, state) code
}

// bucketOf maps an IN_BYTES value to its logarithmic bucket.
func bucketOf(inBytes int64) int {
	if inBytes <= 0 {
		return 0
	}
	return 1 + int(math.Log2(float64(inBytes)))
}

// protoStateCode packs protocol and state into one sampled value so that
// impossible combinations (a UDP flow with a TCP state) can never be
// generated.
func protoStateCode(p graph.Protocol, s graph.TCPState) int64 {
	return int64(p)<<8 | int64(s)
}

func codeProtoState(c int64) (graph.Protocol, graph.TCPState) {
	return graph.Protocol(c >> 8), graph.TCPState(c & 0xff)
}

type attrSamples struct {
	duration, outBytes, outPkts, inPkts, srcPort, dstPort, protoState []int64
}

func (s *attrSamples) add(e *graph.Edge) {
	s.duration = append(s.duration, e.Props.Duration)
	s.outBytes = append(s.outBytes, e.Props.OutBytes)
	s.outPkts = append(s.outPkts, e.Props.OutPkts)
	s.inPkts = append(s.inPkts, e.Props.InPkts)
	s.srcPort = append(s.srcPort, int64(e.Props.SrcPort))
	s.dstPort = append(s.dstPort, int64(e.Props.DstPort))
	s.protoState = append(s.protoState, protoStateCode(e.Props.Protocol, e.Props.State))
}

func (s *attrSamples) fit() (*attrModel, error) {
	m := &attrModel{}
	var err error
	fit := func(dst **stats.Discrete, samples []int64) {
		if err != nil {
			return
		}
		*dst, err = stats.FromSamples(samples)
	}
	fit(&m.duration, s.duration)
	fit(&m.outBytes, s.outBytes)
	fit(&m.outPkts, s.outPkts)
	fit(&m.inPkts, s.inPkts)
	fit(&m.srcPort, s.srcPort)
	fit(&m.dstPort, s.dstPort)
	fit(&m.protoState, s.protoState)
	return m, err
}

// FitProperties estimates the attribute model from a row-structured edge
// slice. It is a convenience wrapper over FitPropertiesBatch for callers that
// already hold []Edge (tests, small fixtures).
func FitProperties(edges []graph.Edge) (*PropertyModel, error) {
	b := graph.GetBatch(len(edges))
	defer graph.PutBatch(b)
	b.AppendEdges(edges)
	return FitPropertiesBatch(b)
}

// FitPropertiesBatch estimates the attribute model from the columnar edges of
// a seed property graph, streaming over the batch without materializing a row
// slice.
func FitPropertiesBatch(batch *graph.EdgeBatch) (*PropertyModel, error) {
	n := batch.Len()
	if n == 0 {
		return nil, errors.New("core: no edges to fit properties from")
	}
	inBytes := make([]int64, n)
	perBucket := make(map[int]*attrSamples)
	var global attrSamples
	for i := 0; i < n; i++ {
		e := batch.Edge(i)
		inBytes[i] = e.Props.InBytes
		b := bucketOf(e.Props.InBytes)
		bs := perBucket[b]
		if bs == nil {
			bs = &attrSamples{}
			perBucket[b] = bs
		}
		bs.add(&e)
		global.add(&e)
	}
	m := &PropertyModel{buckets: make(map[int]*attrModel, len(perBucket))}
	var err error
	if m.inBytes, err = stats.FromSamples(inBytes); err != nil {
		return nil, err
	}
	if m.all, err = global.fit(); err != nil {
		return nil, err
	}
	for b, bs := range perBucket {
		bm, err := bs.fit()
		if err != nil {
			return nil, err
		}
		m.buckets[b] = bm
	}
	return m, nil
}

// Sample draws one complete Netflow attribute set: IN_BYTES from its
// unconditional distribution, every other attribute from its conditional
// distribution given the IN_BYTES bucket.
func (m *PropertyModel) Sample(rng *rand.Rand) graph.EdgeProps {
	ib := m.inBytes.Sample(rng)
	am := m.buckets[bucketOf(ib)]
	if am == nil {
		am = m.all
	}
	proto, state := codeProtoState(am.protoState.Sample(rng))
	return graph.EdgeProps{
		Protocol: proto,
		State:    state,
		SrcPort:  uint16(am.srcPort.Sample(rng)),
		DstPort:  uint16(am.dstPort.Sample(rng)),
		Duration: am.duration.Sample(rng),
		OutBytes: am.outBytes.Sample(rng),
		InBytes:  ib,
		OutPkts:  am.outPkts.Sample(rng),
		InPkts:   am.inPkts.Sample(rng),
	}
}

// SampleIndependent draws attributes from the unconditional (global)
// distributions, ignoring the IN_BYTES conditioning. It exists for the
// ablation study of the conditional model.
func (m *PropertyModel) SampleIndependent(rng *rand.Rand) graph.EdgeProps {
	proto, state := codeProtoState(m.all.protoState.Sample(rng))
	return graph.EdgeProps{
		Protocol: proto,
		State:    state,
		SrcPort:  uint16(m.all.srcPort.Sample(rng)),
		DstPort:  uint16(m.all.dstPort.Sample(rng)),
		Duration: m.all.duration.Sample(rng),
		OutBytes: m.all.outBytes.Sample(rng),
		InBytes:  m.inBytes.Sample(rng),
		OutPkts:  m.all.outPkts.Sample(rng),
		InPkts:   m.all.inPkts.Sample(rng),
	}
}
