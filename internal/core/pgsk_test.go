package core

import (
	"testing"

	"csb/internal/cluster"
	"csb/internal/graph"
	"csb/internal/kronecker"
	"csb/internal/stats"
)

func TestPGSKValidation(t *testing.T) {
	s := traceSeed(t, 10, 100, 1)
	var gen PGSK
	if _, err := gen.Generate(nil, 100); err == nil {
		t.Error("nil seed accepted")
	}
	if _, err := gen.Generate(s, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := gen.Generate(s, -5); err == nil {
		t.Error("negative size accepted")
	}
}

func TestPGSKGeneratesApproxDesiredSize(t *testing.T) {
	s := traceSeed(t, 20, 300, 2)
	gen := PGSK{Seed: 3}
	g, err := gen.Generate(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Duplication via the out-degree distribution is probabilistic: the
	// paper accepts approximate sizes; demand the right order of magnitude.
	if g.NumEdges() < 2500 || g.NumEdges() > 15000 {
		t.Fatalf("edges = %d, want ~5000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPGSKSmallerThanSeed(t *testing.T) {
	// PGSK can generate graphs smaller than the seed (the paper's Figures
	// 6-7 start its curve at 100 edges).
	s := traceSeed(t, 30, 800, 4)
	g, err := (&PGSK{Seed: 5}).Generate(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 30 || g.NumEdges() > 500 {
		t.Fatalf("edges = %d, want ~100", g.NumEdges())
	}
}

func TestPGSKDeterministic(t *testing.T) {
	s := traceSeed(t, 15, 200, 6)
	gen := PGSK{Seed: 7}
	a, err := gen.Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("sizes differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.EdgeSlice() {
		if a.EdgeSlice()[i] != b.EdgeSlice()[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestPGSKWithProvidedInitiator(t *testing.T) {
	s := traceSeed(t, 15, 200, 8)
	init := kronecker.Initiator{Theta: [4]float64{0.9, 0.55, 0.45, 0.2}}
	g, err := (&PGSK{Seed: 9, Initiator: &init}).Generate(s, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 1500 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestPGSKAssignsProperties(t *testing.T) {
	s := traceSeed(t, 15, 200, 10)
	g, err := (&PGSK{Seed: 11}).Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.EdgeSlice() {
		if e.Props.Protocol == graph.ProtoUnknown {
			t.Fatalf("edge %d missing protocol", i)
		}
	}
	// SkipProperties leaves structural edges bare.
	bare, err := (&PGSK{Seed: 11, SkipProperties: true}).Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, e := range bare.EdgeSlice() {
		if e.Props == (graph.EdgeProps{}) {
			zero++
		}
	}
	if zero == 0 {
		t.Fatal("SkipProperties still assigned properties")
	}
}

func TestPGSKDuplicationRestoresMultigraph(t *testing.T) {
	s := traceSeed(t, 20, 400, 12)
	g, err := (&PGSK{Seed: 13}).Generate(s, 5000)
	if err != nil {
		t.Fatal(err)
	}
	simple := g.Simplify()
	if simple.NumEdges() >= g.NumEdges() {
		t.Fatalf("no duplication: %d simple vs %d multi", simple.NumEdges(), g.NumEdges())
	}
}

func TestPGSKOnExplicitCluster(t *testing.T) {
	s := traceSeed(t, 15, 200, 14)
	c := cluster.MustNew(cluster.Config{Nodes: 3, CoresPerNode: 2, DefaultPartitions: 6})
	g, err := (&PGSK{Seed: 15, Cluster: c}).Generate(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	m := c.Metrics()
	if m.SerialTime <= 0 {
		t.Fatal("PGSK must pay serial (distinct/shuffle) time")
	}
}

func TestPGSKVeracityAgainstSeed(t *testing.T) {
	s := traceSeed(t, 30, 500, 16)
	g, err := (&PGSK{Seed: 17}).Generate(s, 20000)
	if err != nil {
		t.Fatal(err)
	}
	score, err := stats.VeracityScoreInt(s.Graph.Degrees(), g.Degrees())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports PGSK degree veracity up to 6.37e-3 (Section V-A).
	if score > 7e-3 {
		t.Fatalf("degree veracity = %g, want within the paper's PGSK range", score)
	}
}

func TestIterationsFor(t *testing.T) {
	init := kronecker.Initiator{Theta: [4]float64{0.9, 0.5, 0.5, 0.1}} // sum 2
	k, err := iterationsFor(init, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if init.ExpectedEdges(k) < 1000 {
		t.Fatalf("k = %d too small", k)
	}
	if kronecker.NumVertices(k)*kronecker.NumVertices(k) < 2000 {
		t.Fatalf("k = %d grid too small", k)
	}
	// Non-growing initiator must error.
	flat := kronecker.Initiator{Theta: [4]float64{0.2, 0.2, 0.2, 0.2}}
	if _, err := iterationsFor(flat, 1000); err == nil {
		t.Fatal("sum<=1 initiator accepted")
	}
}

func TestGeneratorNames(t *testing.T) {
	if (&PGPBA{}).Name() != "PGPBA" || (&PGSK{}).Name() != "PGSK" {
		t.Fatal("generator names wrong")
	}
}
