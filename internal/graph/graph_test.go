package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("zero value not empty: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	first := g.AddVertices(3)
	if first != 0 {
		t.Fatalf("first vertex = %d, want 0", first)
	}
	g.AddEdge(Edge{Src: 0, Dst: 2})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestAddVerticesReturnsFirstID(t *testing.T) {
	g := New(2)
	if got := g.AddVertices(4); got != 2 {
		t.Fatalf("AddVertices returned %d, want 2", got)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", g.NumVertices())
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := New(2)
	for _, e := range []Edge{{Src: 2, Dst: 0}, {Src: 0, Dst: 2}, {Src: -1, Dst: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%v) did not panic", e)
				}
			}()
			g.AddEdge(e)
		}()
	}
}

func TestAddEdgesValidatesBatch(t *testing.T) {
	g := New(3)
	if err := g.AddEdges([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}); err != nil {
		t.Fatalf("AddEdges valid batch: %v", err)
	}
	if err := g.AddEdges([]Edge{{Src: 0, Dst: 3}}); err == nil {
		t.Fatal("AddEdges accepted out-of-range edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d after rejected batch, want 2", g.NumEdges())
	}
}

func TestMultiEdgesAllowed(t *testing.T) {
	g := New(2)
	for i := 0; i < 5; i++ {
		g.AddEdge(Edge{Src: 0, Dst: 1})
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5 multi-edges", g.NumEdges())
	}
	out := g.OutDegrees()
	if out[0] != 5 || out[1] != 0 {
		t.Fatalf("OutDegrees = %v, want [5 0]", out)
	}
}

func TestDegrees(t *testing.T) {
	g := New(4)
	es := []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 3, Dst: 0}}
	for _, e := range es {
		g.AddEdge(e)
	}
	wantOut := []int64{2, 1, 0, 1}
	wantIn := []int64{1, 1, 2, 0}
	out, in, tot := g.OutDegrees(), g.InDegrees(), g.Degrees()
	for v := range wantOut {
		if out[v] != wantOut[v] {
			t.Errorf("out[%d] = %d, want %d", v, out[v], wantOut[v])
		}
		if in[v] != wantIn[v] {
			t.Errorf("in[%d] = %d, want %d", v, in[v], wantIn[v])
		}
		if tot[v] != wantOut[v]+wantIn[v] {
			t.Errorf("tot[%d] = %d, want %d", v, tot[v], wantOut[v]+wantIn[v])
		}
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestSimplifyDedupsAndStripsProps(t *testing.T) {
	g := New(3)
	g.AddEdge(Edge{Src: 0, Dst: 1, Props: EdgeProps{OutBytes: 100}})
	g.AddEdge(Edge{Src: 0, Dst: 1, Props: EdgeProps{OutBytes: 200}})
	g.AddEdge(Edge{Src: 1, Dst: 0})
	g.AddEdge(Edge{Src: 1, Dst: 2})
	s := g.Simplify()
	if s.NumEdges() != 3 {
		t.Fatalf("Simplify edges = %d, want 3", s.NumEdges())
	}
	if s.NumVertices() != 3 {
		t.Fatalf("Simplify vertices = %d, want 3", s.NumVertices())
	}
	for _, e := range s.EdgeSlice() {
		if e.Props != (EdgeProps{}) {
			t.Fatalf("Simplify kept properties on %v", e)
		}
	}
}

func TestSimplifyDirectionality(t *testing.T) {
	// (0,1) and (1,0) are distinct ordered pairs and both must survive.
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.AddEdge(Edge{Src: 1, Dst: 0})
	if s := g.Simplify(); s.NumEdges() != 2 {
		t.Fatalf("Simplify edges = %d, want 2 (directed pairs)", s.NumEdges())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.SetAddr(0, 0x0a000001)
	c := g.Clone()
	c.AddVertices(1)
	c.AddEdge(Edge{Src: 2, Dst: 0})
	c.SetAddr(1, 0x0a000002)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("clone mutated original: %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Addr(1) != 0 {
		t.Fatalf("clone mutated original address table")
	}
	if c.Addr(0) != 0x0a000001 {
		t.Fatalf("clone lost address")
	}
}

func TestAddrTable(t *testing.T) {
	g := New(2)
	if g.HasAddrs() {
		t.Fatal("HasAddrs true before SetAddr")
	}
	if g.Addr(1) != 0 {
		t.Fatal("Addr nonzero before SetAddr")
	}
	g.SetAddr(1, 42)
	if !g.HasAddrs() || g.Addr(1) != 42 || g.Addr(0) != 0 {
		t.Fatalf("address table wrong: %v %d %d", g.HasAddrs(), g.Addr(1), g.Addr(0))
	}
	// AddVertices must extend the table.
	v := g.AddVertices(2)
	if g.Addr(v) != 0 {
		t.Fatal("new vertex has nonzero address")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after AddVertices: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.cols.dst[0] = 7 // corrupt directly
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range edge")
	}
}

func randomGraph(rng *rand.Rand, n int64, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(Edge{
			Src: VertexID(rng.Int64N(n)),
			Dst: VertexID(rng.Int64N(n)),
			Props: EdgeProps{
				Protocol: Protocol(rng.IntN(3) + 1),
				SrcPort:  uint16(rng.IntN(65536)),
				DstPort:  uint16(rng.IntN(65536)),
				Duration: rng.Int64N(1e6),
				OutBytes: rng.Int64N(1e9),
				InBytes:  rng.Int64N(1e9),
				OutPkts:  rng.Int64N(1e5),
				InPkts:   rng.Int64N(1e5),
			},
		})
	}
	return g
}

// Property: sum of out-degrees == sum of in-degrees == |E| for any graph.
func TestDegreeSumInvariant(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int64(nRaw%64) + 1
		m := int(mRaw % 2048)
		rng := rand.New(rand.NewPCG(seed, 1))
		g := randomGraph(rng, n, m)
		var so, si int64
		for _, d := range g.OutDegrees() {
			so += d
		}
		for _, d := range g.InDegrees() {
			si += d
		}
		return so == g.NumEdges() && si == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify is idempotent and never increases the edge count.
func TestSimplifyIdempotent(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int64(nRaw%32) + 1
		m := int(mRaw % 1024)
		rng := rand.New(rand.NewPCG(seed, 2))
		g := randomGraph(rng, n, m)
		s1 := g.Simplify()
		s2 := s1.Simplify()
		if s1.NumEdges() > g.NumEdges() {
			return false
		}
		return s1.NumEdges() == s2.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
