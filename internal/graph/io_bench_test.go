package graph

import (
	"io"
	"testing"
)

// benchGraph builds a deterministic property graph for writer benchmarks.
func benchGraph(b *testing.B, edges int) *Graph {
	b.Helper()
	g := NewWithCapacity(int64(edges/4+2), int64(edges))
	es := make([]Edge, edges)
	for i := range es {
		es[i] = Edge{
			Src: VertexID(i % (edges / 4)), Dst: VertexID((i + 1) % (edges / 4)),
			Props: EdgeProps{
				Protocol: ProtoTCP, State: StateSF,
				SrcPort: uint16(1024 + i%40000), DstPort: uint16(1 + i%1000),
				Duration: int64(i % 5000), OutBytes: int64(100 + i%1400),
				InBytes: int64(40 + i%400), OutPkts: int64(1 + i%10), InPkts: int64(1 + i%8),
			},
		}
	}
	if err := g.AddEdges(es); err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkWriteEdgeList(b *testing.B) {
	g := benchGraph(b, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteEdgeList(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSBG(b *testing.B) {
	g := benchGraph(b, 20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
