package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"csb/internal/bufpool"
)

// Binary graph container format ("CSBG"): a small self-describing format so
// generated graphs can be persisted and reloaded by the CLI tools without
// depending on anything outside the standard library.
//
//	magic     [4]byte  "CSBG"
//	version   uint32   (1)
//	flags     uint32   bit0: address table present
//	vertices  int64
//	edges     int64
//	[addrs]   vertices * uint32
//	edge records, each:
//	  src, dst           int64
//	  protocol, state    uint8
//	  srcPort, dstPort   uint16
//	  duration           int64 (ms)
//	  outBytes, inBytes  int64
//	  outPkts, inPkts    int64

var magic = [4]byte{'C', 'S', 'B', 'G'}

const (
	formatVersion  = 1
	flagAddrs      = 1 << 0
	edgeRecordSize = 8 + 8 + 1 + 1 + 2 + 2 + 8 + 8 + 8 + 8 + 8
)

// EdgeRecordLen is the size of one binary edge record — the unit of the
// CSBG edge section and of the distributed row-encode payloads.
const EdgeRecordLen = edgeRecordSize

// AppendEdgeRecord appends e's fixed-size binary record to dst.
func AppendEdgeRecord(dst []byte, e *Edge) []byte {
	var rec [edgeRecordSize]byte
	encodeEdge(e, rec[:])
	return append(dst, rec[:]...)
}

// DecodeEdgeRecord parses one binary edge record (rec must hold exactly
// EdgeRecordLen bytes; extra bytes are ignored).
func DecodeEdgeRecord(rec []byte) Edge { return decodeEdge(rec) }

// Write serializes the graph in CSBG format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufpool.Get(w)
	defer bufpool.Put(bw)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.addrs != nil {
		flags |= flagAddrs
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], formatVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.numVertices))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.cols.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if g.addrs != nil {
		var b [4]byte
		for _, a := range g.addrs {
			binary.LittleEndian.PutUint32(b[:], a)
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	}
	var rec [edgeRecordSize]byte
	for i, n := 0, g.cols.Len(); i < n; i++ {
		e := g.cols.Edge(i)
		encodeEdge(&e, rec[:])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeEdge(e *Edge, rec []byte) {
	binary.LittleEndian.PutUint64(rec[0:8], uint64(e.Src))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Dst))
	rec[16] = byte(e.Props.Protocol)
	rec[17] = byte(e.Props.State)
	binary.LittleEndian.PutUint16(rec[18:20], e.Props.SrcPort)
	binary.LittleEndian.PutUint16(rec[20:22], e.Props.DstPort)
	binary.LittleEndian.PutUint64(rec[22:30], uint64(e.Props.Duration))
	binary.LittleEndian.PutUint64(rec[30:38], uint64(e.Props.OutBytes))
	binary.LittleEndian.PutUint64(rec[38:46], uint64(e.Props.InBytes))
	binary.LittleEndian.PutUint64(rec[46:54], uint64(e.Props.OutPkts))
	binary.LittleEndian.PutUint64(rec[54:62], uint64(e.Props.InPkts))
}

func decodeEdge(rec []byte) Edge {
	var e Edge
	e.Src = VertexID(binary.LittleEndian.Uint64(rec[0:8]))
	e.Dst = VertexID(binary.LittleEndian.Uint64(rec[8:16]))
	e.Props.Protocol = Protocol(rec[16])
	e.Props.State = TCPState(rec[17])
	e.Props.SrcPort = binary.LittleEndian.Uint16(rec[18:20])
	e.Props.DstPort = binary.LittleEndian.Uint16(rec[20:22])
	e.Props.Duration = int64(binary.LittleEndian.Uint64(rec[22:30]))
	e.Props.OutBytes = int64(binary.LittleEndian.Uint64(rec[30:38]))
	e.Props.InBytes = int64(binary.LittleEndian.Uint64(rec[38:46]))
	e.Props.OutPkts = int64(binary.LittleEndian.Uint64(rec[46:54]))
	e.Props.InPkts = int64(binary.LittleEndian.Uint64(rec[54:62]))
	return e
}

// Read deserializes a CSBG graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m[:])
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != formatVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint32(hdr[4:8])
	nv := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	ne := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if nv < 0 || ne < 0 {
		return nil, fmt.Errorf("graph: corrupt header (vertices=%d edges=%d)", nv, ne)
	}
	if ne > 0 && nv > int64(MaxBatchVertexID)+1 {
		return nil, fmt.Errorf("graph: %d vertices exceed the columnar limit of 2^32", nv)
	}
	// Never pre-allocate from untrusted header counts: a corrupt 24-byte
	// header must not be able to demand terabytes. Grow incrementally with
	// a bounded initial capacity instead.
	const maxPrealloc = 1 << 20
	g := NewWithCapacity(nv, min(ne, maxPrealloc))
	if flags&flagAddrs != 0 {
		g.addrs = make([]uint32, 0, min(nv, maxPrealloc))
		var b [4]byte
		for i := int64(0); i < nv; i++ {
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, fmt.Errorf("graph: reading address table: %w", err)
			}
			g.addrs = append(g.addrs, binary.LittleEndian.Uint32(b[:]))
		}
	}
	var rec [edgeRecordSize]byte
	for i := int64(0); i < ne; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		e := decodeEdge(rec[:])
		// Validate before appending: untrusted input must surface as an
		// error, never as the columnar range panic. The bound also covers
		// the uint32 column limit because nv > 2^32 headers are rejected
		// when edges are present.
		if e.Src < 0 || int64(e.Src) >= nv || e.Dst < 0 || int64(e.Dst) >= nv {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.Src, e.Dst, nv)
		}
		g.cols.Append(e)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// EdgeListHeader is the header row of the tab-separated edge-list format.
const EdgeListHeader = "src\tdst\tproto\tsrc_port\tdst_port\tduration_ms\tout_bytes\tin_bytes\tout_pkts\tin_pkts\tstate\n"

// AppendEdgeListRow appends e's tab-separated edge-list row (with trailing
// newline) to dst. WriteEdgeList and the distributed row encoders share this
// single formatter, which is what keeps their bytes identical.
func AppendEdgeListRow(dst []byte, e *Edge) []byte {
	b := dst
	b = strconv.AppendInt(b, int64(e.Src), 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, int64(e.Dst), 10)
	b = append(b, '\t')
	b = append(b, e.Props.Protocol.String()...)
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(e.Props.SrcPort), 10)
	b = append(b, '\t')
	b = strconv.AppendUint(b, uint64(e.Props.DstPort), 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, e.Props.Duration, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, e.Props.OutBytes, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, e.Props.InBytes, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, e.Props.OutPkts, 10)
	b = append(b, '\t')
	b = strconv.AppendInt(b, e.Props.InPkts, 10)
	b = append(b, '\t')
	b = append(b, e.Props.State.String()...)
	b = append(b, '\n')
	return b
}

// WriteEdgeList writes a human-readable tab-separated edge list with a header
// row, one flow edge per line. Rows are built append-style in a pooled
// scratch buffer; the bytes match the fmt.Fprintf form this replaced
// (TestWriteEdgeListMatchesFprintf locks that in).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufpool.Get(w)
	defer bufpool.Put(bw)
	if _, err := bw.WriteString(EdgeListHeader); err != nil {
		return err
	}
	for i, n := 0, g.cols.Len(); i < n; i++ {
		e := g.cols.Edge(i)
		b := AppendEdgeListRow(bw.Scratch[:0], &e)
		bw.Scratch = b
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}
