package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// writeEdgeListReference is the fmt.Fprintf implementation WriteEdgeList
// replaced; the append-style writer must match it byte for byte.
func writeEdgeListReference(buf *bytes.Buffer, g *Graph) error {
	if _, err := fmt.Fprintln(buf, "src\tdst\tproto\tsrc_port\tdst_port\tduration_ms\tout_bytes\tin_bytes\tout_pkts\tin_pkts\tstate"); err != nil {
		return err
	}
	for i, n := 0, g.cols.Len(); i < n; i++ {
		e := g.cols.Edge(i)
		_, err := fmt.Fprintf(buf, "%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			e.Src, e.Dst, e.Props.Protocol, e.Props.SrcPort, e.Props.DstPort,
			e.Props.Duration, e.Props.OutBytes, e.Props.InBytes, e.Props.OutPkts, e.Props.InPkts, e.Props.State)
		if err != nil {
			return err
		}
	}
	return nil
}

func TestWriteEdgeListMatchesFprintf(t *testing.T) {
	rng := uint64(0x1234_5678_9abc_def1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	g := New(400)
	for i := 0; i < 800; i++ {
		g.AddEdge(Edge{
			Src: VertexID(next() % 400),
			Dst: VertexID(next() % 400),
			Props: EdgeProps{
				Protocol: Protocol(next() % 4),
				State:    TCPState(next() % 9),
				SrcPort:  uint16(next()),
				DstPort:  uint16(next()),
				Duration: int64(next() % 1e7),
				OutBytes: int64(next() % 1e9),
				InBytes:  int64(next() % 1e9),
				OutPkts:  int64(next() % 1e5),
				InPkts:   int64(next() % 1e5),
			},
		})
	}
	// Zero-valued edge exercises the "-"/"unknown" token paths.
	g.AddEdge(Edge{})
	var got, want bytes.Buffer
	if err := g.WriteEdgeList(&got); err != nil {
		t.Fatal(err)
	}
	if err := writeEdgeListReference(&want, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("WriteEdgeList output diverged from fmt reference\n got %d bytes\nwant %d bytes", got.Len(), want.Len())
	}
}
