// Package graph implements the directed property multigraph used throughout
// csb: G = (V, E, Dv, De) where V is a dense set of vertices, E is a multiset
// of directed edges, Dv carries per-vertex data (the vertex ID and, for graphs
// built from network traces, the host address) and De carries the Netflow
// attributes of each edge.
//
// The representation is a compact edge list. The edge list (rather than an
// adjacency structure) is the central data structure of the parallel
// Barabási-Albert algorithm: the number of occurrences of a vertex in the
// edge list equals its degree, so sampling the list uniformly realizes
// preferential attachment in constant time per edge.
package graph

import (
	"errors"
	"fmt"
)

// VertexID identifies a vertex. Vertices are dense: a graph with n vertices
// has IDs 0..n-1.
type VertexID int64

// Protocol is the transport protocol of a flow edge.
type Protocol uint8

// Supported transport protocols.
const (
	ProtoUnknown Protocol = iota
	ProtoTCP
	ProtoUDP
	ProtoICMP
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	default:
		return "unknown"
	}
}

// TCPState is the Bro-style connection state of a TCP flow edge. It is
// meaningful only when the edge protocol is ProtoTCP.
type TCPState uint8

// Bro-style TCP connection states.
const (
	StateNone TCPState = iota // not a TCP connection
	StateS0                   // connection attempt seen, no reply
	StateS1                   // connection established, not terminated
	StateSF                   // normal establishment and termination
	StateREJ                  // connection attempt rejected
	StateRSTO                 // established, originator aborted
	StateRSTR                 // established, responder aborted
	StateSH                   // originator sent SYN followed by FIN, no reply
	StateOTH                  // midstream traffic, no SYN
)

// String returns the Bro-style state mnemonic.
func (s TCPState) String() string {
	switch s {
	case StateS0:
		return "S0"
	case StateS1:
		return "S1"
	case StateSF:
		return "SF"
	case StateREJ:
		return "REJ"
	case StateRSTO:
		return "RSTO"
	case StateRSTR:
		return "RSTR"
	case StateSH:
		return "SH"
	case StateOTH:
		return "OTH"
	default:
		return "-"
	}
}

// EdgeProps holds the Netflow attributes De associated with a flow edge,
// exactly the attribute set of Section III of the paper.
type EdgeProps struct {
	Protocol Protocol // transport protocol (TCP or UDP; ICMP for completeness)
	State    TCPState // TCP connection state; StateNone for non-TCP
	SrcPort  uint16   // source port of the data stream
	DstPort  uint16   // destination port of the data stream
	Duration int64    // duration of the stream in milliseconds
	OutBytes int64    // bytes transferred source -> destination
	InBytes  int64    // bytes transferred destination -> source
	OutPkts  int64    // packets transmitted source -> destination
	InPkts   int64    // packets transmitted destination -> source
}

// Edge is a directed edge of the property multigraph: a TCP connection or
// UDP stream from Src to Dst carrying Netflow attributes.
type Edge struct {
	Src   VertexID
	Dst   VertexID
	Props EdgeProps
}

// Graph is a directed property multigraph. Multiple edges between the same
// ordered vertex pair are permitted (each models a distinct flow).
//
// Edges are stored columnar (struct-of-arrays, see EdgeBatch): parallel
// src/dst/property columns instead of a []Edge slice, so structural scans
// touch 8 bytes per edge and the writers stream the columns sequentially.
//
// The zero value is an empty graph ready for use.
type Graph struct {
	numVertices int64
	cols        EdgeBatch

	// addrs optionally maps each vertex to an IPv4 address (host graphs
	// built from traces). Either nil or of length numVertices.
	addrs []uint32
}

// New returns an empty graph with n vertices and no edges.
func New(n int64) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{numVertices: n}
}

// NewWithCapacity returns an empty graph with n vertices and capacity for
// edgeCap edges, avoiding re-allocation while growing.
func NewWithCapacity(n, edgeCap int64) *Graph {
	g := New(n)
	g.cols.Grow(int(edgeCap))
	return g
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int64 { return g.numVertices }

// NumEdges returns |E| counting multi-edges.
func (g *Graph) NumEdges() int64 { return int64(g.cols.Len()) }

// Cols returns the graph's columnar edge store. The batch is shared with the
// graph: callers may read the columns freely (and mutate properties in place
// via SetEdge) but must not append through it — edge creation goes through
// AddEdge/AddEdges/AppendBatch so endpoint validation holds.
func (g *Graph) Cols() *EdgeBatch { return &g.cols }

// EdgeAt materializes edge i as a row struct.
func (g *Graph) EdgeAt(i int) Edge { return g.cols.Edge(i) }

// EdgeSlice materializes the edge list as a fresh []Edge in edge order. It
// is the bridge to row-structured consumers (the cluster dataset API); the
// result shares no storage with the graph.
func (g *Graph) EdgeSlice() []Edge { return g.cols.Edges() }

// AddVertices appends n new vertices and returns the ID of the first one.
func (g *Graph) AddVertices(n int64) VertexID {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	first := VertexID(g.numVertices)
	g.numVertices += n
	if g.addrs != nil {
		for i := int64(0); i < n; i++ {
			g.addrs = append(g.addrs, 0)
		}
	}
	return first
}

// AddEdge appends a directed edge. Both endpoints must already exist.
func (g *Graph) AddEdge(e Edge) {
	if e.Src < 0 || int64(e.Src) >= g.numVertices || e.Dst < 0 || int64(e.Dst) >= g.numVertices {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, g.numVertices))
	}
	g.cols.Append(e)
}

// AddEdges appends a batch of edges without per-edge bounds checks; the batch
// is validated once. It is the bulk path used by the generators.
func (g *Graph) AddEdges(es []Edge) error {
	for i := range es {
		if es[i].Src < 0 || int64(es[i].Src) >= g.numVertices || es[i].Dst < 0 || int64(es[i].Dst) >= g.numVertices {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, es[i].Src, es[i].Dst, g.numVertices)
		}
	}
	g.cols.AppendEdges(es)
	return nil
}

// AppendBatch appends every edge of b (validated once, copied column-wise).
// It is the zero-boxing bulk path: edges flow from a generator's pooled
// batch into the graph without ever materializing row structs.
func (g *Graph) AppendBatch(b *EdgeBatch) error {
	for i, s := range b.src {
		if int64(s) >= g.numVertices || int64(b.dst[i]) >= g.numVertices {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, s, b.dst[i], g.numVertices)
		}
	}
	g.cols.AppendBatch(b)
	return nil
}

// SetAddr associates an IPv4 address (big-endian uint32) with vertex v.
func (g *Graph) SetAddr(v VertexID, addr uint32) {
	if g.addrs == nil {
		g.addrs = make([]uint32, g.numVertices)
	}
	g.addrs[v] = addr
}

// Addr returns the IPv4 address associated with v, or 0 if none was set.
func (g *Graph) Addr(v VertexID) uint32 {
	if g.addrs == nil || int64(v) >= int64(len(g.addrs)) {
		return 0
	}
	return g.addrs[v]
}

// HasAddrs reports whether vertex addresses were recorded.
func (g *Graph) HasAddrs() bool { return g.addrs != nil }

// OutDegrees returns the out-degree of every vertex (multi-edges counted).
// The scan touches only the 4-byte src column.
func (g *Graph) OutDegrees() []int64 {
	deg := make([]int64, g.numVertices)
	for _, s := range g.cols.src {
		deg[s]++
	}
	return deg
}

// InDegrees returns the in-degree of every vertex (multi-edges counted).
// The scan touches only the 4-byte dst column.
func (g *Graph) InDegrees() []int64 {
	deg := make([]int64, g.numVertices)
	for _, d := range g.cols.dst {
		deg[d]++
	}
	return deg
}

// Degrees returns the total degree (in+out) of every vertex.
func (g *Graph) Degrees() []int64 {
	deg := make([]int64, g.numVertices)
	for i := range g.cols.src {
		deg[g.cols.src[i]]++
		deg[g.cols.dst[i]]++
	}
	return deg
}

// Simplify returns the standard-graph projection Gp of the property graph:
// at most one edge is kept between any ordered vertex pair and all edge
// properties are dropped. This is the E -> Ep step of the PGSK algorithm
// (Figure 3, lines 1-5), implemented with a hashed edge set in O(|E|).
func (g *Graph) Simplify() *Graph {
	n := g.cols.Len()
	seen := make(map[[2]VertexID]struct{}, n)
	out := NewWithCapacity(g.numVertices, int64(n))
	for i := 0; i < n; i++ {
		k := [2]VertexID{g.cols.SrcID(i), g.cols.DstID(i)}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.cols.Append(Edge{Src: k[0], Dst: k[1]})
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{numVertices: g.numVertices}
	out.cols = *g.cols.Clone()
	if g.addrs != nil {
		out.addrs = make([]uint32, len(g.addrs))
		copy(out.addrs, g.addrs)
	}
	return out
}

// Validate checks structural invariants: every edge endpoint is a valid
// vertex and the address table, if present, covers every vertex.
func (g *Graph) Validate() error {
	if g.numVertices < 0 {
		return errors.New("graph: negative vertex count")
	}
	if g.addrs != nil && int64(len(g.addrs)) != g.numVertices {
		return fmt.Errorf("graph: address table has %d entries for %d vertices", len(g.addrs), g.numVertices)
	}
	for i, s := range g.cols.src {
		// The uint32 columns cannot hold negatives, so only the upper
		// bound needs checking.
		if int64(s) >= g.numVertices {
			return fmt.Errorf("graph: edge %d has source %d out of range [0,%d)", i, s, g.numVertices)
		}
		if d := g.cols.dst[i]; int64(d) >= g.numVertices {
			return fmt.Errorf("graph: edge %d has destination %d out of range [0,%d)", i, d, g.numVertices)
		}
	}
	return nil
}

// MaxDegree returns the maximum total degree in the graph, or 0 if empty.
func (g *Graph) MaxDegree() int64 {
	var maxDeg int64
	for _, d := range g.Degrees() {
		if d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}
