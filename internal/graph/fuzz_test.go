package graph

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// FuzzRead asserts the CSBG reader never panics, and that any graph it
// accepts passes validation and survives a write/read round trip.
func FuzzRead(f *testing.F) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := randomGraph(rng, 8, 20)
	g.SetAddr(0, 0x0a000001)
	var buf bytes.Buffer
	_ = g.Write(&buf)
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte("CSBG"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if again.NumVertices() != got.NumVertices() || again.NumEdges() != got.NumEdges() {
			t.Fatal("round trip changed sizes")
		}
	})
}
