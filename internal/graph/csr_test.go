package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuildCSRBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.AddEdge(Edge{Src: 0, Dst: 2})
	g.AddEdge(Edge{Src: 2, Dst: 3})
	g.AddEdge(Edge{Src: 3, Dst: 0})

	c := BuildCSR(g)
	if c.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", c.NumVertices())
	}
	if c.NumArcs() != 4 {
		t.Fatalf("NumArcs = %d, want 4", c.NumArcs())
	}
	got := c.Neighbors(0)
	if len(got) != 2 {
		t.Fatalf("Neighbors(0) = %v, want 2 arcs", got)
	}
	if c.Degree(1) != 0 {
		t.Fatalf("Degree(1) = %d, want 0", c.Degree(1))
	}
	if c.Degree(2) != 1 || c.Neighbors(2)[0] != 3 {
		t.Fatalf("Neighbors(2) = %v, want [3]", c.Neighbors(2))
	}
}

func TestBuildReverseCSR(t *testing.T) {
	g := New(3)
	g.AddEdge(Edge{Src: 0, Dst: 2})
	g.AddEdge(Edge{Src: 1, Dst: 2})
	r := BuildReverseCSR(g)
	if r.Degree(2) != 2 {
		t.Fatalf("reverse Degree(2) = %d, want 2", r.Degree(2))
	}
	if r.Degree(0) != 0 || r.Degree(1) != 0 {
		t.Fatalf("reverse degrees of sources nonzero")
	}
}

func TestCSRMultiEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.AddEdge(Edge{Src: 0, Dst: 1})
	c := BuildCSR(g)
	if c.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2 (multi-edges kept)", c.Degree(0))
	}
}

func TestHasArc(t *testing.T) {
	g := New(5)
	g.AddEdge(Edge{Src: 0, Dst: 4})
	g.AddEdge(Edge{Src: 0, Dst: 1})
	g.AddEdge(Edge{Src: 0, Dst: 3})
	c := BuildCSR(g)
	c.SortNeighbors()
	for _, w := range []VertexID{1, 3, 4} {
		if !c.HasArc(0, w) {
			t.Errorf("HasArc(0,%d) = false, want true", w)
		}
	}
	if c.HasArc(0, 2) || c.HasArc(1, 0) {
		t.Error("HasArc reported nonexistent arc")
	}
}

func TestCSREmptyGraph(t *testing.T) {
	g := New(0)
	c := BuildCSR(g)
	if c.NumVertices() != 0 || c.NumArcs() != 0 {
		t.Fatalf("empty CSR: %d vertices %d arcs", c.NumVertices(), c.NumArcs())
	}
}

// Property: CSR degrees match Graph.OutDegrees, and reverse CSR degrees match
// InDegrees, for arbitrary graphs.
func TestCSRDegreeAgreement(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int64(nRaw%64) + 1
		m := int(mRaw % 2048)
		rng := rand.New(rand.NewPCG(seed, 3))
		g := randomGraph(rng, n, m)
		c := BuildCSR(g)
		r := BuildReverseCSR(g)
		out, in := g.OutDegrees(), g.InDegrees()
		for v := int64(0); v < n; v++ {
			if c.Degree(VertexID(v)) != out[v] || r.Degree(VertexID(v)) != in[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
