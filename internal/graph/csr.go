package graph

import "sort"

// CSR is a compressed sparse row view of a graph's adjacency, used by the
// iterative algorithms (PageRank, BFS) that need fast neighbor scans. It is
// immutable once built.
type CSR struct {
	// Offsets has length NumVertices+1; the neighbors of vertex v are
	// Targets[Offsets[v]:Offsets[v+1]].
	Offsets []int64
	// Targets lists neighbor vertex IDs, grouped by source vertex.
	Targets []VertexID
}

// NumVertices returns the number of vertices covered by the CSR.
func (c *CSR) NumVertices() int64 { return int64(len(c.Offsets)) - 1 }

// NumArcs returns the total number of stored arcs (multi-edges included).
func (c *CSR) NumArcs() int64 { return int64(len(c.Targets)) }

// Neighbors returns the adjacency list of v. The returned slice aliases the
// CSR storage and must not be modified.
func (c *CSR) Neighbors(v VertexID) []VertexID {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns the number of stored arcs out of v.
func (c *CSR) Degree(v VertexID) int64 {
	return c.Offsets[v+1] - c.Offsets[v]
}

// BuildCSR builds the out-adjacency CSR of g via counting sort in O(|V|+|E|).
func BuildCSR(g *Graph) *CSR {
	return buildCSR(g, false)
}

// BuildReverseCSR builds the in-adjacency (transposed) CSR of g.
func BuildReverseCSR(g *Graph) *CSR {
	return buildCSR(g, true)
}

func buildCSR(g *Graph, reverse bool) *CSR {
	n := g.numVertices
	offsets := make([]int64, n+1)
	// Both passes read only the two 4-byte endpoint columns — the property
	// columns never enter cache during CSR construction.
	srcs, dsts := g.cols.src, g.cols.dst
	if reverse {
		srcs, dsts = dsts, srcs
	}
	for _, src := range srcs {
		offsets[src+1]++
	}
	for v := int64(1); v <= n; v++ {
		offsets[v] += offsets[v-1]
	}
	targets := make([]VertexID, len(srcs))
	cursor := make([]int64, n)
	for i, src := range srcs {
		targets[offsets[src]+cursor[src]] = VertexID(dsts[i])
		cursor[src]++
	}
	return &CSR{Offsets: offsets, Targets: targets}
}

// SortNeighbors sorts each adjacency list ascending, enabling binary-search
// membership tests.
func (c *CSR) SortNeighbors() {
	n := c.NumVertices()
	for v := int64(0); v < n; v++ {
		nb := c.Targets[c.Offsets[v]:c.Offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
}

// HasArc reports whether an arc v->w is stored. Requires SortNeighbors to
// have been called.
func (c *CSR) HasArc(v, w VertexID) bool {
	nb := c.Neighbors(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	return i < len(nb) && nb[i] == w
}
