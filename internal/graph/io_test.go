package graph

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g := randomGraph(rng, 20, 100)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := range g.EdgeSlice() {
		if g.EdgeSlice()[i] != got.EdgeSlice()[i] {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, g.EdgeSlice()[i], got.EdgeSlice()[i])
		}
	}
}

func TestWriteReadAddrs(t *testing.T) {
	g := New(3)
	g.SetAddr(0, 0xc0a80001)
	g.SetAddr(2, 0x0a000001)
	g.AddEdge(Edge{Src: 0, Dst: 2})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.HasAddrs() {
		t.Fatal("address table lost in round trip")
	}
	if got.Addr(0) != 0xc0a80001 || got.Addr(1) != 0 || got.Addr(2) != 0x0a000001 {
		t.Fatalf("addresses wrong after round trip: %x %x %x", got.Addr(0), got.Addr(1), got.Addr(2))
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....................")); err == nil {
		t.Fatal("Read accepted bad magic")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	b := buf.Bytes()
	for _, cut := range []int{3, 10, 27, len(b) - 1} {
		if cut >= len(b) {
			continue
		}
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("Read accepted truncation at %d bytes", cut)
		}
	}
}

func TestReadEmptyGraph(t *testing.T) {
	g := New(0)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty graph round trip: %d/%d", got.NumVertices(), got.NumEdges())
	}
}

func TestWriteEdgeList(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{Src: 0, Dst: 1, Props: EdgeProps{
		Protocol: ProtoTCP, State: StateSF, SrcPort: 1234, DstPort: 80,
		Duration: 1500, OutBytes: 10, InBytes: 20, OutPkts: 3, InPkts: 4,
	}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 edge", len(lines))
	}
	if !strings.Contains(lines[1], "tcp") || !strings.Contains(lines[1], "SF") {
		t.Fatalf("edge line missing fields: %q", lines[1])
	}
}

func TestProtocolStateStrings(t *testing.T) {
	cases := map[string]string{
		ProtoTCP.String():     "tcp",
		ProtoUDP.String():     "udp",
		ProtoICMP.String():    "icmp",
		ProtoUnknown.String(): "unknown",
		StateS0.String():      "S0",
		StateSF.String():      "SF",
		StateREJ.String():     "REJ",
		StateNone.String():    "-",
		StateOTH.String():     "OTH",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
