package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomEdges builds m random in-range edges over n vertices.
func randomEdges(rng *rand.Rand, n int64, m int) []Edge {
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{
			Src: VertexID(rng.Int64N(n)),
			Dst: VertexID(rng.Int64N(n)),
			Props: EdgeProps{
				Protocol: Protocol(rng.IntN(4)),
				State:    TCPState(rng.IntN(9)),
				SrcPort:  uint16(rng.IntN(65536)),
				DstPort:  uint16(rng.IntN(65536)),
				Duration: rng.Int64N(1e7),
				OutBytes: rng.Int64N(1e9),
				InBytes:  rng.Int64N(1e9),
				OutPkts:  rng.Int64N(1e5),
				InPkts:   rng.Int64N(1e5),
			},
		}
	}
	return es
}

// Property: appending edges one at a time and reading them back through every
// accessor (Edge, SrcID/DstID, the per-column accessors, Props, Edges) is the
// identity.
func TestEdgeBatchAppendIterateRoundTrip(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		m := int(mRaw%512) + 1
		rng := rand.New(rand.NewPCG(seed, 3))
		in := randomEdges(rng, 1<<20, m)
		b := NewEdgeBatch(0)
		for _, e := range in {
			b.Append(e)
		}
		if b.Len() != m {
			return false
		}
		for i, want := range in {
			if b.Edge(i) != want {
				return false
			}
			if b.SrcID(i) != want.Src || b.DstID(i) != want.Dst {
				return false
			}
			if b.Protocol(i) != want.Props.Protocol || b.State(i) != want.Props.State {
				return false
			}
			if b.SrcPort(i) != want.Props.SrcPort || b.DstPort(i) != want.Props.DstPort {
				return false
			}
			if b.Duration(i) != want.Props.Duration ||
				b.OutBytes(i) != want.Props.OutBytes || b.InBytes(i) != want.Props.InBytes ||
				b.OutPkts(i) != want.Props.OutPkts || b.InPkts(i) != want.Props.InPkts {
				return false
			}
			if b.Props(i) != want.Props {
				return false
			}
		}
		out := b.Edges()
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every bulk-append path — AppendEdges, AppendBatch, AppendRange
// over slices — lands the same columns as per-edge Append.
func TestEdgeBatchBulkAppendEquivalence(t *testing.T) {
	f := func(seed uint64, mRaw uint16, cut uint8) bool {
		m := int(mRaw%512) + 2
		lo := int(cut) % m
		rng := rand.New(rand.NewPCG(seed, 4))
		in := randomEdges(rng, 1<<16, m)

		ref := NewEdgeBatch(m)
		for _, e := range in {
			ref.Append(e)
		}

		viaEdges := NewEdgeBatch(0)
		viaEdges.AppendEdges(in)

		viaBatch := NewEdgeBatch(0)
		viaBatch.AppendBatch(ref)

		viaRange := NewEdgeBatch(0)
		viaRange.AppendRange(ref, 0, lo)
		viaRange.AppendRange(ref, lo, m)

		for _, b := range []*EdgeBatch{viaEdges, viaBatch, viaRange} {
			if b.Len() != ref.Len() {
				return false
			}
			for i := 0; i < m; i++ {
				if b.Edge(i) != ref.Edge(i) {
					return false
				}
			}
		}
		// And a pure slice: AppendRange(lo, hi) equals Edges()[lo:hi].
		slice := NewEdgeBatch(0)
		slice.AppendRange(ref, lo, m)
		tail := ref.Edges()[lo:]
		if slice.Len() != len(tail) {
			return false
		}
		for i := range tail {
			if slice.Edge(i) != tail[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Truncate keeps the prefix and the capacity; Reset then re-append
// round-trips fresh data with no residue from the previous fill.
func TestEdgeBatchTruncateResetRoundTrip(t *testing.T) {
	f := func(seed uint64, mRaw uint16, keepRaw uint16) bool {
		m := int(mRaw%512) + 1
		keep := int(keepRaw) % (m + 1)
		rng := rand.New(rand.NewPCG(seed, 5))
		first := randomEdges(rng, 1<<16, m)
		second := randomEdges(rng, 1<<16, m)

		b := NewEdgeBatch(0)
		b.AppendEdges(first)
		capBefore := b.Cap()
		b.Truncate(keep)
		if b.Len() != keep || b.Cap() != capBefore {
			return false
		}
		for i := 0; i < keep; i++ {
			if b.Edge(i) != first[i] {
				return false
			}
		}
		b.Reset()
		if b.Len() != 0 || b.Cap() != capBefore {
			return false
		}
		b.AppendEdges(second)
		for i := range second {
			if b.Edge(i) != second[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: data handed out before PutBatch — materialized Edges, Edge and
// Props values — is never aliased by the pool. A later borrower overwriting
// the recycled columns must not be visible through the earlier snapshot.
func TestEdgeBatchPooledReuseNeverAliases(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		m := int(mRaw%256) + 1
		rng := rand.New(rand.NewPCG(seed, 6))
		first := randomEdges(rng, 1<<16, m)
		second := randomEdges(rng, 1<<16, m)

		b1 := GetBatch(m)
		if b1.Len() != 0 {
			return false // pool must hand out reset batches
		}
		b1.AppendEdges(first)
		snapshot := b1.Edges() // the documented way to keep data past PutBatch
		edge0 := b1.Edge(0)
		props0 := b1.Props(0)
		PutBatch(b1)

		// Borrow repeatedly so the recycled storage almost surely comes back,
		// and overwrite it with different data.
		for round := 0; round < 4; round++ {
			b2 := GetBatch(m)
			if b2.Len() != 0 {
				return false
			}
			b2.AppendEdges(second)
			PutBatch(b2)
		}

		for i := range first {
			if snapshot[i] != first[i] {
				return false
			}
		}
		return edge0 == first[0] && props0 == first[0].Props
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeBatchCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	in := randomEdges(rng, 1024, 64)
	b := NewEdgeBatch(0)
	b.AppendEdges(in)
	c := b.Clone()
	c.SetEdge(0, Edge{Src: 1, Dst: 2})
	c.Append(Edge{Src: 3, Dst: 4})
	if b.Len() != len(in) {
		t.Fatalf("clone append changed original length: %d", b.Len())
	}
	if b.Edge(0) != in[0] {
		t.Fatalf("clone SetEdge mutated original edge 0")
	}
}

func TestEdgeBatchRejectsOversizedVertexID(t *testing.T) {
	for _, e := range []Edge{{Src: MaxBatchVertexID + 1}, {Src: 0, Dst: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%v) did not panic", e)
				}
			}()
			NewEdgeBatch(0).Append(e)
		}()
	}
}

// BenchmarkColumnarScan measures the structural + attribute scans over the
// columnar store — the access pattern behind degree counting and the eval
// marginals. It must run allocation-free: the scan never materializes Edge
// structs.
func BenchmarkColumnarScan(b *testing.B) {
	g := benchGraph(b, 100_000)
	cols := g.Cols()
	n := cols.Len()
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var endpoints, volume int64
		for j := 0; j < n; j++ {
			endpoints += int64(cols.SrcID(j)) + int64(cols.DstID(j))
		}
		for j := 0; j < n; j++ {
			volume += cols.OutBytes(j) + cols.InBytes(j)
		}
		sink = endpoints + volume
	}
	_ = sink
}
