package graph

import (
	"fmt"
	"sync"
)

// EdgeBatch is the columnar (struct-of-arrays) edge store: eleven parallel
// columns holding the same information as []Edge, laid out so hot scans touch
// only the bytes they need. Degree counting, CSR construction and component
// labeling read just the 4-byte src/dst columns (8 bytes per edge instead of
// the 64-byte Edge struct), and the property columns stream sequentially
// through the artifact writers. Vertex IDs are stored as uint32 — four
// billion vertices per graph, twice the paper's billion-edge ambition — and
// widen back to VertexID on access.
//
// The zero value is an empty batch ready for use. An EdgeBatch is not safe
// for concurrent mutation; concurrent reads are fine.
type EdgeBatch struct {
	src, dst         []uint32
	proto, state     []uint8
	srcPort, dstPort []uint16
	duration         []int64
	outBytes, inByte []int64
	outPkts, inPkts  []int64
}

// MaxBatchVertexID is the largest vertex ID the columnar layout can store.
const MaxBatchVertexID = VertexID(1<<32 - 1)

// NewEdgeBatch returns an empty batch with capacity for capacity edges.
func NewEdgeBatch(capacity int) *EdgeBatch {
	b := &EdgeBatch{}
	b.Grow(capacity)
	return b
}

// Len returns the number of edges in the batch.
func (b *EdgeBatch) Len() int { return len(b.src) }

// Cap returns the edge capacity the batch can hold without reallocating.
func (b *EdgeBatch) Cap() int { return cap(b.src) }

// Grow ensures capacity for n more edges beyond Len.
func (b *EdgeBatch) Grow(n int) {
	if n <= 0 || b.Len()+n <= b.Cap() {
		return
	}
	need := b.Len() + n
	b.src = growCol(b.src, need)
	b.dst = growCol(b.dst, need)
	b.proto = growCol(b.proto, need)
	b.state = growCol(b.state, need)
	b.srcPort = growCol(b.srcPort, need)
	b.dstPort = growCol(b.dstPort, need)
	b.duration = growCol(b.duration, need)
	b.outBytes = growCol(b.outBytes, need)
	b.inByte = growCol(b.inByte, need)
	b.outPkts = growCol(b.outPkts, need)
	b.inPkts = growCol(b.inPkts, need)
}

func growCol[T any](col []T, need int) []T {
	if cap(col) >= need {
		return col
	}
	out := make([]T, len(col), need)
	copy(out, col)
	return out
}

// checkID panics when v does not fit the 32-bit vertex columns.
func checkID(v VertexID) uint32 {
	if v < 0 || v > MaxBatchVertexID {
		panic(fmt.Sprintf("graph: vertex %d outside the columnar range [0, 2^32)", v))
	}
	return uint32(v)
}

// Append adds one edge to the batch.
func (b *EdgeBatch) Append(e Edge) {
	b.src = append(b.src, checkID(e.Src))
	b.dst = append(b.dst, checkID(e.Dst))
	b.proto = append(b.proto, uint8(e.Props.Protocol))
	b.state = append(b.state, uint8(e.Props.State))
	b.srcPort = append(b.srcPort, e.Props.SrcPort)
	b.dstPort = append(b.dstPort, e.Props.DstPort)
	b.duration = append(b.duration, e.Props.Duration)
	b.outBytes = append(b.outBytes, e.Props.OutBytes)
	b.inByte = append(b.inByte, e.Props.InBytes)
	b.outPkts = append(b.outPkts, e.Props.OutPkts)
	b.inPkts = append(b.inPkts, e.Props.InPkts)
}

// AppendEdges bulk-appends a row-structured edge slice.
func (b *EdgeBatch) AppendEdges(es []Edge) {
	b.Grow(len(es))
	for i := range es {
		b.Append(es[i])
	}
}

// AppendBatch appends every edge of o (column-wise copies, no per-edge work).
func (b *EdgeBatch) AppendBatch(o *EdgeBatch) {
	b.Grow(o.Len())
	b.src = append(b.src, o.src...)
	b.dst = append(b.dst, o.dst...)
	b.proto = append(b.proto, o.proto...)
	b.state = append(b.state, o.state...)
	b.srcPort = append(b.srcPort, o.srcPort...)
	b.dstPort = append(b.dstPort, o.dstPort...)
	b.duration = append(b.duration, o.duration...)
	b.outBytes = append(b.outBytes, o.outBytes...)
	b.inByte = append(b.inByte, o.inByte...)
	b.outPkts = append(b.outPkts, o.outPkts...)
	b.inPkts = append(b.inPkts, o.inPkts...)
}

// AppendRange appends edges o[lo:hi] (column-wise copies).
func (b *EdgeBatch) AppendRange(o *EdgeBatch, lo, hi int) {
	b.Grow(hi - lo)
	b.src = append(b.src, o.src[lo:hi]...)
	b.dst = append(b.dst, o.dst[lo:hi]...)
	b.proto = append(b.proto, o.proto[lo:hi]...)
	b.state = append(b.state, o.state[lo:hi]...)
	b.srcPort = append(b.srcPort, o.srcPort[lo:hi]...)
	b.dstPort = append(b.dstPort, o.dstPort[lo:hi]...)
	b.duration = append(b.duration, o.duration[lo:hi]...)
	b.outBytes = append(b.outBytes, o.outBytes[lo:hi]...)
	b.inByte = append(b.inByte, o.inByte[lo:hi]...)
	b.outPkts = append(b.outPkts, o.outPkts[lo:hi]...)
	b.inPkts = append(b.inPkts, o.inPkts[lo:hi]...)
}

// SrcID returns the source vertex of edge i, touching only the src column.
func (b *EdgeBatch) SrcID(i int) VertexID { return VertexID(b.src[i]) }

// DstID returns the destination vertex of edge i, touching only the dst
// column.
func (b *EdgeBatch) DstID(i int) VertexID { return VertexID(b.dst[i]) }

// Per-column accessors: each reads exactly one column, so a scan that needs
// a single attribute (the eval marginals, protocol histograms) streams only
// that column's bytes.

// Protocol returns the transport protocol of edge i.
func (b *EdgeBatch) Protocol(i int) Protocol { return Protocol(b.proto[i]) }

// State returns the TCP state of edge i.
func (b *EdgeBatch) State(i int) TCPState { return TCPState(b.state[i]) }

// SrcPort returns the source port of edge i.
func (b *EdgeBatch) SrcPort(i int) uint16 { return b.srcPort[i] }

// DstPort returns the destination port of edge i.
func (b *EdgeBatch) DstPort(i int) uint16 { return b.dstPort[i] }

// Duration returns the flow duration (ms) of edge i.
func (b *EdgeBatch) Duration(i int) int64 { return b.duration[i] }

// OutBytes returns the source->destination byte count of edge i.
func (b *EdgeBatch) OutBytes(i int) int64 { return b.outBytes[i] }

// InBytes returns the destination->source byte count of edge i.
func (b *EdgeBatch) InBytes(i int) int64 { return b.inByte[i] }

// OutPkts returns the source->destination packet count of edge i.
func (b *EdgeBatch) OutPkts(i int) int64 { return b.outPkts[i] }

// InPkts returns the destination->source packet count of edge i.
func (b *EdgeBatch) InPkts(i int) int64 { return b.inPkts[i] }

// Props materializes the Netflow attribute struct of edge i.
func (b *EdgeBatch) Props(i int) EdgeProps {
	return EdgeProps{
		Protocol: Protocol(b.proto[i]),
		State:    TCPState(b.state[i]),
		SrcPort:  b.srcPort[i],
		DstPort:  b.dstPort[i],
		Duration: b.duration[i],
		OutBytes: b.outBytes[i],
		InBytes:  b.inByte[i],
		OutPkts:  b.outPkts[i],
		InPkts:   b.inPkts[i],
	}
}

// Edge materializes edge i as a row struct.
func (b *EdgeBatch) Edge(i int) Edge {
	return Edge{Src: b.SrcID(i), Dst: b.DstID(i), Props: b.Props(i)}
}

// SetEdge overwrites edge i in place.
func (b *EdgeBatch) SetEdge(i int, e Edge) {
	b.src[i] = checkID(e.Src)
	b.dst[i] = checkID(e.Dst)
	b.proto[i] = uint8(e.Props.Protocol)
	b.state[i] = uint8(e.Props.State)
	b.srcPort[i] = e.Props.SrcPort
	b.dstPort[i] = e.Props.DstPort
	b.duration[i] = e.Props.Duration
	b.outBytes[i] = e.Props.OutBytes
	b.inByte[i] = e.Props.InBytes
	b.outPkts[i] = e.Props.OutPkts
	b.inPkts[i] = e.Props.InPkts
}

// Truncate shortens the batch to n edges, keeping capacity.
func (b *EdgeBatch) Truncate(n int) {
	b.src = b.src[:n]
	b.dst = b.dst[:n]
	b.proto = b.proto[:n]
	b.state = b.state[:n]
	b.srcPort = b.srcPort[:n]
	b.dstPort = b.dstPort[:n]
	b.duration = b.duration[:n]
	b.outBytes = b.outBytes[:n]
	b.inByte = b.inByte[:n]
	b.outPkts = b.outPkts[:n]
	b.inPkts = b.inPkts[:n]
}

// Reset empties the batch, keeping capacity for reuse.
func (b *EdgeBatch) Reset() { b.Truncate(0) }

// Clone returns a deep copy.
func (b *EdgeBatch) Clone() *EdgeBatch {
	out := NewEdgeBatch(b.Len())
	out.AppendBatch(b)
	return out
}

// Edges materializes the whole batch as a fresh row-structured slice. The
// result shares no storage with the batch.
func (b *EdgeBatch) Edges() []Edge {
	out := make([]Edge, b.Len())
	for i := range out {
		out[i] = b.Edge(i)
	}
	return out
}

// batchPool recycles EdgeBatch column storage across pipeline stages (the
// same discipline bufpool applies to the writers' buffers): borrow with
// GetBatch, fill, hand off or consume, return with PutBatch. A returned
// batch's columns are truncated, never zeroed — the next borrower appends
// over them — so PutBatch must only be called once no live reference aliases
// the batch (the property tests pin this down).
var batchPool = sync.Pool{New: func() any { return new(EdgeBatch) }}

// GetBatch borrows a reset batch with capacity for at least capacity edges.
func GetBatch(capacity int) *EdgeBatch {
	b := batchPool.Get().(*EdgeBatch)
	b.Grow(capacity)
	return b
}

// PutBatch resets b and returns it to the pool. The caller must not retain
// any reference to b or its columns.
func PutBatch(b *EdgeBatch) {
	b.Reset()
	batchPool.Put(b)
}
