package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"csb/internal/cluster"
)

// Runner executes a normalized grid spec and writes the run directory:
//
//	<OutDir>/<Stamp>/results.csv   one row per cell, canonical order
//	<OutDir>/<Stamp>/logs/         one log per cell (timings, placement)
//	<OutDir>/<Stamp>/analysis.md   grouped summaries and paper-shaped tables
//
// results.csv is a pure function of the spec: same spec ⇒ same bytes, at
// any MaxParallel, with or without a Remote executor. The logs record
// wall-clock and placement and are explicitly outside that contract.
type Runner struct {
	Spec *GridSpec
	// SpecPath is echoed into analysis.md so the run is reproducible by
	// copy-paste; empty means "experiments.json".
	SpecPath string
	// MaxParallel bounds concurrent local cell executions (0 means
	// GOMAXPROCS). With a Remote executor it bounds in-flight dispatches.
	MaxParallel int
	// Remote, when non-nil, dispatches cells through the distributed
	// runtime (dist.Coordinator implements it). A declined dispatch
	// (cluster.ErrNoRemote, e.g. no live workers) falls back to local
	// execution — cells are pure functions, so placement never changes
	// results.
	Remote cluster.TaskExecutor
	// OutDir is the runs root (default "runs").
	OutDir string
	// Stamp names the run directory; empty derives it from the spec
	// content address (first 12 hex digits of GridSpec.ID), so one spec
	// maps to one directory.
	Stamp string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// RunResult reports a completed grid run.
type RunResult struct {
	Dir     string // the run directory
	CSVPath string
	Rows    []Row  // in canonical cell order
	CSV     []byte // the exact results.csv bytes
	Remote  int    // cells executed on dist workers
	Local   int    // cells executed in-process
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// cellOutcome is one cell's execution record for the log file.
type cellOutcome struct {
	row     *Row
	err     error
	where   string
	elapsed time.Duration
}

// Run executes every cell and writes the run directory. The first cell
// error cancels the remaining cells and fails the run.
func (r *Runner) Run(ctx context.Context) (*RunResult, error) {
	sp := r.Spec
	cells := sp.Cells()
	if len(cells) == 0 {
		return nil, errors.New("eval: grid has no cells")
	}
	par := r.MaxParallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	outcomes := make([]cellOutcome, len(cells))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[i] = r.runOne(ctx, cells[i])
			if outcomes[i].err != nil {
				cancel() // first failure stops the grid
			} else {
				r.logf("cell %d/%d done (%s, %s, %v)", i+1, len(cells),
					cells[i].Display(), outcomes[i].where, outcomes[i].elapsed.Round(time.Millisecond))
			}
		}(i)
	}
	wg.Wait()

	// Report a real cell failure over a "cancelled before start" outcome:
	// cancellation is the consequence, not the cause.
	for i := range outcomes {
		if err := outcomes[i].err; err != nil {
			return nil, fmt.Errorf("eval: cell %d (%s): %w", i, cells[i].Display(), err)
		}
	}
	res := &RunResult{Rows: make([]Row, len(cells))}
	for i := range outcomes {
		o := &outcomes[i]
		if o.row == nil { // cancelled before start
			return nil, fmt.Errorf("eval: cell %d (%s): cancelled: %w", i, cells[i].Display(), ctx.Err())
		}
		res.Rows[i] = *o.row
		switch o.where {
		case "local":
			res.Local++
		default:
			res.Remote++
		}
	}
	res.CSV = WriteCSV(res.Rows)

	// Write the run directory.
	stamp := r.Stamp
	if stamp == "" {
		stamp = sp.ID()[:12]
	}
	outDir := r.OutDir
	if outDir == "" {
		outDir = "runs"
	}
	res.Dir = filepath.Join(outDir, stamp)
	logsDir := filepath.Join(res.Dir, "logs")
	if err := os.MkdirAll(logsDir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: creating run directory: %w", err)
	}
	res.CSVPath = filepath.Join(res.Dir, "results.csv")
	if err := os.WriteFile(res.CSVPath, res.CSV, 0o644); err != nil {
		return nil, fmt.Errorf("eval: writing results.csv: %w", err)
	}
	for i := range outcomes {
		if err := writeCellLog(logsDir, &cells[i], &outcomes[i]); err != nil {
			return nil, err
		}
	}
	analysis := Analysis(sp, r.specPath(), res.Rows)
	if err := os.WriteFile(filepath.Join(res.Dir, "analysis.md"), analysis, 0o644); err != nil {
		return nil, fmt.Errorf("eval: writing analysis.md: %w", err)
	}
	return res, nil
}

func (r *Runner) specPath() string {
	if r.SpecPath != "" {
		return r.SpecPath
	}
	return "experiments.json"
}

// runOne executes one cell, remotely when a Remote executor accepts it.
// Local and remote execution share RunCellBytes, so the row bytes cannot
// depend on placement.
func (r *Runner) runOne(ctx context.Context, c Cell) cellOutcome {
	start := time.Now()
	payload, err := json.Marshal(CellPayload{Spec: *r.Spec, Cell: c})
	if err != nil {
		return cellOutcome{err: fmt.Errorf("encoding payload: %w", err)}
	}
	var reply []byte
	where := "local"
	if r.Remote != nil {
		reply, err = r.Remote.ExecRemote(ctx,
			cluster.StageInfo{Op: "eval", Label: r.Spec.Name, Seq: 0},
			cluster.AttemptInfo{Task: c.Index},
			CellTaskKind, func() []byte { return payload })
		if err == nil {
			where = "remote"
		} else if ctx.Err() == nil {
			// Declined (no live workers) or failed (worker lost, cell
			// error) dispatches fall back to in-process execution: cells
			// are pure functions, so re-running locally either produces
			// the identical row or surfaces the cell's real error.
			if !errors.Is(err, cluster.ErrNoRemote) {
				r.logf("cell %d: remote dispatch failed (%v), retrying locally", c.Index, err)
			}
			reply, err = RunCellBytes(payload)
		}
	} else {
		reply, err = RunCellBytes(payload)
	}
	if err != nil {
		return cellOutcome{err: err, where: where, elapsed: time.Since(start)}
	}
	var row Row
	if err := json.Unmarshal(reply, &row); err != nil {
		return cellOutcome{err: fmt.Errorf("decoding cell reply: %w", err), where: where, elapsed: time.Since(start)}
	}
	return cellOutcome{row: &row, where: where, elapsed: time.Since(start)}
}

// writeCellLog records one cell's execution: identity, placement, timing
// and headline metrics. Log contents are intentionally outside the
// byte-identity contract (they carry wall-clock).
func writeCellLog(dir string, c *Cell, o *cellOutcome) error {
	name := filepath.Join(dir, fmt.Sprintf("cell-%04d.log", c.Index))
	var body string
	if o.err != nil {
		body = fmt.Sprintf("cell %d: %s\nplacement: %s\nelapsed: %v\nerror: %v\n",
			c.Index, c.Display(), o.where, o.elapsed, o.err)
	} else {
		body = fmt.Sprintf("cell %d: %s\nplacement: %s\nelapsed: %v\nvertices: %d\nedges: %d\ndegree_veracity: %s\nutility_gap: %s\n",
			c.Index, c.Display(), o.where, o.elapsed, o.row.Vertices, o.row.Edges,
			fmtF(o.row.Report.DegreeVeracity), fmtF(o.row.Utility.UtilityGap))
	}
	if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
		return fmt.Errorf("eval: writing cell log: %w", err)
	}
	return nil
}
