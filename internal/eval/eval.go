// Package eval is the fidelity–utility evaluation harness: the subsystem
// that turns this repo from "generates synthetic data" into "benchmarks
// generators", the paper's actual thesis. It has two halves:
//
//   - A metric suite (Evaluate, Utility): per-attribute distribution
//     distances (Jensen–Shannon divergence, earth-mover's distance and the
//     Kolmogorov–Smirnov statistic over the degree, flow-size, duration,
//     port and protocol marginals), graph-structure statistics (clustering
//     coefficients, triangles, degree assortativity, PageRank quantile
//     correlation against the seed) alongside the paper's original veracity
//     scores, and a *utility* metric — tune a detector on a synthetic
//     labeled scenario and score it on a held-out seed-derived scenario,
//     reporting the synthetic-vs-native F1 gap (the fidelity–utility
//     trade-off of arXiv 2410.16326).
//
//   - An experiment-grid runner (GridSpec, Runner — see grid.go and
//     runner.go): a reproducible generators × sizes × seeds × repeats grid
//     driven by an experiments.json spec, executed locally in parallel or
//     sharded across internal/dist workers, writing
//     runs/<stamp>/{results.csv,logs/,analysis.md}.
//
// Everything here is deterministic: a grid cell is a pure function of its
// payload, so the same spec yields byte-identical results.csv at any
// parallelism, on one process or sharded across workers.
package eval

import (
	"fmt"
	"math"
	"sort"

	"csb/internal/graph"
	"csb/internal/graphalgo"
	"csb/internal/pagerank"
	"csb/internal/stats"
)

// AttrDistance is the distribution-distance triple of one attribute
// marginal, synthetic vs seed.
type AttrDistance struct {
	JS  float64 `json:"js"`  // Jensen-Shannon divergence, bits, in [0,1]
	EMD float64 `json:"emd"` // earth-mover's distance, attribute units
	KS  float64 `json:"ks"`  // Kolmogorov-Smirnov statistic, in [0,1]
}

// Report is the full fidelity report of one synthetic graph against its
// seed. Distance fields compare marginals (lower = more faithful);
// structure fields report the synthetic graph's statistic plus its absolute
// gap to the seed's (lower gap = more faithful); PageRankCorr is a
// correlation (higher = more faithful).
type Report struct {
	Vertices int64 `json:"vertices"`
	Edges    int64 `json:"edges"`

	Degree   AttrDistance `json:"degree"`
	FlowSize AttrDistance `json:"flow_size"`
	Duration AttrDistance `json:"duration"`
	DstPort  AttrDistance `json:"dst_port"`
	Proto    AttrDistance `json:"proto"`

	// The paper's Section V-A veracity scores (Figures 6-7).
	DegreeVeracity   float64 `json:"degree_veracity"`
	PageRankVeracity float64 `json:"pagerank_veracity"`

	// Structure statistics of the synthetic graph's undirected simple view.
	Clustering       float64 `json:"clustering"`     // average local coefficient
	ClusteringGap    float64 `json:"clustering_gap"` // |synthetic - seed|
	Transitivity     float64 `json:"transitivity"`   // global coefficient
	Triangles        int64   `json:"triangles"`
	Assortativity    float64 `json:"assortativity"`
	AssortativityGap float64 `json:"assortativity_gap"` // |synthetic - seed|

	// PageRankCorr is the Pearson correlation of the seed's and the
	// synthetic graph's rank-aligned PageRank quantile profiles: both rank
	// vectors sorted descending and resampled at Options.PageRankPoints
	// evenly spaced rank quantiles (vertex identities do not correspond
	// across graphs, so rank position is the only meaningful alignment).
	// 1 means the normalized rank-mass profiles have identical shape.
	PageRankCorr float64 `json:"pagerank_corr"`
}

// Options configures Evaluate. The zero value selects the defaults.
type Options struct {
	// PageRankPoints is the number of rank quantiles the PageRank profiles
	// are resampled at (default 100).
	PageRankPoints int
}

func (o *Options) fill() {
	if o.PageRankPoints == 0 {
		o.PageRankPoints = 100
	}
}

// Evaluate computes the fidelity report of a synthetic graph against the
// seed graph it was grown from.
func Evaluate(seed, synthetic *graph.Graph, opts Options) (*Report, error) {
	opts.fill()
	r := &Report{
		Vertices: synthetic.NumVertices(),
		Edges:    synthetic.NumEdges(),
	}

	// Per-attribute distribution distances over the five marginals.
	sm := marginals(seed)
	gm := marginals(synthetic)
	var err error
	if r.Degree, err = attrDistance(sm.degree, gm.degree); err != nil {
		return nil, fmt.Errorf("eval: degree marginal: %w", err)
	}
	if r.FlowSize, err = attrDistance(sm.flowSize, gm.flowSize); err != nil {
		return nil, fmt.Errorf("eval: flow-size marginal: %w", err)
	}
	if r.Duration, err = attrDistance(sm.duration, gm.duration); err != nil {
		return nil, fmt.Errorf("eval: duration marginal: %w", err)
	}
	if r.DstPort, err = attrDistance(sm.dstPort, gm.dstPort); err != nil {
		return nil, fmt.Errorf("eval: dst-port marginal: %w", err)
	}
	if r.Proto, err = attrDistance(sm.proto, gm.proto); err != nil {
		return nil, fmt.Errorf("eval: proto marginal: %w", err)
	}

	// The paper's veracity scores.
	if r.DegreeVeracity, err = stats.VeracityScoreInt(sm.degree, gm.degree); err != nil {
		return nil, fmt.Errorf("eval: degree veracity: %w", err)
	}
	seedPR, err := pagerank.Compute(seed, pagerank.Options{})
	if err != nil {
		return nil, fmt.Errorf("eval: seed pagerank: %w", err)
	}
	synPR, err := pagerank.Compute(synthetic, pagerank.Options{})
	if err != nil {
		return nil, fmt.Errorf("eval: synthetic pagerank: %w", err)
	}
	if r.PageRankVeracity, err = stats.VeracityScore(seedPR.Ranks, synPR.Ranks); err != nil {
		return nil, fmt.Errorf("eval: pagerank veracity: %w", err)
	}

	// Structure statistics. Assortativity is NaN on degenerate graphs
	// (regular or edge-free); the report must stay JSON-encodable for the
	// dist wire, so that surfaces as an error here rather than a NaN that
	// fails to marshal three layers up.
	seedAvg, _ := graphalgo.ClusteringCoefficients(seed)
	r.Clustering, r.Transitivity = graphalgo.ClusteringCoefficients(synthetic)
	r.ClusteringGap = math.Abs(r.Clustering - seedAvg)
	r.Triangles = graphalgo.Triangles(synthetic)
	r.Assortativity = graphalgo.DegreeAssortativity(synthetic)
	seedAssort := graphalgo.DegreeAssortativity(seed)
	if math.IsNaN(r.Assortativity) || math.IsNaN(seedAssort) {
		return nil, fmt.Errorf("eval: degree assortativity undefined (degenerate graph: synthetic=%v seed=%v)",
			r.Assortativity, seedAssort)
	}
	r.AssortativityGap = math.Abs(r.Assortativity - seedAssort)

	// PageRank rank-profile correlation.
	r.PageRankCorr, err = quantileCorrelation(seedPR.Ranks, synPR.Ranks, opts.PageRankPoints)
	if err != nil {
		return nil, fmt.Errorf("eval: pagerank correlation: %w", err)
	}
	return r, nil
}

// marginalSet holds the five attribute marginals of one graph as raw int64
// samples, the common currency of the distance metrics.
type marginalSet struct {
	degree   []int64 // per-vertex total degree, zero-degree vertices excluded
	flowSize []int64 // per-edge total bytes (both directions)
	duration []int64 // per-edge duration, milliseconds
	dstPort  []int64 // per-edge destination port
	proto    []int64 // per-edge protocol code
}

func marginals(g *graph.Graph) marginalSet {
	var m marginalSet
	for _, d := range g.Degrees() {
		if d > 0 {
			m.degree = append(m.degree, d)
		}
	}
	cols := g.Cols()
	n := cols.Len()
	m.flowSize = make([]int64, n)
	m.duration = make([]int64, n)
	m.dstPort = make([]int64, n)
	m.proto = make([]int64, n)
	for i := 0; i < n; i++ {
		m.flowSize[i] = cols.OutBytes(i) + cols.InBytes(i)
		m.duration[i] = cols.Duration(i)
		m.dstPort[i] = int64(cols.DstPort(i))
		m.proto[i] = int64(cols.Protocol(i))
	}
	return m
}

// attrDistance computes the JS/EMD/KS triple of one marginal.
func attrDistance(seed, synthetic []int64) (AttrDistance, error) {
	var d AttrDistance
	var err error
	if d.JS, err = stats.JSDivergence(seed, synthetic); err != nil {
		return d, err
	}
	if d.EMD, err = stats.EMDistance(seed, synthetic); err != nil {
		return d, err
	}
	d.KS = stats.KSDistance(seed, synthetic)
	return d, nil
}

// quantileCorrelation aligns two positive vectors by rank — sorted
// descending, each normalized by its own sum, resampled at `points` evenly
// spaced rank quantiles — and returns the Pearson correlation of the two
// profiles.
func quantileCorrelation(a, b []float64, points int) (float64, error) {
	pa, err := rankProfile(a, points)
	if err != nil {
		return 0, err
	}
	pb, err := rankProfile(b, points)
	if err != nil {
		return 0, err
	}
	return stats.Pearson(pa, pb)
}

func rankProfile(xs []float64, points int) ([]float64, error) {
	norm, err := stats.Normalize(xs)
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(norm)))
	out := make([]float64, points)
	for i := 0; i < points; i++ {
		// Rank quantile i/(points-1) maps onto index round(q * (len-1)).
		q := float64(i) / float64(points-1)
		idx := int(q*float64(len(norm)-1) + 0.5)
		out[i] = norm[idx]
	}
	return out, nil
}
