package eval

import (
	"fmt"
	"strings"
)

// Analysis renders analysis.md: grouped summaries of the grid's rows in the
// shape of the paper's evaluation — a Figure 6 analogue (degree veracity vs
// size per generator), a Figure 7 analogue (PageRank veracity), the
// extended metric suite, and the utility table. Every value is the mean
// over the group's seeds × repeats. The output is a pure function of
// (spec, specPath, rows): no clock, no environment — analysis.md is as
// reproducible as results.csv.
func Analysis(sp *GridSpec, specPath string, rows []Row) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Evaluation run: %s\n\n", sp.Name)
	fmt.Fprintf(&b, "Spec: `%s` (grid ID `%s`).\n", specPath, sp.ID()[:12])
	fmt.Fprintf(&b, "Reproduce with:\n\n```sh\ncsbeval -spec %s\n```\n\n", specPath)
	fmt.Fprintf(&b,
		"Grid: %d generators × %d sizes × %d seeds × %d repeats = %d cells.\n"+
			"Seed trace: %d hosts, %d sessions, seed %d. Held-out scenario: %d hosts, %d sessions, seed %d.\n"+
			"Each table cell is the mean over the group's %d seed×repeat runs.\n\n",
		len(sp.Generators), len(sp.Sizes), len(sp.Seeds), sp.Repeats, len(rows),
		sp.SeedHosts, sp.SeedSessions, sp.SeedTraceSeed,
		sp.Utility.HeldOutHosts, sp.Utility.HeldOutSessions, sp.Utility.HeldOutSeed,
		len(sp.Seeds)*sp.Repeats)

	groupMean := func(gen GeneratorSpec, size int64, metric func(*Row) float64) float64 {
		var sum float64
		var n int
		for i := range rows {
			r := &rows[i]
			if r.Cell.Generator == gen && r.Cell.Size == size {
				sum += metric(r)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	sizeTable := func(title string, metric func(*Row) float64) {
		fmt.Fprintf(&b, "## %s\n\n", title)
		b.WriteString("| generator |")
		for _, s := range sp.Sizes {
			fmt.Fprintf(&b, " %d |", s)
		}
		b.WriteString("\n|---|")
		for range sp.Sizes {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, g := range sp.Generators {
			fmt.Fprintf(&b, "| %s |", g.Display())
			for _, s := range sp.Sizes {
				fmt.Fprintf(&b, " %.4g |", groupMean(g, s, metric))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}

	sizeTable("Degree veracity vs size (Figure 6 analogue, lower = more faithful)",
		func(r *Row) float64 { return r.Report.DegreeVeracity })
	sizeTable("PageRank veracity vs size (Figure 7 analogue, lower = more faithful)",
		func(r *Row) float64 { return r.Report.PageRankVeracity })

	// The extended metric suite at the largest size: one row per generator,
	// one column per metric family.
	largest := sp.Sizes[len(sp.Sizes)-1]
	fmt.Fprintf(&b, "## Metric suite at %d edges\n\n", largest)
	b.WriteString("| generator | js_degree | emd_degree | ks_degree | clustering_gap | assort_gap | pagerank_corr |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, g := range sp.Generators {
		fmt.Fprintf(&b, "| %s | %.4g | %.4g | %.4g | %.4g | %.4g | %.4g |\n",
			g.Display(),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.Degree.JS }),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.Degree.EMD }),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.Degree.KS }),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.ClusteringGap }),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.AssortativityGap }),
			groupMean(g, largest, func(r *Row) float64 { return r.Report.PageRankCorr }))
	}
	b.WriteString("\n")

	// Utility: the fidelity–utility trade-off table, per generator × size.
	b.WriteString("## Utility (detector tuned on synthetic, scored on held-out)\n\n")
	b.WriteString("| generator | size | base_f1 | synthetic_f1 | native_f1 | utility_gap |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, g := range sp.Generators {
		for _, s := range sp.Sizes {
			fmt.Fprintf(&b, "| %s | %d | %.4g | %.4g | %.4g | %.4g |\n",
				g.Display(), s,
				groupMean(g, s, func(r *Row) float64 { return r.Utility.BaseF1 }),
				groupMean(g, s, func(r *Row) float64 { return r.Utility.SyntheticF1 }),
				groupMean(g, s, func(r *Row) float64 { return r.Utility.NativeF1 }),
				groupMean(g, s, func(r *Row) float64 { return r.Utility.UtilityGap }))
		}
	}
	b.WriteString("\n")
	b.WriteString("Determinism contract: results.csv is a pure function of the spec — " +
		"same spec ⇒ byte-identical CSV at any parallelism, locally or sharded across dist workers. " +
		"Logs carry wall-clock and placement and are outside that contract.\n")
	return []byte(b.String())
}
