package eval

import (
	"fmt"

	"csb/internal/attack"
	"csb/internal/graph"
	"csb/internal/ids"
	"csb/internal/netflow"
	"csb/internal/pso"
	"csb/internal/scenario"
)

// UtilityConfig parameterizes the utility metric. The zero value is not
// runnable; GridSpec.Normalize fills the defaults (see grid.go), and
// NormalizeUtility does the same for direct callers.
type UtilityConfig struct {
	// Attacks is the labeled injection mix shared by the synthetic and the
	// held-out scenario; empty selects DefaultUtilityAttacks.
	Attacks []scenario.Attack `json:"attacks,omitempty"`
	// HeldOutSeed drives the held-out scenario's RNG streams. It must
	// differ from every grid generation seed, or the "held-out" set is the
	// training set.
	HeldOutSeed uint64 `json:"heldout_seed,omitempty"`
	// HeldOutHosts and HeldOutSessions size the held-out seed-derived trace
	// background.
	HeldOutHosts    int `json:"heldout_hosts,omitempty"`
	HeldOutSessions int `json:"heldout_sessions,omitempty"`
	// GapMicros spaces the synthetic background timeline.
	GapMicros int64 `json:"gap_micros,omitempty"`
	// Particles and Iterations size the PSO threshold search. The defaults
	// (8, 12) keep one tune under a second on laptop-scale scenarios; the
	// grid multiplies tunes by cells, so these are deliberately small.
	Particles  int `json:"particles,omitempty"`
	Iterations int `json:"iterations,omitempty"`
}

// Utility defaults.
const (
	DefaultHeldOutSeed     = 104729 // the 10000th prime; never a grid seed by convention
	DefaultHeldOutHosts    = 60
	DefaultHeldOutSessions = 1200
	DefaultGapMicros       = 1000
	DefaultParticles       = 8
	DefaultIterations      = 12
)

// DefaultUtilityAttacks is the injection mix used when a spec names none:
// one attack per alert family, on distinct victims and staggered start
// times so each produces its own per-IP aggregate pattern (attacks stacked
// on one victim melt into a single DDoS-shaped pattern and the scan/flood
// labels become undetectable, flattening the metric).
func DefaultUtilityAttacks() []scenario.Attack {
	return []scenario.Attack{
		{Type: scenario.TypeHostScan, StartMS: 5_000, Count: 1500, Victim: 0x0a000003},
		{Type: scenario.TypeNetworkScan, StartMS: 65_000, Count: 150, Port: 22},
		{Type: scenario.TypeSYNFlood, StartMS: 125_000, Count: 2500, Victim: 0x0a000005, Port: 80},
		{Type: scenario.TypeDDoS, StartMS: 185_000, Count: 80, FlowsPerSource: 3, Victim: 0x0a000009},
	}
}

// NormalizeUtility fills defaults and validates the attack list through the
// scenario layer's shared normalization (the held-out spec below), so a
// malformed attack fails here, once, not inside every grid cell.
func NormalizeUtility(u *UtilityConfig) error {
	if len(u.Attacks) == 0 {
		u.Attacks = DefaultUtilityAttacks()
	}
	if u.HeldOutSeed == 0 {
		u.HeldOutSeed = DefaultHeldOutSeed
	}
	if u.HeldOutHosts == 0 {
		u.HeldOutHosts = DefaultHeldOutHosts
	}
	if u.HeldOutSessions == 0 {
		u.HeldOutSessions = DefaultHeldOutSessions
	}
	if u.GapMicros == 0 {
		u.GapMicros = DefaultGapMicros
	}
	if u.GapMicros < 0 {
		return fmt.Errorf("eval: utility gap_micros must be positive, got %d", u.GapMicros)
	}
	if u.Particles == 0 {
		u.Particles = DefaultParticles
	}
	if u.Iterations == 0 {
		u.Iterations = DefaultIterations
	}
	sp := u.heldOutSpec()
	if err := sp.Normalize(); err != nil {
		return err
	}
	u.Attacks = sp.Attacks // keep the normalized attack list
	return nil
}

// heldOutSpec is the seed-derived (trace-background) scenario the tuned
// detector is scored on.
func (u *UtilityConfig) heldOutSpec() *scenario.Spec {
	return &scenario.Spec{
		Seed: u.HeldOutSeed,
		Background: scenario.Background{
			Source:   scenario.SourceTrace,
			Hosts:    u.HeldOutHosts,
			Sessions: u.HeldOutSessions,
		},
		Attacks: append([]scenario.Attack(nil), u.Attacks...),
	}
}

// UtilityReport is the utility half of a grid cell: how well a detector
// tuned on the cell's synthetic data transfers to held-out seed-derived
// data. All F1 values are measured on the held-out scenario.
type UtilityReport struct {
	BaseF1      float64 `json:"base_f1"`      // untuned default thresholds
	SyntheticF1 float64 `json:"synthetic_f1"` // tuned on the synthetic scenario
	NativeF1    float64 `json:"native_f1"`    // tuned on the held-out scenario itself
	// UtilityGap is NativeF1 - SyntheticF1: what tuning on synthetic
	// instead of real data costs. 0 means the synthetic data is as useful
	// as the real thing for this detector; larger is worse.
	UtilityGap float64 `json:"utility_gap"`
}

// Utility computes the utility metric of one synthetic graph: inject
// cfg.Attacks into the graph's projected flows (tuning set), tune the
// detector's thresholds there with PSO seeded by tuneSeed, and score the
// tuned thresholds on the held-out seed-derived scenario. The native
// baseline tunes directly on the held-out scenario with the same swarm
// budget. cfg must have passed NormalizeUtility.
func Utility(g *graph.Graph, cfg *UtilityConfig, tuneSeed uint64) (*UtilityReport, error) {
	// Tuning set: the synthetic graph's flows on a synthetic timeline, with
	// the shared attack mix injected on streams derived from tuneSeed.
	flows := netflow.FlowsFromGraph(g)
	scenario.SyntheticTimeline(flows, cfg.GapMicros)
	syn := attack.NewScenario(flows)
	if err := scenario.ApplyAttacks(syn, tuneSeed, cfg.Attacks); err != nil {
		return nil, fmt.Errorf("eval: building synthetic scenario: %w", err)
	}
	syn.Finish()

	held, err := scenario.Compile(cfg.heldOutSpec(), nil)
	if err != nil {
		return nil, fmt.Errorf("eval: compiling held-out scenario: %w", err)
	}

	base := ids.DefaultThresholds()
	psoCfg := pso.Config{Particles: cfg.Particles, Iterations: cfg.Iterations, Seed: tuneSeed}
	tuned, _, err := attack.TuneThresholds(syn, base, psoCfg)
	if err != nil {
		return nil, fmt.Errorf("eval: tuning on synthetic: %w", err)
	}
	psoCfg.Seed = cfg.HeldOutSeed
	_, nativeOut, err := attack.TuneThresholds(held, base, psoCfg)
	if err != nil {
		return nil, fmt.Errorf("eval: tuning on held-out: %w", err)
	}

	r := &UtilityReport{
		BaseF1:      held.Score(ids.NewDetector(base).Detect(held.Flows)).F1(),
		SyntheticF1: held.Score(ids.NewDetector(tuned).Detect(held.Flows)).F1(),
		NativeF1:    nativeOut.F1(),
	}
	r.UtilityGap = r.NativeF1 - r.SyntheticF1
	return r, nil
}
