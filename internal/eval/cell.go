package eval

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"csb/internal/core"
	"csb/internal/netflow"
	"csb/internal/pcap"
)

// Row is one grid cell's results.csv line: the cell identity followed by
// every metric. It travels between processes as JSON (the eval/cell task
// payload reply), so each numeric field round-trips exactly — shortest-form
// float JSON is lossless for float64.
type Row struct {
	Cell     Cell          `json:"cell"`
	Report   Report        `json:"report"`
	Utility  UtilityReport `json:"utility"`
	GenSeed  uint64        `json:"gen_seed"`
	Vertices int64         `json:"vertices"`
	Edges    int64         `json:"edges"`
}

// Header is the results.csv column list, fixed by contract: downstream
// analysis (and the CI golden diff) depend on both the names and the order.
func Header() []string {
	return []string{
		"generator", "fraction", "size", "seed", "repeat", "gen_seed",
		"vertices", "edges",
		"js_degree", "emd_degree", "ks_degree",
		"js_flow_size", "emd_flow_size", "ks_flow_size",
		"js_duration", "emd_duration", "ks_duration",
		"js_dst_port", "emd_dst_port", "ks_dst_port",
		"js_proto", "emd_proto", "ks_proto",
		"degree_veracity", "pagerank_veracity",
		"clustering", "clustering_gap", "transitivity", "triangles",
		"assortativity", "assortativity_gap", "pagerank_corr",
		"base_f1", "synthetic_f1", "native_f1", "utility_gap",
	}
}

// fmtF renders a float for the CSV: shortest exact form, so the encoding is
// deterministic and lossless.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSVRecord renders the row in Header order.
func (r *Row) CSVRecord() []string {
	c, rep, u := &r.Cell, &r.Report, &r.Utility
	return []string{
		c.Generator.Name, fmtF(c.Generator.Fraction),
		strconv.FormatInt(c.Size, 10),
		strconv.FormatUint(c.BaseSeed, 10),
		strconv.Itoa(c.Repeat),
		strconv.FormatUint(r.GenSeed, 10),
		strconv.FormatInt(r.Vertices, 10),
		strconv.FormatInt(r.Edges, 10),
		fmtF(rep.Degree.JS), fmtF(rep.Degree.EMD), fmtF(rep.Degree.KS),
		fmtF(rep.FlowSize.JS), fmtF(rep.FlowSize.EMD), fmtF(rep.FlowSize.KS),
		fmtF(rep.Duration.JS), fmtF(rep.Duration.EMD), fmtF(rep.Duration.KS),
		fmtF(rep.DstPort.JS), fmtF(rep.DstPort.EMD), fmtF(rep.DstPort.KS),
		fmtF(rep.Proto.JS), fmtF(rep.Proto.EMD), fmtF(rep.Proto.KS),
		fmtF(rep.DegreeVeracity), fmtF(rep.PageRankVeracity),
		fmtF(rep.Clustering), fmtF(rep.ClusteringGap), fmtF(rep.Transitivity),
		strconv.FormatInt(rep.Triangles, 10),
		fmtF(rep.Assortativity), fmtF(rep.AssortativityGap), fmtF(rep.PageRankCorr),
		fmtF(u.BaseF1), fmtF(u.SyntheticF1), fmtF(u.NativeF1), fmtF(u.UtilityGap),
	}
}

// WriteCSV renders header plus rows (in the given order) as the canonical
// results.csv bytes.
func WriteCSV(rows []Row) []byte {
	var b strings.Builder
	b.WriteString(strings.Join(Header(), ","))
	b.WriteByte('\n')
	for i := range rows {
		b.WriteString(strings.Join(rows[i].CSVRecord(), ","))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// CellPayload is the wire form of one cell execution: the whole normalized
// spec plus the cell coordinate, so a worker process needs no state beyond
// the payload — the property that makes a cell relocatable to any worker.
type CellPayload struct {
	Spec GridSpec `json:"spec"`
	Cell Cell     `json:"cell"`
}

// seedCache memoizes analyzed seed traces per (hosts, sessions, seed): every
// cell of a grid shares one seed, and re-synthesizing the trace per cell
// would dominate small-cell runtime. Purity is preserved — the cache only
// short-circuits recomputation of a deterministic function.
var seedCache struct {
	sync.Mutex
	m map[[3]uint64]*core.Seed
}

func analyzedSeed(hosts, sessions int, traceSeed uint64) (*core.Seed, error) {
	key := [3]uint64{uint64(hosts), uint64(sessions), traceSeed}
	seedCache.Lock()
	defer seedCache.Unlock()
	if s, ok := seedCache.m[key]; ok {
		return s, nil
	}
	pkts, err := pcap.Synthesize(pcap.DefaultTraceConfig(hosts, sessions, traceSeed))
	if err != nil {
		return nil, fmt.Errorf("eval: synthesizing seed trace: %w", err)
	}
	s, err := core.Analyze(netflow.BuildGraph(netflow.Assemble(pkts, 0)))
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing seed: %w", err)
	}
	if seedCache.m == nil {
		seedCache.m = make(map[[3]uint64]*core.Seed)
	}
	seedCache.m[key] = s
	return s, nil
}

// RunCell executes one grid cell: grow the shared seed with the cell's
// generator, compute the fidelity report against the seed graph, and the
// utility report against the held-out scenario. It is a pure function of
// (spec, cell) — no clock, no global RNG — which is the determinism
// contract the whole harness rests on.
func RunCell(sp *GridSpec, c Cell) (*Row, error) {
	seed, err := analyzedSeed(sp.SeedHosts, sp.SeedSessions, sp.SeedTraceSeed)
	if err != nil {
		return nil, err
	}
	genSeed := c.GenSeed()
	var gen core.Generator
	switch c.Generator.Name {
	case GenPGSK:
		gen = &core.PGSK{Seed: genSeed}
	case GenPGPBA:
		gen = &core.PGPBA{Fraction: c.Generator.Fraction, Seed: genSeed}
	default:
		return nil, fmt.Errorf("eval: cell %d: unknown generator %q (spec not normalized?)", c.Index, c.Generator.Name)
	}
	g, err := gen.Generate(seed, c.Size)
	if err != nil {
		return nil, fmt.Errorf("eval: cell %d (%s): generating: %w", c.Index, c.Display(), err)
	}
	report, err := Evaluate(seed.Graph, g, Options{PageRankPoints: sp.PageRankPoints})
	if err != nil {
		return nil, fmt.Errorf("eval: cell %d (%s): %w", c.Index, c.Display(), err)
	}
	utility, err := Utility(g, &sp.Utility, genSeed)
	if err != nil {
		return nil, fmt.Errorf("eval: cell %d (%s): %w", c.Index, c.Display(), err)
	}
	return &Row{
		Cell:     c,
		Report:   *report,
		Utility:  *utility,
		GenSeed:  genSeed,
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
	}, nil
}

// RunCellBytes is RunCell over the wire encoding: JSON payload in, JSON row
// out. The local runner and the remote task executor share this one entry
// point, which is what guarantees local == distributed results byte for
// byte.
func RunCellBytes(payload []byte) ([]byte, error) {
	var p CellPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("eval: decoding cell payload: %w", err)
	}
	row, err := RunCell(&p.Spec, p.Cell)
	if err != nil {
		return nil, err
	}
	return json.Marshal(row)
}
