package eval

import "csb/internal/dist/task"

// CellTaskKind is the remote task kind of one grid cell. Any process that
// links this package — csbeval itself, or a csbd worker (cmd/csbd imports
// eval for exactly this) — can execute grid cells, which is what lets the
// runner shard a grid across dist workers.
const CellTaskKind = "eval/cell"

func init() { task.Register(CellTaskKind, RunCellBytes) }
