package eval

import (
	"os"
	"strings"
	"testing"
)

func TestParseGridSmokeSpec(t *testing.T) {
	f, err := os.Open("testdata/smoke-grid.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sp, err := ParseGrid(f)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "eval-smoke" {
		t.Fatalf("name = %q", sp.Name)
	}
	if got := len(sp.Cells()); got != 8 {
		t.Fatalf("cells = %d, want 8 (2 generators × 2 sizes × 1 seed × 2 repeats)", got)
	}
	// Defaults filled by Normalize.
	if sp.Repeats != 2 || sp.PageRankPoints != DefaultPageRankPoints {
		t.Fatalf("normalize defaults: repeats=%d pagerank_points=%d", sp.Repeats, sp.PageRankPoints)
	}
	if len(sp.Utility.Attacks) == 0 || sp.Utility.Particles != DefaultParticles {
		t.Fatalf("utility defaults not filled: %+v", sp.Utility)
	}
}

func TestParseGridRejectsUnknownFields(t *testing.T) {
	_, err := ParseGrid(strings.NewReader(`{"generators":[{"name":"pgsk"}],"sizes":[100],"typo_field":1}`))
	if err == nil || !strings.Contains(err.Error(), "typo_field") {
		t.Fatalf("err = %v, want unknown-field error", err)
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		sp   GridSpec
		want string
	}{
		{"no generators", GridSpec{Sizes: []int64{100}}, "at least one generator"},
		{"unknown generator", GridSpec{Generators: []GeneratorSpec{{Name: "erdos"}}, Sizes: []int64{100}}, "unknown name"},
		{"bad fraction", GridSpec{Generators: []GeneratorSpec{{Name: GenPGPBA, Fraction: 1.5}}, Sizes: []int64{100}}, "fraction"},
		{"no sizes", GridSpec{Generators: []GeneratorSpec{{Name: GenPGSK}}}, "at least one size"},
		{"negative size", GridSpec{Generators: []GeneratorSpec{{Name: GenPGSK}}, Sizes: []int64{-5}}, "must be positive"},
		{"negative repeats", GridSpec{Generators: []GeneratorSpec{{Name: GenPGSK}}, Sizes: []int64{100}, Repeats: -1}, "repeats"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sp.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCellsCanonicalOrder(t *testing.T) {
	sp := GridSpec{
		Generators: []GeneratorSpec{{Name: GenPGSK}, {Name: GenPGPBA}},
		Sizes:      []int64{100, 200},
		Seeds:      []uint64{1, 2},
		Repeats:    2,
	}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	cells := sp.Cells()
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	// Generators outermost, repeats innermost; Index matches position.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
	}
	if cells[0].Generator.Name != GenPGSK || cells[8].Generator.Name != GenPGPBA {
		t.Fatalf("generator order: %s then %s", cells[0].Generator.Name, cells[8].Generator.Name)
	}
	if cells[0].Repeat != 0 || cells[1].Repeat != 1 || cells[2].BaseSeed != 2 {
		t.Fatalf("inner order wrong: %+v %+v %+v", cells[0], cells[1], cells[2])
	}
	if cells[4].Size != 200 {
		t.Fatalf("size order wrong: cell 4 size = %d", cells[4].Size)
	}
}

func TestGenSeedDistinctAcrossRepeats(t *testing.T) {
	a := Cell{BaseSeed: 7, Repeat: 0}
	b := Cell{BaseSeed: 7, Repeat: 1}
	if a.GenSeed() == b.GenSeed() {
		t.Fatal("repeats share a generation seed")
	}
}

func TestGridIDStableAndSensitive(t *testing.T) {
	mk := func() *GridSpec {
		sp := &GridSpec{
			Generators: []GeneratorSpec{{Name: GenPGSK}},
			Sizes:      []int64{100},
		}
		if err := sp.Normalize(); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	a, b := mk(), mk()
	if a.ID() != b.ID() {
		t.Fatal("identical specs hash differently")
	}
	b.Sizes[0] = 101
	if a.ID() == b.ID() {
		t.Fatal("different specs share an ID")
	}
	if len(a.ID()) != 64 {
		t.Fatalf("ID length = %d, want 64 hex digits", len(a.ID()))
	}
}
