package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Generator names accepted by GeneratorSpec.Name.
const (
	GenPGPBA = "pgpba"
	GenPGSK  = "pgsk"
)

// GeneratorSpec selects one generator configuration of the grid.
type GeneratorSpec struct {
	// Name is pgpba or pgsk.
	Name string `json:"name"`
	// Fraction is the PGPBA growth fraction in (0, 1] (pgpba only,
	// default 0.1).
	Fraction float64 `json:"fraction,omitempty"`
}

// Display renders the generator for tables and logs ("pgsk", "pgpba f=0.1").
func (g GeneratorSpec) Display() string {
	if g.Name == GenPGPBA {
		return fmt.Sprintf("pgpba f=%g", g.Fraction)
	}
	return g.Name
}

// Grid defaults applied by Normalize.
const (
	DefaultSeedHosts      = 100
	DefaultSeedSessions   = 2000
	DefaultSeedTraceSeed  = 20171010
	DefaultRepeats        = 1
	DefaultPageRankPoints = 100

	// repeatSeedStride derives repeat r's generation seed as
	// base + r*stride: distinct repeats draw distinct generation
	// randomness while staying a pure function of the spec.
	repeatSeedStride = 1_000_003
)

// GridSpec is the experiments.json schema: the full cross product
// generators × sizes × seeds × repeats evaluated by the grid runner. Every
// cell shares one seed trace (SeedHosts/SeedSessions/SeedTraceSeed) and one
// utility configuration.
type GridSpec struct {
	// Name labels the run in analysis.md and logs.
	Name string `json:"name,omitempty"`
	// SeedHosts, SeedSessions and SeedTraceSeed build the shared seed trace
	// every cell grows from and is scored against.
	SeedHosts     int    `json:"seed_hosts,omitempty"`
	SeedSessions  int    `json:"seed_sessions,omitempty"`
	SeedTraceSeed uint64 `json:"seed_trace_seed,omitempty"`
	// Generators, Sizes, Seeds and Repeats span the grid.
	Generators []GeneratorSpec `json:"generators"`
	Sizes      []int64         `json:"sizes"`
	Seeds      []uint64        `json:"seeds,omitempty"`
	Repeats    int             `json:"repeats,omitempty"`
	// PageRankPoints resamples the PageRank profiles (Options).
	PageRankPoints int `json:"pagerank_points,omitempty"`
	// Utility configures the utility metric shared by every cell.
	Utility UtilityConfig `json:"utility,omitempty"`
}

// ParseGrid decodes and normalizes a JSON grid spec.
func ParseGrid(r io.Reader) (*GridSpec, error) {
	var sp GridSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("eval: parsing grid spec: %w", err)
	}
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Normalize fills defaults and validates the spec in place; the normalized
// spec is what Canonical serializes and ID hashes.
func (sp *GridSpec) Normalize() error {
	if sp.Name == "" {
		sp.Name = "grid"
	}
	if sp.SeedHosts == 0 {
		sp.SeedHosts = DefaultSeedHosts
	}
	if sp.SeedHosts < 0 {
		return fmt.Errorf("eval: seed_hosts must be positive, got %d", sp.SeedHosts)
	}
	if sp.SeedSessions == 0 {
		sp.SeedSessions = DefaultSeedSessions
	}
	if sp.SeedSessions < 0 {
		return fmt.Errorf("eval: seed_sessions must be positive, got %d", sp.SeedSessions)
	}
	if sp.SeedTraceSeed == 0 {
		sp.SeedTraceSeed = DefaultSeedTraceSeed
	}
	if len(sp.Generators) == 0 {
		return fmt.Errorf("eval: at least one generator is required")
	}
	for i := range sp.Generators {
		g := &sp.Generators[i]
		switch g.Name {
		case GenPGSK:
			g.Fraction = 0
		case GenPGPBA:
			if g.Fraction == 0 {
				g.Fraction = 0.1
			}
			if math.IsNaN(g.Fraction) || g.Fraction <= 0 || g.Fraction > 1 {
				return fmt.Errorf("eval: generator %d: fraction must be in (0, 1], got %v", i, g.Fraction)
			}
		default:
			return fmt.Errorf("eval: generator %d: unknown name %q (want %s or %s)", i, g.Name, GenPGPBA, GenPGSK)
		}
	}
	if len(sp.Sizes) == 0 {
		return fmt.Errorf("eval: at least one size is required")
	}
	for i, s := range sp.Sizes {
		if s <= 0 {
			return fmt.Errorf("eval: size %d: must be positive, got %d", i, s)
		}
	}
	if len(sp.Seeds) == 0 {
		sp.Seeds = []uint64{1}
	}
	if sp.Repeats == 0 {
		sp.Repeats = DefaultRepeats
	}
	if sp.Repeats < 0 {
		return fmt.Errorf("eval: repeats must be positive, got %d", sp.Repeats)
	}
	if sp.PageRankPoints == 0 {
		sp.PageRankPoints = DefaultPageRankPoints
	}
	if sp.PageRankPoints < 2 {
		return fmt.Errorf("eval: pagerank_points must be at least 2, got %d", sp.PageRankPoints)
	}
	return NormalizeUtility(&sp.Utility)
}

// Cell is one grid coordinate: a generator at a size with a base seed and a
// repeat index.
type Cell struct {
	Index     int           `json:"index"`
	Generator GeneratorSpec `json:"generator"`
	Size      int64         `json:"size"`
	BaseSeed  uint64        `json:"base_seed"`
	Repeat    int           `json:"repeat"`
}

// GenSeed is the generation seed of the cell: repeats shift the base seed
// by a fixed stride so each repeat draws a distinct RNG stream.
func (c *Cell) GenSeed() uint64 {
	return c.BaseSeed + uint64(c.Repeat)*repeatSeedStride
}

// Display renders the cell for logs.
func (c *Cell) Display() string {
	return fmt.Sprintf("%s size=%d seed=%d rep=%d", c.Generator.Display(), c.Size, c.BaseSeed, c.Repeat)
}

// Cells enumerates the grid in its canonical order — generators outermost,
// then sizes, seeds, repeats — which is also the row order of results.csv.
func (sp *GridSpec) Cells() []Cell {
	out := make([]Cell, 0, len(sp.Generators)*len(sp.Sizes)*len(sp.Seeds)*sp.Repeats)
	for _, g := range sp.Generators {
		for _, size := range sp.Sizes {
			for _, seed := range sp.Seeds {
				for rep := 0; rep < sp.Repeats; rep++ {
					out = append(out, Cell{
						Index: len(out), Generator: g, Size: size,
						BaseSeed: seed, Repeat: rep,
					})
				}
			}
		}
	}
	return out
}

// Canonical returns the canonical serialization of the normalized spec, the
// preimage of ID — one key=value line per field, like scenario.Spec.
func (sp *GridSpec) Canonical() string {
	var b strings.Builder
	b.WriteString("csb-evalgrid/v1\n")
	b.WriteString("name=" + sp.Name + "\n")
	b.WriteString("seed.hosts=" + strconv.Itoa(sp.SeedHosts) + "\n")
	b.WriteString("seed.sessions=" + strconv.Itoa(sp.SeedSessions) + "\n")
	b.WriteString("seed.trace_seed=" + strconv.FormatUint(sp.SeedTraceSeed, 10) + "\n")
	for i, g := range sp.Generators {
		p := "gen." + strconv.Itoa(i) + "."
		b.WriteString(p + "name=" + g.Name + "\n")
		b.WriteString(p + "fraction=" + strconv.FormatFloat(g.Fraction, 'x', -1, 64) + "\n")
	}
	for i, s := range sp.Sizes {
		b.WriteString("size." + strconv.Itoa(i) + "=" + strconv.FormatInt(s, 10) + "\n")
	}
	for i, s := range sp.Seeds {
		b.WriteString("seed." + strconv.Itoa(i) + "=" + strconv.FormatUint(s, 10) + "\n")
	}
	b.WriteString("repeats=" + strconv.Itoa(sp.Repeats) + "\n")
	b.WriteString("pagerank_points=" + strconv.Itoa(sp.PageRankPoints) + "\n")
	u := &sp.Utility
	b.WriteString("utility.heldout_seed=" + strconv.FormatUint(u.HeldOutSeed, 10) + "\n")
	b.WriteString("utility.heldout_hosts=" + strconv.Itoa(u.HeldOutHosts) + "\n")
	b.WriteString("utility.heldout_sessions=" + strconv.Itoa(u.HeldOutSessions) + "\n")
	b.WriteString("utility.gap=" + strconv.FormatInt(u.GapMicros, 10) + "\n")
	b.WriteString("utility.particles=" + strconv.Itoa(u.Particles) + "\n")
	b.WriteString("utility.iterations=" + strconv.Itoa(u.Iterations) + "\n")
	for i := range u.Attacks {
		a := &u.Attacks[i]
		p := "utility.attack." + strconv.Itoa(i) + "."
		b.WriteString(p + "type=" + a.Type + "\n")
		b.WriteString(p + "start_ms=" + strconv.FormatInt(a.StartMS, 10) + "\n")
		b.WriteString(p + "seed=" + strconv.FormatUint(a.Seed, 10) + "\n")
		b.WriteString(p + "attacker=" + strconv.FormatUint(uint64(a.Attacker), 10) + "\n")
		b.WriteString(p + "victim=" + strconv.FormatUint(uint64(a.Victim), 10) + "\n")
		b.WriteString(p + "count=" + strconv.Itoa(a.Count) + "\n")
		b.WriteString(p + "port=" + strconv.Itoa(int(a.Port)) + "\n")
		b.WriteString(p + "fps=" + strconv.Itoa(a.FlowsPerSource) + "\n")
		b.WriteString(p + "proto=" + a.Proto + "\n")
	}
	return b.String()
}

// ID returns the content address of the grid: a SHA-256 over Canonical.
// The runner's default output stamp is a prefix of it, so one spec maps to
// one run directory.
func (sp *GridSpec) ID() string {
	sum := sha256.Sum256([]byte(sp.Canonical()))
	return hex.EncodeToString(sum[:])
}
