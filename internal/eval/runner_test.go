// Runner tests assert the harness's core invariant: results.csv is a pure
// function of the spec — byte-identical across repeated runs, across
// parallelism levels, and across local vs dist-sharded execution — plus a
// golden-file check pinning the smoke grid's exact output (the same bytes CI
// diffs via cmd/csbeval).
package eval_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"csb/internal/dist"
	"csb/internal/eval"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadSpec(t *testing.T, path string) *eval.GridSpec {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sp, err := eval.ParseGrid(f)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// tinySpec is a 2-cell grid for the determinism matrix: big enough to
// exercise both generators, small enough to run four times in one test.
func tinySpec(t *testing.T) *eval.GridSpec {
	t.Helper()
	sp := &eval.GridSpec{
		Name:      "tiny",
		SeedHosts: 40, SeedSessions: 600,
		Generators: []eval.GeneratorSpec{{Name: eval.GenPGSK}, {Name: eval.GenPGPBA}},
		Sizes:      []int64{5000},
		Utility:    eval.UtilityConfig{HeldOutHosts: 40, HeldOutSessions: 600},
	}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func runGrid(t *testing.T, r *eval.Runner) *eval.RunResult {
	t.Helper()
	r.OutDir = filepath.Join(t.TempDir(), "runs")
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunDeterminismMatrix executes the same grid serially, at high
// parallelism, with a worker-less coordinator (every dispatch declined →
// local fallback), and sharded across two in-process dist workers, and
// requires byte-identical results.csv from all four.
func TestRunDeterminismMatrix(t *testing.T) {
	sp := tinySpec(t)

	serial := runGrid(t, &eval.Runner{Spec: sp, MaxParallel: 1})
	wide := runGrid(t, &eval.Runner{Spec: sp, MaxParallel: 16})
	if !bytes.Equal(serial.CSV, wide.CSV) {
		t.Fatalf("MaxParallel 1 vs 16 differ:\n%s\nvs\n%s", serial.CSV, wide.CSV)
	}

	// Worker-less coordinator: every dispatch is declined and falls back to
	// local execution.
	co, err := dist.NewCoordinator(dist.Config{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 2 * time.Second,
		TaskTimeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	declined := runGrid(t, &eval.Runner{Spec: sp, MaxParallel: 4, Remote: co})
	if declined.Local != len(sp.Cells()) {
		t.Fatalf("worker-less coordinator: %d local cells, want %d", declined.Local, len(sp.Cells()))
	}
	if !bytes.Equal(serial.CSV, declined.CSV) {
		t.Fatal("local-fallback run differs from serial run")
	}

	// Two live workers: cells shard across them, bytes unchanged.
	co2 := startWorkers(t, 2)
	sharded := runGrid(t, &eval.Runner{Spec: sp, MaxParallel: 4, Remote: co2})
	if sharded.Remote == 0 {
		t.Fatal("no cells executed remotely with 2 live workers")
	}
	if !bytes.Equal(serial.CSV, sharded.CSV) {
		t.Fatalf("dist-sharded run differs from serial run:\n%s\nvs\n%s", serial.CSV, sharded.CSV)
	}
}

// startWorkers boots a coordinator plus n in-process dist workers (the
// pattern of internal/dist's own tests) and waits for them to register.
func startWorkers(t *testing.T, n int) *dist.Coordinator {
	t.Helper()
	co, err := dist.NewCoordinator(dist.Config{
		Addr:             "127.0.0.1:0",
		HeartbeatTimeout: 2 * time.Second,
		TaskTimeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	running := 0
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Coordinator:       co.Addr(),
			Name:              fmt.Sprintf("evalw%d", i),
			HeartbeatInterval: 100 * time.Millisecond,
		})
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		running++
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < running; i++ {
			<-done
		}
		co.Close()
	})
	deadline := time.Now().Add(10 * time.Second)
	for co.LiveWorkers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered", co.LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return co
}

// TestSmokeGridGolden pins the committed smoke grid's exact results.csv.
// This is the same spec the CI eval-smoke job runs through cmd/csbeval; a
// metric or encoding change that shifts any byte fails here first, with
// `go test ./internal/eval -run Golden -update` as the blessed regeneration
// path.
func TestSmokeGridGolden(t *testing.T) {
	sp := loadSpec(t, "testdata/smoke-grid.json")
	res := runGrid(t, &eval.Runner{Spec: sp})

	golden := filepath.Join("testdata", "smoke-results.golden.csv")
	if *update {
		if err := os.WriteFile(golden, res.CSV, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(res.CSV, want) {
		t.Fatalf("results.csv drifted from golden (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s", res.CSV, want)
	}

	// The run directory has the full layout: CSV, one log per cell, analysis.
	if _, err := os.Stat(res.CSVPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(res.Dir, "analysis.md")); err != nil {
		t.Fatal(err)
	}
	logs, err := filepath.Glob(filepath.Join(res.Dir, "logs", "cell-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != len(sp.Cells()) {
		t.Fatalf("%d cell logs, want %d", len(logs), len(sp.Cells()))
	}
}

// TestRunCancelledContext verifies a pre-cancelled context fails fast rather
// than executing cells.
func TestRunCancelledContext(t *testing.T) {
	sp := tinySpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &eval.Runner{Spec: sp, OutDir: filepath.Join(t.TempDir(), "runs")}
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}
