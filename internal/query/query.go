// Package query implements the benchmark workload operators the paper's
// benchmarking suite targets: "queries on nodes, edges, paths, and
// sub-graphs" over the property graph — vertex lookups and top-k degree,
// attribute-filtered edge scans, BFS paths and k-hop neighborhoods, and
// sub-graph extraction including the fan patterns the anomaly detector
// aggregates.
package query

import (
	"sort"

	"csb/internal/graph"
)

// Engine answers workload queries over one property graph. Build once with
// NewEngine (it materializes CSR adjacency), then query freely; the engine
// is read-only and safe for concurrent use.
type Engine struct {
	g   *graph.Graph
	out *graph.CSR
	in  *graph.CSR
}

// NewEngine indexes g for querying.
func NewEngine(g *graph.Graph) *Engine {
	return &Engine{g: g, out: graph.BuildCSR(g), in: graph.BuildReverseCSR(g)}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Degree returns the in- and out-degree of v (node query).
func (e *Engine) Degree(v graph.VertexID) (in, out int64) {
	return e.in.Degree(v), e.out.Degree(v)
}

// VertexDegree pairs a vertex with its total degree.
type VertexDegree struct {
	V      graph.VertexID
	Degree int64
}

// TopKByDegree returns the k vertices with the highest total degree,
// descending (node query; the "busiest hosts" report of an IDS dashboard).
func (e *Engine) TopKByDegree(k int) []VertexDegree {
	n := e.g.NumVertices()
	if k <= 0 || n == 0 {
		return nil
	}
	all := make([]VertexDegree, n)
	for v := int64(0); v < n; v++ {
		all[v] = VertexDegree{V: graph.VertexID(v), Degree: e.in.Degree(graph.VertexID(v)) + e.out.Degree(graph.VertexID(v))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Degree != all[j].Degree {
			return all[i].Degree > all[j].Degree
		}
		return all[i].V < all[j].V
	})
	if int64(k) > n {
		k = int(n)
	}
	return all[:k]
}

// EdgesBetween returns every flow edge from u to v (edge query).
func (e *Engine) EdgesBetween(u, v graph.VertexID) []graph.Edge {
	var out []graph.Edge
	// Endpoint filter over the 4-byte columns; properties are materialized
	// only for the matching edges.
	cols := e.g.Cols()
	for i, n := 0, cols.Len(); i < n; i++ {
		if cols.SrcID(i) == u && cols.DstID(i) == v {
			out = append(out, cols.Edge(i))
		}
	}
	return out
}

// CountEdges returns the number of edges satisfying pred (edge scan query,
// e.g. "TCP flows with state S0").
func (e *Engine) CountEdges(pred func(*graph.Edge) bool) int64 {
	var n int64
	cols := e.g.Cols()
	for i, m := 0, cols.Len(); i < m; i++ {
		edge := cols.Edge(i)
		if pred(&edge) {
			n++
		}
	}
	return n
}

// KHop returns the set of vertices reachable from v in at most k forward
// hops, excluding v itself (path query). The result is sorted.
func (e *Engine) KHop(v graph.VertexID, k int) []graph.VertexID {
	if k <= 0 {
		return nil
	}
	visited := map[graph.VertexID]struct{}{v: {}}
	frontier := []graph.VertexID{v}
	var result []graph.VertexID
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.VertexID
		for _, u := range frontier {
			for _, w := range e.out.Neighbors(u) {
				if _, seen := visited[w]; seen {
					continue
				}
				visited[w] = struct{}{}
				next = append(next, w)
				result = append(result, w)
			}
		}
		frontier = next
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result
}

// ShortestPathHops returns the minimum number of forward hops from u to v,
// 0 when u == v and -1 when v is unreachable (path query).
func (e *Engine) ShortestPathHops(u, v graph.VertexID) int {
	if u == v {
		return 0
	}
	visited := map[graph.VertexID]struct{}{u: {}}
	frontier := []graph.VertexID{u}
	for hops := 1; len(frontier) > 0; hops++ {
		var next []graph.VertexID
		for _, x := range frontier {
			for _, w := range e.out.Neighbors(x) {
				if w == v {
					return hops
				}
				if _, seen := visited[w]; seen {
					continue
				}
				visited[w] = struct{}{}
				next = append(next, w)
			}
		}
		frontier = next
	}
	return -1
}

// FanOut returns the vertices with at least minDegree distinct forward
// neighbors (sub-graph pattern query: the scanning fan of Section IV).
func (e *Engine) FanOut(minDegree int64) []graph.VertexID {
	var out []graph.VertexID
	n := e.g.NumVertices()
	for v := int64(0); v < n; v++ {
		distinct := make(map[graph.VertexID]struct{})
		for _, w := range e.out.Neighbors(graph.VertexID(v)) {
			distinct[w] = struct{}{}
		}
		if int64(len(distinct)) >= minDegree {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// Subgraph extracts the induced sub-graph over the given vertices, with
// vertices renumbered densely in the order provided (sub-graph query).
// Edge properties are preserved.
func (e *Engine) Subgraph(vertices []graph.VertexID) *graph.Graph {
	idx := make(map[graph.VertexID]graph.VertexID, len(vertices))
	for i, v := range vertices {
		idx[v] = graph.VertexID(i)
	}
	out := graph.New(int64(len(vertices)))
	for i, v := range vertices {
		if e.g.HasAddrs() {
			out.SetAddr(graph.VertexID(i), e.g.Addr(v))
		}
	}
	cols := e.g.Cols()
	for i, n := 0, cols.Len(); i < n; i++ {
		s, okS := idx[cols.SrcID(i)]
		d, okD := idx[cols.DstID(i)]
		if okS && okD {
			out.AddEdge(graph.Edge{Src: s, Dst: d, Props: cols.Props(i)})
		}
	}
	return out
}

// TriangleCount returns the number of directed triangles u->v->w->u in the
// simplified graph (sub-graph query used as a heavier analytical workload).
// Each triangle is counted once.
func (e *Engine) TriangleCount() int64 {
	simple := e.g.Simplify()
	csr := graph.BuildCSR(simple)
	csr.SortNeighbors()
	var count int64
	n := simple.NumVertices()
	for u := int64(0); u < n; u++ {
		for _, v := range csr.Neighbors(graph.VertexID(u)) {
			if int64(v) == u {
				continue
			}
			for _, w := range csr.Neighbors(v) {
				if int64(w) == u || w == v {
					continue
				}
				if csr.HasArc(w, graph.VertexID(u)) {
					count++
				}
			}
		}
	}
	return count / 3 // each directed 3-cycle found from each of its vertices
}
