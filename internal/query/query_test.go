package query

import (
	"sync"
	"testing"

	"csb/internal/graph"
)

// testGraph: 0->1, 0->2, 1->2, 2->3, 3->0 plus a multi-edge 0->1.
func testGraph() *graph.Graph {
	g := graph.New(5) // vertex 4 is isolated
	g.AddEdge(graph.Edge{Src: 0, Dst: 1, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, State: graph.StateS0}})
	g.AddEdge(graph.Edge{Src: 0, Dst: 1, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, State: graph.StateSF}})
	g.AddEdge(graph.Edge{Src: 0, Dst: 2, Props: graph.EdgeProps{Protocol: graph.ProtoUDP}})
	g.AddEdge(graph.Edge{Src: 1, Dst: 2, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, State: graph.StateSF}})
	g.AddEdge(graph.Edge{Src: 2, Dst: 3, Props: graph.EdgeProps{Protocol: graph.ProtoTCP, State: graph.StateREJ}})
	g.AddEdge(graph.Edge{Src: 3, Dst: 0, Props: graph.EdgeProps{Protocol: graph.ProtoICMP}})
	return g
}

func TestDegree(t *testing.T) {
	e := NewEngine(testGraph())
	in, out := e.Degree(0)
	if in != 1 || out != 3 {
		t.Fatalf("Degree(0) = %d/%d, want 1/3", in, out)
	}
	in, out = e.Degree(4)
	if in != 0 || out != 0 {
		t.Fatalf("Degree(4) = %d/%d, want isolated", in, out)
	}
}

func TestTopKByDegree(t *testing.T) {
	e := NewEngine(testGraph())
	top := e.TopKByDegree(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].V != 0 || top[0].Degree != 4 {
		t.Fatalf("top[0] = %+v, want vertex 0 degree 4", top[0])
	}
	// k beyond n clamps.
	if got := e.TopKByDegree(100); len(got) != 5 {
		t.Fatalf("overlong top-k = %d", len(got))
	}
	if e.TopKByDegree(0) != nil {
		t.Fatal("k=0 returned results")
	}
}

func TestEdgesBetween(t *testing.T) {
	e := NewEngine(testGraph())
	es := e.EdgesBetween(0, 1)
	if len(es) != 2 {
		t.Fatalf("EdgesBetween(0,1) = %d, want 2 (multi-edge)", len(es))
	}
	if len(e.EdgesBetween(1, 0)) != 0 {
		t.Fatal("reverse direction matched")
	}
}

func TestCountEdges(t *testing.T) {
	e := NewEngine(testGraph())
	tcp := e.CountEdges(func(ed *graph.Edge) bool { return ed.Props.Protocol == graph.ProtoTCP })
	if tcp != 4 {
		t.Fatalf("TCP edges = %d, want 4", tcp)
	}
	s0 := e.CountEdges(func(ed *graph.Edge) bool { return ed.Props.State == graph.StateS0 })
	if s0 != 1 {
		t.Fatalf("S0 edges = %d, want 1", s0)
	}
}

func TestKHop(t *testing.T) {
	e := NewEngine(testGraph())
	h1 := e.KHop(0, 1)
	if len(h1) != 2 || h1[0] != 1 || h1[1] != 2 {
		t.Fatalf("1-hop from 0 = %v, want [1 2]", h1)
	}
	h2 := e.KHop(0, 2)
	if len(h2) != 3 { // adds vertex 3
		t.Fatalf("2-hop from 0 = %v", h2)
	}
	h9 := e.KHop(0, 9)
	if len(h9) != 3 { // the whole reachable set minus self
		t.Fatalf("9-hop from 0 = %v", h9)
	}
	if e.KHop(0, 0) != nil {
		t.Fatal("0-hop returned vertices")
	}
	if got := e.KHop(4, 3); len(got) != 0 {
		t.Fatalf("isolated vertex hops = %v", got)
	}
}

func TestShortestPathHops(t *testing.T) {
	e := NewEngine(testGraph())
	cases := []struct {
		u, v graph.VertexID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {3, 2, 2}, {1, 4, -1}, {4, 0, -1},
	}
	for _, c := range cases {
		if got := e.ShortestPathHops(c.u, c.v); got != c.want {
			t.Errorf("ShortestPathHops(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
}

func TestFanOut(t *testing.T) {
	e := NewEngine(testGraph())
	fans := e.FanOut(2)
	if len(fans) != 1 || fans[0] != 0 {
		t.Fatalf("FanOut(2) = %v, want [0] (multi-edge counts once)", fans)
	}
	if got := e.FanOut(1); len(got) != 4 {
		t.Fatalf("FanOut(1) = %v", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := testGraph()
	g.SetAddr(0, 100)
	g.SetAddr(2, 102)
	e := NewEngine(g)
	sub := e.Subgraph([]graph.VertexID{0, 1, 2})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	// Edges inside {0,1,2}: 0->1 x2, 0->2, 1->2 (2->3 and 3->0 dropped).
	if sub.NumEdges() != 4 {
		t.Fatalf("sub edges = %d, want 4", sub.NumEdges())
	}
	if sub.Addr(0) != 100 || sub.Addr(2) != 102 {
		t.Fatal("addresses not carried into subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Properties preserved.
	var udp int
	for _, ed := range sub.EdgeSlice() {
		if ed.Props.Protocol == graph.ProtoUDP {
			udp++
		}
	}
	if udp != 1 {
		t.Fatalf("UDP edges in subgraph = %d", udp)
	}
}

func TestTriangleCount(t *testing.T) {
	// testGraph has exactly one directed triangle: 0->2->3->0.
	e := NewEngine(testGraph())
	if n := e.TriangleCount(); n != 1 {
		t.Fatalf("triangles = %d, want 1", n)
	}
	// Adding 2->0 closes a second one: 0->1->2->0.
	g := testGraph()
	g.AddEdge(graph.Edge{Src: 2, Dst: 0})
	if n := NewEngine(g).TriangleCount(); n != 2 {
		t.Fatalf("triangles = %d, want 2", n)
	}
	// Multi-edges must not double count.
	g.AddEdge(graph.Edge{Src: 0, Dst: 1})
	if n := NewEngine(g).TriangleCount(); n != 2 {
		t.Fatalf("triangles with multi-edge = %d, want 2", n)
	}
}

func TestEngineConcurrentReads(t *testing.T) {
	// The engine documents read-only concurrent safety; hammer it from
	// several goroutines.
	g := testGraph()
	e := NewEngine(g)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := graph.VertexID((w + i) % 5)
				in, out := e.Degree(v)
				if in < 0 || out < 0 {
					errs <- "negative degree"
					return
				}
				if len(e.TopKByDegree(3)) != 3 {
					errs <- "topk wrong"
					return
				}
				e.KHop(v, 2)
				e.ShortestPathHops(0, v)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
